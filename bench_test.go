// Package mkos's top-level benchmark harness: one benchmark per table and
// figure of the paper's evaluation (Sec. 6), plus ablation benchmarks for
// the design choices DESIGN.md calls out and micro-benchmarks of the
// substrate. Each experiment benchmark reports its headline metric through
// b.ReportMetric so `go test -bench` output doubles as a results table:
//
//	max_noise_us / noise_rate  for the Table 2 rows
//	relative_perf              for the Figure 5-7 points (Linux = 1.0)
//	tail_iteration_us          for the Figure 4 curves
//
// The experiment sizes here are reduced from the paper's (hundreds of nodes
// rather than thousands, tens of seconds of FWQ rather than minutes) so the
// full suite completes in minutes; cmd/tablegen, cmd/noiseprofile and
// cmd/mkexp regenerate the full-scale versions.
package mkos

import (
	"testing"
	"time"

	"mkos/internal/apps"
	"mkos/internal/bsp"
	"mkos/internal/cluster"
	"mkos/internal/core"
	"mkos/internal/cpu"
	"mkos/internal/ihk"
	"mkos/internal/interconnect"
	"mkos/internal/kernel"
	"mkos/internal/linux"
	"mkos/internal/mckernel"
	"mkos/internal/mem"
	"mkos/internal/mos"
	"mkos/internal/mpi"
	"mkos/internal/noise"
	"mkos/internal/sim"
)

// --- Table 2 ---------------------------------------------------------------

// BenchmarkTable2 regenerates the countermeasure-effectiveness table: FWQ on
// simulated A64FX nodes with one noise-elimination technique disabled per
// sub-benchmark.
func BenchmarkTable2(b *testing.B) {
	rows := []struct {
		name   string
		mutate func(*linux.Countermeasures)
	}{
		{"None", func(*linux.Countermeasures) {}},
		{"DaemonProcess", func(c *linux.Countermeasures) { c.BindDaemons = false }},
		{"UnboundKworkers", func(c *linux.Countermeasures) { c.BindKworkers = false }},
		{"BlkMQWorkers", func(c *linux.Countermeasures) { c.BindBlkMQ = false }},
		{"PMUCounterReads", func(c *linux.Countermeasures) { c.StopPMUReads = false }},
		{"CPUGlobalTLBFlush", func(c *linux.Countermeasures) { c.SuppressGlobalTLBI = false }},
	}
	for _, row := range rows {
		b.Run(row.name, func(b *testing.B) {
			tune := linux.FugakuTuning()
			row.mutate(&tune.Counter)
			k, err := linux.NewKernel(cpu.A64FX(2), tune, 32<<30)
			if err != nil {
				b.Fatal(err)
			}
			cfg := apps.FWQConfig{Work: 6500 * time.Microsecond, Duration: 30 * time.Second, Cores: k.AppCores()}
			var last noise.Analysis
			for i := 0; i < b.N; i++ {
				analyses, _, err := apps.FWQAcrossNodes(cfg, k, 4, 12345)
				if err != nil {
					b.Fatal(err)
				}
				last, err = noise.Merge(analyses)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(last.MaxNoise)/float64(time.Microsecond), "max_noise_us")
			b.ReportMetric(last.Rate*1e6, "noise_rate_e-6")
		})
	}
}

// --- Figure 3 ---------------------------------------------------------------

// BenchmarkFigure3 produces the noise-length time series data (one series
// per countermeasure state) and reports the series maximum.
func BenchmarkFigure3(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "AllCountermeasures"
		if disabled {
			name = "DaemonsUnbound"
		}
		b.Run(name, func(b *testing.B) {
			tune := linux.FugakuTuning()
			tune.Counter.BindDaemons = !disabled
			k, err := linux.NewKernel(cpu.A64FX(2), tune, 32<<30)
			if err != nil {
				b.Fatal(err)
			}
			cfg := apps.FWQConfig{Work: 6500 * time.Microsecond, Duration: time.Minute, Cores: k.AppCores()[:1]}
			var maxUS float64
			for i := 0; i < b.N; i++ {
				analyses, _, err := apps.FWQAcrossNodes(cfg, k, 1, 5)
				if err != nil {
					b.Fatal(err)
				}
				s := noise.SeriesMicros(analyses[0].Lengths)
				maxUS = s.MaxV()
			}
			b.ReportMetric(maxUS, "series_max_us")
		})
	}
}

// --- Figure 4 ---------------------------------------------------------------

// BenchmarkFigure4 builds the five FWQ latency CDF curves at reduced node
// counts and reports each curve's tail (largest iteration).
func BenchmarkFigure4(b *testing.B) {
	cfg := core.Figure4Config{
		OFPNodes: 32, FugakuFullNodes: 96, Fugaku24Racks: 12,
		Duration: 30 * time.Second, WorstNodes: 100, Seed: 20211114,
	}
	var curves []core.CDFCurve
	for i := 0; i < b.N; i++ {
		var err error
		curves, err = core.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range curves {
		b.ReportMetric(c.CDF.Max(), "tail_us_"+c.Label)
	}
}

// --- Figures 5, 6, 7 ---------------------------------------------------------

// figureBench runs one application comparison point per iteration.
func figureBench(b *testing.B, platform apps.PlatformName, appName string, nodes int) {
	b.Helper()
	app, err := apps.ByName(appName, platform)
	if err != nil {
		b.Fatal(err)
	}
	p := core.PlatformFor(platform)
	var c core.Comparison
	for i := 0; i < b.N; i++ {
		c, err = core.Compare(p, app, nodes, []int64{1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(c.Relative, "relative_perf")
}

// BenchmarkFigure5 regenerates the CORAL panels on OFP (at a mid-sweep and
// the top-of-sweep node count).
func BenchmarkFigure5(b *testing.B) {
	for _, app := range apps.CoralSuite() {
		for _, nodes := range []int{256, 2048} {
			b.Run(app+"/nodes-"+itoa(nodes), func(b *testing.B) {
				figureBench(b, apps.OnOFP, app, nodes)
			})
		}
	}
}

// BenchmarkFigure6 regenerates the Fugaku-project apps on OFP.
func BenchmarkFigure6(b *testing.B) {
	points := map[string]int{"LQCD": 2048, "GeoFEM": 2048, "GAMERA": 1024}
	for _, app := range apps.FugakuSuite() {
		b.Run(app+"/nodes-"+itoa(points[app]), func(b *testing.B) {
			figureBench(b, apps.OnOFP, app, points[app])
		})
	}
}

// BenchmarkFigure7 regenerates the Fugaku-project apps on Fugaku.
func BenchmarkFigure7(b *testing.B) {
	for _, app := range apps.FugakuSuite() {
		for _, nodes := range []int{512, 2048} {
			b.Run(app+"/nodes-"+itoa(nodes), func(b *testing.B) {
				figureBench(b, apps.OnFugaku, app, nodes)
			})
		}
	}
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationPicoDriver compares GAMERA's init phase with and without
// the LWK-integrated Tofu driver (the Sec. 5.1 design choice).
func BenchmarkAblationPicoDriver(b *testing.B) {
	for _, pico := range []bool{true, false} {
		name := "PicoDriver"
		if !pico {
			name = "OffloadedIoctl"
		}
		b.Run(name, func(b *testing.B) {
			host, err := linux.NewKernel(cpu.A64FX(2), linux.FugakuTuning(), 32<<30)
			if err != nil {
				b.Fatal(err)
			}
			mgr := ihk.NewManager(host)
			if err := mgr.ReserveCPUs(host.Topo.AppCores()); err != nil {
				b.Fatal(err)
			}
			if err := mgr.ReserveMemory(2 << 30); err != nil {
				b.Fatal(err)
			}
			part, err := mgr.Boot()
			if err != nil {
				b.Fatal(err)
			}
			lwk, err := mckernel.Boot(host, part, mckernel.Config{PicoDriver: pico, PremapMemory: true})
			if err != nil {
				b.Fatal(err)
			}
			var total time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total = 0
				for r := 0; r < 36000; r++ {
					total += lwk.RDMARegistrationCost(256 << 10)
				}
			}
			b.ReportMetric(float64(total)/float64(time.Millisecond), "init_reg_ms")
		})
	}
}

// BenchmarkAblationPageSize compares the translation overhead of a 16 GiB
// working set under the paging policies of Sec. 4.1.3.
func BenchmarkAblationPageSize(b *testing.B) {
	policies := []struct {
		name   string
		policy linux.LargePagePolicy
	}{
		{"BasePagesOnly", linux.NoLargePages},
		{"THP", linux.THP},
		{"HugeTLBOvercommit", linux.HugeTLBOvercommit},
		{"HugeTLBReserved", linux.HugeTLBReserved},
	}
	for _, pc := range policies {
		b.Run(pc.name, func(b *testing.B) {
			tune := linux.FugakuTuning()
			tune.LargePage = pc.policy
			k, err := linux.NewKernel(cpu.A64FX(2), tune, 32<<30)
			if err != nil {
				b.Fatal(err)
			}
			var oh float64
			for i := 0; i < b.N; i++ {
				oh = k.TranslationOverhead(16<<30, 100*time.Nanosecond)
			}
			b.ReportMetric(oh*100, "translation_overhead_pct")
		})
	}
}

// BenchmarkAblationTLBI compares the three remote-invalidation strategies of
// Sec. 4.2.2 for a process-teardown flush burst.
func BenchmarkAblationTLBI(b *testing.B) {
	topo := cpu.A64FX(2)
	k, err := linux.NewKernel(topo, linux.FugakuTuning(), 32<<30)
	if err != nil {
		b.Fatal(err)
	}
	flushes := k.ProcessExitFlushes(64)
	for _, m := range []cpu.ShootdownMethod{cpu.ShootdownBroadcast, cpu.ShootdownIPI, cpu.ShootdownLocalOnly} {
		b.Run(m.String(), func(b *testing.B) {
			var stall time.Duration
			for i := 0; i < b.N; i++ {
				initiator, perRemote := cpu.ShootdownCost(topo, m)
				remotes := topo.NumCores() - 1
				if m == cpu.ShootdownLocalOnly {
					remotes = 0
				}
				stall = time.Duration(flushes) * (initiator + time.Duration(remotes)*perRemote)
			}
			b.ReportMetric(float64(stall)/float64(time.Microsecond), "teardown_stall_us")
		})
	}
}

// BenchmarkAblationStacking measures the noise rate as countermeasures are
// enabled cumulatively, demonstrating the tuning journey of Sec. 4.2.
func BenchmarkAblationStacking(b *testing.B) {
	stages := []struct {
		name  string
		apply func(*linux.Countermeasures)
	}{
		{"0-none", func(c *linux.Countermeasures) { *c = linux.Countermeasures{} }},
		{"1-daemons", func(c *linux.Countermeasures) { c.BindDaemons = true }},
		{"2-kworkers", func(c *linux.Countermeasures) { c.BindKworkers = true }},
		{"3-blkmq", func(c *linux.Countermeasures) { c.BindBlkMQ = true }},
		{"4-pmu", func(c *linux.Countermeasures) { c.StopPMUReads = true }},
		{"5-tlbi", func(c *linux.Countermeasures) { c.SuppressGlobalTLBI = true }},
	}
	cm := linux.Countermeasures{}
	for _, st := range stages {
		st.apply(&cm)
		tune := linux.FugakuTuning()
		tune.Counter = cm
		b.Run(st.name, func(b *testing.B) {
			k, err := linux.NewKernel(cpu.A64FX(2), tune, 32<<30)
			if err != nil {
				b.Fatal(err)
			}
			cfg := apps.FWQConfig{Work: 6500 * time.Microsecond, Duration: 20 * time.Second, Cores: k.AppCores()}
			var last noise.Analysis
			for i := 0; i < b.N; i++ {
				analyses, _, err := apps.FWQAcrossNodes(cfg, k, 2, 99)
				if err != nil {
					b.Fatal(err)
				}
				last, err = noise.Merge(analyses)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Rate*1e6, "noise_rate_e-6")
		})
	}
}

// BenchmarkAblationVirtualNUMA measures application-domain fragmentation
// with and without the virtual NUMA node split of Sec. 4.1.2 after a burst
// of interleaved system/application allocations.
func BenchmarkAblationVirtualNUMA(b *testing.B) {
	for _, vnuma := range []bool{true, false} {
		name := "VirtualNUMA"
		if !vnuma {
			name = "SharedDomains"
		}
		b.Run(name, func(b *testing.B) {
			var frag float64
			for i := 0; i < b.N; i++ {
				tune := linux.FugakuTuning()
				tune.VirtualNUMA = vnuma
				k, err := linux.NewKernel(cpu.A64FX(2), tune, 32<<30)
				if err != nil {
					b.Fatal(err)
				}
				rng := sim.NewRand(7)
				// System daemons allocate small long-lived buffers while the
				// application churns large ones.
				var pinned []mem.Region
				for j := 0; j < 200; j++ {
					r, err := k.Mem.AllocKind(mem.SysNode, 64<<10)
					if err != nil {
						b.Fatal(err)
					}
					if rng.Bernoulli(0.5) {
						pinned = append(pinned, r)
					} else {
						if err := k.Mem.Free(r); err != nil {
							b.Fatal(err)
						}
					}
					big, err := k.Mem.AllocKind(mem.AppNode, 32<<20)
					if err != nil {
						b.Fatal(err)
					}
					if err := k.Mem.Free(big); err != nil {
						b.Fatal(err)
					}
				}
				frag = k.Mem.AppFragmentation(8) // 2 MiB blocks on a 64K/8 buddy... order 5 is 2M; use high order
				for _, r := range pinned {
					if err := k.Mem.Free(r); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(frag*100, "app_fragmentation_pct")
		})
	}
}

// --- Substrate micro-benchmarks ---------------------------------------------

// BenchmarkEngineEvents measures raw event throughput of the simulator.
func BenchmarkEngineEvents(b *testing.B) {
	e := sim.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i), "ev", func(*sim.Engine) {})
	}
	e.Run()
}

// BenchmarkBuddyAllocFree measures allocator round trips.
func BenchmarkBuddyAllocFree(b *testing.B) {
	buddy, err := mem.NewBuddy(0, 1<<30, 64<<10, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := buddy.Alloc(128 << 10)
		if err != nil {
			b.Fatal(err)
		}
		if err := buddy.Free(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimelineAdvance measures the FWQ inner loop.
func BenchmarkTimelineAdvance(b *testing.B) {
	p := &noise.Profile{}
	p.MustAdd(&noise.Source{
		Name: "s", Cores: []int{0}, Mode: noise.TargetOne,
		Every: time.Millisecond, Length: 10 * time.Microsecond, LengthCV: 0.5,
	})
	tl := p.Timeline(10*time.Second, sim.NewRand(1))
	b.ResetTimer()
	t := sim.Time(0)
	for i := 0; i < b.N; i++ {
		t = tl.Advance(0, t, 6500*time.Microsecond)
		if t > sim.Time(9*time.Second) {
			t = 0
		}
	}
}

// BenchmarkSyscallDelegation compares local, delegated and native syscall
// dispatch costs (model evaluation throughput, not simulated latency).
func BenchmarkSyscallDelegation(b *testing.B) {
	host, err := linux.NewKernel(cpu.A64FX(2), linux.FugakuTuning(), 32<<30)
	if err != nil {
		b.Fatal(err)
	}
	mgr := ihk.NewManager(host)
	if err := mgr.ReserveCPUs(host.Topo.AppCores()); err != nil {
		b.Fatal(err)
	}
	if err := mgr.ReserveMemory(1 << 30); err != nil {
		b.Fatal(err)
	}
	part, err := mgr.Boot()
	if err != nil {
		b.Fatal(err)
	}
	lwk, err := mckernel.Boot(host, part, mckernel.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("local-mmap", func(b *testing.B) {
		var d time.Duration
		for i := 0; i < b.N; i++ {
			d = lwk.SyscallCost(kernel.SysMmap)
		}
		b.ReportMetric(float64(d)/1e3, "simulated_us")
	})
	b.Run("delegated-open", func(b *testing.B) {
		var d time.Duration
		for i := 0; i < b.N; i++ {
			d = lwk.SyscallCost(kernel.SysOpen)
		}
		b.ReportMetric(float64(d)/1e3, "simulated_us")
	})
}

// BenchmarkBSPStep measures the application engine's per-run cost at a
// representative scale.
func BenchmarkBSPStep(b *testing.B) {
	app, err := apps.GeoFEM(apps.OnFugaku)
	if err != nil {
		b.Fatal(err)
	}
	machine, _, err := cluster.Fugaku().Machine(cluster.Linux, app.Geometry)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bsp.Run(app.Workload, machine, 128, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationMultikernelDesign compares the three OS designs of the
// paper's Sec. 7 design space — native tuned Linux, the module-based
// IHK/McKernel co-kernel, and an mOS-style embedded LWK — on the same
// workload (GeoFEM at 512 Fugaku nodes).
func BenchmarkAblationMultikernelDesign(b *testing.B) {
	app, err := apps.GeoFEM(apps.OnFugaku)
	if err != nil {
		b.Fatal(err)
	}
	build := func(name string) (bsp.Machine, error) {
		switch name {
		case "mos":
			host, err := linux.NewKernel(cpu.A64FX(2), linux.FugakuTuning(), 32<<30)
			if err != nil {
				return bsp.Machine{}, err
			}
			in, err := mos.Boot(host)
			if err != nil {
				return bsp.Machine{}, err
			}
			return bsp.Machine{
				OS: in, Fabric: interconnect.TofuD(), Cores: in.LWKCores,
				RanksPerNode: app.Geometry.RanksPerNode, ThreadsPerRank: app.Geometry.ThreadsPerRank,
			}, nil
		case "mckernel":
			m, _, err := cluster.Fugaku().Machine(cluster.McKernel, app.Geometry)
			return m, err
		default:
			m, _, err := cluster.Fugaku().Machine(cluster.Linux, app.Geometry)
			return m, err
		}
	}
	for _, design := range []string{"linux", "mckernel", "mos"} {
		b.Run(design, func(b *testing.B) {
			machine, err := build(design)
			if err != nil {
				b.Fatal(err)
			}
			var r bsp.Result
			for i := 0; i < b.N; i++ {
				r, err = bsp.Run(app.Workload, machine, 512, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Runtime)/float64(time.Millisecond), "runtime_ms")
			b.ReportMetric(float64(r.Breakdown.Noise)/float64(time.Microsecond), "noise_us")
		})
	}
}

// BenchmarkIsolationColocation measures the primary application's
// co-location slowdown under cgroup vs multi-kernel isolation — the
// multi-tenant future-work direction of Sec. 8.
func BenchmarkIsolationColocation(b *testing.B) {
	for _, mode := range []core.IsolationMode{core.CgroupIsolation, core.MultikernelIsolation} {
		b.Run(mode.String(), func(b *testing.B) {
			var r core.IsolationResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = core.RunIsolation(apps.OnFugaku, mode, "GeoFEM", 128, core.AnalyticsTenant(), 9)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric((r.Slowdown-1)*100, "colocation_slowdown_pct")
		})
	}
}

// BenchmarkMPICollectives measures the rank-level communication cost model
// across the paper's scales (simulated costs reported, model evaluation
// timed).
func BenchmarkMPICollectives(b *testing.B) {
	for _, nodes := range []int{64, 1024, 8192} {
		b.Run("nodes-"+itoa(nodes), func(b *testing.B) {
			comm, err := mpi.NewComm(interconnect.TofuD(), nodes, 4)
			if err != nil {
				b.Fatal(err)
			}
			var allre, barrier time.Duration
			for i := 0; i < b.N; i++ {
				if allre, err = comm.AllreduceCost(8); err != nil {
					b.Fatal(err)
				}
				if barrier, err = comm.BarrierCost(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(allre)/1e3, "allreduce8B_us")
			b.ReportMetric(float64(barrier)/1e3, "barrier_us")
		})
	}
}
