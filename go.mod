module mkos

go 1.22
