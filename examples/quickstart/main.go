// Quickstart: boot a simulated Fugaku node under both operating systems,
// measure OS noise with FWQ, and compare one application end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mkos/internal/apps"
	"mkos/internal/bsp"
	"mkos/internal/cluster"
	"mkos/internal/noise"
)

func main() {
	log.SetFlags(0)
	platform := cluster.Fugaku()

	// 1. Boot one node under native Linux and one under IHK/McKernel.
	linuxNode, err := platform.NewNode(cluster.Linux)
	if err != nil {
		log.Fatal(err)
	}
	mckNode, err := platform.NewNode(cluster.McKernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted %s: %d app cores under Linux, %d under McKernel (via IHK)\n\n",
		platform.Name, len(linuxNode.AppCores()), len(mckNode.AppCores()))

	// 2. Measure OS noise with the FWQ benchmark on both.
	for _, node := range []*cluster.Node{linuxNode, mckNode} {
		cfg := apps.FWQConfig{
			Work: 6500 * time.Microsecond, Duration: 30 * time.Second,
			Cores: node.AppCores(),
		}
		analyses, _, err := apps.FWQAcrossNodes(cfg, node.OS(), 1, 42)
		if err != nil {
			log.Fatal(err)
		}
		a, err := noise.Merge(analyses)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("FWQ under %-16s max noise %8v, noise rate %.3g\n",
			node.OS().Name()+":", a.MaxNoise, a.Rate)
	}

	// 3. Run the GAMERA proxy at 8,192 nodes under both OSes and compare.
	app, err := apps.GAMERA(apps.OnFugaku)
	if err != nil {
		log.Fatal(err)
	}
	linuxMachine, _, err := platform.Machine(cluster.Linux, app.Geometry)
	if err != nil {
		log.Fatal(err)
	}
	mckMachine, _, err := platform.Machine(cluster.McKernel, app.Geometry)
	if err != nil {
		log.Fatal(err)
	}
	ra, rb, rel, err := bsp.Compare(app.Workload, linuxMachine, mckMachine, 8192, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGAMERA at 8,192 nodes:\n")
	fmt.Printf("  linux    %12v (init %v)\n", ra.Runtime, ra.Breakdown.Init)
	fmt.Printf("  mckernel %12v (init %v)\n", rb.Runtime, rb.Breakdown.Init)
	fmt.Printf("  relative performance: %.2fx (paper: up to 1.29x, Sec. 6.4)\n", rel)
}
