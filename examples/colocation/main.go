// colocation demonstrates the paper's closing future-work claim (Sec. 8):
// multi-kernels provide the performance isolation that multi-tenant compute
// nodes need. A bulk-synchronous primary application shares nodes with an
// in-situ analytics tenant under (a) Linux cgroup isolation and (b) an
// IHK/McKernel partition, and we measure what the tenant costs the primary.
//
//	go run ./examples/colocation
package main

import (
	"fmt"
	"log"
	"time"

	"mkos/internal/apps"
	"mkos/internal/core"
)

func main() {
	log.SetFlags(0)
	tenants := []core.Tenant{
		core.AnalyticsTenant(),
		{
			Name:                "io-heavy-checkpointer",
			BandwidthDemand:     80e9,
			KernelActivity:      400 * time.Microsecond,
			KernelActivityEvery: 100 * time.Millisecond,
		},
		{
			Name:                "bandwidth-hog",
			BandwidthDemand:     700e9,
			KernelActivity:      20 * time.Microsecond,
			KernelActivityEvery: 5 * time.Second,
		},
	}

	fmt.Printf("co-location cost of a tenant to GeoFEM on 256 Fugaku nodes\n")
	fmt.Printf("(primary slowdown vs running alone; 1.000 = perfect isolation)\n\n")
	fmt.Printf("%-24s %14s %14s\n", "tenant", "cgroups", "multikernel")
	for _, tenant := range tenants {
		cg, mk, err := core.CompareIsolation(apps.OnFugaku, "GeoFEM", 256, tenant, 9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %14.4f %14.4f\n", tenant.Name, cg.Slowdown, mk.Slowdown)
	}
	fmt.Printf("\nKernel-noisy tenants hurt only the shared-kernel configuration;\n")
	fmt.Printf("bandwidth-bound tenants hurt both, because no OS partitions the\n")
	fmt.Printf("memory system (Sec. 4.2.2). This is the isolation argument of\n")
	fmt.Printf("Ouyang et al. [37] that the paper's conclusion builds on.\n")
}
