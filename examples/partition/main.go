// partition walks through the IHK/McKernel lifecycle of Figure 2 and Sec. 5:
// dynamic resource partitioning (no reboot), LWK boot, proxy-process
// creation, system-call routing (local vs. delegated), the cooperative
// tick-less scheduler, and the Tofu PicoDriver fast path.
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"log"

	"mkos/internal/cpu"
	"mkos/internal/ihk"
	"mkos/internal/kernel"
	"mkos/internal/linux"
	"mkos/internal/mckernel"
)

func main() {
	log.SetFlags(0)

	// Boot the host Linux (Fugaku tuning) and load IHK.
	host, err := linux.NewKernel(cpu.A64FX(2), linux.FugakuTuning(), 32<<30)
	if err != nil {
		log.Fatal(err)
	}
	mgr := ihk.NewManager(host)

	// Reserve 36 of the 48 application cores and 2 GiB per CMG — leaving
	// 12 cores to Linux demonstrates that partitioning is dynamic and
	// partial, one of IHK's core capabilities.
	appCores := host.Topo.AppCores()
	if err := mgr.ReserveCPUs(appCores[:36]); err != nil {
		log.Fatal(err)
	}
	if err := mgr.ReserveMemory(2 << 30); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IHK reserved %d cores and %d GiB from the running Linux (no reboot)\n",
		len(mgr.ReservedCPUs()), mgr.ReservedMemoryBytes()>>30)

	part, err := mgr.Boot()
	if err != nil {
		log.Fatal(err)
	}
	lwk, err := mckernel.Boot(host, part, mckernel.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("McKernel booted on cores %v..%v\n\n", part.Cores[0], part.Cores[len(part.Cores)-1])

	// Spawn a 12-thread process; its proxy appears on the Linux side.
	proc, err := lwk.Spawn("a.out", 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spawned %s with %d threads; proxy %q pinned to Linux cores %s\n\n",
		proc.Name, len(proc.Threads), proc.Proxy().Task.Name, proc.Proxy().Task.Affinity)

	// System-call routing: the performance-sensitive set is served locally,
	// the rest delegated over IKC to the proxy.
	fmt.Printf("system-call routing (LWK local vs delegated to Linux):\n")
	for _, sc := range []kernel.Syscall{
		kernel.SysMmap, kernel.SysFutex, kernel.SysGetpid,
		kernel.SysOpen, kernel.SysIoctl, kernel.SysWrite,
	} {
		where := "delegated"
		if sc.PerformanceSensitive() {
			where = "LWK-local"
		}
		fmt.Printf("  %-14s %-10s %8v  (Linux native: %v)\n",
			sc, where, lwk.SyscallCost(sc), host.SyscallCosts().Cost(sc))
	}

	// The cooperative scheduler: threads yield explicitly; no timer tick
	// ever preempts them (the no-noise property).
	sched := lwk.Scheduler
	core0 := part.Cores[0]
	t1, err := sched.Dispatch(core0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntick-less cooperative scheduling on core %d:\n", core0)
	fmt.Printf("  dispatched tid %d; queue depth now %d\n", t1.TID, sched.QueueLen(core0))
	if err := sched.Yield(t1); err != nil {
		log.Fatal(err)
	}
	t2, err := sched.Dispatch(core0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  tid %d yielded; round robin dispatched tid %d\n", t1.TID, t2.TID)

	// PicoDriver: STAG registration without the ioctl delegation round trip.
	withPico := lwk.RDMARegistrationCost(1 << 20)
	noPico, err := mckernel.Boot(host, part, mckernel.Config{PicoDriver: false, PremapMemory: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTofu STAG registration of 1 MiB (Sec. 5.1):\n")
	fmt.Printf("  PicoDriver fast path: %v\n", withPico)
	fmt.Printf("  offloaded ioctl:      %v\n", noPico.RDMARegistrationCost(1<<20))
	fmt.Printf("  native Linux:         %v\n", host.RDMARegistrationCost(1<<20))

	// Tear down: shut the LWK down and hand everything back to Linux.
	if err := mgr.Shutdown(); err != nil {
		log.Fatal(err)
	}
	if err := mgr.ReleaseMemory(); err != nil {
		log.Fatal(err)
	}
	if err := mgr.ReleaseCPUs(mgr.ReservedCPUs()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLWK shut down; all cores and memory returned to Linux\n")
}
