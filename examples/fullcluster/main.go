// fullcluster runs a compact version of the paper's whole evaluation: the
// Fugaku-project applications on both platforms across a node-count sweep,
// printing the relative-performance tables behind Figures 6 and 7 and the
// cross-experiment average the paper's abstract quotes (~4% on Fugaku).
//
//	go run ./examples/fullcluster
package main

import (
	"fmt"
	"log"

	"mkos/internal/apps"
	"mkos/internal/core"
)

func main() {
	log.SetFlags(0)
	seeds := []int64{1, 2, 3}

	sweeps := []struct {
		platform apps.PlatformName
		nodes    []int
	}{
		{apps.OnOFP, []int{64, 512, 2048}},
		{apps.OnFugaku, []int{512, 2048, 8192}},
	}

	perPlatform := map[apps.PlatformName][]float64{}
	for _, sweep := range sweeps {
		fmt.Printf("=== %s (relative performance, Linux = 1.0) ===\n", sweep.platform)
		fmt.Printf("%-8s", "nodes")
		for _, app := range apps.FugakuSuite() {
			fmt.Printf(" %12s", app)
		}
		fmt.Println()
		rows := map[int][]string{}
		for _, appName := range apps.FugakuSuite() {
			app, err := apps.ByName(appName, sweep.platform)
			if err != nil {
				log.Fatal(err)
			}
			cs, err := core.Sweep(core.PlatformFor(sweep.platform), app, sweep.nodes, seeds)
			if err != nil {
				log.Fatal(err)
			}
			for _, c := range cs {
				rows[c.Nodes] = append(rows[c.Nodes], fmt.Sprintf("%6.3f±%.3f", c.Relative, c.RelErr))
				perPlatform[sweep.platform] = append(perPlatform[sweep.platform], c.Relative)
			}
		}
		for _, n := range sweep.nodes {
			if len(rows[n]) == 0 {
				continue
			}
			fmt.Printf("%-8d", n)
			for _, cell := range rows[n] {
				fmt.Printf(" %12s", cell)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	for _, p := range []apps.PlatformName{apps.OnOFP, apps.OnFugaku} {
		rels := perPlatform[p]
		if len(rels) == 0 {
			continue
		}
		sum := 0.0
		for _, r := range rels {
			sum += r
		}
		fmt.Printf("average McKernel gain on %-16s %+.1f%%\n", p, (sum/float64(len(rels))-1)*100)
	}
	fmt.Printf("(paper: consistent wins on OFP; ~4%% average on Fugaku)\n")
}
