// noise_model explores the paper's analytic OS-noise delay estimator
// (Eq. 1, Sec. 2) and validates it against the direct Monte-Carlo BSP
// simulation used everywhere else in this repository.
//
//	go run ./examples/noise_model
package main

import (
	"fmt"
	"log"
	"time"

	"mkos/internal/bsp"
	"mkos/internal/interconnect"
	"mkos/internal/noise"
)

func main() {
	log.SetFlags(0)

	// The paper's worked example: N = 100,000 threads, S = 250 µs, one
	// noise group with L = 1 ms every 500 s slows the application ~20%.
	m := noise.AnalyticModel{Groups: []noise.Group{
		{Name: "paper-example", Length: time.Millisecond, Every: 500 * time.Second},
	}}
	d, who, err := m.Slowdown(250*time.Microsecond, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Eq. 1 worked example (Sec. 2):\n")
	fmt.Printf("  N=100,000  S=250us  L=1ms  I=500s  ->  %.1f%% slowdown (dominated by %s)\n\n", d*100, who)

	// Full-scale Fugaku: 7,630,848 hardware threads. Even extremely rare
	// noise saturates the hit probability.
	fmt.Printf("Hit probability at full-scale Fugaku (N = 7,630,848, S = 250us):\n")
	for _, every := range []time.Duration{time.Second, time.Minute, 10 * time.Minute, time.Hour} {
		p := noise.HitProbability(250*time.Microsecond, every, 7630848)
		fmt.Printf("  noise every %8v on a core -> P(some rank hit per step) = %.4f\n", every, p)
	}

	// How rare must 1 ms noise be to cost less than 1% at several scales?
	fmt.Printf("\nMax tolerable 1ms-noise interval for <1%% slowdown (S = 1ms):\n")
	for _, n := range []int{1024, 65536, 1048576, 7630848} {
		ci := noise.CriticalInterval(time.Millisecond, time.Millisecond, n, 0.01)
		fmt.Printf("  N=%9d threads -> noise must be rarer than every %v\n", n, ci.Round(time.Second))
	}

	// Validate Eq. 1 against the Monte-Carlo BSP engine: one synthetic
	// noise group, weak scaling, compare predicted vs simulated slowdown.
	// Parameters chosen in the regime Eq. 1 models: rare enough that at
	// most one interruption lands in any rank's window, common enough that
	// some rank is hit almost every step at this scale.
	length := 300 * time.Microsecond
	every := time.Second
	s := 10 * time.Millisecond
	threadsPerNode := 48
	nodes := 64

	profile := &noise.Profile{}
	cores := make([]int, threadsPerNode)
	for i := range cores {
		cores[i] = i
	}
	if err := profile.Add(&noise.Source{
		Name: "synthetic", Cores: cores, Mode: noise.TargetRandom,
		Every: every / time.Duration(threadsPerNode), Length: length,
	}); err != nil {
		log.Fatal(err)
	}
	analytic := noise.AnalyticModel{Groups: []noise.Group{
		{Name: "synthetic", Length: length, Every: every},
	}}
	pred, _, err := analytic.Slowdown(s, nodes*threadsPerNode)
	if err != nil {
		log.Fatal(err)
	}

	w := bsp.Workload{
		Name: "synthetic-bsp", Scaling: bsp.WeakScaling, RefNodes: nodes,
		Steps: 200, StepCompute: s,
	}
	machine := bsp.Machine{
		OS:     syntheticOS{profile},
		Fabric: interconnect.TofuD(),
		Cores:  cores, RanksPerNode: 4, ThreadsPerRank: 12,
	}
	r, err := bsp.Run(w, machine, nodes, 7)
	if err != nil {
		log.Fatal(err)
	}
	measured := float64(r.Breakdown.Noise) / float64(r.Breakdown.Compute)
	fmt.Printf("\nEq. 1 vs Monte-Carlo BSP simulation (L=%v, I=%v, S=%v, %d nodes x %d threads):\n",
		length, every, s, nodes, threadsPerNode)
	fmt.Printf("  analytic predicted slowdown: %6.2f%%\n", pred*100)
	fmt.Printf("  simulated measured slowdown: %6.2f%%\n", measured*100)
}

// syntheticOS is a noise-only OS model: every other cost is zero so the
// comparison isolates the Eq. 1 mechanism.
type syntheticOS struct {
	profile *noise.Profile
}

func (o syntheticOS) Name() string                                     { return "synthetic" }
func (o syntheticOS) NoiseProfile() *noise.Profile                     { return o.profile }
func (o syntheticOS) TranslationOverhead(int64, time.Duration) float64 { return 0 }
func (o syntheticOS) HeapChurnCost(int64, int, int) time.Duration      { return 0 }
func (o syntheticOS) RDMARegistrationCost(int64) time.Duration         { return 0 }
func (o syntheticOS) BarrierLatency(int) time.Duration                 { return 0 }
func (o syntheticOS) CacheInterferenceFactor() float64                 { return 1 }
