package shard

import (
	"errors"
	"testing"
)

// The partition is load-bearing for determinism: the node→shard map must be
// a pure function of (nodes, shards), identical in every process, or two
// runs of the same campaign could fold telemetry in different shard orders.

func TestPartitionProperties(t *testing.T) {
	nodeCounts := []int{1, 2, 5, 64, 100, 158976}
	shardCounts := []int{1, 2, 7, 8, 64}
	for _, nodes := range nodeCounts {
		for _, shards := range shardCounts {
			if shards > nodes {
				if _, err := Partition(nodes, shards); !errors.Is(err, ErrBadPartition) {
					t.Errorf("Partition(%d, %d): want ErrBadPartition", nodes, shards)
				}
				continue
			}
			parts, err := Partition(nodes, shards)
			if err != nil {
				t.Fatalf("Partition(%d, %d): %v", nodes, shards, err)
			}
			if len(parts) != shards {
				t.Fatalf("Partition(%d, %d): %d blocks", nodes, shards, len(parts))
			}
			// Contiguous cover of [0, nodes), sizes within one of each other.
			lo, minLen, maxLen := 0, nodes, 0
			for i, p := range parts {
				if p.Lo != lo {
					t.Fatalf("Partition(%d, %d): block %d starts at %d, want %d", nodes, shards, i, p.Lo, lo)
				}
				if p.Len() < 1 {
					t.Fatalf("Partition(%d, %d): empty block %d", nodes, shards, i)
				}
				if p.Len() < minLen {
					minLen = p.Len()
				}
				if p.Len() > maxLen {
					maxLen = p.Len()
				}
				lo = p.Hi
			}
			if lo != nodes {
				t.Fatalf("Partition(%d, %d): blocks end at %d, want %d", nodes, shards, lo, nodes)
			}
			if maxLen-minLen > 1 {
				t.Errorf("Partition(%d, %d): block sizes range [%d, %d]", nodes, shards, minLen, maxLen)
			}
			// Every node maps to exactly one block, and Owner agrees.
			for n := 0; n < nodes; n += 1 + nodes/997 {
				owner := Owner(parts, n)
				if owner < 0 || !parts[owner].Contains(n) {
					t.Fatalf("Partition(%d, %d): Owner(%d) = %d", nodes, shards, n, owner)
				}
				for i, p := range parts {
					if i != owner && p.Contains(n) {
						t.Fatalf("Partition(%d, %d): node %d in blocks %d and %d", nodes, shards, n, owner, i)
					}
				}
			}
			if Owner(parts, -1) != -1 || Owner(parts, nodes) != -1 {
				t.Errorf("Partition(%d, %d): Owner accepted out-of-range node", nodes, shards)
			}
		}
	}
}

// TestPartitionStableGolden pins the exact layout, so any change to the
// block arithmetic — which would silently re-key every sharded artifact —
// fails loudly instead of drifting.
func TestPartitionStableGolden(t *testing.T) {
	got, err := Partition(158976, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := []Range{
		{0, 22711}, {22711, 45422}, {45422, 68133}, {68133, 90844},
		{90844, 113555}, {113555, 136266}, {136266, 158976},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d blocks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("block %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestPartitionRejectsBadShapes(t *testing.T) {
	for _, c := range []struct{ nodes, shards int }{{0, 1}, {1, 0}, {-4, 2}, {4, -1}, {3, 4}} {
		if _, err := Partition(c.nodes, c.shards); !errors.Is(err, ErrBadPartition) {
			t.Errorf("Partition(%d, %d): want ErrBadPartition, got %v", c.nodes, c.shards, err)
		}
	}
}
