package shard

import (
	"errors"
	"fmt"
	"sort"
)

// Range is a half-open block of node ids, [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of nodes in the block.
func (r Range) Len() int { return r.Hi - r.Lo }

// Contains reports whether node n falls inside the block.
func (r Range) Contains(n int) bool { return n >= r.Lo && n < r.Hi }

// ErrBadPartition reports an impossible shard layout.
var ErrBadPartition = errors.New("shard: invalid partition")

// Partition splits nodes [0, nodes) into shards contiguous blocks. The first
// nodes%shards blocks carry one extra node, so block sizes differ by at most
// one. The layout is a pure function of (nodes, shards) — no host state, no
// randomness — which is what makes a sharded run's node→shard mapping stable
// across processes and machines.
//
// Contiguity is a determinism requirement, not a convenience: per-node RNG
// streams derive from a sequential walk of a base generator (one draw per
// node, see sim.Rand.Skip), so a shard owning the block [Lo, Hi) reproduces
// exactly the sequential derivation by skipping Lo draws and deriving its own
// block in order.
func Partition(nodes, shards int) ([]Range, error) {
	if nodes < 1 || shards < 1 {
		return nil, fmt.Errorf("%w: %d nodes over %d shards", ErrBadPartition, nodes, shards)
	}
	if shards > nodes {
		return nil, fmt.Errorf("%w: %d shards exceed %d nodes", ErrBadPartition, shards, nodes)
	}
	base, extra := nodes/shards, nodes%shards
	out := make([]Range, shards)
	lo := 0
	for i := range out {
		size := base
		if i < extra {
			size++
		}
		out[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out, nil
}

// Owner returns the index of the block containing node n, or -1 when n is
// outside every block. parts must be the sorted, non-overlapping output of
// Partition.
func Owner(parts []Range, n int) int {
	i := sort.Search(len(parts), func(i int) bool { return parts[i].Hi > n })
	if i < len(parts) && parts[i].Contains(n) {
		return i
	}
	return -1
}
