// Package shard runs one deterministic simulation across parallel engines:
// a conservative ("no shard ever receives an event in its past") parallel
// discrete-event layer that partitions a machine's nodes into contiguous
// blocks, gives each block its own sim.Engine on its own goroutine, and
// advances all of them through bounded windows of simulated time.
//
// The window bound comes from the modeled interconnect: no communication
// between distinct nodes completes in less than the fabric's minimum latency
// (interconnect.Fabric.MinLatency), so a message emitted at instant t cannot
// take effect before t+L. With W = min(next pending event across shards) + L,
// every shard can advance to W-1 without hearing from the others — the
// classic windowed (YAWNS-style) conservative protocol, with a barrier
// exchange instead of null messages. Cross-shard messages travel through
// per-pair channels at the barrier and are folded into the destination
// engine in a canonical order, the same sorted-key discipline the sweep
// collector uses for trial results.
//
// Determinism contract — byte-identical artifacts at any shard count:
//
//   - Node state is private to its owning shard. Nodes interact only through
//     Shard.Send, including node pairs that happen to share a shard: local
//     messages take the same barrier path, in the same canonical order, as
//     remote ones.
//   - Deliveries fold in (At, Src node, per-source emission index) order —
//     every component shard-count-invariant, unlike the shard index or the
//     engine's internal sequence numbers.
//   - The window schedule is a pure function of the global pending-event set
//     and the lookahead, so Stats.Windows is itself invariant (and safe to
//     embed in deterministic artifacts); Stats.CrossMessages is not — it
//     counts shard-boundary crossings, which depend on the partition — and
//     belongs to ops-side reporting only (see shardops).
//   - Per-shard telemetry folds in shard-index order. Integer aggregates
//     (counters, histogram bucket counts) merge exactly at any shard count;
//     float histogram sums accumulate in fold-grouping order, so models that
//     need byte-identical merged registries publish counters, not float
//     histograms.
//
// The package sits inside the determinism boundary: no wall clock, no
// process-wide telemetry, no internal/telemetry/ops import. Wall-side
// instrumentation (window count, barrier waits, cross-shard traffic) hangs
// off the Observer callbacks, implemented outside the boundary in
// shard/shardops.
package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"

	"mkos/internal/sim"
	"mkos/internal/telemetry"
)

// Message is one cross-node interaction in flight. Src and Dst are node ids,
// not shard indices: shard boundaries are invisible to the model.
type Message struct {
	// At is the delivery instant; Send enforces At >= now + lookahead.
	At sim.Time
	// Src and Dst are the emitting and receiving nodes.
	Src, Dst int
	// Kind labels the message; it becomes the delivery event's name.
	Kind string
	// Payload is model-defined. It crosses goroutines at a barrier (the
	// channel send/receive orders the memory), but the model must treat a
	// sent payload as frozen: mutating it after Send races with the receiver.
	Payload any

	// seq is the per-source-node emission index, the canonical tiebreak for
	// simultaneous deliveries. A node's own emission order is shard-count
	// invariant; the engine's sequence numbers and the shard index are not.
	seq uint64
}

// Model is the simulation being sharded.
type Model interface {
	// Setup populates shard s with its nodes' initial events. It runs once
	// per shard, on the shard's goroutine, before the first window; initial
	// cross-node messages may be emitted with s.Send (the clock is 0, so
	// delivery instants must be >= the lookahead).
	Setup(s *Shard) error
	// Deliver handles a message addressed to a node s owns. It runs as an
	// engine event at msg.At, in canonical (At, Src, emission) order.
	Deliver(s *Shard, msg Message)
}

// Observer receives wall-side progress callbacks; see shardops. Methods are
// invoked from the coordinating goroutine (WindowStart, Exchanged) and from
// shard goroutines (ShardDone) concurrently.
type Observer interface {
	// WindowStart fires immediately before window w is released: every shard
	// is about to advance to the inclusive instant until.
	WindowStart(w int, until sim.Time)
	// ShardDone fires when shard s finishes advancing through window w and
	// enters the barrier.
	ShardDone(s, w int)
	// Exchanged fires after every shard has entered a barrier: n messages
	// changed hands, cross of them between distinct shards.
	Exchanged(cross, n int)
}

// Config dimensions one sharded run.
type Config struct {
	// Nodes is the machine size; node ids are [0, Nodes).
	Nodes int
	// Shards is the engine count; 1 is the sequential baseline every other
	// count must match byte-for-byte.
	Shards int
	// Lookahead is the conservative window margin, normally the fabric's
	// MinLatency. It must be positive; a larger value means fewer barriers
	// but is only safe while no message undercuts it (Send enforces this).
	Lookahead sim.Duration
	// Cancel, when non-nil, is polled between events on every engine (the
	// sanctioned cross-goroutine touch point, sim.Engine.SetCancelHook); a
	// true return stops the run with sim.ErrCanceled.
	Cancel func() bool
	// Observer, when non-nil, receives ops-side progress callbacks.
	Observer Observer
}

// Stats summarizes one run.
type Stats struct {
	// Windows is the number of conservative time windows executed. It is a
	// pure function of the model and lookahead — invariant across shard
	// counts — and may appear in deterministic artifacts.
	Windows int
	// Messages counts every Send; also shard-count invariant.
	Messages int64
	// CrossMessages counts messages whose source and destination nodes lived
	// on distinct shards. It depends on the partition: ops-side only, never
	// in byte-compared artifacts.
	CrossMessages int64
	// Events is the total event count fired across all engines.
	Events uint64
}

// Result is a completed (or aborted) run.
type Result struct {
	Stats Stats
	// Registry folds the per-shard telemetry registries in shard order. See
	// the package comment for what merges exactly.
	Registry *telemetry.Registry
	// Sinks are the per-shard telemetry sinks, in shard order, for callers
	// that need raw access (trace buffers, per-shard snapshots).
	Sinks []*telemetry.Sink
}

// Run errors.
var (
	// ErrBadConfig reports an unusable Config.
	ErrBadConfig = errors.New("shard: invalid config")
	// ErrShortSend is the typed panic value (wrapped) raised by Shard.Send
	// when a delivery instant undercuts now + lookahead. Such a message
	// could land in a window another shard has already simulated past — the
	// one causality violation conservative synchronization exists to
	// prevent — so the model is stopped at the offending call.
	ErrShortSend = errors.New("shard: send undercuts lookahead")
	// ErrForeignSource is the typed panic value (wrapped) raised by
	// Shard.Send when the source node is not owned by the sending shard.
	ErrForeignSource = errors.New("shard: send from foreign node")
)

// Shard is one partition of the run: a contiguous node block, its engine and
// its telemetry sink. Models receive it in Setup and Deliver; everything on
// it is confined to the shard's own goroutine.
type Shard struct {
	// Index is the shard's position in [0, Config.Shards).
	Index int
	// Nodes is the contiguous node block this shard owns.
	Nodes Range
	// Engine is the shard's private event loop.
	Engine *sim.Engine
	// Sink is the shard's goroutine-local telemetry sink; package-level
	// telemetry helpers called from model code on this goroutine land here.
	Sink *telemetry.Sink

	run    *runner
	outbox []Message
	seqs   map[int]uint64
}

// Lookahead returns the run's conservative window margin.
func (s *Shard) Lookahead() sim.Duration { return s.run.cfg.Lookahead }

// Send emits a message from node src to node dst, delivered at instant at.
// This is the only sanctioned channel between nodes — even co-resident ones:
// routing local traffic through the same barrier fold is what keeps results
// byte-identical at any shard count. Send panics (typed, see ErrShortSend
// and ErrForeignSource) on a lookahead violation or a source the shard does
// not own; a panic inside a window surfaces as that shard's run error.
func (s *Shard) Send(src, dst int, at sim.Time, kind string, payload any) {
	if !s.Nodes.Contains(src) {
		panic(fmt.Errorf("%w: node %d is not in shard %d's block [%d,%d)",
			ErrForeignSource, src, s.Index, s.Nodes.Lo, s.Nodes.Hi))
	}
	if dst < 0 || dst >= s.run.cfg.Nodes {
		panic(fmt.Errorf("shard: send to node %d outside machine of %d", dst, s.run.cfg.Nodes))
	}
	if horizon := s.Engine.Now().Add(s.run.cfg.Lookahead); at < horizon {
		panic(fmt.Errorf("%w: %s from node %d at %v delivers at %v, horizon %v",
			ErrShortSend, kind, src, s.Engine.Now(), at, horizon))
	}
	seq := s.seqs[src]
	s.seqs[src] = seq + 1
	s.outbox = append(s.outbox, Message{At: at, Src: src, Dst: dst, Kind: kind, Payload: payload, seq: seq})
	s.Sink.Registry().Counter("shard.sent").Inc()
}

// command releases one window to a shard (or, with run=false, ends its loop).
type command struct {
	run   bool
	until sim.Time
	w     int
}

// report is one shard's barrier arrival: its next pending instant and the
// message traffic it just pushed through the exchange.
type report struct {
	shard       int
	nextAt      sim.Time
	hasNext     bool
	sent, cross int
	err         error
}

// runner wires the coordinator and the shard goroutines together.
type runner struct {
	cfg   Config
	parts []Range
	model Model

	// mail[i][j] carries shard i's batch for shard j, one per barrier. The
	// capacity-1 buffer is what makes the all-to-all exchange deadlock-free:
	// a shard posts all its batches (never blocking — each channel was
	// drained at the previous barrier) before draining its own column.
	mail    [][]chan []Message
	cmds    []chan command
	reports chan report
}

// Run executes the model across cfg.Shards parallel engines and returns the
// folded result. It is the ctx-free convenience form of RunContext;
// cancellation, if any, arrives through cfg.Cancel.
func Run(cfg Config, m Model) (*Result, error) {
	return RunContext(context.Background(), cfg, m)
}

// RunContext executes the model across cfg.Shards parallel engines and
// returns the folded result. The returned error is the lowest-indexed
// shard's failure (model error, engine interruption, or a recovered model
// panic); the Result is returned alongside it with whatever completed.
//
// Ending ctx stops the run exactly as a true cfg.Cancel return would: the
// predicate merges into the per-engine cancel hook, every shard settles
// cooperatively between events, and the run reports sim.ErrCanceled.
func RunContext(ctx context.Context, cfg Config, m Model) (*Result, error) {
	if done := ctx.Done(); done != nil {
		inner := cfg.Cancel
		cfg.Cancel = func() bool {
			if ctx.Err() != nil {
				return true
			}
			return inner != nil && inner()
		}
	}
	if cfg.Lookahead <= 0 {
		return nil, fmt.Errorf("%w: lookahead %v", ErrBadConfig, cfg.Lookahead)
	}
	parts, err := Partition(cfg.Nodes, cfg.Shards)
	if err != nil {
		return nil, err
	}
	r := &runner{cfg: cfg, parts: parts, model: m}
	nShards := len(parts)
	r.mail = make([][]chan []Message, nShards)
	for i := range r.mail {
		r.mail[i] = make([]chan []Message, nShards)
		for j := range r.mail[i] {
			r.mail[i][j] = make(chan []Message, 1)
		}
	}
	r.cmds = make([]chan command, nShards)
	shards := make([]*Shard, nShards)
	for i := range shards {
		r.cmds[i] = make(chan command, 1)
		shards[i] = &Shard{
			Index: i, Nodes: parts[i], Engine: sim.NewEngine(),
			Sink: telemetry.NewSink(), run: r, seqs: make(map[int]uint64),
		}
		if cfg.Cancel != nil {
			shards[i].Engine.SetCancelHook(cfg.Cancel, 0)
		}
	}
	r.reports = make(chan report, nShards)

	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			// The shard goroutine is the one place a sink is installed
			// outside internal/sweep: this runner IS an orchestrator — each
			// shard is isolated on its own sink exactly like a sweep trial,
			// and the snapshots fold in shard order afterwards.
			//simlint:allow sinkdiscipline — shard runner is orchestrator plumbing: per-shard sink isolation, folded deterministically in shard order
			telemetry.RunWith(s.Sink, func() { r.shardLoop(ctx, s) })
		}(shards[i])
	}

	stats := Stats{}
	errs := make([]error, nShards)
	for w := 0; ; w++ {
		minNext, has := sim.Time(0), false
		sent, cross := 0, 0
		for k := 0; k < nShards; k++ {
			rep := <-r.reports
			if rep.err != nil && errs[rep.shard] == nil {
				errs[rep.shard] = rep.err
			}
			sent += rep.sent
			cross += rep.cross
			if rep.hasNext && (!has || rep.nextAt < minNext) {
				minNext, has = rep.nextAt, true
			}
		}
		stats.Messages += int64(sent)
		stats.CrossMessages += int64(cross)
		if cfg.Observer != nil {
			cfg.Observer.Exchanged(cross, sent)
		}
		failed := false
		for _, e := range errs {
			if e != nil {
				failed = true
				break
			}
		}
		if failed || !has {
			for i := range r.cmds {
				r.cmds[i] <- command{run: false}
			}
			break
		}
		until := minNext.Add(cfg.Lookahead) - 1
		stats.Windows++
		if cfg.Observer != nil {
			cfg.Observer.WindowStart(w, until)
		}
		for i := range r.cmds {
			r.cmds[i] <- command{run: true, until: until, w: w}
		}
	}
	wg.Wait()

	res := &Result{Stats: stats, Registry: telemetry.NewRegistry()}
	for _, s := range shards {
		stats.Events += s.Engine.Fired()
		res.Sinks = append(res.Sinks, s.Sink)
		res.Registry.AddSnapshot(s.Sink.Snapshot())
	}
	res.Stats.Events = stats.Events
	for i, e := range errs {
		if e != nil {
			return res, fmt.Errorf("shard %d: %w", i, e)
		}
	}
	return res, nil
}

// shardLoop is one shard's life: set up, then alternate barrier exchanges
// with released windows until the coordinator ends the run. ctx is the
// run's cancellation scope: a dead ctx stops the shard before the next
// window opens (the merged cancel hook handles mid-window stops).
func (r *runner) shardLoop(ctx context.Context, s *Shard) {
	err := safely(func() error { return r.model.Setup(s) })
	for w := 0; ; w++ {
		sent, cross, xerr := r.exchange(s, err != nil)
		if err == nil {
			err = xerr
		}
		nextAt, hasNext := s.Engine.NextAt()
		r.reports <- report{shard: s.Index, nextAt: nextAt, hasNext: hasNext, sent: sent, cross: cross, err: err}
		cmd := <-r.cmds[s.Index]
		if !cmd.run {
			return
		}
		if err == nil && ctx.Err() != nil {
			err = sim.ErrCanceled
		}
		if err == nil {
			err = safely(func() error { return s.Engine.RunUntil(cmd.until) })
			if r.cfg.Observer != nil {
				r.cfg.Observer.ShardDone(s.Index, cmd.w)
			}
		}
	}
}

// exchange pushes the shard's outbox through the per-pair mailboxes and
// folds the arriving batches into the engine in canonical order. It always
// completes the full send/receive protocol — even for a failed shard — so no
// peer ever blocks at the barrier; only the scheduling step is skipped on a
// dead engine (whose ScheduleAt would rightly panic, see
// sim.ErrScheduleAfterInterrupt).
func (r *runner) exchange(s *Shard, dead bool) (sent, cross int, err error) {
	batches := make([][]Message, len(r.parts))
	for _, msg := range s.outbox {
		d := Owner(r.parts, msg.Dst)
		batches[d] = append(batches[d], msg)
	}
	sent = len(s.outbox)
	cross = sent - len(batches[s.Index])
	s.outbox = s.outbox[:0]
	for j := range r.mail[s.Index] {
		r.mail[s.Index][j] <- batches[j]
	}
	var inbox []Message
	for j := range r.mail {
		inbox = append(inbox, <-r.mail[j][s.Index]...)
	}
	if dead || len(inbox) == 0 {
		return sent, cross, nil
	}
	err = safely(func() error {
		// Canonical fold: (At, Src, emission index) is a total order — a
		// node's emissions are consecutively numbered — and every component
		// survives repartitioning, unlike engine sequence numbers.
		sort.Slice(inbox, func(a, b int) bool {
			if inbox[a].At != inbox[b].At {
				return inbox[a].At < inbox[b].At
			}
			if inbox[a].Src != inbox[b].Src {
				return inbox[a].Src < inbox[b].Src
			}
			return inbox[a].seq < inbox[b].seq
		})
		for _, msg := range inbox {
			msg := msg
			s.Engine.ScheduleAt(msg.At, msg.Kind, func(*sim.Engine) {
				r.model.Deliver(s, msg)
			})
		}
		return nil
	})
	return sent, cross, err
}

// safely converts a panicking model (or a typed engine panic) into a shard
// error, keeping the barrier protocol alive so the other shards can be wound
// down instead of deadlocked.
func safely(fn func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if perr, ok := p.(error); ok {
				err = fmt.Errorf("panic: %w\n%s", perr, debug.Stack())
				return
			}
			err = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
		}
	}()
	return fn()
}
