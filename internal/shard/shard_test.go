package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"mkos/internal/sim"
)

const testLookahead = 500 * time.Nanosecond

// ringModel exercises every determinism hazard at once: per-node derived
// RNG streams (via the Skip discipline), multi-round cross-node traffic
// around a ring, and a non-commutative per-node fold, so any ordering drift
// between shard counts changes the artifact.
type ringModel struct {
	nodes, rounds int
	seed          int64

	// state and received are indexed by node; each shard touches only its
	// own block, so there is no cross-goroutine sharing.
	state    []int64
	received []int
}

func newRingModel(nodes, rounds int, seed int64) *ringModel {
	return &ringModel{nodes: nodes, rounds: rounds, seed: seed,
		state: make([]int64, nodes), received: make([]int, nodes)}
}

func mix(acc, v int64) int64 {
	z := uint64(acc)*0x9E3779B97F4A7C15 + uint64(v)
	z ^= z >> 29
	return int64(z)
}

func (m *ringModel) Setup(s *Shard) error {
	base := sim.NewRand(m.seed)
	base.Skip(s.Nodes.Lo)
	for n := s.Nodes.Lo; n < s.Nodes.Hi; n++ {
		rng := base.Derive(int64(n))
		node := n
		var round func(e *sim.Engine)
		r := 0
		round = func(e *sim.Engine) {
			if r >= m.rounds {
				return
			}
			r++
			draw := rng.Int63n(1 << 30)
			m.state[node] = mix(m.state[node], draw)
			jitter := sim.Duration(rng.Int63n(int64(testLookahead)))
			at := e.Now().Add(sim.Duration(testLookahead) + jitter)
			s.Send(node, (node+1)%m.nodes, at, "ring", draw)
			e.ScheduleAt(at.Add(time.Microsecond), "next-round", round)
		}
		s.Engine.ScheduleAt(sim.Time(n%5)*sim.Time(time.Microsecond), "kickoff", round)
	}
	return nil
}

func (m *ringModel) Deliver(s *Shard, msg Message) {
	m.received[msg.Dst]++
	m.state[msg.Dst] = mix(m.state[msg.Dst], msg.Payload.(int64)+int64(msg.Src))
}

// artifact is the byte-compared result of one ring run. Windows is included
// deliberately: the window schedule is specified to be shard-count
// invariant, and this is where that promise is enforced.
type artifact struct {
	State    []int64
	Received []int
	Windows  int
	Messages int64
	Sent     int64 // the model's counter, via the folded registry
}

func runRing(t *testing.T, nodes, rounds, shards int) ([]byte, *Result) {
	t.Helper()
	m := newRingModel(nodes, rounds, 12345)
	res, err := Run(Config{Nodes: nodes, Shards: shards, Lookahead: testLookahead}, m)
	if err != nil {
		t.Fatalf("Run with %d shards: %v", shards, err)
	}
	blob, err := json.Marshal(artifact{
		State: m.state, Received: m.received,
		Windows: res.Stats.Windows, Messages: res.Stats.Messages,
		Sent: res.Registry.Counter("shard.sent").Value(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return blob, res
}

func TestByteIdenticalAtAnyShardCount(t *testing.T) {
	const nodes, rounds = 64, 6
	want, seq := runRing(t, nodes, rounds, 1)
	if seq.Stats.Messages != int64(nodes*rounds) {
		t.Fatalf("sequential run sent %d messages, want %d", seq.Stats.Messages, nodes*rounds)
	}
	if seq.Stats.CrossMessages != 0 {
		t.Fatalf("1-shard run reported %d cross-shard messages", seq.Stats.CrossMessages)
	}
	for _, shards := range []int{2, 7, 8, 64} {
		got, res := runRing(t, nodes, rounds, shards)
		if string(got) != string(want) {
			t.Errorf("%d shards: artifact differs from sequential\n got: %s\nwant: %s", shards, got, want)
		}
		if res.Stats.CrossMessages == 0 {
			t.Errorf("%d shards: no cross-shard traffic — the test is not exercising the exchange", shards)
		}
		if res.Stats.CrossMessages > res.Stats.Messages {
			t.Errorf("%d shards: cross %d exceeds total %d", shards, res.Stats.CrossMessages, res.Stats.Messages)
		}
	}
}

// hubModel makes every node message one collector at the same instant, so
// the delivery order is decided purely by the canonical (At, Src, emission)
// fold — the exact tie the sorted-key discipline exists to break.
type hubModel struct {
	nodes int
	order []int // collector's arrival log, appended on shard 0's goroutine
}

func (m *hubModel) Setup(s *Shard) error {
	for n := s.Nodes.Lo; n < s.Nodes.Hi; n++ {
		node := n
		s.Engine.ScheduleAt(0, "emit", func(e *sim.Engine) {
			// Two emissions per node at one instant: the second must stay
			// after the first (emission-index tiebreak).
			s.Send(node, 0, sim.Time(time.Millisecond), "hub", node*2)
			s.Send(node, 0, sim.Time(time.Millisecond), "hub", node*2+1)
		})
	}
	return nil
}

func (m *hubModel) Deliver(s *Shard, msg Message) {
	m.order = append(m.order, msg.Payload.(int))
}

func TestCanonicalFoldBreaksSimultaneousTies(t *testing.T) {
	const nodes = 23
	var want []int
	for n := 0; n < nodes; n++ {
		want = append(want, n*2, n*2+1)
	}
	for _, shards := range []int{1, 4, 23} {
		m := &hubModel{nodes: nodes}
		if _, err := Run(Config{Nodes: nodes, Shards: shards, Lookahead: testLookahead}, m); err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if fmt.Sprint(m.order) != fmt.Sprint(want) {
			t.Errorf("%d shards: arrival order %v, want %v", shards, m.order, want)
		}
	}
}

// faultyModel panics inside a window on one node.
type faultyModel struct{ bad int }

func (m *faultyModel) Setup(s *Shard) error {
	for n := s.Nodes.Lo; n < s.Nodes.Hi; n++ {
		node := n
		s.Engine.ScheduleAt(sim.Time(node)*10, "work", func(e *sim.Engine) {
			if node == m.bad {
				panic("node melted")
			}
		})
	}
	return nil
}

func (m *faultyModel) Deliver(*Shard, Message) {}

func TestModelPanicBecomesShardError(t *testing.T) {
	_, err := Run(Config{Nodes: 16, Shards: 4, Lookahead: testLookahead}, &faultyModel{bad: 9})
	if err == nil {
		t.Fatal("Run returned nil for a panicking model")
	}
	if !strings.Contains(err.Error(), "node melted") {
		t.Fatalf("error does not carry the panic: %v", err)
	}
	if !strings.Contains(err.Error(), "shard 2") {
		t.Fatalf("error does not name the failing shard: %v", err)
	}
}

// shortSender violates the lookahead on its first event.
type shortSender struct{}

func (shortSender) Setup(s *Shard) error {
	s.Engine.ScheduleAt(0, "bad-send", func(e *sim.Engine) {
		s.Send(s.Nodes.Lo, 0, e.Now(), "too-soon", nil)
	})
	return nil
}

func (shortSender) Deliver(*Shard, Message) {}

func TestSendUndercuttingLookaheadFailsLoudly(t *testing.T) {
	_, err := Run(Config{Nodes: 8, Shards: 2, Lookahead: testLookahead}, shortSender{})
	if !errors.Is(err, ErrShortSend) {
		t.Fatalf("Run: %v, want ErrShortSend", err)
	}
}

// setupFailModel fails Setup on shard 1.
type setupFailModel struct{}

var errSetup = errors.New("boom at setup")

func (setupFailModel) Setup(s *Shard) error {
	if s.Index == 1 {
		return errSetup
	}
	s.Engine.ScheduleAt(0, "tick", func(*sim.Engine) {})
	return nil
}

func (setupFailModel) Deliver(*Shard, Message) {}

func TestSetupErrorAbortsRunWithoutDeadlock(t *testing.T) {
	_, err := Run(Config{Nodes: 12, Shards: 3, Lookahead: testLookahead}, setupFailModel{})
	if !errors.Is(err, errSetup) {
		t.Fatalf("Run: %v, want setup error", err)
	}
}

func TestCancelStopsTheRun(t *testing.T) {
	m := newRingModel(32, 1000, 7)
	_, err := Run(Config{
		Nodes: 32, Shards: 4, Lookahead: testLookahead,
		Cancel: func() bool { return true },
	}, m)
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("Run: %v, want sim.ErrCanceled", err)
	}
}

// TestContextCancelStopsTheRun pins the RunContext contract: a dead ctx
// stops the run through the same cooperative path as a true Config.Cancel
// return, reporting sim.ErrCanceled, and a cfg.Cancel predicate supplied
// alongside a ctx still works (the two merge rather than replace).
func TestContextCancelStopsTheRun(t *testing.T) {
	m := newRingModel(32, 1000, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{Nodes: 32, Shards: 4, Lookahead: testLookahead}, m)
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("RunContext with dead ctx: %v, want sim.ErrCanceled", err)
	}

	m = newRingModel(32, 1000, 7)
	_, err = RunContext(context.Background(), Config{
		Nodes: 32, Shards: 4, Lookahead: testLookahead,
		Cancel: func() bool { return true },
	}, m)
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("RunContext with live ctx but true Cancel: %v, want sim.ErrCanceled", err)
	}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := Run(Config{Nodes: 4, Shards: 2, Lookahead: 0}, shortSender{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero lookahead: %v, want ErrBadConfig", err)
	}
	if _, err := Run(Config{Nodes: 2, Shards: 4, Lookahead: testLookahead}, shortSender{}); !errors.Is(err, ErrBadPartition) {
		t.Fatalf("too many shards: %v, want ErrBadPartition", err)
	}
}

// observerLog verifies the ops callbacks arrive and windows are announced in
// order; detailed wall-side behavior lives in shardops.
type observerLog struct {
	mu       chan struct{} // 1-token mutex usable from multiple goroutines
	windows  []int
	done     int
	exchange int
}

func newObserverLog() *observerLog {
	o := &observerLog{mu: make(chan struct{}, 1)}
	o.mu <- struct{}{}
	return o
}

func (o *observerLog) WindowStart(w int, until sim.Time) {
	<-o.mu
	o.windows = append(o.windows, w)
	o.mu <- struct{}{}
}

func (o *observerLog) ShardDone(s, w int) {
	<-o.mu
	o.done++
	o.mu <- struct{}{}
}

func (o *observerLog) Exchanged(cross, n int) {
	<-o.mu
	o.exchange++
	o.mu <- struct{}{}
}

func TestObserverSeesEveryWindow(t *testing.T) {
	obs := newObserverLog()
	m := newRingModel(16, 3, 99)
	res, err := Run(Config{Nodes: 16, Shards: 4, Lookahead: testLookahead, Observer: obs}, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.windows) != res.Stats.Windows {
		t.Errorf("observer saw %d windows, stats say %d", len(obs.windows), res.Stats.Windows)
	}
	for i, w := range obs.windows {
		if w != i {
			t.Fatalf("window announcements out of order: %v", obs.windows)
		}
	}
	if obs.done != res.Stats.Windows*4 {
		t.Errorf("ShardDone fired %d times, want %d", obs.done, res.Stats.Windows*4)
	}
	if obs.exchange != res.Stats.Windows+1 {
		t.Errorf("Exchanged fired %d times, want %d (windows+setup)", obs.exchange, res.Stats.Windows+1)
	}
}
