package shardops

import (
	"strings"
	"testing"

	"mkos/internal/shard"
	"mkos/internal/sim"
)

// driveModel is a minimal cross-shard workload: each node pings its
// neighbour once so every barrier carries traffic.
type driveModel struct{ nodes int }

func (m driveModel) Setup(s *shard.Shard) error {
	for n := s.Nodes.Lo; n < s.Nodes.Hi; n++ {
		node := n
		s.Engine.ScheduleAt(0, "ping", func(e *sim.Engine) {
			s.Send(node, (node+1)%m.nodes, e.Now().Add(s.Lookahead()), "ping", nil)
		})
	}
	return nil
}

func (driveModel) Deliver(*shard.Shard, shard.Message) {}

func TestRecorderObservesARun(t *testing.T) {
	rec := New()
	res, err := shard.Run(shard.Config{
		Nodes: 16, Shards: 4, Lookahead: 100 * sim.Nanosecond, Observer: rec,
	}, driveModel{nodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Registry().Counter("shardops.windows").Value(); got != int64(res.Stats.Windows) {
		t.Errorf("shardops.windows = %d, stats say %d", got, res.Stats.Windows)
	}
	if got := rec.Registry().Counter("shardops.messages").Value(); got != res.Stats.Messages {
		t.Errorf("shardops.messages = %d, stats say %d", got, res.Stats.Messages)
	}
	if got := rec.Registry().Counter("shardops.cross_messages").Value(); got != res.Stats.CrossMessages {
		t.Errorf("shardops.cross_messages = %d, stats say %d", got, res.Stats.CrossMessages)
	}
	var b strings.Builder
	if err := rec.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"shardops_windows", "shardops_messages", "shardops_barrier_wait_us"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s:\n%s", want, out)
		}
	}
}

// TestBarrierWaitSettles drives the observer interface directly: two shards
// enter the barrier, the next window release must record both waits.
func TestBarrierWaitSettles(t *testing.T) {
	rec := New()
	rec.ShardDone(0, 0)
	rec.ShardDone(1, 0)
	rec.WindowStart(1, sim.Time(sim.Second))
	snap := rec.Registry().Snapshot()
	h, ok := snap.Histograms["shardops.barrier_wait_us"]
	if !ok {
		t.Fatal("no barrier wait histogram")
	}
	if h.N != 2 {
		t.Fatalf("barrier waits recorded = %d, want 2", h.N)
	}
	if len(rec.doneAt) != 0 {
		t.Fatalf("doneAt not drained: %d entries", len(rec.doneAt))
	}
}
