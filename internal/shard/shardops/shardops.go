// Package shardops is the wall-clock side of the sharded runner: an
// implementation of shard.Observer that turns the runner's progress
// callbacks into operational metrics — window count, per-shard barrier wait,
// cross-shard traffic — on its own registry, exposed in Prometheus text
// format via internal/telemetry/ops.
//
// The split mirrors sweep's Outcome.Ops: internal/shard itself sits inside
// the determinism boundary (no host clock, no ops import — enforced by
// simlint's walltime and opsbound analyzers), while everything measured
// here is inherently host-dependent. Barrier waits change with core count
// and load; cross-shard message counts change with the partition. None of
// it may leak into byte-compared artifacts, so none of it lives anywhere
// near the deterministic registries the runner folds.
package shardops

import (
	"io"
	"sort"
	"sync"
	"time"

	"mkos/internal/sim"
	"mkos/internal/telemetry"
	"mkos/internal/telemetry/ops"
)

// Recorder implements shard.Observer on a private ops registry. Callbacks
// arrive concurrently from the coordinator and every shard goroutine; the
// recorder serializes internally.
type Recorder struct {
	mu     sync.Mutex
	reg    *telemetry.Registry
	doneAt map[int]time.Time // shard -> instant it entered the current barrier
}

// New returns an empty recorder.
func New() *Recorder {
	return &Recorder{reg: telemetry.NewRegistry(), doneAt: make(map[int]time.Time)}
}

// Registry exposes the ops registry, e.g. to merge into a CLI's -ops-metrics
// output. Never fold it into a deterministic registry.
func (r *Recorder) Registry() *telemetry.Registry { return r.reg }

// WindowStart counts the window and settles the previous barrier: every
// shard that checked in since the last release has been waiting from its
// ShardDone instant until now.
func (r *Recorder) WindowStart(w int, until sim.Time) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reg.Counter("shardops.windows").Inc()
	r.reg.Gauge("shardops.sim_horizon_seconds").SetMax(until.Seconds())
	h := r.reg.Histogram("shardops.barrier_wait_us", telemetry.ExpBuckets(1, 4, 12))
	shards := make([]int, 0, len(r.doneAt))
	for s := range r.doneAt {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	for _, s := range shards {
		h.Observe(float64(now.Sub(r.doneAt[s])) / float64(time.Microsecond))
		delete(r.doneAt, s)
	}
}

// ShardDone stamps shard s's arrival at the barrier after window w.
func (r *Recorder) ShardDone(s, w int) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.doneAt[s] = now
}

// Exchanged accumulates the barrier's message traffic.
func (r *Recorder) Exchanged(cross, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reg.Counter("shardops.messages").Add(int64(n))
	r.reg.Counter("shardops.cross_messages").Add(int64(cross))
	r.reg.Counter("shardops.exchanges").Inc()
}

// WriteExposition renders the recorder's metrics in Prometheus text format.
func (r *Recorder) WriteExposition(w io.Writer) error {
	r.mu.Lock()
	snap := r.reg.Snapshot()
	r.mu.Unlock()
	return ops.WriteExposition(w, snap)
}
