// Package bsp is the bulk-synchronous-parallel application engine: it takes
// a workload description (compute per step, memory behaviour, communication
// pattern), a machine description (OS model, fabric, core layout) and a node
// count, and produces a runtime with a cost breakdown. Per-step delays from
// OS noise are obtained by sampling every node's interruption timeline and
// taking the per-step maximum across all ranks — the direct Monte-Carlo
// counterpart of the paper's Eq. 1 (Figure 1's "one slow rank delays the
// step for everyone").
package bsp

import (
	"errors"
	"fmt"
	"time"

	"mkos/internal/interconnect"
	"mkos/internal/noise"
	"mkos/internal/sim"
	"mkos/internal/telemetry"
)

// OS is the operating-system cost model consumed by the engine. Both
// linux.Kernel and mckernel.Instance satisfy it.
type OS interface {
	Name() string
	NoiseProfile() *noise.Profile
	TranslationOverhead(workingSet int64, accessPeriod time.Duration) float64
	HeapChurnCost(churnBytes int64, calls, threads int) time.Duration
	RDMARegistrationCost(bytes int64) time.Duration
	BarrierLatency(n int) time.Duration
	CacheInterferenceFactor() float64
}

// Scaling is the problem-size behaviour as node count changes.
type Scaling int

const (
	// StrongScaling keeps the global problem fixed: per-rank work shrinks
	// with node count (all the paper's application sweeps are strong
	// scaling, which is why fixed per-step OS costs grow in relative
	// importance at scale).
	StrongScaling Scaling = iota
	// WeakScaling keeps per-rank work fixed.
	WeakScaling
)

// Workload describes one application's per-step behaviour at a reference
// node count.
type Workload struct {
	Name     string
	Scaling  Scaling
	RefNodes int // node count at which the per-rank figures below hold

	Steps       int
	StepCompute time.Duration // per-rank pure compute per step at RefNodes

	WorkingSetPerRank int64         // bytes touched per rank at RefNodes
	MemAccessPeriod   time.Duration // mean interval between distinct-page accesses
	HeapChurnPerStep  int64         // bytes allocated+freed per rank per step
	HeapCallsPerStep  int           // allocate/free pairs per step (does NOT strong-scale)

	AllreduceBytes int64 // payload of the per-step global reduction
	HaloBytes      int64 // nearest-neighbour exchange bytes per face
	HaloFaces      int

	// Init phase: fixed startup work plus RDMA registrations per rank
	// (GAMERA's dominant term on Fugaku, Sec. 6.4).
	InitCompute       time.Duration
	InitRegistrations int
	RegBytes          int64

	// RunVariance adds placement-dependent run-to-run variation (the error
	// bars the paper observed even under McKernel on GeoFEM).
	RunVariance float64
}

// Validate reports configuration errors.
func (w *Workload) Validate() error {
	if w.Name == "" {
		return errors.New("bsp: workload without name")
	}
	if w.RefNodes < 1 {
		return fmt.Errorf("bsp: %s: RefNodes %d", w.Name, w.RefNodes)
	}
	if w.Steps < 1 {
		return fmt.Errorf("bsp: %s: Steps %d", w.Name, w.Steps)
	}
	if w.StepCompute <= 0 {
		return fmt.Errorf("bsp: %s: StepCompute %v", w.Name, w.StepCompute)
	}
	return nil
}

// Geometry is a job's per-node rank/thread layout.
type Geometry struct {
	RanksPerNode   int
	ThreadsPerRank int
}

// Machine describes one platform configuration the workload runs on.
type Machine struct {
	OS             OS
	Fabric         *interconnect.Fabric
	Cores          []int // application cores on each node
	RanksPerNode   int
	ThreadsPerRank int
}

// Validate reports configuration errors.
func (m *Machine) Validate() error {
	if m.OS == nil || m.Fabric == nil {
		return errors.New("bsp: machine missing OS or fabric")
	}
	if len(m.Cores) == 0 {
		return errors.New("bsp: machine has no application cores")
	}
	if m.RanksPerNode < 1 || m.ThreadsPerRank < 1 {
		return fmt.Errorf("bsp: bad rank geometry %dx%d", m.RanksPerNode, m.ThreadsPerRank)
	}
	return nil
}

// Breakdown decomposes a run's wall time.
type Breakdown struct {
	Init    time.Duration
	Compute time.Duration
	MemMgmt time.Duration
	Comm    time.Duration
	Barrier time.Duration
	Noise   time.Duration
}

// Total sums the components.
func (b Breakdown) Total() time.Duration {
	return b.Init + b.Compute + b.MemMgmt + b.Comm + b.Barrier + b.Noise
}

// Result is the outcome of one run.
type Result struct {
	App       string
	OS        string
	Nodes     int
	Runtime   time.Duration
	Breakdown Breakdown
}

// Run executes the workload on nodes nodes of the machine.
func Run(w Workload, m Machine, nodes int, seed int64) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if nodes < 1 {
		return Result{}, fmt.Errorf("bsp: node count %d", nodes)
	}

	// Strong scaling shrinks per-rank work, working set and churn together.
	scale := 1.0
	if w.Scaling == StrongScaling {
		scale = float64(w.RefNodes) / float64(nodes)
	}
	stepCompute := time.Duration(float64(w.StepCompute) * scale)
	workingSet := int64(float64(w.WorkingSetPerRank) * scale)
	churn := int64(float64(w.HeapChurnPerStep) * scale)

	// Per-step compute with address-translation and cache-interference
	// overheads applied.
	overhead := m.OS.TranslationOverhead(workingSet, w.MemAccessPeriod)
	compute := time.Duration(float64(stepCompute) * (1 + overhead) * m.OS.CacheInterferenceFactor())

	memMgmt := m.OS.HeapChurnCost(churn, w.HeapCallsPerStep, m.ThreadsPerRank)

	allre, err := m.Fabric.Allreduce(w.AllreduceBytes, nodes)
	if err != nil {
		return Result{}, err
	}
	halo := time.Duration(0)
	if w.HaloBytes > 0 {
		halo, err = m.Fabric.HaloExchange(int64(float64(w.HaloBytes)*scale), w.HaloFaces, nodes)
		if err != nil {
			return Result{}, err
		}
	}
	comm := allre + halo

	barrier := m.OS.BarrierLatency(m.RanksPerNode*m.ThreadsPerRank) + m.Fabric.Barrier(nodes)

	init := w.InitCompute
	if w.InitRegistrations > 0 {
		init += time.Duration(w.InitRegistrations) * m.OS.RDMARegistrationCost(w.RegBytes)
	}

	stepBusy := compute + memMgmt + comm + barrier
	nominal := init + time.Duration(w.Steps)*stepBusy

	// Sample per-step noise delays: for every node, bucket its interruption
	// timeline into step windows and keep the global per-step maximum.
	noiseDelay := sampleStepNoise(m.OS.NoiseProfile(), m.Cores, nodes, w.Steps, init, stepBusy, nominal, seed)

	var total time.Duration
	for _, d := range noiseDelay {
		total += d
	}
	b := Breakdown{
		Init:    init,
		Compute: time.Duration(w.Steps) * compute,
		MemMgmt: time.Duration(w.Steps) * memMgmt,
		Comm:    time.Duration(w.Steps) * comm,
		Barrier: time.Duration(w.Steps) * barrier,
		Noise:   total,
	}
	runtime := b.Total()

	if w.RunVariance > 0 {
		rng := sim.NewRand(seed).DeriveNamed("placement:" + m.OS.Name())
		factor := 1 + w.RunVariance*rng.Normal(0, 1)
		if factor < 0.5 {
			factor = 0.5
		}
		runtime = time.Duration(float64(runtime) * factor)
	}

	telemetry.C("bsp.runs").Inc()
	telemetry.H("bsp.runtime_s", runtimeBuckets).Observe(runtime.Seconds())
	return Result{
		App: w.Name, OS: m.OS.Name(), Nodes: nodes,
		Runtime: runtime, Breakdown: b,
	}, nil
}

// runtimeBuckets covers sub-second micro-benchmarks up to hour-long sweeps.
var runtimeBuckets = telemetry.ExpBuckets(0.25, 2, 14)

// sampleStepNoise returns, for each step, the maximum interruption time any
// rank in the whole job suffers inside that step's window.
func sampleStepNoise(profile *noise.Profile, cores []int, nodes, steps int,
	init, stepBusy time.Duration, horizon time.Duration, seed int64) []time.Duration {

	delays := make([]time.Duration, steps)
	if stepBusy <= 0 {
		return delays
	}
	base := sim.NewRand(seed)
	for n := 0; n < nodes; n++ {
		tl := profile.Timeline(horizon, base.Derive(int64(n)))
		for _, core := range cores {
			perStep := map[int]time.Duration{}
			for _, iv := range tl.ForCPU(core) {
				at := iv.Start.Duration() - init
				if at < 0 {
					continue
				}
				step := int(at / stepBusy)
				if step >= steps {
					break
				}
				perStep[step] += iv.Len
			}
			for s, d := range perStep {
				if d > delays[s] {
					delays[s] = d
				}
			}
		}
	}
	return delays
}

// Compare runs the workload on two machines (typically Linux vs. McKernel on
// identical hardware) and returns the relative performance of b vs. a:
// runtimeA / runtimeB, matching the paper's plots where Linux is normalized
// to 1.0 and McKernel above 1.0 means the LWK wins.
func Compare(w Workload, a, b Machine, nodes int, seed int64) (ra, rb Result, relative float64, err error) {
	ra, err = Run(w, a, nodes, seed)
	if err != nil {
		return
	}
	rb, err = Run(w, b, nodes, seed)
	if err != nil {
		return
	}
	relative = float64(ra.Runtime) / float64(rb.Runtime)
	return
}
