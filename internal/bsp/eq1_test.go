package bsp

import (
	"math"
	"testing"
	"time"

	"mkos/internal/interconnect"
	"mkos/internal/noise"
)

// TestEq1Agreement validates the Monte-Carlo noise engine against the
// paper's analytic Eq. 1 across a parameter grid, in the regime Eq. 1
// models (at most one interruption per rank per window, hit probability
// near saturation). The two were derived independently — the analytic model
// from the paper's formula, the engine from per-step maxima over sampled
// timelines — so agreement is a real check, not a tautology.
func TestEq1Agreement(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo sweep")
	}
	cases := []struct {
		name    string
		length  time.Duration
		every   time.Duration // per-core interval
		s       time.Duration
		nodes   int
		threads int // per node
	}{
		{"paper-regime", 300 * time.Microsecond, time.Second, 10 * time.Millisecond, 64, 48},
		{"short-noise", 50 * time.Microsecond, 500 * time.Millisecond, 5 * time.Millisecond, 32, 48},
		{"long-interval", 1 * time.Millisecond, 10 * time.Second, 20 * time.Millisecond, 128, 48},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cores := make([]int, c.threads)
			for i := range cores {
				cores[i] = i
			}
			profile := &noise.Profile{}
			profile.MustAdd(&noise.Source{
				Name: "synthetic", Cores: cores, Mode: noise.TargetRandom,
				Every: c.every / time.Duration(c.threads), Length: c.length,
			})
			analytic := noise.AnalyticModel{Groups: []noise.Group{
				{Name: "synthetic", Length: c.length, Every: c.every},
			}}
			pred, _, err := analytic.Slowdown(c.s, c.nodes*c.threads)
			if err != nil {
				t.Fatal(err)
			}

			w := Workload{
				Name: "eq1", Scaling: WeakScaling, RefNodes: c.nodes,
				Steps: 400, StepCompute: c.s,
			}
			m := Machine{
				OS:     eq1OS{profile},
				Fabric: interconnect.TofuD(),
				Cores:  cores, RanksPerNode: 1, ThreadsPerRank: c.threads,
			}
			r, err := Run(w, m, c.nodes, 7)
			if err != nil {
				t.Fatal(err)
			}
			measured := float64(r.Breakdown.Noise) / float64(r.Breakdown.Compute)
			t.Logf("%s: analytic %.4f vs simulated %.4f", c.name, pred, measured)
			// Within 40% relative (Monte-Carlo variance on a few hundred
			// steps plus Eq. 1's single-hit approximation).
			if pred <= 0 {
				t.Fatal("degenerate prediction")
			}
			rel := math.Abs(measured-pred) / pred
			if rel > 0.4 {
				t.Errorf("analytic %.4f vs simulated %.4f disagree by %.0f%%", pred, measured, rel*100)
			}
		})
	}
}

// eq1OS is a noise-only cost model.
type eq1OS struct{ p *noise.Profile }

func (o eq1OS) Name() string                                     { return "eq1" }
func (o eq1OS) NoiseProfile() *noise.Profile                     { return o.p }
func (o eq1OS) TranslationOverhead(int64, time.Duration) float64 { return 0 }
func (o eq1OS) HeapChurnCost(int64, int, int) time.Duration      { return 0 }
func (o eq1OS) RDMARegistrationCost(int64) time.Duration         { return 0 }
func (o eq1OS) BarrierLatency(int) time.Duration                 { return 0 }
func (o eq1OS) CacheInterferenceFactor() float64                 { return 1 }
