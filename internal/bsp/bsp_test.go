package bsp

import (
	"testing"
	"time"

	"mkos/internal/interconnect"
	"mkos/internal/noise"
	"mkos/internal/sim"
)

// fakeOS is a minimal OS model with controllable costs.
type fakeOS struct {
	name     string
	profile  *noise.Profile
	overhead float64
	churn    time.Duration
	reg      time.Duration
	barrier  time.Duration
	cache    float64
}

func (f *fakeOS) Name() string                                     { return f.name }
func (f *fakeOS) NoiseProfile() *noise.Profile                     { return f.profile }
func (f *fakeOS) TranslationOverhead(int64, time.Duration) float64 { return f.overhead }
func (f *fakeOS) HeapChurnCost(int64, int, int) time.Duration      { return f.churn }
func (f *fakeOS) RDMARegistrationCost(int64) time.Duration         { return f.reg }
func (f *fakeOS) BarrierLatency(int) time.Duration                 { return f.barrier }
func (f *fakeOS) CacheInterferenceFactor() float64                 { return f.cache }

func quietOS(name string) *fakeOS {
	return &fakeOS{name: name, profile: &noise.Profile{}, cache: 1}
}

func noisyOS(name string, length, every time.Duration) *fakeOS {
	p := &noise.Profile{}
	p.MustAdd(&noise.Source{
		Name: "nz", Cores: []int{0, 1}, Mode: noise.TargetRandom,
		Every: every, Length: length,
	})
	return &fakeOS{name: name, profile: p, cache: 1}
}

func testWorkload() Workload {
	return Workload{
		Name: "w", Scaling: StrongScaling, RefNodes: 64,
		Steps: 10, StepCompute: 10 * time.Millisecond,
		WorkingSetPerRank: 1 << 30, MemAccessPeriod: 100 * time.Nanosecond,
	}
}

func testMachine(os OS) Machine {
	return Machine{
		OS: os, Fabric: interconnect.TofuD(),
		Cores: []int{0, 1}, RanksPerNode: 2, ThreadsPerRank: 1,
	}
}

func TestRunBasic(t *testing.T) {
	r, err := Run(testWorkload(), testMachine(quietOS("q")), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.App != "w" || r.OS != "q" || r.Nodes != 64 {
		t.Fatalf("metadata wrong: %+v", r)
	}
	// Quiet OS, no churn: runtime = steps*(compute+comm+barrier).
	if r.Breakdown.Noise != 0 {
		t.Fatalf("quiet OS produced noise %v", r.Breakdown.Noise)
	}
	if r.Breakdown.Compute != 100*time.Millisecond {
		t.Fatalf("compute = %v, want 100ms", r.Breakdown.Compute)
	}
	if r.Runtime != r.Breakdown.Total() {
		t.Fatal("runtime must equal breakdown total without variance")
	}
}

func TestStrongScalingShrinksCompute(t *testing.T) {
	w := testWorkload()
	m := testMachine(quietOS("q"))
	r64, _ := Run(w, m, 64, 1)
	r256, _ := Run(w, m, 256, 1)
	if r256.Breakdown.Compute*4 != r64.Breakdown.Compute {
		t.Fatalf("strong scaling: compute %v at 256 vs %v at 64", r256.Breakdown.Compute, r64.Breakdown.Compute)
	}
	// Running at fewer nodes than reference grows the work.
	r16, _ := Run(w, m, 16, 1)
	if r16.Breakdown.Compute != 4*r64.Breakdown.Compute {
		t.Fatal("sub-reference node counts must scale work up")
	}
}

func TestWeakScalingKeepsCompute(t *testing.T) {
	w := testWorkload()
	w.Scaling = WeakScaling
	m := testMachine(quietOS("q"))
	r64, _ := Run(w, m, 64, 1)
	r256, _ := Run(w, m, 256, 1)
	if r64.Breakdown.Compute != r256.Breakdown.Compute {
		t.Fatal("weak scaling must keep per-rank compute fixed")
	}
}

func TestNoiseDelaysSteps(t *testing.T) {
	w := testWorkload()
	quiet := testMachine(quietOS("quiet"))
	noisy := testMachine(noisyOS("noisy", 500*time.Microsecond, 5*time.Millisecond))
	rq, _ := Run(w, quiet, 64, 1)
	rn, _ := Run(w, noisy, 64, 1)
	if rn.Breakdown.Noise <= 0 {
		t.Fatal("noisy OS produced no noise delay")
	}
	if rn.Runtime <= rq.Runtime {
		t.Fatal("noise must slow the application")
	}
}

func TestNoiseAmplifiesWithNodes(t *testing.T) {
	// The Eq. 1 mechanism: more nodes → higher probability the per-step max
	// catches an interruption → larger total delay.
	w := testWorkload()
	m := testMachine(noisyOS("noisy", 300*time.Microsecond, 50*time.Millisecond))
	w.Scaling = WeakScaling // keep windows identical; only node count varies
	r1, _ := Run(w, m, 1, 42)
	r64, _ := Run(w, m, 64, 42)
	if r64.Breakdown.Noise <= r1.Breakdown.Noise {
		t.Fatalf("noise at 64 nodes (%v) must exceed 1 node (%v)",
			r64.Breakdown.Noise, r1.Breakdown.Noise)
	}
}

func TestTranslationAndCacheOverheads(t *testing.T) {
	w := testWorkload()
	slow := quietOS("slow")
	slow.overhead = 0.5
	slow.cache = 1.02
	fast := quietOS("fast")
	rs, _ := Run(w, testMachine(slow), 64, 1)
	rf, _ := Run(w, testMachine(fast), 64, 1)
	want := time.Duration(float64(rf.Breakdown.Compute) * 1.5 * 1.02)
	got := rs.Breakdown.Compute
	if got < want-time.Microsecond || got > want+time.Microsecond {
		t.Fatalf("compute with overheads = %v, want %v", got, want)
	}
}

func TestInitRegistrations(t *testing.T) {
	w := testWorkload()
	w.InitRegistrations = 100
	w.RegBytes = 1 << 20
	o := quietOS("o")
	o.reg = 5 * time.Microsecond
	r, _ := Run(w, testMachine(o), 64, 1)
	if r.Breakdown.Init != 500*time.Microsecond {
		t.Fatalf("init = %v, want 500us", r.Breakdown.Init)
	}
}

func TestChurnInBreakdown(t *testing.T) {
	w := testWorkload()
	w.HeapChurnPerStep = 1 << 20
	w.HeapCallsPerStep = 10
	o := quietOS("o")
	o.churn = 2 * time.Millisecond
	r, _ := Run(w, testMachine(o), 64, 1)
	if r.Breakdown.MemMgmt != 20*time.Millisecond {
		t.Fatalf("memMgmt = %v, want 20ms", r.Breakdown.MemMgmt)
	}
}

func TestRunVarianceDeterministicPerSeed(t *testing.T) {
	w := testWorkload()
	w.RunVariance = 0.05
	m := testMachine(quietOS("v"))
	a, _ := Run(w, m, 64, 1)
	b, _ := Run(w, m, 64, 1)
	if a.Runtime != b.Runtime {
		t.Fatal("same seed must reproduce exactly")
	}
	c, _ := Run(w, m, 64, 2)
	if a.Runtime == c.Runtime {
		t.Fatal("different seeds should vary under RunVariance")
	}
}

func TestValidationErrors(t *testing.T) {
	good := testWorkload()
	m := testMachine(quietOS("q"))

	bad := good
	bad.Name = ""
	if _, err := Run(bad, m, 4, 1); err == nil {
		t.Error("empty name accepted")
	}
	bad = good
	bad.Steps = 0
	if _, err := Run(bad, m, 4, 1); err == nil {
		t.Error("zero steps accepted")
	}
	bad = good
	bad.StepCompute = 0
	if _, err := Run(bad, m, 4, 1); err == nil {
		t.Error("zero compute accepted")
	}
	bad = good
	bad.RefNodes = 0
	if _, err := Run(bad, m, 4, 1); err == nil {
		t.Error("zero RefNodes accepted")
	}
	if _, err := Run(good, m, 0, 1); err == nil {
		t.Error("zero nodes accepted")
	}
	badM := m
	badM.OS = nil
	if _, err := Run(good, badM, 4, 1); err == nil {
		t.Error("nil OS accepted")
	}
	badM = m
	badM.Cores = nil
	if _, err := Run(good, badM, 4, 1); err == nil {
		t.Error("no cores accepted")
	}
	badM = m
	badM.RanksPerNode = 0
	if _, err := Run(good, badM, 4, 1); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestCompare(t *testing.T) {
	w := testWorkload()
	slow := quietOS("slow")
	slow.churn = 10 * time.Millisecond
	w.HeapChurnPerStep = 1 << 20
	fast := quietOS("fast")
	ra, rb, rel, err := Compare(w, testMachine(slow), testMachine(fast), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel <= 1.0 {
		t.Fatalf("relative = %v, slow OS must lose", rel)
	}
	if ra.OS != "slow" || rb.OS != "fast" {
		t.Fatal("result order wrong")
	}
}

func TestSampleStepNoiseWindows(t *testing.T) {
	// One deterministic source: every 10ms on core 0, 100us long. With
	// 10ms steps after 0 init, every step should catch about one event.
	p := &noise.Profile{}
	p.MustAdd(&noise.Source{
		Name: "tick", Cores: []int{0}, Mode: noise.TargetOne,
		Every: 10 * time.Millisecond, Length: 100 * time.Microsecond,
	})
	delays := sampleStepNoise(p, []int{0}, 1, 10, 0, 10*time.Millisecond, 100*time.Millisecond, 5)
	hits := 0
	for _, d := range delays {
		if d > 0 {
			hits++
		}
	}
	if hits < 8 {
		t.Fatalf("periodic source hit only %d/10 steps", hits)
	}
	// Zero step length yields zero delays.
	z := sampleStepNoise(p, []int{0}, 1, 5, 0, 0, time.Second, 5)
	for _, d := range z {
		if d != 0 {
			t.Fatal("zero stepBusy must produce no delays")
		}
	}
}

func TestGeometryStruct(t *testing.T) {
	g := Geometry{RanksPerNode: 4, ThreadsPerRank: 12}
	if g.RanksPerNode*g.ThreadsPerRank != 48 {
		t.Fatal("geometry arithmetic")
	}
	_ = sim.NewRand(1) // keep sim import for the engine's seed derivation
}
