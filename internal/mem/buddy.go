package mem

import (
	"errors"
	"fmt"
	"math"
)

// Buddy allocator errors.
var (
	ErrOutOfMemory = errors.New("mem: out of memory")
	ErrBadFree     = errors.New("mem: free of unallocated or misaligned block")
	ErrBadOrder    = errors.New("mem: order out of range")
)

// Buddy is a binary-buddy physical page allocator over one contiguous range,
// in the style of the Linux zone allocator. The block at order k spans
// 2^k base pages. Fragmentation emerges naturally: interleaved small
// allocations split high-order blocks, and freeing in a different order
// leaves the free lists populated with low orders only — exactly the
// condition the virtual NUMA nodes of Sec. 4.1.2 exist to prevent for
// application memory.
type Buddy struct {
	basePage int64
	maxOrder int
	base     int64
	size     int64

	free      []map[int64]struct{} // per-order set of free block bases
	allocated map[int64]int        // block base -> order

	allocCount uint64
	freeCount  uint64
	splits     uint64
	coalesces  uint64
}

// NewBuddy creates a buddy allocator managing size bytes starting at base,
// with the given base page size and maximum order. size must be a multiple
// of the maximum block size.
func NewBuddy(base, size, basePage int64, maxOrder int) (*Buddy, error) {
	if basePage <= 0 || size <= 0 || maxOrder < 0 || maxOrder > 30 {
		return nil, fmt.Errorf("mem: invalid buddy parameters base=%d size=%d page=%d order=%d",
			base, size, basePage, maxOrder)
	}
	maxBlock := basePage << maxOrder
	if size%maxBlock != 0 {
		return nil, fmt.Errorf("mem: size %d not a multiple of max block %d", size, maxBlock)
	}
	b := &Buddy{
		basePage:  basePage,
		maxOrder:  maxOrder,
		base:      base,
		size:      size,
		free:      make([]map[int64]struct{}, maxOrder+1),
		allocated: make(map[int64]int),
	}
	for i := range b.free {
		b.free[i] = make(map[int64]struct{})
	}
	for off := int64(0); off < size; off += maxBlock {
		b.free[maxOrder][base+off] = struct{}{}
	}
	return b, nil
}

// BasePage returns the base page size in bytes.
func (b *Buddy) BasePage() int64 { return b.basePage }

// MaxOrder returns the largest block order.
func (b *Buddy) MaxOrder() int { return b.maxOrder }

// TotalBytes returns the managed capacity.
func (b *Buddy) TotalBytes() int64 { return b.size }

// FreeBytes returns the bytes currently free.
func (b *Buddy) FreeBytes() int64 {
	var n int64
	for order, set := range b.free {
		n += int64(len(set)) * (b.basePage << order)
	}
	return n
}

// UsedBytes returns the bytes currently allocated.
func (b *Buddy) UsedBytes() int64 { return b.size - b.FreeBytes() }

// OrderFor returns the smallest order whose block covers n bytes.
func (b *Buddy) OrderFor(n int64) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("mem: non-positive allocation %d", n)
	}
	order := 0
	for (b.basePage << order) < n {
		order++
		if order > b.maxOrder {
			return 0, fmt.Errorf("%w: need %d bytes, max block %d", ErrBadOrder, n, b.basePage<<b.maxOrder)
		}
	}
	return order, nil
}

// lowestFreeBase returns the smallest base in the set; deterministic
// iteration is required because map order is randomized.
func lowestFreeBase(set map[int64]struct{}) int64 {
	best := int64(math.MaxInt64)
	for base := range set {
		if base < best {
			best = base
		}
	}
	return best
}

// AllocOrder allocates one block of the given order. It splits the smallest
// suitable larger block when the order's free list is empty.
func (b *Buddy) AllocOrder(order int) (Region, error) {
	if order < 0 || order > b.maxOrder {
		return Region{}, fmt.Errorf("%w: %d", ErrBadOrder, order)
	}
	cur := order
	for cur <= b.maxOrder && len(b.free[cur]) == 0 {
		cur++
	}
	if cur > b.maxOrder {
		return Region{}, fmt.Errorf("%w: order %d", ErrOutOfMemory, order)
	}
	base := lowestFreeBase(b.free[cur])
	delete(b.free[cur], base)
	// Split down to the requested order, parking the upper buddies.
	for cur > order {
		cur--
		b.splits++
		buddy := base + (b.basePage << cur)
		b.free[cur][buddy] = struct{}{}
	}
	b.allocated[base] = order
	b.allocCount++
	return Region{Base: base, Bytes: b.basePage << order, Order: order}, nil
}

// Alloc allocates the smallest block covering n bytes.
func (b *Buddy) Alloc(n int64) (Region, error) {
	order, err := b.OrderFor(n)
	if err != nil {
		return Region{}, err
	}
	return b.AllocOrder(order)
}

// Free releases a previously allocated region and coalesces with free
// buddies as far as possible.
func (b *Buddy) Free(r Region) error {
	order, ok := b.allocated[r.Base]
	if !ok || order != r.Order {
		return fmt.Errorf("%w: base=%d order=%d", ErrBadFree, r.Base, r.Order)
	}
	delete(b.allocated, r.Base)
	b.freeCount++
	base := r.Base
	for order < b.maxOrder {
		blockSize := b.basePage << order
		// The buddy address flips the block-size bit of the offset.
		buddy := b.base + ((base - b.base) ^ blockSize)
		if _, free := b.free[order][buddy]; !free {
			break
		}
		delete(b.free[order], buddy)
		if buddy < base {
			base = buddy
		}
		order++
		b.coalesces++
	}
	b.free[order][base] = struct{}{}
	return nil
}

// FreeBlocksAt returns the number of free blocks at the given order.
func (b *Buddy) FreeBlocksAt(order int) int {
	if order < 0 || order > b.maxOrder {
		return 0
	}
	return len(b.free[order])
}

// Fragmentation returns the free-memory fragmentation index for a target
// order: the fraction of free memory that is unusable for an allocation of
// that order because it sits in smaller blocks. 0 means every free byte is
// reachable at the target order; 1 means none is.
func (b *Buddy) Fragmentation(order int) float64 {
	if order < 0 || order > b.maxOrder {
		return 0
	}
	var usable, total int64
	for o, set := range b.free {
		bytes := int64(len(set)) * (b.basePage << o)
		total += bytes
		if o >= order {
			usable += bytes
		}
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(usable)/float64(total)
}

// Stats returns operation counters: allocations, frees, splits, coalesces.
func (b *Buddy) Stats() (allocs, frees, splits, coalesces uint64) {
	return b.allocCount, b.freeCount, b.splits, b.coalesces
}
