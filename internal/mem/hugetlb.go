package mem

import (
	"errors"
	"fmt"
)

// HugeTLBfs errors.
var (
	ErrPoolExhausted   = errors.New("mem: hugeTLBfs pool exhausted and overcommit disabled")
	ErrOvercommitLimit = errors.New("mem: hugeTLBfs overcommit limit reached")
)

// SurplusCharger is the hook the Fugaku kernel module installs to charge
// overcommitted (surplus) huge pages to the memory cgroup. Stock RHEL does
// not integrate hugeTLBfs surplus pages with the memory controller
// (Sec. 4.1.3); the hook returns an error to veto an allocation that would
// exceed the cgroup limit.
type SurplusCharger interface {
	ChargeSurplus(pages int64, pageBytes int64) error
	UncchargeSurplus(pages int64, pageBytes int64)
}

// HugeTLBfs models the Linux persistent-huge-page facility for one page
// size: an optional boot-time reserved pool plus optional runtime overcommit
// (surplus pages taken from the buddy allocator).
type HugeTLBfs struct {
	Page PageSize

	reserved     int64 // pool pages configured at boot
	reservedFree int64
	overcommit   bool
	surplusMax   int64 // 0 means unlimited when overcommit is on
	surplus      int64 // live surplus pages

	buddy       *Buddy // source of surplus pages
	surplusRegs []Region
	charger     SurplusCharger

	poolAllocs    uint64
	surplusAllocs uint64
}

// HugeTLBConfig configures a HugeTLBfs instance.
type HugeTLBConfig struct {
	Page         PageSize
	ReservedPool int64 // pages reserved at boot (shrinks general memory)
	Overcommit   bool  // allow surplus pages from the buddy allocator
	SurplusMax   int64 // cap on live surplus pages; 0 = unlimited
}

// NewHugeTLBfs builds the facility. When a pool is reserved, the pages are
// carved out of buddy immediately, mirroring how boot-time reservation
// limits the normal pages available to small-allocation workloads.
func NewHugeTLBfs(cfg HugeTLBConfig, buddy *Buddy) (*HugeTLBfs, error) {
	if cfg.Page <= 0 {
		return nil, fmt.Errorf("mem: bad huge page size %d", cfg.Page)
	}
	h := &HugeTLBfs{
		Page:       cfg.Page,
		overcommit: cfg.Overcommit,
		surplusMax: cfg.SurplusMax,
		buddy:      buddy,
	}
	for i := int64(0); i < cfg.ReservedPool; i++ {
		if _, err := buddy.Alloc(cfg.Page.Bytes()); err != nil {
			return nil, fmt.Errorf("mem: reserving huge page %d/%d: %w", i, cfg.ReservedPool, err)
		}
		h.reserved++
		h.reservedFree++
	}
	return h, nil
}

// SetCharger installs the cgroup surplus-charging hook.
func (h *HugeTLBfs) SetCharger(c SurplusCharger) { h.charger = c }

// PoolPages returns (reserved, reservedFree, surplusLive).
func (h *HugeTLBfs) PoolPages() (reserved, free, surplus int64) {
	return h.reserved, h.reservedFree, h.surplus
}

// Alloc obtains n huge pages: first from the reserved pool, then — if
// overcommit is enabled — as surplus pages from the buddy allocator, charged
// to the cgroup via the hook when one is installed.
func (h *HugeTLBfs) Alloc(n int64) error {
	if n <= 0 {
		return nil
	}
	fromPool := min64(n, h.reservedFree)
	needSurplus := n - fromPool
	if needSurplus > 0 {
		if !h.overcommit {
			return fmt.Errorf("%w: need %d surplus pages", ErrPoolExhausted, needSurplus)
		}
		if h.surplusMax > 0 && h.surplus+needSurplus > h.surplusMax {
			return fmt.Errorf("%w: %d live + %d wanted > %d", ErrOvercommitLimit, h.surplus, needSurplus, h.surplusMax)
		}
		if h.charger != nil {
			if err := h.charger.ChargeSurplus(needSurplus, h.Page.Bytes()); err != nil {
				return err
			}
		}
		var got int64
		for ; got < needSurplus; got++ {
			r, err := h.buddy.Alloc(h.Page.Bytes())
			if err == nil {
				h.surplusRegs = append(h.surplusRegs, r)
			}
			if err != nil {
				// Roll back the charge for pages we failed to obtain.
				if h.charger != nil {
					h.charger.UncchargeSurplus(needSurplus-got, h.Page.Bytes())
				}
				// Surplus pages actually obtained stay accounted below.
				needSurplus = got
				h.reservedFree -= fromPool
				h.surplus += got
				h.surplusAllocs += uint64(got)
				h.poolAllocs += uint64(fromPool)
				return fmt.Errorf("mem: buddy exhausted after %d surplus pages: %w", got, err)
			}
		}
	}
	h.reservedFree -= fromPool
	h.surplus += needSurplus
	h.poolAllocs += uint64(fromPool)
	h.surplusAllocs += uint64(needSurplus)
	return nil
}

// Release returns n huge pages. Surplus pages are released first (they go
// back to the buddy allocator and are uncharged); pool pages return to the
// reserved pool.
func (h *HugeTLBfs) Release(n int64) error {
	if n <= 0 {
		return nil
	}
	live := (h.reserved - h.reservedFree) + h.surplus
	if n > live {
		return fmt.Errorf("mem: releasing %d huge pages but only %d live", n, live)
	}
	fromSurplus := min64(n, h.surplus)
	h.surplus -= fromSurplus
	for i := int64(0); i < fromSurplus; i++ {
		r := h.surplusRegs[len(h.surplusRegs)-1]
		h.surplusRegs = h.surplusRegs[:len(h.surplusRegs)-1]
		if err := h.buddy.Free(r); err != nil {
			return fmt.Errorf("mem: returning surplus page to buddy: %w", err)
		}
	}
	if h.charger != nil && fromSurplus > 0 {
		h.charger.UncchargeSurplus(fromSurplus, h.Page.Bytes())
	}
	h.reservedFree += n - fromSurplus
	return nil
}

// Stats returns allocation counters (pool, surplus).
func (h *HugeTLBfs) Stats() (pool, surplus uint64) { return h.poolAllocs, h.surplusAllocs }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
