package mem

import (
	"errors"
	"fmt"
	"sort"
)

// VMA is one virtual memory area of an address space: a contiguous virtual
// range backed by pages of one size.
type VMA struct {
	Start     int64
	Length    int64
	Page      PageSize
	Contig    bool // mapped with the ARM64 contiguous bit (32 pages / entry)
	Label     string
	Backing   []Region
	Populated bool // false until faulted in (demand paging)
}

// End returns the first byte past the VMA.
func (v *VMA) End() int64 { return v.Start + v.Length }

// TLBFootprint returns the number of last-level TLB entries needed to map
// the whole VMA. The contiguous bit covers 32 physically contiguous pages
// with one entry (Sec. 4.1.3).
func (v *VMA) TLBFootprint() int64 {
	pages := v.Page.PagesFor(v.Length)
	if v.Contig {
		return (pages + 31) / 32
	}
	return pages
}

// EffectivePage returns the reach of a single TLB entry in this VMA.
func (v *VMA) EffectivePage() int64 {
	if v.Contig {
		return v.Page.Bytes() * 32
	}
	return v.Page.Bytes()
}

// AddressSpace is a process's page table, modelled at VMA granularity.
type AddressSpace struct {
	vmas   []*VMA // sorted by Start
	nextVA int64
}

// Address-space errors.
var (
	ErrOverlap   = errors.New("mem: VMA overlap")
	ErrNoMapping = errors.New("mem: no mapping at address")
)

// NewAddressSpace returns an empty address space. Virtual allocation starts
// above the traditional null guard region.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{nextVA: 1 << 20}
}

// Map installs a VMA at a chosen virtual address and returns it.
func (as *AddressSpace) Map(length int64, page PageSize, contig bool, label string) (*VMA, error) {
	if length <= 0 {
		return nil, fmt.Errorf("mem: non-positive mapping length %d", length)
	}
	length = page.Align(length)
	v := &VMA{Start: as.nextVA, Length: length, Page: page, Contig: contig, Label: label}
	as.nextVA = page.Align(v.End() + int64(page)) // guard gap
	as.vmas = append(as.vmas, v)
	return v, nil
}

// MapFixed installs a VMA at a caller-chosen address, failing on overlap.
func (as *AddressSpace) MapFixed(start, length int64, page PageSize, contig bool, label string) (*VMA, error) {
	if length <= 0 {
		return nil, fmt.Errorf("mem: non-positive mapping length %d", length)
	}
	length = page.Align(length)
	for _, v := range as.vmas {
		if start < v.End() && v.Start < start+length {
			return nil, fmt.Errorf("%w: [%d,%d) vs %q [%d,%d)", ErrOverlap, start, start+length, v.Label, v.Start, v.End())
		}
	}
	v := &VMA{Start: start, Length: length, Page: page, Contig: contig, Label: label}
	as.vmas = append(as.vmas, v)
	if v.End() > as.nextVA {
		as.nextVA = page.Align(v.End() + int64(page))
	}
	return v, nil
}

// Unmap removes a VMA, returning its backing regions for the caller to free.
func (as *AddressSpace) Unmap(v *VMA) ([]Region, error) {
	for i, cur := range as.vmas {
		if cur == v {
			as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
			return v.Backing, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrNoMapping, v.Label)
}

// Find returns the VMA containing addr.
func (as *AddressSpace) Find(addr int64) (*VMA, error) {
	for _, v := range as.vmas {
		if addr >= v.Start && addr < v.End() {
			return v, nil
		}
	}
	return nil, fmt.Errorf("%w: %#x", ErrNoMapping, addr)
}

// VMAs returns the areas sorted by start address.
func (as *AddressSpace) VMAs() []*VMA {
	out := append([]*VMA(nil), as.vmas...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// MappedBytes returns the total mapped length.
func (as *AddressSpace) MappedBytes() int64 {
	var n int64
	for _, v := range as.vmas {
		n += v.Length
	}
	return n
}

// TLBFootprint returns the total last-level TLB entries needed to cover the
// whole address space.
func (as *AddressSpace) TLBFootprint() int64 {
	var n int64
	for _, v := range as.vmas {
		n += v.TLBFootprint()
	}
	return n
}

// EffectivePageSize returns the mapped-bytes-weighted harmonic mean of the
// per-VMA effective page sizes. The harmonic mean is the right average
// because TLB entry consumption per byte is 1/pageSize.
func (as *AddressSpace) EffectivePageSize() int64 {
	total := as.MappedBytes()
	if total == 0 {
		return 0
	}
	foot := as.TLBFootprint()
	if foot == 0 {
		return 0
	}
	return total / foot
}
