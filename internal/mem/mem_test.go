package mem

import (
	"errors"
	"testing"
)

func TestPageSizeHelpers(t *testing.T) {
	if Page64K.String() != "64K" || Page2M.String() != "2M" || Page512M.String() != "512M" {
		t.Fatalf("String: %s %s %s", Page64K, Page2M, Page512M)
	}
	if PageSize(1<<30).String() != "1G" {
		t.Fatalf("1G String: %s", PageSize(1<<30))
	}
	if PageSize(123).String() != "123B" {
		t.Fatalf("raw String: %s", PageSize(123))
	}
	if Page4K.PagesFor(0) != 0 || Page4K.PagesFor(-5) != 0 {
		t.Fatal("PagesFor non-positive must be 0")
	}
	if Page4K.PagesFor(1) != 1 || Page4K.PagesFor(4096) != 1 || Page4K.PagesFor(4097) != 2 {
		t.Fatal("PagesFor rounding wrong")
	}
	if Page2M.Align(1) != 2<<20 {
		t.Fatalf("Align: %d", Page2M.Align(1))
	}
}

func testLayout() MemoryLayout {
	return MemoryLayout{
		AppNodes: []int64{64 << 20, 64 << 20},
		SysNodes: []int64{32 << 20},
		BasePage: 64 << 10,
		MaxOrder: 8, // 16 MiB max block
	}
}

func TestPhysMemoryConstruction(t *testing.T) {
	pm, err := NewPhysMemory(testLayout())
	if err != nil {
		t.Fatal(err)
	}
	if len(pm.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(pm.Nodes))
	}
	if len(pm.AppNodes()) != 2 || len(pm.SysNodes()) != 1 {
		t.Fatal("node kinds wrong")
	}
	if pm.TotalBytes() != 160<<20 {
		t.Fatalf("total = %d", pm.TotalBytes())
	}
	if pm.FreeBytes() != pm.TotalBytes() {
		t.Fatal("fresh memory must be all free")
	}
	if _, err := pm.Node(5); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("Node(5) err = %v", err)
	}
}

func TestPhysMemoryConstructionErrors(t *testing.T) {
	if _, err := NewPhysMemory(MemoryLayout{BasePage: 0}); err == nil {
		t.Fatal("zero base page must fail")
	}
	if _, err := NewPhysMemory(MemoryLayout{BasePage: 4096, MaxOrder: 8}); err == nil {
		t.Fatal("no domains must fail")
	}
	if _, err := NewPhysMemory(MemoryLayout{
		AppNodes: []int64{1 << 10}, BasePage: 64 << 10, MaxOrder: 8,
	}); err == nil {
		t.Fatal("domain smaller than max block must fail")
	}
}

func TestAllocKindVirtualNUMAIsolation(t *testing.T) {
	pm, err := NewPhysMemory(testLayout())
	if err != nil {
		t.Fatal(err)
	}
	// System allocations must land on the system domain when one exists.
	r, err := pm.AllocKind(SysNode, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Nodes[r.NUMA].Kind != SysNode {
		t.Fatalf("system allocation on %s domain %d", pm.Nodes[r.NUMA].Kind, r.NUMA)
	}
	// App allocations land on app domains.
	ra, err := pm.AllocKind(AppNode, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Nodes[ra.NUMA].Kind != AppNode {
		t.Fatalf("app allocation on %s domain", pm.Nodes[ra.NUMA].Kind)
	}
}

func TestAllocKindFallbackWithoutVirtualNUMA(t *testing.T) {
	layout := testLayout()
	layout.SysNodes = nil // OFP-style: no split
	pm, err := NewPhysMemory(layout)
	if err != nil {
		t.Fatal(err)
	}
	r, err := pm.AllocKind(SysNode, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Nodes[r.NUMA].Kind != AppNode {
		t.Fatal("without virtual NUMA, system allocations must fall on app domains")
	}
}

func TestAllocKindSpillsAcrossDomains(t *testing.T) {
	pm, err := NewPhysMemory(testLayout())
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust domain 0, the next app allocation must spill to domain 1.
	var first Region
	for i := 0; ; i++ {
		r, err := pm.AllocKind(AppNode, 16<<20)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = r
		}
		if r.NUMA != first.NUMA {
			return // spilled
		}
		if i > 100 {
			t.Fatal("never spilled")
		}
	}
}

func TestPhysMemoryFreeRoundTrip(t *testing.T) {
	pm, _ := NewPhysMemory(testLayout())
	r, err := pm.Alloc(1, 5<<20)
	if err != nil {
		t.Fatal(err)
	}
	if r.NUMA != 1 {
		t.Fatalf("NUMA = %d", r.NUMA)
	}
	if err := pm.Free(r); err != nil {
		t.Fatal(err)
	}
	if pm.FreeBytes() != pm.TotalBytes() {
		t.Fatal("leak after free")
	}
	r.NUMA = 99
	if err := pm.Free(r); err == nil {
		t.Fatal("free to bad domain must fail")
	}
}

func TestAppFragmentationMetric(t *testing.T) {
	pm, _ := NewPhysMemory(testLayout())
	if f := pm.AppFragmentation(8); f != 0 {
		t.Fatalf("pristine fragmentation = %v", f)
	}
	// Pin small blocks on both app domains and free neighbours.
	for _, domain := range []int{0, 1} {
		var regs []Region
		for i := 0; i < 8; i++ {
			r, err := pm.Alloc(domain, 64<<10)
			if err != nil {
				t.Fatal(err)
			}
			regs = append(regs, r)
		}
		for i := 0; i < len(regs); i += 2 {
			_ = pm.Free(regs[i])
		}
	}
	if f := pm.AppFragmentation(8); f <= 0 {
		t.Fatalf("expected positive app fragmentation, got %v", f)
	}
}

func TestVMAFootprint(t *testing.T) {
	as := NewAddressSpace()
	v, err := as.Map(64<<20, Page64K, false, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if v.TLBFootprint() != 1024 {
		t.Fatalf("64M/64K footprint = %d, want 1024", v.TLBFootprint())
	}
	vc, err := as.Map(64<<20, Page64K, true, "heap-contig")
	if err != nil {
		t.Fatal(err)
	}
	if vc.TLBFootprint() != 32 {
		t.Fatalf("contiguous-bit footprint = %d, want 32 (1024/32)", vc.TLBFootprint())
	}
	if vc.EffectivePage() != 2<<20 {
		t.Fatalf("contiguous 64K effective page = %d, want 2M (Sec. 4.1.3)", vc.EffectivePage())
	}
}

func TestAddressSpaceMapUnmap(t *testing.T) {
	as := NewAddressSpace()
	v1, err := as.Map(1<<20, Page64K, false, "a")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := as.Map(1<<20, Page2M, false, "b")
	if err != nil {
		t.Fatal(err)
	}
	if v1.End() > v2.Start {
		t.Fatal("sequential mappings overlap")
	}
	if as.MappedBytes() != v1.Length+v2.Length {
		t.Fatalf("MappedBytes = %d", as.MappedBytes())
	}
	if _, err := as.Find(v1.Start + 100); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Find(0); !errors.Is(err, ErrNoMapping) {
		t.Fatalf("Find(0) err = %v", err)
	}
	if _, err := as.Unmap(v1); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Unmap(v1); !errors.Is(err, ErrNoMapping) {
		t.Fatal("double unmap must fail")
	}
	if as.MappedBytes() != v2.Length {
		t.Fatal("unmap did not reduce mapped bytes")
	}
}

func TestAddressSpaceMapFixed(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.MapFixed(1<<30, 1<<20, Page64K, false, "fixed"); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapFixed(1<<30+4096, 1<<20, Page64K, false, "overlap"); !errors.Is(err, ErrOverlap) {
		t.Fatalf("overlap err = %v", err)
	}
	if _, err := as.MapFixed(0, -1, Page64K, false, "neg"); err == nil {
		t.Fatal("negative length must fail")
	}
	// Subsequent dynamic mappings must avoid the fixed area.
	v, err := as.Map(1<<20, Page64K, false, "after")
	if err != nil {
		t.Fatal(err)
	}
	if v.Start < 1<<30+1<<20 {
		t.Fatalf("dynamic mapping placed at %#x inside/before fixed area", v.Start)
	}
}

func TestEffectivePageSize(t *testing.T) {
	as := NewAddressSpace()
	if as.EffectivePageSize() != 0 {
		t.Fatal("empty AS effective page must be 0")
	}
	_, _ = as.Map(64<<20, Page64K, true, "contig") // effective 2M
	got := as.EffectivePageSize()
	if got != 2<<20 {
		t.Fatalf("effective page = %d, want 2M", got)
	}
	// Adding an equal-sized non-contig 64K area pulls the harmonic mean down.
	_, _ = as.Map(64<<20, Page64K, false, "plain")
	mixed := as.EffectivePageSize()
	if mixed >= got || mixed < 64<<10 {
		t.Fatalf("mixed effective page = %d", mixed)
	}
}

func TestVMAsSorted(t *testing.T) {
	as := NewAddressSpace()
	_, _ = as.MapFixed(10<<30, 1<<20, Page64K, false, "hi")
	_, _ = as.MapFixed(1<<30, 1<<20, Page64K, false, "lo")
	vmas := as.VMAs()
	if len(vmas) != 2 || vmas[0].Label != "lo" || vmas[1].Label != "hi" {
		t.Fatal("VMAs not sorted by start")
	}
}

func TestMemoryClassFlatMode(t *testing.T) {
	// KNL-style layout: DDR app domain + MCDRAM fast domain.
	pm, err := NewPhysMemory(MemoryLayout{
		AppNodes:     []int64{96 << 20},
		FastAppNodes: []int64{16 << 20},
		BasePage:     4 << 10, MaxOrder: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pm.FastNodes()) != 1 {
		t.Fatalf("fast nodes = %d", len(pm.FastNodes()))
	}
	if RegularMemory.String() != "regular" || FastMemory.String() != "fast" {
		t.Fatal("class strings wrong")
	}
	// Preferred allocation lands on MCDRAM first.
	fastID := pm.FastNodes()[0].ID
	r, err := pm.AllocPreferFast(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.NUMA != fastID {
		t.Fatalf("preferred allocation on domain %d, want fast %d", r.NUMA, fastID)
	}
	// Exhaust the fast tier: spills to DDR.
	for i := 0; ; i++ {
		r, err := pm.AllocPreferFast(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if r.NUMA != fastID {
			break // spilled
		}
		if i > 64 {
			t.Fatal("never spilled to DDR")
		}
	}
}

func TestFastResidency(t *testing.T) {
	pm, err := NewPhysMemory(MemoryLayout{
		AppNodes:     []int64{96 << 20},
		FastAppNodes: []int64{16 << 20},
		BasePage:     4 << 10, MaxOrder: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pm.FastResidency(8<<20) != 1 {
		t.Fatal("working set within MCDRAM must be fully resident")
	}
	half := pm.FastResidency(32 << 20)
	if half <= 0.4 || half >= 0.6 {
		t.Fatalf("residency = %v, want ~0.5", half)
	}
	if pm.FastResidency(0) != 1 {
		t.Fatal("degenerate working set")
	}
	// A no-fast-tier machine (Fugaku: HBM is the only memory) is all-fast
	// by construction... there are no fast domains, so residency reports 0
	// for any working set — callers treat an empty fast tier as uniform.
	uniform, err := NewPhysMemory(MemoryLayout{
		AppNodes: []int64{32 << 20}, BasePage: 4 << 10, MaxOrder: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := uniform.FastResidency(1 << 20); got != 0 {
		t.Fatalf("uniform-memory residency = %v", got)
	}
}
