package mem

import (
	"errors"
	"fmt"
)

// NodeKind distinguishes application NUMA domains from system ones under the
// virtual NUMA node scheme (Sec. 4.1.2).
type NodeKind int

const (
	// AppNode backs application allocations.
	AppNode NodeKind = iota
	// SysNode backs system (daemon, kernel) allocations; firmware exposes it
	// as a distinct NUMA domain so the kernel cannot mix the two.
	SysNode
)

func (k NodeKind) String() string {
	if k == SysNode {
		return "system"
	}
	return "app"
}

// MemoryClass distinguishes bandwidth tiers: OFP's KNL nodes run in
// "Quadrant flat mode; i.e., MCDRAM and DDR4 RAM are addressable at
// different physical memory locations and appear as different NUMA domains"
// (Sec. 6.1). HPC allocations prefer the fast tier and spill to DDR.
type MemoryClass int

const (
	// RegularMemory is DDR-class capacity memory.
	RegularMemory MemoryClass = iota
	// FastMemory is MCDRAM/HBM-class bandwidth memory.
	FastMemory
)

func (c MemoryClass) String() string {
	if c == FastMemory {
		return "fast"
	}
	return "regular"
}

// NUMANode is one NUMA domain's physical memory.
type NUMANode struct {
	ID    int
	Kind  NodeKind
	Class MemoryClass
	Buddy *Buddy
}

// PhysMemory models a node's physical memory as a set of NUMA domains.
type PhysMemory struct {
	Nodes []*NUMANode
}

// ErrNoSuchNode is returned for out-of-range NUMA node IDs.
var ErrNoSuchNode = errors.New("mem: no such NUMA node")

// MemoryLayout configures PhysMemory construction.
type MemoryLayout struct {
	// AppNodes and SysNodes give per-domain capacities in bytes. With
	// virtual NUMA disabled, SysNodes is empty and system allocations fall
	// on app domains.
	AppNodes []int64
	SysNodes []int64
	// FastAppNodes adds bandwidth-tier application domains (MCDRAM in the
	// KNL flat mode, allocated preferentially by AllocPreferFast).
	FastAppNodes []int64
	BasePage     int64
	MaxOrder     int
}

// NewPhysMemory builds the per-domain buddy allocators. Domain IDs are
// assigned app-first, matching cpu.Topology conventions.
func NewPhysMemory(layout MemoryLayout) (*PhysMemory, error) {
	if layout.BasePage <= 0 {
		return nil, fmt.Errorf("mem: bad base page %d", layout.BasePage)
	}
	pm := &PhysMemory{}
	var base int64
	add := func(size int64, kind NodeKind, class MemoryClass) error {
		maxBlock := layout.BasePage << layout.MaxOrder
		size = (size / maxBlock) * maxBlock
		if size <= 0 {
			return fmt.Errorf("mem: domain size too small for max block %d", maxBlock)
		}
		b, err := NewBuddy(base, size, layout.BasePage, layout.MaxOrder)
		if err != nil {
			return err
		}
		pm.Nodes = append(pm.Nodes, &NUMANode{ID: len(pm.Nodes), Kind: kind, Class: class, Buddy: b})
		base += size
		return nil
	}
	for _, sz := range layout.AppNodes {
		if err := add(sz, AppNode, RegularMemory); err != nil {
			return nil, err
		}
	}
	for _, sz := range layout.FastAppNodes {
		if err := add(sz, AppNode, FastMemory); err != nil {
			return nil, err
		}
	}
	for _, sz := range layout.SysNodes {
		if err := add(sz, SysNode, RegularMemory); err != nil {
			return nil, err
		}
	}
	if len(pm.Nodes) == 0 {
		return nil, errors.New("mem: no NUMA domains configured")
	}
	return pm, nil
}

// Node returns domain id, or an error if out of range.
func (pm *PhysMemory) Node(id int) (*NUMANode, error) {
	if id < 0 || id >= len(pm.Nodes) {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchNode, id)
	}
	return pm.Nodes[id], nil
}

// AppNodes returns the application domains.
func (pm *PhysMemory) AppNodes() []*NUMANode { return pm.nodesOf(AppNode) }

// SysNodes returns the system domains.
func (pm *PhysMemory) SysNodes() []*NUMANode { return pm.nodesOf(SysNode) }

func (pm *PhysMemory) nodesOf(kind NodeKind) []*NUMANode {
	var out []*NUMANode
	for _, n := range pm.Nodes {
		if n.Kind == kind {
			out = append(out, n)
		}
	}
	return out
}

// Alloc allocates n bytes on the given domain.
func (pm *PhysMemory) Alloc(numa int, n int64) (Region, error) {
	node, err := pm.Node(numa)
	if err != nil {
		return Region{}, err
	}
	r, err := node.Buddy.Alloc(n)
	if err != nil {
		return Region{}, err
	}
	r.NUMA = numa
	return r, nil
}

// AllocKind allocates n bytes on the first domain of the requested kind with
// room, falling back across domains of that kind. Without virtual NUMA
// (no SysNode domains), system allocations land on app domains — the exact
// fragmentation hazard Sec. 4.1.2 describes.
func (pm *PhysMemory) AllocKind(kind NodeKind, n int64) (Region, error) {
	candidates := pm.nodesOf(kind)
	if len(candidates) == 0 && kind == SysNode {
		candidates = pm.nodesOf(AppNode)
	}
	var lastErr error = ErrOutOfMemory
	for _, node := range candidates {
		r, err := node.Buddy.Alloc(n)
		if err == nil {
			r.NUMA = node.ID
			return r, nil
		}
		lastErr = err
	}
	return Region{}, lastErr
}

// Free releases a region back to its domain.
func (pm *PhysMemory) Free(r Region) error {
	node, err := pm.Node(r.NUMA)
	if err != nil {
		return err
	}
	return node.Buddy.Free(r)
}

// TotalBytes returns the capacity across all domains.
func (pm *PhysMemory) TotalBytes() int64 {
	var n int64
	for _, node := range pm.Nodes {
		n += node.Buddy.TotalBytes()
	}
	return n
}

// FreeBytes returns free bytes across all domains.
func (pm *PhysMemory) FreeBytes() int64 {
	var n int64
	for _, node := range pm.Nodes {
		n += node.Buddy.FreeBytes()
	}
	return n
}

// FastNodes returns the bandwidth-tier application domains.
func (pm *PhysMemory) FastNodes() []*NUMANode {
	var out []*NUMANode
	for _, n := range pm.Nodes {
		if n.Kind == AppNode && n.Class == FastMemory {
			out = append(out, n)
		}
	}
	return out
}

// AllocPreferFast is the numactl --preferred policy HPC codes use in flat
// mode: take MCDRAM/HBM while it lasts, spill to DDR after.
func (pm *PhysMemory) AllocPreferFast(n int64) (Region, error) {
	for _, node := range pm.FastNodes() {
		if r, err := node.Buddy.Alloc(n); err == nil {
			r.NUMA = node.ID
			return r, nil
		}
	}
	return pm.AllocKind(AppNode, n)
}

// FastResidency returns the fraction of an application working set that
// fits the fast tier — the bandwidth-model input for flat-mode platforms.
func (pm *PhysMemory) FastResidency(workingSet int64) float64 {
	if workingSet <= 0 {
		return 1
	}
	var fast int64
	for _, n := range pm.FastNodes() {
		fast += n.Buddy.TotalBytes()
	}
	if fast >= workingSet {
		return 1
	}
	return float64(fast) / float64(workingSet)
}

// AppFragmentation returns the mean fragmentation index of application
// domains at the given order — the quantity virtual NUMA nodes protect.
func (pm *PhysMemory) AppFragmentation(order int) float64 {
	nodes := pm.AppNodes()
	if len(nodes) == 0 {
		return 0
	}
	sum := 0.0
	for _, n := range nodes {
		sum += n.Buddy.Fragmentation(order)
	}
	return sum / float64(len(nodes))
}
