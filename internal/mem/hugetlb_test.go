package mem

import (
	"errors"
	"testing"
)

func newHugeBuddy(t *testing.T) *Buddy {
	t.Helper()
	// 256 MiB, 64 KiB base pages, order 12 => 256 MiB max block... too big;
	// order 11 gives 128 MiB blocks; choose order 5 (2 MiB) so huge pages
	// are exactly max-order blocks.
	b, err := NewBuddy(0, 256<<20, 64<<10, 5)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

type recordingCharger struct {
	charged   int64
	uncharged int64
	limit     int64 // veto when charged-uncharged exceeds limit (bytes)
}

func (c *recordingCharger) ChargeSurplus(pages, pageBytes int64) error {
	if c.limit > 0 && (c.charged-c.uncharged+pages*pageBytes) > c.limit {
		return errors.New("cgroup limit")
	}
	c.charged += pages * pageBytes
	return nil
}

func (c *recordingCharger) UncchargeSurplus(pages, pageBytes int64) {
	c.uncharged += pages * pageBytes
}

func TestHugeTLBReservedPool(t *testing.T) {
	b := newHugeBuddy(t)
	h, err := NewHugeTLBfs(HugeTLBConfig{Page: Page2M, ReservedPool: 10}, b)
	if err != nil {
		t.Fatal(err)
	}
	// Reservation must shrink general memory (the paper's stated downside).
	if b.FreeBytes() != 256<<20-10*(2<<20) {
		t.Fatalf("free after reservation = %d", b.FreeBytes())
	}
	if err := h.Alloc(10); err != nil {
		t.Fatal(err)
	}
	_, free, surplus := h.PoolPages()
	if free != 0 || surplus != 0 {
		t.Fatalf("pool state = free %d surplus %d", free, surplus)
	}
	// Pool exhausted and no overcommit: must fail.
	if err := h.Alloc(1); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v, want ErrPoolExhausted", err)
	}
	if err := h.Release(10); err != nil {
		t.Fatal(err)
	}
	_, free, _ = h.PoolPages()
	if free != 10 {
		t.Fatalf("pool free after release = %d", free)
	}
}

func TestHugeTLBOvercommit(t *testing.T) {
	b := newHugeBuddy(t)
	h, err := NewHugeTLBfs(HugeTLBConfig{Page: Page2M, Overcommit: true}, b)
	if err != nil {
		t.Fatal(err)
	}
	// Fugaku config: no boot pool, pages come from the buddy at runtime.
	if b.FreeBytes() != 256<<20 {
		t.Fatal("overcommit-only config must not reserve at boot")
	}
	if err := h.Alloc(20); err != nil {
		t.Fatal(err)
	}
	_, _, surplus := h.PoolPages()
	if surplus != 20 {
		t.Fatalf("surplus = %d", surplus)
	}
	if b.UsedBytes() != 20*(2<<20) {
		t.Fatalf("buddy used = %d", b.UsedBytes())
	}
	if err := h.Release(20); err != nil {
		t.Fatal(err)
	}
	if b.UsedBytes() != 0 {
		t.Fatal("surplus release must return pages to the buddy allocator")
	}
}

func TestHugeTLBSurplusMax(t *testing.T) {
	b := newHugeBuddy(t)
	h, _ := NewHugeTLBfs(HugeTLBConfig{Page: Page2M, Overcommit: true, SurplusMax: 5}, b)
	if err := h.Alloc(5); err != nil {
		t.Fatal(err)
	}
	if err := h.Alloc(1); !errors.Is(err, ErrOvercommitLimit) {
		t.Fatalf("err = %v, want ErrOvercommitLimit", err)
	}
}

func TestHugeTLBCgroupCharging(t *testing.T) {
	b := newHugeBuddy(t)
	h, _ := NewHugeTLBfs(HugeTLBConfig{Page: Page2M, ReservedPool: 2, Overcommit: true}, b)
	ch := &recordingCharger{}
	h.SetCharger(ch)
	// First 2 pages come from the pool: not charged (pool pages are counted
	// at reservation time in real systems).
	if err := h.Alloc(2); err != nil {
		t.Fatal(err)
	}
	if ch.charged != 0 {
		t.Fatal("pool pages must not be charged as surplus")
	}
	// Next 3 are surplus: charged.
	if err := h.Alloc(3); err != nil {
		t.Fatal(err)
	}
	if ch.charged != 3*(2<<20) {
		t.Fatalf("charged = %d", ch.charged)
	}
	if err := h.Release(5); err != nil {
		t.Fatal(err)
	}
	if ch.uncharged != 3*(2<<20) {
		t.Fatalf("uncharged = %d", ch.uncharged)
	}
}

func TestHugeTLBCgroupVeto(t *testing.T) {
	// This is the integration gap of Sec. 4.1.3: without the hook, surplus
	// pages escape the memory cgroup; with it, the cgroup can veto.
	b := newHugeBuddy(t)
	h, _ := NewHugeTLBfs(HugeTLBConfig{Page: Page2M, Overcommit: true}, b)
	ch := &recordingCharger{limit: 4 * (2 << 20)}
	h.SetCharger(ch)
	if err := h.Alloc(4); err != nil {
		t.Fatal(err)
	}
	if err := h.Alloc(1); err == nil {
		t.Fatal("charger veto must fail the allocation")
	}
	_, _, surplus := h.PoolPages()
	if surplus != 4 {
		t.Fatalf("surplus after veto = %d, want 4", surplus)
	}
}

func TestHugeTLBReleaseTooMany(t *testing.T) {
	b := newHugeBuddy(t)
	h, _ := NewHugeTLBfs(HugeTLBConfig{Page: Page2M, ReservedPool: 1}, b)
	if err := h.Release(1); err == nil {
		t.Fatal("releasing more than live must fail")
	}
}

func TestHugeTLBZeroOps(t *testing.T) {
	b := newHugeBuddy(t)
	h, _ := NewHugeTLBfs(HugeTLBConfig{Page: Page2M, Overcommit: true}, b)
	if err := h.Alloc(0); err != nil {
		t.Fatal(err)
	}
	if err := h.Release(0); err != nil {
		t.Fatal(err)
	}
	if err := h.Alloc(-3); err != nil {
		t.Fatal(err)
	}
}

func TestHugeTLBBadConfig(t *testing.T) {
	b := newHugeBuddy(t)
	if _, err := NewHugeTLBfs(HugeTLBConfig{Page: 0}, b); err == nil {
		t.Fatal("zero page size must fail")
	}
	// Pool bigger than memory must fail.
	if _, err := NewHugeTLBfs(HugeTLBConfig{Page: Page2M, ReservedPool: 1000}, b); err == nil {
		t.Fatal("oversized pool must fail")
	}
}

func TestHugeTLBStats(t *testing.T) {
	b := newHugeBuddy(t)
	h, _ := NewHugeTLBfs(HugeTLBConfig{Page: Page2M, ReservedPool: 2, Overcommit: true}, b)
	_ = h.Alloc(5)
	pool, surplus := h.Stats()
	if pool != 2 || surplus != 3 {
		t.Fatalf("stats = %d/%d, want 2/3", pool, surplus)
	}
}
