// Package mem models the physical-memory substrate of a compute node: NUMA
// domains (including Fugaku's virtual NUMA split of system vs. application
// memory), a buddy allocator with a fragmentation metric, multi-size page
// mappings (64 KiB base pages, 2 MiB contiguous-bit pages, 512 MiB huge
// pages) and the hugeTLBfs pool with overcommit and cgroup surplus charging.
package mem

import "fmt"

// PageSize enumerates the page sizes of the modelled systems.
type PageSize int64

// Page sizes used by the two platforms (Sec. 4.1.3): x86_64 uses 4 KiB base
// pages and 2 MiB THP; RHEL on A64FX uses a 64 KiB base page, a 2 MiB page
// via the contiguous bit, and a 512 MiB regular huge page.
const (
	Page4K   PageSize = 4 << 10
	Page64K  PageSize = 64 << 10
	Page2M   PageSize = 2 << 20
	Page512M PageSize = 512 << 20
)

// String formats the page size in conventional units.
func (p PageSize) String() string {
	switch {
	case p >= 1<<30 && p%(1<<30) == 0:
		return fmt.Sprintf("%dG", int64(p)>>30)
	case p >= 1<<20 && p%(1<<20) == 0:
		return fmt.Sprintf("%dM", int64(p)>>20)
	case p >= 1<<10 && p%(1<<10) == 0:
		return fmt.Sprintf("%dK", int64(p)>>10)
	default:
		return fmt.Sprintf("%dB", int64(p))
	}
}

// Bytes returns the size in bytes.
func (p PageSize) Bytes() int64 { return int64(p) }

// PagesFor returns how many pages of this size cover n bytes.
func (p PageSize) PagesFor(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + int64(p) - 1) / int64(p)
}

// Align rounds n up to a multiple of the page size.
func (p PageSize) Align(n int64) int64 {
	return p.PagesFor(n) * int64(p)
}

// Region is a span of physical memory handed out by an allocator.
type Region struct {
	Base  int64
	Bytes int64
	NUMA  int
	Order int // buddy order the region was carved from
}

// End returns the first byte past the region.
func (r Region) End() int64 { return r.Base + r.Bytes }
