package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestBuddy(t *testing.T) *Buddy {
	t.Helper()
	// 64 MiB with 64 KiB base pages, max order 10 (64 MiB max block).
	b, err := NewBuddy(0, 64<<20, 64<<10, 10)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBuddyBasicAllocFree(t *testing.T) {
	b := newTestBuddy(t)
	if b.FreeBytes() != 64<<20 {
		t.Fatalf("initial free = %d", b.FreeBytes())
	}
	r, err := b.Alloc(100 << 10) // rounds to 128 KiB (order 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes != 128<<10 || r.Order != 1 {
		t.Fatalf("allocated %d bytes order %d, want 128K order 1", r.Bytes, r.Order)
	}
	if b.UsedBytes() != 128<<10 {
		t.Fatalf("used = %d", b.UsedBytes())
	}
	if err := b.Free(r); err != nil {
		t.Fatal(err)
	}
	if b.FreeBytes() != 64<<20 {
		t.Fatalf("free after release = %d", b.FreeBytes())
	}
	// Full coalescing must restore the single max-order block.
	if b.FreeBlocksAt(10) != 1 {
		t.Fatalf("max-order blocks after coalesce = %d, want 1", b.FreeBlocksAt(10))
	}
}

func TestBuddyDoubleFree(t *testing.T) {
	b := newTestBuddy(t)
	r, err := b.Alloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Free(r); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(r); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free: err = %v, want ErrBadFree", err)
	}
}

func TestBuddyOutOfMemory(t *testing.T) {
	b := newTestBuddy(t)
	var regs []Region
	for {
		r, err := b.AllocOrder(10)
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("err = %v", err)
			}
			break
		}
		regs = append(regs, r)
	}
	if len(regs) != 1 {
		t.Fatalf("allocated %d max-order blocks from 64MiB/64MiB, want 1", len(regs))
	}
}

func TestBuddyBadOrder(t *testing.T) {
	b := newTestBuddy(t)
	if _, err := b.AllocOrder(11); !errors.Is(err, ErrBadOrder) {
		t.Fatalf("err = %v", err)
	}
	if _, err := b.AllocOrder(-1); !errors.Is(err, ErrBadOrder) {
		t.Fatalf("err = %v", err)
	}
	if _, err := b.Alloc(128 << 20); !errors.Is(err, ErrBadOrder) {
		t.Fatalf("oversized alloc err = %v", err)
	}
	if _, err := b.Alloc(0); err == nil {
		t.Fatal("zero alloc must fail")
	}
}

func TestBuddyConstructorValidation(t *testing.T) {
	if _, err := NewBuddy(0, 0, 4096, 5); err == nil {
		t.Fatal("zero size must fail")
	}
	if _, err := NewBuddy(0, 1<<20, 0, 5); err == nil {
		t.Fatal("zero page must fail")
	}
	if _, err := NewBuddy(0, 3<<20, 1<<20, 1); err == nil {
		t.Fatal("size not multiple of max block must fail")
	}
	if _, err := NewBuddy(0, 1<<20, 4096, 31); err == nil {
		t.Fatal("excessive order must fail")
	}
}

func TestBuddySplitAndCoalesceCounters(t *testing.T) {
	b := newTestBuddy(t)
	r, _ := b.Alloc(64 << 10) // order 0 from a single order-10 block: 10 splits
	_, _, splits, _ := b.Stats()
	if splits != 10 {
		t.Fatalf("splits = %d, want 10", splits)
	}
	_ = b.Free(r)
	_, _, _, coalesces := b.Stats()
	if coalesces != 10 {
		t.Fatalf("coalesces = %d, want 10", coalesces)
	}
}

func TestBuddyFragmentation(t *testing.T) {
	b := newTestBuddy(t)
	if f := b.Fragmentation(10); f != 0 {
		t.Fatalf("pristine fragmentation = %v", f)
	}
	// Allocate two small blocks out of the same max block and free only one:
	// the remaining free memory cannot form a max-order block.
	r1, _ := b.Alloc(64 << 10)
	r2, _ := b.Alloc(64 << 10)
	_ = b.Free(r1)
	f := b.Fragmentation(10)
	if f <= 0 || f > 1 {
		t.Fatalf("fragmentation with pinned page = %v, want (0,1]", f)
	}
	_ = b.Free(r2)
	if f := b.Fragmentation(10); f != 0 {
		t.Fatalf("fragmentation after full free = %v", f)
	}
}

func TestBuddyInterleavedChurnFragmentsHighOrders(t *testing.T) {
	// Simulates the Sec. 4.1.2 hazard: long-lived small system allocations
	// interleaved with application churn destroy high-order availability.
	b := newTestBuddy(t)
	rng := rand.New(rand.NewSource(1))
	var pinned []Region
	var churn []Region
	for i := 0; i < 200; i++ {
		r, err := b.Alloc(64 << 10)
		if err != nil {
			break
		}
		if rng.Intn(4) == 0 {
			pinned = append(pinned, r)
		} else {
			churn = append(churn, r)
		}
	}
	for _, r := range churn {
		_ = b.Free(r)
	}
	if f := b.Fragmentation(9); f <= 0 {
		t.Fatalf("expected high-order fragmentation with pinned pages, got %v", f)
	}
	for _, r := range pinned {
		_ = b.Free(r)
	}
	if f := b.Fragmentation(10); f != 0 {
		t.Fatalf("fragmentation should vanish after all frees, got %v", f)
	}
}

func TestBuddyDeterministicPlacement(t *testing.T) {
	// Identical operation sequences must give identical placements: the
	// allocator must not depend on map iteration order.
	run := func() []int64 {
		b := newTestBuddy(t)
		var bases []int64
		var regs []Region
		for i := 0; i < 50; i++ {
			r, err := b.Alloc(64 << 10)
			if err != nil {
				t.Fatal(err)
			}
			bases = append(bases, r.Base)
			regs = append(regs, r)
		}
		for i := 0; i < 25; i++ {
			_ = b.Free(regs[i*2])
		}
		for i := 0; i < 10; i++ {
			r, err := b.Alloc(128 << 10)
			if err != nil {
				t.Fatal(err)
			}
			bases = append(bases, r.Base)
		}
		return bases
	}
	a, c := run(), run()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("placement diverged at op %d: %d vs %d", i, a[i], c[i])
		}
	}
}

// Property: alloc/free round trips conserve memory exactly, for random
// operation sequences.
func TestQuickBuddyConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		b, err := NewBuddy(0, 16<<20, 64<<10, 8)
		if err != nil {
			return false
		}
		var live []Region
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				order := int(op) % 4
				r, err := b.AllocOrder(order)
				if err == nil {
					live = append(live, r)
				}
			} else {
				idx := int(op) % len(live)
				if b.Free(live[idx]) != nil {
					return false
				}
				live = append(live[:idx], live[idx+1:]...)
			}
			var liveBytes int64
			for _, r := range live {
				liveBytes += r.Bytes
			}
			if b.UsedBytes() != liveBytes {
				return false
			}
		}
		for _, r := range live {
			if b.Free(r) != nil {
				return false
			}
		}
		return b.FreeBytes() == 16<<20 && b.FreeBlocksAt(8) == 16<<20/(64<<10<<8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: no two live regions overlap.
func TestQuickBuddyNoOverlap(t *testing.T) {
	f := func(ops []uint8) bool {
		b, err := NewBuddy(0, 8<<20, 64<<10, 7)
		if err != nil {
			return false
		}
		var live []Region
		for _, op := range ops {
			r, err := b.AllocOrder(int(op) % 3)
			if err != nil {
				continue
			}
			for _, o := range live {
				if r.Base < o.End() && o.Base < r.End() {
					return false
				}
			}
			live = append(live, r)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
