package mckernel

import (
	"errors"
	"testing"
)

// futexFixture spawns a process with n threads and dispatches all of them.
func futexFixture(t *testing.T, n int) (*Instance, *FutexTable, []*Thread) {
	t.Helper()
	in := fugakuInstance(t)
	p, err := in.Spawn("omp", n)
	if err != nil {
		t.Fatal(err)
	}
	var running []*Thread
	for _, th := range p.Threads {
		r, err := in.Scheduler.Dispatch(th.Core)
		if err != nil {
			t.Fatal(err)
		}
		running = append(running, r)
	}
	return in, NewFutexTable(in.Scheduler), running
}

func TestFutexWaitWake(t *testing.T) {
	_, f, ths := futexFixture(t, 2)
	const addr = 0x1000
	f.Store(addr, 7)

	if err := f.Wait(ths[0], addr, 7); err != nil {
		t.Fatal(err)
	}
	if ths[0].State != ThreadBlocked {
		t.Fatal("waiter not blocked")
	}
	if f.Waiters(addr) != 1 {
		t.Fatalf("waiters = %d", f.Waiters(addr))
	}
	woken, err := f.Wake(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if woken != 1 {
		t.Fatalf("woken = %d", woken)
	}
	if ths[0].State != ThreadReady {
		t.Fatal("waiter not woken")
	}
	if f.Waiters(addr) != 0 {
		t.Fatal("queue not drained")
	}
}

func TestFutexLostWakeupGuard(t *testing.T) {
	_, f, ths := futexFixture(t, 1)
	const addr = 0x2000
	f.Store(addr, 1)
	// The value changed before the wait: EAGAIN, no block.
	if err := f.Wait(ths[0], addr, 0); !errors.Is(err, ErrFutexAgain) {
		t.Fatalf("err = %v, want EAGAIN", err)
	}
	if ths[0].State != ThreadRunning {
		t.Fatal("EAGAIN must not block")
	}
}

func TestFutexWaitFromNonRunning(t *testing.T) {
	in, f, _ := futexFixture(t, 1)
	p, _ := in.Spawn("x", 1)
	if err := f.Wait(p.Threads[0], 0x10, 0); !errors.Is(err, ErrFutexNotRun) {
		t.Fatalf("err = %v", err)
	}
}

func TestFutexWakeFIFOAndCount(t *testing.T) {
	_, f, ths := futexFixture(t, 3)
	const addr = 0x3000
	f.Store(addr, 0)
	for _, th := range ths {
		if err := f.Wait(th, addr, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Wake 2 of 3: the first two blockers in FIFO order.
	woken, err := f.Wake(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if woken != 2 {
		t.Fatalf("woken = %d", woken)
	}
	if ths[0].State != ThreadReady || ths[1].State != ThreadReady {
		t.Fatal("FIFO order violated")
	}
	if ths[2].State != ThreadBlocked {
		t.Fatal("third waiter must stay blocked")
	}
	if f.Waiters(addr) != 1 {
		t.Fatalf("waiters = %d", f.Waiters(addr))
	}
	// Waking more than available returns what it can; zero is a no-op.
	if n, _ := f.Wake(addr, 10); n != 1 {
		t.Fatalf("woken = %d", n)
	}
	if n, _ := f.Wake(addr, 0); n != 0 {
		t.Fatal("wake 0 must be a no-op")
	}
}

func TestFutexRequeue(t *testing.T) {
	_, f, ths := futexFixture(t, 3)
	const condAddr, mutexAddr = 0x4000, 0x5000
	f.Store(condAddr, 0)
	for _, th := range ths {
		if err := f.Wait(th, condAddr, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Broadcast-style: wake one, requeue the rest onto the mutex.
	woken, moved, err := f.Requeue(condAddr, mutexAddr, 1, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if woken != 1 || moved != 2 {
		t.Fatalf("woken/moved = %d/%d, want 1/2", woken, moved)
	}
	if f.Waiters(condAddr) != 0 || f.Waiters(mutexAddr) != 2 {
		t.Fatalf("queues = %d/%d", f.Waiters(condAddr), f.Waiters(mutexAddr))
	}
	// Requeue with stale expect fails.
	f.Store(condAddr, 5)
	if _, _, err := f.Requeue(condAddr, mutexAddr, 1, 1, 0); !errors.Is(err, ErrFutexAgain) {
		t.Fatalf("err = %v", err)
	}
}

func TestFutexBarrier(t *testing.T) {
	_, f, ths := futexFixture(t, 4)
	b, err := NewBarrier(f, 4, 0x6000)
	if err != nil {
		t.Fatal(err)
	}
	// First three arrivers block.
	for i := 0; i < 3; i++ {
		released, err := b.Arrive(ths[i])
		if err != nil {
			t.Fatal(err)
		}
		if released {
			t.Fatalf("arriver %d released early", i)
		}
		if ths[i].State != ThreadBlocked {
			t.Fatalf("arriver %d not blocked", i)
		}
	}
	// The last arriver releases everyone.
	released, err := b.Arrive(ths[3])
	if err != nil {
		t.Fatal(err)
	}
	if !released {
		t.Fatal("last arriver must release the barrier")
	}
	for i := 0; i < 3; i++ {
		if ths[i].State != ThreadReady {
			t.Fatalf("waiter %d not released", i)
		}
	}
	// The barrier is reusable: generation advanced.
	if f.Load(0x6000) != 1 {
		t.Fatalf("generation = %d", f.Load(0x6000))
	}
	if _, err := NewBarrier(f, 0, 0x7000); err == nil {
		t.Fatal("zero-size barrier must fail")
	}
}
