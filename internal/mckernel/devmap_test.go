package mckernel

import (
	"errors"
	"strings"
	"testing"
)

func TestMapDeviceLifecycle(t *testing.T) {
	in := fugakuInstance(t)
	p, err := in.Spawn("mpi", 4)
	if err != nil {
		t.Fatal(err)
	}
	m, setup, err := in.MapDevice(p, TofuNIC())
	if err != nil {
		t.Fatal(err)
	}
	if setup <= 0 {
		t.Fatal("control-path setup must cost something")
	}
	if len(p.Mappings()) != 1 {
		t.Fatalf("mappings = %d", len(p.Mappings()))
	}
	if !strings.HasPrefix(m.VMA.Label, "mmio:") {
		t.Fatalf("VMA label = %s", m.VMA.Label)
	}
	if m.VMA.Length < TofuNIC().MMIOBytes {
		t.Fatal("window too small")
	}
	if err := in.UnmapDevice(m); err != nil {
		t.Fatal(err)
	}
	if len(p.Mappings()) != 0 {
		t.Fatal("mapping not removed")
	}
	if err := in.UnmapDevice(m); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("double unmap err = %v", err)
	}
}

func TestMapDeviceValidation(t *testing.T) {
	in := fugakuInstance(t)
	p, err := in.Spawn("x", 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Exited = true
	if _, _, err := in.MapDevice(p, TofuNIC()); !errors.Is(err, ErrProcessExited) {
		t.Fatalf("exited process err = %v", err)
	}
	p.Exited = false
	if _, _, err := in.MapDevice(p, Device{Name: "bad"}); err == nil {
		t.Fatal("zero-size window must fail")
	}
}

// TestDataPathBypassesIKC is the mechanism's whole value: data-path
// operations through the mapped window must be orders of magnitude cheaper
// than the control path (offloaded ioctl) and must not touch the IKC.
func TestDataPathBypassesIKC(t *testing.T) {
	in := fugakuInstance(t)
	p, err := in.Spawn("mpi", 1)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := in.MapDevice(p, TofuNIC())
	if err != nil {
		t.Fatal(err)
	}
	msgsBefore := in.IKC.Messages()
	data := m.DataPathOp()
	if in.IKC.Messages() != msgsBefore {
		t.Fatal("data path must not touch the IKC")
	}
	control := in.ControlPathOp(m)
	if in.IKC.Messages() == msgsBefore {
		t.Fatal("control path must ride the IKC")
	}
	if data*10 >= control {
		t.Fatalf("data path %v must be >=10x cheaper than control path %v", data, control)
	}
}

func TestDevicePresets(t *testing.T) {
	tofu, hfi := TofuNIC(), OmniPathHFI()
	if tofu.Name == "" || hfi.Name == "" {
		t.Fatal("unnamed devices")
	}
	if tofu.DoorbellCost <= 0 || hfi.DoorbellCost <= 0 {
		t.Fatal("free doorbells")
	}
	// Tofu's barrier-network integration gives it the cheaper doorbell.
	if tofu.DoorbellCost >= hfi.DoorbellCost {
		t.Fatal("TofuD doorbell should beat Omni-Path")
	}
}

func TestMultipleDeviceMappings(t *testing.T) {
	in := fugakuInstance(t)
	p, err := in.Spawn("multi", 1)
	if err != nil {
		t.Fatal(err)
	}
	m1, _, err := in.MapDevice(p, TofuNIC())
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := in.MapDevice(p, Device{Name: "tofu1", MMIOBytes: 16 << 20, DoorbellCost: 150})
	if err != nil {
		t.Fatal(err)
	}
	if m1.VMA.Start == m2.VMA.Start {
		t.Fatal("windows overlap")
	}
	if len(p.Mappings()) != 2 {
		t.Fatalf("mappings = %d", len(p.Mappings()))
	}
	// Unmapping the first leaves the second.
	if err := in.UnmapDevice(m1); err != nil {
		t.Fatal(err)
	}
	if len(p.Mappings()) != 1 || p.Mappings()[0] != m2 {
		t.Fatal("wrong mapping removed")
	}
}
