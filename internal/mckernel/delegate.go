package mckernel

import (
	"fmt"
	"time"

	"mkos/internal/kernel"
	"mkos/internal/sim"
	"mkos/internal/telemetry"
)

// Delegator executes system calls as discrete events on a simulation
// engine, modelling the full offload pipeline of Sec. 5: the calling thread
// blocks, an IKC message crosses to Linux, the proxy process wakes and
// issues the real call, and the response returns over IKC before the thread
// is rescheduled. Local (performance-sensitive) calls complete in the LWK
// without touching the channel.
//
// The Instance.SyscallCost method gives the closed-form latency; Delegator
// exists for workloads that need call *ordering* and concurrency — e.g. a
// proxy serializing delegated calls from many threads, which adds queueing
// delay the closed form cannot express.
type Delegator struct {
	inst   *Instance
	engine *sim.Engine

	// Node is the global node index used to key telemetry trace events; zero
	// for single-node experiments.
	Node int

	// proxyBusyUntil serializes delegated calls through the single-threaded
	// proxy event loop.
	proxyBusyUntil sim.Time

	localCalls     uint64
	delegatedCalls uint64
	queueingTime   time.Duration
}

// NewDelegator binds an instance to an engine.
func NewDelegator(inst *Instance, engine *sim.Engine) *Delegator {
	return &Delegator{inst: inst, engine: engine}
}

// proxyQueueBuckets buckets proxy queueing delay in microseconds.
var proxyQueueBuckets = telemetry.ExpBuckets(0.5, 2, 12)

// Issue schedules syscall sc from thread th at the current simulated time;
// done is invoked when the call completes, with the thread runnable again.
// The thread must be running.
func (d *Delegator) Issue(th *Thread, sc kernel.Syscall, done func(at sim.Time)) error {
	if th.State != ThreadRunning {
		return fmt.Errorf("mckernel: syscall %v from non-running tid %d", sc, th.TID)
	}
	if sc.PerformanceSensitive() {
		// Served in the LWK: the thread never blocks, the call is pure
		// service time on its own core.
		d.localCalls++
		telemetry.C("mckernel.syscall.local").Inc()
		cost := localSyscallCosts().Cost(sc)
		if telemetry.TraceEnabled() {
			telemetry.Span("mckernel", "lwk:"+sc.String(), d.Node, th.Core, d.engine.Now(), cost)
		}
		d.engine.Schedule(cost, "lwk:"+sc.String(), func(e *sim.Engine) {
			done(e.Now())
		})
		return nil
	}
	// Delegated: block the thread, ride the IKC, queue at the proxy.
	d.delegatedCalls++
	telemetry.C("mckernel.syscall.delegated").Inc()
	telemetry.C("mckernel.ikc.messages").Add(2) // request + response crossing
	if err := d.inst.Scheduler.Block(th); err != nil {
		return err
	}
	ikc := d.inst.IKC
	arriveAtProxy := d.engine.Now().Add(ikc.OneWay + ikc.WakeLatency)
	start := arriveAtProxy
	if d.proxyBusyUntil.After(start) {
		queued := d.proxyBusyUntil.Sub(start)
		d.queueingTime += queued
		telemetry.H("mckernel.proxy.queueing_us", proxyQueueBuckets).
			Observe(float64(queued) / float64(time.Microsecond))
		start = d.proxyBusyUntil
	}
	service := d.inst.Host.SyscallCosts().Cost(sc)
	d.proxyBusyUntil = start.Add(service)
	finish := d.proxyBusyUntil.Add(ikc.OneWay)
	if telemetry.TraceEnabled() {
		now := d.engine.Now()
		telemetry.Span("mckernel", "offload:"+sc.String(), d.Node, th.Core, now, finish.Sub(now),
			telemetry.Arg{Key: "tid", Val: fmt.Sprint(th.TID)})
	}
	d.engine.ScheduleAt(finish, "proxy:"+sc.String(), func(e *sim.Engine) {
		// Response arrived: wake the thread on its core.
		if err := d.inst.Scheduler.Wake(th); err != nil {
			panic(fmt.Sprintf("mckernel: waking tid %d: %v", th.TID, err))
		}
		done(e.Now())
	})
	return nil
}

// Stats returns (local, delegated, total proxy queueing time).
func (d *Delegator) Stats() (local, delegated uint64, queueing time.Duration) {
	return d.localCalls, d.delegatedCalls, d.queueingTime
}
