package mckernel

import (
	"testing"
)

func TestMcexecBindsContiguousBlocks(t *testing.T) {
	in := fugakuInstance(t)
	// The paper's Fugaku geometry: 4 ranks x 12 threads = one rank per CMG.
	job, err := in.Mcexec("lqcd", McexecOptions{Ranks: 4, ThreadsPerRank: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Ranks) != 4 {
		t.Fatalf("ranks = %d", len(job.Ranks))
	}
	seen := map[int]int{}
	for _, rp := range job.Ranks {
		if len(rp.Cores) != 12 {
			t.Fatalf("rank %d cores = %d", rp.Rank, len(rp.Cores))
		}
		// Contiguous block.
		for i := 1; i < len(rp.Cores); i++ {
			if rp.Cores[i] != rp.Cores[i-1]+1 {
				t.Fatalf("rank %d block not contiguous: %v", rp.Rank, rp.Cores)
			}
		}
		// Threads actually placed on the block.
		for i, th := range rp.Proc.Threads {
			if th.Core != rp.Cores[i] {
				t.Fatalf("rank %d thread %d on core %d, want %d", rp.Rank, i, th.Core, rp.Cores[i])
			}
		}
		for _, c := range rp.Cores {
			if prev, dup := seen[c]; dup {
				t.Fatalf("core %d assigned to ranks %d and %d", c, prev, rp.Rank)
			}
			seen[c] = rp.Rank
		}
	}
	// 4x12 on the 48-core A64FX partition: every core used exactly once.
	if len(seen) != 48 {
		t.Fatalf("cores used = %d, want 48", len(seen))
	}
}

func TestMcexecValidation(t *testing.T) {
	in := fugakuInstance(t)
	if _, err := in.Mcexec("x", McexecOptions{Ranks: 0, ThreadsPerRank: 1}); err == nil {
		t.Fatal("zero ranks must fail")
	}
	if _, err := in.Mcexec("x", McexecOptions{Ranks: 1, ThreadsPerRank: 0}); err == nil {
		t.Fatal("zero threads must fail")
	}
	if _, err := in.Mcexec("x", McexecOptions{Ranks: 49, ThreadsPerRank: 1}); err == nil {
		t.Fatal("overcommitted geometry must fail")
	}
}

func TestMcexecHeapPremap(t *testing.T) {
	in := fugakuInstance(t)
	before := in.LWKMem.AllocatedBytes()
	job, err := in.Mcexec("geofem", McexecOptions{Ranks: 4, ThreadsPerRank: 12, HeapBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if job.SetupCost <= 0 {
		t.Fatal("premap must pay fault cost at load")
	}
	if got := in.LWKMem.AllocatedBytes() - before; got != 4*(256<<20) {
		t.Fatalf("LWK memory allocated = %d, want 1 GiB", got)
	}
	for _, rp := range job.Ranks {
		if rp.HeapVMA == nil || !rp.HeapVMA.Populated {
			t.Fatalf("rank %d heap not premapped", rp.Rank)
		}
		// Large pages via the contiguous bit.
		if rp.HeapVMA.EffectivePage() != 2<<20 {
			t.Fatalf("rank %d heap page = %d", rp.Rank, rp.HeapVMA.EffectivePage())
		}
	}
	// Teardown: memory returns to the size-class cache, processes exit.
	if err := in.ReleaseJob(job); err != nil {
		t.Fatal(err)
	}
	if in.LWKMem.AllocatedBytes() != before {
		t.Fatal("release leaked LWK memory")
	}
	if in.LWKMem.CachedBytes() != 4*(256<<20) {
		t.Fatalf("cache = %d, want freed heaps cached (never returned to Linux)", in.LWKMem.CachedBytes())
	}
	for _, rp := range job.Ranks {
		if !rp.Proc.Exited {
			t.Fatal("processes must exit on release")
		}
	}
}

func TestMcexecHeapExhaustion(t *testing.T) {
	in := fugakuInstance(t)
	// Partition has 8 GiB; ask for far more.
	if _, err := in.Mcexec("big", McexecOptions{Ranks: 4, ThreadsPerRank: 12, HeapBytes: 4 << 30}); err == nil {
		t.Fatal("heap exceeding the partition must fail")
	}
}
