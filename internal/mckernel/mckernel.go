// Package mckernel models the McKernel lightweight co-kernel: a from-scratch
// LWK with a Linux-compatible ABI that implements only the
// performance-sensitive system calls (memory management, threading, signals)
// and delegates everything else to Linux through a proxy process over IHK's
// IKC channel (Sec. 5 of the paper). The Fugaku port adds the Tofu
// PicoDriver, a split-driver fast path that performs STAG registration
// locally instead of offloading ioctl calls (Sec. 5.1).
package mckernel

import (
	"errors"
	"fmt"
	"time"

	"mkos/internal/cpu"
	"mkos/internal/ihk"
	"mkos/internal/kernel"
	"mkos/internal/linux"
	"mkos/internal/mem"
	"mkos/internal/noise"
	"mkos/internal/telemetry"
)

// Config selects optional McKernel features.
type Config struct {
	// PicoDriver enables the in-LWK fast path for interconnect memory
	// registration (Tofu on Fugaku, OmniPath on OFP). All the paper's
	// experiments ran with it enabled.
	PicoDriver bool
	// PremapMemory pre-faults application memory at mmap time instead of
	// demand paging, the LWK default behaviour.
	PremapMemory bool
}

// DefaultConfig matches the configuration used for the paper's experiments.
func DefaultConfig() Config {
	return Config{PicoDriver: true, PremapMemory: true}
}

// Instance is a booted McKernel: the LWK side of the multi-kernel pair.
type Instance struct {
	Host      *linux.Kernel
	Part      *ihk.Partition
	IKC       *ihk.IKC
	Cfg       Config
	LWKMem    *Memory
	Scheduler *Scheduler

	// Proxies are the Linux-side proxy processes, one per McKernel process
	// (Sec. 5: they provide the execution context for offloaded calls and
	// hold Linux-managed state such as file descriptor tables).
	Proxies []*Proxy

	nextPID     int
	panicked    bool
	panicReason string
}

// ErrNoPartition reports a Boot call without reserved resources.
var ErrNoPartition = errors.New("mckernel: nil partition")

// ErrKernelPanic reports an operation on a dead LWK. At pre-exascale node
// counts McKernel panics and hangs were routine operational events (Sec. 5);
// the recovery machinery in internal/cluster reboots the LWK or falls back
// to Linux when this surfaces.
var ErrKernelPanic = errors.New("mckernel: kernel panic")

// Panic marks the LWK dead, as after an in-kernel fault or fatal OOM
// (McKernel cannot reclaim memory — no demand paging — so exhaustion is a
// panic, not a slowdown). Subsequent process operations fail with
// ErrKernelPanic until the partition is rebooted via a fresh Boot.
func (in *Instance) Panic(reason string) error {
	in.panicked = true
	in.panicReason = reason
	telemetry.C("mckernel.panics").Inc()
	return fmt.Errorf("%w: %s", ErrKernelPanic, reason)
}

// Healthy reports whether the LWK is still alive.
func (in *Instance) Healthy() bool { return !in.panicked }

// PanicReason returns the recorded cause of death, "" while healthy.
func (in *Instance) PanicReason() string { return in.panicReason }

// Boot starts McKernel on an IHK partition of the given host.
func Boot(host *linux.Kernel, part *ihk.Partition, cfg Config) (*Instance, error) {
	if part == nil || len(part.Cores) == 0 {
		return nil, ErrNoPartition
	}
	inst := &Instance{
		Host: host, Part: part, IKC: ihk.DefaultIKC(), Cfg: cfg,
		LWKMem:    NewMemory(part.Memory),
		Scheduler: NewScheduler(part.Cores),
	}
	return inst, nil
}

// Name identifies the OS configuration for experiment outputs.
func (in *Instance) Name() string {
	if in.Host.Topo.ISA == cpu.X86_64 {
		return "ofp-mckernel"
	}
	return "fugaku-mckernel"
}

// Proxy is the Linux-side twin of a McKernel process.
type Proxy struct {
	PID  int
	Task *kernel.Task
	// FDTable size: McKernel has no notion of file descriptors; it returns
	// whatever number the proxy got from Linux (Sec. 5).
	OpenFDs int
}

// Spawn creates a McKernel process with nThreads threads and its proxy
// process on the Linux side.
func (in *Instance) Spawn(name string, nThreads int) (*Process, error) {
	if in.panicked {
		return nil, fmt.Errorf("%w: %s", ErrKernelPanic, in.panicReason)
	}
	if nThreads < 1 {
		return nil, fmt.Errorf("mckernel: process %q needs at least one thread", name)
	}
	in.nextPID++
	pid := in.nextPID
	proxyTask := kernel.NewTask(10000+pid, "mcexec:"+name, kernel.ProxyTask,
		kernel.NewCPUMask(in.Host.Topo.AssistantCores()...))
	proxy := &Proxy{PID: pid, Task: proxyTask}
	in.Proxies = append(in.Proxies, proxy)

	p := &Process{PID: pid, Name: name, inst: in, proxy: proxy}
	for i := 0; i < nThreads; i++ {
		th := &Thread{TID: pid*1000 + i, Proc: p}
		p.Threads = append(p.Threads, th)
		if err := in.Scheduler.Add(th); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// --- Cost model -----------------------------------------------------------

// localSyscallCosts is McKernel's service time for the calls it implements
// in the LWK. The simple, purpose-built paths are faster than Linux's.
func localSyscallCosts() kernel.CostTable {
	return kernel.CostTable{
		kernel.SysGetpid:  100 * time.Nanosecond,
		kernel.SysMmap:    1500 * time.Nanosecond,
		kernel.SysMunmap:  1200 * time.Nanosecond,
		kernel.SysBrk:     600 * time.Nanosecond,
		kernel.SysMadvise: 500 * time.Nanosecond,
		kernel.SysFutex:   900 * time.Nanosecond,
		kernel.SysClone:   8 * time.Microsecond,
		kernel.SysExit:    5 * time.Microsecond,
		kernel.SysSignal:  700 * time.Nanosecond,
	}
}

// SyscallCost returns the end-to-end cost of one system call issued on
// McKernel: local for the performance-sensitive set, IKC round trip plus
// Linux service time for everything else.
func (in *Instance) SyscallCost(sc kernel.Syscall) time.Duration {
	if sc.PerformanceSensitive() {
		return localSyscallCosts().Cost(sc)
	}
	return in.IKC.RoundTrip() + in.Host.SyscallCosts().Cost(sc)
}

// SyscallCosts returns the full cost table (used by reports/benchmarks).
func (in *Instance) SyscallCosts() kernel.CostTable {
	t := make(kernel.CostTable, kernel.NumSyscalls())
	for i := 0; i < kernel.NumSyscalls(); i++ {
		sc := kernel.Syscall(i)
		t[sc] = in.SyscallCost(sc)
	}
	return t
}

// PageFaultCost is McKernel's fault service time. The LWK's flat memory
// manager resolves faults faster than Linux; with PremapMemory most
// application faults never happen at all (cost charged at mmap time).
func (in *Instance) PageFaultCost(page mem.PageSize) time.Duration {
	base := 600 * time.Nanosecond
	if in.Host.Topo.ISA == cpu.X86_64 {
		base = 1500 * time.Nanosecond
	}
	switch {
	case page >= mem.Page512M:
		return base + 30*time.Microsecond
	case page >= mem.Page2M:
		return base + 2500*time.Nanosecond
	default:
		return base + 200*time.Nanosecond
	}
}

// EffectiveAppPage returns the page size backing application regions. The
// LWK maps everything with large pages unconditionally; there is no
// fragmentation hazard because the partition's memory is exclusively ours
// and freed memory is cached, not returned.
func (in *Instance) EffectiveAppPage(reqBytes int64) (mem.PageSize, float64) {
	return mem.Page2M, 1
}

// TranslationOverhead mirrors linux.Kernel.TranslationOverhead for the LWK.
func (in *Instance) TranslationOverhead(workingSet int64, accessPeriod time.Duration) float64 {
	page, _ := in.EffectiveAppPage(workingSet)
	return in.Host.Topo.TLB.TranslationOverhead(workingSet, page.Bytes(), accessPeriod)
}

// HeapChurnCost is the per-step cost of calls allocate/free pairs moving
// churnBytes. McKernel's memory manager never returns freed pages to anyone
// — they stay cached in the process's large-page pool (see Memory) — so
// steady-state churn pays only the local, cheap allocator bookkeeping, with
// no re-faults and no TLB shootdowns. This is the mechanism behind the
// LULESH ≈2X result (Sec. 6.4 / [14]).
func (in *Instance) HeapChurnCost(churnBytes int64, calls, threads int) time.Duration {
	if churnBytes <= 0 && calls <= 0 {
		return 0
	}
	if calls < 1 {
		calls = int(churnBytes / (8 << 20))
		if calls < 1 {
			calls = 1
		}
	}
	costs := localSyscallCosts()
	return time.Duration(calls) * (costs.Cost(kernel.SysMmap) + costs.Cost(kernel.SysMunmap)) / 2
}

// RDMARegistrationCost is the cost of one STAG/memory registration. With the
// PicoDriver the fast path runs inside the LWK; without it the ioctl is
// offloaded to Linux over IKC, adding the delegation latency the PicoDriver
// exists to remove (Sec. 5.1).
func (in *Instance) RDMARegistrationCost(bytes int64) time.Duration {
	pin := time.Duration(bytes/(1<<20)) * 250 * time.Nanosecond
	if in.Cfg.PicoDriver {
		return 1200*time.Nanosecond + pin
	}
	return in.IKC.RoundTrip() + in.Host.RDMARegistrationCost(bytes)
}

// BarrierLatency: the LWK uses the same hardware barrier as Linux on A64FX.
func (in *Instance) BarrierLatency(n int) time.Duration {
	return in.Host.BarrierLatency(n)
}

// CacheInterferenceFactor is 1: no OS activity shares the LWK cores' caches;
// Linux's activity is confined to its own partition.
func (in *Instance) CacheInterferenceFactor() float64 { return 1 }

// --- Noise ----------------------------------------------------------------

// McKernel noise calibration. The LWK runs no daemons, takes no timer
// interrupts (tickless cooperative scheduling) and handles no device IRQs;
// the residual noise is IKC doorbell processing and hardware-level
// interference from the Linux partition sharing the memory system. Figure 4
// shows McKernel's largest FWQ iteration below 7 ms on OFP (≤0.5 ms noise)
// and the cleanest profile on Fugaku.
const (
	ikcLength       = 2 * time.Microsecond
	ikcLenCV        = 0.3
	ikcInterval     = 10 * time.Second // per core
	hwShareLength   = 12 * time.Microsecond
	hwShareLenCV    = 0.5
	hwShareInterval = 600 * time.Second // per core

	// KNL-side residuals are larger: slower cores, busier Linux partition.
	ofpIkcLength     = 5 * time.Microsecond
	ofpHwShareLength = 120 * time.Microsecond
	ofpHwShareCV     = 0.4
)

// NoiseProfile returns the LWK's (nearly silent) noise profile over its
// partition cores.
func (in *Instance) NoiseProfile() *noise.Profile {
	cores := in.Part.Cores
	p := &noise.Profile{Subsystem: "mckernel"}
	ikcLen, hwLen, hwCV := ikcLength, hwShareLength, hwShareLenCV
	if in.Host.Topo.ISA == cpu.X86_64 {
		ikcLen, hwLen, hwCV = ofpIkcLength, ofpHwShareLength, ofpHwShareCV
	}
	p.MustAdd(&noise.Source{
		Name: "ikc-doorbell", Cores: cores, Mode: noise.TargetRandom,
		Every: spread(ikcInterval, len(cores)), EveryCV: 0.4,
		Length: ikcLen, LengthCV: ikcLenCV,
	})
	p.MustAdd(&noise.Source{
		Name: "hw-sharing", Cores: cores, Mode: noise.TargetRandom,
		Every: spread(hwShareInterval, len(cores)), EveryCV: 0.6,
		Length: hwLen, LengthCV: hwCV,
	})
	return p
}

func spread(perCore time.Duration, nCores int) time.Duration {
	if nCores < 1 {
		nCores = 1
	}
	iv := perCore / time.Duration(nCores)
	if iv < time.Microsecond {
		iv = time.Microsecond
	}
	return iv
}
