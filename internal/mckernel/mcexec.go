package mckernel

import (
	"fmt"
	"time"

	"mkos/internal/mem"
	"mkos/internal/telemetry"
)

// Mcexec models the mcexec launcher, the user-facing entry to McKernel: it
// creates the proxy process, loads the binary into the LWK, and — with the
// -n option the paper's experiments used ("On McKernel we use the -n mcexec
// option to automatically bind processes", AD appendix) — distributes ranks
// across the partition cores in contiguous blocks.

// McexecOptions configures one mcexec invocation.
type McexecOptions struct {
	// Ranks is the -n option: how many MPI processes to launch.
	Ranks int
	// ThreadsPerRank is the OMP_NUM_THREADS each rank runs.
	ThreadsPerRank int
	// HeapBytes is allocated per rank from the LWK memory manager at load
	// time (the premap behaviour; McKernel pre-faults by default).
	HeapBytes int64
}

// RankProcess is one launched rank with its core binding.
type RankProcess struct {
	Rank    int
	Proc    *Process
	Cores   []int
	HeapVMA *mem.VMA
	// HeapBase is the physical base the LWK allocator handed out for the
	// heap; ReleaseJob must free exactly this, not the VMA's virtual start.
	HeapBase int64
}

// McexecJob is the result of one invocation.
type McexecJob struct {
	Ranks     []*RankProcess
	SetupCost time.Duration
}

// Mcexec launches ranks with automatic binding: the partition's cores are
// split into contiguous per-rank blocks (which on Fugaku aligns rank
// boundaries with CMGs, matching Sec. 4.1.4's one-rank-per-CMG policy for
// the 4x12 geometry).
func (in *Instance) Mcexec(name string, opts McexecOptions) (*McexecJob, error) {
	if opts.Ranks < 1 || opts.ThreadsPerRank < 1 {
		return nil, fmt.Errorf("mckernel: mcexec -n %d with %d threads", opts.Ranks, opts.ThreadsPerRank)
	}
	need := opts.Ranks * opts.ThreadsPerRank
	cores := in.Part.Cores
	if need > len(cores) {
		return nil, fmt.Errorf("mckernel: mcexec needs %d cores, partition has %d", need, len(cores))
	}
	job := &McexecJob{}
	for r := 0; r < opts.Ranks; r++ {
		p, err := in.Spawn(fmt.Sprintf("%s:%d", name, r), opts.ThreadsPerRank)
		if err != nil {
			return nil, err
		}
		block := cores[r*opts.ThreadsPerRank : (r+1)*opts.ThreadsPerRank]
		// Rebind the spawned threads onto the rank's contiguous block.
		for i, th := range p.Threads {
			th.Core = block[i]
		}
		rp := &RankProcess{Rank: r, Proc: p, Cores: block}
		if opts.HeapBytes > 0 {
			base, err := in.LWKMem.Alloc(opts.HeapBytes)
			if err != nil {
				return nil, fmt.Errorf("mckernel: rank %d heap: %w", r, err)
			}
			rp.HeapBase = base
			vma, err := p.addressSpace().Map(opts.HeapBytes, mem.Page64K, true, "heap")
			if err != nil {
				return nil, err
			}
			vma.Populated = true // premap: faults paid at load time
			rp.HeapVMA = vma
			pages := mem.Page2M.PagesFor(opts.HeapBytes)
			telemetry.C("mckernel.pagefault.premapped").Add(pages)
			job.SetupCost += time.Duration(pages) * in.PageFaultCost(mem.Page2M)
		}
		job.Ranks = append(job.Ranks, rp)
	}
	return job, nil
}

// ReleaseJob tears all ranks down and returns their heap memory to the LWK
// size-class cache.
func (in *Instance) ReleaseJob(job *McexecJob) error {
	for _, rp := range job.Ranks {
		if rp.HeapVMA != nil {
			if err := in.LWKMem.Free(rp.HeapBase, rp.HeapVMA.Length); err != nil {
				return err
			}
		}
		if !rp.Proc.Exited {
			if err := in.Exit(rp.Proc, 0); err != nil {
				return err
			}
		}
	}
	return nil
}
