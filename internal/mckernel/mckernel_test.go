package mckernel

import (
	"errors"
	"testing"
	"time"

	"mkos/internal/apps"
	"mkos/internal/cpu"
	"mkos/internal/ihk"
	"mkos/internal/kernel"
	"mkos/internal/linux"
	"mkos/internal/mem"
	"mkos/internal/noise"
)

func bootInstance(t *testing.T, topo *cpu.Topology, tune linux.Tuning, cfg Config) *Instance {
	t.Helper()
	host, err := linux.NewKernel(topo, tune, 32<<30)
	if err != nil {
		t.Fatal(err)
	}
	mgr := ihk.NewManager(host)
	if err := mgr.ReserveCPUs(host.Topo.AppCores()); err != nil {
		t.Fatal(err)
	}
	if err := mgr.ReserveMemory(2 << 30); err != nil {
		t.Fatal(err)
	}
	part, err := mgr.Boot()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Boot(host, part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func fugakuInstance(t *testing.T) *Instance {
	return bootInstance(t, cpu.A64FX(2), linux.FugakuTuning(), DefaultConfig())
}

func TestBootValidation(t *testing.T) {
	host, err := linux.NewKernel(cpu.A64FX(2), linux.FugakuTuning(), 32<<30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Boot(host, nil, DefaultConfig()); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("nil partition err = %v", err)
	}
	if _, err := Boot(host, &ihk.Partition{}, DefaultConfig()); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("empty partition err = %v", err)
	}
}

func TestInstanceNames(t *testing.T) {
	f := fugakuInstance(t)
	if f.Name() != "fugaku-mckernel" {
		t.Fatalf("Name = %s", f.Name())
	}
	o := bootInstance(t, cpu.KNL(), linux.OFPTuning(), DefaultConfig())
	if o.Name() != "ofp-mckernel" {
		t.Fatalf("Name = %s", o.Name())
	}
}

func TestSpawnCreatesProxy(t *testing.T) {
	in := fugakuInstance(t)
	p, err := in.Spawn("a.out", 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Threads) != 12 {
		t.Fatalf("threads = %d", len(p.Threads))
	}
	if p.Proxy() == nil {
		t.Fatal("process must have a Linux-side proxy")
	}
	// The proxy lives on assistant cores, not LWK cores (Sec. 5).
	sysMask := kernel.NewCPUMask(in.Host.Topo.AssistantCores()...)
	if !p.Proxy().Task.Affinity.Equal(sysMask) {
		t.Fatalf("proxy affinity = %s", p.Proxy().Task.Affinity)
	}
	if _, err := in.Spawn("bad", 0); err == nil {
		t.Fatal("zero-thread spawn must fail")
	}
}

func TestSyscallRouting(t *testing.T) {
	in := fugakuInstance(t)
	hostCosts := in.Host.SyscallCosts()
	// Performance-sensitive calls are local and much cheaper than Linux.
	for _, sc := range []kernel.Syscall{kernel.SysMmap, kernel.SysFutex, kernel.SysGetpid} {
		if got := in.SyscallCost(sc); got >= hostCosts.Cost(sc) {
			t.Errorf("%v local cost %v must beat Linux %v", sc, got, hostCosts.Cost(sc))
		}
	}
	// Delegated calls cost Linux time plus the IKC round trip.
	for _, sc := range []kernel.Syscall{kernel.SysOpen, kernel.SysIoctl, kernel.SysRead} {
		if got := in.SyscallCost(sc); got <= hostCosts.Cost(sc) {
			t.Errorf("%v offloaded cost %v must exceed Linux %v", sc, got, hostCosts.Cost(sc))
		}
	}
	if len(in.SyscallCosts()) != kernel.NumSyscalls() {
		t.Fatal("cost table incomplete")
	}
}

func TestHeapChurnAdvantage(t *testing.T) {
	in := fugakuInstance(t)
	churn := int64(1 << 30)
	lwk := in.HeapChurnCost(churn, 0, 48)
	lin := in.Host.HeapChurnCost(churn, 0, 48)
	if lwk >= lin/10 {
		t.Fatalf("LWK churn %v must be >=10x cheaper than Linux %v (LULESH mechanism)", lwk, lin)
	}
	if in.HeapChurnCost(0, 0, 1) != 0 {
		t.Fatal("zero churn must be free")
	}
}

func TestPicoDriverRegistration(t *testing.T) {
	with := fugakuInstance(t)
	without := bootInstance(t, cpu.A64FX(2), linux.FugakuTuning(), Config{PicoDriver: false, PremapMemory: true})
	fast := with.RDMARegistrationCost(1 << 20)
	slow := without.RDMARegistrationCost(1 << 20)
	if fast >= slow {
		t.Fatalf("PicoDriver %v must beat offloaded ioctl %v (Sec. 5.1)", fast, slow)
	}
	// Offloaded registration must also exceed native Linux (IKC overhead) —
	// the exact latency the PicoDriver was built to eliminate.
	if slow <= with.Host.RDMARegistrationCost(1<<20) {
		t.Fatal("offloaded registration must cost more than native Linux")
	}
}

func TestPageFaultAndTranslation(t *testing.T) {
	in := fugakuInstance(t)
	if in.PageFaultCost(mem.Page2M) >= in.Host.PageFaultCost(mem.Page2M) {
		t.Fatal("LWK fault path must beat Linux")
	}
	page, cov := in.EffectiveAppPage(1 << 30)
	if page != mem.Page2M || cov != 1 {
		t.Fatalf("LWK pages = %v/%v, want always-large", page, cov)
	}
	if oh := in.TranslationOverhead(16<<30, 100*time.Nanosecond); oh < 0 {
		t.Fatal("negative overhead")
	}
	if in.CacheInterferenceFactor() != 1 {
		t.Fatal("LWK cores must see no OS cache interference")
	}
}

func TestMcKernelNoiseProfile(t *testing.T) {
	in := fugakuInstance(t)
	p := in.NoiseProfile()
	if p.ByName("ikc-doorbell") == nil || p.ByName("hw-sharing") == nil {
		t.Fatal("LWK profile must have IKC and HW-sharing residuals")
	}
	// No daemons, no ticks, no monitors: the profile has exactly these two.
	if len(p.Sources) != 2 {
		t.Fatalf("LWK profile has %d sources, want 2", len(p.Sources))
	}
}

// TestMcKernelQuieterThanLinux is the core Figure 4 property: the LWK's FWQ
// profile is dramatically cleaner than Linux's on the same platform.
func TestMcKernelQuieterThanLinux(t *testing.T) {
	if testing.Short() {
		t.Skip("FWQ simulation")
	}
	run := func(prof apps.NoiseProfiler, cores []int) noise.Analysis {
		cfg := apps.FWQConfig{Work: 6500 * time.Microsecond, Duration: time.Minute, Cores: cores}
		as, _, err := apps.FWQAcrossNodes(cfg, prof, 4, 999)
		if err != nil {
			t.Fatal(err)
		}
		m, err := noise.Merge(as)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// OFP: Linux vs McKernel (Figure 4a).
	ofpLinux, err := linux.NewKernel(cpu.KNL(), linux.OFPTuning(), 112<<30)
	if err != nil {
		t.Fatal(err)
	}
	ofpMck := bootInstance(t, cpu.KNL(), linux.OFPTuning(), DefaultConfig())
	aLinux := run(ofpLinux, ofpLinux.AppCores())
	aMck := run(ofpMck, ofpMck.Part.Cores)
	t.Logf("OFP: linux max=%v rate=%.3g, mckernel max=%v rate=%.3g",
		aLinux.MaxNoise, aLinux.Rate, aMck.MaxNoise, aMck.Rate)
	if aMck.MaxNoise*2 >= aLinux.MaxNoise {
		t.Errorf("OFP McKernel max %v must be far below Linux %v", aMck.MaxNoise, aLinux.MaxNoise)
	}
	// McKernel's largest iteration stays under 7 ms (Figure 4a).
	if aMck.MaxNoise > 500*time.Microsecond {
		t.Errorf("OFP McKernel max noise %v exceeds the 0.5 ms Figure 4a bound", aMck.MaxNoise)
	}

	// Fugaku: tuned Linux is already close; McKernel still cleaner.
	fLinux, err := linux.NewKernel(cpu.A64FX(2), linux.FugakuTuning(), 32<<30)
	if err != nil {
		t.Fatal(err)
	}
	fMck := fugakuInstance(t)
	bLinux := run(fLinux, fLinux.AppCores())
	bMck := run(fMck, fMck.Part.Cores)
	t.Logf("Fugaku: linux max=%v rate=%.3g, mckernel max=%v rate=%.3g",
		bLinux.MaxNoise, bLinux.Rate, bMck.MaxNoise, bMck.Rate)
	if bMck.MaxNoise > bLinux.MaxNoise {
		t.Errorf("Fugaku McKernel max %v must not exceed tuned Linux %v", bMck.MaxNoise, bLinux.MaxNoise)
	}
	// "Not that different": tuned Linux within ~2 orders of magnitude, i.e.
	// both in the tens-of-microseconds regime, unlike OFP.
	if bLinux.MaxNoise > time.Millisecond {
		t.Errorf("tuned Fugaku Linux max noise %v should be well under 1 ms at small scale", bLinux.MaxNoise)
	}
}
