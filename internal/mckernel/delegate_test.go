package mckernel

import (
	"testing"
	"time"

	"mkos/internal/kernel"
	"mkos/internal/sim"
)

// dispatchOne spawns a process and dispatches its first thread.
func dispatchOne(t *testing.T, in *Instance, threads int) (*Process, *Thread) {
	t.Helper()
	p, err := in.Spawn("bench", threads)
	if err != nil {
		t.Fatal(err)
	}
	th, err := in.Scheduler.Dispatch(p.Threads[0].Core)
	if err != nil {
		t.Fatal(err)
	}
	return p, th
}

func TestDelegatorLocalCall(t *testing.T) {
	in := fugakuInstance(t)
	e := sim.NewEngine()
	d := NewDelegator(in, e)
	_, th := dispatchOne(t, in, 1)

	var doneAt sim.Time
	if err := d.Issue(th, kernel.SysMmap, func(at sim.Time) { doneAt = at }); err != nil {
		t.Fatal(err)
	}
	// Local calls never block the thread.
	if th.State != ThreadRunning {
		t.Fatal("local syscall must not block the thread")
	}
	e.Run()
	want := localSyscallCosts().Cost(kernel.SysMmap)
	if doneAt != sim.Time(want) {
		t.Fatalf("local mmap completed at %v, want %v", doneAt, want)
	}
	local, delegated, _ := d.Stats()
	if local != 1 || delegated != 0 {
		t.Fatalf("stats = %d/%d", local, delegated)
	}
}

func TestDelegatorOffloadBlocksAndWakes(t *testing.T) {
	in := fugakuInstance(t)
	e := sim.NewEngine()
	d := NewDelegator(in, e)
	_, th := dispatchOne(t, in, 1)

	var doneAt sim.Time
	if err := d.Issue(th, kernel.SysOpen, func(at sim.Time) { doneAt = at }); err != nil {
		t.Fatal(err)
	}
	if th.State != ThreadBlocked {
		t.Fatal("delegated syscall must block the thread")
	}
	e.Run()
	if th.State != ThreadReady {
		t.Fatal("completion must wake the thread")
	}
	// End-to-end latency: 2x IKC one-way + proxy wake + Linux service.
	ikc := in.IKC
	want := 2*ikc.OneWay + ikc.WakeLatency + in.Host.SyscallCosts().Cost(kernel.SysOpen)
	if doneAt != sim.Time(want) {
		t.Fatalf("offloaded open completed at %v, want %v", doneAt, want)
	}
}

func TestDelegatorProxySerializes(t *testing.T) {
	in := fugakuInstance(t)
	e := sim.NewEngine()
	d := NewDelegator(in, e)
	p, err := in.Spawn("many", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Dispatch all three threads (they land on different cores).
	var done []sim.Time
	for _, th := range p.Threads {
		run, err := in.Scheduler.Dispatch(th.Core)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Issue(run, kernel.SysWrite, func(at sim.Time) { done = append(done, at) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	if len(done) != 3 {
		t.Fatalf("completions = %d", len(done))
	}
	// The single proxy serializes service: completions must be spaced by at
	// least the Linux service time.
	service := in.Host.SyscallCosts().Cost(kernel.SysWrite)
	for i := 1; i < len(done); i++ {
		if gap := done[i].Sub(done[i-1]); gap < service {
			t.Fatalf("completions %d,%d spaced %v < service %v (no serialization)", i-1, i, gap, service)
		}
	}
	_, delegated, queueing := d.Stats()
	if delegated != 3 {
		t.Fatalf("delegated = %d", delegated)
	}
	if queueing <= 0 {
		t.Fatal("concurrent offloads must accumulate proxy queueing time")
	}
}

func TestDelegatorRejectsNonRunningThread(t *testing.T) {
	in := fugakuInstance(t)
	d := NewDelegator(in, sim.NewEngine())
	p, err := in.Spawn("idle", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Thread is Ready (never dispatched).
	if err := d.Issue(p.Threads[0], kernel.SysOpen, func(sim.Time) {}); err == nil {
		t.Fatal("issuing from a ready (not running) thread must fail")
	}
}

func TestDelegatorLatencyDifference(t *testing.T) {
	// The whole point of the split: a local mmap is much faster than a
	// delegated open, and matches SyscallCost's closed form.
	in := fugakuInstance(t)
	for _, sc := range []kernel.Syscall{kernel.SysMmap, kernel.SysOpen, kernel.SysIoctl} {
		e := sim.NewEngine()
		d := NewDelegator(in, e)
		inst2, th := dispatchOne(t, in, 1)
		_ = inst2
		var doneAt sim.Time
		if err := d.Issue(th, sc, func(at sim.Time) { doneAt = at }); err != nil {
			t.Fatal(err)
		}
		e.Run()
		// The closed form includes an IKC round trip per call; the event
		// model must agree for an uncontended proxy.
		in2 := fugakuInstance(t) // fresh IKC counter for the closed form
		want := in2.SyscallCost(sc)
		if time.Duration(doneAt) != want {
			t.Fatalf("%v: event model %v != closed form %v", sc, time.Duration(doneAt), want)
		}
	}
}
