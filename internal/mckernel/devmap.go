package mckernel

import (
	"errors"
	"fmt"
	"time"

	"mkos/internal/kernel"
	"mkos/internal/mem"
)

// Device mapping (Sec. 5): "relying on the proxy process, McKernel provides
// transparent access to Linux device drivers not only in the form of
// offloaded system calls (e.g., through write() or ioctl()), but also via
// direct device mappings." A device's MMIO window (doorbells, send/receive
// queues) is mapped straight into the McKernel process's address space, so
// the data path never crosses the IKC — only the control path (setup,
// teardown, STAG registration without the PicoDriver) is offloaded.

// Device describes a Linux-driver-owned device whose MMIO window can be
// mapped into LWK processes.
type Device struct {
	Name      string
	MMIOBytes int64
	// DoorbellCost is one data-path operation through a mapped window.
	DoorbellCost time.Duration
}

// TofuNIC returns the Fugaku interconnect device.
func TofuNIC() Device {
	return Device{Name: "tofu0", MMIOBytes: 16 << 20, DoorbellCost: 150 * time.Nanosecond}
}

// OmniPathHFI returns the OFP interconnect device.
func OmniPathHFI() Device {
	return Device{Name: "hfi1_0", MMIOBytes: 8 << 20, DoorbellCost: 250 * time.Nanosecond}
}

// DeviceMapping is a device window mapped into one process.
type DeviceMapping struct {
	Device Device
	VMA    *mem.VMA
	proc   *Process
}

// Device-mapping errors.
var (
	ErrProcessExited = errors.New("mckernel: process has exited")
	ErrNotMapped     = errors.New("mckernel: device not mapped")
)

// MapDevice installs a device's MMIO window into the process's address
// space. Setup is a control-path operation: it is delegated to Linux (the
// driver must program the IOMMU and validate access), costing an IKC round
// trip plus driver work — paid once.
func (in *Instance) MapDevice(p *Process, dev Device) (*DeviceMapping, time.Duration, error) {
	if p.Exited {
		return nil, 0, fmt.Errorf("%w: pid %d", ErrProcessExited, p.PID)
	}
	if dev.MMIOBytes <= 0 {
		return nil, 0, fmt.Errorf("mckernel: device %q has no MMIO window", dev.Name)
	}
	vma, err := p.addressSpace().Map(dev.MMIOBytes, mem.Page64K, false, "mmio:"+dev.Name)
	if err != nil {
		return nil, 0, err
	}
	setup := in.IKC.RoundTrip() + 8*time.Microsecond // driver-side window setup
	m := &DeviceMapping{Device: dev, VMA: vma, proc: p}
	p.devmaps = append(p.devmaps, m)
	return m, setup, nil
}

// DataPathOp is one device operation through the mapped window: a doorbell
// ring or queue-descriptor write. It costs only the device's MMIO latency —
// no system call, no IKC, which is the entire point of the mechanism.
func (m *DeviceMapping) DataPathOp() time.Duration {
	return m.Device.DoorbellCost
}

// ControlPathOp is a device operation that must go through the Linux driver
// (queue creation, teardown): an offloaded ioctl.
func (in *Instance) ControlPathOp(m *DeviceMapping) time.Duration {
	return in.IKC.RoundTrip() + in.Host.SyscallCosts().Cost(kernel.SysIoctl)
}

// UnmapDevice removes the window.
func (in *Instance) UnmapDevice(m *DeviceMapping) error {
	p := m.proc
	for i, cur := range p.devmaps {
		if cur == m {
			p.devmaps = append(p.devmaps[:i], p.devmaps[i+1:]...)
			_, err := p.addressSpace().Unmap(m.VMA)
			return err
		}
	}
	return fmt.Errorf("%w: %s in pid %d", ErrNotMapped, m.Device.Name, p.PID)
}

// Mappings returns the process's live device mappings.
func (p *Process) Mappings() []*DeviceMapping { return p.devmaps }
