package mckernel

import (
	"errors"
	"testing"

	"mkos/internal/kernel"
	"mkos/internal/mem"
)

func TestForkInheritsAddressSpace(t *testing.T) {
	in := fugakuInstance(t)
	parent, err := in.Spawn("app", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Give the parent some mappings.
	if _, err := parent.addressSpace().Map(64<<20, mem.Page64K, true, "heap"); err != nil {
		t.Fatal(err)
	}
	if _, err := parent.addressSpace().Map(8<<20, mem.Page64K, true, "stack"); err != nil {
		t.Fatal(err)
	}

	child, err := in.Fork(parent)
	if err != nil {
		t.Fatal(err)
	}
	if child.PID == parent.PID {
		t.Fatal("child must get a new PID")
	}
	if len(child.Threads) != len(parent.Threads) {
		t.Fatal("thread count not inherited")
	}
	if child.Proxy() == parent.Proxy() {
		t.Fatal("child must get its own proxy")
	}
	// COW layout snapshot.
	cv, pv := child.addressSpace().VMAs(), parent.addressSpace().VMAs()
	if len(cv) != len(pv) {
		t.Fatalf("child VMAs = %d, want %d", len(cv), len(pv))
	}
	for i := range cv {
		if cv[i].Start != pv[i].Start || cv[i].Length != pv[i].Length || cv[i].Label != pv[i].Label {
			t.Fatalf("VMA %d differs: %+v vs %+v", i, cv[i], pv[i])
		}
	}
	if len(parent.Children()) != 1 || parent.Children()[0] != child {
		t.Fatal("process tree wrong")
	}
}

func TestForkDoesNotInheritDeviceMappings(t *testing.T) {
	in := fugakuInstance(t)
	parent, _ := in.Spawn("app", 1)
	if _, _, err := in.MapDevice(parent, TofuNIC()); err != nil {
		t.Fatal(err)
	}
	child, err := in.Fork(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(child.Mappings()) != 0 {
		t.Fatal("device windows must not survive fork (driver re-authorization)")
	}
	// But the MMIO VMA layout snapshot exists in the child address space;
	// it is re-established only after the child re-maps. Check the parent's
	// mapping is untouched.
	if len(parent.Mappings()) != 1 {
		t.Fatal("parent mapping disturbed by fork")
	}
}

func TestExitDeliversSIGCHLD(t *testing.T) {
	in := fugakuInstance(t)
	parent, _ := in.Spawn("parent", 1)
	child, err := in.Fork(parent)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Exit(child, 0); err != nil {
		t.Fatal(err)
	}
	if !child.Exited {
		t.Fatal("child not exited")
	}
	for _, th := range child.Threads {
		if th.State != ThreadDone {
			t.Fatal("child threads must retire")
		}
	}
	if !parent.signalTask().Pending.Has(kernel.SIGCHLD) {
		t.Fatal("parent must receive SIGCHLD")
	}
	// Wait reaps and clears.
	reaped, status, err := in.Wait(parent)
	if err != nil {
		t.Fatal(err)
	}
	if reaped != child || status != 0 {
		t.Fatalf("reaped %v status %d", reaped.PID, status)
	}
	if parent.signalTask().Pending.Has(kernel.SIGCHLD) {
		t.Fatal("SIGCHLD must clear after wait")
	}
	if _, _, err := in.Wait(parent); err == nil {
		t.Fatal("second wait must fail (no children left)")
	}
	// Double exit fails.
	if err := in.Exit(child, 0); !errors.Is(err, ErrProcessExited) {
		t.Fatalf("double exit err = %v", err)
	}
}

func TestKillSemantics(t *testing.T) {
	in := fugakuInstance(t)
	// SIGKILL always terminates.
	p1, _ := in.Spawn("victim", 1)
	if err := in.Kill(p1, kernel.SIGKILL); err != nil {
		t.Fatal(err)
	}
	if !p1.Exited || p1.ExitStatus != 128+9 {
		t.Fatalf("SIGKILL: exited=%v status=%d", p1.Exited, p1.ExitStatus)
	}
	// SIGTERM with default disposition terminates.
	p2, _ := in.Spawn("term", 1)
	if err := in.Kill(p2, kernel.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if !p2.Exited {
		t.Fatal("default SIGTERM must terminate")
	}
	// SIGTERM with a handler does not.
	p3, _ := in.Spawn("handler", 1)
	p3.signalTask().Handlers[kernel.SIGTERM] = kernel.DispositionHandler
	if err := in.Kill(p3, kernel.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if p3.Exited {
		t.Fatal("handled SIGTERM must not terminate")
	}
	if !p3.signalTask().Pending.Has(kernel.SIGTERM) {
		t.Fatal("handled signal must be pending for delivery")
	}
	// SIGUSR1 default is modelled as non-fatal here; process survives.
	p4, _ := in.Spawn("usr1", 1)
	if err := in.Kill(p4, kernel.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	if p4.Exited {
		t.Fatal("SIGUSR1 must not terminate in this model")
	}
	// Killing an exited process fails.
	if err := in.Kill(p1, kernel.SIGTERM); !errors.Is(err, ErrProcessExited) {
		t.Fatalf("kill exited err = %v", err)
	}
}

func TestForkFromExitedParentFails(t *testing.T) {
	in := fugakuInstance(t)
	p, _ := in.Spawn("gone", 1)
	_ = in.Exit(p, 0)
	if _, err := in.Fork(p); !errors.Is(err, ErrProcessExited) {
		t.Fatalf("err = %v", err)
	}
}
