package mckernel

import (
	"errors"
	"fmt"

	"mkos/internal/mem"
)

// Process is a McKernel process: threads plus the handle to its Linux proxy.
type Process struct {
	PID     int
	Name    string
	Threads []*Thread
	Exited  bool

	inst       *Instance
	proxy      *Proxy
	as         *mem.AddressSpace
	devmaps    []*DeviceMapping
	parent     *Process
	children   []*Process
	ExitStatus int
}

// addressSpace lazily builds the process's address space.
func (p *Process) addressSpace() *mem.AddressSpace {
	if p.as == nil {
		p.as = mem.NewAddressSpace()
	}
	return p.as
}

// Proxy returns the Linux-side twin.
func (p *Process) Proxy() *Proxy { return p.proxy }

// ThreadState is a McKernel thread's scheduler state.
type ThreadState int

// Thread states.
const (
	ThreadReady ThreadState = iota
	ThreadRunning
	ThreadBlocked
	ThreadDone
)

// Thread is one schedulable McKernel thread.
type Thread struct {
	TID   int
	Proc  *Process
	State ThreadState
	Core  int // core the thread is bound to; -1 before placement
}

// Scheduler is McKernel's CPU scheduler: cooperative, tick-less round robin
// with one run queue per core and no load balancing — threads stay where
// they are placed (Sec. 5: "a simple round-robin co-operative (tick-less)
// scheduler"). No timer interrupt ever preempts a running thread, which is
// precisely why the LWK has no scheduling noise.
type Scheduler struct {
	cores  []int
	queues map[int][]*Thread // per-core FIFO of ready threads
	place  int               // round-robin placement cursor
}

// Scheduler errors.
var (
	ErrNoCores  = errors.New("mckernel: scheduler has no cores")
	ErrNotReady = errors.New("mckernel: thread not in ready state")
)

// NewScheduler creates a scheduler over the partition's cores.
func NewScheduler(cores []int) *Scheduler {
	qs := make(map[int][]*Thread, len(cores))
	for _, c := range cores {
		qs[c] = nil
	}
	return &Scheduler{cores: append([]int(nil), cores...), queues: qs}
}

// Add places a new thread on the next core round-robin and enqueues it.
func (s *Scheduler) Add(t *Thread) error {
	if len(s.cores) == 0 {
		return ErrNoCores
	}
	core := s.cores[s.place%len(s.cores)]
	s.place++
	t.Core = core
	t.State = ThreadReady
	s.queues[core] = append(s.queues[core], t)
	return nil
}

// Pick returns the next ready thread on a core without removing it, or nil.
func (s *Scheduler) Pick(core int) *Thread {
	q := s.queues[core]
	if len(q) == 0 {
		return nil
	}
	return q[0]
}

// Dispatch marks the head thread running and removes it from the queue.
func (s *Scheduler) Dispatch(core int) (*Thread, error) {
	q := s.queues[core]
	if len(q) == 0 {
		return nil, fmt.Errorf("mckernel: core %d run queue empty", core)
	}
	t := q[0]
	if t.State != ThreadReady {
		return nil, fmt.Errorf("%w: tid %d state %d", ErrNotReady, t.TID, t.State)
	}
	s.queues[core] = q[1:]
	t.State = ThreadRunning
	return t, nil
}

// Yield re-enqueues a running thread at the tail of its core's queue —
// the only way control transfers between threads on a core.
func (s *Scheduler) Yield(t *Thread) error {
	if t.State != ThreadRunning {
		return fmt.Errorf("mckernel: yield from non-running tid %d", t.TID)
	}
	t.State = ThreadReady
	s.queues[t.Core] = append(s.queues[t.Core], t)
	return nil
}

// Block parks a running thread (futex wait, offloaded syscall in flight).
func (s *Scheduler) Block(t *Thread) error {
	if t.State != ThreadRunning {
		return fmt.Errorf("mckernel: block from non-running tid %d", t.TID)
	}
	t.State = ThreadBlocked
	return nil
}

// Wake makes a blocked thread ready on its original core.
func (s *Scheduler) Wake(t *Thread) error {
	if t.State != ThreadBlocked {
		return fmt.Errorf("mckernel: wake of non-blocked tid %d", t.TID)
	}
	t.State = ThreadReady
	s.queues[t.Core] = append(s.queues[t.Core], t)
	return nil
}

// Exit retires a thread permanently.
func (s *Scheduler) Exit(t *Thread) {
	t.State = ThreadDone
}

// QueueLen returns the ready-queue depth of a core.
func (s *Scheduler) QueueLen(core int) int { return len(s.queues[core]) }

// Cores returns the scheduler's core list.
func (s *Scheduler) Cores() []int { return s.cores }
