package mckernel

import (
	"errors"
	"fmt"

	"mkos/internal/mem"
	"mkos/internal/telemetry"
)

// Memory is McKernel's physical memory manager over the IHK partition: a
// simple region allocator that carves large-page-aligned chunks and caches
// freed chunks per size class instead of returning them. There is no
// interaction with the Linux buddy allocator after boot; the partition's
// memory belongs to the LWK alone — which is why application memory never
// fragments against OS allocations and why heap churn is nearly free.
type Memory struct {
	regions []mem.Region
	cursor  int   // index of the region being carved
	offset  int64 // carve offset within the current region

	// freeLists caches released chunks by size, the LWK's "never give
	// memory back" policy.
	freeLists map[int64][]int64 // size -> base addresses

	// live tracks outstanding allocations (base -> size) so Free can reject
	// double frees and frees of addresses the allocator never handed out
	// instead of silently corrupting the accounting.
	live map[int64]int64

	// AllocHook, when non-nil, runs before every allocation and can force
	// it to fail — the fault injector's OOM surface. McKernel has no demand
	// paging, so a failed allocation is fatal to the job, not reclaimable.
	AllocHook func(size int64) error

	total     int64
	allocated int64
}

// Memory errors.
var (
	ErrLWKOutOfMemory = errors.New("mckernel: partition memory exhausted")
	ErrBadFree        = errors.New("mckernel: free of unallocated chunk")
	ErrSizeMismatch   = errors.New("mckernel: free size does not match allocation")
)

// NewMemory builds the manager over the partition's regions.
func NewMemory(regions []mem.Region) *Memory {
	m := &Memory{
		regions:   append([]mem.Region(nil), regions...),
		freeLists: make(map[int64][]int64),
		live:      make(map[int64]int64),
	}
	for _, r := range regions {
		m.total += r.Bytes
	}
	return m
}

// TotalBytes returns the partition capacity.
func (m *Memory) TotalBytes() int64 { return m.total }

// AllocatedBytes returns the bytes handed out and not yet freed.
func (m *Memory) AllocatedBytes() int64 { return m.allocated }

// LiveChunks returns the number of outstanding allocations.
func (m *Memory) LiveChunks() int { return len(m.live) }

// Alloc returns the base address of a chunk of exactly size bytes, rounded
// up to the 2 MiB large-page granule. Freed chunks of the same size are
// reused first (O(1)); otherwise the carve cursor advances.
func (m *Memory) Alloc(size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("mckernel: non-positive allocation %d", size)
	}
	if m.AllocHook != nil {
		if err := m.AllocHook(size); err != nil {
			telemetry.C("mckernel.mem.alloc_failures").Inc()
			return 0, err
		}
	}
	size = mem.Page2M.Align(size)
	telemetry.C("mckernel.mem.alloc_calls").Inc()
	if list := m.freeLists[size]; len(list) > 0 {
		base := list[len(list)-1]
		m.freeLists[size] = list[:len(list)-1]
		m.allocated += size
		m.live[base] = size
		telemetry.C("mckernel.mem.freelist_hits").Inc()
		telemetry.C("mckernel.mem.alloc_bytes").Add(size)
		return base, nil
	}
	for m.cursor < len(m.regions) {
		r := m.regions[m.cursor]
		if m.offset+size <= r.Bytes {
			base := r.Base + m.offset
			m.offset += size
			m.allocated += size
			m.live[base] = size
			telemetry.C("mckernel.mem.alloc_bytes").Add(size)
			return base, nil
		}
		m.cursor++
		m.offset = 0
	}
	telemetry.C("mckernel.mem.alloc_failures").Inc()
	return 0, fmt.Errorf("%w: want %d bytes, %d allocated of %d", ErrLWKOutOfMemory, size, m.allocated, m.total)
}

// Free returns a chunk to the size-class cache. The physical pages stay with
// the LWK (and stay mapped with large pages); nothing is handed back to
// Linux, so the next Alloc of this size is a cache hit with no page faults.
// Double frees and frees of addresses Alloc never returned are rejected: the
// accounting backs the OOM model, so corrupting it silently would let a
// buggy caller mask or fabricate memory exhaustion.
func (m *Memory) Free(base, size int64) error {
	size = mem.Page2M.Align(size)
	got, ok := m.live[base]
	if !ok {
		return fmt.Errorf("%w: base %#x", ErrBadFree, base)
	}
	if got != size {
		return fmt.Errorf("%w: base %#x allocated %d bytes, freed %d", ErrSizeMismatch, base, got, size)
	}
	delete(m.live, base)
	m.freeLists[size] = append(m.freeLists[size], base)
	m.allocated -= size
	telemetry.C("mckernel.mem.free_calls").Inc()
	return nil
}

// CachedBytes returns the bytes sitting in the free caches.
func (m *Memory) CachedBytes() int64 {
	var n int64
	for size, list := range m.freeLists {
		n += size * int64(len(list))
	}
	return n
}
