package mckernel

import (
	"errors"
	"fmt"
)

// Futex is McKernel's in-LWK futex implementation. The paper lists futex
// among the performance-sensitive calls the LWK serves locally (Sec. 5) —
// OpenMP barriers and MPI progress loops live on it, so a delegation round
// trip per wait/wake would be fatal. The model implements the wait/wake
// protocol over the cooperative scheduler.
type FutexTable struct {
	sched *Scheduler
	// waiters holds per-address FIFO wait queues.
	waiters map[int64][]*Thread
	// values is the model's view of the futex words.
	values map[int64]int32
}

// NewFutexTable builds the table over the instance's scheduler.
func NewFutexTable(sched *Scheduler) *FutexTable {
	return &FutexTable{
		sched:   sched,
		waiters: make(map[int64][]*Thread),
		values:  make(map[int64]int32),
	}
}

// Futex errors.
var (
	ErrFutexAgain  = errors.New("mckernel: futex value changed (EAGAIN)")
	ErrFutexNotRun = errors.New("mckernel: futex op from non-running thread")
)

// Store sets a futex word (the userspace atomic store).
func (f *FutexTable) Store(addr int64, val int32) { f.values[addr] = val }

// Load reads a futex word.
func (f *FutexTable) Load(addr int64) int32 { return f.values[addr] }

// Wait blocks the thread on addr if the word still holds expect, following
// FUTEX_WAIT semantics: a mismatch returns EAGAIN without blocking (the
// lost-wakeup guard).
func (f *FutexTable) Wait(th *Thread, addr int64, expect int32) error {
	if th.State != ThreadRunning {
		return fmt.Errorf("%w: tid %d state %d", ErrFutexNotRun, th.TID, th.State)
	}
	if f.values[addr] != expect {
		return ErrFutexAgain
	}
	if err := f.sched.Block(th); err != nil {
		return err
	}
	f.waiters[addr] = append(f.waiters[addr], th)
	return nil
}

// Wake releases up to n waiters on addr and returns how many woke, FIFO
// order like the kernel's plist for equal priorities.
func (f *FutexTable) Wake(addr int64, n int) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	q := f.waiters[addr]
	woken := 0
	for len(q) > 0 && woken < n {
		th := q[0]
		q = q[1:]
		if err := f.sched.Wake(th); err != nil {
			return woken, err
		}
		woken++
	}
	if len(q) == 0 {
		delete(f.waiters, addr)
	} else {
		f.waiters[addr] = q
	}
	return woken, nil
}

// Requeue wakes up to nWake waiters on from and moves the rest (up to
// nMove) onto to — FUTEX_CMP_REQUEUE, the primitive pthread condition
// variables need to avoid thundering herds.
func (f *FutexTable) Requeue(from, to int64, nWake, nMove int, expect int32) (woken, moved int, err error) {
	if f.values[from] != expect {
		return 0, 0, ErrFutexAgain
	}
	woken, err = f.Wake(from, nWake)
	if err != nil {
		return
	}
	q := f.waiters[from]
	for len(q) > 0 && moved < nMove {
		th := q[0]
		q = q[1:]
		f.waiters[to] = append(f.waiters[to], th)
		moved++
	}
	if len(q) == 0 {
		delete(f.waiters, from)
	} else {
		f.waiters[from] = q
	}
	return
}

// Waiters returns the queue depth on addr.
func (f *FutexTable) Waiters(addr int64) int { return len(f.waiters[addr]) }

// Barrier implements an n-thread barrier over futexes, the construct whose
// latency the paper's hardware-barrier discussion targets (Sec. 4.1.5):
// the last arriver flips the generation word and wakes everyone.
type Barrier struct {
	futex   *FutexTable
	n       int
	arrived int
	genAddr int64
}

// NewBarrier builds an n-thread futex barrier at the given generation word.
func NewBarrier(f *FutexTable, n int, genAddr int64) (*Barrier, error) {
	if n < 1 {
		return nil, fmt.Errorf("mckernel: barrier size %d", n)
	}
	f.Store(genAddr, 0)
	return &Barrier{futex: f, n: n, genAddr: genAddr}, nil
}

// Arrive registers a thread at the barrier. The last arriver increments the
// generation and wakes the waiters (returns released=true); earlier
// arrivers are blocked on the generation word.
func (b *Barrier) Arrive(th *Thread) (released bool, err error) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		gen := b.futex.Load(b.genAddr)
		b.futex.Store(b.genAddr, gen+1)
		if _, err := b.futex.Wake(b.genAddr, b.n); err != nil {
			return false, err
		}
		return true, nil
	}
	gen := b.futex.Load(b.genAddr)
	if err := b.futex.Wait(th, b.genAddr, gen); err != nil {
		return false, err
	}
	return false, nil
}
