package mckernel

import (
	"errors"
	"testing"

	"mkos/internal/mem"
)

func testMemory(totalMB int64) *Memory {
	return NewMemory([]mem.Region{{Base: 1 << 30, Bytes: totalMB << 20}})
}

func TestFreeRejectsDoubleFree(t *testing.T) {
	m := testMemory(64)
	base, err := m.Alloc(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Free(base, 4<<20); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(base, 4<<20); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free err = %v, want ErrBadFree", err)
	}
	if m.AllocatedBytes() != 0 {
		t.Fatalf("double free corrupted accounting: %d", m.AllocatedBytes())
	}
}

func TestFreeRejectsUnallocatedBase(t *testing.T) {
	m := testMemory(64)
	if err := m.Free(0xdead0000, 2<<20); !errors.Is(err, ErrBadFree) {
		t.Fatalf("bogus free err = %v, want ErrBadFree", err)
	}
	// A base inside an allocation but not its start is also rejected.
	base, _ := m.Alloc(8 << 20)
	if err := m.Free(base+(2<<20), 2<<20); !errors.Is(err, ErrBadFree) {
		t.Fatalf("interior free err = %v, want ErrBadFree", err)
	}
	if m.AllocatedBytes() != 8<<20 {
		t.Fatalf("rejected frees changed accounting: %d", m.AllocatedBytes())
	}
}

func TestFreeRejectsSizeMismatch(t *testing.T) {
	m := testMemory(64)
	base, _ := m.Alloc(8 << 20)
	if err := m.Free(base, 4<<20); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("short free err = %v, want ErrSizeMismatch", err)
	}
	// Sub-granule differences are not mismatches: both round to 2 MiB.
	m2 := testMemory(64)
	b2, _ := m2.Alloc(3 << 20) // rounds to 4 MiB
	if err := m2.Free(b2, 4<<20); err != nil {
		t.Fatalf("aligned-equal free err = %v", err)
	}
}

func TestFreeThenReallocReusesChunk(t *testing.T) {
	m := testMemory(64)
	base, _ := m.Alloc(4 << 20)
	if err := m.Free(base, 4<<20); err != nil {
		t.Fatal(err)
	}
	again, err := m.Alloc(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if again != base {
		t.Fatalf("realloc did not hit the size-class cache: %#x vs %#x", again, base)
	}
	// The recycled chunk is live again and freeable exactly once.
	if err := m.Free(again, 4<<20); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(again, 4<<20); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free of recycled chunk err = %v", err)
	}
	if m.LiveChunks() != 0 {
		t.Fatalf("live chunks = %d", m.LiveChunks())
	}
}

func TestAllocHookForcesOOM(t *testing.T) {
	m := testMemory(64)
	m.AllocHook = func(size int64) error { return ErrLWKOutOfMemory }
	if _, err := m.Alloc(2 << 20); !errors.Is(err, ErrLWKOutOfMemory) {
		t.Fatalf("hooked alloc err = %v, want ErrLWKOutOfMemory", err)
	}
	if m.AllocatedBytes() != 0 || m.LiveChunks() != 0 {
		t.Fatal("failed alloc must not account anything")
	}
	m.AllocHook = nil
	if _, err := m.Alloc(2 << 20); err != nil {
		t.Fatalf("alloc after clearing hook: %v", err)
	}
}

func TestInstancePanicSurface(t *testing.T) {
	in := fugakuInstance(t)
	if !in.Healthy() || in.PanicReason() != "" {
		t.Fatal("fresh instance must be healthy")
	}
	err := in.Panic("LWK out of memory during premap")
	if !errors.Is(err, ErrKernelPanic) {
		t.Fatalf("Panic err = %v", err)
	}
	if in.Healthy() {
		t.Fatal("instance still healthy after panic")
	}
	if in.PanicReason() == "" {
		t.Fatal("panic reason lost")
	}
	if _, err := in.Spawn("app", 1); !errors.Is(err, ErrKernelPanic) {
		t.Fatalf("spawn on dead LWK err = %v", err)
	}
	if _, err := in.Mcexec("app", McexecOptions{Ranks: 1, ThreadsPerRank: 1}); !errors.Is(err, ErrKernelPanic) {
		t.Fatalf("mcexec on dead LWK err = %v", err)
	}
}
