package mckernel

import (
	"errors"
	"testing"
)

func TestSchedulerPlacementRoundRobin(t *testing.T) {
	s := NewScheduler([]int{4, 5, 6})
	var threads []*Thread
	for i := 0; i < 6; i++ {
		th := &Thread{TID: i}
		if err := s.Add(th); err != nil {
			t.Fatal(err)
		}
		threads = append(threads, th)
	}
	want := []int{4, 5, 6, 4, 5, 6}
	for i, th := range threads {
		if th.Core != want[i] {
			t.Fatalf("thread %d on core %d, want %d", i, th.Core, want[i])
		}
	}
	if s.QueueLen(4) != 2 || s.QueueLen(5) != 2 || s.QueueLen(6) != 2 {
		t.Fatal("queues unbalanced")
	}
}

func TestSchedulerNoCores(t *testing.T) {
	s := NewScheduler(nil)
	if err := s.Add(&Thread{}); !errors.Is(err, ErrNoCores) {
		t.Fatalf("err = %v", err)
	}
}

func TestSchedulerDispatchYieldCycle(t *testing.T) {
	s := NewScheduler([]int{0})
	a, b := &Thread{TID: 1}, &Thread{TID: 2}
	_ = s.Add(a)
	_ = s.Add(b)

	th, err := s.Dispatch(0)
	if err != nil || th != a {
		t.Fatalf("first dispatch = %v, %v", th, err)
	}
	if a.State != ThreadRunning {
		t.Fatal("dispatched thread not running")
	}
	// Cooperative: a must yield for b to run.
	if err := s.Yield(a); err != nil {
		t.Fatal(err)
	}
	if a.State != ThreadReady {
		t.Fatal("yielded thread not ready")
	}
	th, _ = s.Dispatch(0)
	if th != b {
		t.Fatal("round robin violated: b must run after a's yield")
	}
	_ = s.Yield(b)
	th, _ = s.Dispatch(0)
	if th != a {
		t.Fatal("round robin must return to a")
	}
}

func TestSchedulerBlockWake(t *testing.T) {
	s := NewScheduler([]int{0})
	a := &Thread{TID: 1}
	_ = s.Add(a)
	th, _ := s.Dispatch(0)
	if err := s.Block(th); err != nil {
		t.Fatal(err)
	}
	if th.State != ThreadBlocked {
		t.Fatal("not blocked")
	}
	if s.QueueLen(0) != 0 {
		t.Fatal("blocked thread must not be queued")
	}
	if _, err := s.Dispatch(0); err == nil {
		t.Fatal("dispatch from empty queue must fail")
	}
	if err := s.Wake(th); err != nil {
		t.Fatal(err)
	}
	if s.QueueLen(0) != 1 {
		t.Fatal("woken thread must be queued")
	}
	if err := s.Wake(th); err == nil {
		t.Fatal("waking a ready thread must fail")
	}
}

func TestSchedulerStateErrors(t *testing.T) {
	s := NewScheduler([]int{0})
	a := &Thread{TID: 1}
	_ = s.Add(a)
	if err := s.Yield(a); err == nil {
		t.Fatal("yield of ready thread must fail")
	}
	if err := s.Block(a); err == nil {
		t.Fatal("block of ready thread must fail")
	}
	th, _ := s.Dispatch(0)
	s.Exit(th)
	if th.State != ThreadDone {
		t.Fatal("exit state wrong")
	}
	if s.Pick(0) != nil {
		t.Fatal("Pick on empty queue must be nil")
	}
	if len(s.Cores()) != 1 {
		t.Fatal("Cores() wrong")
	}
}

func TestLWKMemoryCarveAndCache(t *testing.T) {
	in := fugakuInstance(t)
	m := in.LWKMem
	total := m.TotalBytes()
	if total != 8<<30 { // 2 GiB x 4 CMGs
		t.Fatalf("total = %d, want 8GiB", total)
	}
	base1, err := m.Alloc(3 << 20) // rounds to 4 MiB
	if err != nil {
		t.Fatal(err)
	}
	if m.AllocatedBytes() != 4<<20 {
		t.Fatalf("allocated = %d, want 4MiB (2M-aligned)", m.AllocatedBytes())
	}
	base2, err := m.Alloc(3 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if base1 == base2 {
		t.Fatal("distinct allocations share a base")
	}
	// Free then realloc same size: cache hit returns the same chunk.
	m.Free(base2, 3<<20)
	if m.CachedBytes() != 4<<20 {
		t.Fatalf("cached = %d", m.CachedBytes())
	}
	base3, err := m.Alloc(3 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if base3 != base2 {
		t.Fatal("size-class cache must return the freed chunk")
	}
	if m.CachedBytes() != 0 {
		t.Fatal("cache not drained")
	}
}

func TestLWKMemoryExhaustion(t *testing.T) {
	m := NewMemory(nil)
	if _, err := m.Alloc(1); !errors.Is(err, ErrLWKOutOfMemory) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.Alloc(0); err == nil {
		t.Fatal("zero alloc must fail")
	}
}
