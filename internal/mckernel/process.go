package mckernel

import (
	"fmt"

	"mkos/internal/kernel"
)

// POSIX process operations. The paper stresses that earlier LWKs' limited
// POSIX surface blocked adoption — "neither Catamount nor the IBM CNK
// provided full compatibility for a POSIX compliant glibc, limiting the
// availability of standard system calls, such as fork()" (Sec. 1). McKernel
// retains the Linux ABI, so fork, signals and thread creation all work.

// Fork clones a process: the child gets copies of the parent's threads'
// placement policy (fresh threads, one per parent thread), its own proxy on
// the Linux side, and a snapshot of the parent's address-space layout. The
// LWK uses copy-on-write large pages, so the fork itself is cheap.
func (in *Instance) Fork(parent *Process) (*Process, error) {
	if parent.Exited {
		return nil, fmt.Errorf("%w: pid %d", ErrProcessExited, parent.PID)
	}
	child, err := in.Spawn(parent.Name, len(parent.Threads))
	if err != nil {
		return nil, err
	}
	// Inherit the address-space layout (COW snapshot of every VMA).
	if parent.as != nil {
		for _, v := range parent.as.VMAs() {
			if _, err := child.addressSpace().MapFixed(v.Start, v.Length, v.Page, v.Contig, v.Label); err != nil {
				return nil, fmt.Errorf("mckernel: fork COW mapping %q: %w", v.Label, err)
			}
		}
	}
	// Device mappings are not inherited (the driver must re-authorize).
	// Signal dispositions are inherited; pending signals are not (POSIX).
	child.parent = parent
	parent.children = append(parent.children, child)
	return child, nil
}

// Exit terminates a process: threads retire from the scheduler, the proxy
// is released, and the parent receives SIGCHLD. The address-space teardown
// triggers the TLB-flush burst Sec. 4.2.2 describes — on McKernel the flush
// is confined to the process's own cores, while the Linux path broadcasts.
func (in *Instance) Exit(p *Process, status int) error {
	if p.Exited {
		return fmt.Errorf("%w: pid %d", ErrProcessExited, p.PID)
	}
	for _, th := range p.Threads {
		in.Scheduler.Exit(th)
	}
	p.Exited = true
	p.ExitStatus = status
	if p.parent != nil && !p.parent.Exited {
		kernel.Deliver(p.parent.signalTask(), kernel.SIGCHLD)
	}
	return nil
}

// Kill delivers a signal to a process following POSIX semantics; SIGKILL
// terminates immediately.
func (in *Instance) Kill(p *Process, sig kernel.Signal) error {
	if p.Exited {
		return fmt.Errorf("%w: pid %d", ErrProcessExited, p.PID)
	}
	actionable := kernel.Deliver(p.signalTask(), sig)
	if sig == kernel.SIGKILL {
		return in.Exit(p, 128+int(sig))
	}
	if actionable && p.signalTask().Handlers[sig] == kernel.DispositionDefault {
		switch sig {
		case kernel.SIGTERM, kernel.SIGINT, kernel.SIGHUP, kernel.SIGSEGV:
			return in.Exit(p, 128+int(sig))
		}
	}
	return nil
}

// Wait reaps an exited child and returns its status, clearing the SIGCHLD.
func (in *Instance) Wait(parent *Process) (*Process, int, error) {
	for i, c := range parent.children {
		if c.Exited {
			parent.children = append(parent.children[:i], parent.children[i+1:]...)
			parent.signalTask().Pending.Remove(kernel.SIGCHLD)
			return c, c.ExitStatus, nil
		}
	}
	return nil, 0, fmt.Errorf("mckernel: pid %d has no exited children", parent.PID)
}

// signalTask returns the kernel task view used for signal bookkeeping; the
// proxy's task stands in for the whole process (signal state is per-process
// here, as the paper's McKernel delegates most signal bookkeeping anyway).
func (p *Process) signalTask() *kernel.Task { return p.proxy.Task }

// Children returns the live and zombie children.
func (p *Process) Children() []*Process { return p.children }
