package kernel

import (
	"fmt"
	"time"
)

// TaskKind classifies schedulable entities; the noise models care about who
// is running, not what it computes.
type TaskKind int

// Task kinds.
const (
	// AppTask is an application process/thread.
	AppTask TaskKind = iota
	// DaemonTask is a user-space system daemon (systemd services, sshd,
	// monitoring agents...).
	DaemonTask
	// KworkerTask is a kernel worker thread.
	KworkerTask
	// BlkMQTask is a block-multiqueue I/O completion worker.
	BlkMQTask
	// MonitorTask is a periodic monitoring agent (sar).
	MonitorTask
	// ProxyTask is a McKernel proxy process living on the Linux side.
	ProxyTask
)

func (k TaskKind) String() string {
	switch k {
	case AppTask:
		return "app"
	case DaemonTask:
		return "daemon"
	case KworkerTask:
		return "kworker"
	case BlkMQTask:
		return "blk-mq"
	case MonitorTask:
		return "monitor"
	case ProxyTask:
		return "proxy"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// TaskState is the lifecycle state of a task.
type TaskState int

// Task states.
const (
	TaskRunnable TaskState = iota
	TaskRunning
	TaskSleeping
	TaskExited
)

func (s TaskState) String() string {
	switch s {
	case TaskRunnable:
		return "runnable"
	case TaskRunning:
		return "running"
	case TaskSleeping:
		return "sleeping"
	case TaskExited:
		return "exited"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Task is a schedulable entity.
type Task struct {
	ID       int
	Name     string
	Kind     TaskKind
	State    TaskState
	Affinity CPUMask
	CPU      int // core currently or last running on; -1 if never placed

	// Runtime accounting.
	UserTime   time.Duration
	KernelTime time.Duration
	Wakeups    uint64

	// Signals.
	Pending  SignalSet
	Blocked  SignalSet
	Handlers map[Signal]SignalDisposition
}

// NewTask creates a runnable task with the given affinity.
func NewTask(id int, name string, kind TaskKind, affinity CPUMask) *Task {
	return &Task{
		ID: id, Name: name, Kind: kind, State: TaskRunnable,
		Affinity: affinity, CPU: -1,
		Handlers: make(map[Signal]SignalDisposition),
	}
}

// CanRunOn reports whether the task's affinity admits core c.
func (t *Task) CanRunOn(c int) bool { return t.Affinity.Has(c) }

// SetAffinity replaces the task's CPU mask. An empty mask is rejected, like
// sched_setaffinity(2).
func (t *Task) SetAffinity(m CPUMask) error {
	if m.Empty() {
		return fmt.Errorf("kernel: empty affinity for task %q", t.Name)
	}
	t.Affinity = m
	return nil
}

func (t *Task) String() string {
	return fmt.Sprintf("%s[%d] %s %s cpus=%s", t.Name, t.ID, t.Kind, t.State, t.Affinity)
}

// IRQ is an interrupt descriptor with its steering mask
// (/proc/irq/N/smp_affinity).
type IRQ struct {
	Number   int
	Name     string
	Affinity CPUMask
	Count    uint64 // deliveries
}

// Route updates the IRQ's affinity mask.
func (q *IRQ) Route(m CPUMask) error {
	if m.Empty() {
		return fmt.Errorf("kernel: empty smp_affinity for IRQ %d", q.Number)
	}
	q.Affinity = m
	return nil
}

// TargetCPU picks the core the next delivery lands on given a round-robin
// counter, mimicking irqbalance spreading deliveries over the mask.
func (q *IRQ) TargetCPU() int {
	cores := q.Affinity.Cores()
	if len(cores) == 0 {
		return -1
	}
	c := cores[int(q.Count)%len(cores)]
	q.Count++
	return c
}
