// Package kernel provides abstractions shared by the Linux and McKernel
// models: CPU affinity masks, tasks, IRQ descriptors, the system-call
// vocabulary and POSIX-style signals.
package kernel

import (
	"fmt"
	"math/bits"
	"strings"
)

// CPUMask is a set of CPU (core) IDs, the kernel's cpumask_t. The models in
// this repository never exceed a few hundred cores per node, so a slice of
// words suffices.
type CPUMask struct {
	words []uint64
}

// NewCPUMask returns a mask with the listed cores set.
func NewCPUMask(cores ...int) CPUMask {
	var m CPUMask
	for _, c := range cores {
		m.Set(c)
	}
	return m
}

// FullMask returns a mask with cores [0, n) set.
func FullMask(n int) CPUMask {
	var m CPUMask
	for c := 0; c < n; c++ {
		m.Set(c)
	}
	return m
}

func (m *CPUMask) ensure(word int) {
	for len(m.words) <= word {
		m.words = append(m.words, 0)
	}
}

// Set adds core c.
func (m *CPUMask) Set(c int) {
	if c < 0 {
		return
	}
	m.ensure(c / 64)
	m.words[c/64] |= 1 << (c % 64)
}

// Clear removes core c.
func (m *CPUMask) Clear(c int) {
	if c < 0 || c/64 >= len(m.words) {
		return
	}
	m.words[c/64] &^= 1 << (c % 64)
}

// Has reports whether core c is set.
func (m CPUMask) Has(c int) bool {
	if c < 0 || c/64 >= len(m.words) {
		return false
	}
	return m.words[c/64]&(1<<(c%64)) != 0
}

// Count returns the number of cores in the mask.
func (m CPUMask) Count() int {
	n := 0
	for _, w := range m.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no cores are set.
func (m CPUMask) Empty() bool { return m.Count() == 0 }

// Cores returns the set cores in ascending order.
func (m CPUMask) Cores() []int {
	var out []int
	for wi, w := range m.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &^= 1 << b
		}
	}
	return out
}

// Intersect returns m ∩ o.
func (m CPUMask) Intersect(o CPUMask) CPUMask {
	var out CPUMask
	n := len(m.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	out.words = make([]uint64, n)
	for i := 0; i < n; i++ {
		out.words[i] = m.words[i] & o.words[i]
	}
	return out
}

// Union returns m ∪ o.
func (m CPUMask) Union(o CPUMask) CPUMask {
	var out CPUMask
	n := len(m.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	out.words = make([]uint64, n)
	for i := range out.words {
		var a, b uint64
		if i < len(m.words) {
			a = m.words[i]
		}
		if i < len(o.words) {
			b = o.words[i]
		}
		out.words[i] = a | b
	}
	return out
}

// Minus returns m \ o.
func (m CPUMask) Minus(o CPUMask) CPUMask {
	var out CPUMask
	out.words = make([]uint64, len(m.words))
	copy(out.words, m.words)
	for i := 0; i < len(out.words) && i < len(o.words); i++ {
		out.words[i] &^= o.words[i]
	}
	return out
}

// Equal reports set equality.
func (m CPUMask) Equal(o CPUMask) bool {
	n := len(m.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(m.words) {
			a = m.words[i]
		}
		if i < len(o.words) {
			b = o.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// First returns the lowest set core, or -1 if empty.
func (m CPUMask) First() int {
	for wi, w := range m.words {
		if w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// String formats the mask as a compact range list, e.g. "0-3,68-71".
func (m CPUMask) String() string {
	cores := m.Cores()
	if len(cores) == 0 {
		return "(empty)"
	}
	var sb strings.Builder
	start, prev := cores[0], cores[0]
	flush := func() {
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		if start == prev {
			fmt.Fprintf(&sb, "%d", start)
		} else {
			fmt.Fprintf(&sb, "%d-%d", start, prev)
		}
	}
	for _, c := range cores[1:] {
		if c == prev+1 {
			prev = c
			continue
		}
		flush()
		start, prev = c, c
	}
	flush()
	return sb.String()
}
