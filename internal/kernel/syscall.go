package kernel

import (
	"fmt"
	"time"
)

// Syscall identifies one of the system calls the models distinguish. The set
// mirrors what matters to the paper: McKernel implements the
// performance-sensitive calls locally (memory management, threading,
// signals) and delegates the rest to Linux through the proxy process
// (Sec. 5).
type Syscall int

// Modeled system calls.
const (
	SysMmap Syscall = iota
	SysMunmap
	SysBrk
	SysMadvise
	SysFutex
	SysClone
	SysExit
	SysGetpid
	SysSignal
	SysOpen
	SysClose
	SysRead
	SysWrite
	SysIoctl
	SysStat
	SysSocket
	SysPerfEventOpen
	numSyscalls
)

var syscallNames = [...]string{
	SysMmap: "mmap", SysMunmap: "munmap", SysBrk: "brk", SysMadvise: "madvise",
	SysFutex: "futex", SysClone: "clone", SysExit: "exit", SysGetpid: "getpid",
	SysSignal: "rt_sigaction", SysOpen: "open", SysClose: "close",
	SysRead: "read", SysWrite: "write", SysIoctl: "ioctl", SysStat: "stat",
	SysSocket: "socket", SysPerfEventOpen: "perf_event_open",
}

func (s Syscall) String() string {
	if s < 0 || int(s) >= len(syscallNames) {
		return fmt.Sprintf("sys(%d)", int(s))
	}
	return syscallNames[s]
}

// NumSyscalls returns the size of the modeled syscall space.
func NumSyscalls() int { return int(numSyscalls) }

// PerformanceSensitive reports whether the call is on McKernel's
// implemented-locally list (memory management, threading, signaling,
// trivial getters).
func (s Syscall) PerformanceSensitive() bool {
	switch s {
	case SysMmap, SysMunmap, SysBrk, SysMadvise, SysFutex, SysClone, SysExit,
		SysGetpid, SysSignal:
		return true
	default:
		return false
	}
}

// CostTable maps syscalls to in-kernel service times. Both kernel models
// consume one of these; Linux's costs include its heavier-weight paths.
type CostTable map[Syscall]time.Duration

// Cost returns the table's cost with a conservative default for calls the
// table does not list.
func (t CostTable) Cost(s Syscall) time.Duration {
	if d, ok := t[s]; ok {
		return d
	}
	return 2 * time.Microsecond
}

// Signal is a POSIX signal number subset.
type Signal int

// Modeled signals.
const (
	SIGHUP  Signal = 1
	SIGINT  Signal = 2
	SIGKILL Signal = 9
	SIGUSR1 Signal = 10
	SIGSEGV Signal = 11
	SIGUSR2 Signal = 12
	SIGTERM Signal = 15
	SIGCHLD Signal = 17
	SIGCONT Signal = 18
	SIGSTOP Signal = 19
)

// SignalDisposition tells a task what to do with a delivered signal.
type SignalDisposition int

// Dispositions.
const (
	DispositionDefault SignalDisposition = iota
	DispositionIgnore
	DispositionHandler
)

// SignalSet is a bitset of pending or blocked signals.
type SignalSet uint64

// Add inserts sig.
func (s *SignalSet) Add(sig Signal) { *s |= 1 << uint(sig) }

// Remove deletes sig.
func (s *SignalSet) Remove(sig Signal) { *s &^= 1 << uint(sig) }

// Has reports membership.
func (s SignalSet) Has(sig Signal) bool { return s&(1<<uint(sig)) != 0 }

// Empty reports whether no signals are set.
func (s SignalSet) Empty() bool { return s == 0 }

// Deliver queues sig on t following POSIX semantics: SIGKILL/SIGSTOP cannot
// be blocked or ignored; blocked signals stay pending until unblocked;
// ignored signals are dropped. It returns true when the signal becomes
// actionable now (would interrupt the task).
func Deliver(t *Task, sig Signal) bool {
	if sig != SIGKILL && sig != SIGSTOP {
		if t.Handlers[sig] == DispositionIgnore {
			return false
		}
		if t.Blocked.Has(sig) {
			t.Pending.Add(sig)
			return false
		}
	}
	t.Pending.Add(sig)
	return true
}

// Unblock clears sig from the task's blocked set and reports whether a
// pending instance became actionable.
func Unblock(t *Task, sig Signal) bool {
	t.Blocked.Remove(sig)
	return t.Pending.Has(sig)
}
