package kernel

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCPUMaskBasics(t *testing.T) {
	m := NewCPUMask(0, 3, 68, 200)
	for _, c := range []int{0, 3, 68, 200} {
		if !m.Has(c) {
			t.Fatalf("missing core %d", c)
		}
	}
	if m.Has(1) || m.Has(1000) || m.Has(-1) {
		t.Fatal("spurious membership")
	}
	if m.Count() != 4 {
		t.Fatalf("Count = %d", m.Count())
	}
	m.Clear(68)
	if m.Has(68) || m.Count() != 3 {
		t.Fatal("Clear failed")
	}
	m.Clear(9999) // out-of-range clear is a no-op
	m.Set(-1)     // negative set is a no-op
	if m.Count() != 3 {
		t.Fatal("no-op operations changed the mask")
	}
}

func TestCPUMaskSetOps(t *testing.T) {
	a := NewCPUMask(0, 1, 2, 3)
	b := NewCPUMask(2, 3, 4, 5)
	if got := a.Intersect(b).Cores(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Union(b).Count(); got != 6 {
		t.Fatalf("Union count = %d", got)
	}
	if got := a.Minus(b).Cores(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Minus = %v", got)
	}
	if !a.Equal(NewCPUMask(3, 2, 1, 0)) {
		t.Fatal("Equal order-independence failed")
	}
	if a.Equal(b) {
		t.Fatal("unequal masks compared equal")
	}
	// Different word lengths with identical content.
	var c CPUMask
	c.Set(70)
	c.Clear(70)
	if !c.Equal(CPUMask{}) {
		t.Fatal("empty masks with different backing must be Equal")
	}
}

func TestCPUMaskFirstAndFull(t *testing.T) {
	if NewCPUMask().First() != -1 {
		t.Fatal("empty First must be -1")
	}
	if NewCPUMask(65, 3).First() != 3 {
		t.Fatal("First wrong")
	}
	f := FullMask(272)
	if f.Count() != 272 || !f.Has(271) || f.Has(272) {
		t.Fatal("FullMask wrong")
	}
}

func TestCPUMaskString(t *testing.T) {
	cases := map[string]CPUMask{
		"(empty)":   {},
		"0-3":       NewCPUMask(0, 1, 2, 3),
		"0-3,68-71": NewCPUMask(0, 1, 2, 3, 68, 69, 70, 71),
		"5":         NewCPUMask(5),
		"1,3,5":     NewCPUMask(1, 3, 5),
		"0,2-4,100": NewCPUMask(0, 2, 3, 4, 100),
	}
	for want, m := range cases {
		if got := m.String(); got != want {
			t.Fatalf("String = %q, want %q", got, want)
		}
	}
}

func TestQuickMaskRoundTrip(t *testing.T) {
	f := func(cores []uint8) bool {
		var m CPUMask
		seen := map[int]bool{}
		for _, c := range cores {
			m.Set(int(c))
			seen[int(c)] = true
		}
		if m.Count() != len(seen) {
			return false
		}
		for _, c := range m.Cores() {
			if !seen[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTaskLifecycle(t *testing.T) {
	task := NewTask(1, "a.out", AppTask, NewCPUMask(4, 5))
	if !task.CanRunOn(4) || task.CanRunOn(0) {
		t.Fatal("affinity check wrong")
	}
	if err := task.SetAffinity(CPUMask{}); err == nil {
		t.Fatal("empty affinity must be rejected")
	}
	if err := task.SetAffinity(NewCPUMask(7)); err != nil {
		t.Fatal(err)
	}
	if !task.CanRunOn(7) {
		t.Fatal("SetAffinity did not apply")
	}
	if task.String() == "" {
		t.Fatal("empty String")
	}
}

func TestTaskKindAndStateStrings(t *testing.T) {
	kinds := map[TaskKind]string{
		AppTask: "app", DaemonTask: "daemon", KworkerTask: "kworker",
		BlkMQTask: "blk-mq", MonitorTask: "monitor", ProxyTask: "proxy",
		TaskKind(42): "kind(42)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%v != %s", k, want)
		}
	}
	states := map[TaskState]string{
		TaskRunnable: "runnable", TaskRunning: "running",
		TaskSleeping: "sleeping", TaskExited: "exited", TaskState(9): "state(9)",
	}
	for s, want := range states {
		if s.String() != want {
			t.Fatalf("%v != %s", s, want)
		}
	}
}

func TestIRQRouting(t *testing.T) {
	q := &IRQ{Number: 42, Name: "eth0", Affinity: NewCPUMask(0, 1, 2)}
	if err := q.Route(CPUMask{}); err == nil {
		t.Fatal("empty smp_affinity must be rejected")
	}
	if err := q.Route(NewCPUMask(48, 49)); err != nil {
		t.Fatal(err)
	}
	// Round-robin across the mask.
	a, b, c := q.TargetCPU(), q.TargetCPU(), q.TargetCPU()
	if a != 48 || b != 49 || c != 48 {
		t.Fatalf("round robin = %d,%d,%d", a, b, c)
	}
	if q.Count != 3 {
		t.Fatalf("delivery count = %d", q.Count)
	}
	empty := &IRQ{Number: 1}
	if empty.TargetCPU() != -1 {
		t.Fatal("empty affinity target must be -1")
	}
}

func TestSyscallClassification(t *testing.T) {
	sensitive := []Syscall{SysMmap, SysMunmap, SysBrk, SysMadvise, SysFutex, SysClone, SysExit, SysGetpid, SysSignal}
	for _, s := range sensitive {
		if !s.PerformanceSensitive() {
			t.Fatalf("%v must be performance sensitive (McKernel-local)", s)
		}
	}
	delegated := []Syscall{SysOpen, SysRead, SysWrite, SysIoctl, SysSocket, SysStat, SysPerfEventOpen}
	for _, s := range delegated {
		if s.PerformanceSensitive() {
			t.Fatalf("%v must be delegated to Linux", s)
		}
	}
}

func TestSyscallNames(t *testing.T) {
	if SysMmap.String() != "mmap" || SysIoctl.String() != "ioctl" {
		t.Fatal("syscall names wrong")
	}
	if Syscall(-1).String() != "sys(-1)" {
		t.Fatal("out-of-range name wrong")
	}
	if NumSyscalls() < 15 {
		t.Fatal("syscall space too small")
	}
}

func TestCostTable(t *testing.T) {
	tbl := CostTable{SysMmap: 5 * time.Microsecond}
	if tbl.Cost(SysMmap) != 5*time.Microsecond {
		t.Fatal("explicit cost wrong")
	}
	if tbl.Cost(SysRead) != 2*time.Microsecond {
		t.Fatal("default cost wrong")
	}
}

func TestSignalDelivery(t *testing.T) {
	task := NewTask(1, "t", AppTask, NewCPUMask(0))
	if !Deliver(task, SIGUSR1) {
		t.Fatal("unblocked signal must be actionable")
	}
	if !task.Pending.Has(SIGUSR1) {
		t.Fatal("signal not pending")
	}

	task2 := NewTask(2, "t2", AppTask, NewCPUMask(0))
	task2.Blocked.Add(SIGUSR2)
	if Deliver(task2, SIGUSR2) {
		t.Fatal("blocked signal must not be actionable")
	}
	if !task2.Pending.Has(SIGUSR2) {
		t.Fatal("blocked signal must stay pending")
	}
	if !Unblock(task2, SIGUSR2) {
		t.Fatal("unblocking with pending signal must report actionable")
	}

	task3 := NewTask(3, "t3", AppTask, NewCPUMask(0))
	task3.Handlers[SIGTERM] = DispositionIgnore
	if Deliver(task3, SIGTERM) {
		t.Fatal("ignored signal must be dropped")
	}
	if task3.Pending.Has(SIGTERM) {
		t.Fatal("ignored signal must not be pending")
	}
}

func TestSIGKILLCannotBeBlockedOrIgnored(t *testing.T) {
	task := NewTask(1, "t", AppTask, NewCPUMask(0))
	task.Blocked.Add(SIGKILL)
	task.Handlers[SIGKILL] = DispositionIgnore
	if !Deliver(task, SIGKILL) {
		t.Fatal("SIGKILL must always be actionable")
	}
}

func TestSignalSetOps(t *testing.T) {
	var s SignalSet
	if !s.Empty() {
		t.Fatal("zero set must be empty")
	}
	s.Add(SIGHUP)
	s.Add(SIGCHLD)
	if !s.Has(SIGHUP) || !s.Has(SIGCHLD) || s.Has(SIGINT) {
		t.Fatal("membership wrong")
	}
	s.Remove(SIGHUP)
	if s.Has(SIGHUP) || s.Empty() {
		t.Fatal("Remove wrong")
	}
}
