package interconnect

import (
	"testing"
	"time"
)

// MinLatency is the conservative-synchronization lookahead: internal/shard
// advances parallel time windows of exactly this width on the promise that no
// modeled communication between distinct nodes completes faster. These tests
// pin the promise against every latency model the fabric exposes.

func TestMinLatencyPositive(t *testing.T) {
	for _, f := range []*Fabric{TofuD(), OmniPath()} {
		if got := f.MinLatency(); got <= 0 {
			t.Errorf("%s: MinLatency = %v, want > 0", f.Name, got)
		}
	}
}

func TestMinLatencyBoundsEveryModeledHop(t *testing.T) {
	payloads := []int64{0, 1, 64 << 10, 1 << 20}
	jobs := []int{2, 16, 8192, 158976}
	for _, f := range []*Fabric{TofuD(), OmniPath()} {
		min := f.MinLatency()
		for _, n := range jobs {
			for _, b := range payloads {
				p2p, err := f.PointToPoint(b, n)
				if err != nil {
					t.Fatalf("%s: PointToPoint(%d, %d): %v", f.Name, b, n, err)
				}
				if p2p < min {
					t.Errorf("%s: PointToPoint(%d, %d) = %v < MinLatency %v", f.Name, b, n, p2p, min)
				}
				ar, err := f.Allreduce(b, n)
				if err != nil {
					t.Fatalf("%s: Allreduce(%d, %d): %v", f.Name, b, n, err)
				}
				if ar < min {
					t.Errorf("%s: Allreduce(%d, %d) = %v < MinLatency %v", f.Name, b, n, ar, min)
				}
				halo, err := f.HaloExchange(b, 6, n)
				if err != nil {
					t.Fatalf("%s: HaloExchange(%d, 6, %d): %v", f.Name, b, n, err)
				}
				if halo < min {
					t.Errorf("%s: HaloExchange(%d, 6, %d) = %v < MinLatency %v", f.Name, b, n, halo, min)
				}
			}
			if bar := f.Barrier(n); bar < min {
				t.Errorf("%s: Barrier(%d) = %v < MinLatency %v", f.Name, n, bar, min)
			}
		}
	}
}

func TestTofuMinHopsBoundsRoutedDistances(t *testing.T) {
	g := TofuGeometry{X: 3, Y: 3, Z: 3}
	if g.MinHops() < 1 {
		t.Fatalf("MinHops = %d, want >= 1", g.MinHops())
	}
	nodes := g.Nodes()
	for a := 0; a < nodes; a += 7 {
		for b := 0; b < nodes; b += 11 {
			h, err := g.HopsByID(a, b)
			if err != nil {
				t.Fatalf("HopsByID(%d, %d): %v", a, b, err)
			}
			if a == b {
				if h != 0 {
					t.Errorf("HopsByID(%d, %d) = %d, want 0 for self", a, b, h)
				}
				continue
			}
			if h < g.MinHops() {
				t.Errorf("HopsByID(%d, %d) = %d < MinHops %d", a, b, h, g.MinHops())
			}
		}
	}
}

func TestTofuHopLatencyNeverUndercutsMinLatency(t *testing.T) {
	g := TofuGeometry{X: 2, Y: 2, Z: 2}
	f := TofuD()
	for a := 0; a < g.Nodes(); a += 5 {
		for b := 0; b < g.Nodes(); b += 3 {
			if a == b {
				continue
			}
			lat, err := g.HopLatency(f, a, b, 64)
			if err != nil {
				t.Fatalf("HopLatency(%d, %d): %v", a, b, err)
			}
			if lat < f.MinLatency() {
				t.Errorf("HopLatency(%d, %d) = %v < MinLatency %v", a, b, lat, f.MinLatency())
			}
			// One routed hop at minimum: strictly more than injection alone.
			if lat < f.InjectLatency+f.PerHop {
				t.Errorf("HopLatency(%d, %d) = %v < inject+hop %v", a, b, lat, f.InjectLatency+f.PerHop)
			}
		}
	}
	if _, err := g.HopLatency(f, 0, 1, -1); err == nil {
		t.Error("HopLatency with negative bytes did not fail")
	}
	if _, err := g.HopLatency(f, 0, g.Nodes(), 0); err == nil {
		t.Error("HopLatency with out-of-range node did not fail")
	}
	// Zero-byte neighbour transfer is the floor the lookahead leans on.
	lat, err := g.HopLatency(f, 0, 1, 0)
	if err != nil {
		t.Fatalf("HopLatency(0, 1, 0): %v", err)
	}
	want := f.InjectLatency + time.Duration(1)*f.PerHop
	if lat != want {
		t.Errorf("neighbour zero-byte HopLatency = %v, want %v", lat, want)
	}
}
