// Package interconnect models the two fabrics of the study — Fujitsu TofuD
// (Fugaku, a 6-D torus with hardware collectives) and Intel Omni-Path
// (Oakforest-PACS, a fat tree) — at the level application results depend on:
// point-to-point latency/bandwidth, barrier and allreduce scaling with node
// count, and RDMA memory-registration bookkeeping (STAGs on Tofu).
package interconnect

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// TopologyKind selects the hop-count model.
type TopologyKind int

const (
	// Torus6D is TofuD: diameter grows as the 6th root of node count.
	Torus6D TopologyKind = iota
	// FatTree is Omni-Path: diameter grows logarithmically.
	FatTree
)

// Fabric models one interconnect.
type Fabric struct {
	Name          string
	Kind          TopologyKind
	InjectLatency time.Duration // NIC injection + first switch
	PerHop        time.Duration
	Bandwidth     float64 // bytes per second per link
	// HWCollectives marks hardware-offloaded barrier/reduction support
	// (the Tofu barrier interface).
	HWCollectives bool
}

// TofuD returns the Fugaku interconnect parameters.
func TofuD() *Fabric {
	return &Fabric{
		Name: "TofuD", Kind: Torus6D,
		InjectLatency: 490 * time.Nanosecond, PerHop: 100 * time.Nanosecond,
		Bandwidth: 6.8e9, HWCollectives: true,
	}
}

// OmniPath returns the Oakforest-PACS interconnect parameters.
func OmniPath() *Fabric {
	return &Fabric{
		Name: "Omni-Path", Kind: FatTree,
		InjectLatency: 1 * time.Microsecond, PerHop: 150 * time.Nanosecond,
		Bandwidth: 12.5e9, HWCollectives: false,
	}
}

// MinLatency returns a strictly positive lower bound on the latency of any
// modeled communication between two distinct nodes: every point-to-point
// transfer, barrier stage, allreduce and halo exchange costs at least the NIC
// injection latency before the first byte can arrive anywhere else.
//
// This bound is the conservative-synchronization lookahead for sharded
// simulations (internal/shard): a cross-shard interaction initiated at
// simulated instant t cannot take effect on another node before
// t + MinLatency, so parallel shards may safely advance through a time
// window of that width without hearing from each other.
func (f *Fabric) MinLatency() time.Duration {
	return f.InjectLatency
}

// Hops returns the expected hop count between two random nodes among n.
func (f *Fabric) Hops(n int) int {
	if n <= 1 {
		return 0
	}
	switch f.Kind {
	case Torus6D:
		// Average distance in a balanced 6-D torus: (6/4) * n^(1/6).
		return int(math.Ceil(1.5 * math.Pow(float64(n), 1.0/6.0)))
	default:
		// Three-level fat tree up to a few thousand nodes, then deeper.
		return 2*int(math.Ceil(math.Log(float64(n))/math.Log(48))) + 1
	}
}

// ErrBadTransfer reports invalid transfer parameters.
var ErrBadTransfer = errors.New("interconnect: invalid transfer")

// PointToPoint returns the latency of transferring bytes between two random
// nodes in a job of n nodes.
func (f *Fabric) PointToPoint(bytes int64, n int) (time.Duration, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("%w: %d bytes", ErrBadTransfer, bytes)
	}
	wire := time.Duration(float64(bytes) / f.Bandwidth * 1e9)
	return f.InjectLatency + time.Duration(f.Hops(n))*f.PerHop + wire, nil
}

// Barrier returns the completion latency of an n-node barrier. Hardware
// collectives (Tofu) complete in near-constant time along the reduction
// tree; software barriers dismantle into log2(n) point-to-point stages.
func (f *Fabric) Barrier(n int) time.Duration {
	if n <= 1 {
		return 0
	}
	stages := int(math.Ceil(math.Log2(float64(n))))
	if f.HWCollectives {
		return f.InjectLatency + time.Duration(stages)*f.PerHop*2
	}
	perStage := f.InjectLatency + time.Duration(f.Hops(n))*f.PerHop
	return time.Duration(stages) * perStage
}

// Allreduce returns the latency of an allreduce of bytes across n nodes
// (recursive doubling for small payloads, ring for large ones).
func (f *Fabric) Allreduce(bytes int64, n int) (time.Duration, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("%w: %d bytes", ErrBadTransfer, bytes)
	}
	if n <= 1 {
		return 0, nil
	}
	stages := int(math.Ceil(math.Log2(float64(n))))
	p2p, err := f.PointToPoint(bytes, n)
	if err != nil {
		return 0, err
	}
	if bytes <= 64<<10 {
		// Latency-bound recursive doubling.
		lat := time.Duration(stages) * p2p
		if f.HWCollectives && bytes <= 4<<10 {
			// Tofu barrier-network reductions for tiny payloads.
			lat = f.Barrier(n) + time.Duration(float64(bytes)/f.Bandwidth*1e9)
		}
		return lat, nil
	}
	// Bandwidth-bound ring: 2*(n-1)/n of the data crosses each link, but
	// pipelined; model as 2x wire time plus the latency stages.
	wire := time.Duration(2 * float64(bytes) / f.Bandwidth * 1e9)
	return wire + time.Duration(stages)*(f.InjectLatency+f.PerHop), nil
}

// HaloExchange returns the per-step latency of a nearest-neighbour exchange
// of bytes per face, the dominant communication of stencil/grid codes.
func (f *Fabric) HaloExchange(bytesPerFace int64, faces int, n int) (time.Duration, error) {
	if faces <= 0 {
		faces = 1
	}
	p2p, err := f.PointToPoint(bytesPerFace, n)
	if err != nil {
		return 0, err
	}
	// Neighbour faces proceed mostly in parallel; charge two serialized
	// rounds (send+receive) regardless of face count, plus wire time for
	// the extra faces sharing the NIC.
	extra := time.Duration(float64(bytesPerFace)*float64(faces-1)/f.Bandwidth) * time.Nanosecond
	_ = extra
	wireAll := time.Duration(float64(bytesPerFace) * float64(faces-1) / f.Bandwidth * 1e9)
	return 2*p2p + wireAll, nil
}

// STAGTable tracks RDMA memory registrations (Tofu STAGs / verbs MRs).
type STAGTable struct {
	next int
	live map[int]int64 // stag -> bytes
}

// NewSTAGTable returns an empty registration table.
func NewSTAGTable() *STAGTable {
	return &STAGTable{live: make(map[int]int64)}
}

// Register records a region and returns its STAG.
func (t *STAGTable) Register(bytes int64) (int, error) {
	if bytes <= 0 {
		return 0, fmt.Errorf("%w: register %d bytes", ErrBadTransfer, bytes)
	}
	t.next++
	t.live[t.next] = bytes
	return t.next, nil
}

// Deregister removes a registration.
func (t *STAGTable) Deregister(stag int) error {
	if _, ok := t.live[stag]; !ok {
		return fmt.Errorf("interconnect: unknown STAG %d", stag)
	}
	delete(t.live, stag)
	return nil
}

// Live returns the number of active registrations.
func (t *STAGTable) Live() int { return len(t.live) }
