package interconnect

import (
	"errors"
	"fmt"
	"time"
)

// TofuD's six-dimensional mesh/torus. A node address is (X, Y, Z, a, b, c):
// the X/Y/Z axes span the machine room and are tori; the a/b/c axes address
// the 2x3x2 = 12 nodes inside one pair of system boards, with a and c being
// meshes (size 2) and b a torus (size 3). Full Fugaku is (24, 23, 24) x
// (2, 3, 2) = 158,976 nodes, exactly the Table 1 count.

// TofuCoord is one node address.
type TofuCoord struct {
	X, Y, Z int
	A, B, C int
}

// TofuGeometry fixes the torus extents.
type TofuGeometry struct {
	X, Y, Z int
}

// Unit-cell extents.
const (
	tofuA = 2
	tofuB = 3
	tofuC = 2
)

// FugakuGeometry returns the full machine: 24 x 23 x 24 unit cells.
func FugakuGeometry() TofuGeometry { return TofuGeometry{X: 24, Y: 23, Z: 24} }

// Nodes returns the machine size.
func (g TofuGeometry) Nodes() int { return g.X * g.Y * g.Z * tofuA * tofuB * tofuC }

// Geometry errors.
var (
	ErrBadGeometry = errors.New("interconnect: invalid Tofu geometry")
	ErrBadNodeID   = errors.New("interconnect: node id out of range")
)

// Validate checks the extents.
func (g TofuGeometry) Validate() error {
	if g.X < 1 || g.Y < 1 || g.Z < 1 {
		return fmt.Errorf("%w: %dx%dx%d", ErrBadGeometry, g.X, g.Y, g.Z)
	}
	return nil
}

// CoordOf maps a linear node id to its address (a/b/c fastest, matching the
// physical packaging: 12 nodes share a board pair).
func (g TofuGeometry) CoordOf(id int) (TofuCoord, error) {
	if err := g.Validate(); err != nil {
		return TofuCoord{}, err
	}
	if id < 0 || id >= g.Nodes() {
		return TofuCoord{}, fmt.Errorf("%w: %d of %d", ErrBadNodeID, id, g.Nodes())
	}
	c := TofuCoord{}
	c.A = id % tofuA
	id /= tofuA
	c.B = id % tofuB
	id /= tofuB
	c.C = id % tofuC
	id /= tofuC
	c.X = id % g.X
	id /= g.X
	c.Y = id % g.Y
	id /= g.Y
	c.Z = id
	return c, nil
}

// IDOf is the inverse of CoordOf.
func (g TofuGeometry) IDOf(c TofuCoord) (int, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if c.X < 0 || c.X >= g.X || c.Y < 0 || c.Y >= g.Y || c.Z < 0 || c.Z >= g.Z ||
		c.A < 0 || c.A >= tofuA || c.B < 0 || c.B >= tofuB || c.C < 0 || c.C >= tofuC {
		return 0, fmt.Errorf("%w: %+v", ErrBadNodeID, c)
	}
	id := c.Z
	id = id*g.Y + c.Y
	id = id*g.X + c.X
	id = id*tofuC + c.C
	id = id*tofuB + c.B
	id = id*tofuA + c.A
	return id, nil
}

// torusDist is the shortest distance on a ring of size n.
func torusDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if wrap := n - d; wrap < d {
		return wrap
	}
	return d
}

// meshDist is the distance on a line.
func meshDist(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// Hops returns the dimension-ordered routing distance between two nodes:
// torus distance on X/Y/Z and b, mesh distance on a and c.
func (g TofuGeometry) Hops(p, q TofuCoord) int {
	return torusDist(p.X, q.X, g.X) +
		torusDist(p.Y, q.Y, g.Y) +
		torusDist(p.Z, q.Z, g.Z) +
		meshDist(p.A, q.A) +
		torusDist(p.B, q.B, tofuB) +
		meshDist(p.C, q.C)
}

// MinHops returns the minimum routing distance between two distinct nodes:
// one hop. Together with Fabric.MinLatency it anchors the conservative
// lookahead — even board-pair neighbours (same X/Y/Z, adjacent a/b/c) are at
// least one link apart, so no modeled Tofu transfer undercuts
// InjectLatency + MinHops*PerHop... of which MinLatency alone is the safe
// fabric-agnostic bound.
func (g TofuGeometry) MinHops() int { return 1 }

// HopLatency returns the dimension-ordered point-to-point latency between
// two linear node ids for a payload of bytes: injection, the exact routed
// hop count (not the statistical mean Fabric.Hops uses), and wire time.
// Full-machine sharded runs use it to give each node's traffic its real
// topology-dependent latency while the paper's closed-form models keep the
// averaged view.
func (g TofuGeometry) HopLatency(f *Fabric, a, b int, bytes int64) (time.Duration, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("%w: %d bytes", ErrBadTransfer, bytes)
	}
	hops, err := g.HopsByID(a, b)
	if err != nil {
		return 0, err
	}
	wire := time.Duration(float64(bytes) / f.Bandwidth * 1e9)
	return f.InjectLatency + time.Duration(hops)*f.PerHop + wire, nil
}

// HopsByID routes between linear node ids.
func (g TofuGeometry) HopsByID(a, b int) (int, error) {
	pa, err := g.CoordOf(a)
	if err != nil {
		return 0, err
	}
	pb, err := g.CoordOf(b)
	if err != nil {
		return 0, err
	}
	return g.Hops(pa, pb), nil
}

// Diameter returns the maximum shortest-path distance in the machine.
func (g TofuGeometry) Diameter() int {
	return g.X/2 + g.Y/2 + g.Z/2 + (tofuA - 1) + tofuB/2 + (tofuC - 1)
}

// MeanHops estimates the average distance between random nodes in a compact
// job allocation of n nodes (contiguous linear ids, the scheduler's default
// packing). It samples a deterministic stride of pairs — exact enumeration
// is quadratic and unnecessary for a latency model.
func (g TofuGeometry) MeanHops(n int) (float64, error) {
	if n < 1 || n > g.Nodes() {
		return 0, fmt.Errorf("%w: job of %d on %d nodes", ErrBadNodeID, n, g.Nodes())
	}
	if n == 1 {
		return 0, nil
	}
	const samples = 512
	total, count := 0, 0
	for i := 0; i < samples; i++ {
		a := (i * 2654435761) % n // Fibonacci hashing for a uniform spread
		b := ((i+1)*40503*65537 + 17) % n
		if a == b {
			continue
		}
		h, err := g.HopsByID(a, b)
		if err != nil {
			return 0, err
		}
		total += h
		count++
	}
	if count == 0 {
		return 0, nil
	}
	return float64(total) / float64(count), nil
}

// RackNodes is the node count of one Fugaku rack (8 shelves x 3 board
// pairs... operationally 384 nodes/rack; 24 racks = 9,216, the paper's
// McKernel evaluation slice).
const RackNodes = 384
