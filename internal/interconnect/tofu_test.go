package interconnect

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestFugakuGeometryNodeCount(t *testing.T) {
	g := FugakuGeometry()
	if g.Nodes() != 158976 {
		t.Fatalf("Fugaku nodes = %d, want 158,976 (Table 1)", g.Nodes())
	}
	if 24*RackNodes != 9216 {
		t.Fatalf("24 racks = %d, want 9,216 (Sec. 6.3)", 24*RackNodes)
	}
}

func TestCoordRoundTrip(t *testing.T) {
	g := TofuGeometry{X: 4, Y: 3, Z: 2}
	for id := 0; id < g.Nodes(); id++ {
		c, err := g.CoordOf(id)
		if err != nil {
			t.Fatal(err)
		}
		back, err := g.IDOf(c)
		if err != nil {
			t.Fatal(err)
		}
		if back != id {
			t.Fatalf("roundtrip %d -> %+v -> %d", id, c, back)
		}
	}
}

func TestQuickCoordRoundTripFugaku(t *testing.T) {
	g := FugakuGeometry()
	f := func(raw uint32) bool {
		id := int(raw) % g.Nodes()
		c, err := g.CoordOf(id)
		if err != nil {
			return false
		}
		back, err := g.IDOf(c)
		return err == nil && back == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCoordValidation(t *testing.T) {
	g := TofuGeometry{X: 2, Y: 2, Z: 2}
	if _, err := g.CoordOf(-1); !errors.Is(err, ErrBadNodeID) {
		t.Fatalf("err = %v", err)
	}
	if _, err := g.CoordOf(g.Nodes()); !errors.Is(err, ErrBadNodeID) {
		t.Fatalf("err = %v", err)
	}
	if _, err := g.IDOf(TofuCoord{X: 2}); !errors.Is(err, ErrBadNodeID) {
		t.Fatalf("err = %v", err)
	}
	bad := TofuGeometry{}
	if _, err := bad.CoordOf(0); !errors.Is(err, ErrBadGeometry) {
		t.Fatalf("err = %v", err)
	}
	if err := FugakuGeometry().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHopsProperties(t *testing.T) {
	g := TofuGeometry{X: 6, Y: 5, Z: 4}
	a, _ := g.CoordOf(17)
	b, _ := g.CoordOf(911)
	c, _ := g.CoordOf(333)
	// Identity, symmetry, triangle inequality.
	if g.Hops(a, a) != 0 {
		t.Fatal("self distance must be 0")
	}
	if g.Hops(a, b) != g.Hops(b, a) {
		t.Fatal("distance not symmetric")
	}
	if g.Hops(a, c) > g.Hops(a, b)+g.Hops(b, c) {
		t.Fatal("triangle inequality violated")
	}
}

func TestQuickHopsMetric(t *testing.T) {
	g := TofuGeometry{X: 8, Y: 7, Z: 6}
	n := g.Nodes()
	f := func(ra, rb, rc uint32) bool {
		a, _ := g.CoordOf(int(ra) % n)
		b, _ := g.CoordOf(int(rb) % n)
		c, _ := g.CoordOf(int(rc) % n)
		dAB, dBA := g.Hops(a, b), g.Hops(b, a)
		if dAB != dBA {
			return false
		}
		if g.Hops(a, a) != 0 {
			return false
		}
		if g.Hops(a, c) > dAB+g.Hops(b, c) {
			return false
		}
		return dAB <= g.Diameter()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestTorusWraparound(t *testing.T) {
	g := TofuGeometry{X: 10, Y: 3, Z: 3}
	a := TofuCoord{X: 0}
	b := TofuCoord{X: 9}
	// Wraparound: 0 -> 9 is one hop on a ring of 10, not nine.
	if got := g.Hops(a, b); got != 1 {
		t.Fatalf("torus X distance = %d, want 1", got)
	}
	// The a axis (size 2) is a mesh: distance 1 either way.
	if got := g.Hops(TofuCoord{A: 0}, TofuCoord{A: 1}); got != 1 {
		t.Fatalf("mesh a distance = %d", got)
	}
	// The b axis (size 3) is a torus: 0 -> 2 is one hop.
	if got := g.Hops(TofuCoord{B: 0}, TofuCoord{B: 2}); got != 1 {
		t.Fatalf("torus b distance = %d, want 1", got)
	}
}

func TestDiameter(t *testing.T) {
	g := FugakuGeometry()
	// 24/2 + 23/2 + 24/2 + 1 + 1 + 1 = 12+11+12+3 = 38.
	diam := g.Diameter()
	if diam != 38 {
		t.Fatalf("Fugaku diameter = %d, want 38", diam)
	}
	// No pair can exceed it (spot check across the machine).
	for _, pair := range [][2]int{{0, 158975}, {123, 90000}, {50000, 150000}} {
		h, err := g.HopsByID(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if h > diam {
			t.Fatalf("pair %v distance %d exceeds diameter", pair, h)
		}
	}
}

func TestMeanHopsGrowsWithJobSize(t *testing.T) {
	g := FugakuGeometry()
	prev := -1.0
	for _, n := range []int{12, 384, 9216, 158976} {
		m, err := g.MeanHops(n)
		if err != nil {
			t.Fatal(err)
		}
		if m < 0 {
			t.Fatalf("negative mean hops at %d", n)
		}
		if m <= prev && n > 12 {
			t.Fatalf("mean hops not growing: %v at %d (prev %v)", m, n, prev)
		}
		prev = m
	}
	if _, err := g.MeanHops(0); err == nil {
		t.Fatal("zero-node job must fail")
	}
	if _, err := g.MeanHops(1 << 30); err == nil {
		t.Fatal("oversized job must fail")
	}
	if m, _ := g.MeanHops(1); m != 0 {
		t.Fatal("single-node job has no hops")
	}
}

// TestMeanHopsConsistentWithApproximation cross-checks the coordinate-exact
// model against the Fabric's closed-form n^(1/6) approximation used by the
// latency model: same order of magnitude across the sweep.
func TestMeanHopsConsistentWithApproximation(t *testing.T) {
	g := FugakuGeometry()
	f := TofuD()
	for _, n := range []int{384, 9216, 158976} {
		exact, err := g.MeanHops(n)
		if err != nil {
			t.Fatal(err)
		}
		approx := float64(f.Hops(n))
		ratio := approx / exact
		if ratio < 0.3 || ratio > 3.5 {
			t.Fatalf("n=%d: approximation %v vs exact %v (ratio %.2f)", n, approx, exact, ratio)
		}
	}
}
