package interconnect

import (
	"testing"
	"time"
)

func TestHopsScaling(t *testing.T) {
	tofu, opa := TofuD(), OmniPath()
	if tofu.Hops(1) != 0 || opa.Hops(1) != 0 {
		t.Fatal("single node must be 0 hops")
	}
	// Hops must be monotone in node count.
	for _, f := range []*Fabric{tofu, opa} {
		prev := 0
		for _, n := range []int{2, 64, 1024, 8192, 158976} {
			h := f.Hops(n)
			if h < prev {
				t.Fatalf("%s: hops not monotone at %d", f.Name, n)
			}
			prev = h
		}
	}
	// A 6-D torus at Fugaku scale stays shallow.
	if tofu.Hops(158976) > 20 {
		t.Fatalf("TofuD diameter %d too deep", tofu.Hops(158976))
	}
}

func TestPointToPoint(t *testing.T) {
	f := TofuD()
	lat0, err := f.PointToPoint(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lat0 <= 0 {
		t.Fatal("zero-byte message still has latency")
	}
	lat1M, _ := f.PointToPoint(1<<20, 2)
	if lat1M <= lat0 {
		t.Fatal("bandwidth term missing")
	}
	if _, err := f.PointToPoint(-1, 2); err == nil {
		t.Fatal("negative bytes must fail")
	}
}

func TestBarrierScaling(t *testing.T) {
	tofu, opa := TofuD(), OmniPath()
	if tofu.Barrier(1) != 0 {
		t.Fatal("single-node barrier must be free")
	}
	if tofu.Barrier(8192) <= tofu.Barrier(2) {
		t.Fatal("barrier must grow with nodes")
	}
	// Hardware collectives make Tofu barriers much cheaper than OPA's.
	if tofu.Barrier(8192) >= opa.Barrier(8192) {
		t.Fatalf("Tofu HW barrier %v must beat OPA software %v",
			tofu.Barrier(8192), opa.Barrier(8192))
	}
}

func TestAllreduce(t *testing.T) {
	f := OmniPath()
	if d, _ := f.Allreduce(8, 1); d != 0 {
		t.Fatal("single-node allreduce must be free")
	}
	small, err := f.Allreduce(8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	big, _ := f.Allreduce(64<<20, 1024)
	if big <= small {
		t.Fatal("large allreduce must cost more")
	}
	// Latency-bound region scales with log(n).
	d1k, _ := f.Allreduce(8, 1024)
	d8k, _ := f.Allreduce(8, 8192)
	if d8k <= d1k {
		t.Fatal("allreduce must grow with node count")
	}
	if _, err := f.Allreduce(-1, 4); err == nil {
		t.Fatal("negative bytes must fail")
	}
	// Tiny payloads on Tofu ride the barrier network.
	tofu := TofuD()
	tiny, _ := tofu.Allreduce(8, 8192)
	opaTiny, _ := f.Allreduce(8, 8192)
	if tiny >= opaTiny {
		t.Fatalf("Tofu tiny allreduce %v must beat OPA %v", tiny, opaTiny)
	}
}

func TestHaloExchange(t *testing.T) {
	f := TofuD()
	one, err := f.HaloExchange(64<<10, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	six, _ := f.HaloExchange(64<<10, 6, 64)
	if six <= one {
		t.Fatal("more faces must cost more NIC time")
	}
	if _, err := f.HaloExchange(-5, 6, 64); err == nil {
		t.Fatal("negative bytes must fail")
	}
	// Zero faces is repaired to one.
	z, _ := f.HaloExchange(64<<10, 0, 64)
	if z != one {
		t.Fatal("0 faces must behave like 1")
	}
}

func TestSTAGTable(t *testing.T) {
	tbl := NewSTAGTable()
	s1, err := tbl.Register(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := tbl.Register(2 << 20)
	if s1 == s2 {
		t.Fatal("STAGs must be unique")
	}
	if tbl.Live() != 2 {
		t.Fatalf("live = %d", tbl.Live())
	}
	if err := tbl.Deregister(s1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Deregister(s1); err == nil {
		t.Fatal("double deregister must fail")
	}
	if _, err := tbl.Register(0); err == nil {
		t.Fatal("zero-byte registration must fail")
	}
	if tbl.Live() != 1 {
		t.Fatalf("live = %d", tbl.Live())
	}
}

func TestFabricLatencyRegimes(t *testing.T) {
	// Sanity: microsecond-class small messages on both fabrics.
	for _, f := range []*Fabric{TofuD(), OmniPath()} {
		p2p, _ := f.PointToPoint(8, 2)
		if p2p > 10*time.Microsecond || p2p < 100*time.Nanosecond {
			t.Fatalf("%s small message latency %v implausible", f.Name, p2p)
		}
	}
}
