package cluster

import (
	"testing"

	"mkos/internal/bsp"
)

func TestPlatformPresetsMatchTable1(t *testing.T) {
	ofp := OFP()
	if ofp.MaxNodes != 8192 {
		t.Fatalf("OFP nodes = %d, want 8,192 (Table 1)", ofp.MaxNodes)
	}
	if ofp.Fabric.Name != "Omni-Path" {
		t.Fatalf("OFP fabric = %s", ofp.Fabric.Name)
	}
	if ofp.MemBytes != 112<<30 {
		t.Fatalf("OFP memory = %d, want 96+16 GiB", ofp.MemBytes)
	}
	fugaku := Fugaku()
	if fugaku.MaxNodes != 158976 {
		t.Fatalf("Fugaku nodes = %d, want 158,976 (Table 1)", fugaku.MaxNodes)
	}
	if fugaku.Fabric.Name != "TofuD" {
		t.Fatalf("Fugaku fabric = %s", fugaku.Fabric.Name)
	}
	if fugaku.MemBytes != 32<<30 {
		t.Fatalf("Fugaku memory = %d, want 32 GiB HBM2", fugaku.MemBytes)
	}
}

func TestNewNodeLinux(t *testing.T) {
	for _, p := range []*Platform{OFP(), Fugaku()} {
		n, err := p.NewNode(Linux)
		if err != nil {
			t.Fatal(err)
		}
		if n.Kind != Linux || n.Host == nil || n.LWK != nil || n.IHK != nil {
			t.Fatalf("%s Linux node malformed", p.Name)
		}
		if n.OS() == nil {
			t.Fatal("nil OS model")
		}
		if len(n.AppCores()) == 0 {
			t.Fatal("no app cores")
		}
	}
}

func TestNewNodeMcKernel(t *testing.T) {
	for _, p := range []*Platform{OFP(), Fugaku()} {
		n, err := p.NewNode(McKernel)
		if err != nil {
			t.Fatal(err)
		}
		if n.LWK == nil || n.IHK == nil {
			t.Fatalf("%s McKernel node missing LWK/IHK", p.Name)
		}
		if !n.IHK.Booted() {
			t.Fatal("IHK partition not booted")
		}
		// The LWK gets all application cores.
		if len(n.AppCores()) != len(n.Host.Topo.AppCores()) {
			t.Fatalf("LWK cores = %d, want all app cores", len(n.AppCores()))
		}
		// Memory was detached from Linux.
		if n.IHK.ReservedMemoryBytes() == 0 {
			t.Fatal("no memory reserved for the LWK")
		}
	}
}

func TestGeometryValidation(t *testing.T) {
	fugaku := Fugaku()
	// 4 ranks x 12 threads = 48 threads on 48 app cores: fits exactly.
	if err := fugaku.Validate(bsp.Geometry{RanksPerNode: 4, ThreadsPerRank: 12}); err != nil {
		t.Fatal(err)
	}
	// 49 threads does not fit.
	if err := fugaku.Validate(bsp.Geometry{RanksPerNode: 7, ThreadsPerRank: 7}); err == nil {
		t.Fatal("49 threads must not fit 48 cores")
	}
	if err := fugaku.Validate(bsp.Geometry{RanksPerNode: 0, ThreadsPerRank: 1}); err == nil {
		t.Fatal("zero ranks must be rejected")
	}
	// OFP has 256 app HW threads (64 cores x 4 SMT): 4x32 LQCD fits.
	ofp := OFP()
	if err := ofp.Validate(bsp.Geometry{RanksPerNode: 4, ThreadsPerRank: 32}); err != nil {
		t.Fatal(err)
	}
	if err := ofp.Validate(bsp.Geometry{RanksPerNode: 16, ThreadsPerRank: 17}); err == nil {
		t.Fatal("272 threads must not fit 256 app threads")
	}
}

func TestBindRanksFugaku(t *testing.T) {
	// Fugaku's canonical geometry: one rank per CMG (Sec. 4.1.4).
	bindings, err := Fugaku().BindRanks(bsp.Geometry{RanksPerNode: 4, ThreadsPerRank: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 4 {
		t.Fatalf("bindings = %d", len(bindings))
	}
	seenNUMA := map[int]bool{}
	for _, b := range bindings {
		if len(b.Cores) != 12 {
			t.Fatalf("rank %d got %d cores, want 12", b.Rank, len(b.Cores))
		}
		if seenNUMA[b.NUMA] {
			t.Fatalf("two ranks share CMG %d", b.NUMA)
		}
		seenNUMA[b.NUMA] = true
	}
	if len(seenNUMA) != 4 {
		t.Fatal("ranks must cover all four CMGs")
	}
}

func TestBindRanksNoOverlap(t *testing.T) {
	// Two ranks per CMG on Fugaku (8 x 6).
	bindings, err := Fugaku().BindRanks(bsp.Geometry{RanksPerNode: 8, ThreadsPerRank: 6})
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]int{}
	for _, b := range bindings {
		for _, c := range b.Cores {
			if prev, ok := used[c]; ok {
				t.Fatalf("core %d assigned to ranks %d and %d", c, prev, b.Rank)
			}
			used[c] = b.Rank
		}
	}
}

func TestBindRanksSMT(t *testing.T) {
	// OFP: 4 ranks x 32 threads on 4-way SMT cores: 8 cores per rank.
	bindings, err := OFP().BindRanks(bsp.Geometry{RanksPerNode: 4, ThreadsPerRank: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bindings {
		if len(b.Cores) != 8 {
			t.Fatalf("rank %d got %d cores, want 8 (32 threads / 4 SMT)", b.Rank, len(b.Cores))
		}
	}
}

func TestBindRanksOverflow(t *testing.T) {
	// 4 ranks x 12 threads needs 12 cores per rank per CMG; 8 ranks x 12
	// threads would need 24 cores per CMG — impossible.
	if _, err := Fugaku().BindRanks(bsp.Geometry{RanksPerNode: 8, ThreadsPerRank: 12}); err == nil {
		t.Fatal("overcommitted binding must fail")
	}
}

func TestMachineAssembly(t *testing.T) {
	m, node, err := Fugaku().Machine(McKernel, bsp.Geometry{RanksPerNode: 4, ThreadsPerRank: 12})
	if err != nil {
		t.Fatal(err)
	}
	if node == nil || m.OS == nil || m.Fabric == nil {
		t.Fatal("machine incomplete")
	}
	if m.OS.Name() != "fugaku-mckernel" {
		t.Fatalf("OS = %s", m.OS.Name())
	}
	if m.RanksPerNode != 4 || m.ThreadsPerRank != 12 {
		t.Fatal("geometry not propagated")
	}
	if _, _, err := Fugaku().Machine(Linux, bsp.Geometry{RanksPerNode: 100, ThreadsPerRank: 100}); err == nil {
		t.Fatal("invalid geometry must fail Machine()")
	}
}

func TestClampNodes(t *testing.T) {
	p := OFP()
	if p.ClampNodes(10000) != 8192 {
		t.Fatal("clamp high")
	}
	if p.ClampNodes(0) != 1 {
		t.Fatal("clamp low")
	}
	if p.ClampNodes(512) != 512 {
		t.Fatal("clamp identity")
	}
}

func TestOSKindString(t *testing.T) {
	if Linux.String() != "linux" || McKernel.String() != "mckernel" {
		t.Fatal("OSKind strings wrong")
	}
}

func TestHeterogeneousFugakuNodes(t *testing.T) {
	p := Fugaku()
	// Node 0 is an I/O-leader: 52 cores, 4 assistant (Sec. 3.2).
	leader, err := p.NewNodeAt(0, Linux)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(leader.Host.Topo.AssistantCores()); got != 4 {
		t.Fatalf("leader assistant cores = %d, want 4", got)
	}
	if got := leader.Host.Topo.NumCores(); got != 52 {
		t.Fatalf("leader cores = %d, want 52", got)
	}
	// Ordinary node: 50 cores, 2 assistant.
	plain, err := p.NewNodeAt(7, Linux)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plain.Host.Topo.AssistantCores()); got != 2 {
		t.Fatalf("plain assistant cores = %d, want 2", got)
	}
	// Both variants expose the same 48 application cores.
	if len(leader.AppCores()) != 48 || len(plain.AppCores()) != 48 {
		t.Fatal("both variants must offer 48 app cores")
	}
	// Default NewNode is an ordinary node.
	def, err := p.NewNode(Linux)
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Host.Topo.AssistantCores()) != 2 {
		t.Fatal("default node must be the common 50-core variant")
	}
	// McKernel boots on both variants.
	if _, err := p.NewNodeAt(0, McKernel); err != nil {
		t.Fatal(err)
	}
	// OFP is homogeneous: TopologyAt nil, NewNodeAt still works.
	if _, err := OFP().NewNodeAt(5, Linux); err != nil {
		t.Fatal(err)
	}
}
