package cluster

import (
	"errors"
	"fmt"
	"time"

	"mkos/internal/bsp"
	"mkos/internal/fault"
	"mkos/internal/ihk"
	"mkos/internal/mckernel"
	"mkos/internal/sim"
	"mkos/internal/telemetry"
)

// This file wires failure recovery into the batch system: the operational
// reality of Sec. 5 that the performance models alone cannot express. At
// pre-exascale scale McKernel instances panic and hang, prologue scripts
// fail to reserve IHK resources, and LWK memory exhaustion is fatal (no
// demand paging). Fugaku's TCS integration detects dead LWKs and falls back
// to Linux; this is that machinery, driven by the deterministic fault
// injector and the discrete-event engine.

// RecoveryPolicy configures how the scheduler reacts to detected failures.
type RecoveryPolicy struct {
	// MaxRetries bounds re-runs per job; past it the job fails terminally.
	MaxRetries int
	// BackoffBase and BackoffCap shape the capped exponential backoff
	// between a detected failure and the next attempt.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BlacklistAfter is how many failures a node may cause before it is
	// taken out of service. 0 disables blacklisting.
	BlacklistAfter int
	// LinuxFallback enables graceful degradation: a job whose LWK boot
	// fails — or that has suffered FallbackAfter LWK runtime faults — is
	// re-run on native Linux with the slower noise profile.
	LinuxFallback bool
	// FallbackAfter is the LWK runtime-failure count that triggers the
	// Linux fallback (boot failures fall back immediately).
	FallbackAfter int
	// Watchdog is the heartbeat/timeout detector.
	Watchdog fault.Watchdog
}

// DefaultRecoveryPolicy returns production-flavored settings.
func DefaultRecoveryPolicy() RecoveryPolicy {
	return RecoveryPolicy{
		MaxRetries:     5,
		BackoffBase:    2 * time.Second,
		BackoffCap:     30 * time.Second,
		BlacklistAfter: 2,
		LinuxFallback:  true,
		FallbackAfter:  2,
		Watchdog:       fault.DefaultWatchdog(),
	}
}

// Validate rejects unusable policies.
func (p RecoveryPolicy) Validate() error {
	if p.MaxRetries < 0 {
		return fmt.Errorf("cluster: negative MaxRetries %d", p.MaxRetries)
	}
	if p.BackoffBase < 0 || p.BackoffCap < p.BackoffBase {
		return fmt.Errorf("cluster: backoff base %v cap %v", p.BackoffBase, p.BackoffCap)
	}
	return p.Watchdog.Validate()
}

// Backoff returns the wait before re-running after the retry-th failure
// (0-based): base doubled per retry, capped.
func (p RecoveryPolicy) Backoff(retry int) time.Duration {
	d := p.BackoffBase
	for i := 0; i < retry; i++ {
		d *= 2
		if d >= p.BackoffCap {
			return p.BackoffCap
		}
	}
	if d > p.BackoffCap {
		return p.BackoffCap
	}
	return d
}

// Recovery errors.
var (
	ErrRetriesExhausted  = errors.New("cluster: job failed after exhausting retries")
	ErrInsufficientNodes = errors.New("cluster: not enough healthy nodes")
	// errInjectedReservation marks the injector-forced prologue failure; it
	// surfaces wrapped in the real ihk error chain.
	errInjectedReservation = errors.New("cluster: injected IHK reservation failure")
)

// ResilientScheduler is a JobScheduler with failure detection and recovery:
// jobs run on the shared discrete-event clock, faults strike per the
// injector's schedule, a heartbeat-fed watchdog detects them, and the policy
// decides between LWK reboot + retry, node blacklisting, and Linux fallback.
type ResilientScheduler struct {
	*JobScheduler
	Injector *fault.Injector
	Policy   RecoveryPolicy
	Engine   *sim.Engine
	Report   *fault.FailureReport

	nodeFailures map[int]int
	blacklisted  map[int]bool
}

// NewResilientScheduler builds the fault-aware batch system.
func NewResilientScheduler(p *Platform, inj *fault.Injector, pol RecoveryPolicy) (*ResilientScheduler, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	if inj == nil {
		inj = fault.NewInjector(fault.Rates{}, 0)
	}
	eng := sim.NewEngine()
	// Every event the recovery machinery schedules lands in the shared
	// profiler: per-handler counts, queue-depth high-water mark.
	telemetry.AttachEngine(eng)
	return &ResilientScheduler{
		JobScheduler: NewJobScheduler(p),
		Injector:     inj,
		Policy:       pol,
		Engine:       eng,
		Report:       &fault.FailureReport{Seed: inj.Seed()},
		nodeFailures: make(map[int]int),
		blacklisted:  make(map[int]bool),
	}, nil
}

// Blacklisted reports whether a node has been taken out of service.
func (rs *ResilientScheduler) Blacklisted(node int) bool { return rs.blacklisted[node] }

// assignNodes picks the job's nodes: the lowest-numbered healthy indices.
// Deterministic — no map iteration; the blacklist is consulted per index.
func (rs *ResilientScheduler) assignNodes(n int) ([]int, bool) {
	out := make([]int, 0, n)
	for idx := 0; idx < rs.Platform.MaxNodes && len(out) < n; idx++ {
		if !rs.blacklisted[idx] {
			out = append(out, idx)
		}
	}
	if len(out) < n {
		return nil, false
	}
	return out, true
}

// noteNodeFailure counts a failure against a node and blacklists it past the
// policy threshold.
func (rs *ResilientScheduler) noteNodeFailure(node int) {
	rs.nodeFailures[node]++
	if rs.Policy.BlacklistAfter > 0 && rs.nodeFailures[node] >= rs.Policy.BlacklistAfter && !rs.blacklisted[node] {
		rs.blacklisted[node] = true
		rs.Report.Blacklist(node)
		telemetry.C("cluster.nodes.blacklisted").Inc()
		telemetry.Instant("cluster", "blacklist", node, 0, rs.Engine.Now())
	}
}

// buildMachine boots one representative node (with fallible IHK hooks) and
// wraps it in the bsp machine description, mirroring Platform.Machine.
func (rs *ResilientScheduler) buildMachine(kind OSKind, g bsp.Geometry, hooks ihk.Hooks) (bsp.Machine, *Node, error) {
	node, err := rs.Platform.NewNodeAtWithHooks(1, kind, hooks)
	if err != nil {
		return bsp.Machine{}, nil, err
	}
	return bsp.Machine{
		OS:             node.OS(),
		Fabric:         rs.Platform.Fabric,
		Cores:          node.AppCores(),
		RanksPerNode:   g.RanksPerNode,
		ThreadsPerRank: g.ThreadsPerRank,
	}, node, nil
}

// Submit runs a job under fault injection. It returns when the job has
// either completed (possibly after retries and OS fallback) or failed
// terminally; either way the job is recorded in Completed()/Failed() and the
// experiment's Report is updated.
func (rs *ResilientScheduler) Submit(w bsp.Workload, g bsp.Geometry, nodes int, os OSKind, seed int64) (*Job, error) {
	rs.nextID++
	job := &Job{
		ID: rs.nextID, Workload: w, Geometry: g, Nodes: nodes, OS: os,
		StopPMUReads: true, Seed: seed, State: JobQueued,
	}
	rs.Report.Jobs++
	telemetry.C("cluster.jobs.submitted").Inc()
	if nodes < 1 || nodes > rs.Platform.MaxNodes {
		return job, rs.fail(job, fmt.Errorf("%w: %d > %d", ErrTooManyNodes, nodes, rs.Platform.MaxNodes))
	}
	if err := rs.Platform.Validate(g); err != nil {
		return job, rs.fail(job, fmt.Errorf("%w: %v", ErrJobGeometry, err))
	}

	rs.Engine.Schedule(0, fmt.Sprintf("job%d-start", job.ID), func(*sim.Engine) {
		rs.runAttempt(job, os, seed, 0, 0)
	})
	//simlint:allow ctxflow — Submit is a deterministic run-to-completion replay: the engine drains synchronously on the caller's goroutine, and cancellation (when wanted) is the engine cancel hook, not a ctx
	runErr := rs.Engine.Run()
	rs.Report.Makespan = rs.Engine.Now().Duration()
	if runErr != nil {
		// Interrupted (cancel hook or event budget) with events still
		// queued: the job's outcome is undecided, surface the interrupt.
		return job, runErr
	}
	if job.State == JobFailed {
		return job, job.Err
	}
	return job, nil
}

// fail overrides the base helper only to keep the report in sync.
func (rs *ResilientScheduler) fail(job *Job, err error) error {
	rs.Report.Failed++
	return rs.JobScheduler.fail(job, err)
}

// attempt is the in-flight state of one execution of a job.
type attempt struct {
	job         *Job
	os          OSKind
	seed        int64
	n           int // attempt index, 0-based
	lwkFailures int

	start   sim.Time // attempt start (prologue begins here)
	runAt   sim.Time // run start (prologue done)
	nodeIDs []int
	node    *Node

	complete  *sim.Event
	watchdog  *sim.Timer
	heartbeat *sim.Ticker

	dead     bool
	detected bool
	theFault fault.Fault
	faultAt  sim.Time
	faultErr error
}

// runAttempt schedules one execution of the job at the current instant.
func (rs *ResilientScheduler) runAttempt(job *Job, os OSKind, seed int64, n, lwkFailures int) {
	e := rs.Engine
	job.Attempts = n + 1
	job.OS = os
	job.State = JobRunning
	telemetry.C("cluster.attempts").Inc()
	a := &attempt{job: job, os: os, seed: seed, n: n, lwkFailures: lwkFailures, start: e.Now()}

	nodeIDs, ok := rs.assignNodes(job.Nodes)
	if !ok {
		_ = rs.fail(job, fmt.Errorf("%w: need %d, blacklist holds %d of %d",
			ErrInsufficientNodes, job.Nodes, len(rs.Report.BlacklistedNodes), rs.Platform.MaxNodes))
		return
	}
	a.nodeIDs = nodeIDs

	// Prologue: booting the LWK costs real time — on every attempt for
	// script-based integration, and on re-runs everywhere (the "LWK reboot"
	// recovery action re-executes the prologue with its boot cost).
	var prologue time.Duration
	if os == McKernel && (rs.Integration == PrologueEpilogue || n > 0) {
		prologue = prologueBootCost
	}

	// Prologue-time IHK reservation failures are decided before boot and
	// surfaced through the real ihk hook chain below.
	var prologueFailed []int
	if os == McKernel {
		prologueFailed = rs.Injector.Prologue(job.ID, n, nodeIDs)
	}
	hooks := ihk.Hooks{}
	if len(prologueFailed) > 0 {
		victim := prologueFailed[0]
		hooks.BeforeReserveMemory = func(int64) error {
			return fmt.Errorf("%w: node %d", errInjectedReservation, victim)
		}
	}

	machine, node, err := rs.buildMachine(os, job.Geometry, hooks)
	if len(prologueFailed) > 0 {
		// The prologue script fails after burning its boot time.
		job.Overhead += prologue
		e.Schedule(prologue, fmt.Sprintf("job%d-a%d-prologue-fail", job.ID, n), func(*sim.Engine) {
			rs.onPrologueFailure(a, prologueFailed, err)
		})
		return
	}
	if err != nil {
		// Model error, not an injected fault: terminal.
		_ = rs.fail(job, err)
		return
	}
	a.node = node
	job.Overhead += prologue

	res, err := bsp.Run(job.Workload, machine, job.Nodes, seed+int64(n))
	if err != nil {
		_ = rs.fail(job, err)
		return
	}

	faults := rs.Injector.Runtime(job.ID, n, nodeIDs, os == McKernel, res.Runtime)
	a.runAt = a.start.Add(prologue)
	name := fmt.Sprintf("job%d-a%d", job.ID, n)

	// Completion event: cancelled if a fault strikes first.
	a.complete = e.ScheduleAt(a.runAt.Add(res.Runtime), name+"-complete", func(*sim.Engine) {
		rs.onComplete(a, res)
	})

	// Detection machinery: a watchdog timer fed by the job's heartbeat.
	// Fail-stop faults are noticed at the next sweep; fail-silent ones only
	// when the feeding stops and the timer expires.
	wd := rs.Policy.Watchdog
	a.watchdog = e.AfterFunc(sim.Duration(a.runAt.Sub(e.Now()))+wd.Timeout, name+"-watchdog", func(*sim.Engine) {
		rs.onDetect(a)
	})
	a.heartbeat = e.Every(a.runAt.Add(wd.Interval), wd.Interval, name+"-heartbeat", func(e *sim.Engine) {
		if !a.dead {
			a.watchdog.Reset(wd.Timeout)
			return
		}
		if a.theFault.Kind.FailStop() && !a.detected {
			// The sweep sees the death notification / console panic.
			rs.onDetect(a)
		}
	})

	// Only the earliest fault fires; the job is dead from then on.
	if len(faults) > 0 {
		f := faults[0]
		e.ScheduleAt(a.runAt.Add(f.At), fmt.Sprintf("%s-%s@n%d", name, f.Kind, f.Node), func(*sim.Engine) {
			rs.onFault(a, f)
		})
	}
}

// attemptSpan puts one attempt's lifetime on the shared timeline: pid is the
// attempt's first node, the span runs from prologue start to the instant the
// outcome was known (completion, or detection for dead attempts).
func (rs *ResilientScheduler) attemptSpan(a *attempt, outcome string) {
	if !telemetry.TraceEnabled() {
		return
	}
	pid := 0
	if len(a.nodeIDs) > 0 {
		pid = a.nodeIDs[0]
	}
	now := rs.Engine.Now()
	telemetry.Span("cluster", fmt.Sprintf("job%d/a%d", a.job.ID, a.n), pid, 0,
		a.start, sim.Duration(now.Sub(a.start)),
		telemetry.Arg{Key: "outcome", Val: outcome},
		telemetry.Arg{Key: "os", Val: a.os.String()})
}

// onFault marks the attempt dead and pokes the matching kernel surfaces so
// the recorded error chains are the real ones.
func (rs *ResilientScheduler) onFault(a *attempt, f fault.Fault) {
	e := rs.Engine
	a.dead = true
	a.theFault = f
	a.faultAt = e.Now()
	rs.Report.AddFault(f.Kind)
	telemetry.Instant("cluster", "fault:"+f.Kind.String(), f.Node, 0, e.Now())
	e.Cancel(a.complete)

	switch f.Kind {
	case fault.LWKPanic:
		if a.node != nil && a.node.LWK != nil {
			a.faultErr = a.node.LWK.Panic(fmt.Sprintf("injected panic on node %d", f.Node))
		}
	case fault.LWKOOM:
		if a.node != nil && a.node.LWK != nil {
			lwk := a.node.LWK
			lwk.LWKMem.AllocHook = func(int64) error {
				return fmt.Errorf("no demand paging: allocation is fatal: %w", mckernel.ErrLWKOutOfMemory)
			}
			_, err := lwk.LWKMem.Alloc(1)
			lwk.LWKMem.AllocHook = nil
			a.faultErr = lwk.Panic(fmt.Sprintf("OOM on node %d: %v", f.Node, err))
		}
	case fault.IKCTimeout:
		a.faultErr = fmt.Errorf("cluster: IKC message lost on node %d: delegated syscall never returned", f.Node)
	case fault.LWKHang:
		a.faultErr = fmt.Errorf("cluster: LWK hang on node %d", f.Node)
	case fault.NodeCrash:
		a.faultErr = fmt.Errorf("cluster: node %d crashed", f.Node)
	}
	// Fail-silent faults are now waiting on the watchdog; fail-stop ones on
	// the next heartbeat sweep.
}

// onPrologueFailure handles an IHK reservation failing in the prologue
// script: detection is synchronous (the script exits non-zero), the wasted
// time is the boot cost, and graceful degradation applies immediately — a
// job whose LWK boot fails re-runs on native Linux.
func (rs *ResilientScheduler) onPrologueFailure(a *attempt, failedNodes []int, bootErr error) {
	for range failedNodes {
		rs.Report.AddFault(fault.IHKReserveFail)
	}
	rs.Report.AddDetection(0)
	rs.Report.AddWaste(a.job.Nodes, prologueBootCost)
	for _, nd := range failedNodes {
		rs.noteNodeFailure(nd)
	}
	a.faultErr = bootErr
	if a.faultErr == nil {
		a.faultErr = errInjectedReservation
	}
	nextOS := a.os
	fellBack := false
	if rs.Policy.LinuxFallback {
		nextOS = Linux
		fellBack = true
	}
	rs.retry(a, nextOS, a.lwkFailures+1, fellBack)
}

// onDetect fires when the monitor learns the attempt is dead: watchdog
// expiry for fail-silent faults, heartbeat sweep for fail-stop ones.
func (rs *ResilientScheduler) onDetect(a *attempt) {
	if a.detected || !a.dead {
		// A watchdog expiry racing a completed attempt cannot happen (the
		// completion handler stops the timer), but guard double detection.
		return
	}
	a.detected = true
	e := rs.Engine
	a.heartbeat.Stop()
	a.watchdog.Stop()
	rs.Report.AddDetection(e.Now().Sub(a.faultAt))
	rs.Report.AddWaste(a.job.Nodes, e.Now().Sub(a.start))
	rs.attemptSpan(a, "fault:"+a.theFault.Kind.String())
	rs.noteNodeFailure(a.theFault.Node)

	lwkFailures := a.lwkFailures
	if a.theFault.Kind.LWKOnly() {
		lwkFailures++
	}
	nextOS := a.os
	fellBack := false
	if rs.Policy.LinuxFallback && a.os == McKernel && lwkFailures >= rs.Policy.FallbackAfter {
		nextOS = Linux
		fellBack = true
	}
	rs.retry(a, nextOS, lwkFailures, fellBack)
}

// retry schedules the next attempt after backoff, or fails the job
// terminally when the budget is gone.
func (rs *ResilientScheduler) retry(a *attempt, nextOS OSKind, lwkFailures int, fellBack bool) {
	job := a.job
	if a.n+1 > rs.Policy.MaxRetries {
		_ = rs.fail(job, fmt.Errorf("%w: %d attempts, last fault: %v",
			ErrRetriesExhausted, a.n+1, a.faultErr))
		return
	}
	if fellBack {
		job.FellBack = true
		telemetry.C("cluster.fallbacks").Inc()
	}
	rs.Report.Retries++
	telemetry.C("cluster.retries").Inc()
	backoff := rs.Policy.Backoff(a.n)
	rs.Engine.Schedule(backoff, fmt.Sprintf("job%d-retry%d", job.ID, a.n+1), func(*sim.Engine) {
		rs.runAttempt(job, nextOS, a.seed, a.n+1, lwkFailures)
	})
}

// onComplete finishes a healthy attempt.
func (rs *ResilientScheduler) onComplete(a *attempt, res bsp.Result) {
	a.heartbeat.Stop()
	a.watchdog.Stop()
	rs.attemptSpan(a, "completed")
	job := a.job
	if a.os == McKernel && rs.Integration == PrologueEpilogue {
		job.Overhead += epilogueCost
	}
	job.Result = res
	job.State = JobCompleted
	job.Err = nil
	rs.completed = append(rs.completed, job)
	rs.Report.Completed++
	telemetry.C("cluster.jobs.completed").Inc()
	if job.FellBack {
		rs.Report.Fallbacks++
	}
}
