package cluster

import (
	"fmt"
	"time"

	"mkos/internal/apps"
)

// MachineFWQ assembles the sharded full-machine FWQ campaign configuration
// (apps.FWQMachine) for this platform: one booted OS model per node class,
// the class map, the conservative lookahead from the fabric's minimum
// latency, and the digest-report latency — routed Tofu hop latency when the
// platform has a torus geometry covering the run, uniform point-to-point
// otherwise. Zero work/duration select the paper's FWQ parameters.
//
// The caller may still adjust the returned config (shrink per-class core
// lists for cheaper runs, attach Cancel/Observer) before handing it to
// apps.FWQMachine; none of those knobs affect determinism except the core
// lists, which are part of the experiment definition.
func (p *Platform) MachineFWQ(kind OSKind, nodes int, work, duration time.Duration, seed int64, shards, worstK int) (apps.FWQMachineConfig, error) {
	var cfg apps.FWQMachineConfig
	nodes = p.ClampNodes(nodes)
	if work <= 0 {
		work = apps.DefaultFWQ(nil).Work
	}
	if duration <= 0 {
		duration = apps.DefaultFWQ(nil).Duration
	}

	classOf := p.NodeClass
	nClasses := p.NodeClasses
	if classOf == nil || nClasses <= 0 {
		classOf = func(int) int { return 0 }
		nClasses = 1
	}
	// Find one representative node index per class actually present in
	// [0, nodes), then compact the class ids: a 1-node Fugaku run contains
	// only the I/O-leader class.
	reps := make([]int, nClasses)
	for i := range reps {
		reps[i] = -1
	}
	found := 0
	for idx := 0; idx < nodes && found < nClasses; idx++ {
		c := classOf(idx)
		if c < 0 || c >= nClasses {
			return cfg, fmt.Errorf("cluster: node %d maps to class %d of %d", idx, c, nClasses)
		}
		if reps[c] == -1 {
			reps[c] = idx
			found++
		}
	}
	remap := make([]int, nClasses)
	classes := make([]apps.FWQClass, 0, found)
	for c, idx := range reps {
		remap[c] = -1
		if idx == -1 {
			continue
		}
		node, err := p.NewNodeAt(idx, kind)
		if err != nil {
			return cfg, fmt.Errorf("cluster: booting class-%d representative (node %d): %w", c, idx, err)
		}
		remap[c] = len(classes)
		classes = append(classes, apps.FWQClass{
			Cores:   node.AppCores(),
			Profile: node.OS().NoiseProfile(),
		})
	}

	var report func(src, dst int, bytes int64) (time.Duration, error)
	if p.Tofu != nil && nodes <= p.Tofu.Nodes() {
		geo, fab := *p.Tofu, p.Fabric
		report = func(src, dst int, bytes int64) (time.Duration, error) {
			return geo.HopLatency(fab, src, dst, bytes)
		}
	} else {
		fab, n := p.Fabric, nodes
		report = func(_, _ int, bytes int64) (time.Duration, error) {
			return fab.PointToPoint(bytes, n)
		}
	}

	return apps.FWQMachineConfig{
		Work: work, Duration: duration,
		Nodes: nodes, Seed: seed, Shards: shards, WorstK: worstK,
		Lookahead:     p.Fabric.MinLatency(),
		Classes:       classes,
		ClassOf:       func(n int) int { return remap[classOf(n)] },
		ReportLatency: report,
	}, nil
}
