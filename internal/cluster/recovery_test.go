package cluster

import (
	"errors"
	"testing"
	"time"

	"mkos/internal/bsp"
	"mkos/internal/fault"
)

func recoveryWorkload() bsp.Workload {
	return bsp.Workload{
		Name: "recovery-test", Scaling: bsp.StrongScaling, RefNodes: 8,
		Steps: 10, StepCompute: 2 * time.Millisecond,
		WorkingSetPerRank: 64 << 20, MemAccessPeriod: 100 * time.Nanosecond,
	}
}

func newRS(t *testing.T, rates fault.Rates, pol RecoveryPolicy, seed int64) *ResilientScheduler {
	t.Helper()
	rs, err := NewResilientScheduler(Fugaku(), fault.NewInjector(rates, seed), pol)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

var testGeometry = bsp.Geometry{RanksPerNode: 4, ThreadsPerRank: 12}

func TestResilientNoFaultsMatchesPlainSubmit(t *testing.T) {
	rs := newRS(t, fault.Rates{}, DefaultRecoveryPolicy(), 1)
	job, err := rs.Submit(recoveryWorkload(), testGeometry, 8, McKernel, 7)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobCompleted || job.Attempts != 1 || job.FellBack {
		t.Fatalf("state=%s attempts=%d fellback=%v", job.State, job.Attempts, job.FellBack)
	}
	if rs.Report.TotalInjected() != 0 || rs.Report.Retries != 0 || rs.Report.WastedNodeSeconds != 0 {
		t.Fatalf("clean run dirtied the report:\n%s", rs.Report)
	}
	// Same workload/seed through the plain scheduler gives the same result.
	js := NewJobScheduler(Fugaku())
	plain, err := js.Submit(recoveryWorkload(), testGeometry, 8, McKernel, 7)
	if err != nil {
		t.Fatal(err)
	}
	if job.Result.Runtime != plain.Result.Runtime {
		t.Fatalf("resilient %v vs plain %v", job.Result.Runtime, plain.Result.Runtime)
	}
}

func TestGracefulDegradationToLinux(t *testing.T) {
	pol := DefaultRecoveryPolicy()
	pol.FallbackAfter = 2
	// Every McKernel attempt OOMs (fatal: no demand paging). The job must
	// complete anyway, via retry and then the Linux fallback.
	rs := newRS(t, fault.Rates{LWKOOMProb: 1}, pol, 3)
	job, err := rs.Submit(recoveryWorkload(), testGeometry, 8, McKernel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobCompleted {
		t.Fatalf("state = %s, err = %v", job.State, job.Err)
	}
	if !job.FellBack || job.OS != Linux {
		t.Fatalf("job must complete on Linux after LWK failures: fellback=%v os=%s", job.FellBack, job.OS)
	}
	if job.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (2 OOM + 1 Linux)", job.Attempts)
	}
	if rs.Report.Completed != 1 || rs.Report.Fallbacks != 1 || rs.Report.Retries != 2 {
		t.Fatalf("report wrong:\n%s", rs.Report)
	}
	if rs.Report.Injected[fault.LWKOOM] != 2 {
		t.Fatalf("injected OOMs = %d", rs.Report.Injected[fault.LWKOOM])
	}
	if rs.Report.WastedNodeSeconds <= 0 {
		t.Fatal("failed attempts must waste node-seconds")
	}
	if len(rs.Completed()) != 1 || len(rs.Failed()) != 0 {
		t.Fatal("job lists wrong")
	}
}

func TestRetriesExhausted(t *testing.T) {
	pol := DefaultRecoveryPolicy()
	pol.LinuxFallback = false
	pol.MaxRetries = 2
	rs := newRS(t, fault.Rates{LWKOOMProb: 1}, pol, 5)
	job, err := rs.Submit(recoveryWorkload(), testGeometry, 8, McKernel, 1)
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if job.State != JobFailed {
		t.Fatalf("state = %s", job.State)
	}
	if job.Attempts != 3 {
		t.Fatalf("attempts = %d, want MaxRetries+1", job.Attempts)
	}
	if len(rs.Failed()) != 1 || rs.Report.Failed != 1 {
		t.Fatal("terminal failure not recorded")
	}
}

func TestPrologueReservationFailureFallsBack(t *testing.T) {
	rs := newRS(t, fault.Rates{IHKReserveFailProb: 1}, DefaultRecoveryPolicy(), 9)
	job, err := rs.Submit(recoveryWorkload(), testGeometry, 8, McKernel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobCompleted || !job.FellBack || job.OS != Linux {
		t.Fatalf("boot failure must degrade to Linux: state=%s fellback=%v os=%s",
			job.State, job.FellBack, job.OS)
	}
	if job.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", job.Attempts)
	}
	// Every node's prologue reservation failed.
	if rs.Report.Injected[fault.IHKReserveFail] != 8 {
		t.Fatalf("injected reserve failures = %d", rs.Report.Injected[fault.IHKReserveFail])
	}
	// The prologue boot time was burned on all 8 nodes.
	if rs.Report.WastedNodeSeconds != 8*prologueBootCost.Seconds() {
		t.Fatalf("wasted = %v, want %v", rs.Report.WastedNodeSeconds, 8*prologueBootCost.Seconds())
	}
}

func TestBlacklistingRemovesRepeatOffenders(t *testing.T) {
	pol := DefaultRecoveryPolicy()
	pol.BlacklistAfter = 1
	pol.MaxRetries = 6
	rs := newRS(t, fault.Rates{LWKPanicPerHour: 200000}, pol, 12)
	job, _ := rs.Submit(recoveryWorkload(), testGeometry, 8, McKernel, 1)
	if rs.Report.TotalInjected() == 0 {
		t.Fatal("panic rate of 2e5/node-hour must inject something")
	}
	if len(rs.Report.BlacklistedNodes) == 0 {
		t.Fatal("BlacklistAfter=1 with injected faults must blacklist nodes")
	}
	for _, n := range rs.Report.BlacklistedNodes {
		if !rs.Blacklisted(n) {
			t.Fatalf("report lists node %d but scheduler does not blacklist it", n)
		}
	}
	// Blacklisted nodes are not assigned again.
	ids, ok := rs.assignNodes(8)
	if !ok {
		t.Fatal("pool exhausted")
	}
	for _, id := range ids {
		if rs.Blacklisted(id) {
			t.Fatalf("assigned blacklisted node %d", id)
		}
	}
	_ = job
}

func TestFailSilentDetectionSlowerThanFailStop(t *testing.T) {
	pol := DefaultRecoveryPolicy()
	// Fail-stop: OOM panics are seen at the next heartbeat sweep.
	stop := newRS(t, fault.Rates{LWKOOMProb: 1}, pol, 21)
	if _, err := stop.Submit(recoveryWorkload(), testGeometry, 8, McKernel, 1); err != nil {
		t.Fatal(err)
	}
	// Fail-silent: a lost IKC message is only caught by the watchdog.
	silent := newRS(t, fault.Rates{IKCTimeoutProb: 1}, pol, 21)
	if _, err := silent.Submit(recoveryWorkload(), testGeometry, 8, McKernel, 1); err != nil {
		t.Fatal(err)
	}
	a, b := stop.Report.MeanDetectionLatency(), silent.Report.MeanDetectionLatency()
	if a <= 0 || b <= 0 {
		t.Fatalf("latencies must be positive: %v %v", a, b)
	}
	if b <= a {
		t.Fatalf("fail-silent detection (%v) must be slower than fail-stop (%v)", b, a)
	}
	if b < pol.Watchdog.Timeout-pol.Watchdog.Interval {
		t.Fatalf("fail-silent latency %v implausibly below timeout window", b)
	}
}

func TestPlainSubmitFailuresLandInFailed(t *testing.T) {
	js := NewJobScheduler(Fugaku())
	if _, err := js.Submit(recoveryWorkload(), testGeometry, 200000, Linux, 1); err == nil {
		t.Fatal("oversized job must fail")
	}
	if _, err := js.Submit(recoveryWorkload(), bsp.Geometry{RanksPerNode: 99, ThreadsPerRank: 99}, 4, Linux, 1); err == nil {
		t.Fatal("bad geometry must fail")
	}
	if len(js.Failed()) != 2 {
		t.Fatalf("Failed() holds %d jobs, want 2", len(js.Failed()))
	}
	for _, j := range js.Failed() {
		if j.State != JobFailed || j.Err == nil {
			t.Fatalf("failed job %d malformed: state=%s err=%v", j.ID, j.State, j.Err)
		}
	}
	if len(js.Completed()) != 0 {
		t.Fatal("no job completed")
	}
}

func TestBackoffCappedExponential(t *testing.T) {
	p := RecoveryPolicy{BackoffBase: time.Second, BackoffCap: 10 * time.Second}
	want := []time.Duration{1, 2, 4, 8, 10, 10, 10}
	for i, w := range want {
		if got := p.Backoff(i); got != w*time.Second {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w*time.Second)
		}
	}
}

func TestRecoveryPolicyValidation(t *testing.T) {
	if err := DefaultRecoveryPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultRecoveryPolicy()
	bad.MaxRetries = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative retries must be rejected")
	}
	bad = DefaultRecoveryPolicy()
	bad.BackoffCap = bad.BackoffBase / 2
	if err := bad.Validate(); err == nil {
		t.Fatal("cap below base must be rejected")
	}
	bad = DefaultRecoveryPolicy()
	bad.Watchdog.Timeout = bad.Watchdog.Interval
	if err := bad.Validate(); err == nil {
		t.Fatal("bad watchdog must be rejected")
	}
}

// TestFailureReportDeterminism is the regression test for the tentpole's
// core guarantee: the same seed produces a byte-identical FailureReport —
// any accidental dependence on map iteration order or wall-clock time in
// the injector, scheduler or report rendering breaks this.
func TestFailureReportDeterminism(t *testing.T) {
	run := func() string {
		rates := fault.Rates{
			NodeCrashPerHour: 20000, LWKPanicPerHour: 60000, LWKHangPerHour: 30000,
			IHKReserveFailProb: 0.2, IKCTimeoutProb: 0.15, LWKOOMProb: 0.15,
		}
		pol := DefaultRecoveryPolicy()
		pol.MaxRetries = 4
		rs := newRS(t, rates, pol, 20211114)
		for i := 0; i < 4; i++ {
			_, _ = rs.Submit(recoveryWorkload(), testGeometry, 8, McKernel, int64(100+i))
		}
		return rs.Report.String()
	}
	first := run()
	second := run()
	if first != second {
		t.Fatalf("reports differ between identical runs:\n--- first\n%s--- second\n%s", first, second)
	}
	if (&fault.FailureReport{}).String() == first {
		t.Fatal("report is empty; experiment injected nothing")
	}
}
