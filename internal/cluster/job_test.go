package cluster

import (
	"errors"
	"testing"
	"time"

	"mkos/internal/bsp"
)

func jobWorkload() bsp.Workload {
	return bsp.Workload{
		Name: "job-test", Scaling: bsp.StrongScaling, RefNodes: 64,
		Steps: 20, StepCompute: 5 * time.Millisecond,
		WorkingSetPerRank: 256 << 20, MemAccessPeriod: 100 * time.Nanosecond,
	}
}

func TestJobSchedulerIntegrationStyles(t *testing.T) {
	if NewJobScheduler(OFP()).Integration != PrologueEpilogue {
		t.Fatal("OFP uses prologue/epilogue scripts (Sec. 5.1)")
	}
	if NewJobScheduler(Fugaku()).Integration != TCSIntegrated {
		t.Fatal("Fugaku uses tight TCS integration (Sec. 5.1)")
	}
	if PrologueEpilogue.String() == "" || TCSIntegrated.String() == "" {
		t.Fatal("empty integration names")
	}
}

func TestJobLifecycle(t *testing.T) {
	js := NewJobScheduler(Fugaku())
	g := bsp.Geometry{RanksPerNode: 4, ThreadsPerRank: 12}
	job, err := js.Submit(jobWorkload(), g, 64, Linux, 1)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobCompleted {
		t.Fatalf("state = %s", job.State)
	}
	if job.Result.Runtime <= 0 {
		t.Fatal("no runtime recorded")
	}
	if job.ID != 1 {
		t.Fatalf("ID = %d", job.ID)
	}
	if len(js.Completed()) != 1 {
		t.Fatal("completed list wrong")
	}
	// Second job gets a fresh ID.
	job2, err := js.Submit(jobWorkload(), g, 64, McKernel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if job2.ID != 2 {
		t.Fatalf("second ID = %d", job2.ID)
	}
}

func TestJobValidationFailures(t *testing.T) {
	js := NewJobScheduler(Fugaku())
	g := bsp.Geometry{RanksPerNode: 4, ThreadsPerRank: 12}
	job, err := js.Submit(jobWorkload(), g, 200000, Linux, 1)
	if !errors.Is(err, ErrTooManyNodes) {
		t.Fatalf("err = %v", err)
	}
	if job.State != JobFailed {
		t.Fatalf("state = %s", job.State)
	}
	if _, err := js.Submit(jobWorkload(), bsp.Geometry{RanksPerNode: 100, ThreadsPerRank: 100}, 4, Linux, 1); !errors.Is(err, ErrJobGeometry) {
		t.Fatalf("geometry err = %v", err)
	}
	if _, err := js.Submit(jobWorkload(), g, 0, Linux, 1); err == nil {
		t.Fatal("zero nodes must fail")
	}
}

func TestJobPrologueOverheadOnOFPOnly(t *testing.T) {
	g := bsp.Geometry{RanksPerNode: 16, ThreadsPerRank: 16}
	ofp := NewJobScheduler(OFP())
	mckJob, err := ofp.Submit(jobWorkload(), g, 16, McKernel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mckJob.Overhead <= 0 {
		t.Fatal("OFP McKernel jobs must pay prologue/epilogue boot scripts")
	}
	linJob, err := ofp.Submit(jobWorkload(), g, 16, Linux, 1)
	if err != nil {
		t.Fatal(err)
	}
	if linJob.Overhead != 0 {
		t.Fatal("Linux jobs have no LWK boot overhead")
	}
	fugaku := NewJobScheduler(Fugaku())
	tcsJob, err := fugaku.Submit(jobWorkload(), bsp.Geometry{RanksPerNode: 4, ThreadsPerRank: 12}, 16, McKernel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tcsJob.Overhead != 0 {
		t.Fatal("TCS-integrated McKernel boot is not per-job script overhead")
	}
}

func TestJobPMUReadsToggle(t *testing.T) {
	js := NewJobScheduler(Fugaku())
	g := bsp.Geometry{RanksPerNode: 4, ThreadsPerRank: 12}
	w := jobWorkload()
	w.Steps = 100
	quiet, err := js.Submit(w, g, 64, Linux, 5)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := js.SubmitWithPMUReads(w, g, 64, Linux, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !quiet.StopPMUReads || noisy.StopPMUReads {
		t.Fatal("PMU flags wrong")
	}
	// Leaving the automatic PMU collection on must add noise (Sec. 4.2.1).
	if noisy.Result.Breakdown.Noise <= quiet.Result.Breakdown.Noise {
		t.Fatalf("PMU reads on: noise %v must exceed stopped %v",
			noisy.Result.Breakdown.Noise, quiet.Result.Breakdown.Noise)
	}
}

func TestJobStateStrings(t *testing.T) {
	for s, want := range map[JobState]string{
		JobQueued: "queued", JobRunning: "running",
		JobCompleted: "completed", JobFailed: "failed",
	} {
		if s.String() != want {
			t.Fatalf("%d = %s", s, s.String())
		}
	}
}
