package cluster

import (
	"errors"
	"fmt"
	"time"

	"mkos/internal/bsp"
	"mkos/internal/telemetry"
)

// Integration is how IHK/McKernel hooks into the platform's batch system
// (Sec. 5.1): on OFP booting the LWK "entails nothing more than calling a
// few privileged mode scripts in the prologue and epilogue of a particular
// job"; on Fugaku there is a much tighter integration with the Fujitsu TCS
// scheduler (hardware barrier setup, process placement, MPI interaction).
type Integration int

const (
	// PrologueEpilogue boots/tears down the LWK per job via scripts (OFP).
	PrologueEpilogue Integration = iota
	// TCSIntegrated keeps the multi-kernel managed by the job scheduler
	// itself (Fugaku).
	TCSIntegrated
)

func (i Integration) String() string {
	if i == TCSIntegrated {
		return "tcs-integrated"
	}
	return "prologue-epilogue"
}

// JobState tracks a submission's lifecycle.
type JobState int

const (
	JobQueued JobState = iota
	JobRunning
	JobCompleted
	JobFailed
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobCompleted:
		return "completed"
	default:
		return "failed"
	}
}

// Job is one batch submission.
type Job struct {
	ID       int
	Workload bsp.Workload
	Geometry bsp.Geometry
	Nodes    int
	OS       OSKind
	// StopPMUReads requests the per-job TCS command of Sec. 4.2.1 that
	// disables automatic PMU counter collection (and its IPI noise).
	StopPMUReads bool
	Seed         int64

	State  JobState
	Result bsp.Result
	Err    error
	// Overhead is scheduler-side time: prologue/epilogue LWK boot for
	// script-based integration, near zero under TCS integration. Under
	// fault injection every re-run prologue adds here.
	Overhead time.Duration

	// Attempts counts executions including the first (set by the resilient
	// submission path; plain Submit leaves it at 1 semantics implicitly).
	Attempts int
	// FellBack reports the graceful-degradation path: the job's LWK failed
	// and it was re-run on native Linux with the slower noise profile.
	FellBack bool
}

// JobScheduler models the platform batch system with multi-kernel support.
type JobScheduler struct {
	Platform    *Platform
	Integration Integration

	nextID    int
	completed []*Job
	failed    []*Job
}

// Boot-script costs for the prologue/epilogue path: reserving resources,
// loading IHK modules, booting McKernel, and the reverse on epilogue.
const (
	prologueBootCost = 8 * time.Second
	epilogueCost     = 3 * time.Second
)

// NewJobScheduler builds the batch system for a platform with its native
// integration style.
func NewJobScheduler(p *Platform) *JobScheduler {
	integ := PrologueEpilogue
	if p.Name == "fugaku" {
		integ = TCSIntegrated
	}
	return &JobScheduler{Platform: p, Integration: integ}
}

// Job-system errors.
var (
	ErrTooManyNodes = errors.New("cluster: job exceeds machine size")
	ErrJobGeometry  = errors.New("cluster: job geometry does not fit the node")
)

// fail lands a job in the failed list with its terminal error; every path
// that produces JobFailed must come through here so Failed() sees it.
func (js *JobScheduler) fail(job *Job, err error) error {
	job.State = JobFailed
	job.Err = err
	js.failed = append(js.failed, job)
	telemetry.C("cluster.jobs.failed").Inc()
	return err
}

// Submit validates, runs and completes a job synchronously (the simulation
// has no queueing delay model; the paper's measurements also ran on
// dedicated reservations).
func (js *JobScheduler) Submit(w bsp.Workload, g bsp.Geometry, nodes int, os OSKind, seed int64) (*Job, error) {
	js.nextID++
	job := &Job{
		ID: js.nextID, Workload: w, Geometry: g, Nodes: nodes, OS: os,
		StopPMUReads: true, Seed: seed, State: JobQueued, Attempts: 1,
	}
	telemetry.C("cluster.jobs.submitted").Inc()
	if nodes < 1 || nodes > js.Platform.MaxNodes {
		return job, js.fail(job, fmt.Errorf("%w: %d > %d", ErrTooManyNodes, nodes, js.Platform.MaxNodes))
	}
	if err := js.Platform.Validate(g); err != nil {
		return job, js.fail(job, fmt.Errorf("%w: %v", ErrJobGeometry, err))
	}

	machine, _, err := js.Platform.Machine(os, g)
	if err != nil {
		return job, js.fail(job, err)
	}

	if os == McKernel && js.Integration == PrologueEpilogue {
		job.Overhead = prologueBootCost + epilogueCost
	}

	job.State = JobRunning
	res, err := bsp.Run(w, machine, nodes, seed)
	if err != nil {
		return job, js.fail(job, err)
	}
	job.Result = res
	job.State = JobCompleted
	js.completed = append(js.completed, job)
	telemetry.C("cluster.jobs.completed").Inc()
	return job, nil
}

// SubmitWithPMUReads runs a job with the automatic TCS PMU collection left
// on — the configuration the paper's countermeasure command exists to avoid.
func (js *JobScheduler) SubmitWithPMUReads(w bsp.Workload, g bsp.Geometry, nodes int, os OSKind, seed int64) (*Job, error) {
	js.nextID++
	job := &Job{
		ID: js.nextID, Workload: w, Geometry: g, Nodes: nodes, OS: os,
		StopPMUReads: false, Seed: seed, State: JobQueued, Attempts: 1,
	}
	telemetry.C("cluster.jobs.submitted").Inc()
	if err := js.Platform.Validate(g); err != nil {
		return job, js.fail(job, err)
	}
	clone := *js.Platform
	tune := clone.Tuning
	tune.Counter.StopPMUReads = false
	clone.Tuning = tune
	machine, _, err := clone.Machine(os, g)
	if err != nil {
		return job, js.fail(job, err)
	}
	job.State = JobRunning
	res, err := bsp.Run(w, machine, nodes, seed)
	if err != nil {
		return job, js.fail(job, err)
	}
	job.Result = res
	job.State = JobCompleted
	js.completed = append(js.completed, job)
	telemetry.C("cluster.jobs.completed").Inc()
	return job, nil
}

// Completed returns finished jobs in completion order.
func (js *JobScheduler) Completed() []*Job { return js.completed }

// Failed returns terminally failed jobs in failure order: submissions the
// validator rejected plus jobs whose retry budget the recovery machinery
// exhausted.
func (js *JobScheduler) Failed() []*Job { return js.failed }
