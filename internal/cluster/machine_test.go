package cluster

import (
	"encoding/json"
	"testing"
	"time"

	"mkos/internal/apps"
)

// machineCfg builds a small, fast Fugaku machine-FWQ config: short duration
// and two measured cores per class so the test runs in milliseconds while
// both node classes stay exercised.
func machineCfg(t *testing.T, p *Platform, nodes, shards int) apps.FWQMachineConfig {
	t.Helper()
	cfg, err := p.MachineFWQ(Linux, nodes, 6500*time.Microsecond, 300*time.Millisecond, 7, shards, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Classes {
		cfg.Classes[i].Cores = cfg.Classes[i].Cores[:2]
	}
	return cfg
}

func TestMachineFWQFugakuClasses(t *testing.T) {
	p := Fugaku()
	cfg, err := p.MachineFWQ(Linux, 32, 0, 0, 1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Work != 6500*time.Microsecond || cfg.Duration != 6*time.Minute {
		t.Errorf("zero work/duration did not select paper defaults: %v / %v", cfg.Work, cfg.Duration)
	}
	if cfg.Lookahead != p.Fabric.MinLatency() {
		t.Errorf("lookahead %v, want fabric MinLatency %v", cfg.Lookahead, p.Fabric.MinLatency())
	}
	if len(cfg.Classes) != 2 {
		t.Fatalf("32-node Fugaku run has %d classes, want 2", len(cfg.Classes))
	}
	// Node 0 is the 52-core I/O leader, node 1 the common 50-core node.
	// Both expose the same 48 application cores (4 CMGs x 12); the classes
	// differ in assistant-core count and hence in their noise profiles.
	lead, common := cfg.ClassOf(0), cfg.ClassOf(1)
	if lead == common {
		t.Fatal("I/O leader and common node share a class")
	}
	for _, c := range []int{lead, common} {
		if got := len(cfg.Classes[c].Cores); got != 48 {
			t.Errorf("class %d has %d app cores, want 48", c, got)
		}
	}
	if cfg.ClassOf(16) != lead || cfg.ClassOf(17) != common {
		t.Error("class map does not repeat with period 16")
	}
}

func TestMachineFWQCompactsAbsentClasses(t *testing.T) {
	// A 1-node Fugaku run contains only the I/O-leader class; the class
	// list must compact to it.
	cfg, err := Fugaku().MachineFWQ(Linux, 1, 0, 0, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Classes) != 1 {
		t.Fatalf("1-node run has %d classes, want 1", len(cfg.Classes))
	}
	if cfg.ClassOf(0) != 0 {
		t.Errorf("ClassOf(0) = %d, want 0 after compaction", cfg.ClassOf(0))
	}
	if got := len(cfg.Classes[0].Cores); got != 48 {
		t.Errorf("sole class has %d app cores, want 48", got)
	}
}

func TestMachineFWQReportLatencyRespectsLookahead(t *testing.T) {
	p := Fugaku()
	cfg, err := p.MachineFWQ(Linux, p.MaxNodes, 0, 0, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int{0, 1, 15, 4242, p.MaxNodes - 1} {
		d, err := cfg.ReportLatency(src, 0, 64)
		if err != nil {
			t.Fatalf("ReportLatency(%d, 0): %v", src, err)
		}
		if d < cfg.Lookahead {
			t.Errorf("ReportLatency(%d, 0) = %v undercuts lookahead %v", src, d, cfg.Lookahead)
		}
	}
	// OFP has no torus geometry: the uniform fallback must still respect
	// the lookahead bound.
	ofp := OFP()
	ocfg, err := ofp.MachineFWQ(Linux, 64, 0, 0, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ocfg.Classes) != 1 {
		t.Fatalf("OFP run has %d classes, want 1", len(ocfg.Classes))
	}
	d, err := ocfg.ReportLatency(63, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d < ocfg.Lookahead {
		t.Errorf("OFP fallback latency %v undercuts lookahead %v", d, ocfg.Lookahead)
	}
}

func TestMachineFWQByteIdenticalAcrossShards(t *testing.T) {
	p := Fugaku()
	var want []byte
	for _, shards := range []int{1, 4} {
		res, _, err := apps.FWQMachine(machineCfg(t, p, 48, shards))
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = blob
			continue
		}
		if string(blob) != string(want) {
			t.Errorf("%d shards: full-machine artifact differs from sequential", shards)
		}
	}
}
