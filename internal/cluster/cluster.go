// Package cluster assembles full platform models: the Oakforest-PACS and
// Fugaku presets of Table 1 (hardware topology, memory, fabric, Linux
// tuning), node construction for either OS (native Linux or IHK/McKernel
// booted on an IHK partition), and the NUMA-aware job-geometry logic of
// Sec. 4.1.4 (Fugaku's scheduler binds one MPI rank per CMG).
package cluster

import (
	"errors"
	"fmt"

	"mkos/internal/bsp"
	"mkos/internal/cpu"
	"mkos/internal/ihk"
	"mkos/internal/interconnect"
	"mkos/internal/linux"
	"mkos/internal/mckernel"
)

// OSKind selects the node operating system.
type OSKind int

const (
	// Linux runs the platform's native Linux environment.
	Linux OSKind = iota
	// McKernel runs IHK/McKernel beside the platform's Linux.
	McKernel
)

func (k OSKind) String() string {
	if k == McKernel {
		return "mckernel"
	}
	return "linux"
}

// Platform is a machine preset.
type Platform struct {
	Name     string
	MaxNodes int
	MemBytes int64
	Fabric   *interconnect.Fabric
	Tuning   linux.Tuning

	// NewTopology builds a fresh node topology (nodes own mutable state).
	NewTopology func() *cpu.Topology

	// TopologyAt builds the topology for a specific node index, letting a
	// platform model heterogeneous populations. On Fugaku "most compute
	// nodes are equipped with only 50 CPU cores" (2 assistant) while some
	// carry 52 (4 assistant) for extra system duties (Sec. 3.2 / Table 1).
	// Nil means every node uses NewTopology.
	TopologyAt func(idx int) *cpu.Topology

	// Tofu is the routed 6-D torus geometry for platforms wired with a Tofu
	// fabric; nil for platforms modeled by the uniform-hop Fabric alone.
	Tofu *interconnect.TofuGeometry

	// NodeClass partitions a heterogeneous node population into class ids
	// [0, NodeClasses) for machine-scale runs that boot one OS model per
	// class instead of one per node. It must agree with TopologyAt: nodes
	// of one class share a topology shape. Nil means a single class.
	NodeClass   func(idx int) int
	NodeClasses int

	// LWKReserveBytesPerDomain is how much memory IHK detaches per app NUMA
	// domain when booting McKernel.
	LWKReserveBytesPerDomain int64
}

// OFP returns the Oakforest-PACS preset: 8,192 KNL nodes, Omni-Path,
// moderately tuned CentOS 7 (Table 1).
func OFP() *Platform {
	return &Platform{
		Name:     "oakforest-pacs",
		MaxNodes: 8192,
		MemBytes: 112 << 30, // 96 GiB DDR4 + 16 GiB MCDRAM
		Fabric:   interconnect.OmniPath(),
		Tuning:   linux.OFPTuning(),
		NewTopology: func() *cpu.Topology {
			return cpu.KNL()
		},
		LWKReserveBytesPerDomain: 16 << 30,
	}
}

// Fugaku returns the Fugaku preset: 158,976 A64FX nodes, TofuD, highly tuned
// RHEL 8 (Table 1, Sec. 4).
func Fugaku() *Platform {
	return &Platform{
		Name:     "fugaku",
		MaxNodes: 158976,
		MemBytes: 32 << 30,
		Fabric:   interconnect.TofuD(),
		Tuning:   linux.FugakuTuning(),
		NewTopology: func() *cpu.Topology {
			return cpu.A64FX(2)
		},
		// One node in sixteen is a 52-core node (I/O-leader duty).
		TopologyAt: func(idx int) *cpu.Topology {
			if idx%16 == 0 {
				return cpu.A64FX(4)
			}
			return cpu.A64FX(2)
		},
		Tofu: &fugakuTofu,
		// Class 0: the common 50-core node; class 1: the 52-core I/O leader.
		NodeClass: func(idx int) int {
			if idx%16 == 0 {
				return 1
			}
			return 0
		},
		NodeClasses:              2,
		LWKReserveBytesPerDomain: 6 << 30,
	}
}

// fugakuTofu is the shared 24x23x24 (x2x3x2) TofuD geometry; TofuGeometry is
// immutable, so one value serves every Fugaku() platform.
var fugakuTofu = interconnect.FugakuGeometry()

// Node is one compute node with its OS stack booted.
type Node struct {
	Platform *Platform
	Kind     OSKind
	Host     *linux.Kernel
	IHK      *ihk.Manager       // nil on native Linux nodes
	LWK      *mckernel.Instance // nil on native Linux nodes
}

// OS returns the node's bsp cost model.
func (n *Node) OS() bsp.OS {
	if n.Kind == McKernel {
		return n.LWK
	}
	return n.Host
}

// AppCores returns the cores applications run on under this OS.
func (n *Node) AppCores() []int {
	if n.Kind == McKernel {
		return n.LWK.Part.Cores
	}
	return n.Host.AppCores()
}

// NewNode boots one node of the platform under the chosen OS. For McKernel
// the sequence mirrors deployment: boot Linux, load IHK, reserve all
// application cores plus a memory slice, boot the LWK.
func (p *Platform) NewNode(kind OSKind) (*Node, error) {
	return p.NewNodeAt(1, kind)
}

// NewNodeAt boots the node at a specific index, honoring heterogeneous
// populations (TopologyAt).
func (p *Platform) NewNodeAt(idx int, kind OSKind) (*Node, error) {
	return p.NewNodeAtWithHooks(idx, kind, ihk.Hooks{})
}

// NewNodeAtWithHooks boots a node with fallible IHK operations: the hooks
// run before each reserve/boot step, exactly where a production prologue
// script can fail (Sec. 5.1). The fault injector uses this to model IHK
// reservation failures; an empty Hooks value is the normal path.
func (p *Platform) NewNodeAtWithHooks(idx int, kind OSKind, hooks ihk.Hooks) (*Node, error) {
	topo := p.NewTopology
	if p.TopologyAt != nil {
		topoAt := p.TopologyAt
		topo = func() *cpu.Topology { return topoAt(idx) }
	}
	host, err := linux.NewKernel(topo(), p.Tuning, p.MemBytes)
	if err != nil {
		return nil, fmt.Errorf("cluster: booting Linux on %s: %w", p.Name, err)
	}
	node := &Node{Platform: p, Kind: kind, Host: host}
	if kind == Linux {
		return node, nil
	}
	mgr := ihk.NewManager(host)
	mgr.Hooks = hooks
	if err := mgr.ReserveCPUs(host.Topo.AppCores()); err != nil {
		return nil, fmt.Errorf("cluster: reserving cores: %w", err)
	}
	if err := mgr.ReserveMemory(p.LWKReserveBytesPerDomain); err != nil {
		return nil, fmt.Errorf("cluster: reserving memory: %w", err)
	}
	part, err := mgr.Boot()
	if err != nil {
		return nil, fmt.Errorf("cluster: booting partition: %w", err)
	}
	lwk, err := mckernel.Boot(host, part, mckernel.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("cluster: booting McKernel: %w", err)
	}
	node.IHK = mgr
	node.LWK = lwk
	return node, nil
}

// Validate checks the geometry fits the platform's application cores.
func (p *Platform) Validate(g bsp.Geometry) error {
	topo := p.NewTopology()
	appCores := len(topo.AppCores())
	appThreads := topo.AppThreads()
	if g.RanksPerNode < 1 || g.ThreadsPerRank < 1 {
		return fmt.Errorf("cluster: bad geometry %d x %d", g.RanksPerNode, g.ThreadsPerRank)
	}
	need := g.RanksPerNode * g.ThreadsPerRank
	if need > appThreads {
		return fmt.Errorf("cluster: geometry %dx%d needs %d HW threads, node has %d app threads (%d cores)",
			g.RanksPerNode, g.ThreadsPerRank, need, appThreads, appCores)
	}
	return nil
}

// Binding maps one rank to its cores.
type Binding struct {
	Rank  int
	NUMA  int
	Cores []int
}

// ErrGeometry reports an impossible rank layout.
var ErrGeometry = errors.New("cluster: geometry does not fit")

// BindRanks computes the NUMA-aware process binding Fugaku's job scheduler
// applies automatically (Sec. 4.1.4): ranks are distributed over application
// NUMA domains (CMGs) and each rank's threads get cores inside its domain.
func (p *Platform) BindRanks(g bsp.Geometry) ([]Binding, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	topo := p.NewTopology()
	domains := topo.AppNUMADomains
	if len(domains) == 0 {
		return nil, ErrGeometry
	}
	perDomain := (g.RanksPerNode + len(domains) - 1) / len(domains)
	var out []Binding
	for r := 0; r < g.RanksPerNode; r++ {
		d := domains[r/perDomain%len(domains)]
		cores := topo.CoresInNUMA(d)
		// Filter to app cores within the domain.
		var appCores []int
		for _, c := range cores {
			for i := range topo.Cores {
				if topo.Cores[i].ID == c && topo.Cores[i].Kind == cpu.AppCore {
					appCores = append(appCores, c)
				}
			}
		}
		if len(appCores) == 0 {
			return nil, fmt.Errorf("%w: domain %d has no app cores", ErrGeometry, d)
		}
		slot := r % perDomain
		threadsPerCore := topo.Cores[0].SMT
		coresNeeded := (g.ThreadsPerRank + threadsPerCore - 1) / threadsPerCore
		start := slot * coresNeeded
		if start+coresNeeded > len(appCores) {
			return nil, fmt.Errorf("%w: rank %d needs cores [%d,%d) in domain %d with %d app cores",
				ErrGeometry, r, start, start+coresNeeded, d, len(appCores))
		}
		out = append(out, Binding{Rank: r, NUMA: d, Cores: appCores[start : start+coresNeeded]})
	}
	return out, nil
}

// Machine builds the bsp.Machine for a job on this platform.
func (p *Platform) Machine(kind OSKind, g bsp.Geometry) (bsp.Machine, *Node, error) {
	if err := p.Validate(g); err != nil {
		return bsp.Machine{}, nil, err
	}
	node, err := p.NewNode(kind)
	if err != nil {
		return bsp.Machine{}, nil, err
	}
	return bsp.Machine{
		OS:             node.OS(),
		Fabric:         p.Fabric,
		Cores:          node.AppCores(),
		RanksPerNode:   g.RanksPerNode,
		ThreadsPerRank: g.ThreadsPerRank,
	}, node, nil
}

// ClampNodes limits a requested node count to the platform size.
func (p *Platform) ClampNodes(n int) int {
	if n > p.MaxNodes {
		return p.MaxNodes
	}
	if n < 1 {
		return 1
	}
	return n
}
