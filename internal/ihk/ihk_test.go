package ihk

import (
	"errors"
	"testing"

	"mkos/internal/cpu"
	"mkos/internal/linux"
)

func newHost(t *testing.T) *linux.Kernel {
	t.Helper()
	k, err := linux.NewKernel(cpu.A64FX(2), linux.FugakuTuning(), 32<<30)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestReserveCPUs(t *testing.T) {
	m := NewManager(newHost(t))
	app := m.Host.Topo.AppCores()
	if err := m.ReserveCPUs(app[:8]); err != nil {
		t.Fatal(err)
	}
	got := m.ReservedCPUs()
	if len(got) != 8 {
		t.Fatalf("reserved %d cores", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("ReservedCPUs not sorted")
		}
	}
	// Double reservation fails atomically.
	if err := m.ReserveCPUs(app[6:10]); !errors.Is(err, ErrCoreBusy) {
		t.Fatalf("err = %v, want ErrCoreBusy", err)
	}
	if len(m.ReservedCPUs()) != 8 {
		t.Fatal("failed reservation must not leak cores")
	}
}

func TestReserveAssistantCoreRejected(t *testing.T) {
	m := NewManager(newHost(t))
	assist := m.Host.Topo.AssistantCores()
	if err := m.ReserveCPUs(assist[:1]); !errors.Is(err, ErrCoreNotApp) {
		t.Fatalf("err = %v, want ErrCoreNotApp", err)
	}
}

func TestReleaseCPUs(t *testing.T) {
	m := NewManager(newHost(t))
	app := m.Host.Topo.AppCores()
	_ = m.ReserveCPUs(app[:4])
	if err := m.ReleaseCPUs(app[:4]); err != nil {
		t.Fatal(err)
	}
	if len(m.ReservedCPUs()) != 0 {
		t.Fatal("release did not clear reservation")
	}
	if err := m.ReleaseCPUs(app[:1]); !errors.Is(err, ErrNotReserved) {
		t.Fatalf("double release err = %v", err)
	}
	// Dynamic reconfiguration without reboot: reserve again immediately.
	if err := m.ReserveCPUs(app[:4]); err != nil {
		t.Fatal(err)
	}
}

func TestReserveMemory(t *testing.T) {
	m := NewManager(newHost(t))
	before := m.Host.Mem.FreeBytes()
	if err := m.ReserveMemory(1 << 30); err != nil {
		t.Fatal(err)
	}
	if m.ReservedMemoryBytes() != 4<<30 { // 1 GiB per app domain, 4 CMGs
		t.Fatalf("reserved = %d, want 4GiB", m.ReservedMemoryBytes())
	}
	if m.Host.Mem.FreeBytes() != before-(4<<30) {
		t.Fatal("reservation must come out of Linux's free memory")
	}
	if err := m.ReleaseMemory(); err != nil {
		t.Fatal(err)
	}
	if m.Host.Mem.FreeBytes() != before {
		t.Fatal("release must return every byte to Linux")
	}
	if err := m.ReserveMemory(0); err == nil {
		t.Fatal("zero reservation must fail")
	}
}

func TestReserveMemoryRollsBackOnFailure(t *testing.T) {
	m := NewManager(newHost(t))
	before := m.Host.Mem.FreeBytes()
	// Ask for more than a domain holds: must fail and leave nothing behind.
	if err := m.ReserveMemory(64 << 30); err == nil {
		t.Fatal("oversized reservation must fail")
	}
	if m.Host.Mem.FreeBytes() != before {
		t.Fatal("failed reservation leaked memory")
	}
}

func TestBootLifecycle(t *testing.T) {
	m := NewManager(newHost(t))
	if _, err := m.Boot(); !errors.Is(err, ErrNoResources) {
		t.Fatalf("boot without resources err = %v", err)
	}
	app := m.Host.Topo.AppCores()
	if err := m.ReserveCPUs(app); err != nil {
		t.Fatal(err)
	}
	if err := m.ReserveMemory(2 << 30); err != nil {
		t.Fatal(err)
	}
	part, err := m.Boot()
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Cores) != 48 {
		t.Fatalf("partition cores = %d", len(part.Cores))
	}
	if !m.Booted() {
		t.Fatal("Booted() = false after Boot")
	}
	if _, err := m.Boot(); !errors.Is(err, ErrAlreadyBooted) {
		t.Fatalf("double boot err = %v", err)
	}
	// Releasing memory while booted is refused.
	if err := m.ReleaseMemory(); !errors.Is(err, ErrAlreadyBooted) {
		t.Fatalf("release while booted err = %v", err)
	}
	if err := m.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(); !errors.Is(err, ErrNotBooted) {
		t.Fatalf("double shutdown err = %v", err)
	}
	// After shutdown resources are still reserved; release works now.
	if err := m.ReleaseMemory(); err != nil {
		t.Fatal(err)
	}
}

func TestIKC(t *testing.T) {
	c := DefaultIKC()
	rt := c.RoundTrip()
	if rt <= 0 {
		t.Fatal("round trip must cost something")
	}
	if rt != 2*c.OneWay+c.WakeLatency {
		t.Fatalf("round trip = %v", rt)
	}
	if c.Messages() != 2 {
		t.Fatalf("messages = %d", c.Messages())
	}
	c.RoundTrip()
	if c.Messages() != 4 {
		t.Fatalf("messages = %d", c.Messages())
	}
}
