package ihk

import (
	"errors"
	"testing"
)

// Error-path coverage for the Manager lifecycle: the operational failures of
// Sec. 5.1 all surface through these paths, so they must fail loudly and
// leave the manager consistent.

func bootedManager(t *testing.T) *Manager {
	t.Helper()
	m := NewManager(newHost(t))
	if err := m.ReserveCPUs(m.Host.Topo.AppCores()); err != nil {
		t.Fatal(err)
	}
	if err := m.ReserveMemory(1 << 30); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDoubleBootRejected(t *testing.T) {
	m := bootedManager(t)
	if _, err := m.Boot(); !errors.Is(err, ErrAlreadyBooted) {
		t.Fatalf("double boot err = %v, want ErrAlreadyBooted", err)
	}
}

func TestReleaseUnreservedCores(t *testing.T) {
	m := NewManager(newHost(t))
	app := m.Host.Topo.AppCores()
	if err := m.ReleaseCPUs(app[:2]); !errors.Is(err, ErrNotReserved) {
		t.Fatalf("release of unreserved cores err = %v, want ErrNotReserved", err)
	}
	// Partial overlap must fail atomically: reserve 2, release 4.
	if err := m.ReserveCPUs(app[:2]); err != nil {
		t.Fatal(err)
	}
	if err := m.ReleaseCPUs(app[:4]); !errors.Is(err, ErrNotReserved) {
		t.Fatalf("partial release err = %v, want ErrNotReserved", err)
	}
	if len(m.ReservedCPUs()) != 2 {
		t.Fatal("failed release must not change the reservation")
	}
}

func TestReserveMemoryAfterBootRejected(t *testing.T) {
	m := bootedManager(t)
	before := m.ReservedMemoryBytes()
	if err := m.ReserveMemory(1 << 30); !errors.Is(err, ErrAlreadyBooted) {
		t.Fatalf("reserve-after-boot err = %v, want ErrAlreadyBooted", err)
	}
	if m.ReservedMemoryBytes() != before {
		t.Fatal("rejected reservation changed the partition")
	}
}

func TestReserveCPUsAfterBootRejected(t *testing.T) {
	m := bootedManager(t)
	if err := m.ReserveCPUs(m.Host.Topo.AppCores()[:1]); !errors.Is(err, ErrAlreadyBooted) {
		t.Fatalf("reserve-after-boot err = %v, want ErrAlreadyBooted", err)
	}
}

func TestShutdownWithoutBoot(t *testing.T) {
	m := NewManager(newHost(t))
	if err := m.Shutdown(); !errors.Is(err, ErrNotBooted) {
		t.Fatalf("shutdown without boot err = %v, want ErrNotBooted", err)
	}
}

func TestHooksMakeOperationsFallible(t *testing.T) {
	injected := errors.New("injected prologue failure")
	m := NewManager(newHost(t))
	m.Hooks = Hooks{
		BeforeReserveCPUs:   func([]int) error { return injected },
		BeforeReserveMemory: func(int64) error { return injected },
		BeforeBoot:          func() error { return injected },
	}
	app := m.Host.Topo.AppCores()
	if err := m.ReserveCPUs(app); !errors.Is(err, injected) {
		t.Fatalf("cpu hook err = %v", err)
	}
	if len(m.ReservedCPUs()) != 0 {
		t.Fatal("failed hook must not reserve cores")
	}
	if err := m.ReserveMemory(1 << 30); !errors.Is(err, injected) {
		t.Fatalf("mem hook err = %v", err)
	}
	if m.ReservedMemoryBytes() != 0 {
		t.Fatal("failed hook must not reserve memory")
	}
	// Clear the reserve hooks, keep the boot hook: boot must fail.
	m.Hooks.BeforeReserveCPUs = nil
	m.Hooks.BeforeReserveMemory = nil
	if err := m.ReserveCPUs(app); err != nil {
		t.Fatal(err)
	}
	if err := m.ReserveMemory(1 << 30); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Boot(); !errors.Is(err, injected) {
		t.Fatalf("boot hook err = %v", err)
	}
	if m.Booted() {
		t.Fatal("failed boot must leave the partition down")
	}
	m.Hooks.BeforeBoot = nil
	if _, err := m.Boot(); err != nil {
		t.Fatalf("boot after clearing hook: %v", err)
	}
}
