// Package ihk models the Interface for Heterogeneous Kernels: the low-level
// infrastructure that partitions a node's CPU cores and physical memory at
// runtime (no host reboot), boots lightweight kernels on the reserved
// resources, and provides the Inter-Kernel Communication (IKC) channel used
// for system-call delegation (Sec. 5 of the paper). IHK is implemented as
// Linux kernel modules in the real system; here it manipulates the modelled
// Linux instance the same way.
package ihk

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mkos/internal/linux"
	"mkos/internal/mem"
)

// IHK errors.
var (
	ErrCoreBusy      = errors.New("ihk: core already reserved")
	ErrCoreNotApp    = errors.New("ihk: cannot reserve assistant/system core")
	ErrNotReserved   = errors.New("ihk: resource not reserved")
	ErrAlreadyBooted = errors.New("ihk: LWK already booted on this partition")
	ErrNotBooted     = errors.New("ihk: no LWK booted")
	ErrNoResources   = errors.New("ihk: partition has no reserved resources")
)

// Hooks lets callers make the reserve/boot operations fallible: the fault
// injector installs functions here to model prologue scripts failing in
// production (Sec. 5.1 — "ihk reserve" failing in a job prologue was a real
// operational failure mode at scale). A nil hook is a no-op.
type Hooks struct {
	BeforeReserveCPUs   func(cores []int) error
	BeforeReserveMemory func(bytesPerDomain int64) error
	BeforeBoot          func() error
}

// Manager is the IHK core module attached to one Linux node. It tracks which
// CPUs and memory regions have been detached from Linux for LWK use.
type Manager struct {
	Host  *linux.Kernel
	Hooks Hooks

	reservedCores map[int]bool
	reservedMem   []mem.Region
	booted        bool
}

// NewManager loads IHK on a Linux node (insmod ihk.ko, conceptually).
func NewManager(host *linux.Kernel) *Manager {
	return &Manager{Host: host, reservedCores: make(map[int]bool)}
}

// ReserveCPUs detaches application cores from Linux. Assistant cores cannot
// be reserved: Linux needs them, and the whole point is to leave Linux
// running beside the LWK.
func (m *Manager) ReserveCPUs(cores []int) error {
	if m.booted {
		return fmt.Errorf("%w: cannot change a running partition's CPUs", ErrAlreadyBooted)
	}
	if m.Hooks.BeforeReserveCPUs != nil {
		if err := m.Hooks.BeforeReserveCPUs(cores); err != nil {
			return fmt.Errorf("ihk: reserving CPUs: %w", err)
		}
	}
	appSet := make(map[int]bool)
	for _, c := range m.Host.Topo.AppCores() {
		appSet[c] = true
	}
	for _, c := range cores {
		if !appSet[c] {
			return fmt.Errorf("%w: core %d", ErrCoreNotApp, c)
		}
		if m.reservedCores[c] {
			return fmt.Errorf("%w: core %d", ErrCoreBusy, c)
		}
	}
	for _, c := range cores {
		m.reservedCores[c] = true
	}
	return nil
}

// ReleaseCPUs returns cores to Linux.
func (m *Manager) ReleaseCPUs(cores []int) error {
	for _, c := range cores {
		if !m.reservedCores[c] {
			return fmt.Errorf("%w: core %d", ErrNotReserved, c)
		}
	}
	for _, c := range cores {
		delete(m.reservedCores, c)
	}
	return nil
}

// ReservedCPUs lists the reserved cores in ascending order.
func (m *Manager) ReservedCPUs() []int {
	var out []int
	for c := range m.reservedCores {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// ReserveMemory detaches bytes of physical memory per application NUMA
// domain from Linux's allocator and assigns it to the partition.
func (m *Manager) ReserveMemory(bytesPerDomain int64) error {
	if m.booted {
		return fmt.Errorf("%w: cannot change a running partition's memory", ErrAlreadyBooted)
	}
	if bytesPerDomain <= 0 {
		return fmt.Errorf("ihk: non-positive reservation %d", bytesPerDomain)
	}
	if m.Hooks.BeforeReserveMemory != nil {
		if err := m.Hooks.BeforeReserveMemory(bytesPerDomain); err != nil {
			return fmt.Errorf("ihk: reserving memory: %w", err)
		}
	}
	var got []mem.Region
	for _, node := range m.Host.Mem.AppNodes() {
		remaining := bytesPerDomain
		for remaining > 0 {
			chunk := remaining
			maxBlock := node.Buddy.BasePage() << node.Buddy.MaxOrder()
			if chunk > maxBlock {
				chunk = maxBlock
			}
			r, err := node.Buddy.Alloc(chunk)
			if err != nil {
				// Roll back everything taken so far.
				for _, rr := range got {
					_ = m.Host.Mem.Free(rr)
				}
				return fmt.Errorf("ihk: reserving %d bytes on domain %d: %w", bytesPerDomain, node.ID, err)
			}
			r.NUMA = node.ID
			got = append(got, r)
			remaining -= r.Bytes
		}
	}
	m.reservedMem = append(m.reservedMem, got...)
	return nil
}

// ReleaseMemory returns all reserved memory to Linux.
func (m *Manager) ReleaseMemory() error {
	if m.booted {
		return ErrAlreadyBooted
	}
	for _, r := range m.reservedMem {
		if err := m.Host.Mem.Free(r); err != nil {
			return err
		}
	}
	m.reservedMem = nil
	return nil
}

// ReservedMemoryBytes returns the total bytes held by the partition.
func (m *Manager) ReservedMemoryBytes() int64 {
	var n int64
	for _, r := range m.reservedMem {
		n += r.Bytes
	}
	return n
}

// Partition is the resource set handed to a booted LWK.
type Partition struct {
	Cores  []int
	Memory []mem.Region
}

// Boot hands the reserved resources to an LWK. The returned partition stays
// valid until Shutdown. Booting requires at least one core and some memory.
func (m *Manager) Boot() (*Partition, error) {
	if m.booted {
		return nil, ErrAlreadyBooted
	}
	if len(m.reservedCores) == 0 || len(m.reservedMem) == 0 {
		return nil, ErrNoResources
	}
	if m.Hooks.BeforeBoot != nil {
		if err := m.Hooks.BeforeBoot(); err != nil {
			return nil, fmt.Errorf("ihk: booting LWK: %w", err)
		}
	}
	m.booted = true
	return &Partition{Cores: m.ReservedCPUs(), Memory: append([]mem.Region(nil), m.reservedMem...)}, nil
}

// Shutdown stops the LWK; resources stay reserved until released, matching
// IHK's decoupling of kernel lifecycle from resource assignment.
func (m *Manager) Shutdown() error {
	if !m.booted {
		return ErrNotBooted
	}
	m.booted = false
	return nil
}

// Booted reports whether an LWK is running.
func (m *Manager) Booted() bool { return m.booted }

// IKC is an inter-kernel communication channel: a pair of memory queues with
// doorbell interrupts. System-call delegation rides on it.
type IKC struct {
	// OneWay is the cost of posting a message and raising the doorbell on
	// the peer.
	OneWay time.Duration
	// WakeLatency is the cost of waking the proxy process on the Linux side
	// (context switch + queue processing).
	WakeLatency time.Duration

	messages uint64
}

// DefaultIKC returns the channel parameters measured for McKernel-class
// delegation (single-digit microsecond round trips).
func DefaultIKC() *IKC {
	return &IKC{OneWay: 800 * time.Nanosecond, WakeLatency: 2 * time.Microsecond}
}

// RoundTrip returns the cost of a delegation round trip excluding the
// Linux-side service time: request post + proxy wake + response post.
func (c *IKC) RoundTrip() time.Duration {
	c.messages += 2
	return 2*c.OneWay + c.WakeLatency
}

// Messages returns the number of messages sent over the channel.
func (c *IKC) Messages() uint64 { return c.messages }
