package simd_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mkos/internal/simd"
	"mkos/internal/sweep"
)

// journalTrialKeys reads the campaign journals under the store's cache dir
// and returns every journaled trial key in file line order — the durable
// record the SSE stream's trial-event order must match exactly.
func journalTrialKeys(t *testing.T, store string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(store, "cache", "*.journal"))
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			var e struct {
				Result sweep.TrialResult `json:"result"`
			}
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Fatalf("journal line: %v", err)
			}
			keys = append(keys, e.Result.Key)
		}
		f.Close()
	}
	return keys
}

// TestTailOrderMatchesJournal runs a multi-trial campaign at full worker
// parallelism, tails its replayed event stream, and asserts three stream
// invariants: seq numbers are dense from 1, the trial events' key order is
// byte-for-byte the journal's line order (both are emitted under the same
// lock), and the stream ends with a terminal state event.
func TestTailOrderMatchesJournal(t *testing.T) {
	h := newHarness()
	store := t.TempDir()
	d := startDaemon(t, simd.Options{Store: store, Build: h.build, Workers: 4})
	defer d.stop()
	ctx := testCtx(t)
	c := d.client("tail")

	st, err := c.Submit(ctx, specJSON("stream", 7, 12))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Await(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	var evs []simd.Event
	if err := c.Tail(ctx, st.ID, func(ev simd.Event) error {
		evs = append(evs, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("empty replay")
	}
	var streamKeys []string
	var done int
	for i, ev := range evs {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d, want dense numbering from 1", i, ev.Seq)
		}
		if ev.ID != st.ID {
			t.Fatalf("event %d carries campaign id %q, want %q", i, ev.ID, st.ID)
		}
		if ev.Type == "trial" {
			done++
			if ev.Done != done {
				t.Fatalf("trial event %d reports done=%d, want %d", i, ev.Done, done)
			}
			if ev.Total != 12 {
				t.Fatalf("trial event %d reports total=%d, want 12", i, ev.Total)
			}
			streamKeys = append(streamKeys, ev.Key)
		}
	}
	last := evs[len(evs)-1]
	if last.Type != "state" || last.State != simd.StateDone {
		t.Fatalf("stream ends with %s/%s, want a terminal state event", last.Type, last.State)
	}
	jKeys := journalTrialKeys(t, store)
	if len(jKeys) != 12 || len(streamKeys) != 12 {
		t.Fatalf("got %d journal keys and %d stream keys, want 12 each", len(jKeys), len(streamKeys))
	}
	for i := range jKeys {
		if jKeys[i] != streamKeys[i] {
			t.Fatalf("order diverges at %d: journal %q vs stream %q\njournal: %v\nstream: %v",
				i, jKeys[i], streamKeys[i], jKeys, streamKeys)
		}
	}
}

// TestTailLiveCompletion subscribes while the campaign is still blocked,
// then releases it: the live stream must deliver the remaining trial events
// and terminate cleanly on the done state.
func TestTailLiveCompletion(t *testing.T) {
	h := newHarness()
	d := startDaemon(t, simd.Options{Store: t.TempDir(), Build: h.build, Workers: 2})
	defer d.stop()
	ctx := testCtx(t)
	c := d.client("live")

	st, err := c.Submit(ctx, specJSON("block-live", 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	h.awaitEntries(t, 1) // campaign is running and parked

	tailed := make(chan error, 1)
	var evs []simd.Event
	go func() {
		tailed <- c.Tail(ctx, st.ID, func(ev simd.Event) error {
			evs = append(evs, ev)
			return nil
		})
	}()
	time.Sleep(20 * time.Millisecond) // let the subscriber attach mid-run
	h.release()

	if err := <-tailed; err != nil {
		t.Fatalf("tail: %v", err)
	}
	trials := 0
	for _, ev := range evs {
		if ev.Type == "trial" {
			trials++
		}
	}
	if trials != 4 {
		t.Fatalf("live stream delivered %d trial events, want 4", trials)
	}
	if last := evs[len(evs)-1]; last.State != simd.StateDone {
		t.Fatalf("live stream ended on state %q, want done", last.State)
	}
}

// TestTailClientCancel verifies a canceled consumer detaches cleanly: Tail
// returns the context error, and the daemon goes on to finish the campaign
// as if the subscriber never existed.
func TestTailClientCancel(t *testing.T) {
	h := newHarness()
	d := startDaemon(t, simd.Options{Store: t.TempDir(), Build: h.build})
	defer d.stop()
	ctx := testCtx(t)
	c := d.client("cancel")

	st, err := c.Submit(ctx, specJSON("block-cancel", 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	h.awaitEntries(t, 1)

	tctx, cancel := context.WithCancel(ctx)
	tailed := make(chan error, 1)
	go func() {
		tailed <- c.Tail(tctx, st.ID, func(simd.Event) error { return nil })
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-tailed; !errors.Is(err, context.Canceled) {
		t.Fatalf("tail after client cancel: %v, want context.Canceled", err)
	}

	h.release()
	if st, err = c.Await(ctx, st.ID); err != nil || st.State != simd.StateDone {
		t.Fatalf("campaign after subscriber left: %v/%v, want done", st.State, err)
	}
}

// TestTailDaemonDrain verifies the drain contract for live streams: a
// SIGTERM-style drain ends every subscriber's stream cleanly (no hang), and
// since the campaign never settled, the client sees ErrStreamClosed — the
// signal to re-tail after the next incarnation resumes the campaign.
func TestTailDaemonDrain(t *testing.T) {
	h := newHarness()
	d := startDaemon(t, simd.Options{
		Store: t.TempDir(), Build: h.build,
		DrainGrace: 10 * time.Millisecond,
	})
	ctx := testCtx(t)
	c := d.client("drain")

	st, err := c.Submit(ctx, specJSON("block-drain", 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	h.awaitEntries(t, 1)

	tailed := make(chan error, 1)
	go func() {
		tailed <- c.Tail(ctx, st.ID, func(simd.Event) error { return nil })
	}()
	time.Sleep(20 * time.Millisecond)
	d.srv.Drain()
	select {
	case err := <-tailed:
		if !errors.Is(err, simd.ErrStreamClosed) {
			t.Fatalf("tail after drain: %v, want ErrStreamClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tail did not terminate on daemon drain")
	}
	d.http.Close()
}

// TestHealthzReportsDraining pins the load-balancer contract: /v1/healthz
// answers 200 while serving and flips to 503 with draining:true the moment
// drain begins, so orchestrators stop routing to a daemon on its way out.
func TestHealthzReportsDraining(t *testing.T) {
	h := newHarness()
	d := startDaemon(t, simd.Options{
		Store: t.TempDir(), Build: h.build,
		DrainGrace: 10 * time.Millisecond,
	})
	ctx := testCtx(t)
	c := d.client("hz")

	health := func() (int, map[string]any) {
		resp, err := http.Get(d.http.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := health(); code != http.StatusOK || body["draining"] != false {
		t.Fatalf("serving healthz: %d %v, want 200 draining=false", code, body)
	}

	if _, err := c.Submit(ctx, specJSON("block-hz", 4, 2)); err != nil {
		t.Fatal(err)
	}
	h.awaitEntries(t, 1)
	drained := make(chan struct{})
	go func() { d.srv.Drain(); close(drained) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := health()
		if code == http.StatusServiceUnavailable {
			if body["draining"] != true || body["state"] != "draining" {
				t.Fatalf("draining healthz body: %v", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never flipped to 503 during drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.release()
	<-drained
	d.http.Close()
}

// TestJournalBusyIs409 pins the deployment-overlap story: a second daemon
// on the same store that reaches for a journal another daemon holds fails
// the campaign with the typed journal_busy reason, results answer 409 (not
// a generic 500), and resubmitting requeues the campaign so it can succeed
// once the first daemon lets go.
func TestJournalBusyIs409(t *testing.T) {
	h1 := newHarness()
	store := t.TempDir()
	d1 := startDaemon(t, simd.Options{Store: store, Build: h1.build})
	ctx := testCtx(t)
	c1 := d1.client("owner")

	// Daemon 1 parks the campaign mid-run, holding its journal's flock.
	st, err := c1.Submit(ctx, specJSON("block-busy", 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	h1.awaitEntries(t, 1)

	// Daemon 2 on the same store re-admits the (persisted, running) campaign
	// and hits the held flock when it dispatches it.
	h2 := newHarness()
	d2 := startDaemon(t, simd.Options{Store: store, Build: h2.build})
	c2 := d2.client("intruder")
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := c2.Status(ctx, st.ID)
		if err == nil && got.State == simd.StateFailed {
			if !strings.Contains(got.Err, "journal") {
				t.Fatalf("failed campaign error %q does not mention the journal", got.Err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon 2 never hit the busy journal (state %+v, err %v)", got, err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Results must be the typed 409, and a single client attempt must see it.
	one := d2.client("intruder")
	one.MaxAttempts = 1
	if _, err := one.Results(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "HTTP 409") ||
		!strings.Contains(err.Error(), simd.ReasonJournalBusy) {
		t.Fatalf("results on busy campaign: %v, want typed 409 %s", err, simd.ReasonJournalBusy)
	}

	// Let daemon 1 finish and release the flock; a resubmission to daemon 2
	// requeues the campaign and this time it completes (all trials cached).
	h1.release()
	if got, err := c1.Await(ctx, st.ID); err != nil || got.State != simd.StateDone {
		t.Fatalf("daemon 1 completion: %v/%v", got.State, err)
	}
	d1.stop()

	resub, err := c2.Submit(ctx, specJSON("block-busy", 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if resub.ID != st.ID {
		t.Fatalf("resubmission changed identity: %s vs %s", resub.ID, st.ID)
	}
	got, err := c2.Await(ctx, st.ID)
	if err != nil || got.State != simd.StateDone {
		t.Fatalf("requeued campaign: %+v err=%v, want done", got, err)
	}
	if got.Executed != 0 || got.Cached != 2 {
		t.Fatalf("requeued campaign executed=%d cached=%d, want 0/2 (daemon 1's journal feeds it)", got.Executed, got.Cached)
	}
	d2.stop()
}

// TestMetricsAndTrace validates the two pull-based observability surfaces
// after real traffic: /v1/metrics is well-formed Prometheus text with
// coherent trial counters, and /v1/trace is Chrome trace JSON whose spans
// cover the causal chain campaign → queue-wait → run → trial with correct
// parentage.
func TestMetricsAndTrace(t *testing.T) {
	h := newHarness()
	d := startDaemon(t, simd.Options{Store: t.TempDir(), Build: h.build})
	defer d.stop()
	ctx := testCtx(t)
	c := d.client("obs")

	st, err := c.Submit(ctx, specJSON("obs", 9, 5))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c.Await(ctx, st.ID); err != nil || got.State != simd.StateDone {
		t.Fatalf("campaign: %v/%v", got.State, err)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	text := string(metrics)
	for _, want := range []string{
		"# TYPE simd_admitted_total counter",
		"simd_admitted_total 1",
		"simd_trials_executed_total 5",
		"# TYPE simd_queue_depth gauge",
		"sweep_trials_executed_total 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if f := strings.Fields(line); len(f) != 2 {
			t.Errorf("exposition line %d is not `name value`: %q", i+1, line)
		}
	}

	blob, err := c.Trace(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans := map[string]map[string]any{}
	trials := 0
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch ev.Name {
		case "campaign", "queue-wait", "run":
			spans[ev.Name] = ev.Args
		case "trial":
			trials++
		}
	}
	for _, name := range []string{"campaign", "queue-wait", "run"} {
		if spans[name] == nil {
			t.Fatalf("trace has no %q span; spans seen: %v", name, spanNames(trace.TraceEvents))
		}
	}
	if trials != 5 {
		t.Errorf("trace has %d trial spans, want 5", trials)
	}
	// Causal chain: queue-wait and run are children of the campaign span.
	root := fmt.Sprint(spans["campaign"]["span"])
	for _, child := range []string{"queue-wait", "run"} {
		if parent := fmt.Sprint(spans[child]["parent"]); parent != root {
			t.Errorf("%s span has parent %s, want campaign span %s", child, parent, root)
		}
	}
}

func spanNames(evs []struct {
	Ph   string         `json:"ph"`
	Name string         `json:"name"`
	Args map[string]any `json:"args"`
}) []string {
	var names []string
	for _, ev := range evs {
		if ev.Ph == "X" {
			names = append(names, ev.Name)
		}
	}
	return names
}
