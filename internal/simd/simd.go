// Package simd is simulation-as-a-service: a long-lived HTTP/JSON daemon
// that accepts the declarative campaign specs the CLIs already consume
// (internal/sweep/campaigns), runs them through the sweep orchestrator, and
// is engineered to stay up and stay correct under failure and overload —
// the operational regime of the paper's pre-exascale campaigns, where node
// failures, daemons dying mid-run and oversubscribed queues are routine.
//
// The robustness story rests on four legs:
//
//   - Bounded admission. The submit queue is finite (Options.MaxQueue) and
//     per-client backlogs are finite (Options.MaxPerClient); an over-limit
//     submission is refused with a typed 429 and a retry hint, a submission
//     during drain with a typed 503. Dispatch is round-robin across
//     clients, so a client flooding its allowance delays other clients by
//     at most one campaign each — it cannot starve them.
//
//   - Content-addressed idempotency. A campaign's identity is the hash of
//     its canonical spec (SpecID). Concurrent identical submissions from
//     any number of clients collapse onto one campaign object and one
//     execution; a client that loses a submit response simply resubmits.
//     Distinct campaigns still share trial results through the sweep
//     subsystem's content-addressed cache, so identical trials execute once
//     machine-wide.
//
//   - Crash tolerance. Specs and statuses persist in the store the moment
//     they are admitted, and every finished trial lands in the campaign's
//     crash-safe journal (internal/sweep). A SIGKILLed daemon restarted on
//     the same store re-admits every unfinished campaign and resumes it
//     with zero re-executed trials; because the merge is deterministic, the
//     resumed results.json is byte-identical to an uninterrupted run's.
//
//   - Graceful drain. On SIGTERM the daemon stops admitting (503), gives
//     running campaigns a short grace to finish, then cancels them
//     cooperatively — the journal already holds their finished trials — and
//     persists every unfinished campaign as queued so the next incarnation
//     resumes it.
//
// Wall-clock observations (queue depth, admission rejects, submit-to-result
// latency) live in an ops-side telemetry registry exposed at /v1/stats;
// they never mix with the deterministic campaign artifacts.
package simd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"

	cas "mkos/internal/simd/store"
	"mkos/internal/sweep"
	"mkos/internal/sweep/campaigns"
)

// Campaign lifecycle states. A campaign moves queued → running → one of the
// terminal states; drain and crash push a running campaign back to queued
// (on disk) so the next incarnation resumes it.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCanceled    = "canceled"
	StateInterrupted = "interrupted" // in-memory/on-disk marker for drained work; re-admitted as queued
	// StateCrashLoop is the circuit breaker's terminal state: the campaign's
	// worker died CrashLoopK consecutive times without completing a single
	// new trial, so the supervisor stopped restarting it. Resubmitting the
	// campaign re-arms the breaker and requeues it.
	StateCrashLoop = "crash_loop"
)

// Typed admission-rejection reasons, returned in ErrorResponse.Error and
// counted per-reason in the ops registry.
const (
	ReasonQueueFull     = "queue_full"     // the global queue bound is met
	ReasonClientBacklog = "client_backlog" // this client's backlog bound is met
	ReasonDraining      = "draining"       // the daemon is shutting down
	ReasonBadSpec       = "bad_spec"       // the spec failed to parse or enumerate
	ReasonTooLarge      = "spec_too_large" // the request body exceeded MaxSpecBytes
	ReasonNotFound      = "unknown_campaign"
	ReasonNotDone       = "not_done" // results requested before a terminal state
	// ReasonJournalBusy marks a campaign whose sweep journal is flocked by
	// another daemon on the same cache dir (sweep.ErrJournalBusy): a
	// transient deployment overlap, answered with HTTP 409. Resubmitting the
	// campaign requeues it once the other daemon lets go.
	ReasonJournalBusy = "journal_busy"
	// ReasonNoSpace marks a submission the store could not persist because
	// the disk is full (ENOSPC), answered with HTTP 507. Unlike the 429s
	// there is no useful retry hint — the condition clears when an operator
	// frees space, not when the client waits politely.
	ReasonNoSpace = "no_space"
)

// Options configures a Server.
type Options struct {
	// Store is the daemon's state directory: campaigns/<id>/ for specs,
	// statuses and artifacts, cache/ for the shared sweep result cache and
	// campaign journals. Required.
	Store string
	// Workers is the sweep worker-pool size per campaign; <= 0 means all
	// cores.
	Workers int
	// Concurrency is how many campaigns run at once; <= 0 means 1. Per-
	// campaign parallelism comes from Workers; raising Concurrency trades
	// cross-campaign cache sharing (a trial two queued campaigns share may
	// execute twice when they overlap) for shorter queues.
	Concurrency int
	// MaxQueue bounds queued campaigns across all clients; <= 0 means 64.
	MaxQueue int
	// MaxPerClient bounds one client's queued campaigns; <= 0 means 8.
	MaxPerClient int
	// TrialTimeout and CancelGrace thread through to sweep.Options: a
	// runaway trial is canceled cooperatively after TrialTimeout and its
	// goroutine abandoned after CancelGrace.
	TrialTimeout time.Duration
	CancelGrace  time.Duration
	// DrainGrace is how long running campaigns get to finish naturally on
	// drain before being canceled (their finished trials are journaled
	// either way); <= 0 means 2 seconds.
	DrainGrace time.Duration
	// Version pins the sweep cache/journal version; empty selects
	// sweep.CodeVersion().
	Version string
	// Log, when non-nil, receives structured JSON log lines (one object per
	// line: ts, level, msg, then fields — request and campaign ids ride
	// every relevant line). Lifecycle messages keep their stable substrings
	// ("resumed campaign <id>", "drained:"), which is what the chaos gate
	// greps.
	Log io.Writer
	// LogLevel is the minimum level written to Log: "debug", "info"
	// (default), "warn" or "error". Access-log lines for health and metrics
	// probes log at debug.
	LogLevel string

	// Worker, when Worker.Cmd is non-empty, moves trial execution out of
	// process: each campaign is dispatched to a supervised child running
	// Worker.Cmd against the shared cache dir, with restarts, heartbeats,
	// resource ceilings and a crash-loop breaker. Empty Cmd keeps the
	// original in-process path.
	Worker WorkerOptions

	// StoreFault, when non-nil, intercepts every atomic store write (chaos /
	// test hook — see store.WriteFault and chaos.StoreFaults).
	StoreFault cas.WriteFault

	// Build converts a parsed spec into the runnable campaign. Nil selects
	// the production path, campaigns.Spec.Campaign; tests substitute
	// synthetic trial bodies while keeping the whole admission, queueing,
	// persistence and resume machinery real. Ignored by the out-of-process
	// path: workers always build the production campaign (worker test
	// binaries substitute their own BuildFunc).
	Build func(*campaigns.Spec) (*sweep.Campaign, error)
	// Observe, when non-nil, is called on every campaign state transition
	// (test hook; called with the server lock released).
	Observe func(id, state string)
}

// WorkerOptions configures out-of-process trial execution (the supervisor's
// containment policy; see internal/simd/worker).
type WorkerOptions struct {
	// Cmd is the worker argv; element 0 is the binary. cmd/simd passes its
	// own executable plus the hidden -worker flag. Empty disables the
	// out-of-process path.
	Cmd []string
	// Env is the worker environment; nil inherits the daemon's.
	Env []string
	// RSSLimit, when > 0, SIGKILLs a worker whose resident set exceeds this
	// many bytes.
	RSSLimit int64
	// Deadline, when > 0, bounds a campaign's total wall time across worker
	// restarts; exceeding it is a terminal failure.
	Deadline time.Duration
	// HeartbeatTimeout is the supervisor's silence tolerance before it
	// declares a worker wedged (journal mtime gets a second opinion first);
	// <= 0 means 10s.
	HeartbeatTimeout time.Duration
	// CrashLoopK trips the circuit breaker after K consecutive worker deaths
	// with no progress; <= 0 means 3.
	CrashLoopK int
	// BackoffBase and BackoffMax shape the deterministic restart delay
	// min(base·2ⁱ, max); zero values mean 50ms and 2s.
	BackoffBase, BackoffMax time.Duration
	// SpawnHook, when non-nil, is called with the campaign name and each
	// incarnation's attempt index and pid, immediately after spawn — the
	// chaos WorkerKiller arms here.
	SpawnHook func(campaign string, attempt, pid int)
}

// MaxSpecBytes bounds a submitted spec body. The stock specs are well under
// a kilobyte; a megabyte leaves room for generated trial matrices while
// keeping a flood of maximal bodies cheap to refuse.
const MaxSpecBytes = 1 << 20

// SpecID derives a campaign's content-addressed identity from its raw spec
// JSON. The blob is parsed and re-marshaled first, so identity attaches to
// the canonical parameter set, not to formatting: two clients submitting the
// same spec with different whitespace (or a lost-response retry of a
// previous submit) converge on the same campaign. The parsed spec is
// returned so admission does not decode twice.
func SpecID(raw []byte) (string, *campaigns.Spec, error) {
	spec, err := campaigns.ParseSpec(raw)
	if err != nil {
		return "", nil, err
	}
	canon, err := json.Marshal(spec)
	if err != nil {
		return "", nil, err
	}
	h := sha256.New()
	fmt.Fprintf(h, "simd-campaign-v1\x00")
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil))[:16], spec, nil
}

// Status is the wire form of one campaign's state, returned by submit and
// status requests and persisted (minus Deduped) as the campaign's
// status.json.
type Status struct {
	ID     string `json:"id"`
	Client string `json:"client,omitempty"`
	State  string `json:"state"`
	// Total is the campaign's trial count; Executed/Cached/Failed partition
	// the merged trials once the campaign reaches a terminal state
	// (Executed counts this incarnation's executions — a resumed campaign
	// reports the balance as Cached, which is how zero re-execution is
	// asserted from outside).
	Total    int `json:"total"`
	Executed int `json:"executed"`
	Cached   int `json:"cached"`
	Failed   int `json:"failed"`
	// Err carries the terminal error of a failed campaign.
	Err string `json:"err,omitempty"`
	// Deduped marks a submit response that matched an existing campaign
	// instead of admitting a new one.
	Deduped bool `json:"deduped,omitempty"`
	// Restarts counts worker deaths this campaign has survived (out-of-
	// process mode only); LastExit names the most recent death's cause
	// ("signal: killed", "exit status 2", "rss_limit", "heartbeat_stall").
	Restarts int    `json:"restarts,omitempty"`
	LastExit string `json:"last_exit,omitempty"`
	// Breaker is the crash-loop circuit breaker's position: "closed" while a
	// supervised campaign runs, "open" once it trips (state crash_loop).
	Breaker string `json:"breaker,omitempty"`
}

// Terminal reports whether the state is final for this daemon incarnation.
func (s *Status) Terminal() bool {
	switch s.State {
	case StateDone, StateFailed, StateCanceled, StateCrashLoop:
		return true
	}
	return false
}

// ErrorResponse is the typed JSON error body for every non-2xx response.
type ErrorResponse struct {
	// Error is one of the Reason* constants.
	Error string `json:"error"`
	// Detail is human-readable context.
	Detail string `json:"detail,omitempty"`
	// RetryAfterMS hints when a rejected submission is worth retrying.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Stats is the /v1/stats payload: the ops-side view of the daemon, flat
// enough for shell gates to grep. All values are process-lifetime (they
// reset on restart).
type Stats struct {
	Draining   bool           `json:"draining"`
	QueueDepth int            `json:"queue_depth"`
	Campaigns  map[string]int `json:"campaigns"` // state -> count, every state key present
	Admitted   int64          `json:"admitted"`
	Deduped    int64          `json:"deduped"`
	Resumed    int64          `json:"resumed"`
	Rejected   RejectStats    `json:"rejected"`
	Trials     TrialStats     `json:"trials"`
	// CacheHitRate is Trials.Cached / (Trials.Executed + Trials.Cached); 0
	// before any trial completes.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// SubmitToResultMS summarizes admitted-to-terminal campaign latency.
	SubmitToResultMS LatencyStats `json:"submit_to_result_ms"`
}

// RejectStats counts admission rejections by typed reason.
type RejectStats struct {
	QueueFull     int64 `json:"queue_full"`
	ClientBacklog int64 `json:"client_backlog"`
	Draining      int64 `json:"draining"`
	NoSpace       int64 `json:"no_space"`
}

// Total sums every rejection reason.
func (r RejectStats) Total() int64 {
	return r.QueueFull + r.ClientBacklog + r.Draining + r.NoSpace
}

// TrialStats aggregates trial outcomes across campaigns.
type TrialStats struct {
	Executed int64 `json:"executed"`
	Cached   int64 `json:"cached"`
	Failed   int64 `json:"failed"`
}

// LatencyStats summarizes a latency histogram.
type LatencyStats struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}
