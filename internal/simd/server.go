package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mkos/internal/sweep"
	"mkos/internal/sweep/campaigns"
	"mkos/internal/telemetry"
)

// campaign is the in-memory state of one admitted campaign.
type campaign struct {
	id    string
	canon []byte // canonical spec JSON (what the id hashes)
	built *sweep.Campaign

	// st is the current wire status; guarded by Server.mu.
	st Status
	// cancel stops the running sweep; cancelReq distinguishes an operator
	// cancel from a drain. Guarded by Server.mu.
	cancel    context.CancelFunc
	cancelReq bool
	// submitted anchors the submit-to-result latency observation (reset to
	// the requeue instant for campaigns resumed after a restart).
	submitted time.Time
}

// Server is the campaign daemon: admission, fair queueing, execution through
// the sweep orchestrator, persistence, and recovery.
type Server struct {
	opts  Options
	store *store
	queue *fairQueue
	ops   *telemetry.Registry

	mu    sync.Mutex
	camps map[string]*campaign

	draining atomic.Bool
	hardKill atomic.Bool

	runCtx    context.Context
	runCancel context.CancelFunc
	wg        sync.WaitGroup

	latency *telemetry.Histogram
	mux     *http.ServeMux
}

// NewServer opens (or creates) the store, recovers persisted campaigns —
// re-admitting every non-terminal one — and prepares the dispatcher pool.
// Call Start to begin executing campaigns and Handler to serve the API.
func NewServer(opts Options) (*Server, error) {
	if opts.Store == "" {
		return nil, errors.New("simd: Options.Store is required")
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 64
	}
	if opts.MaxPerClient <= 0 {
		opts.MaxPerClient = 8
	}
	if opts.DrainGrace <= 0 {
		opts.DrainGrace = 2 * time.Second
	}
	if opts.Build == nil {
		opts.Build = func(s *campaigns.Spec) (*sweep.Campaign, error) { return s.Campaign() }
	}
	st, err := openStore(opts.Store)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:  opts,
		store: st,
		queue: newFairQueue(opts.MaxQueue, opts.MaxPerClient),
		ops:   telemetry.NewRegistry(),
		camps: make(map[string]*campaign),
	}
	s.latency = s.ops.Histogram("simd.submit_to_result_ms", telemetry.ExpBuckets(1, 2, 20))
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	s.buildMux()
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover re-admits persisted campaigns: terminal ones become servable
// history, non-terminal ones (queued, running or interrupted at the moment
// of a crash or drain) are rebuilt and requeued. The sweep journal makes the
// requeued work nearly free: every trial that finished in a previous
// incarnation restores from it without re-executing.
func (s *Server) recover() error {
	stored, err := s.store.scan()
	if err != nil {
		return err
	}
	for _, sc := range stored {
		st := sc.status
		st.ID = sc.id // trust the directory name over a torn status
		c := &campaign{id: sc.id, canon: sc.spec, st: st, submitted: time.Now()}
		if c.st.Terminal() {
			s.camps[sc.id] = c
			continue
		}
		spec, perr := campaigns.ParseSpec(sc.spec)
		var built *sweep.Campaign
		if perr == nil {
			built, perr = s.opts.Build(spec)
		}
		if perr != nil {
			c.st.State = StateFailed
			c.st.Err = fmt.Sprintf("recovery: %v", perr)
			s.camps[sc.id] = c
			s.store.putStatus(sc.id, &c.st)
			s.logf("campaign %s failed in recovery: %v", sc.id, perr)
			continue
		}
		c.built = built
		c.st.State = StateQueued
		c.st.Total = len(built.Trials)
		c.st.Executed, c.st.Cached, c.st.Failed, c.st.Err = 0, 0, 0, ""
		s.camps[sc.id] = c
		if qerr := s.queue.push(c.st.Client, c); qerr != nil {
			c.st.State = StateFailed
			c.st.Err = fmt.Sprintf("recovery requeue: %v", qerr)
			s.store.putStatus(sc.id, &c.st)
			continue
		}
		s.store.putStatus(sc.id, &c.st)
		s.ops.Counter("simd.resumed").Inc()
		s.logf("resumed campaign %s (%d trials)", sc.id, c.st.Total)
	}
	s.gaugeDepth()
	return nil
}

// Start launches the dispatcher pool.
func (s *Server) Start() {
	for i := 0; i < s.opts.Concurrency; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				c, ok := s.queue.pop()
				if !ok {
					return
				}
				s.gaugeDepth()
				s.runCampaign(c)
			}
		}()
	}
}

// Drain is the graceful-shutdown path behind SIGTERM: stop admitting (new
// submissions see a typed 503), give running campaigns DrainGrace to finish
// naturally, then cancel them cooperatively — their finished trials are
// journaled, their statuses persist as interrupted — and return once every
// dispatcher has settled. Queued campaigns stay queued on disk; the next
// incarnation resumes everything.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.queue.close()
	settled := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(settled)
	}()
	select {
	case <-settled:
	case <-time.After(s.opts.DrainGrace):
		s.runCancel()
		<-settled
	}
	s.logf("drained: %d campaigns left queued for the next start", s.queue.size())
}

// Kill is the crash-simulation path (tests and the chaos harness): stop
// everything mid-flight with no persistence courtesy — statuses stay
// whatever the last atomic write made them, exactly as a SIGKILL would leave
// them — and wait only for the dispatcher goroutines to exit so a successor
// Server may safely open the same store.
func (s *Server) Kill() {
	s.hardKill.Store(true)
	s.draining.Store(true)
	s.queue.close()
	s.runCancel()
	s.wg.Wait()
}

// runCampaign executes one campaign through the sweep orchestrator and
// settles its state.
func (s *Server) runCampaign(c *campaign) {
	ctx, cancel := context.WithCancel(s.runCtx)
	defer cancel()
	s.mu.Lock()
	c.cancel = cancel
	c.st.State = StateRunning
	st := c.st
	s.mu.Unlock()
	if !s.hardKill.Load() {
		s.store.putStatus(c.id, &st)
	}
	s.observe(c.id, StateRunning)

	o, err := sweep.RunContext(ctx, c.built, sweep.Options{
		Workers:      s.opts.Workers,
		CacheDir:     s.store.cacheDir(),
		Version:      s.opts.Version,
		TrialTimeout: s.opts.TrialTimeout,
		CancelGrace:  s.opts.CancelGrace,
	})
	if o != nil {
		s.ops.Counter("simd.trials.executed").Add(int64(o.Executed))
		s.ops.Counter("simd.trials.cached").Add(int64(o.Cached))
		s.ops.Counter("simd.trials.failed").Add(int64(o.Failed))
	}

	s.mu.Lock()
	c.cancel = nil
	canceled := c.cancelReq
	s.mu.Unlock()

	switch {
	case err == nil:
		results := resultsJSON(o)
		var metrics bytes.Buffer
		if _, werr := o.Registry.WriteTo(&metrics); werr != nil {
			s.settle(c, StateFailed, o, fmt.Sprintf("rendering metrics: %v", werr))
			return
		}
		if aerr := s.store.putArtifacts(c.id, results, metrics.Bytes()); aerr != nil {
			s.settle(c, StateFailed, o, fmt.Sprintf("writing artifacts: %v", aerr))
			return
		}
		s.settle(c, StateDone, o, "")
		s.logf("campaign %s: %d trials: %d executed, %d cached, %d failed",
			c.id, len(o.Results), o.Executed, o.Cached, o.Failed)

	case errors.Is(err, sweep.ErrInterrupted):
		switch {
		case canceled:
			s.settle(c, StateCanceled, o, "")
			s.logf("campaign %s canceled (%d trials unfinished)", c.id, o.Canceled)
		default:
			// Drain or hard kill: the campaign is not over, it is paused.
			// Finished trials are already journaled; persist the
			// interruption (unless we are simulating a crash, which gets no
			// courtesy writes) so the next incarnation requeues it.
			s.settle(c, StateInterrupted, o, "")
			s.logf("campaign %s interrupted: %d trials journaled for resume", c.id, o.Executed+o.Cached)
		}

	default:
		s.settle(c, StateFailed, o, err.Error())
		s.logf("campaign %s failed: %v", c.id, err)
	}
}

// settle moves a campaign to its post-run state, persists it (except under a
// simulated crash), and publishes the latency observation for terminal
// outcomes.
func (s *Server) settle(c *campaign, state string, o *sweep.Outcome, errMsg string) {
	s.mu.Lock()
	c.st.State = state
	c.st.Err = errMsg
	if o != nil {
		c.st.Executed, c.st.Cached, c.st.Failed = o.Executed, o.Cached, o.Failed
	}
	st := c.st
	elapsed := time.Since(c.submitted)
	s.mu.Unlock()
	if !s.hardKill.Load() {
		s.store.putStatus(c.id, &st)
	}
	if st.Terminal() {
		s.latency.Observe(float64(elapsed) / float64(time.Millisecond))
		s.ops.Counter("simd.campaigns." + state).Inc()
	}
	s.observe(c.id, state)
}

// resultsJSON renders the deterministic results artifact in exactly the
// complete-run format cmd/sweep writes, so a campaign served by the daemon
// byte-compares against one run by the CLI.
func resultsJSON(o *sweep.Outcome) []byte {
	blob, err := json.MarshalIndent(o.Results, "", "  ")
	if err != nil {
		// Results marshaled once already (per trial); a failure here is a
		// programming error surfaced as an empty artifact rather than a
		// daemon crash.
		return []byte("[]\n")
	}
	return append(blob, '\n')
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves the API on addr until ctx is canceled, then drains:
// stops admitting, finishes or journals in-flight work, and shuts the
// listener down. It returns once the drain completes.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		err := srv.ListenAndServe()
		if !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	s.Start()
	s.logf("serving on %s (store %s)", addr, s.opts.Store)
	select {
	case err := <-errCh:
		s.queue.close()
		return err
	case <-ctx.Done():
	}
	s.logf("draining: admission closed, finishing or journaling in-flight campaigns")
	s.Drain()
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shctx)
}

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux = mux
}

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func reject(w http.ResponseWriter, code int, reason, detail string, retryAfter time.Duration) {
	writeJSON(w, code, ErrorResponse{Error: reason, Detail: detail, RetryAfterMS: int64(retryAfter / time.Millisecond)})
}

// clientID resolves the requester's fairness identity: the self-declared
// X-Simd-Client header when present (trusted — fairness is cooperative
// scheduling, not security), else the peer host.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Simd-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxSpecBytes))
	if err != nil {
		reject(w, http.StatusRequestEntityTooLarge, ReasonTooLarge,
			fmt.Sprintf("spec bodies are capped at %d bytes", MaxSpecBytes), 0)
		return
	}
	if s.draining.Load() {
		s.ops.Counter("simd.rejected.draining").Inc()
		reject(w, http.StatusServiceUnavailable, ReasonDraining, "daemon is draining; retry against the next incarnation", time.Second)
		return
	}
	id, spec, err := SpecID(body)
	if err != nil {
		reject(w, http.StatusBadRequest, ReasonBadSpec, err.Error(), 0)
		return
	}
	client := clientID(r)

	s.mu.Lock()
	if c, ok := s.camps[id]; ok {
		st := c.st
		s.mu.Unlock()
		st.Deduped = true
		s.ops.Counter("simd.deduped").Inc()
		writeJSON(w, http.StatusOK, st)
		return
	}
	s.mu.Unlock()

	built, err := s.opts.Build(spec)
	if err != nil {
		reject(w, http.StatusBadRequest, ReasonBadSpec, err.Error(), 0)
		return
	}
	canon, err := json.Marshal(spec)
	if err != nil {
		reject(w, http.StatusBadRequest, ReasonBadSpec, err.Error(), 0)
		return
	}

	c := &campaign{
		id: id, canon: canon, built: built, submitted: time.Now(),
		st: Status{ID: id, Client: client, State: StateQueued, Total: len(built.Trials)},
	}
	s.mu.Lock()
	if prev, ok := s.camps[id]; ok {
		// Two identical submissions raced past the first check; the earlier
		// winner owns the campaign.
		st := prev.st
		s.mu.Unlock()
		st.Deduped = true
		s.ops.Counter("simd.deduped").Inc()
		writeJSON(w, http.StatusOK, st)
		return
	}
	s.camps[id] = c
	// Snapshot the queued status while it is still ours alone: once pushed,
	// a dispatcher may pop and mutate c.st concurrently, so the admission
	// response must come from this copy.
	st := c.st
	s.mu.Unlock()

	// Durable before dispatchable: once the spec and queued status are on
	// disk, a crash cannot lose the admission, so persist before push and
	// respond after both.
	if err := s.store.admit(id, canon, &st); err != nil {
		s.forget(id)
		reject(w, http.StatusInternalServerError, "store_error", err.Error(), 0)
		return
	}
	if err := s.queue.push(client, c); err != nil {
		s.forget(id)
		switch {
		case errors.Is(err, errQueueFull):
			s.ops.Counter("simd.rejected.queue_full").Inc()
			reject(w, http.StatusTooManyRequests, ReasonQueueFull,
				fmt.Sprintf("queue holds %d campaigns", s.opts.MaxQueue), 250*time.Millisecond)
		case errors.Is(err, errClientBacklog):
			s.ops.Counter("simd.rejected.client_backlog").Inc()
			reject(w, http.StatusTooManyRequests, ReasonClientBacklog,
				fmt.Sprintf("client %q already has %d campaigns queued", client, s.opts.MaxPerClient), 250*time.Millisecond)
		default:
			s.ops.Counter("simd.rejected.draining").Inc()
			reject(w, http.StatusServiceUnavailable, ReasonDraining, "daemon is draining", time.Second)
		}
		return
	}
	s.gaugeDepth()
	s.ops.Counter("simd.admitted").Inc()
	s.logf("admitted campaign %s (client %s, %d trials)", id, client, st.Total)
	s.observe(id, StateQueued)
	writeJSON(w, http.StatusAccepted, st)
}

// forget removes a campaign that failed to finish admission; its partial
// store directory, if any, must not shadow a future resubmission.
func (s *Server) forget(id string) {
	s.mu.Lock()
	delete(s.camps, id)
	s.mu.Unlock()
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	c, ok := s.camps[r.PathValue("id")]
	var st Status
	if ok {
		st = c.st
	}
	s.mu.Unlock()
	if !ok {
		reject(w, http.StatusNotFound, ReasonNotFound, "no such campaign", 0)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	c, ok := s.camps[id]
	var st Status
	if ok {
		st = c.st
	}
	s.mu.Unlock()
	if !ok {
		reject(w, http.StatusNotFound, ReasonNotFound, "no such campaign", 0)
		return
	}
	if st.State != StateDone {
		reject(w, http.StatusConflict, ReasonNotDone,
			fmt.Sprintf("campaign is %s%s", st.State, errSuffix(st.Err)), time.Second)
		return
	}
	blob, err := s.store.results(id)
	if err != nil {
		reject(w, http.StatusInternalServerError, "store_error", err.Error(), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(blob)
}

func errSuffix(e string) string {
	if e == "" {
		return ""
	}
	return ": " + e
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	c, ok := s.camps[id]
	if !ok {
		s.mu.Unlock()
		reject(w, http.StatusNotFound, ReasonNotFound, "no such campaign", 0)
		return
	}
	switch c.st.State {
	case StateQueued:
		if s.queue.remove(id) {
			c.st.State = StateCanceled
			st := c.st
			s.mu.Unlock()
			s.gaugeDepth()
			s.store.putStatus(id, &st)
			s.ops.Counter("simd.campaigns." + StateCanceled).Inc()
			s.logf("campaign %s canceled while queued", id)
			s.observe(id, StateCanceled)
			writeJSON(w, http.StatusOK, st)
			return
		}
		// A dispatcher popped it concurrently; fall through to the running
		// path.
		fallthrough
	case StateRunning:
		c.cancelReq = true
		if c.cancel != nil {
			c.cancel()
		}
		st := c.st
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, st)
		return
	default:
		st := c.st
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
		return
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "draining": s.draining.Load()})
}

// Stats snapshots the daemon's operational counters.
func (s *Server) Stats() Stats {
	states := map[string]int{
		StateQueued: 0, StateRunning: 0, StateDone: 0,
		StateFailed: 0, StateCanceled: 0, StateInterrupted: 0,
	}
	s.mu.Lock()
	for _, c := range s.camps {
		states[c.st.State]++ // commutative int fold: map order is immaterial
	}
	s.mu.Unlock()
	st := Stats{
		Draining:   s.draining.Load(),
		QueueDepth: s.queue.size(),
		Campaigns:  states,
		Admitted:   s.ops.CounterValue("simd.admitted"),
		Deduped:    s.ops.CounterValue("simd.deduped"),
		Resumed:    s.ops.CounterValue("simd.resumed"),
		Rejected: RejectStats{
			QueueFull:     s.ops.CounterValue("simd.rejected.queue_full"),
			ClientBacklog: s.ops.CounterValue("simd.rejected.client_backlog"),
			Draining:      s.ops.CounterValue("simd.rejected.draining"),
		},
		Trials: TrialStats{
			Executed: s.ops.CounterValue("simd.trials.executed"),
			Cached:   s.ops.CounterValue("simd.trials.cached"),
			Failed:   s.ops.CounterValue("simd.trials.failed"),
		},
	}
	if n := st.Trials.Executed + st.Trials.Cached; n > 0 {
		st.CacheHitRate = float64(st.Trials.Cached) / float64(n)
	}
	if st.SubmitToResultMS.Count = s.latency.Count(); st.SubmitToResultMS.Count > 0 {
		st.SubmitToResultMS.P50 = s.latency.Quantile(0.5)
		st.SubmitToResultMS.P90 = s.latency.Quantile(0.9)
		st.SubmitToResultMS.P99 = s.latency.Quantile(0.99)
		st.SubmitToResultMS.Max = s.latency.Quantile(1)
	}
	return st
}

// CampaignIDs returns the known campaign ids in sorted order (tests and
// debugging).
func (s *Server) CampaignIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.camps))
	for id := range s.camps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (s *Server) gaugeDepth() {
	s.ops.Gauge("simd.queue.depth").Set(float64(s.queue.size()))
}

func (s *Server) observe(id, state string) {
	if s.opts.Observe != nil {
		s.opts.Observe(id, state)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Log != nil {
		fmt.Fprintf(s.opts.Log, "simd: "+format+"\n", args...)
	}
}
