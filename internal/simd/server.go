package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	cas "mkos/internal/simd/store"
	"mkos/internal/simd/worker"
	"mkos/internal/sweep"
	"mkos/internal/sweep/campaigns"
	"mkos/internal/telemetry"
	"mkos/internal/telemetry/ops"
	oplog "mkos/internal/telemetry/ops/log"
)

// campaign is the in-memory state of one admitted campaign.
type campaign struct {
	id    string
	canon []byte // canonical spec JSON (what the id hashes)
	built *sweep.Campaign

	// st is the current wire status; guarded by Server.mu.
	st Status
	// cancel stops the running sweep; cancelReq distinguishes an operator
	// cancel from a drain. Guarded by Server.mu.
	cancel    context.CancelFunc
	cancelReq bool
	// busy marks a campaign that failed because another daemon held its
	// sweep journal (sweep.ErrJournalBusy): a transient conflict, surfaced
	// as HTTP 409 and cleared by resubmission. Guarded by Server.mu.
	busy bool
	// submitted anchors the submit-to-result latency observation (reset to
	// the requeue instant for campaigns resumed after a restart). runStart
	// anchors the per-trial ETA estimate; guarded by Server.mu.
	submitted time.Time
	runStart  time.Time

	// span is the campaign's ops flight-recorder span, opened at admission
	// (parented under the submitting request) and ended at settlement;
	// waitSpan covers admission-to-dispatch queue wait. The pointers are
	// written before the campaign is shared (or under Server.mu on a
	// requeue) and the spans themselves are internally synchronized and
	// nil-safe.
	span     *ops.Span
	waitSpan *ops.Span
}

// Server is the campaign daemon: admission, fair queueing, execution through
// the sweep orchestrator, persistence, and recovery.
type Server struct {
	opts   Options
	store  *store
	queue  *fairQueue
	ops    *telemetry.Registry
	log    *oplog.Logger
	tracer *ops.Tracer
	events *broker

	mu    sync.Mutex
	camps map[string]*campaign

	draining atomic.Bool
	hardKill atomic.Bool
	reqSeq   atomic.Int64

	//simlint:allow ctxflow — daemon-lifetime context: born in NewServer, canceled by Drain/Kill; it scopes the dispatcher pool, not any single call
	runCtx    context.Context
	runCancel context.CancelFunc
	wg        sync.WaitGroup

	latency *telemetry.Histogram
	mux     *http.ServeMux
	handler http.Handler
}

// NewServer opens (or creates) the store, recovers persisted campaigns —
// re-admitting every non-terminal one — and prepares the dispatcher pool.
// Call Start to begin executing campaigns and Handler to serve the API.
func NewServer(opts Options) (*Server, error) {
	if opts.Store == "" {
		return nil, errors.New("simd: Options.Store is required")
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 64
	}
	if opts.MaxPerClient <= 0 {
		opts.MaxPerClient = 8
	}
	if opts.DrainGrace <= 0 {
		opts.DrainGrace = 2 * time.Second
	}
	if opts.Build == nil {
		opts.Build = func(s *campaigns.Spec) (*sweep.Campaign, error) { return s.Campaign() }
	}
	level := oplog.Info
	if opts.LogLevel != "" {
		var err error
		if level, err = oplog.ParseLevel(opts.LogLevel); err != nil {
			return nil, err
		}
	}
	st, err := openStore(opts.Store, opts.StoreFault)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:   opts,
		store:  st,
		queue:  newFairQueue(opts.MaxQueue, opts.MaxPerClient),
		ops:    telemetry.NewRegistry(),
		log:    oplog.New(opts.Log, level),
		tracer: ops.New(0),
		events: newBroker(),
		camps:  make(map[string]*campaign),
	}
	s.latency = s.ops.Histogram("simd.submit_to_result_ms", telemetry.ExpBuckets(1, 2, 20))
	//simlint:allow ctxflow — root of the daemon-lifetime context; cancellation comes from Drain/Kill, not a caller
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	s.buildMux()
	// Scrub before recovery: recovery must never trust a corrupt spec or mark
	// a campaign done on the strength of corrupt results.
	rep, err := st.scrub()
	if err != nil {
		return nil, fmt.Errorf("simd: store scrub: %w", err)
	}
	if len(rep.Quarantined) > 0 {
		s.ops.Counter("simd.store.quarantined").Add(int64(len(rep.Quarantined)))
		s.log.Warn(fmt.Sprintf("store scrub quarantined %d corrupt artifacts", len(rep.Quarantined)),
			oplog.F("quarantined", len(rep.Quarantined)), oplog.F("checked", rep.Checked),
			oplog.F("paths", fmt.Sprint(rep.Quarantined)))
	}
	if rep.Checked > 0 || rep.Backfilled > 0 {
		s.log.Debug(fmt.Sprintf("store scrub verified %d artifacts (%d sidecars backfilled)", rep.Checked, rep.Backfilled),
			oplog.F("checked", rep.Checked), oplog.F("backfilled", rep.Backfilled))
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover re-admits persisted campaigns: terminal ones become servable
// history, non-terminal ones (queued, running or interrupted at the moment
// of a crash or drain) are rebuilt and requeued. The sweep journal makes the
// requeued work nearly free: every trial that finished in a previous
// incarnation restores from it without re-executing.
func (s *Server) recover() error {
	stored, err := s.store.scan()
	if err != nil {
		return err
	}
	for _, sc := range stored {
		st := sc.status
		st.ID = sc.id // trust the directory name over a torn status
		c := &campaign{id: sc.id, canon: sc.spec, st: st, submitted: time.Now()}
		resume := !c.st.Terminal()
		if !resume && c.st.State == StateDone {
			// A done status must have verifiable results behind it; if the
			// scrubber quarantined them (or they vanished), the journal still
			// holds every trial, so re-running is cheap and restores them.
			if _, rerr := s.store.results(sc.id); rerr != nil {
				resume = true
				s.log.Warn(fmt.Sprintf("campaign %s results missing or corrupt; re-running from journal", sc.id),
					oplog.F("campaign", sc.id), oplog.F("err", rerr.Error()))
			}
		}
		if !resume {
			s.camps[sc.id] = c
			continue
		}
		spec, perr := campaigns.ParseSpec(sc.spec)
		var built *sweep.Campaign
		if perr == nil {
			built, perr = s.opts.Build(spec)
		}
		if perr != nil {
			c.st.State = StateFailed
			c.st.Err = fmt.Sprintf("recovery: %v", perr)
			s.camps[sc.id] = c
			s.store.putStatus(sc.id, &c.st)
			s.log.Error(fmt.Sprintf("campaign %s failed in recovery", sc.id),
				oplog.F("campaign", sc.id), oplog.F("err", perr.Error()))
			continue
		}
		c.built = built
		c.st.State = StateQueued
		c.st.Total = len(built.Trials)
		c.st.Executed, c.st.Cached, c.st.Failed, c.st.Err = 0, 0, 0, ""
		c.st.Restarts, c.st.LastExit, c.st.Breaker = 0, "", ""
		//simlint:allow ctxflow — recovery runs before Start; there is no inbound request whose ctx these spans could inherit
		c.span, c.waitSpan = s.openSpans(context.Background(), sc.id, "recovered")
		s.camps[sc.id] = c
		// Recovered work bypasses the admission bounds: it was admitted by a
		// previous incarnation, and a client at its backlog limit with work
		// running at crash time legitimately exceeds them on requeue.
		if qerr := s.queue.pushRecovered(c.st.Client, c); qerr != nil {
			c.st.State = StateFailed
			c.st.Err = fmt.Sprintf("recovery requeue: %v", qerr)
			s.store.putStatus(sc.id, &c.st)
			continue
		}
		s.store.putStatus(sc.id, &c.st)
		s.ops.Counter("simd.resumed").Inc()
		s.log.Info(fmt.Sprintf("resumed campaign %s (%d trials)", sc.id, c.st.Total),
			oplog.F("campaign", sc.id), oplog.F("trials", c.st.Total))
		s.publishState(sc.id, StateQueued, "")
	}
	s.gaugeDepth()
	return nil
}

// openSpans starts a campaign's flight-recorder spans: the campaign root
// (its own Perfetto lane, causally parented under whatever span rides ctx —
// the submitting HTTP request, or nothing for a recovered campaign) and the
// queue-wait child the dispatcher ends when it pops the campaign.
func (s *Server) openSpans(ctx context.Context, id, how string) (span, waitSpan *ops.Span) {
	ctx = ops.Attach(ctx, s.tracer)
	ctx, span = ops.StartTrack(ctx, "campaign",
		ops.Arg{Key: "campaign", Val: id}, ops.Arg{Key: "admitted", Val: how})
	_, waitSpan = ops.Start(ctx, "queue-wait")
	return span, waitSpan
}

// Start launches the dispatcher pool.
func (s *Server) Start() {
	for i := 0; i < s.opts.Concurrency; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				c, ok := s.queue.pop()
				if !ok {
					return
				}
				s.gaugeDepth()
				s.runCampaign(s.runCtx, c)
			}
		}()
	}
}

// Drain is the graceful-shutdown path behind SIGTERM: stop admitting (new
// submissions see a typed 503, health checks go non-200), give running
// campaigns DrainGrace to finish naturally, then cancel them cooperatively —
// their finished trials are journaled, their statuses persist as interrupted
// — and return once every dispatcher has settled. Queued campaigns stay
// queued on disk; the next incarnation resumes everything. Live event
// streams are released so their handlers return.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.queue.close()
	settled := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(settled)
	}()
	select {
	case <-settled:
	case <-time.After(s.opts.DrainGrace):
		s.runCancel()
		<-settled
	}
	s.events.closeAll()
	s.log.Info(fmt.Sprintf("drained: %d campaigns left queued for the next start", s.queue.size()),
		oplog.F("queued", s.queue.size()))
}

// Kill is the crash-simulation path (tests and the chaos harness): stop
// everything mid-flight with no persistence courtesy — statuses stay
// whatever the last atomic write made them, exactly as a SIGKILL would leave
// them — and wait only for the dispatcher goroutines to exit so a successor
// Server may safely open the same store.
func (s *Server) Kill() {
	s.hardKill.Store(true)
	s.draining.Store(true)
	s.queue.close()
	s.runCancel()
	s.wg.Wait()
	s.events.closeAll()
}

// runCampaign executes one campaign — in process through the sweep
// orchestrator, or out of process through a supervised worker when
// Options.Worker.Cmd is set — and settles its state. ctx is the dispatcher's
// run context: canceling it (drain deadline, hard kill) cancels the sweep.
func (s *Server) runCampaign(ctx context.Context, c *campaign) {
	workerMode := len(s.opts.Worker.Cmd) > 0
	if c.built == nil {
		// Requeued after a terminal state (crash_loop, journal conflict) by a
		// daemon that recovered it from disk: rebuild from the canonical spec.
		spec, perr := campaigns.ParseSpec(c.canon)
		var built *sweep.Campaign
		if perr == nil {
			built, perr = s.opts.Build(spec)
		}
		if perr != nil {
			s.mu.Lock()
			c.waitSpan.End(ops.Arg{Key: "outcome", Val: "rejected"})
			s.mu.Unlock()
			s.settle(c, StateFailed, nil, fmt.Sprintf("rebuild: %v", perr))
			return
		}
		s.mu.Lock()
		c.built = built
		s.mu.Unlock()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.mu.Lock()
	c.cancel = cancel
	preCanceled := c.cancelReq
	c.st.State = StateRunning
	if workerMode {
		c.st.Breaker = "closed"
	}
	c.runStart = time.Now()
	st := c.st
	span, waitSpan := c.span, c.waitSpan
	s.mu.Unlock()
	waitSpan.End()
	if preCanceled {
		// A cancel accepted between the dispatcher's pop and this point found
		// c.cancel still nil; honor it now so the 202 the operator already
		// holds is not lost and the sweep does not run to completion.
		cancel()
	}
	if !s.hardKill.Load() {
		s.store.putStatus(c.id, &st)
	}
	s.observe(c.id, StateRunning)
	s.publishState(c.id, StateRunning, "")
	s.log.Info(fmt.Sprintf("campaign %s running", c.id),
		oplog.F("campaign", c.id), oplog.F("trials", st.Total))

	// The dispatcher runs on its own context (cancellation: drain or an
	// operator cancel), so the flight-recorder linkage is re-attached
	// explicitly: spans opened inside the sweep parent under the campaign
	// span the submit request opened.
	rctx := ops.WithSpan(ops.Attach(ctx, s.tracer), span)
	rctx, runSpan := ops.Start(rctx, "run")
	if workerMode {
		s.runWorker(rctx, runSpan, c)
		return
	}
	o, err := sweep.RunContext(rctx, c.built, sweep.Options{
		Workers:      s.opts.Workers,
		CacheDir:     s.store.cacheDir(),
		Version:      s.opts.Version,
		TrialTimeout: s.opts.TrialTimeout,
		CancelGrace:  s.opts.CancelGrace,
		OnTrial:      func(ev sweep.TrialEvent) { s.publishTrial(c, ev) },
	})
	if o != nil {
		s.ops.Counter("simd.trials.executed").Add(int64(o.Executed))
		s.ops.Counter("simd.trials.cached").Add(int64(o.Cached))
		s.ops.Counter("simd.trials.failed").Add(int64(o.Failed))
		s.ops.AddSnapshot(o.Ops.Snapshot())
		runSpan.End(
			ops.Arg{Key: "executed", Val: strconv.Itoa(o.Executed)},
			ops.Arg{Key: "cached", Val: strconv.Itoa(o.Cached)},
			ops.Arg{Key: "failed", Val: strconv.Itoa(o.Failed)})
	} else {
		runSpan.End(ops.Arg{Key: "err", Val: fmt.Sprint(err)})
	}

	s.mu.Lock()
	c.cancel = nil
	canceled := c.cancelReq
	s.mu.Unlock()

	switch {
	case err == nil:
		results := resultsJSON(o)
		var metrics bytes.Buffer
		if _, werr := o.Registry.WriteTo(&metrics); werr != nil {
			s.settle(c, StateFailed, outcomeTally(o), fmt.Sprintf("rendering metrics: %v", werr))
			return
		}
		if aerr := s.store.putArtifacts(c.id, results, metrics.Bytes()); aerr != nil {
			s.settle(c, StateFailed, outcomeTally(o), fmt.Sprintf("writing artifacts: %v", aerr))
			return
		}
		s.settle(c, StateDone, outcomeTally(o), "")
		s.log.Info(fmt.Sprintf("campaign %s: %d trials: %d executed, %d cached, %d failed",
			c.id, len(o.Results), o.Executed, o.Cached, o.Failed),
			oplog.F("campaign", c.id), oplog.F("executed", o.Executed),
			oplog.F("cached", o.Cached), oplog.F("failed", o.Failed))

	case errors.Is(err, sweep.ErrInterrupted):
		switch {
		case canceled:
			s.settle(c, StateCanceled, outcomeTally(o), "")
			s.log.Info(fmt.Sprintf("campaign %s canceled (%d trials unfinished)", c.id, o.Canceled),
				oplog.F("campaign", c.id), oplog.F("unfinished", o.Canceled))
		default:
			// Drain or hard kill: the campaign is not over, it is paused.
			// Finished trials are already journaled; persist the
			// interruption (unless we are simulating a crash, which gets no
			// courtesy writes) so the next incarnation requeues it.
			s.settle(c, StateInterrupted, outcomeTally(o), "")
			s.log.Info(fmt.Sprintf("campaign %s interrupted: %d trials journaled for resume", c.id, o.Executed+o.Cached),
				oplog.F("campaign", c.id), oplog.F("journaled", o.Executed+o.Cached))
		}

	case errors.Is(err, sweep.ErrJournalBusy):
		// Another daemon holds this campaign's journal — a deployment
		// overlap, not a campaign defect. The state is failed (this daemon
		// cannot run it) but the conflict is transient: results requests
		// answer 409 and a resubmission requeues the campaign.
		s.mu.Lock()
		c.busy = true
		s.mu.Unlock()
		s.settle(c, StateFailed, outcomeTally(o), err.Error())
		s.log.Warn(fmt.Sprintf("campaign %s journal is held by another daemon", c.id),
			oplog.F("campaign", c.id), oplog.F("err", err.Error()))

	default:
		s.settle(c, StateFailed, outcomeTally(o), err.Error())
		s.log.Error(fmt.Sprintf("campaign %s failed", c.id),
			oplog.F("campaign", c.id), oplog.F("err", err.Error()))
	}
}

// runWorker executes one campaign out of process through a supervised worker
// (internal/simd/worker). The worker writes the journal and the artifacts;
// the supervisor restarts it across deaths; this side relays trial events,
// mirrors restart accounting into the campaign status, and settles from the
// terminal Result.
func (s *Server) runWorker(ctx context.Context, runSpan *ops.Span, c *campaign) {
	w := s.opts.Worker
	// Preflight the journal flock so a cross-daemon conflict is detected
	// without burning worker incarnations into the crash-loop breaker. The
	// probe releases the flock on every path (it belongs to the probe's
	// descriptor); other probe errors are left for the worker to report with
	// full context.
	if _, perr := sweep.ProbeJournal(s.store.cacheDir(), s.opts.Version, c.built.Name, c.built.Seed); errors.Is(perr, sweep.ErrJournalBusy) {
		s.mu.Lock()
		c.cancel = nil
		c.busy = true
		s.mu.Unlock()
		runSpan.End(ops.Arg{Key: "err", Val: perr.Error()})
		s.settle(c, StateFailed, nil, perr.Error())
		s.log.Warn(fmt.Sprintf("campaign %s journal is held by another daemon", c.id),
			oplog.F("campaign", c.id), oplog.F("err", perr.Error()))
		return
	}
	sup := &worker.Supervisor{
		Cmd:              w.Cmd,
		Env:              w.Env,
		RSSLimit:         w.RSSLimit,
		Deadline:         w.Deadline,
		HeartbeatTimeout: w.HeartbeatTimeout,
		CrashLoopK:       w.CrashLoopK,
		BackoffBase:      w.BackoffBase,
		BackoffMax:       w.BackoffMax,
		JournalPath:      sweep.JournalPath(s.store.cacheDir(), s.opts.Version, c.built.Name, c.built.Seed),
		OnSpawn: func(attempt, pid int) {
			s.log.Info(fmt.Sprintf("campaign %s worker spawned (attempt %d, pid %d)", c.id, attempt, pid),
				oplog.F("campaign", c.id), oplog.F("attempt", attempt), oplog.F("pid", pid))
			if w.SpawnHook != nil {
				w.SpawnHook(c.built.Name, attempt, pid)
			}
		},
		OnTrial: func(ev worker.Event) {
			// Mirror the sweep's per-trial flight-recorder span so /v1/trace
			// tells the same story in either execution mode. Wall time already
			// elapsed in the worker; the span records it as an annotation.
			_, tspan := ops.StartTrack(ctx, "trial", ops.Arg{Key: "key", Val: ev.Key})
			args := []ops.Arg{{Key: "wall_ms", Val: fmt.Sprintf("%.3f", ev.WallMS)}}
			if ev.Cached {
				args = append(args, ops.Arg{Key: "cached", Val: "true"})
			}
			if ev.Err != "" {
				args = append(args, ops.Arg{Key: "err", Val: ev.Err})
			}
			tspan.End(args...)
			s.publishTrial(c, sweep.TrialEvent{
				Key: ev.Key, Err: ev.Err, Cached: ev.Cached,
				Wall: time.Duration(ev.WallMS * float64(time.Millisecond)),
				Done: ev.Done, Total: ev.Total,
			})
		},
		OnExit: func(attempt int, cause string) {
			s.mu.Lock()
			c.st.Restarts++
			c.st.LastExit = cause
			st := c.st
			s.mu.Unlock()
			if !s.hardKill.Load() {
				s.store.putStatus(c.id, &st)
			}
			s.ops.Counter("simd.worker.deaths").Inc()
			s.log.Warn(fmt.Sprintf("campaign %s worker died (%s); death %d", c.id, cause, st.Restarts),
				oplog.F("campaign", c.id), oplog.F("cause", cause), oplog.F("restarts", st.Restarts))
			s.events.publish(c.id, Event{Type: "worker", Err: cause, Restarts: st.Restarts})
		},
		Logf: func(format string, args ...any) {
			s.log.Debug(fmt.Sprintf(format, args...), oplog.F("campaign", c.id))
		},
	}
	res, err := sup.Run(ctx, worker.Request{
		Spec:           json.RawMessage(c.canon),
		CacheDir:       s.store.cacheDir(),
		ArtifactDir:    s.store.dir(c.id),
		Workers:        s.opts.Workers,
		TrialTimeoutMS: int64(s.opts.TrialTimeout / time.Millisecond),
		CancelGraceMS:  int64(s.opts.CancelGrace / time.Millisecond),
		Version:        s.opts.Version,
	})
	if err != nil {
		s.mu.Lock()
		c.cancel = nil
		s.mu.Unlock()
		runSpan.End(ops.Arg{Key: "err", Val: err.Error()})
		s.settle(c, StateFailed, nil, err.Error())
		s.log.Error(fmt.Sprintf("campaign %s worker supervisor failed", c.id),
			oplog.F("campaign", c.id), oplog.F("err", err.Error()))
		return
	}

	t := &tally{executed: res.Summary.Executed, cached: res.Summary.Cached, failed: res.Summary.Failed}
	s.ops.Counter("simd.trials.executed").Add(int64(t.executed))
	s.ops.Counter("simd.trials.cached").Add(int64(t.cached))
	s.ops.Counter("simd.trials.failed").Add(int64(t.failed))
	if res.Ops != nil {
		s.ops.AddSnapshot(res.Ops)
	}
	runSpan.End(
		ops.Arg{Key: "executed", Val: strconv.Itoa(t.executed)},
		ops.Arg{Key: "cached", Val: strconv.Itoa(t.cached)},
		ops.Arg{Key: "failed", Val: strconv.Itoa(t.failed)},
		ops.Arg{Key: "restarts", Val: strconv.Itoa(res.Restarts)})

	s.mu.Lock()
	c.cancel = nil
	canceled := c.cancelReq
	total := c.st.Total
	c.st.Restarts, c.st.LastExit = res.Restarts, res.LastExit
	if res.State == worker.StateCrashLoop {
		c.st.Breaker = "open"
	}
	s.mu.Unlock()

	switch res.State {
	case worker.StateDone:
		// The worker wrote (and checksummed) the artifacts before its done
		// event; nothing to persist here but the status.
		s.settle(c, StateDone, t, "")
		s.log.Info(fmt.Sprintf("campaign %s: %d trials: %d executed, %d cached, %d failed (%d worker restarts)",
			c.id, total, t.executed, t.cached, t.failed, res.Restarts),
			oplog.F("campaign", c.id), oplog.F("executed", t.executed),
			oplog.F("cached", t.cached), oplog.F("failed", t.failed),
			oplog.F("restarts", res.Restarts))

	case worker.StateInterrupted:
		if canceled {
			s.settle(c, StateCanceled, t, "")
			s.log.Info(fmt.Sprintf("campaign %s canceled", c.id), oplog.F("campaign", c.id))
		} else {
			s.settle(c, StateInterrupted, t, "")
			s.log.Info(fmt.Sprintf("campaign %s interrupted: %d trials journaled for resume", c.id, t.executed+t.cached),
				oplog.F("campaign", c.id), oplog.F("journaled", t.executed+t.cached))
		}

	case worker.StateCrashLoop:
		s.settle(c, StateCrashLoop, t, res.Err)
		s.log.Error(fmt.Sprintf("campaign %s crash-looped: breaker open after %d worker deaths (last: %s)",
			c.id, res.Restarts, res.LastExit),
			oplog.F("campaign", c.id), oplog.F("restarts", res.Restarts), oplog.F("last_exit", res.LastExit))

	default: // worker.StateFailed
		if res.Reason == worker.ReasonJournalBusy {
			s.mu.Lock()
			c.busy = true
			s.mu.Unlock()
			s.settle(c, StateFailed, t, res.Err)
			s.log.Warn(fmt.Sprintf("campaign %s journal is held by another daemon", c.id),
				oplog.F("campaign", c.id), oplog.F("err", res.Err))
			return
		}
		s.settle(c, StateFailed, t, res.Err)
		s.log.Error(fmt.Sprintf("campaign %s failed", c.id),
			oplog.F("campaign", c.id), oplog.F("err", res.Err))
	}
}

// tally is the trial accounting a settling campaign reports, shared by the
// in-process path (from sweep.Outcome) and the worker path (from the done
// event's Summary).
type tally struct {
	executed, cached, failed int
}

func outcomeTally(o *sweep.Outcome) *tally {
	if o == nil {
		return nil
	}
	return &tally{executed: o.Executed, cached: o.Cached, failed: o.Failed}
}

// settle moves a campaign to its post-run state, persists it (except under a
// simulated crash), publishes the state transition to live streams, and
// records the latency observation for terminal outcomes.
func (s *Server) settle(c *campaign, state string, t *tally, errMsg string) {
	s.mu.Lock()
	c.st.State = state
	c.st.Err = errMsg
	if t != nil {
		c.st.Executed, c.st.Cached, c.st.Failed = t.executed, t.cached, t.failed
	}
	st := c.st
	elapsed := time.Since(c.submitted)
	// End the span before the state change is observable (the mu release): a
	// client that polls the status to a terminal state and immediately
	// fetches the trace must find the campaign span in it.
	c.span.End(ops.Arg{Key: "state", Val: state})
	s.mu.Unlock()
	if !s.hardKill.Load() {
		s.store.putStatus(c.id, &st)
	}
	if st.Terminal() {
		s.latency.Observe(float64(elapsed) / float64(time.Millisecond))
		s.ops.Counter("simd.campaigns." + state).Inc()
	}
	s.observe(c.id, state)
	s.publishState(c.id, state, errMsg)
	if st.Terminal() {
		s.events.closeLog(c.id)
	}
}

// publishState emits a lifecycle transition on the campaign's event stream.
func (s *Server) publishState(id, state, errMsg string) {
	s.events.publish(id, Event{Type: "state", State: state, Err: errMsg})
}

// publishTrial relays one finished trial from the sweep hook onto the event
// stream, adding the wall-clock ETA estimate.
func (s *Server) publishTrial(c *campaign, ev sweep.TrialEvent) {
	e := Event{
		Type: "trial", Key: ev.Key, Cached: ev.Cached, TrialErr: ev.Err,
		WallMS: float64(ev.Wall) / float64(time.Millisecond),
		Done:   ev.Done, Total: ev.Total,
	}
	if ev.Done > 0 && ev.Done < ev.Total {
		s.mu.Lock()
		start := c.runStart
		s.mu.Unlock()
		if !start.IsZero() {
			elapsed := time.Since(start)
			e.ETAMS = int64(float64(elapsed) / float64(ev.Done) * float64(ev.Total-ev.Done) / float64(time.Millisecond))
		}
	}
	s.events.publish(c.id, e)
}

// resultsJSON renders the deterministic results artifact in exactly the
// complete-run format cmd/sweep writes, so a campaign served by the daemon
// byte-compares against one run by the CLI.
func resultsJSON(o *sweep.Outcome) []byte {
	blob, err := json.MarshalIndent(o.Results, "", "  ")
	if err != nil {
		// Results marshaled once already (per trial); a failure here is a
		// programming error surfaced as an empty artifact rather than a
		// daemon crash.
		return []byte("[]\n")
	}
	return append(blob, '\n')
}

// Handler returns the daemon's HTTP API, wrapped in the observability
// middleware (request ids, request spans, structured access logs).
func (s *Server) Handler() http.Handler { return s.handler }

// Tracer exposes the daemon's ops flight recorder (tests and /v1/trace).
func (s *Server) Tracer() *ops.Tracer { return s.tracer }

// ListenAndServe serves the API on addr until ctx is canceled, then drains:
// stops admitting, finishes or journals in-flight work, and shuts the
// listener down. It returns once the drain completes.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		err := srv.ListenAndServe()
		if !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	s.Start()
	s.log.Info(fmt.Sprintf("serving on %s (store %s)", addr, s.opts.Store),
		oplog.F("addr", addr), oplog.F("store", s.opts.Store))
	select {
	case err := <-errCh:
		s.queue.close()
		return err
	case <-ctx.Done():
	}
	s.log.Info("draining: admission closed, finishing or journaling in-flight campaigns")
	s.Drain()
	//simlint:allow ctxflow — shutdown runs after ctx.Done fired; deriving the HTTP-shutdown deadline from the already-canceled parent would skip the grace period
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shctx)
}

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux = mux
	s.handler = s.withObservability(mux)
}

// statusWriter captures the response status for the access log and forwards
// Flush, which the SSE handler requires through the middleware wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withObservability assigns every request an id, opens its flight-recorder
// span (the causal root every campaign span parents under), and writes one
// structured access-log line. Health and metrics probes log at debug so a
// tight wait-up or scrape loop does not flood the info log.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := "r" + strconv.FormatInt(s.reqSeq.Add(1), 10)
		ctx := ops.WithRequest(ops.Attach(r.Context(), s.tracer), reqID)
		ctx, span := ops.Start(ctx, r.Method+" "+r.URL.Path,
			ops.Arg{Key: "client", Val: clientID(r)})
		w.Header().Set("X-Simd-Request", reqID)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		span.End(ops.Arg{Key: "status", Val: strconv.Itoa(sw.status)})
		logf := s.log.Info
		if r.URL.Path == "/v1/healthz" || r.URL.Path == "/v1/metrics" {
			logf = s.log.Debug
		}
		logf(fmt.Sprintf("%s %s -> %d", r.Method, r.URL.Path, sw.status),
			oplog.F("request_id", reqID), oplog.F("method", r.Method),
			oplog.F("path", r.URL.Path), oplog.F("status", sw.status),
			oplog.F("ms", float64(time.Since(start))/float64(time.Millisecond)),
			oplog.F("client", clientID(r)))
	})
}

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func reject(w http.ResponseWriter, code int, reason, detail string, retryAfter time.Duration) {
	writeJSON(w, code, ErrorResponse{Error: reason, Detail: detail, RetryAfterMS: int64(retryAfter / time.Millisecond)})
}

// clientID resolves the requester's fairness identity: the self-declared
// X-Simd-Client header when present (trusted — fairness is cooperative
// scheduling, not security), else the peer host.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Simd-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxSpecBytes))
	if err != nil {
		reject(w, http.StatusRequestEntityTooLarge, ReasonTooLarge,
			fmt.Sprintf("spec bodies are capped at %d bytes", MaxSpecBytes), 0)
		return
	}
	if s.draining.Load() {
		s.ops.Counter("simd.rejected.draining").Inc()
		reject(w, http.StatusServiceUnavailable, ReasonDraining, "daemon is draining; retry against the next incarnation", time.Second)
		return
	}
	id, spec, err := SpecID(body)
	if err != nil {
		reject(w, http.StatusBadRequest, ReasonBadSpec, err.Error(), 0)
		return
	}
	client := clientID(r)

	s.mu.Lock()
	if c, ok := s.camps[id]; ok {
		// A resubmission un-wedges two terminal-but-retryable states: a
		// journal conflict (the other daemon may be gone) and a tripped
		// crash-loop breaker (the operator's signal to re-arm it). The
		// dispatcher rebuilds c.built from the canonical spec if recovery
		// left it nil.
		if (c.busy || c.st.State == StateCrashLoop) && c.st.Terminal() {
			s.requeueBusyLocked(w, r, c)
			return
		}
		st := c.st
		s.mu.Unlock()
		st.Deduped = true
		s.ops.Counter("simd.deduped").Inc()
		writeJSON(w, http.StatusOK, st)
		return
	}
	s.mu.Unlock()

	built, err := s.opts.Build(spec)
	if err != nil {
		reject(w, http.StatusBadRequest, ReasonBadSpec, err.Error(), 0)
		return
	}
	canon, err := json.Marshal(spec)
	if err != nil {
		reject(w, http.StatusBadRequest, ReasonBadSpec, err.Error(), 0)
		return
	}

	c := &campaign{
		id: id, canon: canon, built: built, submitted: time.Now(),
		st: Status{ID: id, Client: client, State: StateQueued, Total: len(built.Trials)},
	}
	// Spans open before the campaign is shared, so no concurrent reader ever
	// observes the pointers half-written.
	c.span, c.waitSpan = s.openSpans(r.Context(), id, "submitted")
	s.mu.Lock()
	if prev, ok := s.camps[id]; ok {
		// Two identical submissions raced past the first check; the earlier
		// winner owns the campaign.
		st := prev.st
		s.mu.Unlock()
		c.waitSpan.End(ops.Arg{Key: "outcome", Val: "deduped"})
		c.span.End(ops.Arg{Key: "state", Val: "deduped"})
		st.Deduped = true
		s.ops.Counter("simd.deduped").Inc()
		writeJSON(w, http.StatusOK, st)
		return
	}
	s.camps[id] = c
	// Snapshot the queued status while it is still ours alone: once pushed,
	// a dispatcher may pop and mutate c.st concurrently, so the admission
	// response must come from this copy.
	st := c.st
	s.mu.Unlock()

	// Durable before dispatchable: once the spec and queued status are on
	// disk, a crash cannot lose the admission, so persist before push and
	// respond after both.
	if err := s.store.admit(id, canon, &st); err != nil {
		s.forget(id)
		s.store.remove(id)
		c.waitSpan.End(ops.Arg{Key: "outcome", Val: "rejected"})
		c.span.End(ops.Arg{Key: "state", Val: "rejected"})
		if cas.IsNoSpace(err) {
			// A full disk must refuse work, not half-persist it: admitting a
			// campaign whose journal writes will fail would burn its trials.
			s.ops.Counter("simd.rejected.no_space").Inc()
			reject(w, http.StatusInsufficientStorage, ReasonNoSpace, err.Error(), 0)
			return
		}
		reject(w, http.StatusInternalServerError, "store_error", err.Error(), 0)
		return
	}
	if err := s.queue.push(client, c); err != nil {
		// The spec and queued status persisted just above must not outlive
		// the rejection: recovery would otherwise resurrect and run a
		// campaign whose client was explicitly refused.
		s.forget(id)
		s.store.remove(id)
		c.waitSpan.End(ops.Arg{Key: "outcome", Val: "rejected"})
		c.span.End(ops.Arg{Key: "state", Val: "rejected"})
		switch {
		case errors.Is(err, errQueueFull):
			s.ops.Counter("simd.rejected.queue_full").Inc()
			reject(w, http.StatusTooManyRequests, ReasonQueueFull,
				fmt.Sprintf("queue holds %d campaigns", s.opts.MaxQueue), 250*time.Millisecond)
		case errors.Is(err, errClientBacklog):
			s.ops.Counter("simd.rejected.client_backlog").Inc()
			reject(w, http.StatusTooManyRequests, ReasonClientBacklog,
				fmt.Sprintf("client %q already has %d campaigns queued", client, s.opts.MaxPerClient), 250*time.Millisecond)
		default:
			s.ops.Counter("simd.rejected.draining").Inc()
			reject(w, http.StatusServiceUnavailable, ReasonDraining, "daemon is draining", time.Second)
		}
		return
	}
	s.gaugeDepth()
	s.ops.Counter("simd.admitted").Inc()
	s.log.Info(fmt.Sprintf("admitted campaign %s (client %s, %d trials)", id, client, st.Total),
		oplog.F("campaign", id), oplog.F("request_id", ops.RequestID(r.Context())),
		oplog.F("client", client), oplog.F("trials", st.Total))
	s.observe(id, StateQueued)
	s.publishState(id, StateQueued, "")
	writeJSON(w, http.StatusAccepted, st)
}

// requeueBusyLocked retries a campaign that settled terminal-but-retryable:
// failed on a held journal (the resubmission is the operator's signal that
// the other daemon may be gone) or crash-looped (the resubmission re-arms the
// breaker). Called with s.mu held; releases it.
func (s *Server) requeueBusyLocked(w http.ResponseWriter, r *http.Request, c *campaign) {
	c.busy = false
	c.cancelReq = false
	c.st.State = StateQueued
	c.st.Executed, c.st.Cached, c.st.Failed, c.st.Err = 0, 0, 0, ""
	c.st.Restarts, c.st.LastExit, c.st.Breaker = 0, "", ""
	c.submitted = time.Now()
	c.span, c.waitSpan = s.openSpans(r.Context(), c.id, "requeued")
	st := c.st
	s.mu.Unlock()
	if err := s.queue.push(st.Client, c); err != nil {
		s.mu.Lock()
		c.busy = true
		c.st.State = StateFailed
		span, waitSpan := c.span, c.waitSpan
		s.mu.Unlock()
		waitSpan.End(ops.Arg{Key: "outcome", Val: "rejected"})
		span.End(ops.Arg{Key: "state", Val: StateFailed})
		reject(w, http.StatusConflict, ReasonJournalBusy,
			"campaign journal was held by another daemon and the retry could not be queued", time.Second)
		return
	}
	s.store.putStatus(c.id, &st)
	s.gaugeDepth()
	s.log.Info(fmt.Sprintf("requeued campaign %s after journal conflict", c.id),
		oplog.F("campaign", c.id), oplog.F("request_id", ops.RequestID(r.Context())))
	s.observe(c.id, StateQueued)
	s.publishState(c.id, StateQueued, "")
	writeJSON(w, http.StatusAccepted, st)
}

// forget removes a campaign that failed to finish admission; its partial
// store directory, if any, must not shadow a future resubmission.
func (s *Server) forget(id string) {
	s.mu.Lock()
	delete(s.camps, id)
	s.mu.Unlock()
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	c, ok := s.camps[r.PathValue("id")]
	var st Status
	if ok {
		st = c.st
	}
	s.mu.Unlock()
	if !ok {
		reject(w, http.StatusNotFound, ReasonNotFound, "no such campaign", 0)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleList returns every known campaign's status, sorted by id — the
// fleet view simctl top renders.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sts := make([]Status, 0, len(s.camps))
	for _, c := range s.camps {
		sts = append(sts, c.st)
	}
	s.mu.Unlock()
	sort.Slice(sts, func(i, j int) bool { return sts[i].ID < sts[j].ID })
	writeJSON(w, http.StatusOK, sts)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	c, ok := s.camps[id]
	var st Status
	var busy bool
	if ok {
		st, busy = c.st, c.busy
	}
	s.mu.Unlock()
	if !ok {
		reject(w, http.StatusNotFound, ReasonNotFound, "no such campaign", 0)
		return
	}
	if busy {
		reject(w, http.StatusConflict, ReasonJournalBusy,
			"campaign journal is held by another daemon on this cache dir; resubmit to retry", time.Second)
		return
	}
	if st.State != StateDone {
		reject(w, http.StatusConflict, ReasonNotDone,
			fmt.Sprintf("campaign is %s%s", st.State, errSuffix(st.Err)), time.Second)
		return
	}
	blob, err := s.store.results(id)
	if err != nil {
		reject(w, http.StatusInternalServerError, "store_error", err.Error(), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(blob)
}

func errSuffix(e string) string {
	if e == "" {
		return ""
	}
	return ": " + e
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	c, ok := s.camps[id]
	if !ok {
		s.mu.Unlock()
		reject(w, http.StatusNotFound, ReasonNotFound, "no such campaign", 0)
		return
	}
	switch c.st.State {
	case StateQueued:
		if s.queue.remove(id) {
			c.st.State = StateCanceled
			st := c.st
			// Spans end before the canceled state is observable, mirroring
			// settle: a status poll followed by a trace fetch must see them.
			c.waitSpan.End(ops.Arg{Key: "outcome", Val: "canceled"})
			c.span.End(ops.Arg{Key: "state", Val: StateCanceled})
			s.mu.Unlock()
			s.gaugeDepth()
			s.store.putStatus(id, &st)
			s.ops.Counter("simd.campaigns." + StateCanceled).Inc()
			s.log.Info(fmt.Sprintf("campaign %s canceled while queued", id),
				oplog.F("campaign", id), oplog.F("request_id", ops.RequestID(r.Context())))
			s.observe(id, StateCanceled)
			s.publishState(id, StateCanceled, "")
			s.events.closeLog(id)
			writeJSON(w, http.StatusOK, st)
			return
		}
		// A dispatcher popped it concurrently; fall through to the running
		// path.
		fallthrough
	case StateRunning:
		c.cancelReq = true
		if c.cancel != nil {
			c.cancel()
		}
		st := c.st
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, st)
		return
	default:
		st := c.st
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
		return
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics serves the ops registry as a Prometheus text exposition.
// The body is reproducible for a fixed registry state (stable ordering), so
// shell gates can parse and re-scrape it.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	ops.WriteExposition(w, s.ops.Snapshot())
}

// handleTrace serves the ops flight recorder as Chrome trace_event JSON —
// load it in Perfetto beside a campaign's sim-time trace.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.tracer.WriteChromeTrace(w)
}

// handleHealthz answers 200 while serving and 503 once a drain begins, so a
// load balancer stops routing to a dying daemon. The body names the state
// either way.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"ok": false, "draining": true, "state": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "draining": false, "state": "serving"})
}

// handleEvents streams a campaign's progress as Server-Sent Events: the full
// retained history first (SSE ids are the event sequence numbers), then live
// events until the campaign reaches a terminal state, the client goes away,
// or the daemon drains.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	c, ok := s.camps[id]
	var st Status
	if ok {
		st = c.st
	}
	s.mu.Unlock()
	if !ok {
		reject(w, http.StatusNotFound, ReasonNotFound, "no such campaign", 0)
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		reject(w, http.StatusInternalServerError, "stream_unsupported", "response writer cannot flush", 0)
		return
	}
	replay, ch := s.events.subscribe(id)
	if len(replay) == 0 && st.Terminal() {
		// A campaign finished by a previous incarnation has no in-memory
		// history; synthesize its terminal state so the stream still tells
		// the whole (remaining) story.
		replay = []Event{{Seq: 1, Type: "state", ID: id, State: st.State, Err: st.Err}}
		if ch != nil {
			s.events.unsubscribe(id, ch)
			ch = nil
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	fl.Flush()
	if ch == nil {
		return
	}
	defer s.events.unsubscribe(id, ch)
	for {
		select {
		case ev, live := <-ch:
			if !live {
				return // terminal state published, or the daemon drained
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE frames one event: id is the sequence number, event the type,
// data the JSON payload.
func writeSSE(w io.Writer, ev Event) {
	blob, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, blob)
}

// Stats snapshots the daemon's operational counters.
func (s *Server) Stats() Stats {
	states := map[string]int{
		StateQueued: 0, StateRunning: 0, StateDone: 0,
		StateFailed: 0, StateCanceled: 0, StateInterrupted: 0,
		StateCrashLoop: 0,
	}
	s.mu.Lock()
	for _, c := range s.camps {
		states[c.st.State]++ // commutative int fold: map order is immaterial
	}
	s.mu.Unlock()
	st := Stats{
		Draining:   s.draining.Load(),
		QueueDepth: s.queue.size(),
		Campaigns:  states,
		Admitted:   s.ops.CounterValue("simd.admitted"),
		Deduped:    s.ops.CounterValue("simd.deduped"),
		Resumed:    s.ops.CounterValue("simd.resumed"),
		Rejected: RejectStats{
			QueueFull:     s.ops.CounterValue("simd.rejected.queue_full"),
			ClientBacklog: s.ops.CounterValue("simd.rejected.client_backlog"),
			Draining:      s.ops.CounterValue("simd.rejected.draining"),
			NoSpace:       s.ops.CounterValue("simd.rejected.no_space"),
		},
		Trials: TrialStats{
			Executed: s.ops.CounterValue("simd.trials.executed"),
			Cached:   s.ops.CounterValue("simd.trials.cached"),
			Failed:   s.ops.CounterValue("simd.trials.failed"),
		},
	}
	if n := st.Trials.Executed + st.Trials.Cached; n > 0 {
		st.CacheHitRate = float64(st.Trials.Cached) / float64(n)
	}
	if st.SubmitToResultMS.Count = s.latency.Count(); st.SubmitToResultMS.Count > 0 {
		st.SubmitToResultMS.P50 = s.latency.Quantile(0.5)
		st.SubmitToResultMS.P90 = s.latency.Quantile(0.9)
		st.SubmitToResultMS.P99 = s.latency.Quantile(0.99)
		st.SubmitToResultMS.Max = s.latency.Quantile(1)
	}
	return st
}

// CampaignIDs returns the known campaign ids in sorted order (tests and
// debugging).
func (s *Server) CampaignIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.camps))
	for id := range s.camps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (s *Server) gaugeDepth() {
	s.ops.Gauge("simd.queue.depth").Set(float64(s.queue.size()))
}

func (s *Server) observe(id, state string) {
	if s.opts.Observe != nil {
		s.opts.Observe(id, state)
	}
}
