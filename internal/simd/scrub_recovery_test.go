package simd_test

import (
	"os"
	"path/filepath"
	"testing"

	"mkos/internal/simd"
)

// TestScrubQuarantinesAndRerunsCorruptResults: silent artifact corruption is
// caught by the startup scrubber, quarantined to *.corrupt, and the campaign
// — terminal "done" on disk but with unservable results — is re-run from its
// journal: zero trial bodies re-execute and the restored results.json is
// byte-identical to the original.
func TestScrubQuarantinesAndRerunsCorruptResults(t *testing.T) {
	ctx := testCtx(t)
	store := t.TempDir()
	h := newHarness()
	d := startDaemon(t, simd.Options{Store: store, Build: h.build})
	cl := d.client("scrub")

	st, err := cl.Submit(ctx, specJSON("scrubme", 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st, err = cl.Await(ctx, st.ID); err != nil || st.State != simd.StateDone {
		t.Fatalf("campaign: %+v, %v", st, err)
	}
	original, err := cl.Results(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	d.stop()

	// A bad disk flips the artifact's bytes behind the daemon's back.
	path := filepath.Join(store, "campaigns", st.ID, "results.json")
	if err := os.WriteFile(path, []byte("bit rot\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := newHarness()
	d2 := startDaemon(t, simd.Options{Store: store, Build: h2.build})
	defer d2.stop()
	cl2 := d2.client("scrub")

	st2, err := cl2.Await(ctx, st.ID)
	if err != nil || st2.State != simd.StateDone {
		t.Fatalf("recovered campaign: %+v, %v", st2, err)
	}
	// The re-run came entirely from the journal: no trial body executed.
	if st2.Executed != 0 || st2.Cached != 3 {
		t.Fatalf("recovered campaign executed=%d cached=%d, want 0/3", st2.Executed, st2.Cached)
	}
	if n := h2.entries.Load(); n != 0 {
		t.Fatalf("%d trial bodies re-executed after corruption; the journal must carry them all", n)
	}
	restored, err := cl2.Results(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(restored) != string(original) {
		t.Fatalf("restored results (%d bytes) differ from the originals (%d bytes)", len(restored), len(original))
	}
	// The corrupted artifact was preserved for the post-mortem.
	if _, serr := os.Stat(path + ".corrupt"); serr != nil {
		t.Fatalf("corrupt artifact not quarantined: %v", serr)
	}
}
