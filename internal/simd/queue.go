package simd

import (
	"errors"
	"sync"
)

// Typed admission errors surfaced by fairQueue.push; the HTTP layer maps
// them onto 429/503 bodies.
var (
	errQueueFull     = errors.New("simd: campaign queue is full")
	errClientBacklog = errors.New("simd: client backlog limit reached")
	errQueueClosed   = errors.New("simd: queue closed")
)

// fairQueue is the bounded admission queue with per-client fairness: each
// client owns a FIFO backlog, and pop serves clients round-robin, one
// campaign per turn. A client that fills its backlog allowance therefore
// delays every other client by at most one campaign per round — the
// flooding client waits behind itself, not the others behind it.
//
// Bounds are enforced at push (typed errors, never blocking), so admission
// control is backpressure the client sees immediately rather than a stalled
// connection.
type fairQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	max       int // total queued bound
	perClient int // per-client backlog bound

	backlog map[string][]*campaign // client -> FIFO backlog
	ring    []string               // round-robin order of clients with backlog
	cursor  int                    // next ring slot to serve
	depth   int
	closed  bool
}

func newFairQueue(max, perClient int) *fairQueue {
	q := &fairQueue{max: max, perClient: perClient, backlog: make(map[string][]*campaign)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits one campaign for client, or refuses with a typed error.
func (q *fairQueue) push(client string, c *campaign) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	if q.depth >= q.max {
		return errQueueFull
	}
	if len(q.backlog[client]) >= q.perClient {
		return errClientBacklog
	}
	q.enqueueLocked(client, c)
	return nil
}

// pushRecovered enqueues a campaign recovered from the store, bypassing the
// admission bounds: recovered work was admitted by a previous incarnation, so
// re-gating it on restart would permanently fail campaigns the daemon promised
// to resume — a client at its backlog limit with work running at crash time
// legitimately exceeds the queued bounds.
func (q *fairQueue) pushRecovered(client string, c *campaign) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	q.enqueueLocked(client, c)
	return nil
}

func (q *fairQueue) enqueueLocked(client string, c *campaign) {
	if len(q.backlog[client]) == 0 {
		q.ring = append(q.ring, client)
	}
	q.backlog[client] = append(q.backlog[client], c)
	q.depth++
	q.cond.Signal()
}

// pop blocks for the next campaign in round-robin client order. It returns
// ok=false once the queue is closed — immediately, even with campaigns still
// queued, because close means "stop dispatching" (drain persists the
// backlog; it must not run it).
func (q *fairQueue) pop() (*campaign, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, false
		}
		if q.depth > 0 {
			if q.cursor >= len(q.ring) {
				q.cursor = 0
			}
			client := q.ring[q.cursor]
			b := q.backlog[client]
			c := b[0]
			if len(b) == 1 {
				delete(q.backlog, client)
				q.ring = append(q.ring[:q.cursor], q.ring[q.cursor+1:]...)
				// cursor now points at the next client already.
			} else {
				q.backlog[client] = b[1:]
				q.cursor++
			}
			q.depth--
			return c, true
		}
		q.cond.Wait()
	}
}

// remove unqueues a campaign by id (operator cancel of queued work),
// reporting whether it was found.
func (q *fairQueue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	// Scan via the ring (every client with backlog is on it) so the walk
	// order is defined.
	for _, client := range append([]string(nil), q.ring...) {
		b := q.backlog[client]
		for i, c := range b {
			if c.id != id {
				continue
			}
			if len(b) == 1 {
				delete(q.backlog, client)
				for j, r := range q.ring {
					if r == client {
						q.ring = append(q.ring[:j], q.ring[j+1:]...)
						if q.cursor > j {
							q.cursor--
						}
						break
					}
				}
			} else {
				q.backlog[client] = append(append([]*campaign(nil), b[:i]...), b[i+1:]...)
			}
			q.depth--
			return true
		}
	}
	return false
}

// close wakes every popper with ok=false; queued campaigns stay queued (the
// store already has them as such — drain relies on that).
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// size returns the current depth.
func (q *fairQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}
