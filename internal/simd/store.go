package simd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// store is the daemon's on-disk state: one directory per campaign holding
// the canonical spec, the latest status, and — once done — the
// deterministic artifacts, next to the shared sweep cache/journal
// directory. Layout:
//
//	<root>/cache/                    shared trial cache + campaign journals
//	<root>/campaigns/<id>/spec.json   canonical spec (written once, at admit)
//	<root>/campaigns/<id>/status.json latest persisted Status
//	<root>/campaigns/<id>/results.json deterministic results (done only)
//	<root>/campaigns/<id>/metrics.txt  deterministic merged metrics (done only)
//
// Every write is atomic (temp file + rename), so a SIGKILL at any instant
// leaves each file either absent, previous, or current — never torn. The
// recovery scan treats a campaign whose status is non-terminal (or whose
// status.json is missing or torn) as unfinished and re-admits it; the sweep
// journal then makes the resume free.
type store struct {
	root string
}

func openStore(root string) (*store, error) {
	s := &store{root: root}
	for _, d := range []string{s.cacheDir(), s.campaignsDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("simd: creating store: %w", err)
		}
	}
	return s, nil
}

func (s *store) cacheDir() string            { return filepath.Join(s.root, "cache") }
func (s *store) campaignsDir() string        { return filepath.Join(s.root, "campaigns") }
func (s *store) dir(id string) string        { return filepath.Join(s.campaignsDir(), id) }
func (s *store) path(id, name string) string { return filepath.Join(s.dir(id), name) }

// writeFileAtomic lands blob at path via a same-directory temp file and
// rename.
func writeFileAtomic(path string, blob []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	_, werr := tmp.Write(blob)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(name)
		return fmt.Errorf("writing %s: %v/%v/%v", path, werr, serr, cerr)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// admit persists a newly admitted campaign: its spec (the canonical form its
// ID hashes) and its queued status. Persist-then-respond ordering is what
// makes admission durable: once a client holds a 202, a crash cannot lose
// the campaign.
func (s *store) admit(id string, canonSpec []byte, st *Status) error {
	if err := os.MkdirAll(s.dir(id), 0o755); err != nil {
		return err
	}
	if err := writeFileAtomic(s.path(id, "spec.json"), canonSpec); err != nil {
		return err
	}
	return s.putStatus(id, st)
}

// putStatus persists the campaign's current status.
func (s *store) putStatus(id string, st *Status) error {
	blob, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return writeFileAtomic(s.path(id, "status.json"), append(blob, '\n'))
}

// putArtifacts persists the deterministic campaign artifacts. results.json
// is written before status flips to done, so a "done" status always has
// results behind it; a crash between the two re-runs the campaign from the
// journal and rewrites byte-identical artifacts.
func (s *store) putArtifacts(id string, results, metrics []byte) error {
	if err := writeFileAtomic(s.path(id, "results.json"), results); err != nil {
		return err
	}
	return writeFileAtomic(s.path(id, "metrics.txt"), metrics)
}

// remove deletes a campaign's directory — the undo of admit, for campaigns
// whose admission did not complete (queue rejection after the spec was
// persisted). A queued status left behind would resurrect the rejected
// submission at the next recovery, bypassing admission control.
func (s *store) remove(id string) error {
	return os.RemoveAll(s.dir(id))
}

// results loads the deterministic results artifact.
func (s *store) results(id string) ([]byte, error) {
	return os.ReadFile(s.path(id, "results.json"))
}

// storedCampaign is one recovered campaign from a store scan.
type storedCampaign struct {
	id     string
	spec   []byte // canonical spec.json
	status Status // zero-valued (State "") when status.json is missing/torn
}

// scan enumerates the persisted campaigns in lexical id order (ReadDir
// sorts), tolerating torn or missing status files. A campaign directory
// without a parseable spec is quarantined by rename — it cannot be resumed
// and must not shadow a future resubmission of the same id.
func (s *store) scan() ([]storedCampaign, error) {
	ents, err := os.ReadDir(s.campaignsDir())
	if err != nil {
		return nil, err
	}
	var out []storedCampaign
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		spec, err := os.ReadFile(s.path(id, "spec.json"))
		if err != nil {
			os.Rename(s.dir(id), s.dir(id)+".corrupt")
			continue
		}
		sc := storedCampaign{id: id, spec: spec}
		if blob, err := os.ReadFile(s.path(id, "status.json")); err == nil {
			var st Status
			if json.Unmarshal(blob, &st) == nil {
				sc.status = st
			}
		}
		out = append(out, sc)
	}
	return out, nil
}
