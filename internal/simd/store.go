package simd

import (
	"encoding/json"
	"fmt"

	cas "mkos/internal/simd/store"
)

// store adapts the integrity-checked campaign store (internal/simd/store) to
// the daemon's vocabulary. Layout:
//
//	<root>/cache/                    shared trial cache + campaign journals
//	<root>/campaigns/<id>/spec.json   canonical spec (written once, at admit)
//	<root>/campaigns/<id>/status.json latest persisted Status
//	<root>/campaigns/<id>/results.json deterministic results (done only)
//	<root>/campaigns/<id>/metrics.txt  deterministic merged metrics (done only)
//
// Every write is atomic (temp file + rename), so a SIGKILL at any instant
// leaves each file either absent, previous, or current — never torn. The
// deterministic artifacts additionally carry sha256 sidecars, verified on
// read and scrubbed at startup; status.json is exempt (it is rewritten on
// every transition and recovery already tolerates a stale or missing one).
type store struct {
	d *cas.Dir
}

func openStore(root string, fault cas.WriteFault) (*store, error) {
	d, err := cas.Open(root)
	if err != nil {
		return nil, fmt.Errorf("simd: creating store: %w", err)
	}
	d.Fault = fault
	return &store{d: d}, nil
}

func (s *store) cacheDir() string            { return s.d.CacheDir() }
func (s *store) dir(id string) string        { return s.d.CampaignDir(id) }
func (s *store) path(id, name string) string { return s.d.Path(id, name) }

// admit persists a newly admitted campaign: its spec (the canonical form its
// ID hashes, sidecar-checksummed — a corrupted spec is unresumable) and its
// queued status. Persist-then-respond ordering is what makes admission
// durable: once a client holds a 202, a crash cannot lose the campaign.
func (s *store) admit(id string, canonSpec []byte, st *Status) error {
	if err := s.d.WriteArtifact(s.d.Path(id, "spec.json"), canonSpec); err != nil {
		return err
	}
	return s.putStatus(id, st)
}

// putStatus persists the campaign's current status.
func (s *store) putStatus(id string, st *Status) error {
	blob, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return s.d.WriteFile(s.d.Path(id, "status.json"), append(blob, '\n'))
}

// putArtifacts persists the deterministic campaign artifacts with sidecars.
// results.json is written before status flips to done, so a "done" status
// always has results behind it; a crash between the two re-runs the campaign
// from the journal and rewrites byte-identical artifacts.
func (s *store) putArtifacts(id string, results, metrics []byte) error {
	if err := s.d.WriteArtifact(s.d.Path(id, "results.json"), results); err != nil {
		return err
	}
	return s.d.WriteArtifact(s.d.Path(id, "metrics.txt"), metrics)
}

// remove deletes a campaign's directory — the undo of admit, for campaigns
// whose admission did not complete (queue rejection after the spec was
// persisted). A queued status left behind would resurrect the rejected
// submission at the next recovery, bypassing admission control.
func (s *store) remove(id string) error { return s.d.Remove(id) }

// results loads the deterministic results artifact, verifying its sidecar; a
// mismatch quarantines the file and returns store.ErrCorrupt.
func (s *store) results(id string) ([]byte, error) {
	return s.d.ReadArtifact(s.d.Path(id, "results.json"))
}

// scrub verifies every checksummed artifact in the store, quarantining
// mismatches and backfilling missing sidecars (pre-integrity stores upgrade
// in place).
func (s *store) scrub() (cas.ScrubReport, error) { return s.d.Scrub() }

// storedCampaign is one recovered campaign from a store scan.
type storedCampaign struct {
	id     string
	spec   []byte // canonical spec.json
	status Status // zero-valued (State "") when status.json is missing/torn
}

// scan enumerates the persisted campaigns in lexical id order, tolerating
// torn or missing status files. A campaign directory without a verifiable
// spec is quarantined by rename — it cannot be resumed and must not shadow a
// future resubmission of the same id.
func (s *store) scan() ([]storedCampaign, error) {
	stored, err := s.d.Scan()
	if err != nil {
		return nil, err
	}
	out := make([]storedCampaign, 0, len(stored))
	for _, c := range stored {
		sc := storedCampaign{id: c.ID, spec: c.Spec}
		if len(c.Status) > 0 {
			var st Status
			if json.Unmarshal(c.Status, &st) == nil {
				sc.status = st
			}
		}
		out = append(out, sc)
	}
	return out, nil
}
