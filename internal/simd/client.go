package simd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a simd daemon with the retry discipline a shared-machine
// campaign client needs: deterministic capped-backoff retries on typed
// rejections (429 backpressure, 503 drain) and on transport errors — the
// daemon being down mid-restart is an expected, recoverable condition here,
// not a failure — and idempotent resubmission, which is safe because a
// campaign's identity is the content hash of its spec: a resubmitted spec
// lands on the same campaign, never a duplicate execution.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// ClientID is the fairness identity sent as X-Simd-Client; empty lets
	// the daemon key fairness on the peer address.
	ClientID string
	// HTTP is the transport; nil uses a default client with no global
	// timeout (individual calls are bounded by their contexts).
	HTTP *http.Client

	// MaxAttempts bounds one operation's tries; <= 0 means 10.
	MaxAttempts int
	// BaseDelay seeds the deterministic backoff schedule: attempt n waits
	// min(BaseDelay·2ⁿ, MaxDelay). No jitter — a reproducible client
	// produces reproducible load, which is what the chaos and flood
	// harnesses need. <= 0 means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the schedule; <= 0 means 2s.
	MaxDelay time.Duration
	// PollInterval paces Await's status polls; <= 0 means 150ms.
	PollInterval time.Duration

	// WrapBody, when non-nil, wraps every response body reader before it is
	// consumed — the seam the slow-client chaos injector plugs into.
	WrapBody func(io.Reader) io.Reader
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}

func (c *Client) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 10
}

// Backoff returns the deterministic delay before retry attempt i (0-based):
// min(BaseDelay·2ⁱ, MaxDelay), no jitter. Exported so harnesses can predict
// a client's exact retry schedule.
func (c *Client) Backoff(i int) time.Duration {
	base, max := c.BaseDelay, c.MaxDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << uint(i)
	if d <= 0 || d > max { // <= 0 guards shift overflow
		return max
	}
	return d
}

func (c *Client) poll() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 150 * time.Millisecond
}

// apiError is a typed non-2xx response.
type apiError struct {
	code int
	resp ErrorResponse
}

func (e *apiError) Error() string {
	return fmt.Sprintf("simd: HTTP %d: %s%s", e.code, e.resp.Error, errSuffix(e.resp.Detail))
}

// retryable reports whether the failure is worth another attempt: transport
// errors (daemon down or restarting) and explicit backpressure are; typed
// client mistakes (bad spec, unknown id) are not. 409s are retried only for
// their transient typed reasons — journal_busy (a deployment overlap that
// clears when the other daemon exits) and not_done (results polled a moment
// early) — so a conflict that will never resolve by waiting fails fast
// instead of burning the whole backoff schedule. 507 (disk full) never
// retries: it clears when an operator frees space, not when the client waits.
func retryable(err error) bool {
	var ae *apiError
	if errors.As(err, &ae) {
		switch ae.code {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable,
			http.StatusInternalServerError:
			return true
		case http.StatusConflict:
			return ae.resp.Error == ReasonJournalBusy || ae.resp.Error == ReasonNotDone
		}
		return false
	}
	return err != nil // transport-level
}

// do issues one request and decodes the response into out (when non-nil),
// returning the raw body bytes.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if c.ClientID != "" {
		req.Header.Set("X-Simd-Client", c.ClientID)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var r io.Reader = resp.Body
	if c.WrapBody != nil {
		r = c.WrapBody(resp.Body)
	}
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		var er ErrorResponse
		json.Unmarshal(blob, &er)
		return blob, &apiError{code: resp.StatusCode, resp: er}
	}
	if out != nil {
		if err := json.Unmarshal(blob, out); err != nil {
			return blob, fmt.Errorf("simd: decoding %s %s response: %w", method, path, err)
		}
	}
	return blob, nil
}

// retry runs op under the deterministic backoff schedule until it succeeds,
// exhausts MaxAttempts, or the context ends.
func (c *Client) retry(ctx context.Context, op func() error) error {
	var err error
	for i := 0; i < c.attempts(); i++ {
		if err = op(); err == nil || !retryable(err) {
			return err
		}
		select {
		case <-time.After(c.Backoff(i)):
		case <-ctx.Done():
			return fmt.Errorf("%w (last error: %v)", ctx.Err(), err)
		}
	}
	return fmt.Errorf("simd: giving up after %d attempts: %w", c.attempts(), err)
}

// Submit sends a raw campaign spec, retrying through backpressure, drain and
// daemon restarts. Resubmission is idempotent: the spec's content hash is
// its campaign identity, so a retry after a lost response converges on the
// campaign the first attempt created.
func (c *Client) Submit(ctx context.Context, spec []byte) (Status, error) {
	var st Status
	err := c.retry(ctx, func() error {
		_, err := c.do(ctx, http.MethodPost, "/v1/campaigns", spec, &st)
		return err
	})
	return st, err
}

// Status fetches a campaign's current status (one attempt; Await wraps it
// with retries).
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	var st Status
	_, err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id, nil, &st)
	return st, err
}

// Await polls until the campaign reaches a terminal state. Transport errors
// are absorbed indefinitely (bounded only by ctx): the daemon dying and
// coming back mid-campaign is precisely the scenario a crash-tolerant
// client rides out.
func (c *Client) Await(ctx context.Context, id string) (Status, error) {
	for {
		st, err := c.Status(ctx, id)
		switch {
		case err == nil && st.Terminal():
			return st, nil
		case err != nil && !retryable(err):
			return st, err
		}
		select {
		case <-time.After(c.poll()):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Results fetches the deterministic results.json of a done campaign,
// retrying through restarts.
func (c *Client) Results(ctx context.Context, id string) ([]byte, error) {
	var blob []byte
	err := c.retry(ctx, func() error {
		var err error
		blob, err = c.do(ctx, http.MethodGet, "/v1/campaigns/"+id+"/results", nil, nil)
		return err
	})
	return blob, err
}

// Cancel requests cancellation of a queued or running campaign.
func (c *Client) Cancel(ctx context.Context, id string) (Status, error) {
	var st Status
	_, err := c.do(ctx, http.MethodDelete, "/v1/campaigns/"+id, nil, &st)
	return st, err
}

// Stats fetches the daemon's operational counters.
func (c *Client) Stats(ctx context.Context) (Stats, []byte, error) {
	var st Stats
	blob, err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, blob, err
}

// List fetches every known campaign's status, sorted by id.
func (c *Client) List(ctx context.Context) ([]Status, error) {
	var sts []Status
	_, err := c.do(ctx, http.MethodGet, "/v1/campaigns", nil, &sts)
	return sts, err
}

// Metrics fetches the daemon's Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	return c.do(ctx, http.MethodGet, "/v1/metrics", nil, nil)
}

// Trace fetches the daemon's ops flight recorder as Chrome trace_event
// JSON.
func (c *Client) Trace(ctx context.Context) ([]byte, error) {
	return c.do(ctx, http.MethodGet, "/v1/trace", nil, nil)
}

// ErrStreamClosed is returned by Tail when the event stream ends before the
// campaign reaches a terminal state — the daemon drained, or the connection
// dropped. The campaign itself is typically still resumable; re-Tail after
// the daemon returns.
var ErrStreamClosed = errors.New("simd: event stream closed before a terminal state")

// Tail subscribes to a campaign's SSE progress stream and calls fn for
// every event — first the replayed history, then live events — returning
// nil once a terminal state event arrives, ctx.Err() if the context ends,
// ErrStreamClosed if the daemon closes the stream early (drain), or fn's
// error if it aborts the tail.
func (c *Client) Tail(ctx context.Context, id string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/campaigns/"+id+"/events", nil)
	if err != nil {
		return err
	}
	if c.ClientID != "" {
		req.Header.Set("X-Simd-Client", c.ClientID)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		blob, _ := io.ReadAll(resp.Body)
		var er ErrorResponse
		json.Unmarshal(blob, &er)
		return &apiError{code: resp.StatusCode, resp: er}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				return fmt.Errorf("simd: decoding event: %w", err)
			}
			data = ""
			if err := fn(ev); err != nil {
				return err
			}
			if ev.Type == "state" {
				if st := (Status{State: ev.State}); st.Terminal() {
					return nil
				}
			}
		}
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return ErrStreamClosed
}

// WaitUp polls /v1/healthz until the daemon answers or ctx ends — the
// start-up barrier scripts need between launching the daemon and flooding
// it.
func (c *Client) WaitUp(ctx context.Context) error {
	for {
		if _, err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil); err == nil {
			return nil
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return fmt.Errorf("simd: daemon never came up: %w", ctx.Err())
		}
	}
}
