package worker

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"mkos/internal/telemetry"
)

// Supervisor runs one campaign to a terminal state through a sequence of
// worker incarnations: spawn, feed the Request, watch the event stream, and
// on worker death back off and respawn — the journal makes every respawn a
// resume. It enforces the containment policy (heartbeat timeout, RSS
// ceiling, wall deadline) by SIGKILLing the worker, and the crash-loop
// circuit breaker by giving up after CrashLoopK consecutive deaths with no
// progress.
type Supervisor struct {
	// Cmd is the worker argv (Cmd[0] is the binary — typically the daemon's
	// own executable with the hidden -worker flag). Required.
	Cmd []string
	// Env is the worker's environment; nil inherits the daemon's.
	Env []string

	// RSSLimit, when > 0, SIGKILLs a worker whose resident set exceeds it
	// (bytes). Polled from /proc/<pid>/statm; a no-op on platforms without
	// it.
	RSSLimit int64
	// Deadline, when > 0, bounds the whole campaign's wall time across all
	// incarnations; exceeding it is a terminal failure, not a restart.
	Deadline time.Duration
	// HeartbeatTimeout is how long the supervisor tolerates silence on the
	// event pipe before consulting the journal's mtime and, if that is stale
	// too, declaring the worker wedged. <= 0 means 10s.
	HeartbeatTimeout time.Duration
	// KillGrace is how long a SIGTERMed worker gets to report a terminal
	// event before SIGKILL. <= 0 means 2s.
	KillGrace time.Duration

	// CrashLoopK trips the breaker after K consecutive deaths with no
	// progress (no non-cached trial event that incarnation). <= 0 means 3.
	CrashLoopK int
	// BackoffBase and BackoffMax shape the deterministic restart delay (see
	// Backoff).
	BackoffBase, BackoffMax time.Duration

	// JournalPath is the campaign's sweep journal; its mtime is the
	// second-opinion liveness signal when the pipe goes quiet.
	JournalPath string

	// OnSpawn is called with each incarnation's attempt index and pid,
	// immediately after fork — the chaos WorkerKiller arms here.
	OnSpawn func(attempt, pid int)
	// OnTrial is called for every trial event, in journal order.
	OnTrial func(Event)
	// OnExit is called after each worker death (not for a clean done exit)
	// with the attempt index and the exit cause.
	OnExit func(attempt int, cause string)
	// Logf receives supervisor diagnostics and the worker's re-logged stderr
	// lines; nil discards them.
	Logf func(format string, args ...any)
}

// Result is the campaign's terminal outcome as the supervisor saw it.
type Result struct {
	// State is one of the worker terminal states, or StateCrashLoop.
	State  string
	Reason string
	// Summary and Ops come from the final done event, when there was one.
	Summary Summary
	Ops     *telemetry.Snapshot
	Err     string
	// Restarts counts worker deaths across the whole run; LastExit names the
	// most recent death's cause ("signal: killed", "exit status 2",
	// "rss_limit", "heartbeat_stall", "deadline").
	Restarts int
	LastExit string
}

// outcome kinds of a single worker incarnation.
const (
	onceDied     = iota // pipe EOF without a done event
	onceDone            // worker reported a terminal done event
	onceCanceled        // ctx canceled; worker drained or was killed
	onceDeadline        // campaign wall deadline hit
)

type onceOut struct {
	kind       int
	done       *Event // terminal event, when the worker produced one
	cause      string // death cause for onceDied / onceDeadline
	progressed bool   // saw a non-cached trial this incarnation
}

// Run drives the campaign to a terminal Result. The returned error is
// reserved for supervisor-level failures (unable to spawn at all); every
// worker outcome, including crash loops, is a Result.
func (s *Supervisor) Run(ctx context.Context, req Request) (*Result, error) {
	if len(s.Cmd) == 0 {
		return nil, fmt.Errorf("worker: supervisor has no command")
	}
	k := s.CrashLoopK
	if k <= 0 {
		k = 3
	}
	logf := s.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// The deadline spans all incarnations: restarts do not buy time.
	var deadlineCh <-chan time.Time
	if s.Deadline > 0 {
		dt := time.NewTimer(s.Deadline)
		defer dt.Stop()
		deadlineCh = dt.C
	}

	streak, restarts := 0, 0
	lastExit := ""
	for attempt := 0; ; attempt++ {
		out, err := s.runOnce(ctx, req, attempt, deadlineCh, logf)
		if err != nil {
			return nil, err
		}
		switch out.kind {
		case onceDone:
			res := resultFromEvent(out.done)
			res.Restarts, res.LastExit = restarts, lastExit
			return res, nil
		case onceCanceled:
			res := &Result{State: StateInterrupted}
			if out.done != nil { // the worker drained and reported for itself
				res = resultFromEvent(out.done)
			}
			res.Restarts, res.LastExit = restarts, lastExit
			return res, nil
		case onceDeadline:
			return &Result{
				State:    StateFailed,
				Err:      fmt.Sprintf("campaign deadline (%s) exceeded", s.Deadline),
				Restarts: restarts,
				LastExit: "deadline",
			}, nil
		case onceDied:
			restarts++
			lastExit = out.cause
			if out.progressed {
				streak = 1 // progress forgives the past, not this death
			} else {
				streak++
			}
			if s.OnExit != nil {
				s.OnExit(attempt, out.cause)
			}
			if streak >= k {
				return &Result{
					State:    StateCrashLoop,
					Err:      fmt.Sprintf("crash loop: %d consecutive worker deaths with no progress (last: %s)", streak, out.cause),
					Restarts: restarts,
					LastExit: out.cause,
				}, nil
			}
			delay := Backoff(streak-1, s.BackoffBase, s.BackoffMax)
			logf("worker died (%s); restarting in %s (death %d, streak %d/%d)", out.cause, delay, restarts, streak, k)
			bt := time.NewTimer(delay)
			select {
			case <-bt.C:
			case <-ctx.Done():
				bt.Stop()
				return &Result{State: StateInterrupted, Restarts: restarts, LastExit: lastExit}, nil
			}
		}
	}
}

// runOnce runs a single worker incarnation to pipe EOF or a supervisor
// intervention.
func (s *Supervisor) runOnce(ctx context.Context, req Request, attempt int, deadlineCh <-chan time.Time, logf func(string, ...any)) (*onceOut, error) {
	hbTO := s.HeartbeatTimeout
	if hbTO <= 0 {
		hbTO = 10 * time.Second
	}
	grace := s.KillGrace
	if grace <= 0 {
		grace = 2 * time.Second
	}

	cmd := exec.Command(s.Cmd[0], s.Cmd[1:]...)
	if len(s.Env) > 0 {
		cmd.Env = s.Env
	}
	setPdeathsig(cmd)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("worker stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("worker stdout: %w", err)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, fmt.Errorf("worker stderr: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawning worker: %w", err)
	}
	pid := cmd.Process.Pid
	if s.OnSpawn != nil {
		s.OnSpawn(attempt, pid)
	}

	go func() { // a worker that dies before reading makes this a broken pipe; EOF reports it
		enc := json.NewEncoder(stdin)
		_ = enc.Encode(req)
		stdin.Close()
	}()

	events := make(chan Event, 64)
	var readers sync.WaitGroup
	readers.Add(2)
	go func() {
		defer readers.Done()
		defer close(events)
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			var ev Event
			if json.Unmarshal(sc.Bytes(), &ev) == nil && ev.Ev != "" {
				events <- ev
			}
		}
	}()
	go func() {
		defer readers.Done()
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			logf("worker[%d]: %s", pid, sc.Text())
		}
	}()

	// reap drains the pipes and collects the exit status; Wait must not run
	// before the pipe readers finish.
	reap := func() string {
		for range events {
		}
		readers.Wait()
		if werr := cmd.Wait(); werr != nil {
			return werr.Error()
		}
		return "exit status 0"
	}

	hbTimer := time.NewTimer(hbTO)
	defer hbTimer.Stop()
	resetHB := func() {
		if !hbTimer.Stop() {
			select {
			case <-hbTimer.C:
			default:
			}
		}
		hbTimer.Reset(hbTO)
	}
	var lastJournal time.Time
	if st, serr := os.Stat(s.JournalPath); serr == nil {
		lastJournal = st.ModTime()
	}

	var rssCh <-chan time.Time
	if s.RSSLimit > 0 {
		rt := time.NewTicker(100 * time.Millisecond)
		defer rt.Stop()
		rssCh = rt.C
	}

	out := &onceOut{}
	for {
		select {
		case ev, ok := <-events:
			if !ok { // EOF without a done event: the worker died
				readers.Wait()
				cause := "exit status 0"
				if werr := cmd.Wait(); werr != nil {
					cause = werr.Error()
				}
				out.kind, out.cause = onceDied, cause
				return out, nil
			}
			switch ev.Ev {
			case EvHello, EvHB:
				resetHB()
			case EvTrial:
				resetHB()
				if !ev.Cached {
					out.progressed = true
				}
				if s.OnTrial != nil {
					s.OnTrial(ev)
				}
			case EvDone:
				done := ev
				out.kind, out.done = onceDone, &done
				out.cause = reap()
				return out, nil
			}
		case <-ctx.Done():
			// Cooperative cancel: SIGTERM, give the worker KillGrace to
			// journal in-flight trials and report, then SIGKILL.
			_ = cmd.Process.Signal(syscall.SIGTERM)
			gt := time.NewTimer(grace)
			defer gt.Stop()
			for {
				select {
				case ev, ok := <-events:
					if !ok {
						readers.Wait()
						_ = cmd.Wait()
						out.kind = onceCanceled
						return out, nil
					}
					if ev.Ev == EvTrial {
						if !ev.Cached {
							out.progressed = true
						}
						if s.OnTrial != nil {
							s.OnTrial(ev)
						}
					}
					if ev.Ev == EvDone {
						done := ev
						out.kind, out.done = onceCanceled, &done
						reap()
						return out, nil
					}
				case <-gt.C:
					_ = cmd.Process.Kill()
					reap()
					out.kind = onceCanceled
					return out, nil
				}
			}
		case <-deadlineCh:
			_ = cmd.Process.Kill()
			reap()
			out.kind, out.cause = onceDeadline, "deadline"
			return out, nil
		case <-rssCh:
			if rss, ok := rssBytes(pid); ok && rss > s.RSSLimit {
				logf("worker[%d] rss %d bytes exceeds limit %d; killing", pid, rss, s.RSSLimit)
				_ = cmd.Process.Kill()
				reap()
				out.kind, out.cause = onceDied, "rss_limit"
				return out, nil
			}
		case <-hbTimer.C:
			// Quiet pipe: the journal's mtime gets the second opinion — a
			// worker grinding through a slow trial still appends on retire.
			if st, serr := os.Stat(s.JournalPath); serr == nil && st.ModTime().After(lastJournal) {
				lastJournal = st.ModTime()
				hbTimer.Reset(hbTO)
				continue
			}
			logf("worker[%d] heartbeat stalled for %s; killing", pid, hbTO)
			_ = cmd.Process.Kill()
			reap()
			out.kind, out.cause = onceDied, "heartbeat_stall"
			return out, nil
		}
	}
}

func resultFromEvent(ev *Event) *Result {
	r := &Result{State: ev.State, Reason: ev.Reason, Err: ev.Err, Ops: ev.Ops}
	if ev.Summary != nil {
		r.Summary = *ev.Summary
	}
	return r
}
