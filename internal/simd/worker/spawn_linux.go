//go:build linux

package worker

import (
	"os/exec"
	"syscall"
)

// setPdeathsig ties the worker's life to the daemon's: if the daemon is
// SIGKILLed, the kernel delivers SIGKILL to the worker too, so a crashed
// daemon never leaves an orphan holding the campaign's journal flock.
func setPdeathsig(c *exec.Cmd) {
	if c.SysProcAttr == nil {
		c.SysProcAttr = &syscall.SysProcAttr{}
	}
	c.SysProcAttr.Pdeathsig = syscall.SIGKILL
}
