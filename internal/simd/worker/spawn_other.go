//go:build !linux

package worker

import "os/exec"

// setPdeathsig is linux-only; elsewhere an orphaned worker simply finishes
// its campaign (the journal flock it holds is released when it exits).
func setPdeathsig(c *exec.Cmd) {}
