//go:build !linux

package worker

// rssBytes has no portable implementation; the RSS ceiling is enforced only
// where /proc exists.
func rssBytes(pid int) (int64, bool) { return 0, false }
