package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"mkos/internal/simd/store"
	"mkos/internal/sweep"
	"mkos/internal/sweep/campaigns"
)

// BuildFunc converts a parsed spec into the runnable campaign. The nil
// default is the production path, campaigns.Spec.Campaign; test binaries
// acting as workers substitute synthetic trial bodies, exactly as simd
// Options.Build does in-process.
type BuildFunc func(*campaigns.Spec) (*sweep.Campaign, error)

// Main is the worker-mode entry point: cmd/simd calls it (and exits with
// its return value) when invoked with the hidden -worker flag, and test
// binaries call it when re-executed as workers. It reads one Request from
// stdin, runs the campaign through sweep.RunContext against the shared
// cache dir, streams Events on stdout and exits: 0 after any properly
// reported terminal state (done, interrupted, failed — the outcome is in
// the done event, not the exit code), 2 on a protocol error before the
// campaign could start.
//
// SIGTERM and SIGINT cancel the campaign cooperatively: finished trials are
// already journaled, the done event reports "interrupted", and the next
// incarnation resumes with zero re-executed trials.
func Main(stdin io.Reader, stdout, stderr io.Writer, build BuildFunc) int {
	if build == nil {
		build = func(s *campaigns.Spec) (*sweep.Campaign, error) { return s.Campaign() }
	}
	var req Request
	if err := json.NewDecoder(stdin).Decode(&req); err != nil {
		fmt.Fprintf(stderr, "worker: decoding request: %v\n", err)
		return 2
	}

	emit := newEmitter(stdout)
	emit.send(Event{Ev: EvHello, PID: os.Getpid()})

	//simlint:allow ctxflow — worker-process root context: born at exec, canceled by SIGTERM/SIGINT; there is no caller to inherit from
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// The liveness ticker beats independently of trial completions, so a
	// long-running trial does not read as a wedged worker; the per-trial
	// Heartbeat hook beats on every retired trial as well.
	hb := req.HeartbeatMS
	if hb <= 0 {
		hb = 250
	}
	tick := time.NewTicker(time.Duration(hb) * time.Millisecond)
	defer tick.Stop()
	tickDone := make(chan struct{})
	defer close(tickDone)
	go func() {
		for {
			select {
			case <-tick.C:
				emit.send(Event{Ev: EvHB})
			case <-tickDone:
				return
			}
		}
	}()

	spec, err := campaigns.ParseSpec(req.Spec)
	if err != nil {
		emit.done(Event{Ev: EvDone, State: StateFailed, Err: err.Error()})
		return 0
	}
	built, err := build(spec)
	if err != nil {
		emit.done(Event{Ev: EvDone, State: StateFailed, Err: err.Error()})
		return 0
	}

	//simlint:allow ctxflow — Main is the worker-process entrypoint: its ctx is the signal context above, and its only callers (cmd/simd -worker, test TestMains) are exec boundaries with no context to pass
	o, err := sweep.RunContext(ctx, built, sweep.Options{
		Workers:      req.Workers,
		CacheDir:     req.CacheDir,
		Version:      req.Version,
		TrialTimeout: time.Duration(req.TrialTimeoutMS) * time.Millisecond,
		CancelGrace:  time.Duration(req.CancelGraceMS) * time.Millisecond,
		Heartbeat:    func() { emit.send(Event{Ev: EvHB}) },
		OnTrial: func(ev sweep.TrialEvent) {
			emit.send(Event{
				Ev: EvTrial, Key: ev.Key, Err: ev.Err, Cached: ev.Cached,
				WallMS: float64(ev.Wall) / float64(time.Millisecond),
				Done:   ev.Done, Total: ev.Total,
			})
		},
	})

	ev := Event{Ev: EvDone}
	if o != nil {
		ev.Summary = &Summary{Executed: o.Executed, Cached: o.Cached, Failed: o.Failed, Canceled: o.Canceled}
		ev.Ops = o.Ops.Snapshot()
	}
	switch {
	case err == nil:
		if werr := writeArtifacts(req.ArtifactDir, o); werr != nil {
			ev.State, ev.Err = StateFailed, fmt.Sprintf("writing artifacts: %v", werr)
			break
		}
		ev.State = StateDone
	case isInterrupted(err):
		ev.State = StateInterrupted
	case isJournalBusy(err):
		ev.State, ev.Reason, ev.Err = StateFailed, ReasonJournalBusy, err.Error()
	default:
		ev.State, ev.Err = StateFailed, err.Error()
	}
	emit.done(ev)
	return 0
}

func isInterrupted(err error) bool { return errors.Is(err, sweep.ErrInterrupted) }
func isJournalBusy(err error) bool { return errors.Is(err, sweep.ErrJournalBusy) }

// writeArtifacts renders and lands the deterministic campaign artifacts in
// exactly the format cmd/sweep and the in-process daemon path produce, so a
// supervised campaign byte-compares against both. results.json is written
// before metrics.txt; both carry sha256 sidecars.
func writeArtifacts(dir string, o *sweep.Outcome) error {
	if dir == "" {
		return nil
	}
	results, err := json.MarshalIndent(o.Results, "", "  ")
	if err != nil {
		return err
	}
	var metrics bytes.Buffer
	if _, err := o.Registry.WriteTo(&metrics); err != nil {
		return err
	}
	d := &store.Dir{Root: dir}
	if err := d.WriteArtifact(filepath.Join(dir, "results.json"), append(results, '\n')); err != nil {
		return err
	}
	return d.WriteArtifact(filepath.Join(dir, "metrics.txt"), metrics.Bytes())
}

// emitter serializes protocol events onto the stdout pipe: hb ticks, trial
// events (already serialized under the sweep emit lock) and the final done
// event race here, and a done event must be the last line the supervisor
// ever reads.
type emitter struct {
	mu     sync.Mutex
	enc    *json.Encoder
	closed bool
}

func newEmitter(w io.Writer) *emitter { return &emitter{enc: json.NewEncoder(w)} }

func (e *emitter) send(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.enc.Encode(ev) // a broken pipe means the supervisor is gone; nothing to report to
}

func (e *emitter) done(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	e.enc.Encode(ev)
}
