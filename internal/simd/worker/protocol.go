// Package worker is simd's out-of-process trial execution layer: the daemon
// dispatches each campaign to a supervised child process (a re-exec of its
// own binary in a hidden worker mode) that runs the sweep orchestrator
// against the shared cache directory and exits. Process isolation is the
// paper's failure model applied to the service itself: a runaway trial's
// RSS, a wedged model loop or a panic that escapes recovery now kills one
// campaign's worker — never the daemon and never the other tenants.
//
// Correctness under worker death costs nothing new: every finished trial is
// already in the campaign's crash-safe journal (internal/sweep), so a
// SIGKILLed worker is indistinguishable from a SIGKILLed daemon — the
// supervisor restarts it, the journal restores every finished trial, zero
// trials re-execute and the merged artifacts are byte-identical to an
// uninterrupted run.
//
// The protocol is deliberately minimal: the supervisor writes one Request
// (JSON) to the worker's stdin and the worker answers newline-delimited JSON
// Events on stdout — hello (pid), hb (liveness), trial (one finished trial,
// in journal order) and done (terminal summary). Worker death is the absence
// of a done event: the pipe reaches EOF and the exit status names the cause.
// stderr is free-form and re-logged line by line through the daemon's
// structured logger.
//
// The Supervisor enforces the containment policy — heartbeat timeouts
// (pipe events plus journal mtime), an RSS ceiling polled from
// /proc/<pid>/statm, a per-campaign wall deadline, deterministic capped
// backoff between restarts, and a crash-loop circuit breaker that gives up
// on a spec after K consecutive worker deaths with no progress.
package worker

import (
	"encoding/json"
	"time"

	"mkos/internal/telemetry"
)

// Request is the campaign assignment the supervisor writes to the worker's
// stdin, complete enough that the worker shares nothing with the daemon but
// the filesystem.
type Request struct {
	// Spec is the canonical campaign spec JSON (what the campaign id
	// hashes); the worker parses and builds it itself.
	Spec json.RawMessage `json:"spec"`
	// CacheDir is the shared sweep cache/journal directory.
	CacheDir string `json:"cache_dir"`
	// ArtifactDir, when non-empty, receives results.json and metrics.txt
	// (with sha256 sidecars) on success — written by the worker, atomically,
	// before the done event, so a daemon that sees "done" always finds the
	// artifacts behind it.
	ArtifactDir string `json:"artifact_dir,omitempty"`
	// Workers, TrialTimeoutMS and CancelGraceMS thread through to
	// sweep.Options.
	Workers        int   `json:"workers,omitempty"`
	TrialTimeoutMS int64 `json:"trial_timeout_ms,omitempty"`
	CancelGraceMS  int64 `json:"cancel_grace_ms,omitempty"`
	// Version pins the sweep cache/journal version ("" = CodeVersion()).
	Version string `json:"version,omitempty"`
	// HeartbeatMS paces the worker's liveness ticker; <= 0 means 250ms.
	HeartbeatMS int64 `json:"heartbeat_ms,omitempty"`
}

// Event kinds flowing worker → supervisor.
const (
	EvHello = "hello" // first event: the worker is up; PID is set
	EvHB    = "hb"    // liveness beat (ticker + per-trial heartbeat hook)
	EvTrial = "trial" // one finished trial, in journal append order
	EvDone  = "done"  // terminal: State, Summary and Ops are set
)

// Worker terminal states carried by a done event.
const (
	StateDone        = "done"        // campaign ran to completion (failures included)
	StateInterrupted = "interrupted" // SIGTERM/cancel: journaled progress, resumable
	StateFailed      = "failed"      // campaign-level error (bad spec, store write, busy journal)
	// StateCrashLoop is produced by the Supervisor, never by a worker: K
	// consecutive worker deaths with no progress tripped the breaker.
	StateCrashLoop = "crash_loop"
)

// ReasonJournalBusy marks a failed done event whose cause was a held sweep
// journal flock (sweep.ErrJournalBusy) — transient, retryable by
// resubmission, and distinguished so the daemon can surface its typed 409.
const ReasonJournalBusy = "journal_busy"

// Event is one newline-delimited JSON message on the worker's stdout.
type Event struct {
	Ev string `json:"ev"`

	// PID rides the hello event.
	PID int `json:"pid,omitempty"`

	// Trial fields (EvTrial), mirroring sweep.TrialEvent.
	Key    string  `json:"key,omitempty"`
	Err    string  `json:"err,omitempty"` // trial error, or terminal error on EvDone
	Cached bool    `json:"cached,omitempty"`
	WallMS float64 `json:"wall_ms,omitempty"`
	Done   int     `json:"done,omitempty"`
	Total  int     `json:"total,omitempty"`

	// Done fields (EvDone).
	State   string              `json:"state,omitempty"`
	Reason  string              `json:"reason,omitempty"`
	Summary *Summary            `json:"summary,omitempty"`
	Ops     *telemetry.Snapshot `json:"ops,omitempty"`
}

// Summary is the done event's trial accounting, mirroring sweep.Outcome.
type Summary struct {
	Executed int `json:"executed"`
	Cached   int `json:"cached"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled,omitempty"`
}

// Backoff returns the deterministic capped restart delay before attempt i
// (0-based): min(base·2ⁱ, max), no jitter — the same schedule the simd
// client applies to its retries, so a chaos run's restart cadence is exactly
// reproducible. base <= 0 means 50ms, max <= 0 means 2s.
func Backoff(i int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << uint(i)
	if d <= 0 || d > max { // <= 0 guards shift overflow
		return max
	}
	return d
}
