//go:build linux

package worker

import (
	"os"
	"strconv"
	"strings"
)

// rssBytes reads the worker's resident set size from /proc/<pid>/statm
// (field 2, in pages). ok is false when the process is gone or the file is
// unreadable — a vanished worker is the pipe EOF's problem, not the RSS
// ceiling's.
func rssBytes(pid int) (int64, bool) {
	b, err := os.ReadFile("/proc/" + strconv.Itoa(pid) + "/statm")
	if err != nil {
		return 0, false
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0, false
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0, false
	}
	return pages * int64(os.Getpagesize()), true
}
