package worker_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mkos/internal/simd/worker"
	"mkos/internal/sweep"
	"mkos/internal/sweep/campaigns"
)

// The supervisor is tested against real child processes: TestMain turns this
// test binary into a fake worker when WORKER_TEST_MODE is set, so every test
// exercises the actual spawn/pipe/SIGKILL machinery rather than a mock.
//
// Modes:
//
//	ok       real worker.Main with synthetic trial bodies (WORKER_TEST_SLOW_MS
//	         paces each trial)
//	die-mid  like ok, but trial 2 kills the process the first time it runs
//	         (a marker file at WORKER_TEST_MARKER makes later runs survive)
//	die-each like ok, but every incarnation exits after executing one fresh
//	         trial — progress on every death, so the breaker must stay closed
//	crash    exits immediately: a worker that never makes progress
//	hang     says hello, then goes silent: a wedged worker
//	balloon  says hello, allocates far past any sane RSS limit, keeps
//	         heartbeating: a runaway trial's memory
func TestMain(m *testing.M) {
	switch os.Getenv("WORKER_TEST_MODE") {
	case "":
		os.Exit(m.Run())
	case "ok":
		os.Exit(worker.Main(os.Stdin, os.Stdout, os.Stderr, testBuild))
	case "die-mid":
		os.Exit(worker.Main(os.Stdin, os.Stdout, os.Stderr, buildDieMid))
	case "die-each":
		os.Exit(worker.Main(os.Stdin, os.Stdout, os.Stderr, buildDieEach))
	case "crash":
		os.Exit(3)
	case "hang":
		json.NewEncoder(os.Stdout).Encode(worker.Event{Ev: worker.EvHello, PID: os.Getpid()})
		time.Sleep(time.Hour)
	case "balloon":
		enc := json.NewEncoder(os.Stdout)
		enc.Encode(worker.Event{Ev: worker.EvHello, PID: os.Getpid()})
		ballast := make([]byte, 256<<20)
		for i := 0; i < len(ballast); i += 4096 {
			ballast[i] = byte(i)
		}
		for {
			enc.Encode(worker.Event{Ev: worker.EvHB})
			time.Sleep(50 * time.Millisecond)
			runtime.KeepAlive(ballast)
		}
	}
	os.Exit(0)
}

// testBuild mirrors the simd test harness: spec.Runs synthetic trials whose
// results depend only on the derived trial seed, so resumed and uninterrupted
// runs are indistinguishable.
func testBuild(spec *campaigns.Spec) (*sweep.Campaign, error) {
	slow, _ := strconv.Atoi(os.Getenv("WORKER_TEST_SLOW_MS"))
	c := &sweep.Campaign{Name: spec.Name, Seed: spec.Seed}
	runs := spec.Runs
	if runs <= 0 {
		runs = 3
	}
	for i := 0; i < runs; i++ {
		i := i
		c.Trials = append(c.Trials, sweep.Trial{
			Key:  fmt.Sprintf("wk/t%03d", i),
			Spec: map[string]int{"i": i},
			Run: func(t *sweep.T) (any, error) {
				if slow > 0 {
					time.Sleep(time.Duration(slow) * time.Millisecond)
				}
				return map[string]int64{"seed": t.Seed}, nil
			},
		})
	}
	return c, nil
}

// buildDieMid kills the worker from inside trial 2's body on the first
// execution only: two trials journal, the process dies, and the next
// incarnation must resume past them.
func buildDieMid(spec *campaigns.Spec) (*sweep.Campaign, error) {
	c, err := testBuild(spec)
	if err != nil {
		return nil, err
	}
	marker := os.Getenv("WORKER_TEST_MARKER")
	inner := c.Trials[2].Run
	c.Trials[2].Run = func(t *sweep.T) (any, error) {
		if _, serr := os.Stat(marker); os.IsNotExist(serr) {
			os.WriteFile(marker, []byte("died once\n"), 0o644)
			os.Exit(7)
		}
		return inner(t)
	}
	return c, nil
}

// buildDieEach kills the worker at the start of its second fresh (non-cached)
// trial execution: every incarnation journals exactly one new trial before
// dying, so the campaign crawls to completion one restart per trial — with
// progress every time, which must keep the crash-loop breaker closed.
func buildDieEach(spec *campaigns.Spec) (*sweep.Campaign, error) {
	c, err := testBuild(spec)
	if err != nil {
		return nil, err
	}
	var fresh int32
	for ti := range c.Trials {
		inner := c.Trials[ti].Run
		c.Trials[ti].Run = func(t *sweep.T) (any, error) {
			if atomic.AddInt32(&fresh, 1) > 1 {
				os.Exit(9)
			}
			return inner(t)
		}
	}
	return c, nil
}

// env builds a fake-worker environment on top of the test's own.
func env(pairs ...string) []string { return append(os.Environ(), pairs...) }

func specJSON(name string, seed int64, runs int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"name":%q,"seed":%d,"runs":%d}`, name, seed, runs))
}

// trialLog collects OnTrial events thread-safely.
type trialLog struct {
	mu  sync.Mutex
	evs []worker.Event
}

func (l *trialLog) add(ev worker.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.evs = append(l.evs, ev)
}

func (l *trialLog) executedKeys() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for _, ev := range l.evs {
		if !ev.Cached {
			out = append(out, ev.Key)
		}
	}
	return out
}

func TestBackoff(t *testing.T) {
	base, max := 10*time.Millisecond, 100*time.Millisecond
	for i, want := range []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond,
	} {
		if got := worker.Backoff(i, base, max); got != want {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, want)
		}
	}
	// Defaults and shift-overflow guard.
	if got := worker.Backoff(0, 0, 0); got != 50*time.Millisecond {
		t.Fatalf("default base: %v", got)
	}
	if got := worker.Backoff(500, 0, 0); got != 2*time.Second {
		t.Fatalf("overflow attempt must cap at max: %v", got)
	}
}

func TestSupervisorCleanRun(t *testing.T) {
	dir := t.TempDir()
	art := filepath.Join(dir, "art")
	var log trialLog
	sup := &worker.Supervisor{
		Cmd:     []string{os.Args[0]},
		Env:     env("WORKER_TEST_MODE=ok"),
		OnTrial: log.add,
	}
	res, err := sup.Run(context.Background(), worker.Request{
		Spec: specJSON("clean", 3, 4), CacheDir: filepath.Join(dir, "cache"),
		ArtifactDir: art, Workers: 1, Version: "wkr-v1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != worker.StateDone || res.Restarts != 0 {
		t.Fatalf("clean run: %+v, want done with 0 restarts", res)
	}
	if res.Summary.Executed != 4 || res.Summary.Cached != 0 {
		t.Fatalf("summary %+v, want 4 executed / 0 cached", res.Summary)
	}
	if got := log.executedKeys(); len(got) != 4 {
		t.Fatalf("OnTrial saw %d executed trials, want 4: %v", len(got), got)
	}
	// The worker wrote verified artifacts before reporting done.
	for _, name := range []string{"results.json", "metrics.txt"} {
		if _, serr := os.Stat(filepath.Join(art, name)); serr != nil {
			t.Fatalf("artifact %s missing: %v", name, serr)
		}
		if _, serr := os.Stat(filepath.Join(art, name+".sha256")); serr != nil {
			t.Fatalf("artifact sidecar %s.sha256 missing: %v", name, serr)
		}
	}
}

// TestSupervisorResumesDeadWorker is the tentpole contract in one process
// tree: a worker that dies mid-campaign is restarted, the journal restores
// its finished trials, no trial executes twice, and the final artifacts are
// byte-identical to an undisturbed run of the same campaign.
func TestSupervisorResumesDeadWorker(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	marker := filepath.Join(dir, "died")
	var log trialLog
	var deaths []string
	sup := &worker.Supervisor{
		Cmd:         []string{os.Args[0]},
		Env:         env("WORKER_TEST_MODE=die-mid", "WORKER_TEST_MARKER="+marker),
		BackoffBase: time.Millisecond,
		JournalPath: sweep.JournalPath(cache, "wkr-v1", "resume", 5),
		OnTrial:     log.add,
		OnExit:      func(attempt int, cause string) { deaths = append(deaths, cause) },
	}
	res, err := sup.Run(context.Background(), worker.Request{
		Spec: specJSON("resume", 5, 5), CacheDir: cache,
		ArtifactDir: filepath.Join(dir, "art"), Workers: 1, Version: "wkr-v1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != worker.StateDone {
		t.Fatalf("resumed campaign state %q (err %q), want done", res.State, res.Err)
	}
	if res.Restarts != 1 || res.LastExit != "exit status 7" {
		t.Fatalf("restarts=%d last_exit=%q, want 1 / \"exit status 7\"", res.Restarts, res.LastExit)
	}
	if len(deaths) != 1 || deaths[0] != "exit status 7" {
		t.Fatalf("OnExit saw %v", deaths)
	}
	// The final incarnation found trials 0 and 1 in the journal and executed
	// only the remaining three.
	if res.Summary.Executed != 3 || res.Summary.Cached != 2 {
		t.Fatalf("summary %+v, want 3 executed / 2 cached", res.Summary)
	}
	// Zero re-executed trials: across both incarnations every key executed at
	// most once.
	seen := map[string]int{}
	for _, k := range log.executedKeys() {
		seen[k]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("trial %s executed %d times across incarnations", k, n)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("executed %d distinct trials, want 5", len(seen))
	}
	// The journal holds all five trials.
	if n, jerr := sweep.ProbeJournal(cache, "wkr-v1", "resume", 5); jerr != nil || n != 5 {
		t.Fatalf("journal probe = (%d, %v), want (5, nil)", n, jerr)
	}

	// Byte-identical artifacts: the same campaign, undisturbed, in a fresh
	// store (same seed → same deterministic results).
	dir2 := t.TempDir()
	ref := &worker.Supervisor{Cmd: []string{os.Args[0]}, Env: env("WORKER_TEST_MODE=ok")}
	rres, err := ref.Run(context.Background(), worker.Request{
		Spec: specJSON("resume", 5, 5), CacheDir: filepath.Join(dir2, "cache"),
		ArtifactDir: filepath.Join(dir2, "art"), Workers: 1, Version: "wkr-v1",
	})
	if err != nil || rres.State != worker.StateDone {
		t.Fatalf("reference run: %+v, %v", rres, err)
	}
	got, _ := os.ReadFile(filepath.Join(dir, "art", "results.json"))
	want, _ := os.ReadFile(filepath.Join(dir2, "art", "results.json"))
	if len(want) == 0 || string(got) != string(want) {
		t.Fatalf("results.json differs between resumed (%d bytes) and undisturbed (%d bytes) runs", len(got), len(want))
	}
}

// TestSupervisorProgressKeepsBreakerClosed: a worker that dies on every
// incarnation but journals one fresh trial each time must crawl to completion
// — progress resets the crash-loop streak, so even K=2 never trips.
func TestSupervisorProgressKeepsBreakerClosed(t *testing.T) {
	dir := t.TempDir()
	sup := &worker.Supervisor{
		Cmd:         []string{os.Args[0]},
		Env:         env("WORKER_TEST_MODE=die-each"),
		CrashLoopK:  2,
		BackoffBase: time.Millisecond,
	}
	res, err := sup.Run(context.Background(), worker.Request{
		Spec: specJSON("crawl", 11, 4), CacheDir: filepath.Join(dir, "cache"),
		Workers: 1, Version: "wkr-v1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != worker.StateDone {
		t.Fatalf("crawling campaign state %q (err %q), want done", res.State, res.Err)
	}
	if res.Restarts != 3 || res.LastExit != "exit status 9" {
		t.Fatalf("restarts=%d last_exit=%q, want 3 / \"exit status 9\"", res.Restarts, res.LastExit)
	}
}

func TestSupervisorCrashLoopBreaker(t *testing.T) {
	var deaths int
	sup := &worker.Supervisor{
		Cmd:         []string{os.Args[0]},
		Env:         env("WORKER_TEST_MODE=crash"),
		CrashLoopK:  3,
		BackoffBase: time.Millisecond,
		OnExit:      func(int, string) { deaths++ },
	}
	res, err := sup.Run(context.Background(), worker.Request{
		Spec: specJSON("poison", 1, 3), CacheDir: t.TempDir(), Workers: 1, Version: "wkr-v1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != worker.StateCrashLoop {
		t.Fatalf("poison campaign state %q, want crash_loop", res.State)
	}
	if res.Restarts != 3 || deaths != 3 {
		t.Fatalf("restarts=%d deaths=%d, want 3/3 (breaker trips on the Kth, no extra spawn)", res.Restarts, deaths)
	}
	if res.LastExit != "exit status 3" {
		t.Fatalf("last_exit=%q, want \"exit status 3\"", res.LastExit)
	}
}

// TestSupervisorHeartbeatStall: a worker that says hello and then goes silent
// — no events, no journal appends — is declared wedged and killed; wedging
// every incarnation trips the breaker with cause heartbeat_stall.
func TestSupervisorHeartbeatStall(t *testing.T) {
	dir := t.TempDir()
	sup := &worker.Supervisor{
		Cmd:              []string{os.Args[0]},
		Env:              env("WORKER_TEST_MODE=hang"),
		HeartbeatTimeout: 150 * time.Millisecond,
		CrashLoopK:       2,
		BackoffBase:      time.Millisecond,
		JournalPath:      filepath.Join(dir, "never-written.journal"),
	}
	res, err := sup.Run(context.Background(), worker.Request{
		Spec: specJSON("wedged", 1, 3), CacheDir: dir, Workers: 1, Version: "wkr-v1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != worker.StateCrashLoop || res.LastExit != "heartbeat_stall" {
		t.Fatalf("wedged campaign = %+v, want crash_loop via heartbeat_stall", res)
	}
	if res.Restarts != 2 {
		t.Fatalf("restarts=%d, want 2", res.Restarts)
	}
}

// TestSupervisorRSSLimit: a worker ballooning past the RSS ceiling is killed
// with cause rss_limit. Linux-only: elsewhere rssBytes is a stub.
func TestSupervisorRSSLimit(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("RSS polling reads /proc/<pid>/statm")
	}
	sup := &worker.Supervisor{
		Cmd:         []string{os.Args[0]},
		Env:         env("WORKER_TEST_MODE=balloon"),
		RSSLimit:    64 << 20,
		CrashLoopK:  2,
		BackoffBase: time.Millisecond,
	}
	res, err := sup.Run(context.Background(), worker.Request{
		Spec: specJSON("balloon", 1, 3), CacheDir: t.TempDir(), Workers: 1, Version: "wkr-v1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != worker.StateCrashLoop || res.LastExit != "rss_limit" {
		t.Fatalf("ballooning campaign = %+v, want crash_loop via rss_limit", res)
	}
}

// TestSupervisorCancel: canceling the supervisor's context SIGTERMs the
// worker, which journals its progress and reports interrupted — the graceful
// half of the containment story.
func TestSupervisorCancel(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	first := make(chan struct{})
	var once sync.Once
	sup := &worker.Supervisor{
		Cmd:       []string{os.Args[0]},
		Env:       env("WORKER_TEST_MODE=ok", "WORKER_TEST_SLOW_MS=100"),
		KillGrace: 5 * time.Second,
		OnTrial:   func(worker.Event) { once.Do(func() { close(first) }) },
	}
	done := make(chan *worker.Result, 1)
	go func() {
		res, err := sup.Run(ctx, worker.Request{
			Spec: specJSON("cancelme", 2, 50), CacheDir: filepath.Join(dir, "cache"),
			Workers: 1, Version: "wkr-v1",
		})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	select {
	case <-first:
	case <-time.After(20 * time.Second):
		t.Fatal("worker never finished a trial")
	}
	cancel()
	select {
	case res := <-done:
		if res == nil || res.State != worker.StateInterrupted {
			t.Fatalf("canceled campaign = %+v, want interrupted", res)
		}
		if res.Restarts != 0 {
			t.Fatalf("cancel counted as a restart: %+v", res)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("supervisor never returned after cancel")
	}
}

// TestSupervisorDeadline: the campaign wall deadline spans incarnations and
// is terminal — a too-slow campaign fails, it does not restart.
func TestSupervisorDeadline(t *testing.T) {
	sup := &worker.Supervisor{
		Cmd:      []string{os.Args[0]},
		Env:      env("WORKER_TEST_MODE=ok", "WORKER_TEST_SLOW_MS=150"),
		Deadline: 400 * time.Millisecond,
	}
	res, err := sup.Run(context.Background(), worker.Request{
		Spec: specJSON("tooslow", 1, 50), CacheDir: t.TempDir(), Workers: 1, Version: "wkr-v1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != worker.StateFailed || res.LastExit != "deadline" {
		t.Fatalf("overdue campaign = %+v, want failed via deadline", res)
	}
}
