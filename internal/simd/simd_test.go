package simd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mkos/internal/fault/chaos"
	"mkos/internal/simd"
	"mkos/internal/sweep"
	"mkos/internal/sweep/campaigns"
)

// harness wires a Server to synthetic campaigns so tests exercise the real
// admission, queueing, persistence and resume machinery with fast,
// controllable trial bodies. Spec names select behavior: "block-" trials
// park until released (polling cancellation), anything else returns
// immediately. Trial entries and successful completions are counted, which
// is how the resume tests assert zero re-execution.
type harness struct {
	entries     atomic.Int64 // trial bodies entered
	completions atomic.Int64 // trial bodies returned successfully

	gate   chan struct{} // closed by release: every blocking trial may finish
	tokens chan struct{} // grant lets exactly n blocking trials finish
}

func newHarness() *harness {
	return &harness{gate: make(chan struct{}), tokens: make(chan struct{}, 64)}
}

// release lets every parked blocking trial finish.
func (h *harness) release() { close(h.gate) }

// grant lets exactly n parked blocking trials finish.
func (h *harness) grant(n int) {
	for i := 0; i < n; i++ {
		h.tokens <- struct{}{}
	}
}

// awaitCompletions blocks until n trial bodies have finished successfully.
func (h *harness) awaitCompletions(t *testing.T, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for h.completions.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d trial completions arrived", h.completions.Load(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// awaitEntries blocks until n trial bodies have been entered.
func (h *harness) awaitEntries(t *testing.T, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for h.entries.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d trial entries arrived", h.entries.Load(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// build is the Options.Build hook: spec.Runs trials (default 3), keyed on
// the spec name, each returning a value derived from the trial seed only —
// deterministic no matter which daemon incarnation executes it.
func (h *harness) build(spec *campaigns.Spec) (*sweep.Campaign, error) {
	n := spec.Runs
	if n <= 0 {
		n = 3
	}
	c := &sweep.Campaign{Name: spec.Name, Seed: spec.Seed}
	blocking := strings.HasPrefix(spec.Name, "block-")
	for i := 0; i < n; i++ {
		c.Trials = append(c.Trials, sweep.Trial{
			Key:  fmt.Sprintf("%s/t%03d", spec.Name, i),
			Spec: map[string]int{"i": i},
			Run: func(t *sweep.T) (any, error) {
				h.entries.Add(1)
				if blocking {
					for {
						select {
						case <-h.gate:
						case <-h.tokens:
						case <-time.After(2 * time.Millisecond):
							if t.Canceled() {
								return nil, sweep.ErrTrialCanceled
							}
							continue
						}
						break
					}
				}
				h.completions.Add(1)
				return map[string]int64{"seed": t.Seed}, nil
			},
		})
	}
	return c, nil
}

// specJSON builds a minimal spec body for the harness.
func specJSON(name string, seed int64, runs int) []byte {
	return []byte(fmt.Sprintf(`{"name":%q,"seed":%d,"runs":%d}`, name, seed, runs))
}

// testDaemon is one daemon incarnation under test: a Server, its HTTP
// front-end, and a client pointed at it.
type testDaemon struct {
	srv  *simd.Server
	http *httptest.Server
}

func startDaemon(t *testing.T, opts simd.Options) *testDaemon {
	t.Helper()
	srv, err := simd.NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	srv.Start()
	return &testDaemon{srv: srv, http: hs}
}

func (d *testDaemon) client(id string) *simd.Client {
	return &simd.Client{
		BaseURL:      d.http.URL,
		ClientID:     id,
		BaseDelay:    time.Millisecond,
		MaxDelay:     20 * time.Millisecond,
		PollInterval: 5 * time.Millisecond,
	}
}

// stop tears the incarnation down gracefully.
func (d *testDaemon) stop() {
	d.http.Close()
	d.srv.Drain()
}

// kill simulates a SIGKILL: the HTTP listener vanishes and the Server stops
// with no persistence courtesy.
func (d *testDaemon) kill() {
	d.http.Close()
	d.srv.Kill()
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestSubmitAwaitResults covers the happy path plus content-addressed
// dedupe: two submissions of the same spec (one after completion) converge
// on one campaign and one execution.
func TestSubmitAwaitResults(t *testing.T) {
	h := newHarness()
	d := startDaemon(t, simd.Options{Store: t.TempDir(), Build: h.build})
	defer d.stop()
	ctx := testCtx(t)
	c := d.client("alice")

	spec := specJSON("fast-a", 7, 4)
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Deduped {
		t.Fatalf("first submit: %+v", st)
	}
	if st, err = c.Await(ctx, st.ID); err != nil || st.State != simd.StateDone {
		t.Fatalf("await: %+v, %v", st, err)
	}
	if st.Executed != 4 || st.Failed != 0 {
		t.Fatalf("want 4 executed: %+v", st)
	}

	// Identical resubmission — and a reformatted one — both dedupe.
	again, err := c.Submit(ctx, spec)
	if err != nil || !again.Deduped || again.ID != st.ID {
		t.Fatalf("resubmit: %+v, %v", again, err)
	}
	reformatted := []byte(`{ "runs": 4, "seed": 7, "name": "fast-a" }`)
	again, err = c.Submit(ctx, reformatted)
	if err != nil || !again.Deduped || again.ID != st.ID {
		t.Fatalf("reformatted resubmit: %+v, %v", again, err)
	}
	if n := h.completions.Load(); n != 4 {
		t.Fatalf("trials executed %d times, want 4", n)
	}

	blob, err := c.Results(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var results []json.RawMessage
	if err := json.Unmarshal(blob, &results); err != nil || len(results) != 4 {
		t.Fatalf("results: %d entries, %v", len(results), err)
	}
}

// TestConcurrentSubmitCancelDrain hammers one daemon from many goroutines —
// submitters, resubmitters, cancelers, stats readers — then drains it while
// requests are still arriving. Run under -race this is the server's data-
// race certificate; the assertions check the books still balance.
func TestConcurrentSubmitCancelDrain(t *testing.T) {
	h := newHarness()
	d := startDaemon(t, simd.Options{
		Store: t.TempDir(), Build: h.build,
		MaxQueue: 128, MaxPerClient: 64, Concurrency: 2,
		DrainGrace: 2 * time.Second,
	})
	ctx := testCtx(t)

	const clients, per = 8, 6
	var wg sync.WaitGroup
	var submitted, rejected atomic.Int64
	ids := make(chan string, clients*per)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := d.client(fmt.Sprintf("c%d", ci))
			for i := 0; i < per; i++ {
				st, err := c.Submit(ctx, specJSON(fmt.Sprintf("fast-%d-%d", ci, i), int64(i), 2))
				if err != nil {
					rejected.Add(1)
					continue
				}
				submitted.Add(1)
				ids <- st.ID
				if i%3 == 0 {
					c.Cancel(ctx, st.ID) // races with execution on purpose
				}
				if i%2 == 0 {
					c.Stats(ctx)
				}
			}
		}(ci)
	}
	wg.Wait()
	close(ids)

	// Let the queue settle, then await every accepted campaign.
	c := d.client("awaiter")
	for id := range ids {
		st, err := c.Await(ctx, id)
		if err != nil {
			t.Fatalf("await %s: %v", id, err)
		}
		switch st.State {
		case simd.StateDone, simd.StateCanceled:
		default:
			t.Fatalf("campaign %s settled as %+v", id, st)
		}
	}
	d.stop()

	stats := d.srv.Stats()
	if got := int64(stats.Campaigns[simd.StateDone] + stats.Campaigns[simd.StateCanceled]); got != submitted.Load() {
		t.Fatalf("settled %d campaigns, submitted %d (stats %+v)", got, submitted.Load(), stats)
	}
}

// TestBackpressure fills a tiny queue with blocking campaigns and asserts
// over-limit submissions are refused with the typed reasons and counted in
// telemetry — and that a rejected client gets through after the flood
// clears.
func TestBackpressure(t *testing.T) {
	h := newHarness()
	d := startDaemon(t, simd.Options{
		Store: t.TempDir(), Build: h.build,
		MaxQueue: 3, MaxPerClient: 2,
	})
	defer d.stop()
	ctx := testCtx(t)

	// One blocking campaign occupies the dispatcher; the queue holds what
	// follows.
	runner := d.client("runner")
	first, err := runner.Submit(ctx, specJSON("block-hold", 1, 1))
	if err != nil {
		t.Fatal(err)
	}

	flooder := d.client("flooder")
	flooder.MaxAttempts = 1
	var queueFull, backlog int
	for i := 0; i < 6; i++ {
		_, err := flooder.Submit(ctx, specJSON(fmt.Sprintf("fast-f%d", i), 1, 1))
		switch {
		case err == nil:
		case strings.Contains(err.Error(), simd.ReasonClientBacklog):
			backlog++
		case strings.Contains(err.Error(), simd.ReasonQueueFull):
			queueFull++
		default:
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	if backlog == 0 {
		t.Fatalf("flooder was never refused for client backlog (queue_full=%d)", queueFull)
	}
	stats := d.srv.Stats()
	if stats.Rejected.Total() == 0 || stats.Rejected.ClientBacklog == 0 {
		t.Fatalf("rejections not accounted: %+v", stats.Rejected)
	}

	// Release the flood; the rejected client retries and succeeds.
	h.release()
	if _, err := runner.Await(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
	late := d.client("flooder")
	st, err := late.Submit(ctx, specJSON("fast-late", 1, 1))
	if err != nil {
		t.Fatalf("post-flood submit: %v", err)
	}
	if st, err = late.Await(ctx, st.ID); err != nil || st.State != simd.StateDone {
		t.Fatalf("post-flood await: %+v, %v", st, err)
	}
}

// TestFairness proves a flooding client cannot starve another: with client A
// holding a multi-campaign backlog, client B's single late submission is
// dispatched after at most one more of A's campaigns (round-robin), not
// after A's whole backlog.
func TestFairness(t *testing.T) {
	h := newHarness()
	var order []string
	var mu sync.Mutex
	d := startDaemon(t, simd.Options{
		Store: t.TempDir(), Build: h.build,
		MaxQueue: 16, MaxPerClient: 8,
		Observe: func(id, state string) {
			if state == simd.StateRunning {
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
			}
		},
	})
	defer d.stop()
	ctx := testCtx(t)

	// A's first campaign blocks the dispatcher while the rest of the test
	// arranges the queue, so dispatch order is decided strictly by the
	// round-robin, not by submission timing.
	a := d.client("a")
	hold, err := a.Submit(ctx, specJSON("block-a0", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	h.awaitEntries(t, 1) // a0 is on the dispatcher before anything else queues
	var aIDs []string
	for i := 1; i <= 4; i++ {
		st, err := a.Submit(ctx, specJSON(fmt.Sprintf("fast-a%d", i), 1, 1))
		if err != nil {
			t.Fatal(err)
		}
		aIDs = append(aIDs, st.ID)
	}
	b := d.client("b")
	bSt, err := b.Submit(ctx, specJSON("fast-b0", 1, 1))
	if err != nil {
		t.Fatal(err)
	}

	h.release()
	for _, id := range append(append([]string{hold.ID}, aIDs...), bSt.ID) {
		if _, err := d.client("awaiter").Await(ctx, id); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	bPos := -1
	for i, id := range order {
		if id == bSt.ID {
			bPos = i
		}
	}
	// Dispatch order: a0 (running before b existed), then round-robin must
	// reach b no later than position 2 overall.
	if bPos < 0 || bPos > 2 {
		t.Fatalf("client b dispatched at position %d of %v — starved by a's backlog", bPos, order)
	}
}

// TestSlowClients runs submissions whose response bodies are read through
// deterministic slow readers — slow consumers must neither fail nor wedge
// the daemon for others.
func TestSlowClients(t *testing.T) {
	h := newHarness()
	d := startDaemon(t, simd.Options{
		Store: t.TempDir(), Build: h.build,
		MaxQueue: 64, MaxPerClient: 16,
	})
	defer d.stop()
	ctx := testCtx(t)

	plan := chaos.Plan{Seed: 99}
	tally := chaos.Flood(8, func(i int) error {
		c := d.client(fmt.Sprintf("slow-%d", i))
		c.WrapBody = func(r io.Reader) io.Reader {
			return &chaos.SlowReader{
				R:     r,
				Chunk: 1 + plan.Int("chunk", i, 0, 7),
				Delay: plan.Delay("delay", i, 100*time.Microsecond, time.Millisecond),
			}
		}
		st, err := c.Submit(ctx, specJSON(fmt.Sprintf("fast-slow%d", i), int64(i), 2))
		if err != nil {
			return err
		}
		if st, err = c.Await(ctx, st.ID); err != nil {
			return err
		}
		if st.State != simd.StateDone {
			return fmt.Errorf("campaign %s settled as %s", st.ID, st.State)
		}
		return nil
	})
	if tally.Failed != 0 {
		t.Fatalf("slow clients failed: %+v", tally)
	}
}

// TestKillResume is the crash-tolerance contract end to end, in process: a
// daemon is killed with a campaign mid-flight, a successor on the same
// store resumes it, no trial executes twice, and the artifacts byte-match a
// never-crashed run of the same spec.
func TestKillResume(t *testing.T) {
	store := t.TempDir()
	spec := specJSON("block-big", 42, 6)
	ctx := testCtx(t)

	h1 := newHarness()
	d1 := startDaemon(t, simd.Options{Store: store, Build: h1.build})
	st, err := d1.client("k").Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID

	// Let exactly two of the six trials finish (and land in the journal),
	// then kill the daemon mid-campaign.
	h1.grant(2)
	h1.awaitCompletions(t, 2)
	d1.kill()
	ran1 := h1.completions.Load()
	if ran1 != 2 {
		t.Fatalf("%d trials completed before the kill, want 2", ran1)
	}

	// Successor on the same store: the campaign must be resumed, finish the
	// balance, and in total each of the 6 trials completes exactly once
	// across both incarnations.
	h2 := newHarness()
	h2.release()
	d2 := startDaemon(t, simd.Options{Store: store, Build: h2.build})
	defer d2.stop()
	if got := d2.srv.Stats().Resumed; got != 1 {
		t.Fatalf("successor resumed %d campaigns, want 1", got)
	}
	fin, err := d2.client("k").Await(ctx, id)
	if err != nil || fin.State != simd.StateDone {
		t.Fatalf("resumed campaign: %+v, %v", fin, err)
	}
	ran2 := h2.completions.Load()
	if ran1+ran2 != 6 {
		t.Fatalf("%d + %d trial completions across incarnations, want exactly 6", ran1, ran2)
	}
	if fin.Executed != int(ran2) || fin.Cached != int(ran1) {
		t.Fatalf("resumed status %+v does not account executions %d/%d", fin, ran1, ran2)
	}

	// Byte-identity: a never-crashed daemon on a fresh store produces the
	// same results.json.
	got, err := d2.client("k").Results(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	h3 := newHarness()
	h3.release()
	d3 := startDaemon(t, simd.Options{Store: t.TempDir(), Build: h3.build})
	defer d3.stop()
	st3, err := d3.client("k").Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d3.client("k").Await(ctx, st3.ID); err != nil {
		t.Fatal(err)
	}
	want, err := d3.client("k").Results(ctx, st3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed results differ from clean run:\n--- resumed ---\n%s\n--- clean ---\n%s", got, want)
	}
}

// TestDrainRequeue covers the graceful path: a drain with a blocking
// campaign in flight journals it as interrupted, and the next incarnation
// requeues and finishes it.
func TestDrainRequeue(t *testing.T) {
	store := t.TempDir()
	ctx := testCtx(t)

	h1 := newHarness()
	d1 := startDaemon(t, simd.Options{
		Store: store, Build: h1.build,
		DrainGrace: 20 * time.Millisecond,
	})
	st, err := d1.client("d").Submit(ctx, specJSON("block-drain", 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the campaign to be running (its trials parked), then drain
	// without ever releasing: the grace expires and the campaign is
	// interrupted, not finished.
	h1.awaitEntries(t, 1)
	d1.stop()
	h2 := newHarness()
	h2.release()
	after, err := simd.NewServer(simd.Options{Store: store, Build: h2.build})
	if err != nil {
		t.Fatal(err)
	}
	// The drained campaign must come back queued, not lost and not done.
	if got := after.Stats().Resumed; got != 1 {
		t.Fatalf("post-drain incarnation resumed %d, want 1", got)
	}
	after.Start()
	hs := httptest.NewServer(after.Handler())
	defer hs.Close()
	defer after.Drain()
	c := &simd.Client{BaseURL: hs.URL, PollInterval: 5 * time.Millisecond}
	fin, err := c.Await(ctx, st.ID)
	if err != nil || fin.State != simd.StateDone {
		t.Fatalf("after drain+restart: %+v, %v", fin, err)
	}
}

// TestDrainRejectsSubmissions asserts the draining daemon refuses new work
// with the typed reason.
func TestDrainRejectsSubmissions(t *testing.T) {
	h := newHarness()
	d := startDaemon(t, simd.Options{Store: t.TempDir(), Build: h.build})
	d.srv.Drain()
	defer d.http.Close()
	c := d.client("late")
	c.MaxAttempts = 1
	_, err := c.Submit(testCtx(t), specJSON("fast-late", 1, 1))
	if err == nil || !strings.Contains(err.Error(), simd.ReasonDraining) {
		t.Fatalf("submit to draining daemon: %v", err)
	}
}

// TestClientBackoffDeterministic pins the client's retry schedule: capped
// doubling, no jitter.
func TestClientBackoffDeterministic(t *testing.T) {
	c := &simd.Client{BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
		2 * time.Second, 2 * time.Second,
	}
	for i, w := range want {
		if got := c.Backoff(i); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i, got, w)
		}
	}
	// Far attempts (shift overflow territory) stay capped.
	if got := c.Backoff(200); got != 2*time.Second {
		t.Fatalf("backoff(200) = %v", got)
	}
}

// TestRecoveryBypassesAdmissionBounds asserts a restarted daemon re-admits
// every unfinished campaign even when the persisted set exceeds the
// successor's queue or per-client bounds: recovered work was already
// admitted, so it must not be re-gated (and must not land permanently
// failed) on restart.
func TestRecoveryBypassesAdmissionBounds(t *testing.T) {
	store := t.TempDir()
	ctx := testCtx(t)

	// Incarnation 1, generous bounds: one blocking campaign occupies the
	// dispatcher while five more queue behind it for the same client.
	h1 := newHarness()
	d1 := startDaemon(t, simd.Options{
		Store: store, Build: h1.build,
		MaxQueue: 16, MaxPerClient: 10, Concurrency: 1,
		DrainGrace: 20 * time.Millisecond,
	})
	c1 := d1.client("bulk")
	ids := make([]string, 0, 6)
	st, err := c1.Submit(ctx, specJSON("block-bulk", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, st.ID)
	h1.awaitEntries(t, 1)
	for i := 0; i < 5; i++ {
		st, err := c1.Submit(ctx, specJSON(fmt.Sprintf("fast-bulk%d", i), 1, 1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	d1.stop() // interrupts the running campaign, leaves five queued on disk

	// Incarnation 2, tight bounds: all six persisted campaigns exceed both
	// MaxQueue and MaxPerClient, yet every one must resume and finish.
	h2 := newHarness()
	h2.release()
	d2 := startDaemon(t, simd.Options{
		Store: store, Build: h2.build,
		MaxQueue: 3, MaxPerClient: 2, Concurrency: 1,
	})
	defer d2.stop()
	if got := d2.srv.Stats().Resumed; got != int64(len(ids)) {
		t.Fatalf("successor resumed %d campaigns, want %d", got, len(ids))
	}
	for _, id := range ids {
		fin, err := d2.client("bulk").Await(ctx, id)
		if err != nil || fin.State != simd.StateDone {
			t.Fatalf("recovered campaign %s: %+v, %v", id, fin, err)
		}
	}
}

// TestRejectedSubmissionNotPersisted asserts a queue-rejected submission
// leaves nothing in the store: the client was told 429, so no later
// incarnation may resurrect and run the campaign behind its back.
func TestRejectedSubmissionNotPersisted(t *testing.T) {
	store := t.TempDir()
	ctx := testCtx(t)

	h1 := newHarness()
	d1 := startDaemon(t, simd.Options{
		Store: store, Build: h1.build,
		MaxQueue: 1, MaxPerClient: 1, Concurrency: 1,
	})
	c1 := d1.client("full")
	held, err := c1.Submit(ctx, specJSON("block-held", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	h1.awaitEntries(t, 1) // on the dispatcher; the queue itself is empty

	queued, err := d1.client("other").Submit(ctx, specJSON("fast-fills", 1, 1))
	if err != nil {
		t.Fatal(err)
	}

	rejSpec := specJSON("fast-rejected", 1, 1)
	rejID, _, err := simd.SpecID(rejSpec)
	if err != nil {
		t.Fatal(err)
	}
	flooder := d1.client("late")
	flooder.MaxAttempts = 1
	if _, err := flooder.Submit(ctx, rejSpec); err == nil ||
		!strings.Contains(err.Error(), simd.ReasonQueueFull) {
		t.Fatalf("over-limit submit: %v", err)
	}
	for _, id := range d1.srv.CampaignIDs() {
		if id == rejID {
			t.Fatal("rejected campaign still registered in memory")
		}
	}

	// Crash and restart: the rejected campaign must not come back.
	d1.kill()
	h2 := newHarness()
	h2.release()
	d2 := startDaemon(t, simd.Options{Store: store, Build: h2.build})
	defer d2.stop()
	for _, id := range d2.srv.CampaignIDs() {
		if id == rejID {
			t.Fatal("rejected campaign resurrected by recovery")
		}
	}
	for _, id := range []string{held.ID, queued.ID} {
		if fin, err := d2.client("x").Await(ctx, id); err != nil || fin.State != simd.StateDone {
			t.Fatalf("admitted campaign %s after restart: %+v, %v", id, fin, err)
		}
	}
}

// TestBadSpecRejected asserts malformed specs get a typed 400, are not
// retried by the client, and leave nothing behind in the store.
func TestBadSpecRejected(t *testing.T) {
	h := newHarness()
	d := startDaemon(t, simd.Options{Store: t.TempDir(), Build: h.build})
	defer d.stop()
	c := d.client("bad")
	start := time.Now()
	_, err := c.Submit(testCtx(t), []byte(`{"name": 42}`))
	if err == nil || !strings.Contains(err.Error(), simd.ReasonBadSpec) {
		t.Fatalf("bad spec: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("client retried a non-retryable rejection")
	}
	if ids := d.srv.CampaignIDs(); len(ids) != 0 {
		t.Fatalf("bad spec left campaigns behind: %v", ids)
	}
}
