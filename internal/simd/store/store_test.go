package store_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"mkos/internal/fault/chaos"
	"mkos/internal/simd/store"
)

func open(t *testing.T) *store.Dir {
	t.Helper()
	d, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// tempDebris returns any leftover .tmp-* files under the campaigns tree —
// the atomic-write contract says there are never any after a write returns.
func tempDebris(t *testing.T, d *store.Dir) []string {
	t.Helper()
	var out []string
	filepath.Walk(d.CampaignsDir(), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasPrefix(filepath.Base(path), ".tmp-") {
			out = append(out, path)
		}
		return nil
	})
	return out
}

func TestArtifactRoundTripAndSidecar(t *testing.T) {
	d := open(t)
	path := d.Path("c1", "results.json")
	blob := []byte("[{\"k\":1}]\n")
	if err := d.WriteArtifact(path, blob); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".sha256"); err != nil {
		t.Fatalf("sidecar missing: %v", err)
	}
	got, err := d.ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) {
		t.Fatalf("round trip: got %q want %q", got, blob)
	}
	if debris := tempDebris(t, d); len(debris) > 0 {
		t.Fatalf("temp debris after clean write: %v", debris)
	}
}

// TestShortWriteLeavesNoTornTarget pins the atomic-write contract under an
// injected short write: the error surfaces, the temp file is cleaned up, and
// the target keeps its previous content.
func TestShortWriteLeavesNoTornTarget(t *testing.T) {
	d := open(t)
	path := d.Path("c1", "status.json")
	if err := d.WriteFile(path, []byte("previous\n")); err != nil {
		t.Fatal(err)
	}
	d.Fault = func(p string, blob []byte) ([]byte, error) {
		return blob[:len(blob)/2], errors.New("injected short write")
	}
	if err := d.WriteFile(path, []byte("next-status-content\n")); err == nil {
		t.Fatal("short write reported success")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "previous\n" {
		t.Fatalf("target torn by failed write: %q", got)
	}
	if debris := tempDebris(t, d); len(debris) > 0 {
		t.Fatalf("temp debris after failed write: %v", debris)
	}
}

// TestNoSpaceIsTyped pins the ENOSPC contract: the error is recognizable via
// IsNoSpace through every wrapping layer, and nothing lands on disk.
func TestNoSpaceIsTyped(t *testing.T) {
	d := open(t)
	d.Fault = func(p string, blob []byte) ([]byte, error) {
		return nil, fmt.Errorf("disk full: %w", syscall.ENOSPC)
	}
	err := d.WriteArtifact(d.Path("c1", "results.json"), []byte("x"))
	if err == nil {
		t.Fatal("ENOSPC write reported success")
	}
	if !store.IsNoSpace(err) {
		t.Fatalf("IsNoSpace(%v) = false", err)
	}
	if _, serr := os.Stat(d.Path("c1", "results.json")); !os.IsNotExist(serr) {
		t.Fatalf("target exists after ENOSPC: %v", serr)
	}
	if debris := tempDebris(t, d); len(debris) > 0 {
		t.Fatalf("temp debris after ENOSPC: %v", debris)
	}
}

// TestReadArtifactQuarantinesCorruption pins the checksum story: flipped
// bytes are detected on read, the artifact moves to *.corrupt, and a retry
// reads "missing", not "corrupt" — damage is observed exactly once.
func TestReadArtifactQuarantinesCorruption(t *testing.T) {
	d := open(t)
	path := d.Path("c1", "results.json")
	if err := d.WriteArtifact(path, []byte("pristine")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := d.ReadArtifact(path)
	if !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("read of tampered artifact: %v, want ErrCorrupt", err)
	}
	if _, serr := os.Stat(path + ".corrupt"); serr != nil {
		t.Fatalf("tampered artifact not quarantined: %v", serr)
	}
	if _, err := d.ReadArtifact(path); !os.IsNotExist(err) {
		t.Fatalf("second read after quarantine: %v, want not-exist", err)
	}
}

// TestScrub covers the three scrubber actions in one store: verifying intact
// artifacts, quarantining a corrupted one, and backfilling a missing sidecar.
func TestScrub(t *testing.T) {
	d := open(t)
	if err := d.WriteArtifact(d.Path("ok", "spec.json"), []byte("{}")); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteArtifact(d.Path("bad", "results.json"), []byte("good bytes")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.Path("bad", "results.json"), []byte("rot"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A pre-checksum store: artifact without sidecar.
	if err := os.MkdirAll(d.CampaignDir("old"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.Path("old", "metrics.txt"), []byte("m 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := d.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 1 || rep.Backfilled != 1 || len(rep.Quarantined) != 1 {
		t.Fatalf("scrub report %+v, want checked=1 backfilled=1 quarantined=1", rep)
	}
	if rep.Quarantined[0] != d.Path("bad", "results.json") {
		t.Fatalf("quarantined %q", rep.Quarantined[0])
	}
	if _, serr := os.Stat(d.Path("bad", "results.json") + ".corrupt"); serr != nil {
		t.Fatalf("corrupt artifact not renamed: %v", serr)
	}
	// The backfilled artifact now verifies.
	if _, err := d.ReadArtifact(d.Path("old", "metrics.txt")); err != nil {
		t.Fatalf("backfilled artifact unreadable: %v", err)
	}

	// Idempotence: a second pass finds a converged store — nothing new to
	// quarantine or backfill.
	rep2, err := d.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Quarantined) != 0 || rep2.Backfilled != 0 {
		t.Fatalf("second scrub not clean: %+v", rep2)
	}
}

// TestScrubRemovesOrphanSidecars: a sidecar whose artifact vanished carries
// no information and is deleted.
func TestScrubRemovesOrphanSidecars(t *testing.T) {
	d := open(t)
	path := d.Path("c1", "results.json")
	if err := d.WriteArtifact(path, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Scrub(); err != nil {
		t.Fatal(err)
	}
	if _, serr := os.Stat(path + ".sha256"); !os.IsNotExist(serr) {
		t.Fatalf("orphan sidecar survived scrub: %v", serr)
	}
}

// TestScanQuarantinesCorruptSpec: a campaign whose spec fails verification
// cannot be resumed and is quarantined wholesale, while intact neighbors are
// returned.
func TestScanQuarantinesCorruptSpec(t *testing.T) {
	d := open(t)
	if err := d.WriteArtifact(d.Path("good", "spec.json"), []byte(`{"name":"g"}`)); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteArtifact(d.Path("evil", "spec.json"), []byte(`{"name":"e"}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.Path("evil", "spec.json"), []byte(`{"name":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	stored, err := d.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 1 || stored[0].ID != "good" {
		t.Fatalf("scan returned %+v, want only campaign \"good\"", stored)
	}
	if _, serr := os.Stat(d.CampaignDir("evil") + ".corrupt"); serr != nil {
		t.Fatalf("corrupt campaign dir not quarantined: %v", serr)
	}
}

// TestChaosStoreFaults drives the store through the seeded chaos injector:
// short writes fail loudly with intact targets, the ENOSPC budget turns every
// later write into a typed no-space error, and after the storm a scrub finds
// nothing to quarantine — the survivors are all internally consistent.
func TestChaosStoreFaults(t *testing.T) {
	d := open(t)
	faults := &chaos.StoreFaults{Plan: chaos.NewPlan(11), ShortPct: 40, NoSpaceAfter: 30}
	d.Fault = faults.Fault

	var failed, wrote int
	for i := 0; i < 25; i++ {
		id := fmt.Sprintf("c%02d", i)
		blob := []byte(fmt.Sprintf("{\"i\":%d}\n", i))
		if err := d.WriteArtifact(d.Path(id, "results.json"), blob); err != nil {
			failed++
			if !store.IsNoSpace(err) && !errors.Is(err, chaos.ErrShortWrite) {
				t.Fatalf("write %d failed with untyped error: %v", i, err)
			}
			continue
		}
		wrote++
	}
	if failed == 0 {
		t.Fatalf("chaos plan injected no faults across %d writes (writes seen: %d)", 25, faults.Writes())
	}
	if debris := tempDebris(t, d); len(debris) > 0 {
		t.Fatalf("temp debris after chaos storm: %v", debris)
	}

	d.Fault = nil
	rep, err := d.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("scrub after chaos quarantined %v — a fault tore an artifact", rep.Quarantined)
	}

	// Determinism: the same seed injects the same fault schedule.
	a := &chaos.StoreFaults{Plan: chaos.NewPlan(11), ShortPct: 40}
	b := &chaos.StoreFaults{Plan: chaos.NewPlan(11), ShortPct: 40}
	for i := 0; i < 50; i++ {
		_, aerr := a.Fault("p", []byte("0123456789"))
		_, berr := b.Fault("p", []byte("0123456789"))
		if (aerr == nil) != (berr == nil) {
			t.Fatalf("fault schedule diverged at write %d", i)
		}
	}
}
