// Package store is the simd daemon's integrity-checked on-disk state: one
// directory per campaign (spec, status, deterministic artifacts) next to the
// shared sweep cache/journal directory, with three defenses layered on top
// of plain files:
//
//   - Atomic writes. Every file lands via a same-directory temp file, fsync
//     and rename, so a SIGKILL at any instant leaves each path absent,
//     previous or current — never torn — and a failed write never leaves a
//     temp file behind.
//
//   - Checksummed artifacts. Immutable artifacts (spec.json, results.json,
//     metrics.txt) carry a sha256 sidecar written after the data file, so
//     silent corruption — a bad disk, a truncating copy, a stray editor —
//     is detected on read and at startup rather than served to a client.
//     The mutable status.json is exempt: it is rewritten on every state
//     transition and already torn-tolerant by construction.
//
//   - A scrubber. Scrub walks every campaign at daemon startup, verifies
//     each artifact against its sidecar, quarantines mismatches by renaming
//     them to *.corrupt (the same mechanism the sweep cache applies to its
//     entries) and backfills sidecars for artifacts written before
//     checksumming existed, so the store converges instead of rotting.
//
// Degradation is typed, not silent: a write that fails with ENOSPC is
// recognizable via IsNoSpace so the daemon can refuse new work with a 507
// instead of corrupting its journal, and a checksum mismatch surfaces as
// ErrCorrupt after the offending file has already been moved out of the way.
//
// The Fault hook is the chaos seam: internal/fault/chaos plugs seeded short
// writes and ENOSPC failures into every write so the whole layer is tested
// under the faults it claims to survive.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
)

// ErrCorrupt reports an artifact whose content did not match its sha256
// sidecar. By the time a caller sees it the artifact has been quarantined
// (renamed to *.corrupt), so a retry reads "missing", not "corrupt".
var ErrCorrupt = errors.New("store: artifact failed checksum verification")

// WriteFault intercepts a write for fault injection: it returns the bytes
// that actually reach the temp file and an error to surface after they land.
// (blob, nil) passes the write through; (blob[:n], err) models a short write;
// (nil, syscall.ENOSPC) models a full disk. The hook sees every atomic write
// — artifacts, statuses and sidecars alike.
type WriteFault func(path string, blob []byte) ([]byte, error)

// Dir is one daemon's store rooted at Root:
//
//	<root>/cache/                      shared sweep trial cache + journals
//	<root>/campaigns/<id>/spec.json    canonical spec (+ .sha256 sidecar)
//	<root>/campaigns/<id>/status.json  latest status (atomic, no sidecar)
//	<root>/campaigns/<id>/results.json deterministic results (+ sidecar)
//	<root>/campaigns/<id>/metrics.txt  merged metrics (+ sidecar)
type Dir struct {
	Root string
	// Fault, when non-nil, intercepts every write (chaos injection).
	Fault WriteFault
}

// Open creates the store layout under root.
func Open(root string) (*Dir, error) {
	d := &Dir{Root: root}
	for _, p := range []string{d.CacheDir(), d.CampaignsDir()} {
		if err := os.MkdirAll(p, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", p, err)
		}
	}
	return d, nil
}

// CacheDir is the shared sweep cache/journal directory.
func (d *Dir) CacheDir() string { return filepath.Join(d.Root, "cache") }

// CampaignsDir holds one subdirectory per campaign id.
func (d *Dir) CampaignsDir() string { return filepath.Join(d.Root, "campaigns") }

// CampaignDir is the directory of one campaign.
func (d *Dir) CampaignDir(id string) string { return filepath.Join(d.CampaignsDir(), id) }

// Path names a file inside one campaign's directory.
func (d *Dir) Path(id, name string) string { return filepath.Join(d.CampaignDir(id), name) }

// IsNoSpace reports whether err is the filesystem running out of space —
// the one write failure the daemon degrades through (typed 507) rather than
// treats as a bug.
func IsNoSpace(err error) bool { return errors.Is(err, syscall.ENOSPC) }

// sidecarSuffix names the checksum sidecar next to an artifact.
const sidecarSuffix = ".sha256"

// corruptSuffix marks a quarantined file; quarantined entries are invisible
// to Scan and ReadArtifact but kept on disk for post-mortems.
const corruptSuffix = ".corrupt"

// writeAtomic lands blob at path via temp file + fsync + rename, routing the
// bytes through the fault hook. On any failure the temp file is removed, so
// injected short writes and ENOSPC leave no debris and never a torn target.
func (d *Dir) writeAtomic(path string, blob []byte) error {
	var ferr error
	if d.Fault != nil {
		if blob, ferr = d.Fault(path, blob); ferr != nil && blob == nil {
			return fmt.Errorf("store: writing %s: %w", path, ferr)
		}
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	name := tmp.Name()
	_, werr := tmp.Write(blob)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil || ferr != nil {
		os.Remove(name)
		err := werr
		for _, e := range []error{serr, cerr, ferr} {
			if err == nil {
				err = e
			}
		}
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	return nil
}

// WriteFile writes a mutable, sidecar-less file (status.json) atomically.
func (d *Dir) WriteFile(path string, blob []byte) error {
	return d.writeAtomic(path, blob)
}

// WriteArtifact writes an immutable artifact and its sha256 sidecar, data
// first: a crash between the two leaves a sidecar-less artifact, which Scrub
// backfills, never a sidecar attesting to bytes that were not written.
func (d *Dir) WriteArtifact(path string, blob []byte) error {
	if err := d.writeAtomic(path, blob); err != nil {
		return err
	}
	return d.writeAtomic(path+sidecarSuffix, digestLine(blob))
}

// ReadArtifact reads an artifact, verifying it against its sidecar when one
// exists. On a mismatch the artifact and sidecar are quarantined (renamed to
// *.corrupt) and ErrCorrupt is returned, so the damage is observed exactly
// once; a sidecar-less artifact (pre-checksum store, or a crash between data
// and sidecar) reads as-is and is repaired by the next Scrub.
func (d *Dir) ReadArtifact(path string) ([]byte, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	want, err := os.ReadFile(path + sidecarSuffix)
	if err != nil {
		if os.IsNotExist(err) {
			return blob, nil
		}
		return nil, err
	}
	if !digestMatches(blob, want) {
		d.quarantine(path)
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, path)
	}
	return blob, nil
}

// quarantine renames an artifact (and its sidecar) to *.corrupt.
func (d *Dir) quarantine(path string) {
	os.Rename(path, path+corruptSuffix)
	os.Rename(path+sidecarSuffix, path+sidecarSuffix+corruptSuffix)
}

// Remove deletes a campaign's directory — the undo of a failed admission.
func (d *Dir) Remove(id string) error {
	return os.RemoveAll(d.CampaignDir(id))
}

// Stored is one persisted campaign surfaced by Scan.
type Stored struct {
	ID string
	// Spec is the verified canonical spec.json.
	Spec []byte
	// Status is the raw status.json blob; nil when missing or unreadable
	// (the caller treats either as "unknown, resume it").
	Status []byte
}

// Scan enumerates persisted campaigns in lexical id order, tolerating torn
// or missing status files. A campaign whose spec.json is missing or fails
// verification is quarantined wholesale — it cannot be resumed and must not
// shadow a future resubmission of the same id.
func (d *Dir) Scan() ([]Stored, error) {
	ents, err := os.ReadDir(d.CampaignsDir())
	if err != nil {
		return nil, err
	}
	var out []Stored
	for _, e := range ents {
		if !e.IsDir() || strings.HasSuffix(e.Name(), corruptSuffix) {
			continue
		}
		id := e.Name()
		spec, err := d.ReadArtifact(d.Path(id, "spec.json"))
		if err != nil {
			os.Rename(d.CampaignDir(id), d.CampaignDir(id)+corruptSuffix)
			continue
		}
		sc := Stored{ID: id, Spec: spec}
		if blob, err := os.ReadFile(d.Path(id, "status.json")); err == nil {
			sc.Status = blob
		}
		out = append(out, sc)
	}
	return out, nil
}

// ScrubReport summarizes one integrity pass.
type ScrubReport struct {
	// Checked counts artifacts whose sidecar was verified.
	Checked int
	// Quarantined lists artifacts renamed to *.corrupt this pass.
	Quarantined []string
	// Backfilled counts artifacts that had no sidecar and got one.
	Backfilled int
}

// scrubbed lists the artifact names a campaign directory may hold; the
// mutable status.json is deliberately absent.
var scrubbed = []string{"spec.json", "results.json", "metrics.txt"}

// Scrub verifies every campaign artifact against its sidecar: mismatches are
// quarantined to *.corrupt, missing sidecars are backfilled, and orphan
// sidecars (their artifact is gone) are removed. Run it at daemon startup,
// before recovery, so recovery never trusts a corrupt spec or serves corrupt
// results.
func (d *Dir) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	ents, err := os.ReadDir(d.CampaignsDir())
	if err != nil {
		return rep, err
	}
	for _, e := range ents {
		if !e.IsDir() || strings.HasSuffix(e.Name(), corruptSuffix) {
			continue
		}
		id := e.Name()
		for _, name := range scrubbed {
			path := d.Path(id, name)
			blob, err := os.ReadFile(path)
			if err != nil {
				if os.IsNotExist(err) {
					os.Remove(path + sidecarSuffix) // orphan sidecar, if any
					continue
				}
				return rep, err
			}
			want, err := os.ReadFile(path + sidecarSuffix)
			switch {
			case os.IsNotExist(err):
				if werr := d.writeAtomic(path+sidecarSuffix, digestLine(blob)); werr != nil {
					return rep, werr
				}
				rep.Backfilled++
			case err != nil:
				return rep, err
			case digestMatches(blob, want):
				rep.Checked++
			default:
				d.quarantine(path)
				rep.Quarantined = append(rep.Quarantined, path)
			}
		}
	}
	sort.Strings(rep.Quarantined)
	return rep, nil
}

// digestLine renders a blob's sidecar content.
func digestLine(blob []byte) []byte {
	sum := sha256.Sum256(blob)
	return []byte(hex.EncodeToString(sum[:]) + "\n")
}

// digestMatches verifies blob against a sidecar's content.
func digestMatches(blob, sidecar []byte) bool {
	sum := sha256.Sum256(blob)
	return strings.TrimSpace(string(sidecar)) == hex.EncodeToString(sum[:])
}
