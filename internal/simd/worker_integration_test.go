package simd_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mkos/internal/fault/chaos"
	"mkos/internal/simd"
	"mkos/internal/simd/worker"
	"mkos/internal/sweep"
	"mkos/internal/sweep/campaigns"
)

// TestMain doubles this test binary as the daemon's worker process: when the
// supervisor re-execs it with SIMD_TEST_WORKER=1 it runs the real worker
// protocol (worker.Main) with synthetic trial bodies, so the out-of-process
// tests exercise the entire daemon → supervisor → child → journal → store
// pipeline with nothing mocked.
func TestMain(m *testing.M) {
	if os.Getenv("SIMD_TEST_WORKER") == "1" {
		os.Exit(worker.Main(os.Stdin, os.Stdout, os.Stderr, testWorkerBuild))
	}
	os.Exit(m.Run())
}

// testWorkerBuild mirrors harness.build exactly — same keys, same trial
// specs, same seed-derived values — so worker-mode results byte-compare
// against in-process runs of the same campaign. Name prefixes select failure
// behavior: "poison-" kills the process inside the first trial body (before
// anything journals — the no-progress crash loop), "slow-" paces each trial
// at ~60ms so chaos kills land mid-campaign.
func testWorkerBuild(spec *campaigns.Spec) (*sweep.Campaign, error) {
	n := spec.Runs
	if n <= 0 {
		n = 3
	}
	poison := strings.HasPrefix(spec.Name, "poison-")
	slow := strings.HasPrefix(spec.Name, "slow-")
	c := &sweep.Campaign{Name: spec.Name, Seed: spec.Seed}
	for i := 0; i < n; i++ {
		c.Trials = append(c.Trials, sweep.Trial{
			Key:  fmt.Sprintf("%s/t%03d", spec.Name, i),
			Spec: map[string]int{"i": i},
			Run: func(t *sweep.T) (any, error) {
				if poison {
					os.Exit(3)
				}
				if slow {
					time.Sleep(60 * time.Millisecond)
				}
				return map[string]int64{"seed": t.Seed}, nil
			},
		})
	}
	return c, nil
}

// testWorkerOpts re-execs this test binary as the worker, with fast restart
// backoff so crash-loop tests converge quickly.
func testWorkerOpts() simd.WorkerOptions {
	return simd.WorkerOptions{
		Cmd:         []string{os.Args[0]},
		Env:         append(os.Environ(), "SIMD_TEST_WORKER=1"),
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	}
}

// TestWorkerModeMatchesInProcess: the same campaign run out of process and in
// process produces byte-identical results.json — and in worker mode not one
// trial body executes inside the daemon.
func TestWorkerModeMatchesInProcess(t *testing.T) {
	ctx := testCtx(t)
	h := newHarness()
	dw := startDaemon(t, simd.Options{Store: t.TempDir(), Build: h.build, Worker: testWorkerOpts()})
	defer dw.stop()
	cl := dw.client("iso")

	st, err := cl.Submit(ctx, specJSON("wmode", 5, 4))
	if err != nil {
		t.Fatal(err)
	}
	st, err = cl.Await(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != simd.StateDone || st.Executed != 4 || st.Cached != 0 {
		t.Fatalf("worker-mode campaign = %+v, want done with 4 executed", st)
	}
	if st.Restarts != 0 || st.Breaker == "open" {
		t.Fatalf("undisturbed campaign reports restarts=%d breaker=%q", st.Restarts, st.Breaker)
	}
	if n := h.entries.Load(); n != 0 {
		t.Fatalf("%d trial bodies ran inside the daemon; worker mode must execute out of process", n)
	}
	wres, err := cl.Results(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	// The reference: same spec, in-process daemon, fresh store.
	h2 := newHarness()
	dp := startDaemon(t, simd.Options{Store: t.TempDir(), Build: h2.build})
	defer dp.stop()
	cl2 := dp.client("ref")
	st2, err := cl2.Submit(ctx, specJSON("wmode", 5, 4))
	if err != nil {
		t.Fatal(err)
	}
	if st2, err = cl2.Await(ctx, st2.ID); err != nil || st2.State != simd.StateDone {
		t.Fatalf("reference campaign: %+v, %v", st2, err)
	}
	pres, err := cl2.Results(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(wres) != string(pres) {
		t.Fatalf("worker-mode results (%d bytes) differ from in-process results (%d bytes)", len(wres), len(pres))
	}
}

// TestWorkerKilledTwiceResumes is the acceptance scenario: the chaos
// WorkerKiller SIGKILLs the campaign's worker twice mid-run; the supervisor
// restarts it each time, the journal carries the finished trials across, the
// campaign completes with zero re-executed trials and its artifacts are
// byte-identical to an unharassed run.
func TestWorkerKilledTwiceResumes(t *testing.T) {
	ctx := testCtx(t)
	store := t.TempDir()
	killer := &chaos.WorkerKiller{
		Plan:  chaos.NewPlan(7),
		Kills: 2,
		Min:   80 * time.Millisecond,
		Max:   150 * time.Millisecond,
	}
	wo := testWorkerOpts()
	wo.SpawnHook = func(campaign string, attempt, pid int) { killer.Arm(pid) }
	h := newHarness()
	d := startDaemon(t, simd.Options{Store: store, Build: h.build, Worker: wo})
	defer d.stop()
	cl := d.client("chaos")

	st, err := cl.Submit(ctx, specJSON("slow-prey", 9, 8))
	if err != nil {
		t.Fatal(err)
	}
	if st, err = cl.Await(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != simd.StateDone {
		t.Fatalf("harassed campaign = %+v, want done", st)
	}
	if st.Restarts != 2 {
		t.Fatalf("restarts=%d, want 2 (both kills landed: %d)", st.Restarts, killer.Killed())
	}
	if st.LastExit != "signal: killed" {
		t.Fatalf("last_exit=%q, want \"signal: killed\"", st.LastExit)
	}
	// The merge accounts for every trial exactly once across incarnations.
	if st.Executed+st.Cached != 8 || st.Failed != 0 {
		t.Fatalf("executed=%d cached=%d failed=%d, want executed+cached=8", st.Executed, st.Cached, st.Failed)
	}
	// Zero re-execution, asserted at the journal: one line per trial, none
	// appended twice.
	if n, jerr := sweep.ProbeJournal(filepath.Join(store, "cache"), "", "slow-prey", 9); jerr != nil || n != 8 {
		t.Fatalf("journal probe = (%d, %v), want (8, nil) — a recount means a trial re-executed", n, jerr)
	}
	killed, err := cl.Results(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	// The unharassed reference in a fresh store.
	h2 := newHarness()
	d2 := startDaemon(t, simd.Options{Store: t.TempDir(), Build: h2.build, Worker: testWorkerOpts()})
	defer d2.stop()
	cl2 := d2.client("calm")
	st2, err := cl2.Submit(ctx, specJSON("slow-prey", 9, 8))
	if err != nil {
		t.Fatal(err)
	}
	if st2, err = cl2.Await(ctx, st2.ID); err != nil || st2.State != simd.StateDone {
		t.Fatalf("reference campaign: %+v, %v", st2, err)
	}
	calm, err := cl2.Results(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(killed) != string(calm) {
		t.Fatalf("results differ: killed-twice run %d bytes, unharassed run %d bytes", len(killed), len(calm))
	}
}

// TestCrashLoopBreakerIsolates: a poison campaign whose worker dies on every
// incarnation without progress trips the breaker after K deaths and lands in
// the terminal crash_loop state — while a healthy campaign sharing the daemon
// completes untouched. Resubmitting the poison spec re-arms the breaker.
func TestCrashLoopBreakerIsolates(t *testing.T) {
	ctx := testCtx(t)
	wo := testWorkerOpts()
	wo.CrashLoopK = 3
	h := newHarness()
	d := startDaemon(t, simd.Options{Store: t.TempDir(), Build: h.build, Concurrency: 2, Worker: wo})
	defer d.stop()
	cl := d.client("ops")

	poison, err := cl.Submit(ctx, specJSON("poison-spec", 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := cl.Submit(ctx, specJSON("slow-good", 2, 5))
	if err != nil {
		t.Fatal(err)
	}

	if healthy, err = cl.Await(ctx, healthy.ID); err != nil || healthy.State != simd.StateDone {
		t.Fatalf("healthy campaign beside a crash loop: %+v, %v", healthy, err)
	}
	if poison, err = cl.Await(ctx, poison.ID); err != nil {
		t.Fatal(err)
	}
	if poison.State != simd.StateCrashLoop {
		t.Fatalf("poison campaign state %q (err %q), want crash_loop", poison.State, poison.Err)
	}
	if poison.Restarts != 3 || poison.LastExit != "exit status 3" {
		t.Fatalf("poison restarts=%d last_exit=%q, want 3 / \"exit status 3\"", poison.Restarts, poison.LastExit)
	}
	if poison.Breaker != "open" {
		t.Fatalf("poison breaker=%q, want open", poison.Breaker)
	}
	if !strings.Contains(poison.Err, "crash loop") {
		t.Fatalf("poison err %q does not name the crash loop", poison.Err)
	}
	stats, _, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Campaigns["crash_loop"] != 1 || stats.Campaigns["done"] != 1 {
		t.Fatalf("stats.Campaigns = %v, want crash_loop:1 done:1", stats.Campaigns)
	}

	// Resubmission is the operator's re-arm: the campaign requeues (not
	// deduped-terminal), runs again, and trips again.
	again, err := cl.Submit(ctx, specJSON("poison-spec", 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if again.Terminal() {
		t.Fatalf("resubmitted poison campaign answered terminal %q; want requeued", again.State)
	}
	if again, err = cl.Await(ctx, again.ID); err != nil || again.State != simd.StateCrashLoop {
		t.Fatalf("re-armed poison campaign: %+v, %v", again, err)
	}
	if again.Restarts != 3 {
		t.Fatalf("re-armed run restarts=%d, want a fresh count of 3", again.Restarts)
	}
}

// TestWorkerJournalBusyPreflight: when another process (here: an in-process
// sweep.Run) holds the campaign's journal flock, the dispatcher's preflight
// fails the campaign with a typed journal error before any worker spawns —
// zero incarnations burned against the breaker — and once the holder exits, a
// resubmission resumes the campaign entirely from the holder's journal.
func TestWorkerJournalBusyPreflight(t *testing.T) {
	ctx := testCtx(t)
	store := t.TempDir()
	h := newHarness()
	d := startDaemon(t, simd.Options{Store: store, Build: h.build, Worker: testWorkerOpts()})
	defer d.stop()
	cl := d.client("overlap")

	// The conflicting holder: the same campaign identity (name, seed, version,
	// cache dir) with the same trial identities, run in process and parked on
	// its first trial so it holds the journal flock.
	cache := filepath.Join(store, "cache")
	gate := make(chan struct{})
	entered := make(chan struct{})
	holder := &sweep.Campaign{Name: "busy-j", Seed: 3}
	for i := 0; i < 3; i++ {
		i := i
		holder.Trials = append(holder.Trials, sweep.Trial{
			Key:  fmt.Sprintf("busy-j/t%03d", i),
			Spec: map[string]int{"i": i},
			Run: func(tt *sweep.T) (any, error) {
				if i == 0 {
					close(entered)
					<-gate
				}
				return map[string]int64{"seed": tt.Seed}, nil
			},
		})
	}
	holderDone := make(chan error, 1)
	go func() {
		_, err := sweep.Run(holder, sweep.Options{Workers: 1, CacheDir: cache})
		holderDone <- err
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("holder campaign never started")
	}

	st, err := cl.Submit(ctx, specJSON("busy-j", 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st, err = cl.Await(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != simd.StateFailed || !strings.Contains(st.Err, "journal") {
		t.Fatalf("campaign against a held journal = %+v, want failed with a journal error", st)
	}
	if st.Restarts != 0 {
		t.Fatalf("preflight burned %d worker incarnations; the probe must catch the conflict first", st.Restarts)
	}

	close(gate)
	if err := <-holderDone; err != nil {
		t.Fatalf("holder campaign failed: %v", err)
	}

	// The holder journaled all three trials; the resubmitted campaign resumes
	// from them without executing anything.
	st2, err := cl.Submit(ctx, specJSON("busy-j", 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Terminal() {
		t.Fatalf("resubmission answered terminal %q; want requeued", st2.State)
	}
	if st2, err = cl.Await(ctx, st2.ID); err != nil || st2.State != simd.StateDone {
		t.Fatalf("resubmitted campaign: %+v, %v", st2, err)
	}
	if st2.Executed != 0 || st2.Cached != 3 {
		t.Fatalf("resumed campaign executed=%d cached=%d, want 0/3 — every trial was in the holder's journal", st2.Executed, st2.Cached)
	}
}

// TestSubmitNoSpace: a full disk refuses the submission with a typed 507 that
// the client never retries.
func TestSubmitNoSpace(t *testing.T) {
	ctx := testCtx(t)
	h := newHarness()
	faults := &chaos.StoreFaults{NoSpaceAfter: 1}
	d := startDaemon(t, simd.Options{Store: t.TempDir(), Build: h.build, StoreFault: faults.Fault})
	defer d.stop()
	cl := d.client("full")
	cl.MaxAttempts = 5

	_, err := cl.Submit(ctx, specJSON("doomed", 1, 3))
	if err == nil {
		t.Fatal("submission to a full disk succeeded")
	}
	if !strings.Contains(err.Error(), "507") || !strings.Contains(err.Error(), simd.ReasonNoSpace) {
		t.Fatalf("full-disk submit error %q, want a typed 507 %s", err, simd.ReasonNoSpace)
	}
	stats, _, serr := cl.Stats(ctx)
	if serr != nil {
		t.Fatal(serr)
	}
	// Exactly one rejection: the client recognized 507 as non-retryable.
	if stats.Rejected.NoSpace != 1 {
		t.Fatalf("rejected.no_space = %d, want 1 (a higher count means the client retried a full disk)", stats.Rejected.NoSpace)
	}
}
