package simd_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mkos/internal/simd"
)

// scriptedServer answers each request with the next scripted response,
// repeating the last one when the script runs out, and counts attempts.
type scriptedServer struct {
	calls   atomic.Int64
	script  []scriptedResp
	httpSrv *httptest.Server
}

type scriptedResp struct {
	code   int
	reason string // ErrorResponse.Error for non-2xx
}

func newScripted(t *testing.T, script ...scriptedResp) *scriptedServer {
	t.Helper()
	s := &scriptedServer{script: script}
	s.httpSrv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(s.calls.Add(1)) - 1
		if i >= len(s.script) {
			i = len(s.script) - 1
		}
		resp := s.script[i]
		if resp.code < 300 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(resp.code)
			json.NewEncoder(w).Encode(simd.Status{ID: "c1", State: simd.StateQueued})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.code)
		json.NewEncoder(w).Encode(simd.ErrorResponse{Error: resp.reason, Detail: "scripted"})
	}))
	t.Cleanup(s.httpSrv.Close)
	return s
}

func (s *scriptedServer) client() *simd.Client {
	return &simd.Client{
		BaseURL:     s.httpSrv.URL,
		MaxAttempts: 6,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	}
}

// TestClientRetryDiscipline pins which failures the client retries under its
// deterministic backoff and which fail fast: transient typed conflicts (409
// journal_busy, 409 not_done) and backpressure (429/503/500) retry; every
// other 4xx — including a 409 with a non-transient reason — and the 507
// full-disk rejection are answered to the caller on the first attempt.
func TestClientRetryDiscipline(t *testing.T) {
	cases := []struct {
		name      string
		script    []scriptedResp
		wantErr   string // "" = success expected
		wantCalls int64
	}{
		{
			name: "journal_busy retried to success",
			script: []scriptedResp{
				{http.StatusConflict, simd.ReasonJournalBusy},
				{http.StatusConflict, simd.ReasonJournalBusy},
				{http.StatusAccepted, ""},
			},
			wantCalls: 3,
		},
		{
			name: "not_done retried to success",
			script: []scriptedResp{
				{http.StatusConflict, simd.ReasonNotDone},
				{http.StatusAccepted, ""},
			},
			wantCalls: 2,
		},
		{
			name:      "conflict with a non-transient reason fails fast",
			script:    []scriptedResp{{http.StatusConflict, "spec_mismatch"}},
			wantErr:   "spec_mismatch",
			wantCalls: 1,
		},
		{
			name:      "no_space fails fast",
			script:    []scriptedResp{{http.StatusInsufficientStorage, simd.ReasonNoSpace}},
			wantErr:   simd.ReasonNoSpace,
			wantCalls: 1,
		},
		{
			name:      "bad_spec fails fast",
			script:    []scriptedResp{{http.StatusBadRequest, simd.ReasonBadSpec}},
			wantErr:   simd.ReasonBadSpec,
			wantCalls: 1,
		},
		{
			name: "backpressure and drain retried to success",
			script: []scriptedResp{
				{http.StatusTooManyRequests, simd.ReasonQueueFull},
				{http.StatusServiceUnavailable, simd.ReasonDraining},
				{http.StatusAccepted, ""},
			},
			wantCalls: 3,
		},
		{
			name:      "persistent journal_busy exhausts the attempt budget",
			script:    []scriptedResp{{http.StatusConflict, simd.ReasonJournalBusy}},
			wantErr:   "giving up after 6 attempts",
			wantCalls: 6,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := newScripted(t, tc.script...)
			_, err := srv.client().Submit(testCtx(t), specJSON("retry", 1, 1))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("submit failed: %v", err)
				}
			} else {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("submit error %v, want it to contain %q", err, tc.wantErr)
				}
			}
			if got := srv.calls.Load(); got != tc.wantCalls {
				t.Fatalf("server saw %d attempts, want %d", got, tc.wantCalls)
			}
		})
	}
}
