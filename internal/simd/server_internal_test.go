package simd

import (
	"context"
	"testing"
	"time"

	"mkos/internal/sweep"
	"mkos/internal/sweep/campaigns"
)

// TestPreDispatchCancelTakesEffect reproduces the lost-cancel race: DELETE
// lands after a dispatcher popped the campaign but before runCampaign
// installed c.cancel. handleCancel then only sets cancelReq (returning 202);
// runCampaign must notice the flag when it installs the cancel func and
// cancel its own context, or the sweep runs to completion and settles Done
// despite the accepted cancel.
func TestPreDispatchCancelTakesEffect(t *testing.T) {
	build := func(spec *campaigns.Spec) (*sweep.Campaign, error) {
		c := &sweep.Campaign{Name: spec.Name, Seed: spec.Seed}
		c.Trials = append(c.Trials, sweep.Trial{
			Key:  spec.Name + "/t000",
			Spec: map[string]int{"i": 0},
			Run: func(tr *sweep.T) (any, error) {
				// Poll cancellation, finishing successfully after a budget: a
				// lost cancel becomes a Done state the assertion catches,
				// rather than a hang.
				for i := 0; i < 200; i++ {
					if tr.Canceled() {
						return nil, sweep.ErrTrialCanceled
					}
					time.Sleep(2 * time.Millisecond)
				}
				return map[string]int64{"seed": tr.Seed}, nil
			},
		})
		return c, nil
	}
	s, err := NewServer(Options{Store: t.TempDir(), Build: build})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	spec := []byte(`{"name":"race","seed":1,"runs":1}`)
	id, parsed, err := SpecID(spec)
	if err != nil {
		t.Fatal(err)
	}
	built, err := build(parsed)
	if err != nil {
		t.Fatal(err)
	}
	c := &campaign{
		id: id, canon: spec, built: built, submitted: time.Now(),
		st: Status{ID: id, Client: "race", State: StateQueued, Total: 1},
	}
	// Leave the campaign exactly where the race does: popped from the queue,
	// cancel accepted (cancelReq set), cancel func not yet installed.
	c.cancelReq = true
	s.mu.Lock()
	s.camps[id] = c
	s.mu.Unlock()

	s.runCampaign(s.runCtx, c)

	s.mu.Lock()
	state := c.st.State
	s.mu.Unlock()
	if state != StateCanceled {
		t.Fatalf("pre-dispatch cancel settled campaign as %s, want %s", state, StateCanceled)
	}
}

// TestRunCampaignHonorsDispatcherContext pins the ctx-threading contract:
// runCampaign's cancellation scope is the context its dispatcher passes in,
// not a context reached through Server fields. A dispatcher context that is
// already dead must interrupt the sweep (trials journaled, campaign left
// resumable) rather than let it run to completion and settle Done.
func TestRunCampaignHonorsDispatcherContext(t *testing.T) {
	build := func(spec *campaigns.Spec) (*sweep.Campaign, error) {
		c := &sweep.Campaign{Name: spec.Name, Seed: spec.Seed}
		c.Trials = append(c.Trials, sweep.Trial{
			Key:  spec.Name + "/t000",
			Spec: map[string]int{"i": 0},
			Run: func(tr *sweep.T) (any, error) {
				for i := 0; i < 200; i++ {
					if tr.Canceled() {
						return nil, sweep.ErrTrialCanceled
					}
					time.Sleep(2 * time.Millisecond)
				}
				return map[string]int64{"seed": tr.Seed}, nil
			},
		})
		return c, nil
	}
	s, err := NewServer(Options{Store: t.TempDir(), Build: build})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	spec := []byte(`{"name":"ctxdead","seed":1,"runs":1}`)
	id, parsed, err := SpecID(spec)
	if err != nil {
		t.Fatal(err)
	}
	built, err := build(parsed)
	if err != nil {
		t.Fatal(err)
	}
	c := &campaign{
		id: id, canon: spec, built: built, submitted: time.Now(),
		st: Status{ID: id, Client: "ctxdead", State: StateQueued, Total: 1},
	}
	s.mu.Lock()
	s.camps[id] = c
	s.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.runCampaign(ctx, c)

	s.mu.Lock()
	state := c.st.State
	s.mu.Unlock()
	if state != StateInterrupted {
		t.Fatalf("dead dispatcher ctx settled campaign as %s, want %s", state, StateInterrupted)
	}
}
