package simd

import "sync"

// Event is one entry in a campaign's live progress stream, delivered over
// GET /v1/campaigns/{id}/events as SSE. Two kinds flow on the same stream:
// state transitions (Type "state") and per-trial completions (Type "trial").
// Seq is the campaign-scoped sequence number (the SSE id:), dense from 1, so
// a consumer can detect gaps. Trial events are published under the same lock
// as the sweep journal append, so their order is exactly the journal's line
// order.
type Event struct {
	Seq  int64  `json:"seq"`
	Type string `json:"type"`
	ID   string `json:"id"`

	// State fields (Type "state").
	State string `json:"state,omitempty"`
	Err   string `json:"err,omitempty"`

	// Trial fields (Type "trial").
	Key      string  `json:"key,omitempty"`
	Cached   bool    `json:"cached,omitempty"`
	TrialErr string  `json:"trial_err,omitempty"`
	WallMS   float64 `json:"wall_ms,omitempty"`
	Done     int     `json:"done,omitempty"`
	Total    int     `json:"total,omitempty"`
	// ETAMS estimates the remaining campaign wall time; 0 when unknown.
	ETAMS int64 `json:"eta_ms,omitempty"`

	// Worker fields (Type "worker": a supervised worker died and will be
	// restarted; Err carries the exit cause).
	Restarts int `json:"restarts,omitempty"`
}

// subBuffer is the per-subscriber channel depth. A subscriber that falls
// this far behind a live campaign is dropped (its channel closes) rather
// than allowed to block the dispatcher: SSE is a best-effort live view, the
// journal and results are the durable record.
const subBuffer = 256

// eventLog is one campaign's retained event history plus its live
// subscribers.
type eventLog struct {
	events []Event
	subs   map[chan Event]struct{}
	done   bool // terminal: no further events will be published
}

// broker fans campaign events out to SSE subscribers and retains each
// campaign's full history so a late subscriber replays from the start.
type broker struct {
	mu   sync.Mutex
	logs map[string]*eventLog
}

func newBroker() *broker {
	return &broker{logs: make(map[string]*eventLog)}
}

func (b *broker) log(id string) *eventLog {
	l, ok := b.logs[id]
	if !ok {
		l = &eventLog{subs: make(map[chan Event]struct{})}
		b.logs[id] = l
	}
	return l
}

// publish appends ev to the campaign's history (stamping Seq) and fans it
// out. Publishing to a closed log is a no-op: a drain may close streams
// while a dispatcher is still settling.
func (b *broker) publish(id string, ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	l := b.log(id)
	if l.done {
		return
	}
	ev.ID = id
	ev.Seq = int64(len(l.events)) + 1
	l.events = append(l.events, ev)
	for ch := range l.subs {
		select {
		case ch <- ev:
		default:
			// Slow subscriber: drop it rather than block the publisher.
			delete(l.subs, ch)
			close(ch)
		}
	}
}

// subscribe returns the campaign's history so far and a live channel for
// what follows. When the log is already closed (terminal campaign or a
// drained daemon) the channel is nil: the replay is the whole story.
func (b *broker) subscribe(id string) ([]Event, chan Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	l := b.log(id)
	replay := append([]Event(nil), l.events...)
	if l.done {
		return replay, nil
	}
	ch := make(chan Event, subBuffer)
	l.subs[ch] = struct{}{}
	return replay, ch
}

// unsubscribe detaches a live channel (client went away).
func (b *broker) unsubscribe(id string, ch chan Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	l, ok := b.logs[id]
	if !ok {
		return
	}
	if _, live := l.subs[ch]; live {
		delete(l.subs, ch)
		close(ch)
	}
}

// closeLog marks a campaign's stream complete and releases its subscribers.
func (b *broker) closeLog(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	l := b.log(id)
	if l.done {
		return
	}
	l.done = true
	for ch := range l.subs {
		delete(l.subs, ch)
		close(ch)
	}
}

// closeAll releases every subscriber (daemon drain/kill): streams of
// non-terminal campaigns end cleanly; their logs stay replayable but accept
// no further events this incarnation.
func (b *broker) closeAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, l := range b.logs {
		l.done = true
		for ch := range l.subs {
			delete(l.subs, ch)
			close(ch)
		}
	}
}
