package linux

import (
	"testing"
	"time"

	"mkos/internal/kernel"
	"mkos/internal/noise"
	"mkos/internal/sim"
)

func TestCFSPinAndWake(t *testing.T) {
	e := sim.NewEngine()
	c := NewCFS(e, []int{0, 1})
	if err := c.PinApp(0, "app"); err != nil {
		t.Fatal(err)
	}
	if err := c.PinApp(0, "app2"); err == nil {
		t.Fatal("double pin must fail")
	}
	if err := c.PinApp(9, "app"); err == nil {
		t.Fatal("unknown core must fail")
	}
	if err := c.Wake(9, "d", kernel.DaemonTask, time.Millisecond); err == nil {
		t.Fatal("wake on unknown core must fail")
	}
	if err := c.Wake(0, "d", kernel.DaemonTask, 0); err == nil {
		t.Fatal("zero service must fail")
	}
}

func TestCFSDaemonStealsExactly(t *testing.T) {
	e := sim.NewEngine()
	c := NewCFS(e, []int{0})
	if err := c.PinApp(0, "app"); err != nil {
		t.Fatal(err)
	}
	// A daemon waking for 500us steals exactly 500us from the app.
	if err := c.Wake(0, "sshd", kernel.DaemonTask, 500*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if got := c.StolenOn(0); got != 500*time.Microsecond {
		t.Fatalf("stolen = %v, want 500us", got)
	}
	// The other core is untouched.
	if c.StolenOn(1) != 0 {
		t.Fatal("phantom steal on unmanaged core")
	}
}

func TestCFSLongServiceSliced(t *testing.T) {
	e := sim.NewEngine()
	c := NewCFS(e, []int{0})
	_ = c.PinApp(0, "app")
	// A 10ms daemon burst is sliced at 3ms granularity but the total steal
	// still adds up to 10ms.
	if err := c.Wake(0, "journald", kernel.DaemonTask, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if got := c.StolenOn(0); got != 10*time.Millisecond {
		t.Fatalf("stolen = %v, want 10ms", got)
	}
	// The app got the core back between slices: its accounted run time is
	// positive even though the daemon demanded a long burst.
	if e.Now() < sim.Time(10*time.Millisecond) {
		t.Fatal("clock did not advance through the slices")
	}
}

func TestCFSMultipleWakersAccumulate(t *testing.T) {
	e := sim.NewEngine()
	c := NewCFS(e, []int{0})
	_ = c.PinApp(0, "app")
	for i := 0; i < 5; i++ {
		if err := c.Wake(0, "kworker", kernel.KworkerTask, 200*time.Microsecond); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	if got := c.StolenOn(0); got != time.Millisecond {
		t.Fatalf("stolen = %v, want 1ms", got)
	}
}

// TestCFSMatchesNoiseModel is the cross-validation: replay a generated
// noise timeline's daemon events through the event-driven scheduler and
// check the derived steal equals the statistical model's stolen time.
func TestCFSMatchesNoiseModel(t *testing.T) {
	p := &noise.Profile{}
	p.MustAdd(&noise.Source{
		Name: "daemons", Cores: []int{0}, Mode: noise.TargetOne,
		Every: 20 * time.Millisecond, EveryCV: 0.5,
		Length: 300 * time.Microsecond, LengthCV: 0.8,
	})
	horizon := 2 * time.Second
	tl := p.Timeline(horizon, sim.NewRand(17))

	e := sim.NewEngine()
	c := NewCFS(e, []int{0})
	_ = c.PinApp(0, "app")
	for _, iv := range tl.ForCPU(0) {
		iv := iv
		e.ScheduleAt(iv.Start, "wake", func(*sim.Engine) {
			_ = c.Wake(0, iv.Source, kernel.DaemonTask, iv.Len)
		})
	}
	e.Run()
	if got, want := c.StolenOn(0), tl.TotalStolen(0); got != want {
		t.Fatalf("scheduler-derived steal %v != statistical model %v", got, want)
	}
}
