package linux

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mkos/internal/kernel"
)

// The procfs/sysfs configuration surface. The paper's countermeasures are
// applied through exactly these files — "Device IRQs are routed to assistant
// cores by configuring the relevant procfs files (e.g.,
// /proc/irq/IRQ_NUMBER/smp_affinity). Additionally, kworker tasks are also
// bound to assistant cores by changing the CPU affinity value through their
// sysfs interface" (Sec. 4.2) — so the model exposes the same files and
// routes writes to the same kernel objects.

// ProcFS is the virtual /proc + /sys view over one kernel instance.
type ProcFS struct {
	k *Kernel
}

// Proc returns the kernel's configuration filesystem.
func (k *Kernel) Proc() *ProcFS { return &ProcFS{k: k} }

// ProcFS errors.
var (
	ErrNoSuchFile = errors.New("linux: no such proc/sys file")
	ErrBadValue   = errors.New("linux: invalid value for proc/sys file")
)

// Read returns a file's current contents.
func (p *ProcFS) Read(path string) (string, error) {
	switch {
	case strings.HasPrefix(path, "/proc/irq/") && strings.HasSuffix(path, "/smp_affinity"):
		irq, err := p.irqOf(path)
		if err != nil {
			return "", err
		}
		return maskToHex(irq.Affinity), nil
	case path == "/sys/devices/virtual/workqueue/cpumask":
		if len(p.k.Kworkers) == 0 {
			return "", fmt.Errorf("%w: %s", ErrNoSuchFile, path)
		}
		return maskToHex(p.k.Kworkers[0].Affinity), nil
	case path == "/proc/sys/vm/nr_overcommit_hugepages":
		if p.k.Huge == nil {
			return "0", nil
		}
		// Unlimited overcommit is what Fugaku configures (Sec. 4.1.3);
		// the kernel reports the configured ceiling.
		return "18446744073709551615", nil
	case path == "/sys/kernel/mm/transparent_hugepage/enabled":
		if p.k.Tune.LargePage == THP {
			return "[always] madvise never", nil
		}
		return "always madvise [never]", nil
	case path == "/proc/cmdline":
		return p.cmdline(), nil
	case path == "/proc/sys/kernel/sched_min_granularity_ns":
		return strconv.FormatInt(int64(cfsSlice), 10), nil
	}
	return "", fmt.Errorf("%w: %s", ErrNoSuchFile, path)
}

// Write updates a file, mutating the underlying kernel object exactly as
// the real interfaces do.
func (p *ProcFS) Write(path, value string) error {
	value = strings.TrimSpace(value)
	switch {
	case strings.HasPrefix(path, "/proc/irq/") && strings.HasSuffix(path, "/smp_affinity"):
		irq, err := p.irqOf(path)
		if err != nil {
			return err
		}
		mask, err := hexToMask(value)
		if err != nil {
			return err
		}
		return irq.Route(mask)
	case path == "/sys/devices/virtual/workqueue/cpumask":
		mask, err := hexToMask(value)
		if err != nil {
			return err
		}
		for _, kw := range p.k.Kworkers {
			if err := kw.SetAffinity(mask); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("%w: %s", ErrNoSuchFile, path)
}

// irqOf resolves /proc/irq/N/smp_affinity to the IRQ descriptor.
func (p *ProcFS) irqOf(path string) (*kernel.IRQ, error) {
	parts := strings.Split(path, "/")
	if len(parts) != 5 {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, path)
	}
	n, err := strconv.Atoi(parts[3])
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, path)
	}
	for _, irq := range p.k.IRQs {
		if irq.Number == n {
			return irq, nil
		}
	}
	return nil, fmt.Errorf("%w: IRQ %d", ErrNoSuchFile, n)
}

// cmdline renders the boot command line implied by the tuning — the
// nohz_full argument both platforms use (Table 1).
func (p *ProcFS) cmdline() string {
	args := []string{"BOOT_IMAGE=/vmlinuz root=/dev/sda2 ro"}
	if p.k.Tune.NohzFull {
		app := kernel.NewCPUMask(p.k.Topo.AppCores()...)
		args = append(args, "nohz_full="+app.String(), "rcu_nocbs="+app.String())
	}
	if p.k.Tune.LargePage == THP {
		args = append(args, "transparent_hugepage=always")
	}
	return strings.Join(args, " ")
}

// maskToHex renders a CPU mask in the kernel's comma-separated 32-bit hex
// group format (most significant group first), e.g. "3" or "ffff,ffffffff".
func maskToHex(m kernel.CPUMask) string {
	cores := m.Cores()
	if len(cores) == 0 {
		return "0"
	}
	maxCore := cores[len(cores)-1]
	groups := maxCore/32 + 1
	words := make([]uint32, groups)
	for _, c := range cores {
		words[c/32] |= 1 << (c % 32)
	}
	var parts []string
	for i := groups - 1; i >= 0; i-- {
		if i == groups-1 {
			parts = append(parts, strconv.FormatUint(uint64(words[i]), 16))
		} else {
			parts = append(parts, fmt.Sprintf("%08x", words[i]))
		}
	}
	return strings.Join(parts, ",")
}

// hexToMask parses the kernel hex group format back into a mask.
func hexToMask(s string) (kernel.CPUMask, error) {
	s = strings.TrimPrefix(strings.TrimSpace(s), "0x")
	if s == "" {
		return kernel.CPUMask{}, fmt.Errorf("%w: empty mask", ErrBadValue)
	}
	groups := strings.Split(s, ",")
	var mask kernel.CPUMask
	// Groups arrive most-significant first.
	for gi, g := range groups {
		if g == "" {
			return kernel.CPUMask{}, fmt.Errorf("%w: %q", ErrBadValue, s)
		}
		v, err := strconv.ParseUint(g, 16, 32)
		if err != nil {
			return kernel.CPUMask{}, fmt.Errorf("%w: %q", ErrBadValue, g)
		}
		base := (len(groups) - 1 - gi) * 32
		for b := 0; b < 32; b++ {
			if v&(1<<b) != 0 {
				mask.Set(base + b)
			}
		}
	}
	return mask, nil
}

// Files lists the configuration surface, for discoverability.
func (p *ProcFS) Files() []string {
	out := []string{
		"/proc/cmdline",
		"/proc/sys/kernel/sched_min_granularity_ns",
		"/proc/sys/vm/nr_overcommit_hugepages",
		"/sys/devices/virtual/workqueue/cpumask",
		"/sys/kernel/mm/transparent_hugepage/enabled",
	}
	for _, irq := range p.k.IRQs {
		out = append(out, fmt.Sprintf("/proc/irq/%d/smp_affinity", irq.Number))
	}
	sort.Strings(out)
	return out
}
