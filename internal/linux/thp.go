package linux

import (
	"errors"
	"time"

	"mkos/internal/mem"
	"mkos/internal/sim"
)

// Transparent Huge Pages: the OFP large-page mechanism (Table 1). Unlike
// hugeTLBfs, THP is opportunistic — khugepaged scans process memory in the
// background and collapses aligned 4 KiB runs into 2 MiB pages when the
// buddy allocator can still produce high-order blocks, and page faults may
// trigger direct compaction stalls trying to assemble one synchronously.
// Both behaviours matter to the study: collapse success decays with
// fragmentation (why THP coverage degrades where hugeTLBfs + virtual NUMA
// does not, Sec. 4.1.2/4.1.3), and khugepaged/compaction work is itself a
// noise source on OFP (the "thp-compaction" entry of the noise profile).
type Khugepaged struct {
	buddy *mem.Buddy

	// ScanPagesPerPass is how many base pages one khugepaged pass examines
	// (pages_to_scan).
	ScanPagesPerPass int
	// ScanPeriod is the sleep between passes (scan_sleep_millisecs).
	ScanPeriod time.Duration

	collapsed   uint64
	failed      uint64
	directStall time.Duration
}

// THP errors.
var ErrTHPDisabled = errors.New("linux: THP not configured on this kernel")

// hugeOrder is the buddy order of a 2 MiB block over 4 KiB base pages.
const hugeOrder = 9

// NewTHP attaches THP management to a buddy allocator with 4 KiB base pages
// (the x86 configuration; RHEL/aarch64 uses hugeTLBfs instead, Sec. 4.1.3).
func NewKhugepaged(buddy *mem.Buddy) (*Khugepaged, error) {
	if buddy == nil || buddy.BasePage() != 4<<10 {
		return nil, ErrTHPDisabled
	}
	return &Khugepaged{
		buddy:            buddy,
		ScanPagesPerPass: 4096,
		ScanPeriod:       10 * time.Second,
	}, nil
}

// CollapseProbability is the chance one collapse attempt finds a free
// 2 MiB-aligned block: it tracks the buddy's high-order availability.
func (t *Khugepaged) CollapseProbability() float64 {
	return 1 - t.buddy.Fragmentation(hugeOrder)
}

// KhugepagedPass models one scan pass: attempts collapses and returns the
// CPU time consumed — the time that becomes OS noise on whichever core
// khugepaged lands on.
func (t *Khugepaged) KhugepagedPass(rng *sim.Rand) time.Duration {
	const perPageScan = 80 * time.Nanosecond
	const perCollapse = 60 * time.Microsecond // copy + remap 512 PTEs
	cost := time.Duration(t.ScanPagesPerPass) * perPageScan
	attempts := t.ScanPagesPerPass / 512
	p := t.CollapseProbability()
	for i := 0; i < attempts; i++ {
		if rng.Bernoulli(p) {
			t.collapsed++
			cost += perCollapse
		} else {
			t.failed++
		}
	}
	return cost
}

// FaultAlloc models a THP-eligible page fault: it tries to grab a 2 MiB
// block; failure falls back to a base page after a direct-compaction stall
// whose length grows with fragmentation. It returns the granted page size
// and the stall.
func (t *Khugepaged) FaultAlloc(rng *sim.Rand) (mem.PageSize, time.Duration) {
	p := t.CollapseProbability()
	if rng.Bernoulli(p) {
		if r, err := t.buddy.AllocOrder(hugeOrder); err == nil {
			// Model bookkeeping only; hand the block straight back so the
			// caller's own accounting owns real allocations.
			_ = t.buddy.Free(r)
			return mem.Page2M, 0
		}
	}
	// Direct compaction: scan cost proportional to how fragmented we are.
	frag := t.buddy.Fragmentation(hugeOrder)
	stall := time.Duration(float64(2*time.Millisecond) * frag)
	t.directStall += stall
	return mem.Page4K, stall
}

// Stats returns (collapsed, failed, total direct-compaction stall).
func (t *Khugepaged) Stats() (collapsed, failed uint64, stall time.Duration) {
	return t.collapsed, t.failed, t.directStall
}
