package linux

import (
	"time"

	"mkos/internal/cpu"
	"mkos/internal/sim"
	"mkos/internal/telemetry"
)

// TCSCollector models the Fujitsu Technical Computing Suite job-operation
// component that "collects PMU counters to obtain number of execution
// cycles, floating-point instruction operations, memory read requests,
// memory write requests, and sleep cycles" (Sec. 4.2.1). The reads execute
// in kernel space on *every* core via IPIs even when initiated from an
// assistant core — the interference the paper eliminated with a per-job
// stop command.
type TCSCollector struct {
	pmus    []*cpu.PMU
	period  time.Duration
	stopped bool
	ticker  *sim.Ticker

	samples []TCSSample
	readOps uint64
}

// TCSSample is one fleet-wide counter snapshot.
type TCSSample struct {
	At        sim.Time
	Cycles    uint64
	FPOps     uint64
	MemReads  uint64
	MemWrites uint64
	Sleep     uint64
}

// NewTCSCollector builds the collector over one PMU per core.
func NewTCSCollector(cores int, period time.Duration) *TCSCollector {
	if period <= 0 {
		period = 11 * time.Second
	}
	pmus := make([]*cpu.PMU, cores)
	for i := range pmus {
		pmus[i] = &cpu.PMU{}
	}
	return &TCSCollector{pmus: pmus, period: period}
}

// PMU returns core c's counter block (for workload models to account into).
func (t *TCSCollector) PMU(c int) *cpu.PMU {
	if c < 0 || c >= len(t.pmus) {
		return nil
	}
	return t.pmus[c]
}

// Start schedules the periodic collection on the engine, beginning one
// period in.
func (t *TCSCollector) Start(e *sim.Engine) {
	t.stopped = false
	t.ticker = e.Every(e.Now().Add(t.period), t.period, "tcs-pmu-read", func(en *sim.Engine) {
		t.collect(en.Now())
	})
}

// collect reads every core's PMU remotely (IPIs) and aggregates.
func (t *TCSCollector) collect(at sim.Time) {
	if t.stopped {
		return
	}
	var s TCSSample
	s.At = at
	for _, p := range t.pmus {
		snap := p.Read(true) // remote read: counts an IPI into that core
		s.Cycles += snap.Cycles
		s.FPOps += snap.FPOps
		t.readOps++
	}
	telemetry.C("linux.tcs.pmu_reads").Add(int64(len(t.pmus)))
	telemetry.Instant("linux", "tcs-pmu-sweep", 0, 0, at)
	for _, p := range t.pmus {
		s.MemReads += p.MemReads
		s.MemWrites += p.MemWrites
		s.Sleep += p.SleepCycles
	}
	t.samples = append(t.samples, s)
}

// Stop is the per-job command of Sec. 4.2.1: it halts the automatic reads
// (and with them the IPI noise) for the rest of the job.
func (t *TCSCollector) Stop() {
	t.stopped = true
	if t.ticker != nil {
		t.ticker.Stop()
	}
}

// Samples returns the collected snapshots.
func (t *TCSCollector) Samples() []TCSSample { return t.samples }

// IPIsDelivered returns the total cross-core PMU reads performed — each one
// interrupted an application core.
func (t *TCSCollector) IPIsDelivered() uint64 { return t.readOps }
