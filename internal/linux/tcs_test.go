package linux

import (
	"testing"
	"time"

	"mkos/internal/sim"
)

func TestTCSCollectorPeriodicReads(t *testing.T) {
	e := sim.NewEngine()
	c := NewTCSCollector(48, 10*time.Second)
	// Simulate application activity on the PMUs.
	for i := 0; i < 48; i++ {
		c.PMU(i).AccountUser(time.Second, 1_000_000)
		c.PMU(i).FPOps = 5000
		c.PMU(i).MemReads = 300
	}
	c.Start(e)
	e.RunUntil(sim.Time(35 * time.Second))
	samples := c.Samples()
	if len(samples) != 3 { // t=10,20,30
		t.Fatalf("samples = %d, want 3", len(samples))
	}
	s := samples[0]
	if s.Cycles != 48_000_000 {
		t.Fatalf("aggregated cycles = %d", s.Cycles)
	}
	if s.FPOps != 48*5000 || s.MemReads != 48*300 {
		t.Fatalf("aggregation wrong: %+v", s)
	}
	// Every read was a cross-core IPI — the Sec. 4.2.1 interference.
	if c.IPIsDelivered() != 3*48 {
		t.Fatalf("IPIs = %d, want 144", c.IPIsDelivered())
	}
	for i := 0; i < 48; i++ {
		if c.PMU(i).ReadsViaIPI != 3 {
			t.Fatalf("core %d saw %d IPIs, want 3", i, c.PMU(i).ReadsViaIPI)
		}
	}
}

func TestTCSCollectorStopCommand(t *testing.T) {
	e := sim.NewEngine()
	c := NewTCSCollector(4, 10*time.Second)
	c.Start(e)
	e.RunUntil(sim.Time(15 * time.Second))
	if len(c.Samples()) != 1 {
		t.Fatalf("samples before stop = %d", len(c.Samples()))
	}
	// The per-job stop command: no further reads, no further IPIs.
	c.Stop()
	before := c.IPIsDelivered()
	e.RunUntil(sim.Time(100 * time.Second))
	if len(c.Samples()) != 1 {
		t.Fatal("collector kept sampling after Stop")
	}
	if c.IPIsDelivered() != before {
		t.Fatal("IPIs delivered after Stop")
	}
}

func TestTCSCollectorBounds(t *testing.T) {
	c := NewTCSCollector(2, 0) // default period applied
	if c.period != 11*time.Second {
		t.Fatalf("default period = %v", c.period)
	}
	if c.PMU(-1) != nil || c.PMU(2) != nil {
		t.Fatal("out-of-range PMU must be nil")
	}
	if c.PMU(0) == nil {
		t.Fatal("valid PMU missing")
	}
}
