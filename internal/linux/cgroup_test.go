package linux

import (
	"errors"
	"testing"

	"mkos/internal/kernel"
)

func TestCgroupHierarchy(t *testing.T) {
	root := NewRootCgroup(kernel.FullMask(8), []int{0, 1})
	sys, err := root.NewChild("system", kernel.NewCPUMask(6, 7), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name != "/system" {
		t.Fatalf("name = %s", sys.Name)
	}
	if _, err := root.NewChild("system", kernel.NewCPUMask(0), []int{0}); !errors.Is(err, ErrCgroupExists) {
		t.Fatalf("duplicate child err = %v", err)
	}
	if got, err := root.Child("system"); err != nil || got != sys {
		t.Fatalf("Child lookup: %v %v", got, err)
	}
	if _, err := root.Child("nope"); !errors.Is(err, ErrCgroupNotFound) {
		t.Fatalf("missing child err = %v", err)
	}
}

func TestCgroupSubsetEnforcement(t *testing.T) {
	root := NewRootCgroup(kernel.NewCPUMask(0, 1, 2, 3), []int{0})
	if _, err := root.NewChild("bad-cpus", kernel.NewCPUMask(4), []int{0}); err == nil {
		t.Fatal("cpuset outside parent must be rejected")
	}
	if _, err := root.NewChild("bad-mems", kernel.NewCPUMask(0), []int{5}); err == nil {
		t.Fatal("mems outside parent must be rejected")
	}
}

func TestCgroupAttachClampsAffinity(t *testing.T) {
	root := NewRootCgroup(kernel.FullMask(8), []int{0})
	app, _ := root.NewChild("app", kernel.NewCPUMask(0, 1, 2, 3), []int{0})
	task := kernel.NewTask(1, "a.out", kernel.AppTask, kernel.FullMask(8))
	if err := app.Attach(task); err != nil {
		t.Fatal(err)
	}
	if !task.Affinity.Equal(kernel.NewCPUMask(0, 1, 2, 3)) {
		t.Fatalf("affinity not clamped: %s", task.Affinity)
	}
	if app.Tasks() != 1 {
		t.Fatalf("Tasks = %d", app.Tasks())
	}
	// A task whose affinity is disjoint from the cpuset adopts the cpuset.
	task2 := kernel.NewTask(2, "b.out", kernel.AppTask, kernel.NewCPUMask(7))
	if err := app.Attach(task2); err != nil {
		t.Fatal(err)
	}
	if !task2.Affinity.Equal(kernel.NewCPUMask(0, 1, 2, 3)) {
		t.Fatalf("disjoint affinity not replaced: %s", task2.Affinity)
	}
}

func TestCgroupMemoryCharging(t *testing.T) {
	root := NewRootCgroup(kernel.FullMask(4), []int{0})
	app, _ := root.NewChild("app", kernel.NewCPUMask(0, 1), []int{0})
	app.LimitBytes = 1000
	if err := app.Charge(800); err != nil {
		t.Fatal(err)
	}
	if err := app.Charge(300); !errors.Is(err, ErrMemLimit) {
		t.Fatalf("over-limit charge err = %v", err)
	}
	if app.Usage() != 800 || root.Usage() != 800 {
		t.Fatalf("usage = %d/%d (hierarchical accounting broken)", app.Usage(), root.Usage())
	}
	app.Uncharge(500)
	if app.Usage() != 300 || root.Usage() != 300 {
		t.Fatalf("usage after uncharge = %d/%d", app.Usage(), root.Usage())
	}
	app.Uncharge(10000) // must clamp at zero
	if app.Usage() != 0 {
		t.Fatalf("usage clamped = %d", app.Usage())
	}
}

func TestCgroupParentLimitApplies(t *testing.T) {
	root := NewRootCgroup(kernel.FullMask(4), []int{0})
	root.LimitBytes = 500
	app, _ := root.NewChild("app", kernel.NewCPUMask(0), []int{0})
	if err := app.Charge(600); !errors.Is(err, ErrMemLimit) {
		t.Fatal("parent limit must apply to child charges")
	}
}

func TestCgroupSurplusHook(t *testing.T) {
	root := NewRootCgroup(kernel.FullMask(4), []int{0})
	app, _ := root.NewChild("app", kernel.NewCPUMask(0), []int{0})
	app.LimitBytes = 4 << 20

	// Stock behaviour: surplus pages bypass the controller (Sec. 4.1.3).
	if err := app.ChargeSurplus(100, 2<<20); err != nil {
		t.Fatal("stock kernel must not veto surplus pages")
	}
	if app.Usage() != 0 {
		t.Fatal("stock kernel must not account surplus pages")
	}

	// Fugaku kernel-module hook: charged and limited.
	app.ChargeSurplusPages = true
	if err := app.ChargeSurplus(2, 2<<20); err != nil {
		t.Fatal(err)
	}
	if app.Usage() != 4<<20 {
		t.Fatalf("usage = %d", app.Usage())
	}
	if err := app.ChargeSurplus(1, 2<<20); !errors.Is(err, ErrMemLimit) {
		t.Fatal("hook must enforce the cgroup limit on surplus pages")
	}
	app.UncchargeSurplus(2, 2<<20)
	if app.Usage() != 0 {
		t.Fatalf("usage after uncharge = %d", app.Usage())
	}
}

func TestContainerRuntime(t *testing.T) {
	root := NewRootCgroup(kernel.FullMask(8), []int{0, 1})
	rt := NewContainerRuntime(root, kernel.NewCPUMask(0, 1, 2, 3), []int{0})
	c1, err := rt.Create("centos:8", 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if c1.HostMode {
		t.Fatal("image container must not be host mode")
	}
	if c1.Group.LimitBytes != 1<<30 {
		t.Fatal("memory limit not applied")
	}
	if !c1.Group.CPUs.Equal(kernel.NewCPUMask(0, 1, 2, 3)) {
		t.Fatal("container cpuset wrong")
	}
	c2, err := rt.Create("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.HostMode {
		t.Fatal("empty image must select host mode")
	}
	if c1.ID == c2.ID {
		t.Fatal("container IDs must be unique")
	}
}
