package linux

import (
	"errors"
	"fmt"

	"mkos/internal/kernel"
)

// Cgroup errors.
var (
	ErrCgroupExists   = errors.New("linux: cgroup already exists")
	ErrCgroupNotFound = errors.New("linux: cgroup not found")
	ErrMemLimit       = errors.New("linux: memory cgroup limit exceeded")
)

// Cgroup is a simplified v1-style control group combining the cpuset and
// memory controllers, which is what Fugaku's isolation uses (Sec. 4.1.1,
// 4.2). Docker creates these under the hood for containers.
type Cgroup struct {
	Name   string
	Parent *Cgroup

	// cpuset controller
	CPUs kernel.CPUMask
	Mems []int // allowed NUMA domains

	// memory controller
	LimitBytes int64 // 0 = unlimited
	usageBytes int64

	// hugetlb surplus integration: without the Fugaku kernel-module hook,
	// surplus hugeTLBfs pages bypass the memory controller entirely
	// (the gap described in Sec. 4.1.3).
	ChargeSurplusPages bool

	tasks    map[int]*kernel.Task
	children map[string]*Cgroup
}

// NewRootCgroup creates the root group spanning the given CPUs and domains.
func NewRootCgroup(cpus kernel.CPUMask, mems []int) *Cgroup {
	return &Cgroup{
		Name: "/", CPUs: cpus, Mems: mems,
		tasks:    make(map[int]*kernel.Task),
		children: make(map[string]*Cgroup),
	}
}

// NewChild creates a sub-group. The child's cpuset must be a subset of the
// parent's, as the kernel enforces.
func (c *Cgroup) NewChild(name string, cpus kernel.CPUMask, mems []int) (*Cgroup, error) {
	if _, ok := c.children[name]; ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrCgroupExists, c.Name, name)
	}
	if !cpus.Intersect(c.CPUs).Equal(cpus) {
		return nil, fmt.Errorf("linux: cgroup %q cpuset %s not a subset of parent %s",
			name, cpus, c.CPUs)
	}
	allowed := make(map[int]bool, len(c.Mems))
	for _, m := range c.Mems {
		allowed[m] = true
	}
	for _, m := range mems {
		if !allowed[m] {
			return nil, fmt.Errorf("linux: cgroup %q mems %v not a subset of parent %v", name, mems, c.Mems)
		}
	}
	child := &Cgroup{
		Name: c.Name + name, Parent: c, CPUs: cpus, Mems: mems,
		tasks:    make(map[int]*kernel.Task),
		children: make(map[string]*Cgroup),
	}
	c.children[name] = child
	return child, nil
}

// Child returns a sub-group by name.
func (c *Cgroup) Child(name string) (*Cgroup, error) {
	child, ok := c.children[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrCgroupNotFound, c.Name, name)
	}
	return child, nil
}

// Attach moves a task into this cgroup, clamping its affinity to the
// group's cpuset.
func (c *Cgroup) Attach(t *kernel.Task) error {
	eff := t.Affinity.Intersect(c.CPUs)
	if eff.Empty() {
		eff = c.CPUs
	}
	if err := t.SetAffinity(eff); err != nil {
		return err
	}
	c.tasks[t.ID] = t
	return nil
}

// Tasks returns the number of attached tasks.
func (c *Cgroup) Tasks() int { return len(c.tasks) }

// Charge accounts n bytes against the group's memory limit, walking up the
// hierarchy as the memory controller does.
func (c *Cgroup) Charge(n int64) error {
	for g := c; g != nil; g = g.Parent {
		if g.LimitBytes > 0 && g.usageBytes+n > g.LimitBytes {
			return fmt.Errorf("%w: %s usage %d + %d > %d", ErrMemLimit, g.Name, g.usageBytes, n, g.LimitBytes)
		}
	}
	for g := c; g != nil; g = g.Parent {
		g.usageBytes += n
	}
	return nil
}

// Uncharge releases n bytes of accounted memory.
func (c *Cgroup) Uncharge(n int64) {
	for g := c; g != nil; g = g.Parent {
		g.usageBytes -= n
		if g.usageBytes < 0 {
			g.usageBytes = 0
		}
	}
}

// Usage returns the current accounted bytes.
func (c *Cgroup) Usage() int64 { return c.usageBytes }

// ChargeSurplus implements mem.SurplusCharger: the Fugaku kernel module hook
// that charges overcommitted hugeTLBfs pages to the memory cgroup. Stock
// behaviour (ChargeSurplusPages false) lets surplus pages through
// unaccounted.
func (c *Cgroup) ChargeSurplus(pages, pageBytes int64) error {
	if !c.ChargeSurplusPages {
		return nil
	}
	return c.Charge(pages * pageBytes)
}

// UncchargeSurplus implements mem.SurplusCharger.
func (c *Cgroup) UncchargeSurplus(pages, pageBytes int64) {
	if !c.ChargeSurplusPages {
		return
	}
	c.Uncharge(pages * pageBytes)
}

// Container is a Docker-style container: a named pair of cgroups plus an
// image reference. On Fugaku all applications run inside one (Sec. 4.1.1);
// "host mode" jobs get a container with direct root-filesystem access.
type Container struct {
	ID       string
	Image    string
	HostMode bool
	Group    *Cgroup
}

// ContainerRuntime creates containers with the application cgroup template.
type ContainerRuntime struct {
	root    *Cgroup
	appCPUs kernel.CPUMask
	appMems []int
	nextID  int
}

// NewContainerRuntime returns a runtime creating containers under root with
// the given application cpuset/mems.
func NewContainerRuntime(root *Cgroup, appCPUs kernel.CPUMask, appMems []int) *ContainerRuntime {
	return &ContainerRuntime{root: root, appCPUs: appCPUs, appMems: appMems}
}

// Create builds a container; image "" selects host mode.
func (r *ContainerRuntime) Create(image string, memLimit int64) (*Container, error) {
	r.nextID++
	name := fmt.Sprintf("docker-%d", r.nextID)
	g, err := r.root.NewChild(name, r.appCPUs, r.appMems)
	if err != nil {
		return nil, err
	}
	g.LimitBytes = memLimit
	return &Container{
		ID: name, Image: image, HostMode: image == "", Group: g,
	}, nil
}
