package linux

import (
	"time"

	"mkos/internal/cpu"
	"mkos/internal/noise"
)

// Noise-source calibration. The constants below are set so the simulated FWQ
// experiment (6.5 ms quanta, 6-minute runs on a 16-node A64FX system)
// reproduces the measurements of Table 2:
//
//	countermeasure disabled    max noise (µs)   noise rate
//	none (all enabled)               50.44        3.79e-6
//	daemon binding off            20,346.98       9.94e-4
//	kworker binding off              266.34       4.58e-6
//	blk-mq binding off               387.91       4.58e-6
//	PMU-read stop off                103.09       8.27e-6
//	TLBI suppression off              90.2        3.87e-6
//
// A source's expected contribution to the Eq. 2 noise rate is
// mean(length)/mean(per-core interval); intervals below derive from the
// published rates. Max-noise-length targets pin the length spread (CV) and
// the Pareto tails: max of n lognormal draws grows like
// exp(sigma*sqrt(2 ln n)) and max of n Pareto draws like xm*n^(1/alpha), so
// tail shape controls how the profile extrapolates from 16 nodes to full
// scale — the paper's Figure 4b full-scale-vs-24-rack contrast emerges from
// exactly this sample-size effect.
const (
	// sar: the residual monitor that cannot be disabled ("required on
	// Fugaku for operation purposes"); defines the baseline Table 2 row.
	// Rare tail events become visible only at full machine scale.
	sarLength   = 30 * time.Microsecond
	sarLenCV    = 0.15
	sarInterval = 17 * time.Second // per core

	// Very rare system-global storms (parallel-filesystem hiccups,
	// fleet-wide monitoring bursts). Invisible on a 16-node testbed
	// (expected events over a 6-minute Table 2 run: ~0.1) but present in
	// a full-scale sweep — the reason the paper's Figure 4b full-scale
	// Linux curve has a multi-millisecond tail that 24 racks mostly lack.
	stormLength     = 1200 * time.Microsecond
	stormLenCV      = 0.6
	stormInterval   = 32 * 24 * time.Hour // per core
	stormTailProb   = 0.05
	stormTailFactor = 2
	stormTailAlpha  = 3.0

	// Unbound OS daemons wake up anywhere on the chip; their worst events
	// (journal flushes, NetworkManager scans) run for tens of milliseconds.
	daemonLength     = 330 * time.Microsecond
	daemonLenCV      = 1.2
	daemonTailProb   = 0.008
	daemonTailFactor = 2.0 // xm = 660 µs; alpha 2.6 → ~20 ms max at 16 nodes
	daemonTailAlpha  = 2.6
	daemonInterval   = 340 * time.Millisecond // per core

	// Unbound kworkers: short kernel work items (vmstat updates, dirty
	// writeback scheduling).
	kworkerLength   = 60 * time.Microsecond
	kworkerLenCV    = 0.45
	kworkerInterval = 76 * time.Second // per core

	// blk-mq completion workers spawned onto app cores by the hardware
	// context cpumask (Sec. 4.2.1); longer than generic kworkers.
	blkmqLength   = 80 * time.Microsecond
	blkmqLenCV    = 0.5
	blkmqInterval = 101 * time.Second // per core

	// TCS PMU collection: reads on all CPU cores in kernel space involving
	// IPIs, even when initiated from an assistant core (Sec. 4.2.1).
	pmuLength   = 50 * time.Microsecond
	pmuLenCV    = 0.22
	pmuInterval = 11200 * time.Millisecond

	// Broadcast TLBI bursts: single-core processes (TCS components, short
	// scripts) terminating on assistant cores broadcast hundreds of flushes
	// at ~200 ns each across the whole chip (Sec. 4.2.2).
	tlbiLength   = 28 * time.Microsecond
	tlbiLenCV    = 0.8
	tlbiInterval = 320 * time.Second

	// Residual 1 Hz housekeeping tick that nohz_full cannot remove.
	nohzResidualLength   = 2 * time.Microsecond
	nohzResidualInterval = time.Second // per core

	// Full timer tick for cores without nohz_full (10 ms on the modelled
	// kernels — the reason FWQ uses quanta just under 10 ms).
	timerTickLength = 2500 * time.Nanosecond
	timerTickPeriod = 10 * time.Millisecond
)

// OFP-specific calibration: the moderately tuned environment is much noisier
// (Figure 4a: Linux FWQ iterations up to 24 ms against the 6.5 ms quantum).
const (
	ofpDaemonLength     = 400 * time.Microsecond
	ofpDaemonLenCV      = 0.65
	ofpDaemonTailProb   = 0.01
	ofpDaemonTailFactor = 2.5                     // xm = 1 ms
	ofpDaemonTailAlpha  = 5                       // max grows slowly with node count; ~18 ms at 1k nodes
	ofpDaemonInterval   = 1200 * time.Millisecond // per core

	// Device IRQs balanced across the entire chip (Sec. 3.1).
	ofpIRQLength   = 15 * time.Microsecond
	ofpIRQLenCV    = 0.5
	ofpIRQInterval = 2 * time.Second // per core

	// khugepaged scanning and direct compaction stalls under THP.
	ofpTHPLength   = 300 * time.Microsecond
	ofpTHPLenCV    = 0.6
	ofpTHPInterval = 25 * time.Second // per core
)

// NoiseProfile derives the node's noise-source set from the tuning. FWQ and
// the BSP engine sample interruption timelines from this profile. Sources
// bound to assistant cores are included (they exist!) but target only
// assistant cores, so application cores never observe them — the whole point
// of the Sec. 4.2 partitioning.
func (k *Kernel) NoiseProfile() *noise.Profile {
	app := k.Topo.AppCores()
	sys := k.Topo.AssistantCores()
	all := append(append([]int{}, app...), sys...)
	p := &noise.Profile{Subsystem: "linux"}

	if k.Topo.ISA == cpu.X86_64 {
		k.ofpProfile(p, app, all)
		return p
	}

	// --- Fugaku-class A64FX node ---
	if k.Tune.SarEnabled {
		p.MustAdd(&noise.Source{
			Name: "sar", Cores: app, Mode: noise.TargetRandom,
			Every: spread(sarInterval, len(app)), EveryCV: 0.3,
			Length: sarLength, LengthCV: sarLenCV,
		})
	}

	p.MustAdd(&noise.Source{
		Name: "fs-storm", Cores: app, Mode: noise.TargetRandom,
		Every: spread(stormInterval, len(app)), EveryCV: 0.5,
		Length: stormLength, LengthCV: stormLenCV,
		TailProb: stormTailProb, TailFactor: stormTailFactor, TailAlpha: stormTailAlpha,
	})

	daemonCores := all
	if k.Tune.Counter.BindDaemons && len(sys) > 0 {
		daemonCores = sys
	}
	p.MustAdd(&noise.Source{
		Name: "daemons", Cores: daemonCores, Mode: noise.TargetRandom,
		Every: spread(daemonInterval, len(daemonCores)), EveryCV: 0.8,
		Length: daemonLength, LengthCV: daemonLenCV,
		TailProb: daemonTailProb, TailFactor: daemonTailFactor, TailAlpha: daemonTailAlpha,
	})

	kwCores := all
	if k.Tune.Counter.BindKworkers && len(sys) > 0 {
		kwCores = sys
	}
	p.MustAdd(&noise.Source{
		Name: "kworkers", Cores: kwCores, Mode: noise.TargetRandom,
		Every: spread(kworkerInterval, len(kwCores)), EveryCV: 0.6,
		Length: kworkerLength, LengthCV: kworkerLenCV,
	})

	blkCores := all
	if k.Tune.Counter.BindBlkMQ && len(sys) > 0 {
		blkCores = sys
	}
	p.MustAdd(&noise.Source{
		Name: "blk-mq", Cores: blkCores, Mode: noise.TargetRandom,
		Every: spread(blkmqInterval, len(blkCores)), EveryCV: 0.6,
		Length: blkmqLength, LengthCV: blkmqLenCV,
	})

	if !k.Tune.Counter.StopPMUReads {
		// PMU counters read on all CPU cores in kernel space via IPIs.
		p.MustAdd(&noise.Source{
			Name: "pmu-read", Cores: all, Mode: noise.TargetAll,
			Every: pmuInterval, EveryCV: 0.25,
			Length: pmuLength, LengthCV: pmuLenCV,
		})
	}

	if !k.Tune.Counter.SuppressGlobalTLBI && k.Topo.TLBIBroadcastPenalty > 0 {
		// Broadcast invalidations stall every core in the inner-sharable
		// domain simultaneously.
		p.MustAdd(&noise.Source{
			Name: "tlbi-broadcast", Cores: all, Mode: noise.TargetAll,
			Every: tlbiInterval, EveryCV: 0.7,
			Length: tlbiLength, LengthCV: tlbiLenCV,
		})
	}

	if k.Tune.NohzFull {
		p.MustAdd(&noise.Source{
			Name: "nohz-residual", Cores: app, Mode: noise.TargetRandom,
			Every: spread(nohzResidualInterval, len(app)), EveryCV: 0.2,
			Length: nohzResidualLength, LengthCV: 0.2,
		})
	} else {
		p.MustAdd(&noise.Source{
			Name: "timer-tick", Cores: app, Mode: noise.TargetAll,
			Every: timerTickPeriod, Length: timerTickLength, LengthCV: 0.1,
		})
	}
	return p
}

// ofpProfile builds the moderately tuned OFP environment: no cgroup
// isolation, IRQs balanced across the chip, THP compaction stalls.
func (k *Kernel) ofpProfile(p *noise.Profile, app, all []int) {
	p.MustAdd(&noise.Source{
		Name: "daemons", Cores: all, Mode: noise.TargetRandom,
		Every: spread(ofpDaemonInterval, len(all)), EveryCV: 0.9,
		Length: ofpDaemonLength, LengthCV: ofpDaemonLenCV,
		TailProb: ofpDaemonTailProb, TailFactor: ofpDaemonTailFactor, TailAlpha: ofpDaemonTailAlpha,
	})
	p.MustAdd(&noise.Source{
		Name: "irq-balance", Cores: all, Mode: noise.TargetRandom,
		Every: spread(ofpIRQInterval, len(all)), EveryCV: 0.5,
		Length: ofpIRQLength, LengthCV: ofpIRQLenCV,
	})
	if k.Tune.LargePage == THP {
		p.MustAdd(&noise.Source{
			Name: "thp-compaction", Cores: all, Mode: noise.TargetRandom,
			Every: spread(ofpTHPInterval, len(all)), EveryCV: 0.8,
			Length: ofpTHPLength, LengthCV: ofpTHPLenCV,
		})
	}
	if k.Tune.SarEnabled {
		p.MustAdd(&noise.Source{
			Name: "sar", Cores: app, Mode: noise.TargetRandom,
			Every: spread(sarInterval, len(app)), EveryCV: 0.3,
			Length: 50 * time.Microsecond, LengthCV: 0.3, // KNL cores are slower
		})
	}
	if k.Tune.NohzFull {
		p.MustAdd(&noise.Source{
			Name: "nohz-residual", Cores: app, Mode: noise.TargetRandom,
			Every: spread(nohzResidualInterval, len(app)), EveryCV: 0.2,
			Length: 4 * time.Microsecond, LengthCV: 0.2,
		})
	} else {
		p.MustAdd(&noise.Source{
			Name: "timer-tick", Cores: app, Mode: noise.TargetAll,
			Every: timerTickPeriod, Length: 6 * time.Microsecond, LengthCV: 0.1,
		})
	}
}

// spread converts a per-core event interval into the source-level interval:
// a TargetRandom source spreading events over nCores must emit one every
// perCore/nCores for each core to see one per perCore on average.
func spread(perCore time.Duration, nCores int) time.Duration {
	if nCores < 1 {
		nCores = 1
	}
	iv := perCore / time.Duration(nCores)
	if iv < time.Microsecond {
		iv = time.Microsecond
	}
	return iv
}
