package linux

import (
	"fmt"
	"strconv"
	"time"

	"mkos/internal/mem"
)

// AllocScheme selects when large pages are populated (Sec. 4.1.3: "the
// allocation scheme (i.e., pre-allocation based or demand paging) can be
// controlled by specific environment variables").
type AllocScheme int

const (
	// Prealloc populates and faults every page at process start.
	Prealloc AllocScheme = iota
	// DemandPaging populates pages on first touch.
	DemandPaging
)

func (s AllocScheme) String() string {
	if s == DemandPaging {
		return "demand"
	}
	return "prealloc"
}

// SegmentPolicy configures one process memory area.
type SegmentPolicy struct {
	LargePages bool
	Scheme     AllocScheme
}

// LPRuntimeConfig is the Fugaku runtime's large-page configuration covering
// every process memory area the paper lists: static data (.data and .bss),
// the stack, and the heap (mmap-managed dynamic memory).
type LPRuntimeConfig struct {
	Data  SegmentPolicy
	BSS   SegmentPolicy
	Stack SegmentPolicy
	Heap  SegmentPolicy
}

// DefaultLPRuntime returns Fugaku's default: everything large-page backed,
// pre-allocated (HPC codes prefer paying faults at startup).
func DefaultLPRuntime() LPRuntimeConfig {
	all := SegmentPolicy{LargePages: true, Scheme: Prealloc}
	return LPRuntimeConfig{Data: all, BSS: all, Stack: all, Heap: all}
}

// ParseLPRuntimeEnv overrides the default from environment-style settings,
// mirroring the runtime's XOS_MMM_L_* variables:
//
//	XOS_MMM_L_PAGING=0|1        0 = prealloc, 1 = demand paging
//	XOS_MMM_L_HPAGE_TYPE=none   disable large pages entirely
//	XOS_MMM_L_ARENA_LOCK_TYPE   accepted and ignored (allocator detail)
func ParseLPRuntimeEnv(env map[string]string) (LPRuntimeConfig, error) {
	cfg := DefaultLPRuntime()
	if v, ok := env["XOS_MMM_L_PAGING"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil || (n != 0 && n != 1) {
			return cfg, fmt.Errorf("linux: XOS_MMM_L_PAGING=%q (want 0 or 1)", v)
		}
		scheme := Prealloc
		if n == 1 {
			scheme = DemandPaging
		}
		for _, seg := range []*SegmentPolicy{&cfg.Data, &cfg.BSS, &cfg.Stack, &cfg.Heap} {
			seg.Scheme = scheme
		}
	}
	if v, ok := env["XOS_MMM_L_HPAGE_TYPE"]; ok {
		switch v {
		case "none":
			for _, seg := range []*SegmentPolicy{&cfg.Data, &cfg.BSS, &cfg.Stack, &cfg.Heap} {
				seg.LargePages = false
			}
		case "hugetlbfs":
			// default
		default:
			return cfg, fmt.Errorf("linux: XOS_MMM_L_HPAGE_TYPE=%q (want hugetlbfs or none)", v)
		}
	}
	return cfg, nil
}

// ProcessImage gives the segment sizes of a binary being launched.
type ProcessImage struct {
	Name  string
	Data  int64
	BSS   int64
	Stack int64
	Heap  int64
}

// LaunchedProcess is the result of setting up a process under the runtime:
// its address space, the huge pages consumed, and the setup cost.
type LaunchedProcess struct {
	Image     ProcessImage
	AS        *mem.AddressSpace
	HugePages int64
	// SetupCost is the time spent faulting pre-allocated pages at launch.
	SetupCost time.Duration
	// DeferredFaults counts pages left for first-touch (demand paging).
	DeferredFaults int64
}

// LaunchProcess builds a process's memory layout under the runtime config:
// large-page segments come from hugeTLBfs (overcommit surplus on Fugaku,
// charged to the application cgroup via the kernel-module hook), the rest
// from base pages. Pre-allocated segments pay their fault cost now.
func (k *Kernel) LaunchProcess(img ProcessImage, cfg LPRuntimeConfig) (*LaunchedProcess, error) {
	if img.Name == "" {
		return nil, fmt.Errorf("linux: process image without name")
	}
	as := mem.NewAddressSpace()
	lp := &LaunchedProcess{Image: img, AS: as}
	basePage := mem.PageSize(k.Mem.AppNodes()[0].Buddy.BasePage())

	segs := []struct {
		label  string
		size   int64
		policy SegmentPolicy
	}{
		{"data", img.Data, cfg.Data},
		{"bss", img.BSS, cfg.BSS},
		{"stack", img.Stack, cfg.Stack},
		{"heap", img.Heap, cfg.Heap},
	}
	for _, seg := range segs {
		if seg.size <= 0 {
			continue
		}
		page, contig := basePage, false
		if seg.policy.LargePages && k.Huge != nil {
			// 2 MiB via the contiguous bit on 64 KiB base pages.
			page, contig = mem.Page64K, true
			if basePage == mem.Page4K {
				page, contig = mem.Page2M, false
			}
		}
		vma, err := as.Map(seg.size, page, contig, seg.label)
		if err != nil {
			return nil, err
		}
		effPage := mem.PageSize(vma.EffectivePage())
		pages := mem.Page2M.PagesFor(seg.size)
		if seg.policy.LargePages && k.Huge != nil {
			if err := k.Huge.Alloc(pages); err != nil {
				return nil, fmt.Errorf("linux: huge pages for %s/%s: %w", img.Name, seg.label, err)
			}
			lp.HugePages += pages
		}
		faults := effPage.PagesFor(seg.size)
		if seg.policy.Scheme == Prealloc {
			lp.SetupCost += time.Duration(faults) * k.PageFaultCost(effPage)
			vma.Populated = true
		} else {
			lp.DeferredFaults += faults
		}
	}
	return lp, nil
}

// ReleaseProcess tears a launched process down, returning its huge pages.
func (k *Kernel) ReleaseProcess(lp *LaunchedProcess) error {
	if lp.HugePages > 0 && k.Huge != nil {
		if err := k.Huge.Release(lp.HugePages); err != nil {
			return err
		}
		lp.HugePages = 0
	}
	return nil
}
