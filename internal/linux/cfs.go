package linux

import (
	"container/heap"
	"fmt"
	"time"

	"mkos/internal/kernel"
	"mkos/internal/sim"
	"mkos/internal/telemetry"
)

// CFS-lite: an event-driven per-core run queue in the style of Linux's
// Completely Fair Scheduler, used to validate the statistical noise model
// from first principles. Where the noise profiles *assert* "an unbound
// daemon wake-up steals ~300 µs from whatever application thread owns the
// core", this scheduler *derives* the steal: a daemon waking on a busy core
// preempts the application task for exactly the service time CFS grants it.
// The linux tests cross-check the two models (TestCFSMatchesNoiseModel).
type CFS struct {
	engine *sim.Engine
	cores  map[int]*cfsCore
}

type cfsCore struct {
	id      int
	queue   vruntimeHeap
	running *cfsEntity
	// appRunning accumulates the time the application entity actually ran,
	// and stolen the time others occupied the core while the app wanted it.
	appRunning time.Duration
	stolen     time.Duration
	lastSwitch sim.Time
}

// cfsEntity is one schedulable entity with CFS weight semantics.
type cfsEntity struct {
	name     string
	kind     kernel.TaskKind
	vruntime time.Duration
	weight   int // nice-derived weight; larger runs more
	// remaining is the service the entity still wants before sleeping
	// again; the application entity wants to run forever (remaining < 0).
	remaining time.Duration
	index     int
}

type vruntimeHeap []*cfsEntity

func (h vruntimeHeap) Len() int           { return len(h) }
func (h vruntimeHeap) Less(i, j int) bool { return h[i].vruntime < h[j].vruntime }
func (h vruntimeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *vruntimeHeap) Push(x any)        { e := x.(*cfsEntity); e.index = len(*h); *h = append(*h, e) }
func (h *vruntimeHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewCFS builds the scheduler over the given cores.
func NewCFS(engine *sim.Engine, cores []int) *CFS {
	c := &CFS{engine: engine, cores: make(map[int]*cfsCore, len(cores))}
	for _, id := range cores {
		c.cores[id] = &cfsCore{id: id}
	}
	return c
}

// cfsSlice is the scheduling granularity: a preempting entity runs at most
// this long before the core rebalances (sched_min_granularity-ish).
const cfsSlice = 3 * time.Millisecond

// PinApp installs an always-runnable application entity on a core, starting
// now. It returns an error if the core is unknown or already has an app.
func (c *CFS) PinApp(core int, name string) error {
	cc, ok := c.cores[core]
	if !ok {
		return fmt.Errorf("linux: cfs has no core %d", core)
	}
	if cc.running != nil {
		return fmt.Errorf("linux: core %d already running %s", core, cc.running.name)
	}
	cc.running = &cfsEntity{name: name, kind: kernel.AppTask, weight: 1024, remaining: -1}
	cc.lastSwitch = c.engine.Now()
	return nil
}

// Wake makes a system entity runnable on a core for service service time;
// it preempts a running application per CFS rules (the fresh entity's
// vruntime starts at the minimum, so it runs immediately).
func (c *CFS) Wake(core int, name string, kind kernel.TaskKind, service time.Duration) error {
	cc, ok := c.cores[core]
	if !ok {
		return fmt.Errorf("linux: cfs has no core %d", core)
	}
	if service <= 0 {
		return fmt.Errorf("linux: non-positive service for %s", name)
	}
	e := &cfsEntity{name: name, kind: kind, weight: 1024, remaining: service}
	// A waking task's vruntime is clamped to the queue minimum: it
	// preempts promptly, which is exactly why unbound daemons hurt.
	heap.Push(&cc.queue, e)
	c.dispatch(cc)
	return nil
}

// dispatch preempts the app if a system entity is waiting.
func (c *CFS) dispatch(cc *cfsCore) {
	if cc.queue.Len() == 0 {
		return
	}
	if cc.running != nil && cc.running.kind != kernel.AppTask {
		return // a system entity is already being serviced
	}
	// Account the app's running time up to the preemption.
	now := c.engine.Now()
	if cc.running != nil {
		cc.appRunning += now.Sub(cc.lastSwitch)
	}
	app := cc.running
	next := heap.Pop(&cc.queue).(*cfsEntity)
	cc.running = next
	cc.lastSwitch = now
	run := next.remaining
	if run > cfsSlice {
		run = cfsSlice
	}
	telemetry.C("linux.cfs.preemptions").Inc()
	if telemetry.TraceEnabled() {
		telemetry.Span("linux", "cfs:"+next.name, 0, cc.id, now, run,
			telemetry.Arg{Key: "kind", Val: next.kind.String()})
	}
	c.engine.Schedule(run, "cfs:"+next.name, func(e *sim.Engine) {
		cc.stolen += run
		next.remaining -= run
		if next.remaining > 0 {
			// Re-queue for another slice.
			heap.Push(&cc.queue, next)
		}
		cc.running = app
		cc.lastSwitch = e.Now()
		c.dispatch(cc)
	})
}

// StolenOn returns the time system entities have occupied a core while an
// application entity was pinned there.
func (c *CFS) StolenOn(core int) time.Duration {
	cc, ok := c.cores[core]
	if !ok {
		return 0
	}
	return cc.stolen
}

// AppRunOn returns the accounted application run time (up to the last
// context switch).
func (c *CFS) AppRunOn(core int) time.Duration {
	cc, ok := c.cores[core]
	if !ok {
		return 0
	}
	return cc.appRunning
}
