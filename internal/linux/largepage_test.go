package linux

import (
	"testing"

	"mkos/internal/mem"
)

func testImage() ProcessImage {
	return ProcessImage{
		Name: "a.out",
		Data: 16 << 20, BSS: 64 << 20, Stack: 8 << 20, Heap: 256 << 20,
	}
}

func TestParseLPRuntimeEnv(t *testing.T) {
	cfg, err := ParseLPRuntimeEnv(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Heap.LargePages || cfg.Heap.Scheme != Prealloc {
		t.Fatal("default must be large pages + prealloc")
	}

	cfg, err = ParseLPRuntimeEnv(map[string]string{"XOS_MMM_L_PAGING": "1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []SegmentPolicy{cfg.Data, cfg.BSS, cfg.Stack, cfg.Heap} {
		if s.Scheme != DemandPaging {
			t.Fatal("PAGING=1 must select demand paging everywhere")
		}
	}

	cfg, err = ParseLPRuntimeEnv(map[string]string{"XOS_MMM_L_HPAGE_TYPE": "none"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Heap.LargePages {
		t.Fatal("HPAGE_TYPE=none must disable large pages")
	}

	if _, err := ParseLPRuntimeEnv(map[string]string{"XOS_MMM_L_PAGING": "2"}); err == nil {
		t.Fatal("invalid PAGING value must fail")
	}
	if _, err := ParseLPRuntimeEnv(map[string]string{"XOS_MMM_L_HPAGE_TYPE": "thp"}); err == nil {
		t.Fatal("invalid HPAGE_TYPE must fail")
	}
	if _, err := ParseLPRuntimeEnv(map[string]string{"XOS_MMM_L_PAGING": "0", "XOS_MMM_L_HPAGE_TYPE": "hugetlbfs"}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemeString(t *testing.T) {
	if Prealloc.String() != "prealloc" || DemandPaging.String() != "demand" {
		t.Fatal("scheme strings wrong")
	}
}

func TestLaunchProcessAllSegmentsLargePaged(t *testing.T) {
	k := newFugakuKernel(t)
	lp, err := k.LaunchProcess(testImage(), DefaultLPRuntime())
	if err != nil {
		t.Fatal(err)
	}
	vmas := lp.AS.VMAs()
	if len(vmas) != 4 {
		t.Fatalf("VMAs = %d, want data/bss/stack/heap", len(vmas))
	}
	for _, v := range vmas {
		// On A64FX: 64K base pages with the contiguous bit = 2M effective.
		if v.EffectivePage() != 2<<20 {
			t.Fatalf("segment %s effective page = %d, want 2M", v.Label, v.EffectivePage())
		}
		if !v.Populated {
			t.Fatalf("preallocated segment %s not populated", v.Label)
		}
	}
	// 344 MiB total -> 172 huge pages consumed from the overcommit pool.
	if lp.HugePages != 172 {
		t.Fatalf("huge pages = %d, want 172", lp.HugePages)
	}
	_, _, surplus := k.Huge.PoolPages()
	if surplus != 172 {
		t.Fatalf("surplus = %d", surplus)
	}
	if lp.SetupCost <= 0 || lp.DeferredFaults != 0 {
		t.Fatalf("prealloc setup cost %v, deferred %d", lp.SetupCost, lp.DeferredFaults)
	}
	// The cgroup hook charged them.
	if k.App.Usage() != 172*(2<<20) {
		t.Fatalf("cgroup usage = %d", k.App.Usage())
	}
	// Teardown returns everything.
	if err := k.ReleaseProcess(lp); err != nil {
		t.Fatal(err)
	}
	if _, _, surplus := k.Huge.PoolPages(); surplus != 0 {
		t.Fatalf("surplus after release = %d", surplus)
	}
	if k.App.Usage() != 0 {
		t.Fatalf("cgroup usage after release = %d", k.App.Usage())
	}
}

func TestLaunchProcessDemandPaging(t *testing.T) {
	k := newFugakuKernel(t)
	cfg, err := ParseLPRuntimeEnv(map[string]string{"XOS_MMM_L_PAGING": "1"})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := k.LaunchProcess(testImage(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lp.SetupCost != 0 {
		t.Fatalf("demand paging must defer all faults, setup = %v", lp.SetupCost)
	}
	if lp.DeferredFaults != 172 {
		t.Fatalf("deferred faults = %d, want 172 (2M pages)", lp.DeferredFaults)
	}
}

func TestLaunchProcessBasePagesOnly(t *testing.T) {
	k := newFugakuKernel(t)
	cfg, err := ParseLPRuntimeEnv(map[string]string{"XOS_MMM_L_HPAGE_TYPE": "none"})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := k.LaunchProcess(testImage(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lp.HugePages != 0 {
		t.Fatal("no large pages requested but huge pages consumed")
	}
	for _, v := range lp.AS.VMAs() {
		if v.EffectivePage() != 64<<10 {
			t.Fatalf("segment %s effective page = %d, want 64K base", v.Label, v.EffectivePage())
		}
	}
	// Base-page prealloc costs more faults than large-page prealloc.
	lpHuge, err := k.LaunchProcess(testImage(), DefaultLPRuntime())
	if err != nil {
		t.Fatal(err)
	}
	if lp.SetupCost <= lpHuge.SetupCost {
		t.Fatalf("base-page setup %v must exceed large-page setup %v", lp.SetupCost, lpHuge.SetupCost)
	}
}

func TestLaunchProcessOnOFPUsesTHPStyle2M(t *testing.T) {
	k := newOFPKernel(t)
	// OFP has no hugeTLBfs (k.Huge == nil): segments fall back to base
	// pages in this runtime (THP is transparent, not runtime-managed).
	lp, err := k.LaunchProcess(testImage(), DefaultLPRuntime())
	if err != nil {
		t.Fatal(err)
	}
	if lp.HugePages != 0 {
		t.Fatal("OFP must not consume hugeTLBfs pages")
	}
	for _, v := range lp.AS.VMAs() {
		if v.EffectivePage() != 4<<10 {
			t.Fatalf("OFP segment %s page = %d, want 4K base", v.Label, v.EffectivePage())
		}
	}
}

func TestLaunchProcessValidation(t *testing.T) {
	k := newFugakuKernel(t)
	if _, err := k.LaunchProcess(ProcessImage{}, DefaultLPRuntime()); err == nil {
		t.Fatal("nameless image must fail")
	}
	// Zero-size segments are skipped.
	lp, err := k.LaunchProcess(ProcessImage{Name: "tiny", Heap: 2 << 20}, DefaultLPRuntime())
	if err != nil {
		t.Fatal(err)
	}
	if len(lp.AS.VMAs()) != 1 {
		t.Fatalf("VMAs = %d, want 1", len(lp.AS.VMAs()))
	}
	_ = mem.Page2M // keep import if assertions above change
}
