package linux

import (
	"fmt"
	"time"

	"mkos/internal/cpu"
	"mkos/internal/kernel"
	"mkos/internal/mem"
)

// Kernel is one node's Linux instance: topology, tuning, cgroup tree, system
// tasks, IRQ table, physical memory and the hugeTLBfs facility.
type Kernel struct {
	Topo   *cpu.Topology
	Tune   Tuning
	Mem    *mem.PhysMemory
	Huge   *mem.HugeTLBfs
	Root   *Cgroup
	System *Cgroup // cgroup for system processes
	App    *Cgroup // cgroup (or container) for application processes

	Daemons  []*kernel.Task
	Kworkers []*kernel.Task
	BlkMQ    []*kernel.Task
	Sar      *kernel.Task
	IRQs     []*kernel.IRQ

	Runtime *ContainerRuntime

	nextTaskID int
}

// DefaultDaemons is the set of user-space services a RHEL/CentOS compute
// node runs; each contributes wake-up noise when allowed on app cores.
var DefaultDaemons = []string{
	"systemd", "systemd-journald", "systemd-logind", "dbus-daemon",
	"sshd", "chronyd", "crond", "rsyslogd", "irqbalance", "tuned",
	"NetworkManager", "polkitd",
}

// NewKernel assembles a Linux node model. memBytes is the node's physical
// memory (96+16 GiB on OFP, 32 GiB on Fugaku).
func NewKernel(topo *cpu.Topology, tune Tuning, memBytes int64) (*Kernel, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	pm, err := mem.NewPhysMemory(tune.MemoryLayoutFor(topo, memBytes))
	if err != nil {
		return nil, err
	}
	k := &Kernel{Topo: topo, Tune: tune, Mem: pm}

	allCPUs := kernel.FullMask(topo.NumCores())
	allMems := make([]int, len(pm.Nodes))
	for i := range pm.Nodes {
		allMems[i] = i
	}
	k.Root = NewRootCgroup(allCPUs, allMems)

	appMask := kernel.NewCPUMask(topo.AppCores()...)
	sysMask := kernel.NewCPUMask(topo.AssistantCores()...)
	appMems, sysMems := allMems, allMems
	if tune.VirtualNUMA {
		appMems, sysMems = nil, nil
		for _, n := range pm.AppNodes() {
			appMems = append(appMems, n.ID)
		}
		for _, n := range pm.SysNodes() {
			sysMems = append(sysMems, n.ID)
		}
	}

	if tune.CPUIsolation {
		if k.System, err = k.Root.NewChild("system", sysMask, sysMems); err != nil {
			return nil, err
		}
		if k.App, err = k.Root.NewChild("app", appMask, appMems); err != nil {
			return nil, err
		}
	} else {
		// OFP style: no partition, everything lives in the root group.
		k.System, k.App = k.Root, k.Root
	}

	// hugeTLBfs per policy. The pool draws from the first app domain.
	switch tune.LargePage {
	case HugeTLBOvercommit:
		k.Huge, err = mem.NewHugeTLBfs(mem.HugeTLBConfig{
			Page: mem.Page2M, Overcommit: true,
		}, pm.AppNodes()[0].Buddy)
	case HugeTLBReserved:
		pool := pm.AppNodes()[0].Buddy.TotalBytes() / 2 / mem.Page2M.Bytes()
		k.Huge, err = mem.NewHugeTLBfs(mem.HugeTLBConfig{
			Page: mem.Page2M, ReservedPool: pool,
		}, pm.AppNodes()[0].Buddy)
	}
	if err != nil {
		return nil, err
	}
	if k.Huge != nil && tune.LargePage == HugeTLBOvercommit {
		// Install the Fugaku kernel-module hook so surplus pages are
		// charged to the application cgroup (Sec. 4.1.3).
		k.App.ChargeSurplusPages = true
		k.Huge.SetCharger(k.App)
	}

	k.spawnSystemTasks(appMask, sysMask)
	k.setupIRQs(appMask, sysMask)

	if tune.Containerized {
		k.Runtime = NewContainerRuntime(k.Root, appMask, appMems)
	}
	return k, nil
}

func (k *Kernel) newTask(name string, kind kernel.TaskKind, affinity kernel.CPUMask) *kernel.Task {
	k.nextTaskID++
	return kernel.NewTask(k.nextTaskID, name, kind, affinity)
}

func (k *Kernel) spawnSystemTasks(appMask, sysMask kernel.CPUMask) {
	all := appMask.Union(sysMask)
	daemonMask := all
	if k.Tune.Counter.BindDaemons && k.Tune.CPUIsolation {
		daemonMask = sysMask
	}
	for _, name := range DefaultDaemons {
		d := k.newTask(name, kernel.DaemonTask, daemonMask)
		k.Daemons = append(k.Daemons, d)
		if k.Tune.CPUIsolation && k.Tune.Counter.BindDaemons {
			_ = k.System.Attach(d)
		} else {
			_ = k.Root.Attach(d)
		}
	}

	// One kworker pool per core plus unbound workers. Unbound kworkers can
	// run anywhere unless their sysfs affinity is overridden.
	kwMask := all
	if k.Tune.Counter.BindKworkers {
		kwMask = sysMask
	}
	if kwMask.Empty() {
		kwMask = all
	}
	for i := 0; i < 4; i++ {
		k.Kworkers = append(k.Kworkers, k.newTask(fmt.Sprintf("kworker/u%d", i), kernel.KworkerTask, kwMask))
	}

	// blk-mq completion workers: bound per hardware context; their cpumask
	// lives in struct blk_mq_hw_ctx and must be overridden explicitly
	// (Sec. 4.2.1).
	blkMask := all
	if k.Tune.Counter.BindBlkMQ {
		blkMask = sysMask
	}
	if blkMask.Empty() {
		blkMask = all
	}
	for i := 0; i < 2; i++ {
		k.BlkMQ = append(k.BlkMQ, k.newTask(fmt.Sprintf("blk-mq/%d", i), kernel.BlkMQTask, blkMask))
	}

	if k.Tune.SarEnabled {
		sarMask := all
		if k.Tune.CPUIsolation {
			sarMask = sysMask
		}
		k.Sar = k.newTask("sar", kernel.MonitorTask, sarMask)
	}
}

func (k *Kernel) setupIRQs(appMask, sysMask kernel.CPUMask) {
	target := appMask.Union(sysMask)
	if k.Tune.IRQToAssistant && !sysMask.Empty() {
		target = sysMask
	}
	names := []string{"timer", "nic-rx", "nic-tx", "nvme", "ipi"}
	for i, n := range names {
		irq := &kernel.IRQ{Number: 16 + i, Name: n}
		_ = irq.Route(target)
		k.IRQs = append(k.IRQs, irq)
	}
}

// AppCores returns the cores applications run on.
func (k *Kernel) AppCores() []int { return k.Topo.AppCores() }

// Name identifies the configuration.
func (k *Kernel) Name() string { return k.Tune.Name }

// --- Cost model -----------------------------------------------------------

// SyscallCosts returns the in-kernel service time table for this Linux
// configuration. Values are representative microbenchmark figures for the
// modelled kernels (getpid-class ~0.3 µs, mmap-class single-digit µs).
func (k *Kernel) SyscallCosts() kernel.CostTable {
	scale := 1.0
	if k.Topo.ISA == cpu.X86_64 {
		// KNL cores are slow in-order cores; kernel paths cost more.
		scale = 2.5
	}
	d := func(base time.Duration) time.Duration {
		return time.Duration(float64(base) * scale)
	}
	return kernel.CostTable{
		kernel.SysGetpid:        d(300 * time.Nanosecond),
		kernel.SysMmap:          d(6 * time.Microsecond),
		kernel.SysMunmap:        d(9 * time.Microsecond),
		kernel.SysBrk:           d(2 * time.Microsecond),
		kernel.SysMadvise:       d(3 * time.Microsecond),
		kernel.SysFutex:         d(1500 * time.Nanosecond),
		kernel.SysClone:         d(25 * time.Microsecond),
		kernel.SysExit:          d(20 * time.Microsecond),
		kernel.SysSignal:        d(1 * time.Microsecond),
		kernel.SysOpen:          d(4 * time.Microsecond),
		kernel.SysClose:         d(1 * time.Microsecond),
		kernel.SysRead:          d(2500 * time.Nanosecond),
		kernel.SysWrite:         d(2500 * time.Nanosecond),
		kernel.SysIoctl:         d(3500 * time.Nanosecond),
		kernel.SysStat:          d(2 * time.Microsecond),
		kernel.SysSocket:        d(5 * time.Microsecond),
		kernel.SysPerfEventOpen: d(15 * time.Microsecond),
	}
}

// PageFaultCost is the cost of one minor fault populating a page of the
// given size, including allocation, zeroing amortization and page-table
// work.
func (k *Kernel) PageFaultCost(page mem.PageSize) time.Duration {
	base := 1500 * time.Nanosecond
	if k.Topo.ISA == cpu.X86_64 {
		base = 3500 * time.Nanosecond
	}
	switch {
	case page >= mem.Page512M:
		return base + 40*time.Microsecond // zeroing dominates
	case page >= mem.Page2M:
		return base + 4*time.Microsecond
	case page >= mem.Page64K:
		return base + 400*time.Nanosecond
	default:
		return base
	}
}

// EffectiveAppPage returns the page size backing a well-formed application
// region of reqBytes under the tuning's large-page policy, together with
// the fraction of the region actually getting large pages. THP coverage
// degrades with buddy fragmentation (compaction failures); hugeTLBfs
// contiguous-bit pages survive because Fugaku's allocations are 2 MiB
// aligned by construction.
func (k *Kernel) EffectiveAppPage(reqBytes int64) (mem.PageSize, float64) {
	basePage := mem.PageSize(k.Mem.AppNodes()[0].Buddy.BasePage())
	switch k.Tune.LargePage {
	case THP:
		frag := k.Mem.AppFragmentation(orderFor(mem.Page2M, basePage))
		coverage := 1 - frag
		if coverage < 0 {
			coverage = 0
		}
		return mem.Page2M, coverage
	case HugeTLBOvercommit, HugeTLBReserved:
		return mem.Page2M, 1 // contiguous-bit 2 MiB pages (Sec. 4.1.3)
	default:
		return basePage, 1
	}
}

func orderFor(page, basePage mem.PageSize) int {
	order := 0
	for p := basePage; p < page; p <<= 1 {
		order++
	}
	return order
}

// TranslationOverhead is the fractional compute slowdown from TLB misses for
// a working set under this configuration's paging policy.
func (k *Kernel) TranslationOverhead(workingSet int64, accessPeriod time.Duration) float64 {
	page, coverage := k.EffectiveAppPage(workingSet)
	basePage := mem.PageSize(k.Mem.AppNodes()[0].Buddy.BasePage())
	large := k.Topo.TLB.TranslationOverhead(workingSet, page.Bytes(), accessPeriod)
	small := k.Topo.TLB.TranslationOverhead(workingSet, basePage.Bytes(), accessPeriod)
	return coverage*large + (1-coverage)*small
}

// glibcTrimChunk is the granularity at which the modelled glibc returns
// freed memory to the kernel per release call (M_TRIM / large-mmap policy).
const glibcTrimChunk = 8 << 20

// HeapChurnCost is the per-step memory-management cost of an application
// that performs calls allocate/free pairs moving churnBytes through glibc
// each step. Linux returns freed large blocks to the kernel (munmap or
// madvise(MADV_DONTNEED)), so the next step re-faults the pages;
// multi-threaded frees also trigger TLB shootdowns. Crucially, the per-call
// component (syscall + shootdown initiation) does not shrink under strong
// scaling while the compute does — the Linux heap-management behaviour the
// paper identifies as the main source of LULESH's ≈2X slowdown
// (Sec. 6.4 / [14]).
func (k *Kernel) HeapChurnCost(churnBytes int64, calls, threads int) time.Duration {
	if churnBytes <= 0 && calls <= 0 {
		return 0
	}
	if calls < 1 {
		calls = int(churnBytes / glibcTrimChunk)
		if calls < 1 {
			calls = 1
		}
	}
	// glibc only hands back what its trim policy releases; stable large
	// arenas are reused without kernel round trips.
	trimmed := churnBytes
	if limit := int64(calls) * glibcTrimChunk; trimmed > limit {
		trimmed = limit
	}
	var cost time.Duration
	if trimmed > 0 {
		page, coverage := k.EffectiveAppPage(trimmed)
		basePage := mem.PageSize(k.Mem.AppNodes()[0].Buddy.BasePage())
		largePages := page.PagesFor(int64(float64(trimmed) * coverage))
		smallPages := basePage.PagesFor(int64(float64(trimmed) * (1 - coverage)))
		cost += time.Duration(largePages)*k.PageFaultCost(page) +
			time.Duration(smallPages)*k.PageFaultCost(basePage)
	}
	// munmap path + shootdowns when threads span cores.
	costs := k.SyscallCosts()
	cost += time.Duration(calls) * costs.Cost(kernel.SysMunmap)
	if threads > 1 {
		method := cpu.ShootdownBroadcast
		if k.Topo.TLBIBroadcastPenalty == 0 {
			method = cpu.ShootdownIPI
		}
		initiator, _ := cpu.ShootdownCost(k.Topo, method)
		cost += time.Duration(calls) * initiator
	}
	return cost
}

// ProcessExitFlushes returns how many consecutive TLB flush operations a
// process teardown with vmaCount mapped areas issues — the "hundreds to
// thousands of consecutive TLB flushes" of Sec. 4.2.2.
func (k *Kernel) ProcessExitFlushes(vmaCount int) int {
	if vmaCount < 1 {
		vmaCount = 1
	}
	return vmaCount * 8 // page-table teardown walks each VMA in chunks
}

// GCReleaseFlushes returns how many consecutive TLB flush operations a
// garbage-collected runtime releasing heapBytes back to the OS issues. The
// paper names this exact case: "some operations that release large amounts
// of memory, such as garbage collection at Go's runtime system and process
// termination operations, can cause hundreds to thousands [of] consecutive
// TLB flushes, resulting in hundreds of microseconds of noise" (Sec. 4.2.2).
func (k *Kernel) GCReleaseFlushes(heapBytes int64) int {
	if heapBytes <= 0 {
		return 0
	}
	// The runtime returns memory with per-span madvise calls; each batch of
	// spans costs one shootdown.
	const spanBatch = 4 << 20
	n := int(heapBytes / spanBatch)
	if n < 1 {
		n = 1
	}
	return n
}

// RDMARegistrationCost is the cost of registering one memory region (STAG)
// with the interconnect driver: an ioctl into the vendor driver (Sec. 5.1).
func (k *Kernel) RDMARegistrationCost(bytes int64) time.Duration {
	costs := k.SyscallCosts()
	pin := time.Duration(bytes/(1<<20)) * 300 * time.Nanosecond // page pinning
	return costs.Cost(kernel.SysIoctl) + 2*time.Microsecond + pin
}

// BarrierLatency is the intra-node synchronization cost across n threads.
// Fugaku's runtime uses the hardware barrier; OFP's Intel OpenMP uses a
// software tree barrier.
func (k *Kernel) BarrierLatency(n int) time.Duration {
	hb := cpu.HWBarrier{Available: k.Topo.HasHWBarrier}
	return hb.Latency(n)
}

// CacheInterferenceFactor is the multiplicative slowdown of app memory
// phases caused by OS cache pollution, removed by the sector cache.
func (k *Kernel) CacheInterferenceFactor() float64 {
	sc := cpu.NewSectorCache(16)
	if k.Tune.SectorCache && k.Topo.HasSectorCache {
		_ = sc.Partition(2)
	}
	return sc.AppInterferenceFactor(true)
}
