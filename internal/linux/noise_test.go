package linux

import (
	"testing"
	"time"

	"mkos/internal/apps"
	"mkos/internal/cpu"
	"mkos/internal/noise"
)

// probeConfig runs the FWQ experiment for one tuning and returns the merged
// analysis across nodes, mirroring the paper's Table 2 methodology.
func probeConfig(t *testing.T, tune Tuning, nodes int, dur time.Duration) noise.Analysis {
	t.Helper()
	topo := cpu.A64FX(2)
	if tune.Name == "ofp-linux" {
		topo = cpu.KNL()
	}
	k, err := NewKernel(topo, tune, 32<<30)
	if err != nil {
		t.Fatal(err)
	}
	cfg := apps.FWQConfig{Work: 6500 * time.Microsecond, Duration: dur, Cores: k.AppCores()}
	as, _, err := apps.FWQAcrossNodes(cfg, k, nodes, 12345)
	if err != nil {
		t.Fatal(err)
	}
	m, err := noise.Merge(as)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTable2Shape verifies that the simulated FWQ experiment reproduces the
// shape of Table 2: which countermeasure matters how much, with magnitudes
// in the right decade. The run is shorter than the paper's (2 minutes on 8
// nodes instead of ~6 minutes on 16) to keep the suite fast; bounds are set
// accordingly. cmd/tablegen regenerates the full-scale table.
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node FWQ simulation")
	}
	type row struct {
		name           string
		mutate         func(*Countermeasures)
		maxLo, maxHi   time.Duration
		rateLo, rateHi float64
	}
	us := time.Microsecond
	rows := []row{
		// Paper: 50.44 µs, 3.79e-6.
		{"baseline", func(c *Countermeasures) {}, 20 * us, 200 * us, 2e-6, 6e-6},
		// Paper: 20,346.98 µs, 9.94e-4.
		{"daemons-off", func(c *Countermeasures) { c.BindDaemons = false }, 5000 * us, 80000 * us, 5e-4, 2e-3},
		// Paper: 266.34 µs, 4.58e-6.
		{"kworker-off", func(c *Countermeasures) { c.BindKworkers = false }, 100 * us, 700 * us, 4e-6, 5.5e-6},
		// Paper: 387.91 µs, 4.58e-6.
		{"blkmq-off", func(c *Countermeasures) { c.BindBlkMQ = false }, 120 * us, 900 * us, 4e-6, 5.5e-6},
		// Paper: 103.09 µs, 8.27e-6.
		{"pmu-off", func(c *Countermeasures) { c.StopPMUReads = false }, 60 * us, 300 * us, 6.5e-6, 1.1e-5},
		// Paper: 90.2 µs, 3.87e-6.
		{"tlbi-off", func(c *Countermeasures) { c.SuppressGlobalTLBI = false }, 20 * us, 300 * us, 3e-6, 5e-6},
	}
	results := make(map[string]noise.Analysis)
	for _, r := range rows {
		tune := FugakuTuning()
		r.mutate(&tune.Counter)
		a := probeConfig(t, tune, 8, 2*time.Minute)
		results[r.name] = a
		t.Logf("%-12s max=%9.2fus rate=%.3g", r.name,
			float64(a.MaxNoise)/float64(us), a.Rate)
		if a.MaxNoise < r.maxLo || a.MaxNoise > r.maxHi {
			t.Errorf("%s: max noise %v outside [%v, %v]", r.name, a.MaxNoise, r.maxLo, r.maxHi)
		}
		if a.Rate < r.rateLo || a.Rate > r.rateHi {
			t.Errorf("%s: rate %v outside [%v, %v]", r.name, a.Rate, r.rateLo, r.rateHi)
		}
	}
	base := results["baseline"]
	for _, name := range []string{"daemons-off", "kworker-off", "blkmq-off", "pmu-off"} {
		if results[name].MaxNoise <= base.MaxNoise {
			t.Errorf("%s: disabling a countermeasure must raise max noise (%v <= %v)",
				name, results[name].MaxNoise, base.MaxNoise)
		}
		if results[name].Rate <= base.Rate {
			t.Errorf("%s: disabling a countermeasure must raise the noise rate", name)
		}
	}
	// Daemon binding dominates everything else by orders of magnitude.
	for _, name := range []string{"kworker-off", "blkmq-off", "pmu-off", "tlbi-off"} {
		if results["daemons-off"].MaxNoise < 10*results[name].MaxNoise {
			t.Errorf("daemon noise must dominate %s by >=10x", name)
		}
	}
}

// TestNoiseProfileComposition checks which sources exist for each tuning —
// the structural mapping from Sec. 4.2 to the model.
func TestNoiseProfileComposition(t *testing.T) {
	fugaku, err := NewKernel(cpu.A64FX(2), FugakuTuning(), 32<<30)
	if err != nil {
		t.Fatal(err)
	}
	p := fugaku.NoiseProfile()
	for _, name := range []string{"sar", "fs-storm", "daemons", "kworkers", "blk-mq", "nohz-residual"} {
		if p.ByName(name) == nil {
			t.Errorf("Fugaku profile missing %q", name)
		}
	}
	// Countermeasures active: no PMU or TLBI sources, daemons on assistant
	// cores only.
	if p.ByName("pmu-read") != nil {
		t.Error("PMU reads must be stopped under full countermeasures")
	}
	if p.ByName("tlbi-broadcast") != nil {
		t.Error("TLBI broadcasts must be suppressed under full countermeasures")
	}
	appCores := map[int]bool{}
	for _, c := range fugaku.Topo.AppCores() {
		appCores[c] = true
	}
	for _, c := range p.ByName("daemons").Cores {
		if appCores[c] {
			t.Error("bound daemons must not target app cores")
		}
	}

	// With countermeasures off, the sources appear and target app cores.
	tune := FugakuTuning()
	tune.Counter = Countermeasures{}
	loose, err := NewKernel(cpu.A64FX(2), tune, 32<<30)
	if err != nil {
		t.Fatal(err)
	}
	pl := loose.NoiseProfile()
	if pl.ByName("pmu-read") == nil || pl.ByName("tlbi-broadcast") == nil {
		t.Error("disabled countermeasures must expose PMU/TLBI sources")
	}
	hitsApp := false
	for _, c := range pl.ByName("daemons").Cores {
		if appCores[c] {
			hitsApp = true
		}
	}
	if !hitsApp {
		t.Error("unbound daemons must be able to land on app cores")
	}

	// OFP profile: THP compaction and chip-wide IRQ noise; no TLBI source
	// (x86 has no broadcast TLBI).
	ofp, err := NewKernel(cpu.KNL(), OFPTuning(), 112<<30)
	if err != nil {
		t.Fatal(err)
	}
	po := ofp.NoiseProfile()
	for _, name := range []string{"daemons", "irq-balance", "thp-compaction", "sar", "nohz-residual"} {
		if po.ByName(name) == nil {
			t.Errorf("OFP profile missing %q", name)
		}
	}
	if po.ByName("tlbi-broadcast") != nil {
		t.Error("x86 profile must not have a TLBI broadcast source")
	}
}

// TestNoNohzTimerTick verifies the timer-tick source appears when nohz_full
// is off (the ablation the 6.5 ms FWQ quantum is designed around).
func TestNoNohzTimerTick(t *testing.T) {
	tune := FugakuTuning()
	tune.NohzFull = false
	k, err := NewKernel(cpu.A64FX(2), tune, 32<<30)
	if err != nil {
		t.Fatal(err)
	}
	p := k.NoiseProfile()
	if p.ByName("timer-tick") == nil {
		t.Fatal("no timer tick source without nohz_full")
	}
	if p.ByName("nohz-residual") != nil {
		t.Fatal("nohz residual must not coexist with the full tick")
	}
}

// TestOFPNoisierThanFugaku verifies the headline contrast of Figure 4: the
// moderately tuned OFP Linux is far more jittery than tuned Fugaku Linux.
func TestOFPNoisierThanFugaku(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node FWQ simulation")
	}
	ofp := probeConfig(t, OFPTuning(), 4, time.Minute)
	fugaku := probeConfig(t, FugakuTuning(), 4, time.Minute)
	t.Logf("OFP max=%v rate=%.3g; Fugaku max=%v rate=%.3g",
		ofp.MaxNoise, ofp.Rate, fugaku.MaxNoise, fugaku.Rate)
	if ofp.MaxNoise < 10*fugaku.MaxNoise {
		t.Errorf("OFP max noise %v must dwarf Fugaku %v", ofp.MaxNoise, fugaku.MaxNoise)
	}
	if ofp.Rate < 10*fugaku.Rate {
		t.Errorf("OFP rate %v must dwarf Fugaku %v", ofp.Rate, fugaku.Rate)
	}
}
