// Package linux models the Linux environments of the two platforms: the
// moderately tuned CentOS 7 stack of Oakforest-PACS and the heavily tuned
// RHEL 8 stack of Fugaku described in Section 4 of the paper. The model
// covers the scheduler-visible noise sources (daemons, kworkers, blk-mq
// workers, IRQs, timer ticks, sar, TCS PMU collection, broadcast TLB
// invalidations), the cgroup-based CPU/memory isolation, large-page policy
// (THP vs. hugeTLBfs with overcommit), and the memory-management cost model
// applications observe (page faults, heap churn, TLB shootdowns).
package linux

import (
	"mkos/internal/cpu"
	"mkos/internal/mem"
)

// LargePagePolicy selects how application memory is backed (Sec. 4.1.3).
type LargePagePolicy int

const (
	// NoLargePages backs everything with base pages.
	NoLargePages LargePagePolicy = iota
	// THP enables transparent huge pages: 2 MiB pages assembled
	// opportunistically by khugepaged, vulnerable to fragmentation.
	THP
	// HugeTLBOvercommit is Fugaku's configuration: hugeTLBfs with no boot
	// pool, surplus 2 MiB contiguous-bit pages from the buddy allocator,
	// charged to the memory cgroup by the custom kernel-module hook.
	HugeTLBOvercommit
	// HugeTLBReserved reserves a boot-time pool (the configuration Fugaku
	// rejected because it starves small-allocation workloads).
	HugeTLBReserved
)

func (p LargePagePolicy) String() string {
	switch p {
	case THP:
		return "thp"
	case HugeTLBOvercommit:
		return "hugetlbfs-overcommit"
	case HugeTLBReserved:
		return "hugetlbfs-reserved"
	default:
		return "none"
	}
}

// Countermeasures are the individually evaluable noise-elimination
// techniques of Sec. 4.2 / Table 2.
type Countermeasures struct {
	// BindDaemons confines OS daemons to assistant cores via cgroups.
	BindDaemons bool
	// BindKworkers pins unbound kworker kernel threads to assistant cores
	// through their sysfs CPU-affinity interface.
	BindKworkers bool
	// BindBlkMQ forces blk-mq completion workers to assistant cores by
	// overriding struct blk_mq_hw_ctx.cpumask.
	BindBlkMQ bool
	// StopPMUReads disables the periodic TCS PMU collection (the per-job
	// stop command of Sec. 4.2.1).
	StopPMUReads bool
	// SuppressGlobalTLBI applies the RHEL 8.2 patch: single-CPU processes
	// flush locally instead of broadcasting TLBI to the inner-sharable
	// domain (Sec. 4.2.2).
	SuppressGlobalTLBI bool
}

// AllCountermeasures returns the fully tuned configuration.
func AllCountermeasures() Countermeasures {
	return Countermeasures{
		BindDaemons: true, BindKworkers: true, BindBlkMQ: true,
		StopPMUReads: true, SuppressGlobalTLBI: true,
	}
}

// Tuning captures a platform's Linux runtime settings (Table 1 rows).
type Tuning struct {
	Name string

	// NohzFull disables the periodic timer tick on application cores.
	NohzFull bool
	// CPUIsolation uses cgroup cpusets to separate system and application
	// core partitions. False on OFP (the partition is only a convention).
	CPUIsolation bool
	// IRQToAssistant steers device IRQs to assistant cores; false means
	// irqbalance spreads them over the whole chip (OFP).
	IRQToAssistant bool
	// VirtualNUMA exposes separate system/application physical memory
	// domains (Sec. 4.1.2). Fugaku only.
	VirtualNUMA bool
	// SectorCache partitions L2 ways between system and application.
	SectorCache bool
	// Containerized runs applications inside Docker-created cgroups.
	Containerized bool
	// SarEnabled keeps the sar activity monitor running (required for
	// operations on Fugaku; the main residual noise source).
	SarEnabled bool

	LargePage LargePagePolicy
	Counter   Countermeasures
}

// FugakuTuning returns the highly tuned RHEL 8 configuration of Sec. 4.
func FugakuTuning() Tuning {
	return Tuning{
		Name:           "fugaku-linux",
		NohzFull:       true,
		CPUIsolation:   true,
		IRQToAssistant: true,
		VirtualNUMA:    true,
		SectorCache:    true,
		Containerized:  true,
		SarEnabled:     true,
		LargePage:      HugeTLBOvercommit,
		Counter:        AllCountermeasures(),
	}
}

// OFPTuning returns the moderately tuned CentOS 7 configuration of Sec. 3.1:
// nohz_full on application cores and THP, but no cgroup isolation, no IRQ
// steering, no virtual NUMA, and none of the Fugaku countermeasures.
func OFPTuning() Tuning {
	return Tuning{
		Name:       "ofp-linux",
		NohzFull:   true,
		SarEnabled: true,
		LargePage:  THP,
	}
}

// MemoryLayoutFor builds the physical memory layout for a topology under
// this tuning. With virtual NUMA, a system slice is carved out as its own
// domain; otherwise all memory is application-reachable.
func (t Tuning) MemoryLayoutFor(topo *cpu.Topology, totalBytes int64) mem.MemoryLayout {
	layout := mem.MemoryLayout{BasePage: 64 << 10, MaxOrder: 13} // 512 MiB max block
	if topo.ISA == cpu.X86_64 {
		layout.BasePage = 4 << 10
		layout.MaxOrder = 10 // 4 MiB max block on x86 buddy
	}
	appDomains := len(topo.AppNUMADomains)
	if appDomains == 0 {
		appDomains = 1
	}
	if t.VirtualNUMA && len(topo.SysNUMADomains) > 0 {
		sysBytes := totalBytes / 16 // firmware-carved system slice
		appBytes := totalBytes - sysBytes
		for i := 0; i < appDomains; i++ {
			layout.AppNodes = append(layout.AppNodes, appBytes/int64(appDomains))
		}
		for range topo.SysNUMADomains {
			layout.SysNodes = append(layout.SysNodes, sysBytes/int64(len(topo.SysNUMADomains)))
		}
	} else if topo.ISA == cpu.X86_64 {
		// Quadrant flat mode: DDR4 and MCDRAM appear as separate domains
		// (Sec. 6.1). 16 GiB of the node total is the fast tier.
		fast := int64(16) << 30
		if fast > totalBytes/2 {
			fast = totalBytes / 2
		}
		ddr := totalBytes - fast
		for i := 0; i < appDomains; i++ {
			layout.AppNodes = append(layout.AppNodes, ddr/int64(appDomains))
		}
		layout.FastAppNodes = append(layout.FastAppNodes, fast)
	} else {
		for i := 0; i < appDomains; i++ {
			layout.AppNodes = append(layout.AppNodes, totalBytes/int64(appDomains))
		}
	}
	return layout
}
