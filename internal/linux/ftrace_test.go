package linux

import (
	"strings"
	"testing"
	"time"

	"mkos/internal/cpu"
	"mkos/internal/kernel"
	"mkos/internal/sim"
	"mkos/internal/telemetry"
)

func TestTracerRecordAndAttribute(t *testing.T) {
	tr := NewTracer(100)
	if tr.Enabled() {
		t.Fatal("fresh tracer must be disabled")
	}
	tr.Record(0, 0, "ignored", kernel.DaemonTask, time.Millisecond)
	if len(tr.Events()) != 0 {
		t.Fatal("disabled tracer recorded an event")
	}
	tr.Enable()
	tr.Record(sim.Time(10), 0, "kworker/u0", kernel.KworkerTask, 100*time.Microsecond)
	tr.Record(sim.Time(20), 0, "kworker/u0", kernel.KworkerTask, 300*time.Microsecond)
	tr.Record(sim.Time(30), 1, "sshd", kernel.DaemonTask, 2*time.Millisecond)
	tr.Record(sim.Time(40), 5, "blk-mq/0", kernel.BlkMQTask, time.Millisecond)
	tr.Disable()
	tr.Record(sim.Time(50), 0, "late", kernel.DaemonTask, time.Second)
	if len(tr.Events()) != 4 {
		t.Fatalf("events = %d, want 4", len(tr.Events()))
	}

	// Attribution restricted to CPUs 0 and 1.
	attr := tr.AttributeOn(map[int]bool{0: true, 1: true})
	if len(attr) != 2 {
		t.Fatalf("attributions = %d, want 2 (blk-mq on cpu 5 excluded)", len(attr))
	}
	// Sorted by total stolen time: sshd (2ms) before kworker (400us).
	if attr[0].Task != "sshd" || attr[1].Task != "kworker/u0" {
		t.Fatalf("order = %s, %s", attr[0].Task, attr[1].Task)
	}
	if attr[1].Count != 2 || attr[1].Total != 400*time.Microsecond || attr[1].Max != 300*time.Microsecond {
		t.Fatalf("kworker aggregation wrong: %+v", attr[1])
	}
	if attr[0].String() == "" {
		t.Fatal("empty attribution string")
	}
	// nil CPU filter includes everything.
	all := tr.AttributeOn(nil)
	if len(all) != 3 {
		t.Fatalf("unfiltered attributions = %d, want 3", len(all))
	}
}

func TestTracerRingBuffer(t *testing.T) {
	tr := NewTracer(3)
	tr.Enable()
	for i := 0; i < 5; i++ {
		tr.Record(sim.Time(i), 0, "t", kernel.KworkerTask, time.Microsecond)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("ring buffer holds %d, want 3", len(evs))
	}
	if evs[0].At != sim.Time(2) || evs[2].At != sim.Time(4) {
		t.Fatalf("oldest events must be dropped: %v..%v", evs[0].At, evs[2].At)
	}
	// Zero limit gets a sane default.
	if NewTracer(0) == nil {
		t.Fatal("nil tracer")
	}
}

// TestAttributeProfileFindsBlkMQ reproduces the Sec. 4.2.1 discovery: with
// blk-mq binding disabled, the trace on application cores shows blk-mq
// workers; with it enabled they vanish.
func TestAttributeProfileFindsBlkMQ(t *testing.T) {
	tune := FugakuTuning()
	tune.Counter.BindBlkMQ = false
	k, err := NewKernel(cpu.A64FX(2), tune, 32<<30)
	if err != nil {
		t.Fatal(err)
	}
	attr := k.AttributeProfile(10*time.Minute, 3)
	found := map[string]bool{}
	for _, a := range attr {
		found[a.Task] = true
		if a.Count <= 0 || a.Total <= 0 {
			t.Fatalf("degenerate attribution: %+v", a)
		}
	}
	if !found["blk-mq"] {
		t.Fatalf("blk-mq must appear on app cores when unbound; saw %v", found)
	}
	if !found["sar"] {
		t.Fatal("sar residual must always appear")
	}

	// With the countermeasure on, blk-mq disappears from app cores.
	tuned, err := NewKernel(cpu.A64FX(2), FugakuTuning(), 32<<30)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range tuned.AttributeProfile(10*time.Minute, 3) {
		if a.Task == "blk-mq" || a.Task == "daemons" || a.Task == "kworkers" {
			t.Fatalf("%s must not run on app cores under full countermeasures", a.Task)
		}
	}
}

// TestAttributeProfileKinds verifies the task-kind mapping used in reports.
func TestAttributeProfileKinds(t *testing.T) {
	cases := map[string]kernel.TaskKind{
		"daemons": kernel.DaemonTask, "kworkers": kernel.KworkerTask,
		"blk-mq": kernel.BlkMQTask, "sar": kernel.MonitorTask,
		"anything-else": kernel.KworkerTask,
	}
	for src, want := range cases {
		if kindOf(src) != want {
			t.Fatalf("kindOf(%s) = %v", src, kindOf(src))
		}
	}
}

func TestTracerDropAccounting(t *testing.T) {
	old := telemetry.SetDefault(telemetry.NewSink())
	defer telemetry.SetDefault(old)

	tr := NewTracer(4)
	tr.Enable()
	for i := 0; i < 6; i++ {
		tr.Record(sim.Time(i*10), 0, "churner", kernel.KworkerTask, time.Microsecond)
	}
	if got := len(tr.Events()); got != 4 {
		t.Fatalf("buffer holds %d events, want 4", got)
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	// Oldest events were discarded: the window starts at the third record.
	if tr.Events()[0].At != sim.Time(20) {
		t.Fatalf("oldest retained event at %v, want 20ns", tr.Events()[0].At)
	}
	reg := telemetry.Default().Registry()
	if got := reg.CounterValue("linux.ftrace.dropped"); got != 2 {
		t.Fatalf("shared drop counter = %d, want 2", got)
	}
	if got := reg.CounterValue("linux.ftrace.events"); got != 6 {
		t.Fatalf("shared event counter = %d, want 6", got)
	}
}

func TestTracerForwardsToRecorder(t *testing.T) {
	old := telemetry.SetDefault(telemetry.NewSink())
	defer telemetry.SetDefault(old)
	telemetry.Default().Recorder().Enable()

	tr := NewTracer(16)
	tr.Node = 3
	tr.Enable()
	tr.Record(sim.Time(100), 2, "kworker/2:1", kernel.KworkerTask, 50*time.Microsecond)
	rec := telemetry.Default().Recorder()
	if rec.Len() != 1 {
		t.Fatalf("recorder holds %d events, want 1", rec.Len())
	}
	var b strings.Builder
	if err := rec.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"cat":"linux"`, `"name":"kworker/2:1"`, `"pid":3`, `"tid":2`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace export missing %s:\n%s", want, out)
		}
	}
}
