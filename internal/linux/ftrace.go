package linux

import (
	"fmt"
	"sort"
	"time"

	"mkos/internal/kernel"
	"mkos/internal/sim"
	"mkos/internal/telemetry"
)

// Tracer is the model's ftrace: it records which task ran on which CPU and
// for how long, so interference on application cores can be attributed to
// its source — the methodology of Sec. 4.2.1 ("for identifying kernel mode
// tasks that interfere with application code we utilize execution time
// profiling and ftrace"). The blk-mq discovery in the paper (completion
// workers appearing on app cores despite kworker binding) falls out of
// exactly this kind of per-task trace.
type Tracer struct {
	enabled bool
	events  []TraceEvent
	limit   int
	dropped uint64
	// Node keys the events this tracer forwards to the shared telemetry
	// recorder; zero for single-node profiles.
	Node int
}

// TraceEvent is one scheduling event in the trace buffer.
type TraceEvent struct {
	At   sim.Time
	CPU  int
	Task string
	Kind kernel.TaskKind
	Len  time.Duration
}

// NewTracer returns a tracer with the given ring-buffer capacity.
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = 1 << 16
	}
	return &Tracer{limit: limit}
}

// Enable starts recording.
func (t *Tracer) Enable() { t.enabled = true }

// Disable stops recording; the buffer is retained for analysis.
func (t *Tracer) Disable() { t.enabled = false }

// Enabled reports recording state.
func (t *Tracer) Enabled() bool { return t.enabled }

// Record appends one event, dropping the oldest when the buffer is full
// (ftrace ring-buffer semantics). Drops are counted — never silent — and
// surfaced both via Dropped and the shared linux.ftrace.dropped counter, so
// a truncated attribution is visible in the metrics dump. Every recorded
// event is also forwarded to the shared telemetry recorder, putting Linux
// scheduling noise on the same timeline as the rest of the stack.
func (t *Tracer) Record(at sim.Time, cpu int, task string, kind kernel.TaskKind, d time.Duration) {
	if !t.enabled {
		return
	}
	if len(t.events) >= t.limit {
		copy(t.events, t.events[1:])
		t.events = t.events[:len(t.events)-1]
		t.dropped++
		telemetry.C("linux.ftrace.dropped").Inc()
	}
	t.events = append(t.events, TraceEvent{At: at, CPU: cpu, Task: task, Kind: kind, Len: d})
	telemetry.C("linux.ftrace.events").Inc()
	if telemetry.TraceEnabled() {
		telemetry.Span("linux", task, t.Node, cpu, at, d,
			telemetry.Arg{Key: "kind", Val: kind.String()})
	}
}

// Events returns the recorded events in order.
func (t *Tracer) Events() []TraceEvent { return t.events }

// Dropped returns how many events ring-buffer wraparound discarded.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Attribution summarizes stolen time by task name.
type Attribution struct {
	Task  string
	Kind  kernel.TaskKind
	Count int
	Total time.Duration
	Max   time.Duration
}

// AttributeOn aggregates the trace for a set of CPUs (typically the
// application cores), sorted by total stolen time descending — the view the
// paper used to find blk-mq workers and PMU IPIs on application cores.
func (t *Tracer) AttributeOn(cpus map[int]bool) []Attribution {
	agg := map[string]*Attribution{}
	for _, ev := range t.events {
		if cpus != nil && !cpus[ev.CPU] {
			continue
		}
		a, ok := agg[ev.Task]
		if !ok {
			a = &Attribution{Task: ev.Task, Kind: ev.Kind}
			agg[ev.Task] = a
		}
		a.Count++
		a.Total += ev.Len
		if ev.Len > a.Max {
			a.Max = ev.Len
		}
	}
	out := make([]Attribution, 0, len(agg))
	for _, a := range agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Task < out[j].Task
	})
	return out
}

// AttributeProfile runs the kernel's noise profile for the given horizon and
// returns the per-source attribution on application cores — the end-to-end
// "what interferes with my app cores" report of Sec. 4.2.1.
func (k *Kernel) AttributeProfile(horizon time.Duration, seed int64) []Attribution {
	tl := k.NoiseProfile().Timeline(horizon, sim.NewRand(seed))
	tr := NewTracer(1 << 20)
	tr.Enable()
	appSet := map[int]bool{}
	for _, c := range k.AppCores() {
		appSet[c] = true
		for _, iv := range tl.ForCPU(c) {
			tr.Record(iv.Start, c, iv.Source, kindOf(iv.Source), iv.Len)
		}
	}
	return tr.AttributeOn(appSet)
}

// kindOf maps a noise-source name to the task kind it represents.
func kindOf(source string) kernel.TaskKind {
	switch source {
	case "daemons":
		return kernel.DaemonTask
	case "kworkers":
		return kernel.KworkerTask
	case "blk-mq":
		return kernel.BlkMQTask
	case "sar":
		return kernel.MonitorTask
	default:
		return kernel.KworkerTask
	}
}

// String renders an attribution line the way trace reports are read.
func (a Attribution) String() string {
	return fmt.Sprintf("%-16s %-8s hits=%6d total=%12v max=%10v",
		a.Task, a.Kind, a.Count, a.Total, a.Max)
}
