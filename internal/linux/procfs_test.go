package linux

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"mkos/internal/kernel"
)

func TestMaskHexRoundTrip(t *testing.T) {
	cases := map[string]kernel.CPUMask{
		"3":                   kernel.NewCPUMask(0, 1),
		"f":                   kernel.NewCPUMask(0, 1, 2, 3),
		"1,00000000":          kernel.NewCPUMask(32),
		"3,00000000":          kernel.NewCPUMask(32, 33),
		"1,00000000,00000000": kernel.NewCPUMask(64),
	}
	for want, mask := range cases {
		if got := maskToHex(mask); got != want {
			t.Fatalf("maskToHex(%s) = %q, want %q", mask, got, want)
		}
		back, err := hexToMask(want)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(mask) {
			t.Fatalf("hexToMask(%q) = %s, want %s", want, back, mask)
		}
	}
	if maskToHex(kernel.CPUMask{}) != "0" {
		t.Fatal("empty mask must render as 0")
	}
	if _, err := hexToMask("zz"); !errors.Is(err, ErrBadValue) {
		t.Fatalf("bad hex err = %v", err)
	}
	if _, err := hexToMask(""); !errors.Is(err, ErrBadValue) {
		t.Fatalf("empty err = %v", err)
	}
	if _, err := hexToMask("1,,2"); !errors.Is(err, ErrBadValue) {
		t.Fatalf("empty group err = %v", err)
	}
}

func TestQuickMaskHexRoundTrip(t *testing.T) {
	f := func(cores []uint8) bool {
		var m kernel.CPUMask
		for _, c := range cores {
			m.Set(int(c))
		}
		back, err := hexToMask(maskToHex(m))
		return err == nil && back.Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProcIRQAffinity(t *testing.T) {
	k := newFugakuKernel(t)
	fs := k.Proc()
	// IRQs start on assistant cores (48, 49): mask 0x3 << 48.
	path := "/proc/irq/16/smp_affinity"
	got, err := fs.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	wantMask := kernel.NewCPUMask(k.Topo.AssistantCores()...)
	if got != maskToHex(wantMask) {
		t.Fatalf("initial smp_affinity = %s, want %s", got, maskToHex(wantMask))
	}
	// Rebalance IRQ 16 across cores 0-3 by writing the file.
	if err := fs.Write(path, "f"); err != nil {
		t.Fatal(err)
	}
	if !k.IRQs[0].Affinity.Equal(kernel.NewCPUMask(0, 1, 2, 3)) {
		t.Fatalf("write did not reach the IRQ object: %s", k.IRQs[0].Affinity)
	}
	// Unknown IRQ and malformed paths.
	if _, err := fs.Read("/proc/irq/999/smp_affinity"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("unknown IRQ err = %v", err)
	}
	if _, err := fs.Read("/proc/irq/x/smp_affinity"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("bad IRQ path err = %v", err)
	}
	if err := fs.Write(path, "zz"); !errors.Is(err, ErrBadValue) {
		t.Fatalf("bad mask write err = %v", err)
	}
}

func TestSysWorkqueueCpumask(t *testing.T) {
	k := newFugakuKernel(t)
	fs := k.Proc()
	const path = "/sys/devices/virtual/workqueue/cpumask"
	if _, err := fs.Read(path); err != nil {
		t.Fatal(err)
	}
	// Rebind all kworkers to core 0 — the Sec. 4.2 sysfs knob.
	if err := fs.Write(path, "1"); err != nil {
		t.Fatal(err)
	}
	for _, kw := range k.Kworkers {
		if !kw.Affinity.Equal(kernel.NewCPUMask(0)) {
			t.Fatalf("kworker affinity = %s", kw.Affinity)
		}
	}
}

func TestProcCmdline(t *testing.T) {
	k := newFugakuKernel(t)
	cmdline, err := k.Proc().Read("/proc/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cmdline, "nohz_full=0-47") {
		t.Fatalf("cmdline missing nohz_full for the 48 app cores: %s", cmdline)
	}
	ofp := newOFPKernel(t)
	cmdlineOFP, err := ofp.Proc().Read("/proc/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cmdlineOFP, "transparent_hugepage=always") {
		t.Fatalf("OFP cmdline missing THP: %s", cmdlineOFP)
	}
}

func TestProcTHPAndHugepageFiles(t *testing.T) {
	fugaku := newFugakuKernel(t)
	v, err := fugaku.Proc().Read("/sys/kernel/mm/transparent_hugepage/enabled")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v, "[never]") {
		t.Fatalf("Fugaku must have THP off (uses hugeTLBfs): %s", v)
	}
	over, err := fugaku.Proc().Read("/proc/sys/vm/nr_overcommit_hugepages")
	if err != nil {
		t.Fatal(err)
	}
	if over == "0" {
		t.Fatal("Fugaku must have hugepage overcommit enabled (Sec. 4.1.3)")
	}
	ofp := newOFPKernel(t)
	v, _ = ofp.Proc().Read("/sys/kernel/mm/transparent_hugepage/enabled")
	if !strings.Contains(v, "[always]") {
		t.Fatalf("OFP must have THP on: %s", v)
	}
	if over, _ := ofp.Proc().Read("/proc/sys/vm/nr_overcommit_hugepages"); over != "0" {
		t.Fatalf("OFP has no hugeTLBfs overcommit: %s", over)
	}
}

func TestProcFilesAndUnknowns(t *testing.T) {
	k := newFugakuKernel(t)
	fs := k.Proc()
	files := fs.Files()
	if len(files) < 8 {
		t.Fatalf("files = %d", len(files))
	}
	for _, f := range files {
		if _, err := fs.Read(f); err != nil {
			t.Fatalf("listed file %s unreadable: %v", f, err)
		}
	}
	if _, err := fs.Read("/proc/nope"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("err = %v", err)
	}
	if err := fs.Write("/proc/nope", "1"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("err = %v", err)
	}
}
