package linux

import (
	"testing"
	"time"

	"mkos/internal/cpu"
	"mkos/internal/kernel"
	"mkos/internal/mem"
)

func newFugakuKernel(t *testing.T) *Kernel {
	t.Helper()
	k, err := NewKernel(cpu.A64FX(2), FugakuTuning(), 32<<30)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func newOFPKernel(t *testing.T) *Kernel {
	t.Helper()
	k, err := NewKernel(cpu.KNL(), OFPTuning(), 112<<30)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestTuningPresets(t *testing.T) {
	f := FugakuTuning()
	if !f.NohzFull || !f.CPUIsolation || !f.IRQToAssistant || !f.VirtualNUMA ||
		!f.SectorCache || !f.Containerized || !f.SarEnabled {
		t.Fatalf("Fugaku tuning incomplete: %+v", f)
	}
	if f.LargePage != HugeTLBOvercommit {
		t.Fatal("Fugaku must use hugeTLBfs overcommit (Sec. 4.1.3)")
	}
	cm := f.Counter
	if !cm.BindDaemons || !cm.BindKworkers || !cm.BindBlkMQ || !cm.StopPMUReads || !cm.SuppressGlobalTLBI {
		t.Fatal("Fugaku must enable all countermeasures")
	}

	o := OFPTuning()
	if !o.NohzFull {
		t.Fatal("OFP has nohz_full on app cores (Table 1)")
	}
	if o.CPUIsolation || o.IRQToAssistant || o.VirtualNUMA {
		t.Fatal("OFP has no cgroup isolation / IRQ steering / virtual NUMA (Table 1)")
	}
	if o.LargePage != THP {
		t.Fatal("OFP uses THP (Table 1)")
	}
}

func TestLargePagePolicyString(t *testing.T) {
	for p, want := range map[LargePagePolicy]string{
		NoLargePages: "none", THP: "thp",
		HugeTLBOvercommit: "hugetlbfs-overcommit", HugeTLBReserved: "hugetlbfs-reserved",
	} {
		if p.String() != want {
			t.Fatalf("%d String = %s", p, p.String())
		}
	}
}

func TestFugakuKernelAssembly(t *testing.T) {
	k := newFugakuKernel(t)
	if k.Name() != "fugaku-linux" {
		t.Fatalf("Name = %s", k.Name())
	}
	// Virtual NUMA: 4 app domains + 1 system domain.
	if got := len(k.Mem.AppNodes()); got != 4 {
		t.Fatalf("app NUMA domains = %d, want 4 CMGs", got)
	}
	if got := len(k.Mem.SysNodes()); got != 1 {
		t.Fatalf("system NUMA domains = %d, want 1", got)
	}
	// Daemons confined to assistant cores.
	sysMask := kernel.NewCPUMask(k.Topo.AssistantCores()...)
	for _, d := range k.Daemons {
		if !d.Affinity.Equal(sysMask) {
			t.Fatalf("daemon %s affinity %s, want %s", d.Name, d.Affinity, sysMask)
		}
	}
	// Kworkers and blk-mq bound to assistant cores.
	for _, kw := range k.Kworkers {
		if !kw.Affinity.Equal(sysMask) {
			t.Fatalf("kworker affinity %s", kw.Affinity)
		}
	}
	for _, b := range k.BlkMQ {
		if !b.Affinity.Equal(sysMask) {
			t.Fatalf("blk-mq affinity %s", b.Affinity)
		}
	}
	// IRQs routed to assistant cores.
	for _, irq := range k.IRQs {
		if !irq.Affinity.Equal(sysMask) {
			t.Fatalf("IRQ %s affinity %s", irq.Name, irq.Affinity)
		}
	}
	// sar exists (required on Fugaku) but runs on assistant cores.
	if k.Sar == nil || !k.Sar.Affinity.Equal(sysMask) {
		t.Fatal("sar must exist and be bound to assistant cores")
	}
	// hugeTLBfs overcommit with the cgroup hook installed.
	if k.Huge == nil {
		t.Fatal("Fugaku kernel must have hugeTLBfs")
	}
	if !k.App.ChargeSurplusPages {
		t.Fatal("surplus-charge hook must be installed on the app cgroup")
	}
	if k.Runtime == nil {
		t.Fatal("Fugaku kernel must have a container runtime")
	}
}

func TestOFPKernelAssembly(t *testing.T) {
	k := newOFPKernel(t)
	// No partition: daemons may roam the whole chip.
	all := kernel.FullMask(k.Topo.NumCores())
	for _, d := range k.Daemons {
		if !d.Affinity.Equal(all) {
			t.Fatalf("OFP daemon %s should be unbound, got %s", d.Name, d.Affinity)
		}
	}
	// IRQs balanced across the entire chip (Sec. 3.1).
	for _, irq := range k.IRQs {
		if !irq.Affinity.Equal(all) {
			t.Fatalf("OFP IRQ %s should span the chip", irq.Name)
		}
	}
	if k.Huge != nil {
		t.Fatal("OFP uses THP, not hugeTLBfs")
	}
	if k.Runtime != nil {
		t.Fatal("OFP is not containerized (Table 1)")
	}
	if k.System != k.Root || k.App != k.Root {
		t.Fatal("without isolation both partitions alias the root cgroup")
	}
}

func TestDaemonsUnboundWhenCountermeasureOff(t *testing.T) {
	tune := FugakuTuning()
	tune.Counter.BindDaemons = false
	k, err := NewKernel(cpu.A64FX(2), tune, 32<<30)
	if err != nil {
		t.Fatal(err)
	}
	all := kernel.FullMask(k.Topo.NumCores())
	for _, d := range k.Daemons {
		if !d.Affinity.Equal(all) {
			t.Fatalf("unbound daemon %s affinity %s", d.Name, d.Affinity)
		}
	}
}

func TestSyscallCostsPlatformScaling(t *testing.T) {
	f := newFugakuKernel(t)
	o := newOFPKernel(t)
	fc, oc := f.SyscallCosts(), o.SyscallCosts()
	if oc.Cost(kernel.SysMmap) <= fc.Cost(kernel.SysMmap) {
		t.Fatal("KNL kernel paths must cost more than A64FX (slow in-order cores)")
	}
	if fc.Cost(kernel.SysGetpid) >= fc.Cost(kernel.SysMmap) {
		t.Fatal("getpid must be cheaper than mmap")
	}
}

func TestPageFaultCostOrdering(t *testing.T) {
	k := newFugakuKernel(t)
	if k.PageFaultCost(mem.Page64K) >= k.PageFaultCost(mem.Page2M) {
		t.Fatal("larger pages cost more per fault")
	}
	if k.PageFaultCost(mem.Page2M) >= k.PageFaultCost(mem.Page512M) {
		t.Fatal("512M fault must be the most expensive")
	}
	// But per byte, large pages win decisively.
	perByte := func(p mem.PageSize) float64 {
		return float64(k.PageFaultCost(p)) / float64(p)
	}
	if perByte(mem.Page2M) >= perByte(mem.Page64K) {
		t.Fatal("per-byte fault cost must fall with page size")
	}
}

func TestEffectiveAppPage(t *testing.T) {
	f := newFugakuKernel(t)
	page, cov := f.EffectiveAppPage(1 << 30)
	if page != mem.Page2M || cov != 1 {
		t.Fatalf("Fugaku: page=%v cov=%v, want 2M/1.0", page, cov)
	}
	o := newOFPKernel(t)
	pageO, covO := o.EffectiveAppPage(1 << 30)
	if pageO != mem.Page2M {
		t.Fatalf("OFP THP page = %v", pageO)
	}
	if covO <= 0 || covO > 1 {
		t.Fatalf("THP coverage = %v", covO)
	}
}

func TestTHPCoverageDegradesWithFragmentation(t *testing.T) {
	o := newOFPKernel(t)
	_, before := o.EffectiveAppPage(1 << 30)
	// Fragment the app domains: pin alternating 4K pages.
	for _, n := range o.Mem.AppNodes() {
		var regs []mem.Region
		for i := 0; i < 64; i++ {
			r, err := n.Buddy.Alloc(4 << 10)
			if err != nil {
				t.Fatal(err)
			}
			regs = append(regs, r)
		}
		for i := 0; i < len(regs); i += 2 {
			_ = n.Buddy.Free(regs[i])
		}
	}
	_, after := o.EffectiveAppPage(1 << 30)
	if after >= before {
		t.Fatalf("THP coverage must degrade with fragmentation: %v -> %v", before, after)
	}
}

func TestTranslationOverhead(t *testing.T) {
	f := newFugakuKernel(t)
	o := newOFPKernel(t)
	// 16 GiB working set streaming at 100ns per access.
	fo := f.TranslationOverhead(16<<30, 100*time.Nanosecond)
	oo := o.TranslationOverhead(16<<30, 100*time.Nanosecond)
	if fo < 0 || oo < 0 {
		t.Fatal("negative overhead")
	}
	// A64FX's 1024-entry TLB with 2M pages covers 2 GiB; KNL's 64 entries
	// cover 128 MiB — OFP must suffer more (Sec. 3.2).
	if oo <= fo {
		t.Fatalf("KNL overhead %v must exceed A64FX %v", oo, fo)
	}
}

func TestHeapChurnCost(t *testing.T) {
	f := newFugakuKernel(t)
	if f.HeapChurnCost(0, 0, 1) != 0 {
		t.Fatal("zero churn must be free")
	}
	small := f.HeapChurnCost(64<<20, 0, 1)
	big := f.HeapChurnCost(1<<30, 0, 1)
	if small <= 0 || big <= small {
		t.Fatalf("churn cost not monotone: %v %v", small, big)
	}
	threaded := f.HeapChurnCost(1<<30, 0, 48)
	if threaded <= big {
		t.Fatal("multi-threaded churn must add shootdown cost")
	}
}

func TestProcessExitFlushes(t *testing.T) {
	k := newFugakuKernel(t)
	if k.ProcessExitFlushes(100) < 100 {
		t.Fatal("teardown flush count too low")
	}
	if k.ProcessExitFlushes(0) < 1 {
		t.Fatal("teardown always flushes at least once")
	}
	// "Hundreds to thousands of consecutive TLB flushes" (Sec. 4.2.2).
	if n := k.ProcessExitFlushes(64); n < 100 || n > 10000 {
		t.Fatalf("flush count %d outside the paper's range", n)
	}
}

func TestRDMARegistrationCost(t *testing.T) {
	k := newFugakuKernel(t)
	small := k.RDMARegistrationCost(4 << 10)
	big := k.RDMARegistrationCost(1 << 30)
	if small <= 0 || big <= small {
		t.Fatalf("registration cost not monotone: %v %v", small, big)
	}
}

func TestBarrierLatency(t *testing.T) {
	f := newFugakuKernel(t)
	o := newOFPKernel(t)
	if f.BarrierLatency(48) >= o.BarrierLatency(48) {
		t.Fatal("A64FX hardware barrier must beat KNL software barrier")
	}
}

func TestCacheInterference(t *testing.T) {
	f := newFugakuKernel(t)
	if f.CacheInterferenceFactor() != 1 {
		t.Fatal("sector cache must remove OS cache interference")
	}
	tune := FugakuTuning()
	tune.SectorCache = false
	k, _ := NewKernel(cpu.A64FX(2), tune, 32<<30)
	if k.CacheInterferenceFactor() <= 1 {
		t.Fatal("without sector cache the OS must interfere")
	}
	o := newOFPKernel(t)
	if o.CacheInterferenceFactor() <= 1 {
		t.Fatal("KNL has no sector cache; interference expected")
	}
}

func TestMemoryLayoutFor(t *testing.T) {
	f := FugakuTuning()
	layout := f.MemoryLayoutFor(cpu.A64FX(2), 32<<30)
	if len(layout.AppNodes) != 4 || len(layout.SysNodes) != 1 {
		t.Fatalf("layout = %d app + %d sys", len(layout.AppNodes), len(layout.SysNodes))
	}
	if layout.BasePage != 64<<10 {
		t.Fatalf("A64FX base page = %d, want 64K (Sec. 4.1.3)", layout.BasePage)
	}
	o := OFPTuning()
	layoutO := o.MemoryLayoutFor(cpu.KNL(), 112<<30)
	if len(layoutO.SysNodes) != 0 {
		t.Fatal("OFP layout must have no system domains")
	}
	if layoutO.BasePage != 4<<10 {
		t.Fatalf("x86 base page = %d, want 4K", layoutO.BasePage)
	}
}

func TestNewKernelRejectsInvalidTopology(t *testing.T) {
	bad := &cpu.Topology{Name: "bad"}
	if _, err := NewKernel(bad, FugakuTuning(), 32<<30); err == nil {
		t.Fatal("invalid topology must be rejected")
	}
}

func TestGCReleaseFlushes(t *testing.T) {
	k := newFugakuKernel(t)
	if k.GCReleaseFlushes(0) != 0 {
		t.Fatal("empty heap releases nothing")
	}
	if k.GCReleaseFlushes(1<<20) != 1 {
		t.Fatal("small release still flushes once")
	}
	// "Hundreds to thousands of consecutive TLB flushes" (Sec. 4.2.2) for a
	// multi-GiB managed heap.
	n := k.GCReleaseFlushes(4 << 30)
	if n < 100 || n > 10000 {
		t.Fatalf("4 GiB GC release = %d flushes, outside the paper's range", n)
	}
	// The resulting chip-wide stall under broadcast TLBI: hundreds of
	// microseconds of noise, as the paper states.
	_, perRemote := cpu.ShootdownCost(k.Topo, cpu.ShootdownBroadcast)
	stall := time.Duration(n) * perRemote
	if stall < 100*time.Microsecond || stall > 10*time.Millisecond {
		t.Fatalf("GC-release stall %v outside 'hundreds of microseconds'", stall)
	}
}

func TestHugeTLBReservedStarvesSmallAllocations(t *testing.T) {
	// The downside Sec. 4.1.3 gives for boot-time pools: "this can be a
	// disadvantage for applications which do not require large pages".
	tune := FugakuTuning()
	tune.LargePage = HugeTLBReserved
	reserved, err := NewKernel(cpu.A64FX(2), tune, 32<<30)
	if err != nil {
		t.Fatal(err)
	}
	overcommit := newFugakuKernel(t)
	if reserved.Mem.AppNodes()[0].Buddy.FreeBytes() >= overcommit.Mem.AppNodes()[0].Buddy.FreeBytes() {
		t.Fatal("boot-time pool must shrink general memory vs overcommit")
	}
}
