package linux

import (
	"errors"
	"testing"
	"time"

	"mkos/internal/mem"
	"mkos/internal/sim"
)

func thpFixture(t *testing.T) (*Khugepaged, *mem.Buddy) {
	t.Helper()
	buddy, err := mem.NewBuddy(0, 256<<20, 4<<10, 10) // 4 MiB max blocks
	if err != nil {
		t.Fatal(err)
	}
	thp, err := NewKhugepaged(buddy)
	if err != nil {
		t.Fatal(err)
	}
	return thp, buddy
}

func TestNewKhugepagedRequires4KBase(t *testing.T) {
	b64, err := mem.NewBuddy(0, 256<<20, 64<<10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewKhugepaged(b64); !errors.Is(err, ErrTHPDisabled) {
		t.Fatalf("err = %v, want ErrTHPDisabled (aarch64 uses hugeTLBfs)", err)
	}
	if _, err := NewKhugepaged(nil); !errors.Is(err, ErrTHPDisabled) {
		t.Fatalf("nil buddy err = %v", err)
	}
}

func TestTHPPristineCollapsesEverything(t *testing.T) {
	thp, _ := thpFixture(t)
	if p := thp.CollapseProbability(); p != 1 {
		t.Fatalf("pristine collapse probability = %v", p)
	}
	rng := sim.NewRand(1)
	cost := thp.KhugepagedPass(rng)
	if cost <= 0 {
		t.Fatal("khugepaged pass must consume CPU")
	}
	collapsed, failed, _ := thp.Stats()
	if failed != 0 || collapsed == 0 {
		t.Fatalf("pristine pass: collapsed=%d failed=%d", collapsed, failed)
	}
	page, stall := thp.FaultAlloc(rng)
	if page != mem.Page2M || stall != 0 {
		t.Fatalf("pristine fault: page=%v stall=%v", page, stall)
	}
}

// fragment pins single pages so no 2 MiB block survives.
func fragment(t *testing.T, buddy *mem.Buddy) {
	t.Helper()
	var regs []mem.Region
	for {
		r, err := buddy.Alloc(4 << 10)
		if err != nil {
			break
		}
		regs = append(regs, r)
		if len(regs) > 1<<20 {
			t.Fatal("runaway allocation")
		}
	}
	// Free all but every 512th page: every 2 MiB run keeps one pinned page.
	for i, r := range regs {
		if i%512 == 256 {
			continue
		}
		if err := buddy.Free(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTHPFragmentationDegradesCollapse(t *testing.T) {
	thp, buddy := thpFixture(t)
	fragment(t, buddy)
	p := thp.CollapseProbability()
	if p > 0.2 {
		t.Fatalf("fragmented collapse probability = %v, want near 0", p)
	}
	rng := sim.NewRand(2)
	_ = thp.KhugepagedPass(rng)
	collapsed, failed, _ := thp.Stats()
	if failed == 0 {
		t.Fatalf("fragmented pass must fail collapses (collapsed=%d)", collapsed)
	}
	// Faults fall back to base pages with compaction stalls.
	sawStall := false
	for i := 0; i < 50; i++ {
		page, stall := thp.FaultAlloc(rng)
		if page == mem.Page4K && stall > 0 {
			sawStall = true
		}
	}
	if !sawStall {
		t.Fatal("fragmented faults must stall in direct compaction")
	}
	_, _, totalStall := thp.Stats()
	if totalStall <= 0 {
		t.Fatal("stall accounting missing")
	}
}

func TestTHPFaultAllocDoesNotLeak(t *testing.T) {
	thp, buddy := thpFixture(t)
	free := buddy.FreeBytes()
	rng := sim.NewRand(3)
	for i := 0; i < 100; i++ {
		thp.FaultAlloc(rng)
	}
	if buddy.FreeBytes() != free {
		t.Fatal("FaultAlloc leaked buddy memory")
	}
}

func TestKhugepagedCostGrowsWithCollapses(t *testing.T) {
	thpA, _ := thpFixture(t)
	thpB, buddyB := thpFixture(t)
	fragment(t, buddyB)
	rng := sim.NewRand(4)
	costClean := thpA.KhugepagedPass(rng)
	costFrag := thpB.KhugepagedPass(sim.NewRand(4))
	// Collapses dominate the pass cost; a fragmented heap collapses less
	// and therefore scans cheaper — but the *application* pays compaction
	// stalls instead.
	if costFrag >= costClean {
		t.Fatalf("fragmented pass %v should cost less than clean %v", costFrag, costClean)
	}
	if thpA.ScanPeriod != 10*time.Second {
		t.Fatal("default scan period wrong")
	}
}
