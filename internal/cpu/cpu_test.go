package cpu

import (
	"testing"
	"time"
)

func TestKNLTopology(t *testing.T) {
	k := KNL()
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if k.NumCores() != 68 {
		t.Fatalf("KNL cores = %d, want 68", k.NumCores())
	}
	if k.NumThreads() != 272 {
		t.Fatalf("KNL logical CPUs = %d, want 272", k.NumThreads())
	}
	if k.ISA != X86_64 {
		t.Fatalf("KNL ISA = %s", k.ISA)
	}
	if k.TLB.L2Entries != 64 {
		t.Fatalf("KNL L2 TLB = %d, want 64 (Table 1)", k.TLB.L2Entries)
	}
	if k.TLBIBroadcastPenalty != 0 {
		t.Fatal("x86 must not have broadcast TLBI")
	}
	if len(k.SysNUMADomains) != 0 {
		t.Fatal("OFP has no virtual NUMA split")
	}
}

func TestA64FXTopology(t *testing.T) {
	for _, assist := range []int{2, 4} {
		a := A64FX(assist)
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		wantCores := 48 + assist
		if a.NumCores() != wantCores {
			t.Fatalf("A64FX(%d) cores = %d, want %d", assist, a.NumCores(), wantCores)
		}
		if got := len(a.AppCores()); got != 48 {
			t.Fatalf("app cores = %d, want 48", got)
		}
		if got := len(a.AssistantCores()); got != assist {
			t.Fatalf("assistant cores = %d, want %d", got, assist)
		}
		if a.NumThreads() != wantCores { // no SMT (Table 1)
			t.Fatalf("threads = %d, want %d", a.NumThreads(), wantCores)
		}
		if a.TLB.L1Entries != 16 || a.TLB.L2Entries != 1024 {
			t.Fatalf("A64FX TLB = %d/%d, want 16/1024", a.TLB.L1Entries, a.TLB.L2Entries)
		}
		if a.TLBIBroadcastPenalty != 200*time.Nanosecond {
			t.Fatalf("TLBI penalty = %v, want 200ns", a.TLBIBroadcastPenalty)
		}
		if !a.HasSectorCache || !a.HasHWBarrier {
			t.Fatal("A64FX features missing")
		}
	}
}

func TestA64FXInvalidAssistantCountDefaults(t *testing.T) {
	a := A64FX(7)
	if got := len(a.AssistantCores()); got != 2 {
		t.Fatalf("invalid assistant count should default to 2, got %d", got)
	}
}

func TestA64FXCMGStructure(t *testing.T) {
	a := A64FX(2)
	for cmg := 0; cmg < 4; cmg++ {
		cores := a.CoresInNUMA(cmg)
		if len(cores) != 12 {
			t.Fatalf("CMG %d has %d cores, want 12 (Sec. 4.1.4)", cmg, len(cores))
		}
	}
	sys := a.CoresInNUMA(4)
	if len(sys) != 2 {
		t.Fatalf("system NUMA domain has %d cores, want 2", len(sys))
	}
}

func TestTopologyValidateCatchesErrors(t *testing.T) {
	bad := &Topology{Name: "empty", Frequency: 1e9}
	if bad.Validate() == nil {
		t.Fatal("empty topology must fail validation")
	}
	dup := &Topology{
		Name: "dup", Frequency: 1e9, NUMADomains: 1,
		Cores: []Core{
			{ID: 0, SMT: 1, ThreadIDs: []int{0}},
			{ID: 0, SMT: 1, ThreadIDs: []int{1}},
		},
	}
	if dup.Validate() == nil {
		t.Fatal("duplicate core IDs must fail validation")
	}
	badNUMA := &Topology{
		Name: "numa", Frequency: 1e9, NUMADomains: 1,
		Cores: []Core{{ID: 0, NUMA: 3, SMT: 1, ThreadIDs: []int{0}}},
	}
	if badNUMA.Validate() == nil {
		t.Fatal("out-of-range NUMA must fail validation")
	}
	badSMT := &Topology{
		Name: "smt", Frequency: 1e9, NUMADomains: 1,
		Cores: []Core{{ID: 0, SMT: 2, ThreadIDs: []int{0}}},
	}
	if badSMT.Validate() == nil {
		t.Fatal("thread list mismatch must fail validation")
	}
}

func TestCycles(t *testing.T) {
	a := A64FX(2) // 2 GHz
	if d := a.Cycles(2000); d != time.Microsecond {
		t.Fatalf("2000 cycles @2GHz = %v, want 1us", d)
	}
}

func TestTLBCoverageAdvantageOfA64FX(t *testing.T) {
	knl, a64 := KNL().TLB, A64FX(2).TLB
	page := int64(2 << 20) // 2 MB
	if a64.Coverage(page) <= knl.Coverage(page) {
		t.Fatal("A64FX must have larger TLB coverage than KNL (Sec. 3.2)")
	}
	// 1024 entries * 2MB = 2GB coverage.
	if got := a64.Coverage(page); got != 2<<30 {
		t.Fatalf("A64FX 2MB coverage = %d, want 2GiB", got)
	}
}

func TestMissRatioMonotonicity(t *testing.T) {
	cfg := A64FX(2).TLB
	page := int64(64 << 10)
	prev := -1.0
	for ws := int64(1 << 20); ws <= 64<<30; ws *= 4 {
		mr := cfg.MissRatio(ws, page)
		if mr < 0 || mr > 1 {
			t.Fatalf("miss ratio out of range: %v", mr)
		}
		if mr < prev {
			t.Fatalf("miss ratio not monotone in working set at %d: %v < %v", ws, mr, prev)
		}
		prev = mr
	}
}

func TestMissRatioZeroWithinCoverage(t *testing.T) {
	cfg := A64FX(2).TLB
	page := int64(2 << 20)
	if mr := cfg.MissRatio(1<<30, page); mr != 0 {
		t.Fatalf("working set within coverage must have 0 miss ratio, got %v", mr)
	}
}

func TestMissRatioLargerPagesHelp(t *testing.T) {
	cfg := KNL().TLB
	ws := int64(16 << 30)
	small := cfg.MissRatio(ws, 4<<10)
	large := cfg.MissRatio(ws, 2<<20)
	if large >= small {
		t.Fatalf("larger pages must reduce miss ratio: 4K=%v 2M=%v", small, large)
	}
}

func TestTranslationOverhead(t *testing.T) {
	cfg := KNL().TLB
	oh := cfg.TranslationOverhead(16<<30, 4<<10, 100*time.Nanosecond)
	if oh <= 0 {
		t.Fatal("big working set with small pages must have positive overhead")
	}
	if cfg.TranslationOverhead(16<<30, 4<<10, 0) != 0 {
		t.Fatal("zero access period must yield zero overhead")
	}
}

func TestTLBStateMachine(t *testing.T) {
	tlb := NewTLB(A64FX(2).TLB)
	tlb.Fill(2000)
	if tlb.Resident() != 1024 {
		t.Fatalf("fill must saturate at capacity: %d", tlb.Resident())
	}
	tlb.FlushLocal()
	if tlb.Resident() != 0 || tlb.LocalFlushes != 1 {
		t.Fatal("local flush bookkeeping wrong")
	}
	tlb.Fill(10)
	tlb.ReceiveRemoteFlush(200 * time.Nanosecond)
	if tlb.Resident() != 0 || tlb.ReceivedFlushes != 1 || tlb.StallFromRemotes != 200*time.Nanosecond {
		t.Fatal("remote flush bookkeeping wrong")
	}
}

func TestShootdownCosts(t *testing.T) {
	a64 := A64FX(2)
	_, remBroadcast := ShootdownCost(a64, ShootdownBroadcast)
	if remBroadcast != 200*time.Nanosecond {
		t.Fatalf("broadcast per-remote = %v", remBroadcast)
	}
	initIPI, remIPI := ShootdownCost(a64, ShootdownIPI)
	if remIPI <= remBroadcast {
		t.Fatal("software IPI shootdown must be slower per remote than HW broadcast (Sec. 4.2.2)")
	}
	if initIPI <= 0 {
		t.Fatal("IPI initiator cost must be positive")
	}
	_, remLocal := ShootdownCost(a64, ShootdownLocalOnly)
	if remLocal != 0 {
		t.Fatal("local-only must not stall remote cores")
	}
	// x86 broadcast degenerates to IPI.
	knl := KNL()
	ib, rb := ShootdownCost(knl, ShootdownBroadcast)
	ii, ri := ShootdownCost(knl, ShootdownIPI)
	if ib != ii || rb != ri {
		t.Fatal("x86 broadcast must equal IPI method")
	}
}

func TestShootdownMethodString(t *testing.T) {
	for m, want := range map[ShootdownMethod]string{
		ShootdownBroadcast: "broadcast-tlbi",
		ShootdownIPI:       "ipi",
		ShootdownLocalOnly: "local-only",
		ShootdownMethod(9): "unknown",
	} {
		if m.String() != want {
			t.Fatalf("String(%d) = %s", m, m.String())
		}
	}
}

func TestPMUAccounting(t *testing.T) {
	var p PMU
	p.AccountUser(time.Millisecond, 1000)
	p.AccountKernel(time.Microsecond, 50)
	s := p.Read(false)
	if s.InstrUser != 1000 || s.InstrKernel != 50 {
		t.Fatalf("instr counts wrong: %+v", s)
	}
	if s.TimeUser != time.Millisecond || s.TimeKernel != time.Microsecond {
		t.Fatalf("time split wrong: %+v", s)
	}
	if p.ReadsViaIPI != 0 {
		t.Fatal("local read must not count as IPI")
	}
	p.Read(true)
	if p.ReadsViaIPI != 1 {
		t.Fatal("remote read must count as IPI")
	}
}

func TestClassify(t *testing.T) {
	before := Snapshot{InstrKernel: 100}
	osCase := Snapshot{InstrKernel: 200}
	if got := Classify(before, osCase, time.Microsecond); got != "os-processing" {
		t.Fatalf("Classify = %s", got)
	}
	hwCase := Snapshot{InstrKernel: 100}
	if got := Classify(before, hwCase, time.Microsecond); got != "hw-contention" {
		t.Fatalf("Classify = %s", got)
	}
	if got := Classify(before, hwCase, 0); got != "none" {
		t.Fatalf("Classify = %s", got)
	}
}

func TestSectorCache(t *testing.T) {
	sc := NewSectorCache(16)
	if sc.Enabled() {
		t.Fatal("fresh sector cache must be disabled")
	}
	if sc.AppInterferenceFactor(true) <= 1 {
		t.Fatal("unpartitioned cache must show OS interference")
	}
	if sc.AppInterferenceFactor(false) != 1 {
		t.Fatal("idle OS must not interfere")
	}
	if err := sc.Partition(2); err != nil {
		t.Fatal(err)
	}
	if !sc.Enabled() {
		t.Fatal("Partition must enable")
	}
	if sc.AppInterferenceFactor(true) != 1 {
		t.Fatal("partitioned cache must isolate the application")
	}
	if err := sc.Partition(0); err == nil {
		t.Fatal("0 system ways must be rejected")
	}
	if err := sc.Partition(16); err == nil {
		t.Fatal("all-system split must be rejected")
	}
}

func TestHWBarrier(t *testing.T) {
	hw := HWBarrier{Available: true}
	sw := HWBarrier{Available: false}
	if hw.Latency(1) != 0 || sw.Latency(1) != 0 {
		t.Fatal("single participant barrier must be free")
	}
	if hw.Latency(48) >= sw.Latency(48) {
		t.Fatal("hardware barrier must beat software barrier (Sec. 4.1.5)")
	}
	if sw.Latency(48) <= sw.Latency(2) {
		t.Fatal("software barrier must grow with participants")
	}
	if hw.Latency(48) != hw.Latency(12) {
		t.Fatal("hardware barrier must be flat in participants")
	}
}
