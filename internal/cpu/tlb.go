package cpu

import (
	"math"
	"time"
)

// TLBConfig describes a processor's translation caches.
type TLBConfig struct {
	L1Entries int
	L2Entries int
	// ContiguousBit reports support for the ARM64 page-table contiguous bit,
	// which lets one TLB entry cover 32 physically contiguous pages
	// (Sec. 4.1.3).
	ContiguousBit bool
	// PageWalk is the cost of one hardware page-table walk on a last-level
	// TLB miss.
	PageWalk time.Duration
}

// Coverage returns the bytes of virtual address space the last-level TLB can
// map with the given effective page size.
func (c TLBConfig) Coverage(pageSize int64) int64 {
	return int64(c.L2Entries) * pageSize
}

// MissRatio estimates the steady-state last-level TLB misses per memory
// access for a workload with workingSet bytes and the given effective page
// size. When the working set fits in TLB coverage the miss ratio is 0.
// Beyond coverage, two effects compose: the probability that an access falls
// outside the cached translations (softened by a square root because real
// solvers do not touch pages uniformly at random), and spatial locality —
// consecutive accesses land on the same page, so misses per access shrink
// proportionally with page size. The locality term is normalized to a 4 KiB
// reference page, which is what gives large pages their benefit (Sec. 4.1.3).
func (c TLBConfig) MissRatio(workingSet, pageSize int64) float64 {
	if workingSet <= 0 || pageSize <= 0 {
		return 0
	}
	cov := c.Coverage(pageSize)
	if cov <= 0 {
		return 1
	}
	if workingSet <= cov {
		return 0
	}
	uncovered := 1 - float64(cov)/float64(workingSet)
	const refPage = 4096
	mr := math.Sqrt(uncovered) * refPage / float64(pageSize)
	return math.Min(mr, 1)
}

// TranslationOverhead estimates the fractional slowdown of a memory-bound
// phase due to TLB misses: missRatio × walkCost / accessCost, where
// accessPeriod is the average interval between distinct-page accesses.
func (c TLBConfig) TranslationOverhead(workingSet, pageSize int64, accessPeriod time.Duration) float64 {
	if accessPeriod <= 0 {
		return 0
	}
	mr := c.MissRatio(workingSet, pageSize)
	return mr * float64(c.PageWalk) / float64(accessPeriod)
}

// TLB is the per-core dynamic TLB state used by the kernel models to account
// invalidation traffic. Entry bookkeeping is statistical (entry counts, not a
// full content-addressable simulation): what the experiments need is the
// cost and reach of flushes, not per-address hit tracking.
type TLB struct {
	Config  TLBConfig
	resided int // live entries (saturating at L2Entries)

	LocalFlushes     uint64 // flushes affecting only this core
	ReceivedFlushes  uint64 // broadcast or IPI flushes from other cores
	StallFromRemotes time.Duration
}

// NewTLB returns a TLB with the given configuration.
func NewTLB(cfg TLBConfig) *TLB {
	return &TLB{Config: cfg}
}

// Resident returns the number of live entries.
func (t *TLB) Resident() int { return t.resided }

// Fill records n translations being cached.
func (t *TLB) Fill(n int) {
	t.resided += n
	if t.resided > t.Config.L2Entries {
		t.resided = t.Config.L2Entries
	}
}

// FlushLocal invalidates this core's entries only.
func (t *TLB) FlushLocal() {
	t.resided = 0
	t.LocalFlushes++
}

// ReceiveRemoteFlush records a flush initiated by another core reaching this
// one (broadcast TLBI or shootdown IPI) and the stall it caused.
func (t *TLB) ReceiveRemoteFlush(stall time.Duration) {
	t.resided = 0
	t.ReceivedFlushes++
	t.StallFromRemotes += stall
}

// ShootdownMethod selects how the OS invalidates remote TLB entries.
type ShootdownMethod int

const (
	// ShootdownBroadcast uses the ARM64 inner-sharable TLBI instruction: one
	// instruction invalidates on every core, stalling each ~200 ns on A64FX.
	ShootdownBroadcast ShootdownMethod = iota
	// ShootdownIPI sends explicit IPIs to target cores and flushes locally on
	// each (the x86_64/SPARC64 approach, and the all-software ARM64 option
	// the paper notes is significantly slower than the hardware broadcast).
	ShootdownIPI
	// ShootdownLocalOnly flushes only the initiating core. Valid when every
	// thread of the process runs on that single core — the RHEL 8.2 patch the
	// paper upstreamed applies exactly this optimization (Sec. 4.2.2).
	ShootdownLocalOnly
)

func (m ShootdownMethod) String() string {
	switch m {
	case ShootdownBroadcast:
		return "broadcast-tlbi"
	case ShootdownIPI:
		return "ipi"
	case ShootdownLocalOnly:
		return "local-only"
	default:
		return "unknown"
	}
}

// ShootdownCost returns the initiating core's cost and the per-remote-core
// stall of one TLB invalidation using method m on topology t.
func ShootdownCost(t *Topology, m ShootdownMethod) (initiator time.Duration, perRemote time.Duration) {
	const localFlush = 20 * time.Nanosecond
	switch m {
	case ShootdownBroadcast:
		if t.TLBIBroadcastPenalty == 0 {
			// ISA without broadcast invalidation degenerates to IPI.
			return ShootdownCost(t, ShootdownIPI)
		}
		return localFlush, t.TLBIBroadcastPenalty
	case ShootdownIPI:
		// Initiator pays one IPI round per remote core batch; each remote
		// pays interrupt entry + local flush. Software multi-core shootdown
		// is much slower than the A64FX hardware broadcast (Sec. 4.2.2).
		return t.IPILatency, t.IPILatency + localFlush
	case ShootdownLocalOnly:
		return localFlush, 0
	default:
		return localFlush, 0
	}
}
