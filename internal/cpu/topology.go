// Package cpu models the processor hardware attributes the study depends on:
// core/SMT/NUMA topology, translation lookaside buffers (including the ARM64
// contiguous bit and broadcast TLBI behaviour), inter-processor interrupts,
// performance-monitoring counters, the A64FX sector cache and the A64FX
// hardware barrier.
//
// Two presets correspond to the paper's platforms: the Intel Xeon Phi 7250
// (Knights Landing) of Oakforest-PACS and the Fujitsu A64FX of Fugaku
// (Table 1 of the paper).
package cpu

import (
	"fmt"
	"time"
)

// ISA identifies the instruction set architecture of a processor model.
type ISA string

// Supported ISAs.
const (
	X86_64  ISA = "x86_64"
	AArch64 ISA = "aarch64"
)

// CoreKind distinguishes application cores from system (assistant) cores.
type CoreKind int

// Core kinds. On A64FX the "assistant cores" are physically identical but
// reserved for OS activity; on KNL the distinction is purely administrative.
const (
	AppCore CoreKind = iota
	AssistantCore
)

func (k CoreKind) String() string {
	if k == AssistantCore {
		return "assistant"
	}
	return "app"
}

// Core describes a single physical core.
type Core struct {
	ID        int
	NUMA      int // NUMA domain (CMG on A64FX, quadrant/MCDRAM domain on KNL)
	Kind      CoreKind
	SMT       int   // number of hardware threads on this core
	ThreadIDs []int // logical CPU numbers of the threads
}

// Topology describes a processor socket as the OS models see it.
type Topology struct {
	Name           string
	ISA            ISA
	Cores          []Core
	NUMADomains    int
	AppNUMADomains []int // NUMA domains backing application memory
	SysNUMADomains []int // NUMA domains reserved for the system (virtual NUMA)

	// Frequency is the nominal clock used to convert cycles to time.
	Frequency float64 // Hz

	TLB TLBConfig

	// HasSectorCache reports availability of the A64FX cache partitioning
	// feature; HasHWBarrier the A64FX hardware barrier.
	HasSectorCache bool
	HasHWBarrier   bool

	// TLBIBroadcastPenalty is the stall suffered by *every other* core when
	// one core executes a broadcast TLB invalidation (inner-sharable TLBI).
	// The paper measured ~200 ns on A64FX (Sec. 4.2.2). Zero means the ISA
	// has no broadcast invalidation (x86 uses IPIs instead).
	TLBIBroadcastPenalty time.Duration

	// IPILatency is the end-to-end cost of delivering one inter-processor
	// interrupt and running a minimal handler.
	IPILatency time.Duration
}

// NumCores returns the number of physical cores.
func (t *Topology) NumCores() int { return len(t.Cores) }

// NumThreads returns the number of logical CPUs.
func (t *Topology) NumThreads() int {
	n := 0
	for i := range t.Cores {
		n += t.Cores[i].SMT
	}
	return n
}

// AppCores returns the IDs of application cores.
func (t *Topology) AppCores() []int {
	return t.coresOfKind(AppCore)
}

// AssistantCores returns the IDs of system/assistant cores.
func (t *Topology) AssistantCores() []int {
	return t.coresOfKind(AssistantCore)
}

func (t *Topology) coresOfKind(k CoreKind) []int {
	var ids []int
	for i := range t.Cores {
		if t.Cores[i].Kind == k {
			ids = append(ids, t.Cores[i].ID)
		}
	}
	return ids
}

// AppThreads returns the number of hardware threads on application cores.
func (t *Topology) AppThreads() int {
	n := 0
	for i := range t.Cores {
		if t.Cores[i].Kind == AppCore {
			n += t.Cores[i].SMT
		}
	}
	return n
}

// CoresInNUMA returns the core IDs belonging to NUMA domain d.
func (t *Topology) CoresInNUMA(d int) []int {
	var ids []int
	for i := range t.Cores {
		if t.Cores[i].NUMA == d {
			ids = append(ids, t.Cores[i].ID)
		}
	}
	return ids
}

// Validate checks internal consistency of the topology.
func (t *Topology) Validate() error {
	if len(t.Cores) == 0 {
		return fmt.Errorf("cpu: topology %q has no cores", t.Name)
	}
	if t.Frequency <= 0 {
		return fmt.Errorf("cpu: topology %q has non-positive frequency", t.Name)
	}
	seen := make(map[int]bool, len(t.Cores))
	for i := range t.Cores {
		c := &t.Cores[i]
		if seen[c.ID] {
			return fmt.Errorf("cpu: duplicate core id %d", c.ID)
		}
		seen[c.ID] = true
		if c.NUMA < 0 || c.NUMA >= t.NUMADomains {
			return fmt.Errorf("cpu: core %d in invalid NUMA domain %d", c.ID, c.NUMA)
		}
		if c.SMT < 1 {
			return fmt.Errorf("cpu: core %d has SMT %d", c.ID, c.SMT)
		}
		if len(c.ThreadIDs) != c.SMT {
			return fmt.Errorf("cpu: core %d thread list length %d != SMT %d", c.ID, len(c.ThreadIDs), c.SMT)
		}
	}
	return nil
}

// Cycles converts a cycle count to time at the nominal frequency.
func (t *Topology) Cycles(n float64) time.Duration {
	return time.Duration(n / t.Frequency * 1e9)
}

// KNL returns the Oakforest-PACS node processor: Intel Xeon Phi 7250,
// 68 cores with 4-way SMT (272 logical CPUs), 4 NUMA-visible domains in
// Quadrant-flat mode (DDR4 plus MCDRAM exposed separately; we model the two
// memory pools as domains 0..1 for DDR and 2..3 for MCDRAM-backed app use).
// There is no strict core partition on OFP: a designated group of logical
// CPUs is merely *recommended* for applications (Sec. 3.1); we mark the first
// core as the de-facto system core used by the recommendation.
func KNL() *Topology {
	t := &Topology{
		Name:        "Intel Xeon Phi 7250 (KNL)",
		ISA:         X86_64,
		NUMADomains: 2,
		// OFP has no virtual-NUMA split: system and applications share.
		AppNUMADomains: []int{0, 1},
		SysNUMADomains: nil,
		Frequency:      1.4e9,
		TLB: TLBConfig{
			L1Entries:     64,
			L2Entries:     64, // "L1: 64, L2: 64" last-level entries (Table 1)
			ContiguousBit: false,
			PageWalk:      140 * time.Nanosecond, // slow KNL page walker
		},
		HasSectorCache:       false,
		HasHWBarrier:         false,
		TLBIBroadcastPenalty: 0, // x86: shootdown via IPI
		IPILatency:           4 * time.Microsecond,
	}
	logical := 0
	for c := 0; c < 68; c++ {
		core := Core{ID: c, NUMA: c % 2, Kind: AppCore, SMT: 4}
		if c < 4 {
			// First tile: where OFP convention steers system activity.
			core.Kind = AssistantCore
		}
		for s := 0; s < 4; s++ {
			core.ThreadIDs = append(core.ThreadIDs, logical)
			logical++
		}
		t.Cores = append(t.Cores, core)
	}
	return t
}

// A64FX returns the Fugaku node processor: 48 application cores in four CMGs
// (Core Memory Groups, the NUMA domains) plus assistant cores dedicated to
// the OS. Most Fugaku nodes have 50 cores (2 assistant); some have 52
// (4 assistant) — Sec. 3.2. TLB: 16 L1 entries, 1,024 L2 entries (Table 1).
func A64FX(assistantCores int) *Topology {
	if assistantCores != 2 && assistantCores != 4 {
		assistantCores = 2
	}
	t := &Topology{
		Name:        "Fujitsu A64FX",
		ISA:         AArch64,
		NUMADomains: 5, // 4 CMGs + 1 virtual system NUMA node
		// Virtual NUMA nodes (Sec. 4.1.2): app memory in domains 0-3,
		// system memory in domain 4.
		AppNUMADomains: []int{0, 1, 2, 3},
		SysNUMADomains: []int{4},
		Frequency:      2.0e9,
		TLB: TLBConfig{
			L1Entries:     16,
			L2Entries:     1024,
			ContiguousBit: true,
			PageWalk:      90 * time.Nanosecond,
		},
		HasSectorCache:       true,
		HasHWBarrier:         true,
		TLBIBroadcastPenalty: 200 * time.Nanosecond, // measured delay per TLBI (Sec. 4.2.2)
		IPILatency:           2 * time.Microsecond,
	}
	id := 0
	for cmg := 0; cmg < 4; cmg++ {
		for c := 0; c < 12; c++ {
			t.Cores = append(t.Cores, Core{
				ID: id, NUMA: cmg, Kind: AppCore, SMT: 1, ThreadIDs: []int{id},
			})
			id++
		}
	}
	for a := 0; a < assistantCores; a++ {
		t.Cores = append(t.Cores, Core{
			ID: id, NUMA: 4, Kind: AssistantCore, SMT: 1, ThreadIDs: []int{id},
		})
		id++
	}
	return t
}
