package cpu

import "errors"

// MemorySystem models a node's shared memory bandwidth — the hardware
// resource no OS partitioning scheme can slice (Sec. 4.2.2 lists "memory
// bandwidth to the main memory and/or to the last level cache are shared by
// multiple CPU cores" among the interference channels that remain even
// under perfect software isolation).
type MemorySystem struct {
	Name string
	// BytesPerSec is the node-level sustainable bandwidth.
	BytesPerSec float64
}

// A64FXMemory returns Fugaku's HBM2 system (~1 TB/s per node).
func A64FXMemory() MemorySystem {
	return MemorySystem{Name: "HBM2", BytesPerSec: 1024e9}
}

// KNLMemory returns OFP's MCDRAM+DDR4 system in flat mode (~490 GB/s
// aggregate: ~400 MCDRAM + ~90 DDR4).
func KNLMemory() MemorySystem {
	return MemorySystem{Name: "MCDRAM+DDR4", BytesPerSec: 490e9}
}

// ErrNoDemand reports an empty contention query.
var ErrNoDemand = errors.New("cpu: no bandwidth demands")

// Contend shares the memory system proportionally among concurrent demands
// (bytes/sec each) and returns the per-demand slowdown factor (>= 1). Below
// saturation nobody slows down; above it, everyone is scaled back
// proportionally — the standard bandwidth-partitioning approximation.
func (m MemorySystem) Contend(demands []float64) ([]float64, error) {
	if len(demands) == 0 {
		return nil, ErrNoDemand
	}
	var total float64
	for _, d := range demands {
		if d < 0 {
			d = 0
		}
		total += d
	}
	out := make([]float64, len(demands))
	if total <= m.BytesPerSec {
		for i := range out {
			out[i] = 1
		}
		return out, nil
	}
	// Each demand is granted its proportional share; runtime inflates by
	// demand/grant = total/capacity uniformly.
	factor := total / m.BytesPerSec
	for i := range out {
		out[i] = factor
	}
	return out, nil
}

// SlowdownWith returns the slowdown of a primary demand co-running with a
// secondary demand.
func (m MemorySystem) SlowdownWith(primary, secondary float64) float64 {
	fs, err := m.Contend([]float64{primary, secondary})
	if err != nil {
		return 1
	}
	return fs[0]
}
