package cpu

import (
	"fmt"
	"time"
)

// PMU models a core's performance monitoring unit: the counters the Fujitsu
// TCS middleware collects (Sec. 4.2.1) plus user/kernel instruction and time
// split used for noise attribution (Sec. 4.2.2).
type PMU struct {
	Cycles      uint64
	InstrUser   uint64
	InstrKernel uint64
	FPOps       uint64
	MemReads    uint64
	MemWrites   uint64
	SleepCycles uint64
	TimeUser    time.Duration
	TimeKernel  time.Duration
	ReadsViaIPI uint64 // times this PMU was sampled through a cross-core IPI
}

// Snapshot is a copy of the counter values at a point in time.
type Snapshot struct {
	Cycles, InstrUser, InstrKernel, FPOps uint64
	TimeUser, TimeKernel                  time.Duration
}

// Read returns a snapshot. remote indicates the read was initiated from
// another core, which on the modelled systems requires an IPI into this core
// (the interference TCS caused until the per-job stop command existed).
func (p *PMU) Read(remote bool) Snapshot {
	if remote {
		p.ReadsViaIPI++
	}
	return Snapshot{
		Cycles: p.Cycles, InstrUser: p.InstrUser, InstrKernel: p.InstrKernel,
		FPOps: p.FPOps, TimeUser: p.TimeUser, TimeKernel: p.TimeKernel,
	}
}

// AccountUser charges user-mode execution to the counters.
func (p *PMU) AccountUser(d time.Duration, instr uint64) {
	p.TimeUser += d
	p.InstrUser += instr
	p.Cycles += instr // 1 IPC nominal; precise IPC is irrelevant to the study
}

// AccountKernel charges kernel-mode execution to the counters.
func (p *PMU) AccountKernel(d time.Duration, instr uint64) {
	p.TimeKernel += d
	p.InstrKernel += instr
	p.Cycles += instr
}

// Classify attributes an observed execution-time increase between two
// snapshots, following the methodology of Sec. 4.2.2: more kernel
// instructions means OS processing; unchanged instruction counts with longer
// time means hardware sharing/contention.
func Classify(before, after Snapshot, wallIncrease time.Duration) string {
	switch {
	case after.InstrKernel > before.InstrKernel:
		return "os-processing"
	case wallIncrease > 0:
		return "hw-contention"
	default:
		return "none"
	}
}

// SectorCache models the A64FX cache-way partitioning feature (Sec. 4.2):
// cache blocks are split into a system segment and an application segment so
// OS activity on assistant cores cannot evict application data.
type SectorCache struct {
	TotalWays int
	SysWays   int
	enabled   bool
}

// NewSectorCache returns a sector cache over totalWays L2 ways.
func NewSectorCache(totalWays int) *SectorCache {
	return &SectorCache{TotalWays: totalWays}
}

// Partition assigns sysWays ways to the system segment and enables the
// feature. It returns an error if the split is invalid.
func (s *SectorCache) Partition(sysWays int) error {
	if sysWays < 1 || sysWays >= s.TotalWays {
		return fmt.Errorf("cpu: invalid sector-cache split %d/%d", sysWays, s.TotalWays)
	}
	s.SysWays = sysWays
	s.enabled = true
	return nil
}

// Enabled reports whether partitioning is active.
func (s *SectorCache) Enabled() bool { return s.enabled }

// AppInterferenceFactor returns the multiplicative slowdown application
// memory phases suffer from concurrent OS cache pollution. With partitioning
// enabled the OS cannot touch application ways and the factor is 1.
func (s *SectorCache) AppInterferenceFactor(osActive bool) float64 {
	if !osActive {
		return 1
	}
	if s.enabled {
		return 1
	}
	// Unpartitioned: OS streaming through the LLC costs the application a
	// small but persistent fraction of its hit rate.
	return 1.02
}

// HWBarrier models the A64FX intra-node hardware barrier (Sec. 4.1.5), which
// synchronizes threads/processes within a node far faster than memory-based
// barriers.
type HWBarrier struct {
	Available bool
}

// Latency returns the completion time of an intra-node barrier across n
// participants. The hardware barrier is nearly flat in n; the software
// fallback grows logarithmically with a much larger constant.
func (b HWBarrier) Latency(n int) time.Duration {
	if n <= 1 {
		return 0
	}
	if b.Available {
		return 200 * time.Nanosecond
	}
	lg := 0
	for v := n - 1; v > 0; v >>= 1 {
		lg++
	}
	return time.Duration(lg) * 500 * time.Nanosecond
}
