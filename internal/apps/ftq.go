package apps

import (
	"errors"
	"sort"
	"time"

	"mkos/internal/noise"
	"mkos/internal/sim"
)

// FTQConfig configures a Fixed Time Quanta run — the companion benchmark to
// FWQ in the LLNL FTQ/FWQ suite the paper references [32]. Where FWQ fixes
// the work and measures elapsed time, FTQ fixes the time quantum and counts
// the work units completed inside it; noise appears as quanta with fewer
// completed units.
type FTQConfig struct {
	// Quantum is the fixed sampling interval.
	Quantum time.Duration
	// UnitWork is the duration of one work unit (one loop iteration).
	UnitWork time.Duration
	// Duration is the total run length.
	Duration time.Duration
	// Cores to measure.
	Cores []int
}

// DefaultFTQ mirrors the FWQ configuration: ~6.5 ms quanta with fine-grained
// work units.
func DefaultFTQ(cores []int) FTQConfig {
	return FTQConfig{
		Quantum:  6500 * time.Microsecond,
		UnitWork: time.Microsecond,
		Duration: time.Minute,
		Cores:    cores,
	}
}

// ErrBadFTQConfig reports an unusable configuration.
var ErrBadFTQConfig = errors.New("apps: invalid FTQ configuration")

// FTQRun holds per-core work counts per quantum.
type FTQRun struct {
	Config  FTQConfig
	PerCore map[int][]int64
}

// RunFTQ executes the benchmark against a node's interruption timeline.
func RunFTQ(cfg FTQConfig, tl *noise.Timeline) (*FTQRun, error) {
	if cfg.Quantum <= 0 || cfg.UnitWork <= 0 || cfg.Duration <= 0 || len(cfg.Cores) == 0 {
		return nil, ErrBadFTQConfig
	}
	if cfg.UnitWork > cfg.Quantum {
		return nil, ErrBadFTQConfig
	}
	run := &FTQRun{Config: cfg, PerCore: make(map[int][]int64, len(cfg.Cores))}
	quanta := int(cfg.Duration / cfg.Quantum)
	for _, core := range cfg.Cores {
		counts := make([]int64, 0, quanta)
		t := sim.Time(0)
		for q := 0; q < quanta; q++ {
			qEnd := t.Add(cfg.Quantum)
			// Work units complete while the clock is inside the quantum and
			// the core is not stolen. Count how many UnitWork slots fit.
			var done int64
			cur := t
			for cur < qEnd {
				end := tl.Advance(core, cur, cfg.UnitWork)
				if end > qEnd {
					break // unit straddles the quantum boundary: not counted
				}
				done++
				cur = end
			}
			counts = append(counts, done)
			t = qEnd
		}
		run.PerCore[core] = counts
	}
	return run, nil
}

// FTQAnalysis carries the benchmark's noise metrics.
type FTQAnalysis struct {
	N        int
	MaxCount int64 // best quantum (noise-free work capacity)
	MinCount int64 // worst quantum
	// MaxLoss is the largest per-quantum work deficit expressed as time
	// (comparable to FWQ's max noise length).
	MaxLoss time.Duration
	// LossRate is the aggregate fraction of work capacity lost to noise
	// (comparable to FWQ's Eq. 2 rate).
	LossRate float64
}

// Analyze reduces a run to its noise metrics.
func (r *FTQRun) Analyze() (FTQAnalysis, error) {
	// Fold cores in sorted order so `all` has a deterministic layout;
	// today's statistics are order-free integer folds, but an
	// order-dependent intermediate is exactly the latent bug the
	// maporder analyzer exists to keep out.
	cores := make([]int, 0, len(r.PerCore))
	for core := range r.PerCore {
		cores = append(cores, core)
	}
	sort.Ints(cores)
	var all []int64
	for _, core := range cores {
		all = append(all, r.PerCore[core]...)
	}
	if len(all) == 0 {
		return FTQAnalysis{}, ErrBadFTQConfig
	}
	a := FTQAnalysis{N: len(all), MaxCount: all[0], MinCount: all[0]}
	var total, deficit int64
	for _, c := range all {
		if c > a.MaxCount {
			a.MaxCount = c
		}
		if c < a.MinCount {
			a.MinCount = c
		}
	}
	for _, c := range all {
		total += a.MaxCount
		deficit += a.MaxCount - c
	}
	a.MaxLoss = time.Duration(a.MaxCount-a.MinCount) * r.Config.UnitWork
	if total > 0 {
		a.LossRate = float64(deficit) / float64(total)
	}
	return a, nil
}
