package apps

import (
	"fmt"
	"time"

	"mkos/internal/bsp"
)

// PlatformName selects per-platform workload variants. The paper's LQCD and
// GAMERA have separately optimized code bases per platform; GeoFEM has minor
// tweaks; the CORAL apps exist only in x86-optimized form and therefore run
// only on OFP (Sec. 6.2).
type PlatformName string

// Platforms.
const (
	OnOFP    PlatformName = "oakforest-pacs"
	OnFugaku PlatformName = "fugaku"
)

// Geometries from the paper's Artifact Description appendix: on OFP, LQCD
// ran 4 ranks x 32 threads, GeoFEM 16 x 8, GAMERA 8 x 8; on Fugaku every
// application ran 4 ranks x 12 threads (one rank per CMG).
var (
	geomOFPCoral  = bsp.Geometry{RanksPerNode: 16, ThreadsPerRank: 16}
	geomOFPLQCD   = bsp.Geometry{RanksPerNode: 4, ThreadsPerRank: 32}
	geomOFPGeoFEM = bsp.Geometry{RanksPerNode: 16, ThreadsPerRank: 8}
	geomOFPGamera = bsp.Geometry{RanksPerNode: 8, ThreadsPerRank: 8}
	geomFugaku    = bsp.Geometry{RanksPerNode: 4, ThreadsPerRank: 12}
)

// App bundles a workload with its platform geometry and sweep limits.
type App struct {
	Workload bsp.Workload
	Geometry bsp.Geometry
	// MaxNodes is the largest node count the paper plots for this app on
	// this platform.
	MaxNodes int
}

// ErrUnknownApp reports an unsupported (app, platform) combination.
type ErrUnknownApp struct {
	Name     string
	Platform PlatformName
}

func (e ErrUnknownApp) Error() string {
	return fmt.Sprintf("apps: %s is not available on %s", e.Name, e.Platform)
}

// AMG2013 is the parallel algebraic multigrid solver from the CORAL suite
// (x86-only build, Sec. 6.2). Multigrid cycles include setup-phase
// allocations every step and frequent small reductions.
func AMG2013(p PlatformName) (App, error) {
	if p != OnOFP {
		return App{}, ErrUnknownApp{"AMG2013", p}
	}
	return App{
		Workload: bsp.Workload{
			Name: "AMG2013", Scaling: bsp.StrongScaling, RefNodes: 8192,
			Steps: 60, StepCompute: 20 * time.Millisecond,
			WorkingSetPerRank: 512 << 20, MemAccessPeriod: 150 * time.Nanosecond,
			HeapChurnPerStep: 8 << 20, HeapCallsPerStep: 16,
			AllreduceBytes: 8, HaloBytes: 128 << 10, HaloFaces: 6,
			InitCompute: 200 * time.Millisecond,
		},
		Geometry: geomOFPCoral, MaxNodes: 8192,
	}, nil
}

// MILC is the MIMD Lattice Computation QCD code from the CORAL suite
// (x86-only build).
func MILC(p PlatformName) (App, error) {
	if p != OnOFP {
		return App{}, ErrUnknownApp{"Milc", p}
	}
	return App{
		Workload: bsp.Workload{
			Name: "Milc", Scaling: bsp.StrongScaling, RefNodes: 8192,
			Steps: 80, StepCompute: 15 * time.Millisecond,
			WorkingSetPerRank: 256 << 20, MemAccessPeriod: 120 * time.Nanosecond,
			HeapChurnPerStep: 2 << 20, HeapCallsPerStep: 10,
			AllreduceBytes: 64, HaloBytes: 256 << 10, HaloFaces: 8,
			InitCompute: 150 * time.Millisecond,
		},
		Geometry: geomOFPCoral, MaxNodes: 8192,
	}, nil
}

// LULESH is the Livermore shock-hydrodynamics proxy (x86-only build). Its
// per-step temporary-array allocate/free cycle is the pathological case for
// Linux heap management the paper highlights: the call count stays constant
// under strong scaling while compute shrinks, so the glibc-trim/refault/
// shootdown tax dominates at scale (≈2X on 8k OFP nodes, Sec. 6.4).
func LULESH(p PlatformName) (App, error) {
	if p != OnOFP {
		return App{}, ErrUnknownApp{"Lulesh", p}
	}
	return App{
		Workload: bsp.Workload{
			Name: "Lulesh", Scaling: bsp.StrongScaling, RefNodes: 8192,
			Steps: 100, StepCompute: 5 * time.Millisecond,
			WorkingSetPerRank: 128 << 20, MemAccessPeriod: 140 * time.Nanosecond,
			HeapChurnPerStep: 64 << 20, HeapCallsPerStep: 85,
			AllreduceBytes: 8, HaloBytes: 96 << 10, HaloFaces: 6,
			InitCompute: 100 * time.Millisecond,
		},
		Geometry: geomOFPCoral, MaxNodes: 8192,
	}, nil
}

// LQCD is the CCS QCD linear-solver benchmark (BiCGStab on the Wilson-Dirac
// operator). Separately optimized versions exist for both platforms; the
// solver works in place with almost no heap churn, which is why tuned
// Fugaku Linux matches McKernel on it (Figure 7a).
func LQCD(p PlatformName) (App, error) {
	switch p {
	case OnOFP:
		return App{
			Workload: bsp.Workload{
				Name: "LQCD", Scaling: bsp.StrongScaling, RefNodes: 2048,
				Steps: 120, StepCompute: 11 * time.Millisecond,
				WorkingSetPerRank: 1 << 30, MemAccessPeriod: 110 * time.Nanosecond,
				HeapChurnPerStep: 0, HeapCallsPerStep: 2,
				AllreduceBytes: 16, HaloBytes: 512 << 10, HaloFaces: 8,
				InitCompute: 300 * time.Millisecond,
			},
			Geometry: geomOFPLQCD, MaxNodes: 2048,
		}, nil
	case OnFugaku:
		return App{
			Workload: bsp.Workload{
				Name: "LQCD", Scaling: bsp.StrongScaling, RefNodes: 8192,
				Steps: 120, StepCompute: 8 * time.Millisecond,
				WorkingSetPerRank: 512 << 20, MemAccessPeriod: 90 * time.Nanosecond,
				HeapChurnPerStep: 0, HeapCallsPerStep: 2,
				AllreduceBytes: 16, HaloBytes: 512 << 10, HaloFaces: 8,
				InitCompute: 300 * time.Millisecond,
			},
			Geometry: geomFugaku, MaxNodes: 8192,
		}, nil
	}
	return App{}, ErrUnknownApp{"LQCD", p}
}

// GeoFEM is the 3-D linear-elasticity ICCG solver. Preconditioner setup
// allocates work vectors every step; run-to-run variance reflects the
// placement sensitivity the paper observed even under McKernel.
func GeoFEM(p PlatformName) (App, error) {
	switch p {
	case OnOFP:
		return App{
			Workload: bsp.Workload{
				Name: "GeoFEM", Scaling: bsp.StrongScaling, RefNodes: 8192,
				Steps: 40, StepCompute: 90 * time.Millisecond,
				WorkingSetPerRank: 512 << 20, MemAccessPeriod: 130 * time.Nanosecond,
				HeapChurnPerStep: 16 << 20, HeapCallsPerStep: 30,
				AllreduceBytes: 8, HaloBytes: 256 << 10, HaloFaces: 6,
				InitCompute: 400 * time.Millisecond,
				RunVariance: 0.02,
			},
			Geometry: geomOFPGeoFEM, MaxNodes: 8192,
		}, nil
	case OnFugaku:
		return App{
			Workload: bsp.Workload{
				Name: "GeoFEM", Scaling: bsp.StrongScaling, RefNodes: 8192,
				Steps: 40, StepCompute: 10 * time.Millisecond,
				WorkingSetPerRank: 256 << 20, MemAccessPeriod: 100 * time.Nanosecond,
				HeapChurnPerStep: 16 << 20, HeapCallsPerStep: 30,
				AllreduceBytes: 8, HaloBytes: 256 << 10, HaloFaces: 6,
				InitCompute: 400 * time.Millisecond,
				RunVariance: 0.015,
			},
			Geometry: geomFugaku, MaxNodes: 8192,
		}, nil
	}
	return App{}, ErrUnknownApp{"GeoFEM", p}
}

// GAMERA is the implicit unstructured-FEM seismic solver. It runs three big
// solver steps after an initialization phase that registers tens of
// thousands of RDMA buffers for its irregular communication graph — the
// phase where the paper observed McKernel's LWK-integrated Tofu PicoDriver
// winning (up to 29% at 8k Fugaku nodes, Sec. 6.4).
func GAMERA(p PlatformName) (App, error) {
	switch p {
	case OnOFP:
		return App{
			Workload: bsp.Workload{
				Name: "GAMERA", Scaling: bsp.StrongScaling, RefNodes: 4096,
				Steps: 3, StepCompute: 500 * time.Millisecond,
				WorkingSetPerRank: 2 << 30, MemAccessPeriod: 160 * time.Nanosecond,
				HeapChurnPerStep: 32 << 20, HeapCallsPerStep: 24,
				AllreduceBytes: 8, HaloBytes: 1 << 20, HaloFaces: 12,
				InitCompute:       50 * time.Millisecond,
				InitRegistrations: 36000, RegBytes: 256 << 10,
			},
			Geometry: geomOFPGamera, MaxNodes: 4096,
		}, nil
	case OnFugaku:
		return App{
			Workload: bsp.Workload{
				Name: "GAMERA", Scaling: bsp.StrongScaling, RefNodes: 8192,
				Steps: 3, StepCompute: 150 * time.Millisecond,
				WorkingSetPerRank: 1 << 30, MemAccessPeriod: 120 * time.Nanosecond,
				HeapChurnPerStep: 32 << 20, HeapCallsPerStep: 24,
				AllreduceBytes: 8, HaloBytes: 1 << 20, HaloFaces: 12,
				InitCompute:       50 * time.Millisecond,
				InitRegistrations: 36000, RegBytes: 256 << 10,
			},
			Geometry: geomFugaku, MaxNodes: 8192,
		}, nil
	}
	return App{}, ErrUnknownApp{"GAMERA", p}
}

// ByName looks up an application by its paper name.
func ByName(name string, p PlatformName) (App, error) {
	switch name {
	case "AMG2013", "amg2013", "amg":
		return AMG2013(p)
	case "Milc", "milc":
		return MILC(p)
	case "Lulesh", "lulesh":
		return LULESH(p)
	case "LQCD", "lqcd":
		return LQCD(p)
	case "GeoFEM", "geofem":
		return GeoFEM(p)
	case "GAMERA", "gamera":
		return GAMERA(p)
	}
	return App{}, ErrUnknownApp{name, p}
}

// CoralSuite returns the three CORAL applications (OFP only).
func CoralSuite() []string { return []string{"AMG2013", "Milc", "Lulesh"} }

// FugakuSuite returns the three Fugaku-project applications.
func FugakuSuite() []string { return []string{"LQCD", "GeoFEM", "GAMERA"} }
