package apps

import (
	"fmt"
	"time"
)

// Custom application metrics. The paper plots *relative* performance
// "because some applications report custom metrics" (Sec. 6.4) — AMG2013
// and LULESH report a figure of merit, the QCD codes report solver
// throughput, GeoFEM reports solver iterations per second. These helpers
// convert a simulated runtime into the metric each code would print, so
// tool output reads like the real benchmarks'.

// Metric is a reported application figure.
type Metric struct {
	Name  string
	Value float64
	Unit  string
}

// String renders the metric the way job logs show it.
func (m Metric) String() string {
	return fmt.Sprintf("%s = %.4g %s", m.Name, m.Value, m.Unit)
}

// MetricFor converts a runtime at a node count into the application's
// reported figure. Work terms scale with the global problem (strong
// scaling: fixed), so the metric improves as runtime shrinks.
func (a App) MetricFor(runtime time.Duration, nodes int) Metric {
	secs := runtime.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	w := a.Workload
	switch w.Name {
	case "AMG2013":
		// FOM: (nnz * iterations) / solve time; nnz fixed by the global grid.
		const nnz = 2.4e10
		return Metric{Name: "FOM", Value: nnz * float64(w.Steps) / secs, Unit: "ops/s"}
	case "Lulesh":
		// FOM(z/s): zones * iterations / time.
		const zones = 8.6e9
		return Metric{Name: "FOM", Value: zones * float64(w.Steps) / secs, Unit: "z/s"}
	case "Milc":
		const sitesPerStep = 1.1e10
		return Metric{Name: "throughput", Value: sitesPerStep * float64(w.Steps) / secs, Unit: "site-updates/s"}
	case "LQCD":
		// BiCGStab sustained flops on the Wilson-Dirac operator.
		const flopsPerStep = 3.2e13
		return Metric{Name: "sustained", Value: flopsPerStep * float64(w.Steps) / secs / 1e12, Unit: "TFLOPS"}
	case "GeoFEM":
		// ICCG solver throughput.
		return Metric{Name: "solver", Value: float64(w.Steps) / secs, Unit: "iterations/s"}
	case "GAMERA":
		// Degrees of freedom processed per second across the three steps.
		const dof = 1.7e11
		return Metric{Name: "throughput", Value: dof * float64(w.Steps) / secs / 1e9, Unit: "GDOF-steps/s"}
	default:
		return Metric{Name: "runtime", Value: secs, Unit: "s"}
	}
}

// RelativeFromMetrics recovers the paper's relative-performance number from
// two metric reports (metrics are rates: higher is better, so relative =
// mckernel/linux — equal to runtimeLinux/runtimeMcKernel).
func RelativeFromMetrics(linux, mckernel Metric) (float64, error) {
	if linux.Unit != mckernel.Unit || linux.Name != mckernel.Name {
		return 0, fmt.Errorf("apps: incomparable metrics %s[%s] vs %s[%s]",
			linux.Name, linux.Unit, mckernel.Name, mckernel.Unit)
	}
	if linux.Value <= 0 {
		return 0, fmt.Errorf("apps: non-positive metric %v", linux.Value)
	}
	return mckernel.Value / linux.Value, nil
}
