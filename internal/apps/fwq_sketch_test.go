package apps

import (
	"errors"
	"math"
	"testing"
	"time"

	"mkos/internal/noise"
	"mkos/internal/sim"
)

// noisyProfile returns a profile with a mix of sources, for equivalence
// testing.
func noisyProfile() *noise.Profile {
	p := &noise.Profile{}
	p.MustAdd(&noise.Source{
		Name: "a", Cores: []int{0, 1}, Mode: noise.TargetRandom,
		Every: 8 * time.Millisecond, EveryCV: 0.5,
		Length: 40 * time.Microsecond, LengthCV: 0.6,
	})
	p.MustAdd(&noise.Source{
		Name: "b", Cores: []int{0, 1}, Mode: noise.TargetAll,
		Every: 50 * time.Millisecond, Length: 200 * time.Microsecond, LengthCV: 0.3,
	})
	return p
}

// TestSketchMatchesExact verifies the sketch runner computes exactly the
// same metrics as the full per-iteration runner.
func TestSketchMatchesExact(t *testing.T) {
	p := noisyProfile()
	tl := p.Timeline(2*time.Second, sim.NewRand(11))
	cfg := FWQConfig{Work: 6500 * time.Microsecond, Duration: 2 * time.Second, Cores: []int{0, 1}}

	exact, err := RunFWQ(cfg, tl)
	if err != nil {
		t.Fatal(err)
	}
	exactA, err := exact.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	sketch, err := RunFWQSketch(cfg, tl)
	if err != nil {
		t.Fatal(err)
	}

	if sketch.Analysis.N != exactA.N {
		t.Fatalf("iteration counts differ: sketch %d vs exact %d", sketch.Analysis.N, exactA.N)
	}
	if sketch.Analysis.Tmin != exactA.Tmin || sketch.Analysis.Tmax != exactA.Tmax {
		t.Fatalf("Tmin/Tmax differ: sketch %v/%v vs exact %v/%v",
			sketch.Analysis.Tmin, sketch.Analysis.Tmax, exactA.Tmin, exactA.Tmax)
	}
	if sketch.Analysis.MaxNoise != exactA.MaxNoise {
		t.Fatalf("MaxNoise differs: %v vs %v", sketch.Analysis.MaxNoise, exactA.MaxNoise)
	}
	if math.Abs(sketch.Analysis.Rate-exactA.Rate) > 1e-12 {
		t.Fatalf("Rate differs: %v vs %v", sketch.Analysis.Rate, exactA.Rate)
	}
	// Distribution must agree with the raw iteration list.
	if sketch.Dist.N() != int64(len(exact.AllIterations())) {
		t.Fatalf("Dist.N = %d, want %d", sketch.Dist.N(), len(exact.AllIterations()))
	}
	exactCDF := noise.IterationCDF(exact.AllIterations())
	for _, us := range []float64{6500, 6510, 6600, 6700, 7000} {
		if got, want := sketch.Dist.At(us), exactCDF.At(us); math.Abs(got-want) > 1e-9 {
			t.Fatalf("CDF at %vus: sketch %v vs exact %v", us, got, want)
		}
	}
	if sketch.Dist.Max() != exactCDF.Max() {
		t.Fatalf("Dist.Max %v vs exact %v", sketch.Dist.Max(), exactCDF.Max())
	}
}

func TestSketchNoNoise(t *testing.T) {
	tl := (&noise.Profile{}).Timeline(time.Second, sim.NewRand(1))
	cfg := FWQConfig{Work: 10 * time.Millisecond, Duration: 100 * time.Millisecond, Cores: []int{0}}
	sk, err := RunFWQSketch(cfg, tl)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Dist.Clean != 10 || sk.Dist.N() != 10 {
		t.Fatalf("clean = %d, N = %d, want 10/10", sk.Dist.Clean, sk.Dist.N())
	}
	if sk.Analysis.MaxNoise != 0 {
		t.Fatal("noise-free sketch reported noise")
	}
	if sk.Dist.At(10000) != 1 || sk.Dist.At(9999) != 0 {
		t.Fatal("clean-only CDF step wrong")
	}
}

func TestSketchValidation(t *testing.T) {
	tl := (&noise.Profile{}).Timeline(time.Second, sim.NewRand(1))
	if _, err := RunFWQSketch(FWQConfig{}, tl); !errors.Is(err, ErrBadFWQConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := FWQSketchAcrossNodes(FWQConfig{Work: time.Millisecond, Duration: time.Second, Cores: []int{0}}, profileOnly{&noise.Profile{}}, 0, 1); !errors.Is(err, ErrBadFWQConfig) {
		t.Fatalf("zero nodes err = %v", err)
	}
}

func TestSketchAcrossNodesMatchesExact(t *testing.T) {
	cfg := FWQConfig{Work: 6500 * time.Microsecond, Duration: time.Second, Cores: []int{0, 1}}
	prof := profileOnly{noisyProfile()}
	exactAs, _, err := FWQAcrossNodes(cfg, prof, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	sketches, err := FWQSketchAcrossNodes(cfg, prof, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sketches {
		if sketches[i].Analysis.MaxNoise != exactAs[i].MaxNoise {
			t.Fatalf("node %d MaxNoise: sketch %v vs exact %v",
				i, sketches[i].Analysis.MaxNoise, exactAs[i].MaxNoise)
		}
	}
}

func TestIterationDistMerge(t *testing.T) {
	a := noise.NewIterationDist(6500*time.Microsecond, 100, []time.Duration{6600 * time.Microsecond})
	b := noise.NewIterationDist(6500*time.Microsecond, 50, []time.Duration{7000 * time.Microsecond})
	m := noise.MergeDists([]*noise.IterationDist{a, b})
	if m.N() != 152 {
		t.Fatalf("merged N = %d", m.N())
	}
	if m.Max() != 7000 {
		t.Fatalf("merged Max = %v", m.Max())
	}
	if noise.MergeDists(nil).N() != 0 {
		t.Fatal("empty merge must be empty")
	}
	pts := m.Points(10)
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatal("CDF points not monotone")
		}
	}
	if got := m.TailProbability(6999); math.Abs(got-1.0/152) > 1e-9 {
		t.Fatalf("tail probability = %v", got)
	}
}
