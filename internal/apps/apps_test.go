package apps

import (
	"errors"
	"testing"
	"time"

	"mkos/internal/noise"
	"mkos/internal/sim"
)

func TestFWQConfigValidation(t *testing.T) {
	tl := (&noise.Profile{}).Timeline(time.Second, sim.NewRand(1))
	bad := []FWQConfig{
		{Work: 0, Duration: time.Second, Cores: []int{0}},
		{Work: time.Millisecond, Duration: 0, Cores: []int{0}},
		{Work: time.Millisecond, Duration: time.Second},
	}
	for i, cfg := range bad {
		if _, err := RunFWQ(cfg, tl); !errors.Is(err, ErrBadFWQConfig) {
			t.Fatalf("config %d: err = %v", i, err)
		}
	}
}

func TestFWQNoNoise(t *testing.T) {
	tl := (&noise.Profile{}).Timeline(time.Second, sim.NewRand(1))
	cfg := FWQConfig{Work: 6500 * time.Microsecond, Duration: 65 * time.Millisecond, Cores: []int{0, 1}}
	run, err := RunFWQ(cfg, tl)
	if err != nil {
		t.Fatal(err)
	}
	for core, iters := range run.PerCore {
		if len(iters) != 10 {
			t.Fatalf("core %d: %d iterations, want 10", core, len(iters))
		}
		for _, it := range iters {
			if it != cfg.Work {
				t.Fatalf("noise-free iteration %v != work %v", it, cfg.Work)
			}
		}
	}
	a, err := run.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxNoise != 0 || a.Rate != 0 {
		t.Fatalf("noise-free analysis reported noise: %+v", a)
	}
	if len(run.AllIterations()) != 20 {
		t.Fatalf("AllIterations = %d", len(run.AllIterations()))
	}
}

func TestFWQCapturesInjectedNoise(t *testing.T) {
	p := &noise.Profile{}
	p.MustAdd(&noise.Source{
		Name: "spike", Cores: []int{0}, Mode: noise.TargetOne,
		Every: 50 * time.Millisecond, Length: 200 * time.Microsecond,
	})
	tl := p.Timeline(time.Second, sim.NewRand(2))
	cfg := FWQConfig{Work: 6500 * time.Microsecond, Duration: time.Second, Cores: []int{0}}
	run, err := RunFWQ(cfg, tl)
	if err != nil {
		t.Fatal(err)
	}
	a, err := run.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxNoise < 150*time.Microsecond {
		t.Fatalf("max noise %v, want ~200us spikes visible", a.MaxNoise)
	}
	if a.Rate <= 0 {
		t.Fatal("rate must be positive with injected noise")
	}
}

func TestDefaultFWQ(t *testing.T) {
	cfg := DefaultFWQ([]int{1, 2})
	if cfg.Work != 6500*time.Microsecond {
		t.Fatalf("work = %v, want the paper's ~6.5ms quanta", cfg.Work)
	}
	if cfg.Duration != 6*time.Minute {
		t.Fatalf("duration = %v, want the paper's ~6 minute runs", cfg.Duration)
	}
}

func TestFWQAcrossNodesStability(t *testing.T) {
	p := &noise.Profile{}
	p.MustAdd(&noise.Source{
		Name: "s", Cores: []int{0}, Mode: noise.TargetOne,
		Every: 20 * time.Millisecond, Length: 50 * time.Microsecond, LengthCV: 0.5,
	})
	prof := profileOnly{p}
	cfg := FWQConfig{Work: 6500 * time.Microsecond, Duration: 200 * time.Millisecond, Cores: []int{0}}
	// Node k's analysis must be identical whether we simulate 2 or 4 nodes.
	a2, _, err := FWQAcrossNodes(cfg, prof, 2, 77)
	if err != nil {
		t.Fatal(err)
	}
	a4, _, err := FWQAcrossNodes(cfg, prof, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if a2[i].MaxNoise != a4[i].MaxNoise || a2[i].Rate != a4[i].Rate {
			t.Fatalf("node %d differs between 2- and 4-node runs (stream stability broken)", i)
		}
	}
	if _, _, err := FWQAcrossNodes(cfg, prof, 0, 1); !errors.Is(err, ErrBadFWQConfig) {
		t.Fatalf("zero nodes err = %v", err)
	}
}

type profileOnly struct{ p *noise.Profile }

func (p profileOnly) NoiseProfile() *noise.Profile { return p.p }

func TestWorkloadCatalog(t *testing.T) {
	// CORAL apps exist only on OFP.
	for _, name := range CoralSuite() {
		if _, err := ByName(name, OnOFP); err != nil {
			t.Fatalf("%s on OFP: %v", name, err)
		}
		if _, err := ByName(name, OnFugaku); err == nil {
			t.Fatalf("%s must not be available on Fugaku (x86-only builds)", name)
		}
	}
	// Fugaku-project apps exist on both platforms.
	for _, name := range FugakuSuite() {
		for _, p := range []PlatformName{OnOFP, OnFugaku} {
			if _, err := ByName(name, p); err != nil {
				t.Fatalf("%s on %s: %v", name, p, err)
			}
		}
	}
	if _, err := ByName("HPL", OnOFP); err == nil {
		t.Fatal("unknown app must fail")
	}
	var ua ErrUnknownApp
	if _, err := ByName("HPL", OnOFP); !errors.As(err, &ua) {
		t.Fatal("error type must be ErrUnknownApp")
	}
	if ua.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestWorkloadsValidate(t *testing.T) {
	for _, name := range append(CoralSuite(), FugakuSuite()...) {
		for _, p := range []PlatformName{OnOFP, OnFugaku} {
			app, err := ByName(name, p)
			if err != nil {
				continue
			}
			if err := app.Workload.Validate(); err != nil {
				t.Errorf("%s/%s: %v", name, p, err)
			}
			if app.MaxNodes < app.Workload.RefNodes {
				t.Errorf("%s/%s: MaxNodes %d < RefNodes %d", name, p, app.MaxNodes, app.Workload.RefNodes)
			}
			if app.Geometry.RanksPerNode < 1 || app.Geometry.ThreadsPerRank < 1 {
				t.Errorf("%s/%s: bad geometry", name, p)
			}
		}
	}
}

func TestGeometriesMatchArtifactDescription(t *testing.T) {
	lqcd, _ := LQCD(OnOFP)
	if lqcd.Geometry.RanksPerNode != 4 || lqcd.Geometry.ThreadsPerRank != 32 {
		t.Fatal("OFP LQCD must run 4 ranks x 32 threads (AD appendix)")
	}
	geofem, _ := GeoFEM(OnOFP)
	if geofem.Geometry.RanksPerNode != 16 || geofem.Geometry.ThreadsPerRank != 8 {
		t.Fatal("OFP GeoFEM must run 16 ranks x 8 threads (AD appendix)")
	}
	gamera, _ := GAMERA(OnOFP)
	if gamera.Geometry.RanksPerNode != 8 || gamera.Geometry.ThreadsPerRank != 8 {
		t.Fatal("OFP GAMERA must run 8 ranks x 8 threads (AD appendix)")
	}
	for _, name := range FugakuSuite() {
		app, _ := ByName(name, OnFugaku)
		if app.Geometry.RanksPerNode != 4 || app.Geometry.ThreadsPerRank != 12 {
			t.Fatalf("%s on Fugaku must run 4 ranks x 12 threads (one per CMG)", name)
		}
	}
}

func TestLQCDHasNoChurn(t *testing.T) {
	// The in-place BiCGStab solver is the reason Fugaku LQCD shows no
	// McKernel gain; the workload must reflect that.
	app, _ := LQCD(OnFugaku)
	if app.Workload.HeapChurnPerStep != 0 {
		t.Fatal("LQCD must have no per-step heap churn")
	}
}

func TestGAMERAIsInitDominatedAtScale(t *testing.T) {
	app, _ := GAMERA(OnFugaku)
	if app.Workload.InitRegistrations == 0 {
		t.Fatal("GAMERA must perform RDMA registrations at init")
	}
	if app.Workload.Steps != 3 {
		t.Fatal("GAMERA runs three steps (Sec. 6.4)")
	}
}
