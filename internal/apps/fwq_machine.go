package apps

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"mkos/internal/noise"
	"mkos/internal/shard"
	"mkos/internal/sim"
)

// This file is the full-machine FWQ campaign of Sec. 6.3, restaged on the
// sharded runner: every node of the cluster runs the benchmark as one
// discrete event, reduces its result to a compact digest in situ, and ships
// the digest over the interconnect to a collector node — exactly the
// worst-100-of-158,976 selection the paper performed on Fugaku to avoid
// writing 159k raw FWQ traces to the parallel filesystem. Only after the
// in-situ selection are the worst nodes re-run with full per-iteration
// recording.
//
// Everything here is inside the determinism boundary: with the same seed
// the result is byte-identical at any shard count. Per-node RNG streams
// follow the Skip/DeriveSeed discipline, digests arrive at the collector
// in the runner's canonical order, and nothing partition-dependent (shard
// count, cross-shard traffic) appears in the result.

// FWQClass is one node-population class: the cores the benchmark measures
// and the OS noise profile driving them. Fugaku has two (50-core and
// 52-core nodes); booting one OS per class instead of one per node is what
// makes 158,976-node runs fit in memory.
type FWQClass struct {
	Cores   []int
	Profile *noise.Profile
}

// FWQMachineConfig configures a sharded full-machine FWQ run.
type FWQMachineConfig struct {
	// Work and Duration are the per-iteration quantum and the benchmark
	// length, as in FWQConfig.
	Work     time.Duration
	Duration time.Duration

	Nodes int
	Seed  int64

	// Shards is the conservative-parallel shard count. It changes wall-clock
	// time only, never the result.
	Shards int

	// WorstK is how many worst nodes (by total noise) are re-run with full
	// per-iteration recording after the in-situ selection. The paper keeps
	// the worst 100.
	WorstK int

	// Lookahead is the conservative window bound, normally the fabric's
	// MinLatency. Digest reports are clamped to at least this latency.
	Lookahead time.Duration

	// Classes and ClassOf describe the node population. ClassOf nil means
	// every node is Classes[0].
	Classes []FWQClass
	ClassOf func(node int) int

	// ReportLatency models the digest's trip to the collector (node 0):
	// routed hop latency on Tofu, uniform point-to-point otherwise. Nil
	// means exactly Lookahead. Must never undercut Lookahead; values below
	// it are clamped.
	ReportLatency func(src, dst int, bytes int64) (time.Duration, error)

	// DigestBytes is the modeled wire size of one digest message.
	// Zero means 64.
	DigestBytes int64

	Cancel   func() bool
	Observer shard.Observer
}

// FWQDigest is the compact per-node summary a node reduces its run to
// before shipping it to the collector: the Sec. 6.3 metrics without the
// O(iterations) length series.
type FWQDigest struct {
	Node         int     `json:"node"`
	N            int     `json:"n"`
	TminNS       int64   `json:"tmin_ns"`
	TmaxNS       int64   `json:"tmax_ns"`
	MaxNoiseNS   int64   `json:"max_noise_ns"`
	TotalNoiseNS int64   `json:"total_noise_ns"`
	Rate         float64 `json:"rate"`
}

// FWQWorstNode is one of the worst-K nodes after the full re-run: the
// digest it reported in situ plus iteration-time quantiles from the
// complete per-iteration data, the raw material of Figure 3.
type FWQWorstNode struct {
	Node   int       `json:"node"`
	Class  int       `json:"class"`
	Digest FWQDigest `json:"digest"`
	P50NS  int64     `json:"p50_ns"`
	P90NS  int64     `json:"p90_ns"`
	P99NS  int64     `json:"p99_ns"`
	P999NS int64     `json:"p999_ns"`
	MaxNS  int64     `json:"max_ns"`
}

// FWQMachineResult is the deterministic artifact of a full-machine run.
// It deliberately excludes the shard count and all partition-dependent
// statistics; Windows is included because the window schedule is specified
// to be shard-count invariant.
type FWQMachineResult struct {
	Nodes      int            `json:"nodes"`
	Seed       int64          `json:"seed"`
	WorkNS     int64          `json:"work_ns"`
	DurationNS int64          `json:"duration_ns"`
	Windows    int            `json:"windows"`
	Summary    FWQDigest      `json:"summary"`
	Worst      []FWQWorstNode `json:"worst"`
	Digests    []FWQDigest    `json:"digests"`
}

// ErrBadMachineConfig reports an unusable full-machine configuration.
var ErrBadMachineConfig = errors.New("apps: invalid FWQ machine configuration")

// fwqMachineModel is the shard.Model behind FWQMachine. The digests slice
// is written only from Deliver, which the runner executes solely on the
// goroutine of the shard owning node 0.
type fwqMachineModel struct {
	cfg     FWQMachineConfig
	classOf func(int) int
	report  func(src, dst int, bytes int64) (time.Duration, error)
	digests []FWQDigest
	got     int
}

func (m *fwqMachineModel) Setup(s *shard.Shard) error {
	base := sim.NewRand(m.cfg.Seed)
	base.Skip(s.Nodes.Lo)
	at := sim.Time(m.cfg.Duration)
	for n := s.Nodes.Lo; n < s.Nodes.Hi; n++ {
		seed := base.DeriveSeed(int64(n))
		cls := m.classOf(n)
		if cls < 0 || cls >= len(m.cfg.Classes) {
			return fmt.Errorf("%w: node %d maps to class %d of %d",
				ErrBadMachineConfig, n, cls, len(m.cfg.Classes))
		}
		node, class := n, m.cfg.Classes[cls]
		s.Engine.ScheduleAt(at, "fwq-node", func(e *sim.Engine) {
			// The node's whole benchmark collapses into this one event: it
			// fires at the instant the run completes, builds the timeline
			// from the node's derived stream, sketches the iterations and
			// reports the digest. A failure is a typed panic the runner
			// converts into a shard error.
			tl := class.Profile.Timeline(m.cfg.Duration, sim.NewRand(seed))
			sk, err := RunFWQSketch(FWQConfig{
				Work: m.cfg.Work, Duration: m.cfg.Duration, Cores: class.Cores,
			}, tl)
			if err != nil {
				panic(fmt.Errorf("fwq machine: node %d: %w", node, err))
			}
			lat, err := m.report(node, 0, m.cfg.DigestBytes)
			if err != nil {
				panic(fmt.Errorf("fwq machine: node %d report: %w", node, err))
			}
			if lat < m.cfg.Lookahead {
				lat = m.cfg.Lookahead
			}
			s.Send(node, 0, e.Now().Add(lat), "fwq-digest", digestOf(node, sk.Analysis))
		})
	}
	return nil
}

func (m *fwqMachineModel) Deliver(s *shard.Shard, msg shard.Message) {
	d := msg.Payload.(FWQDigest)
	m.digests[d.Node] = d
	m.got++
	s.Sink.Registry().Counter("fwq.machine.digests").Inc()
}

// digestOf reduces an analysis to its scalar digest. The total is the sum
// of per-iteration noise lengths — the quantity WorstBy ranks on.
func digestOf(node int, a noise.Analysis) FWQDigest {
	var total time.Duration
	for _, l := range a.Lengths {
		total += l
	}
	return FWQDigest{
		Node: node, N: a.N,
		TminNS: int64(a.Tmin), TmaxNS: int64(a.Tmax),
		MaxNoiseNS: int64(a.MaxNoise), TotalNoiseNS: int64(total),
		Rate: a.Rate,
	}
}

// FWQMachine runs the full-machine campaign: the sharded sweep, the in-situ
// worst-K selection, and the sequential full re-run of the selected nodes.
// It is the ctx-free convenience form of FWQMachineContext; cancellation,
// if any, arrives through cfg.Cancel.
func FWQMachine(cfg FWQMachineConfig) (*FWQMachineResult, *shard.Result, error) {
	return FWQMachineContext(context.Background(), cfg)
}

// FWQMachineContext is FWQMachine with caller cancellation: ending ctx
// stops the sharded run cooperatively (merged with cfg.Cancel, exactly as
// shard.RunContext does). The shard.Result is returned alongside for
// callers that want the fold of the per-shard registries or the runner
// statistics; nothing in it beyond Windows may enter a byte-compared
// artifact.
func FWQMachineContext(ctx context.Context, cfg FWQMachineConfig) (*FWQMachineResult, *shard.Result, error) {
	if cfg.Work <= 0 || cfg.Duration <= 0 || cfg.Nodes <= 0 || len(cfg.Classes) == 0 {
		return nil, nil, ErrBadMachineConfig
	}
	for i, c := range cfg.Classes {
		if len(c.Cores) == 0 || c.Profile == nil {
			return nil, nil, fmt.Errorf("%w: class %d incomplete", ErrBadMachineConfig, i)
		}
	}
	if cfg.WorstK < 0 {
		return nil, nil, ErrBadMachineConfig
	}
	if cfg.WorstK > cfg.Nodes {
		cfg.WorstK = cfg.Nodes
	}
	if cfg.DigestBytes <= 0 {
		cfg.DigestBytes = 64
	}
	m := &fwqMachineModel{
		cfg:     cfg,
		classOf: cfg.ClassOf,
		report:  cfg.ReportLatency,
		digests: make([]FWQDigest, cfg.Nodes),
	}
	if m.classOf == nil {
		m.classOf = func(int) int { return 0 }
	}
	if m.report == nil {
		m.report = func(int, int, int64) (time.Duration, error) { return cfg.Lookahead, nil }
	}
	sres, err := shard.RunContext(ctx, shard.Config{
		Nodes: cfg.Nodes, Shards: cfg.Shards, Lookahead: cfg.Lookahead,
		Cancel: cfg.Cancel, Observer: cfg.Observer,
	}, m)
	if err != nil {
		return nil, sres, err
	}
	if m.got != cfg.Nodes {
		return nil, sres, fmt.Errorf("fwq machine: collector received %d of %d digests", m.got, cfg.Nodes)
	}
	res := &FWQMachineResult{
		Nodes: cfg.Nodes, Seed: cfg.Seed,
		WorkNS: int64(cfg.Work), DurationNS: int64(cfg.Duration),
		Windows: sres.Stats.Windows,
		Summary: summarize(m.digests),
		Digests: m.digests,
		Worst:   []FWQWorstNode{},
	}
	for _, n := range worstNodes(m.digests, cfg.WorstK) {
		w, err := rerunWorst(cfg, m.classOf, n, m.digests[n])
		if err != nil {
			return nil, sres, err
		}
		res.Worst = append(res.Worst, w)
	}
	return res, sres, nil
}

// summarize merges the per-node digests into the machine-level view, the
// digest analogue of noise.Merge: global extrema, sample-weighted rate.
func summarize(ds []FWQDigest) FWQDigest {
	out := FWQDigest{Node: -1, TminNS: ds[0].TminNS, TmaxNS: ds[0].TmaxNS}
	var rateWeighted float64
	for _, d := range ds {
		out.N += d.N
		out.TotalNoiseNS += d.TotalNoiseNS
		if d.TminNS < out.TminNS {
			out.TminNS = d.TminNS
		}
		if d.TmaxNS > out.TmaxNS {
			out.TmaxNS = d.TmaxNS
		}
		rateWeighted += d.Rate * float64(d.N)
	}
	out.MaxNoiseNS = out.TmaxNS - out.TminNS
	if out.N > 0 {
		out.Rate = rateWeighted / float64(out.N)
	}
	return out
}

// worstNodes ranks nodes by total noise, descending, ties to the lower
// index — the same ordering noise.WorstBy produces.
func worstNodes(ds []FWQDigest, k int) []int {
	idx := make([]int, len(ds))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return ds[idx[a]].TotalNoiseNS > ds[idx[b]].TotalNoiseNS
	})
	return idx[:k]
}

// rerunWorst replays one selected node with full per-iteration recording.
// Skip(node) advances the base generator exactly as the node's predecessors
// did in the sequential derivation, so the re-run sees the identical
// timeline the sketch summarized.
func rerunWorst(cfg FWQMachineConfig, classOf func(int) int, node int, d FWQDigest) (FWQWorstNode, error) {
	cls := classOf(node)
	class := cfg.Classes[cls]
	base := sim.NewRand(cfg.Seed)
	base.Skip(node)
	tl := class.Profile.Timeline(cfg.Duration, sim.NewRand(base.DeriveSeed(int64(node))))
	run, err := RunFWQ(FWQConfig{Work: cfg.Work, Duration: cfg.Duration, Cores: class.Cores}, tl)
	if err != nil {
		return FWQWorstNode{}, fmt.Errorf("fwq machine: re-running node %d: %w", node, err)
	}
	iters := run.AllIterations()
	if len(iters) != d.N {
		return FWQWorstNode{}, fmt.Errorf("fwq machine: node %d re-run saw %d iterations, digest says %d",
			node, len(iters), d.N)
	}
	sort.Slice(iters, func(a, b int) bool { return iters[a] < iters[b] })
	q := func(p float64) int64 {
		return int64(iters[int(p*float64(len(iters)-1))])
	}
	return FWQWorstNode{
		Node: node, Class: cls, Digest: d,
		P50NS: q(0.50), P90NS: q(0.90), P99NS: q(0.99), P999NS: q(0.999),
		MaxNS: int64(iters[len(iters)-1]),
	}, nil
}
