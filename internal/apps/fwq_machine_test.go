package apps

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"mkos/internal/noise"
	"mkos/internal/sim"
)

// machineTestConfig is a small two-class population: even nodes measure two
// cores, odd nodes one, so class routing and heterogeneous core sets are
// both exercised.
func machineTestConfig(nodes, shards int) FWQMachineConfig {
	quiet := &noise.Profile{}
	quiet.MustAdd(&noise.Source{
		Name: "tick", Cores: []int{0}, Mode: noise.TargetOne,
		Every: 20 * time.Millisecond, Length: 60 * time.Microsecond, LengthCV: 0.4,
	})
	return FWQMachineConfig{
		Work: 6500 * time.Microsecond, Duration: 2 * time.Second,
		Nodes: nodes, Seed: 42, Shards: shards, WorstK: 3,
		Lookahead: 490 * time.Nanosecond,
		Classes: []FWQClass{
			{Cores: []int{0, 1}, Profile: noisyProfile()},
			{Cores: []int{0}, Profile: quiet},
		},
		ClassOf: func(n int) int { return n % 2 },
	}
}

func TestFWQMachineByteIdenticalAcrossShardCounts(t *testing.T) {
	const nodes = 12
	var want []byte
	for _, shards := range []int{1, 2, 5, 12} {
		res, sres, err := FWQMachine(machineTestConfig(nodes, shards))
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = blob
			continue
		}
		if string(blob) != string(want) {
			t.Errorf("%d shards: result differs from sequential\n got: %s\nwant: %s", shards, blob, want)
		}
		if shards > 1 && sres.Stats.CrossMessages == 0 {
			t.Errorf("%d shards: no cross-shard digest traffic", shards)
		}
	}
}

// TestFWQMachineDigestsMatchSequentialSketches pins the sharded run to the
// pre-existing sequential per-node sketch path: same seeds, same metrics.
func TestFWQMachineDigestsMatchSequentialSketches(t *testing.T) {
	const nodes = 8
	cfg := machineTestConfig(nodes, 4)
	// Restrict to one class so FWQSketchAcrossNodes (single profile) lines up.
	cfg.Classes = cfg.Classes[:1]
	cfg.ClassOf = nil
	res, _, err := FWQMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sks, err := FWQSketchAcrossNodes(
		FWQConfig{Work: cfg.Work, Duration: cfg.Duration, Cores: cfg.Classes[0].Cores},
		profileOnly{cfg.Classes[0].Profile}, nodes, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	for n, sk := range sks {
		want := digestOf(n, sk.Analysis)
		if res.Digests[n] != want {
			t.Errorf("node %d digest = %+v, sequential sketch says %+v", n, res.Digests[n], want)
		}
	}
}

func TestFWQMachineWorstSelection(t *testing.T) {
	res, _, err := FWQMachine(machineTestConfig(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Worst) != 3 {
		t.Fatalf("worst list has %d entries, want 3", len(res.Worst))
	}
	for i := 1; i < len(res.Worst); i++ {
		a, b := res.Worst[i-1], res.Worst[i]
		if a.Digest.TotalNoiseNS < b.Digest.TotalNoiseNS {
			t.Errorf("worst list not sorted: node %d (%d ns) before node %d (%d ns)",
				a.Node, a.Digest.TotalNoiseNS, b.Node, b.Digest.TotalNoiseNS)
		}
	}
	for _, w := range res.Worst {
		if w.Class != w.Node%2 {
			t.Errorf("node %d carries class %d, want %d", w.Node, w.Class, w.Node%2)
		}
		if w.MaxNS != w.Digest.TminNS+w.Digest.MaxNoiseNS {
			t.Errorf("node %d re-run max %d ns disagrees with digest Tmin+MaxNoise %d ns",
				w.Node, w.MaxNS, w.Digest.TminNS+w.Digest.MaxNoiseNS)
		}
		if w.P50NS > w.P90NS || w.P90NS > w.P99NS || w.P99NS > w.P999NS || w.P999NS > w.MaxNS {
			t.Errorf("node %d quantiles not monotone: %+v", w.Node, w)
		}
	}
	// The selection must agree with noise.WorstBy over the same totals.
	as := make([]noise.Analysis, res.Nodes)
	for n := range as {
		as[n] = noise.Analysis{Lengths: []time.Duration{time.Duration(res.Digests[n].TotalNoiseNS)}}
	}
	for i, idx := range noise.WorstBy(as, 3) {
		if res.Worst[i].Node != idx {
			t.Errorf("worst[%d] = node %d, noise.WorstBy says %d", i, res.Worst[i].Node, idx)
		}
	}
}

func TestFWQMachineSummaryMergesDigests(t *testing.T) {
	res, _, err := FWQMachine(machineTestConfig(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	var n int
	var total int64
	for _, d := range res.Digests {
		n += d.N
		total += d.TotalNoiseNS
	}
	if res.Summary.N != n || res.Summary.TotalNoiseNS != total {
		t.Errorf("summary %+v does not total the digests (N=%d, total=%d)", res.Summary, n, total)
	}
	if res.Summary.MaxNoiseNS != res.Summary.TmaxNS-res.Summary.TminNS {
		t.Errorf("summary max noise %d != Tmax-Tmin", res.Summary.MaxNoiseNS)
	}
}

func TestFWQMachineRejectsBadConfig(t *testing.T) {
	bad := []FWQMachineConfig{
		{},
		{Work: time.Millisecond, Duration: time.Second, Nodes: 4},
		{Work: time.Millisecond, Duration: time.Second, Nodes: 4, WorstK: -1,
			Classes: []FWQClass{{Cores: []int{0}, Profile: &noise.Profile{}}}},
		{Work: time.Millisecond, Duration: time.Second, Nodes: 4,
			Classes: []FWQClass{{Profile: &noise.Profile{}}}},
		{Work: time.Millisecond, Duration: time.Second, Nodes: 4,
			Classes: []FWQClass{{Cores: []int{0}}}},
	}
	for i, cfg := range bad {
		if _, _, err := FWQMachine(cfg); !errors.Is(err, ErrBadMachineConfig) {
			t.Errorf("config %d: err = %v, want ErrBadMachineConfig", i, err)
		}
	}
	// A class map pointing outside Classes surfaces as a setup error.
	cfg := machineTestConfig(4, 2)
	cfg.ClassOf = func(int) int { return 99 }
	if _, _, err := FWQMachine(cfg); !errors.Is(err, ErrBadMachineConfig) {
		t.Errorf("out-of-range class: err = %v, want ErrBadMachineConfig", err)
	}
}

func TestFWQMachineCancel(t *testing.T) {
	cfg := machineTestConfig(8, 2)
	cfg.Cancel = func() bool { return true }
	if _, _, err := FWQMachine(cfg); !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("err = %v, want sim.ErrCanceled", err)
	}
}
