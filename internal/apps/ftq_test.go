package apps

import (
	"errors"
	"testing"
	"time"

	"mkos/internal/noise"
	"mkos/internal/sim"
)

func TestFTQValidation(t *testing.T) {
	tl := (&noise.Profile{}).Timeline(time.Second, sim.NewRand(1))
	bad := []FTQConfig{
		{},
		{Quantum: time.Millisecond, UnitWork: time.Microsecond, Duration: time.Second},
		{Quantum: time.Millisecond, UnitWork: 0, Duration: time.Second, Cores: []int{0}},
		{Quantum: time.Microsecond, UnitWork: time.Millisecond, Duration: time.Second, Cores: []int{0}},
	}
	for i, cfg := range bad {
		if _, err := RunFTQ(cfg, tl); !errors.Is(err, ErrBadFTQConfig) {
			t.Fatalf("config %d: err = %v", i, err)
		}
	}
}

func TestFTQNoiseFree(t *testing.T) {
	tl := (&noise.Profile{}).Timeline(time.Second, sim.NewRand(1))
	cfg := FTQConfig{
		Quantum: time.Millisecond, UnitWork: 10 * time.Microsecond,
		Duration: 100 * time.Millisecond, Cores: []int{0},
	}
	run, err := RunFTQ(cfg, tl)
	if err != nil {
		t.Fatal(err)
	}
	counts := run.PerCore[0]
	if len(counts) != 100 {
		t.Fatalf("quanta = %d, want 100", len(counts))
	}
	for _, c := range counts {
		if c != 100 { // 1ms quantum / 10us units
			t.Fatalf("noise-free count = %d, want 100", c)
		}
	}
	a, err := run.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxLoss != 0 || a.LossRate != 0 {
		t.Fatalf("noise-free run lost work: %+v", a)
	}
	if a.MaxCount != 100 || a.MinCount != 100 {
		t.Fatalf("counts: %+v", a)
	}
}

func TestFTQDetectsNoise(t *testing.T) {
	p := &noise.Profile{}
	p.MustAdd(&noise.Source{
		Name: "spike", Cores: []int{0}, Mode: noise.TargetOne,
		Every: 10 * time.Millisecond, Length: 200 * time.Microsecond,
	})
	tl := p.Timeline(time.Second, sim.NewRand(2))
	cfg := FTQConfig{
		Quantum: time.Millisecond, UnitWork: 10 * time.Microsecond,
		Duration: time.Second, Cores: []int{0},
	}
	run, err := RunFTQ(cfg, tl)
	if err != nil {
		t.Fatal(err)
	}
	a, err := run.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// A 200us spike in a 1ms quantum costs ~20 units.
	if a.MaxLoss < 150*time.Microsecond || a.MaxLoss > 400*time.Microsecond {
		t.Fatalf("MaxLoss = %v, want ~200us", a.MaxLoss)
	}
	if a.LossRate <= 0 {
		t.Fatal("loss rate must be positive with noise")
	}
	// ~100 spikes/second of 200us over 1s of 1ms quanta: ~2% capacity loss.
	if a.LossRate > 0.1 {
		t.Fatalf("loss rate %v implausibly high", a.LossRate)
	}
}

// TestFTQAgreesWithFWQ cross-validates the two benchmarks: the same noise
// timeline must yield comparable noise pictures (FWQ max noise length vs FTQ
// max loss).
func TestFTQAgreesWithFWQ(t *testing.T) {
	p := &noise.Profile{}
	p.MustAdd(&noise.Source{
		Name: "s", Cores: []int{0}, Mode: noise.TargetOne,
		Every: 20 * time.Millisecond, Length: 300 * time.Microsecond, LengthCV: 0.2,
	})
	tl := p.Timeline(2*time.Second, sim.NewRand(5))

	fwqRun, err := RunFWQ(FWQConfig{Work: 6500 * time.Microsecond, Duration: 2 * time.Second, Cores: []int{0}}, tl)
	if err != nil {
		t.Fatal(err)
	}
	fwqA, err := fwqRun.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	ftqRun, err := RunFTQ(FTQConfig{
		Quantum: 6500 * time.Microsecond, UnitWork: 5 * time.Microsecond,
		Duration: 2 * time.Second, Cores: []int{0},
	}, tl)
	if err != nil {
		t.Fatal(err)
	}
	ftqA, err := ftqRun.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(ftqA.MaxLoss) / float64(fwqA.MaxNoise)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("FTQ max loss %v and FWQ max noise %v disagree (ratio %.2f)",
			ftqA.MaxLoss, fwqA.MaxNoise, ratio)
	}
}

func TestDefaultFTQ(t *testing.T) {
	cfg := DefaultFTQ([]int{0})
	if cfg.Quantum != 6500*time.Microsecond || cfg.UnitWork != time.Microsecond {
		t.Fatalf("default = %+v", cfg)
	}
}
