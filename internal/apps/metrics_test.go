package apps

import (
	"math"
	"testing"
	"time"
)

func TestMetricForEveryApp(t *testing.T) {
	wantUnit := map[string]string{
		"AMG2013": "ops/s", "Lulesh": "z/s", "Milc": "site-updates/s",
		"LQCD": "TFLOPS", "GeoFEM": "iterations/s", "GAMERA": "GDOF-steps/s",
	}
	for _, name := range append(CoralSuite(), FugakuSuite()...) {
		platform := OnOFP
		app, err := ByName(name, platform)
		if err != nil {
			t.Fatal(err)
		}
		m := app.MetricFor(10*time.Second, 256)
		if m.Value <= 0 {
			t.Errorf("%s metric = %v", name, m.Value)
		}
		if m.Unit != wantUnit[app.Workload.Name] {
			t.Errorf("%s unit = %s, want %s", name, m.Unit, wantUnit[app.Workload.Name])
		}
		if m.String() == "" {
			t.Errorf("%s empty metric string", name)
		}
	}
}

func TestMetricUnknownAppFallsBackToRuntime(t *testing.T) {
	app := App{}
	app.Workload.Name = "mystery"
	m := app.MetricFor(3*time.Second, 1)
	if m.Name != "runtime" || m.Value != 3 || m.Unit != "s" {
		t.Fatalf("fallback metric = %+v", m)
	}
	// Degenerate runtime must not divide by zero.
	if v := app.MetricFor(0, 1); v.Value <= 0 {
		t.Fatal("zero runtime mishandled")
	}
}

func TestMetricFasterRuntimeHigherMetric(t *testing.T) {
	app, err := LULESH(OnOFP)
	if err != nil {
		t.Fatal(err)
	}
	slow := app.MetricFor(20*time.Second, 256)
	fast := app.MetricFor(10*time.Second, 256)
	if fast.Value <= slow.Value {
		t.Fatal("halving runtime must raise the figure of merit")
	}
	if math.Abs(fast.Value/slow.Value-2) > 1e-9 {
		t.Fatal("FOM must be inversely proportional to runtime")
	}
}

func TestRelativeFromMetrics(t *testing.T) {
	app, _ := LQCD(OnFugaku)
	linux := app.MetricFor(10*time.Second, 512)
	mck := app.MetricFor(8*time.Second, 512)
	rel, err := RelativeFromMetrics(linux, mck)
	if err != nil {
		t.Fatal(err)
	}
	// runtime ratio 10/8 = 1.25.
	if math.Abs(rel-1.25) > 1e-9 {
		t.Fatalf("relative = %v, want 1.25", rel)
	}
	// Incomparable metrics rejected.
	other, _ := GeoFEM(OnFugaku)
	if _, err := RelativeFromMetrics(linux, other.MetricFor(time.Second, 1)); err == nil {
		t.Fatal("cross-app metrics must be rejected")
	}
	if _, err := RelativeFromMetrics(Metric{Name: "x", Unit: "u"}, Metric{Name: "x", Unit: "u"}); err == nil {
		t.Fatal("zero-valued metric must be rejected")
	}
}
