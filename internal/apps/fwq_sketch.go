package apps

import (
	"time"

	"mkos/internal/noise"
	"mkos/internal/sim"
)

// FWQSketch is the memory-efficient FWQ result for one node: per-core noise
// analyses plus a compressed iteration distribution. Identical in content to
// RunFWQ's output but O(noise events) in space instead of O(iterations),
// enabling the machine-scale sweeps behind Figure 4.
type FWQSketch struct {
	Analysis noise.Analysis
	Dist     *noise.IterationDist
}

// RunFWQSketch executes the benchmark against a node's timeline without
// materializing clean iterations: it walks the interruption stream and only
// simulates the iterations an interruption lands in.
func RunFWQSketch(cfg FWQConfig, tl *noise.Timeline) (*FWQSketch, error) {
	if cfg.Work <= 0 || cfg.Duration <= 0 || len(cfg.Cores) == 0 {
		return nil, ErrBadFWQConfig
	}
	deadline := sim.Time(cfg.Duration)
	var clean int64
	var perturbed []time.Duration
	for _, core := range cfg.Cores {
		ivs := tl.ForCPU(core)
		t := sim.Time(0)
		idx := 0
		for t < deadline {
			// Skip interruptions that already ended (consumed by a cascade).
			for idx < len(ivs) && ivs[idx].End() <= t {
				idx++
			}
			if idx == len(ivs) || ivs[idx].Start >= deadline {
				// No more noise before the deadline: the rest are clean.
				clean += int64((deadline - t + sim.Time(cfg.Work) - 1) / sim.Time(cfg.Work))
				break
			}
			// Fast-forward over iterations that finish before the next
			// interruption starts.
			if gap := ivs[idx].Start.Sub(t); gap >= cfg.Work {
				k := int64(gap / cfg.Work)
				clean += k
				t = t.Add(time.Duration(k) * cfg.Work)
				continue
			}
			// This iteration overlaps noise: simulate it precisely
			// (Advance handles cascading interruptions).
			end := tl.Advance(core, t, cfg.Work)
			perturbed = append(perturbed, end.Sub(t))
			t = end
		}
	}
	iters := append([]time.Duration(nil), perturbed...)
	// Analysis needs Tmin; clean iterations all equal cfg.Work.
	if clean > 0 {
		iters = append(iters, cfg.Work)
	}
	a, err := noise.Analyze(iters)
	if err != nil {
		return nil, err
	}
	// Correct the rate for the clean iterations the analysis did not see:
	// Eq. 2 averages (Ti - Tmin)/Tmin over all n iterations.
	total := clean + int64(len(perturbed))
	if total > 0 {
		a.Rate = a.Rate * float64(len(iters)) / float64(total)
		a.N = int(total)
	}
	return &FWQSketch{
		Analysis: a,
		Dist:     noise.NewIterationDist(cfg.Work, clean, perturbed),
	}, nil
}

// FWQSketchAcrossNodes runs the sketch on n independent nodes with the same
// per-node RNG streams as FWQAcrossNodes.
func FWQSketchAcrossNodes(cfg FWQConfig, prof NoiseProfiler, nodes int, seed int64) ([]*FWQSketch, error) {
	if nodes <= 0 {
		return nil, ErrBadFWQConfig
	}
	p := prof.NoiseProfile()
	base := sim.NewRand(seed)
	out := make([]*FWQSketch, 0, nodes)
	for n := 0; n < nodes; n++ {
		tl := p.Timeline(cfg.Duration, base.Derive(int64(n)))
		sk, err := RunFWQSketch(cfg, tl)
		if err != nil {
			return nil, err
		}
		out = append(out, sk)
	}
	return out, nil
}
