// Package apps contains the benchmark and application workload models used
// in the paper's evaluation: the LLNL Fixed Work Quanta (FWQ) noise
// benchmark and proxies for the six applications (AMG2013, MILC, LULESH,
// LQCD, GeoFEM, GAMERA).
package apps

import (
	"context"
	"errors"
	"sort"
	"time"

	"mkos/internal/noise"
	"mkos/internal/sim"
)

// FWQConfig configures a Fixed Work Quanta run. FWQ performs a fixed amount
// of pure computation per loop iteration (no memory traffic, no I/O) and
// records each iteration's elapsed time; noise appears as iterations longer
// than the minimum (Sec. 6.2).
type FWQConfig struct {
	// Work is the target quantum. The paper uses ~6.5 ms, the largest value
	// below the 10 ms Linux timer period they could configure.
	Work time.Duration
	// Duration is how long the benchmark runs (the paper uses ~6-minute
	// runs, ten of them, for the full-scale profile).
	Duration time.Duration
	// Cores lists the CPUs measured; the MPI-extended version of the paper
	// measures all application cores simultaneously.
	Cores []int
}

// DefaultFWQ returns the paper's configuration for the given cores.
func DefaultFWQ(cores []int) FWQConfig {
	return FWQConfig{Work: 6500 * time.Microsecond, Duration: 6 * time.Minute, Cores: cores}
}

// ErrBadFWQConfig reports an unusable configuration.
var ErrBadFWQConfig = errors.New("apps: invalid FWQ configuration")

// FWQRun holds the per-core iteration times of one node's run.
type FWQRun struct {
	PerCore map[int][]time.Duration
}

// RunFWQ executes the benchmark against a node's interruption timeline.
func RunFWQ(cfg FWQConfig, tl *noise.Timeline) (*FWQRun, error) {
	if cfg.Work <= 0 || cfg.Duration <= 0 || len(cfg.Cores) == 0 {
		return nil, ErrBadFWQConfig
	}
	run := &FWQRun{PerCore: make(map[int][]time.Duration, len(cfg.Cores))}
	for _, core := range cfg.Cores {
		var iters []time.Duration
		t := sim.Time(0)
		deadline := sim.Time(cfg.Duration)
		for t < deadline {
			end := tl.Advance(core, t, cfg.Work)
			iters = append(iters, end.Sub(t))
			t = end
		}
		run.PerCore[core] = iters
	}
	return run, nil
}

// Analyze merges the run's per-core iteration streams into one analysis.
func (r *FWQRun) Analyze() (noise.Analysis, error) {
	var as []noise.Analysis
	for _, core := range sortedKeys(r.PerCore) {
		a, err := noise.Analyze(r.PerCore[core])
		if err != nil {
			return noise.Analysis{}, err
		}
		as = append(as, a)
	}
	return noise.Merge(as)
}

// AllIterations flattens every core's samples, for CDF construction.
func (r *FWQRun) AllIterations() []time.Duration {
	var out []time.Duration
	for _, core := range sortedKeys(r.PerCore) {
		out = append(out, r.PerCore[core]...)
	}
	return out
}

func sortedKeys(m map[int][]time.Duration) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// NoiseProfiler abstracts an OS model that can produce a node noise profile;
// both linux.Kernel and mckernel.Instance satisfy it.
type NoiseProfiler interface {
	NoiseProfile() *noise.Profile
}

// FWQAcrossNodes runs FWQ on n independent nodes of the same OS profile,
// deriving per-node RNG streams from the base seed (node subsets are stable
// per sim.Rand.Derive semantics). It returns one analysis per node.
func FWQAcrossNodes(cfg FWQConfig, prof NoiseProfiler, nodes int, seed int64) ([]noise.Analysis, []*FWQRun, error) {
	return FWQAcrossNodesContext(context.Background(), cfg, prof, nodes, seed)
}

// FWQAcrossNodesContext is FWQAcrossNodes with cooperative cancellation: the
// context is checked between nodes, and on cancellation the analyses of the
// nodes already simulated are returned alongside the context's error. Node n
// always sees the same derived RNG stream, so a canceled run's partial
// results are a prefix of the full run's.
func FWQAcrossNodesContext(ctx context.Context, cfg FWQConfig, prof NoiseProfiler, nodes int, seed int64) ([]noise.Analysis, []*FWQRun, error) {
	if nodes <= 0 {
		return nil, nil, ErrBadFWQConfig
	}
	p := prof.NoiseProfile()
	base := sim.NewRand(seed)
	analyses := make([]noise.Analysis, 0, nodes)
	runs := make([]*FWQRun, 0, nodes)
	for n := 0; n < nodes; n++ {
		if err := ctx.Err(); err != nil {
			return analyses, runs, err
		}
		tl := p.Timeline(cfg.Duration, base.Derive(int64(n)))
		run, err := RunFWQ(cfg, tl)
		if err != nil {
			return nil, nil, err
		}
		a, err := run.Analyze()
		if err != nil {
			return nil, nil, err
		}
		analyses = append(analyses, a)
		runs = append(runs, run)
	}
	return analyses, runs, nil
}
