package checks_test

import (
	"testing"

	"mkos/internal/lint/analysis"
	"mkos/internal/lint/checks"
	"mkos/internal/lint/linttest"
)

// Each corpus demonstrates at least one caught violation (want-comment)
// and one accepted suppression (//simlint:allow with no want).

func TestWalltime(t *testing.T) {
	linttest.Run(t, checks.Walltime, "testdata/walltime", "mkos/internal/fake/walltime")
}

// TestWalltimeOpsAllowlist loads the same kind of code under a cmd/
// path, where the host clock is legal: zero findings expected.
func TestWalltimeOpsAllowlist(t *testing.T) {
	linttest.Run(t, checks.Walltime, "testdata/walltime_ops", "mkos/cmd/fake")
}

func TestGlobalrand(t *testing.T) {
	linttest.Run(t, checks.Globalrand, "testdata/globalrand", "mkos/internal/fake/globalrand")
}

// TestGlobalrandSimPackage checks the one import exemption: a package
// path ending in internal/sim may wrap math/rand, but still may not
// draw from the global source.
func TestGlobalrandSimPackage(t *testing.T) {
	linttest.Run(t, checks.Globalrand, "testdata/globalrand_sim", "mkos/fake/internal/sim")
}

func TestMaporder(t *testing.T) {
	linttest.Run(t, checks.Maporder, "testdata/maporder", "mkos/internal/fake/maporder")
}

func TestSinkdiscipline(t *testing.T) {
	linttest.Run(t, checks.Sinkdiscipline, "testdata/sinkdiscipline", "mkos/internal/fake/sinkdiscipline")
}

func TestSimtime(t *testing.T) {
	linttest.Run(t, checks.Simtime, "testdata/simtime", "mkos/internal/fake/simtime")
}

func TestOpsbound(t *testing.T) {
	linttest.Run(t, checks.Opsbound, "testdata/opsbound", "mkos/internal/fake/opsbound")
}

// TestOpsboundOpsAllowlist loads the same import under a cmd/ path, where
// the flight recorder is legal: zero findings expected.
func TestOpsboundOpsAllowlist(t *testing.T) {
	linttest.Run(t, checks.Opsbound, "testdata/opsbound_ops", "mkos/cmd/fake")
}

// TestOpsboundCampaignsException checks the sweep carve-out: the
// internal/sweep prefix is ops-allowed, but internal/sweep/campaigns
// holds the deterministic trial units and stays bound.
func TestOpsboundCampaignsException(t *testing.T) {
	linttest.Run(t, checks.Opsbound, "testdata/opsbound_campaigns", "mkos/internal/sweep/campaigns")
}

// TestSuppressionHandling exercises the directive grammar and scoping
// against a real analyzer: missing reason fails, unknown check name
// fails, an own-line directive covers the complete next statement
// (however many lines it spans), and a trailing directive covers only
// its line.
func TestSuppressionHandling(t *testing.T) {
	linttest.Run(t, checks.Walltime, "testdata/suppress", "mkos/internal/fake/suppress")
}

func TestLockguard(t *testing.T) {
	linttest.Run(t, checks.Lockguard, "testdata/lockguard", "mkos/internal/fake/lockguard")
}

func TestCtxflow(t *testing.T) {
	linttest.Run(t, checks.Ctxflow, "testdata/ctxflow", "mkos/internal/fake/ctxflow")
}

// TestCtxflowFix checks the Background-to-parameter rewrite against its
// golden output.
func TestCtxflowFix(t *testing.T) {
	linttest.RunFix(t, checks.Ctxflow, "testdata/ctxflow_fix", "mkos/internal/fake/ctxflowfix")
}

// TestSimtimeFix checks the stale-capture-to-live-clock rewrite against
// its golden output; the handler that discards its engine parameter gets
// a finding but no fix.
func TestSimtimeFix(t *testing.T) {
	linttest.RunFix(t, checks.Simtime, "testdata/simtime_fix", "mkos/internal/fake/simtimefix")
}

func TestOpstaint(t *testing.T) {
	linttest.Run(t, checks.Opstaint, "testdata/opstaint", "mkos/internal/fake/opstaint")
}

// TestOpstaintCrossPackage loads the defining corpus and its importer
// through one loader, in dependency order: the taint fact exported for
// taintsrc.Elapsed is the only thing connecting the importer's Schedule
// argument to the host clock.
func TestOpstaintCrossPackage(t *testing.T) {
	linttest.RunDirs(t, []*analysis.Analyzer{checks.Opstaint},
		linttest.Dir{Path: "testdata/opstaint_src", PkgPath: "mkos/internal/simd/taintsrc"},
		linttest.Dir{Path: "testdata/opstaint_import", PkgPath: "mkos/internal/fake/importer"},
	)
}
