package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"mkos/internal/lint/analysis"
)

// Maporder flags order-sensitive work performed while ranging over a map.
//
// Go randomizes map iteration order per run, so any fold whose result
// depends on visit order — appending to a slice that is not subsequently
// sorted, building strings, writing output, publishing telemetry, or
// accumulating floating-point sums (float addition is not associative) —
// produces run-to-run differences. This is the analyzer that guards the
// byte-identical results.json/metrics.txt contract: the repo's idiom is
// the sorted-key fold (for _, k := range sortedKeys(m) { ... }), which
// ranges over a slice and is therefore never flagged. The one blessed
// in-map-range pattern is collecting keys (or values) into a slice that
// the same function then sorts — the canonical sortedKeys body itself.
//
// Order-insensitive work inside a map range is fine and not reported:
// integer accumulation, min/max tracking, writes into another map,
// membership tests, deletes.
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive folds over map iteration (appends, output, telemetry, " +
		"float sums) unless the keys are sorted first",
	Run: runMaporder,
}

func runMaporder(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Walk function by function so the sort-after-range exemption can
		// see the statements that follow the loop.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkMapRanges(pass, body)
			return true
		})
	}
	return nil
}

// checkMapRanges reports order-sensitive statements inside every
// map-range loop directly contained in fnBody (nested function literals
// are handled by their own walk).
func checkMapRanges(pass *analysis.Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(fnBody) {
			return false // their ranges get their own enclosing-function walk
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, fnBody, rs)
		return true
	})
}

func checkMapRangeBody(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, fnBody, rs, st)
		case *ast.CallExpr:
			checkCall(pass, rs, st)
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, st *ast.AssignStmt) {
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range st.Lhs {
			tv, ok := pass.TypesInfo.Types[lhs]
			if !ok || !outsideLoop(pass, lhs, rs) {
				continue
			}
			switch {
			case isFloat(tv.Type):
				pass.Reportf(st.Pos(),
					"floating-point accumulation (%s) while ranging over a map: float addition is "+
						"not associative, so the sum depends on iteration order — fold over sorted "+
						"keys instead (see telemetry sortedKeys idiom)", st.Tok)
			case isString(tv.Type) && st.Tok == token.ADD_ASSIGN:
				pass.Reportf(st.Pos(),
					"string concatenation while ranging over a map builds output in random "+
						"iteration order: range over sorted keys")
			}
		}
	case token.ASSIGN, token.DEFINE:
		// s = append(s, ...) collecting into an outer slice. Blessed when
		// the same function sorts the slice after the loop (the
		// sortedKeys idiom); order-dependent otherwise.
		for i, rhs := range st.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" ||
				pass.TypesInfo.Uses[id] != types.Universe.Lookup("append") {
				continue
			}
			if i >= len(st.Lhs) {
				continue
			}
			dst, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident)
			if !ok || !outsideLoop(pass, dst, rs) {
				continue
			}
			if sortedAfter(pass, fnBody, rs, dst) {
				continue
			}
			pass.Reportf(st.Pos(),
				"append to %s while ranging over a map accumulates in random iteration order: "+
					"sort %s after the loop, or range over sorted keys", dst.Name, dst.Name)
		}
	}
}

// outputMethods are the write methods of strings.Builder and
// bytes.Buffer: calling one inside a map range serializes in iteration
// order.
var outputMethods = map[string]bool{
	"WriteString": true, "WriteByte": true, "WriteRune": true, "Write": true,
}

// telemetryPublish names the telemetry calls that mutate a sink —
// reads like Counter.Value or Registry.Snapshot are order-free and
// legal inside a map range.
var telemetryPublish = map[string]bool{
	"C": true, "G": true, "H": true, "Span": true, "Instant": true,
	"Add": true, "Inc": true, "Set": true, "SetMax": true, "Observe": true,
	"MergeFrom": true, "AddSnapshot": true,
}

func checkCall(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	obj := calleeObj(pass.TypesInfo, call)
	if obj == nil {
		return
	}
	switch {
	case objPkgPath(obj) == "fmt" && !isMethod(obj) && obj.Name() != "Sprintf" &&
		obj.Name() != "Errorf" && obj.Name() != "Sprint" && obj.Name() != "Sprintln":
		pass.Reportf(call.Pos(),
			"fmt.%s inside a map range emits output in random iteration order: "+
				"range over sorted keys", obj.Name())
	case isMethod(obj) && outputMethods[obj.Name()] && builderReceiver(pass, call):
		pass.Reportf(call.Pos(),
			"%s on a builder inside a map range serializes in random iteration order: "+
				"range over sorted keys", obj.Name())
	case fromPkg(obj, "internal/telemetry") && telemetryPublish[obj.Name()]:
		pass.Reportf(call.Pos(),
			"telemetry call %s inside a map range publishes in random iteration order; "+
				"histogram sums fold floats in call order — range over sorted keys", obj.Name())
	}
}

// builderReceiver reports whether the method call's receiver is a
// strings.Builder, bytes.Buffer or an io.Writer-bearing type from the
// standard library output packages.
func builderReceiver(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	switch objPkgPath(obj) {
	case "strings", "bytes", "bufio":
		return true
	}
	return false
}

// outsideLoop reports whether expr is an identifier (or selector whose
// base is an identifier) declared outside the range statement — loop-
// local accumulators reset every iteration and cannot leak order.
func outsideLoop(pass *analysis.Pass, expr ast.Expr, rs *ast.RangeStmt) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return declaredOutside(pass.TypesInfo, e, rs)
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			return declaredOutside(pass.TypesInfo, base, rs)
		}
		return true // conservative: x.y.z += f is almost always outer state
	case *ast.IndexExpr:
		return outsideLoop(pass, e.X, rs)
	}
	return false
}

// sortedAfter reports whether ident (a slice accumulated inside rs) is
// passed to a sort or slices call in fnBody after the range statement —
// the collect-then-sort idiom that makes the fold order-free.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, dst *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[dst]
	if obj == nil {
		obj = pass.TypesInfo.Defs[dst]
	}
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		callee := calleeObj(pass.TypesInfo, call)
		switch objPkgPath(callee) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
