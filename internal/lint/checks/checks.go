// Package checks holds the nine simlint analyzers. Each one encodes a
// determinism or safety invariant of the simulator that the end-to-end
// double-run cmp gates can only witness after the fact; the analyzers
// catch the violation at the offending line instead. Six are per-file
// syntax-and-types checks; lockguard, ctxflow and opstaint use the
// framework's cross-package facts and dataflow. See
// internal/lint/README.md for the catalogue, example findings and the
// suppression syntax.
package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"mkos/internal/lint/analysis"
)

// All returns the full analyzer suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Walltime, Globalrand, Maporder, Sinkdiscipline, Simtime, Opsbound,
		Lockguard, Ctxflow, Opstaint,
	}
}

// opsPrefixes lists the package-path prefixes where wall-clock time and
// process-wide telemetry are legal: the sweep orchestrator's pool and
// progress machinery, CLI plumbing under cmd/, the runnable examples,
// and the lint tooling itself. Everything else in the module is
// trial-unit code bound by the determinism contract: with the same seed
// it must produce byte-identical artifacts at any -j, under shuffled
// trial order, and from warm or cold caches.
var opsPrefixes = []string{
	"mkos/internal/sweep",
	"mkos/internal/lint",
	"mkos/internal/simd",           // service plumbing: queues, latency histograms, drains
	"mkos/internal/fault/chaos",    // chaos injectors exist to perturb real time
	"mkos/internal/telemetry/ops",  // the wall-clock flight recorder itself
	"mkos/internal/shard/shardops", // barrier waits and window pacing are host observations; internal/shard itself stays bound
	"mkos/cmd",
	"mkos/examples",
}

// isOpsPackage reports whether path may touch wall-clock and process-
// wide operational state.
func isOpsPackage(path string) bool {
	for _, p := range opsPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// calleeObj resolves a call's callee to its types.Object: the function,
// method or builtin being invoked. Returns nil for indirect calls
// through non-ident expressions (closure results, map lookups).
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// objPkgPath returns the import path of the package defining obj, or ""
// for builtins and nil objects.
func objPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// fromPath reports whether pkgPath equals suffix or ends with
// "/"+suffix — the suffix form lets analyzer corpora exercise the real
// simulator packages under fake corpus import paths.
func fromPath(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// fromPkg reports whether obj is defined in a package whose import path
// matches suffix (see fromPath).
func fromPkg(obj types.Object, suffix string) bool {
	return fromPath(objPkgPath(obj), suffix)
}

// isMethod reports whether obj is a method (has a receiver).
func isMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// declaredOutside reports whether the identifier's object is declared
// outside the [from, to] node range — i.e. the loop body writes to state
// that survives the loop.
func declaredOutside(info *types.Info, id *ast.Ident, body ast.Node) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < body.Pos() || obj.Pos() > body.End()
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isString reports whether t's underlying type is a string kind.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
