package checks

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"mkos/internal/lint/analysis"
)

// Lockguard enforces "// guarded by <mu>" field annotations.
//
// The concurrent subsystems (the simd daemon, the shard runner's ops
// observer, the sweep pool) protect struct state with mutexes, and the
// discipline lives in comments: "st is the current wire status; guarded
// by Server.mu". Lockguard makes those comments binding. A field whose
// declaration carries a guarded-by annotation may only be read or
// written while the named mutex is held on the statement path — Lock()
// before, Unlock() not yet reached (a deferred Unlock holds to function
// end). This is exactly the class of bug the PR 8 review caught by hand:
// a campaign span ended after s.mu was released, making terminal state
// observable before the span landed in the trace.
//
// Two annotation forms:
//
//	mu sync.Mutex
//	backlog map[string][]*job // guarded by mu
//
// names a sibling field: an access s.backlog needs s.mu held (the base
// expressions must match). The qualified form
//
//	st Status // guarded by Server.mu
//
// names a mutex on another struct of the same package: the access needs
// any held mutex whose owner has that type — the idiom for satellite
// structs whose lifecycle a parent serializes.
//
// Conventions understood by the analyzer: a method whose name ends in
// "Locked" is called with its receiver's mutexes already held; values
// freshly built from a composite literal (or new) inside the current
// function are unshared and exempt; function literals start with no
// locks held (they may run anywhere).
var Lockguard = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "fields annotated \"// guarded by <mu>\" may only be accessed with that mutex " +
		"held on the statement path",
	Run: runLockguard,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)`)

// guard is one parsed field annotation.
type guard struct {
	mutex string // mutex field name ("mu")
	owner string // named struct type carrying the mutex ("" = sibling form)
}

// lockState tracks the mutexes held at a point in a function body.
type lockState struct {
	// bases maps "base.mutex" rendered source text ("s.mu", "q.mu") to
	// the named type of the base, for sibling matching.
	bases map[string]string
	// owners counts held mutexes per owning struct type name, for
	// qualified (Type.mu) matching.
	owners map[string]int
}

func newLockState() *lockState {
	return &lockState{bases: map[string]string{}, owners: map[string]int{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.bases {
		c.bases[k] = v
	}
	for k, v := range s.owners {
		c.owners[k] = v
	}
	return c
}

func (s *lockState) lock(base, mutex, owner string) {
	key := base + "." + mutex
	if _, held := s.bases[key]; !held {
		s.bases[key] = owner
		s.owners[owner]++
	}
}

func (s *lockState) unlock(base, mutex string) {
	key := base + "." + mutex
	owner, held := s.bases[key]
	if held {
		delete(s.bases, key)
		s.owners[owner]--
	}
}

func (s *lockState) holdsSibling(base, mutex string) bool {
	_, held := s.bases[base+"."+mutex]
	return held
}

func (s *lockState) holdsOwner(owner string) bool { return s.owners[owner] > 0 }

func runLockguard(pass *analysis.Pass) error {
	lg := &lockguardPass{
		pass:   pass,
		guards: map[*types.Var]guard{},
	}
	for _, f := range pass.Files {
		lg.collectGuards(f)
	}
	if len(lg.guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				lg.checkFunc(fd)
			}
		}
	}
	return nil
}

type lockguardPass struct {
	pass   *analysis.Pass
	guards map[*types.Var]guard
}

// collectGuards parses every guarded-by field annotation in f, validating
// that the named mutex exists: the sibling form must name a mutex field of
// the same struct, the qualified form a mutex field of the named package
// type. A dangling annotation is itself a finding — an unenforceable
// guard comment is documentation rot.
func (lg *lockguardPass) collectGuards(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			text := ""
			if field.Doc != nil {
				text = field.Doc.Text()
			}
			if field.Comment != nil {
				text += " " + field.Comment.Text()
			}
			m := guardedByRe.FindStringSubmatch(text)
			if m == nil {
				continue
			}
			g, bad := lg.resolveGuard(st, m[1])
			if bad != "" {
				lg.pass.Reportf(field.Pos(), "%s", bad)
				continue
			}
			for _, name := range field.Names {
				if v, ok := lg.pass.TypesInfo.Defs[name].(*types.Var); ok {
					lg.guards[v] = g
				}
			}
		}
		return true
	})
}

// resolveGuard validates the annotation target and normalizes it.
func (lg *lockguardPass) resolveGuard(st *ast.StructType, target string) (guard, string) {
	if owner, mutex, ok := strings.Cut(target, "."); ok {
		obj := lg.pass.Pkg.Scope().Lookup(owner)
		tn, isType := obj.(*types.TypeName)
		if !isType {
			return guard{}, "guarded-by annotation names unknown type \"" + owner +
				"\": the qualified form is <PackageType>.<mutexField>"
		}
		if !structHasMutexField(tn.Type(), mutex) {
			return guard{}, "guarded-by annotation names \"" + target +
				"\" but " + owner + " has no mutex field \"" + mutex + "\""
		}
		return guard{mutex: mutex, owner: owner}, ""
	}
	// Sibling form: the mutex must be a field of this same struct.
	for _, sib := range st.Fields.List {
		for _, name := range sib.Names {
			if name.Name == target && isMutexType(lg.pass.TypesInfo.TypeOf(sib.Type)) {
				return guard{mutex: target}, ""
			}
		}
		// Embedded sync.Mutex: the field name is the type name.
		if len(sib.Names) == 0 && target == "Mutex" && isMutexType(lg.pass.TypesInfo.TypeOf(sib.Type)) {
			return guard{mutex: target}, ""
		}
	}
	return guard{}, "guarded-by annotation names \"" + target +
		"\" but the struct has no mutex field of that name"
}

// structHasMutexField reports whether t (or *t) is a struct with a mutex
// field of the given name.
func structHasMutexField(t types.Type, name string) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		if f.Name() == name && isMutexType(f.Type()) {
			return true
		}
	}
	return false
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex or a pointer
// to one.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkFunc walks one function body tracking lock state along the
// statement path.
func (lg *lockguardPass) checkFunc(fd *ast.FuncDecl) {
	state := newLockState()
	fresh := lg.freshLocals(fd.Body)
	// A *Locked method is called with its receiver's mutexes held — every
	// mutex field of the receiver struct counts, under both match forms.
	if strings.HasSuffix(fd.Name.Name, "Locked") && fd.Recv != nil && len(fd.Recv.List) > 0 {
		recv := fd.Recv.List[0]
		if len(recv.Names) > 0 && recv.Names[0].Name != "_" {
			rt := lg.pass.TypesInfo.TypeOf(recv.Type)
			owner := namedTypeName(rt)
			for _, mu := range mutexFields(rt) {
				state.lock(recv.Names[0].Name, mu, owner)
			}
		}
	}
	lg.walkStmts(fd.Body.List, state, fresh)
}

// freshLocals collects objects assigned from composite literals or new()
// in body: values this function built itself and has not yet shared, so
// no lock can be required to touch them (every constructor would
// otherwise be a finding).
func (lg *lockguardPass) freshLocals(body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if !isFreshExpr(as.Rhs[i]) {
				continue
			}
			obj := lg.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = lg.pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

// isFreshExpr reports whether e constructs a brand-new value: a composite
// literal, &literal, or new(T).
func isFreshExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// walkStmts processes a statement list in order, mutating state as locks
// are taken and released and checking guarded accesses in every
// expression along the way. Bodies of branches and loops see a copy of
// the state — a lock taken inside a branch does not leak out — which
// keeps the analysis linear and errs toward reporting.
func (lg *lockguardPass) walkStmts(stmts []ast.Stmt, state *lockState, fresh map[types.Object]bool) {
	for _, st := range stmts {
		lg.walkStmt(st, state, fresh)
	}
}

func (lg *lockguardPass) walkStmt(st ast.Stmt, state *lockState, fresh map[types.Object]bool) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if lg.lockTransition(st.X, state) {
			return
		}
		lg.checkExpr(st.X, state, fresh)
	case *ast.DeferStmt:
		// defer mu.Unlock() releases at return: the mutex stays held for
		// the remainder of the walk. Other deferred calls are checked
		// like function literals — with no locks assumed.
		if isUnlockCall(lg.pass.TypesInfo, st.Call) {
			return
		}
		lg.checkExpr(st.Call, state, fresh)
	case *ast.GoStmt:
		lg.checkExpr(st.Call, state, fresh)
	case *ast.BlockStmt:
		lg.walkStmts(st.List, state, fresh)
	case *ast.LabeledStmt:
		lg.walkStmt(st.Stmt, state, fresh)
	case *ast.IfStmt:
		if st.Init != nil {
			lg.walkStmt(st.Init, state, fresh)
		}
		lg.checkExpr(st.Cond, state, fresh)
		lg.walkStmts(st.Body.List, state.clone(), fresh)
		if st.Else != nil {
			lg.walkStmt(st.Else, state.clone(), fresh)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			lg.walkStmt(st.Init, state, fresh)
		}
		if st.Cond != nil {
			lg.checkExpr(st.Cond, state, fresh)
		}
		body := state.clone()
		lg.walkStmts(st.Body.List, body, fresh)
		if st.Post != nil {
			lg.walkStmt(st.Post, body, fresh)
		}
	case *ast.RangeStmt:
		lg.checkExpr(st.X, state, fresh)
		lg.walkStmts(st.Body.List, state.clone(), fresh)
	case *ast.SwitchStmt:
		if st.Init != nil {
			lg.walkStmt(st.Init, state, fresh)
		}
		if st.Tag != nil {
			lg.checkExpr(st.Tag, state, fresh)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					lg.checkExpr(e, state, fresh)
				}
				lg.walkStmts(cc.Body, state.clone(), fresh)
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			lg.walkStmt(st.Init, state, fresh)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lg.walkStmts(cc.Body, state.clone(), fresh)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					lg.walkStmt(cc.Comm, state.clone(), fresh)
				}
				lg.walkStmts(cc.Body, state.clone(), fresh)
			}
		}
	default:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				lg.checkExpr(e, state, fresh)
				return false
			}
			return true
		})
	}
}

// lockTransition updates state for mu.Lock/RLock/Unlock/RUnlock calls,
// reporting whether e was one.
func (lg *lockguardPass) lockTransition(e ast.Expr, state *lockState) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	var locking bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locking = true
	case "Unlock", "RUnlock":
	default:
		return false
	}
	if !isMutexType(lg.pass.TypesInfo.TypeOf(sel.X)) {
		return false
	}
	base, mutex, owner := splitMutexExpr(lg.pass.TypesInfo, sel.X)
	if mutex == "" {
		return false
	}
	if locking {
		state.lock(base, mutex, owner)
	} else {
		state.unlock(base, mutex)
	}
	return true
}

// isUnlockCall reports whether call is mu.Unlock()/RUnlock() on a mutex.
func isUnlockCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return false
	}
	return isMutexType(info.TypeOf(sel.X))
}

// splitMutexExpr decomposes a mutex expression ("s.mu", "mu") into its
// base source text, the mutex field name, and the named type of the
// base (the mutex's owner).
func splitMutexExpr(info *types.Info, e ast.Expr) (base, mutex, owner string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return types.ExprString(e.X), e.Sel.Name, namedTypeName(info.TypeOf(e.X))
	case *ast.Ident:
		return "", e.Name, ""
	}
	return "", "", ""
}

// namedTypeName returns the name of t's named type, dereferencing one
// pointer level, or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// mutexFields lists the mutex-typed field names of t's struct type.
func mutexFields(t types.Type) []string {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < s.NumFields(); i++ {
		if isMutexType(s.Field(i).Type()) {
			out = append(out, s.Field(i).Name())
		}
	}
	return out
}

// checkExpr reports every guarded-field access in e performed without
// the required mutex. Function literals inside e are checked with a
// fresh, lock-free state: they may run on any goroutine at any time.
func (lg *lockguardPass) checkExpr(e ast.Expr, state *lockState, fresh map[types.Object]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lg.walkStmts(fl.Body.List, newLockState(), lg.freshLocals(fl.Body))
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := lg.pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		v, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		g, guarded := lg.guards[v]
		if !guarded {
			return true
		}
		if root := rootIdent(sel.X); root != nil {
			obj := lg.pass.TypesInfo.Uses[root]
			if obj != nil && fresh[obj] {
				return true
			}
		}
		if g.owner != "" {
			if state.holdsOwner(g.owner) {
				return true
			}
			lg.pass.Reportf(sel.Pos(),
				"field %s is guarded by %s.%s but no %s mutex is held here: "+
					"take the lock around this access or move it inside the guarded section",
				v.Name(), g.owner, g.mutex, g.owner)
			return true
		}
		base := types.ExprString(sel.X)
		if state.holdsSibling(base, g.mutex) {
			return true
		}
		lg.pass.Reportf(sel.Pos(),
			"field %s is guarded by %s but %s.%s is not held here: "+
				"take the lock around this access or move it inside the guarded section",
			v.Name(), g.mutex, base, g.mutex)
		return true
	})
}

// rootIdent returns the leftmost identifier of a selector chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}
