package checks

import (
	"go/ast"
	"strconv"

	"mkos/internal/lint/analysis"
)

// Globalrand forbids the process-global math/rand source and unseeded
// generators.
//
// Every random draw in the simulator flows through sim.Rand, which is
// seeded explicitly and derives stable per-node/per-core sub-streams
// (sim.Rand.Derive) — that is what makes a trial's inputs a pure
// function of (campaign seed, trial key). Top-level math/rand functions
// draw from a shared, racy, auto-seeded source: any call site changes
// every subsequent draw in the process, so adding a trial would perturb
// all others. The analyzer reports (1) importing math/rand anywhere but
// internal/sim (the sim.Rand implementation), (2) calling top-level
// math/rand draw functions in any package, and (3) rand.New whose source
// is not constructed inline from an explicit seed.
var Globalrand = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid top-level math/rand functions and unseeded rand.New; " +
		"all randomness must flow through sim.Rand",
	Run: runGlobalrand,
}

// randConstructors are the math/rand (and v2) functions legal inside
// internal/sim: they build a generator from an explicit seed rather than
// drawing from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func isRandPkg(path string) bool { return path == "math/rand" || path == "math/rand/v2" }

func runGlobalrand(pass *analysis.Pass) error {
	simPkg := fromPath(pass.Pkg.Path(), "internal/sim")
	for _, f := range pass.Files {
		if !simPkg {
			for _, imp := range f.Imports {
				if p, err := strconv.Unquote(imp.Path.Value); err == nil && isRandPkg(p) {
					pass.Reportf(imp.Pos(),
						"package %s imports %s: all randomness must flow through sim.Rand "+
							"(seeded, derivable sub-streams); only internal/sim may wrap math/rand",
						pass.Pkg.Path(), p)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(pass.TypesInfo, call)
			if !isRandPkg(objPkgPath(obj)) || isMethod(obj) {
				return true
			}
			switch {
			case !randConstructors[obj.Name()]:
				pass.Reportf(call.Pos(),
					"top-level rand.%s draws from the process-global math/rand source: "+
						"route randomness through sim.Rand so draws are a pure function of the seed",
					obj.Name())
			case obj.Name() == "New" && !seededSourceArg(pass, call):
				pass.Reportf(call.Pos(),
					"rand.New without an inline seeded source: construct the generator as "+
						"rand.New(rand.NewSource(seed)) so the seed is auditable at the callsite, "+
						"or use sim.NewRand",
				)
			}
			return true
		})
	}
	return nil
}

// seededSourceArg reports whether the first argument of a rand.New call
// is itself a direct seeded-source constructor call.
func seededSourceArg(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := calleeObj(pass.TypesInfo, inner)
	return isRandPkg(objPkgPath(obj)) && randConstructors[obj.Name()] && obj.Name() != "New"
}
