// Package suppress is the corpus for //simlint:allow directive
// handling: malformed directives are themselves findings, and a valid
// directive covers exactly the next statement (own-line) or its own
// line (trailing).
package suppress

import "time"

func missingReason() {
	//simlint:allow walltime // want "missing its reason"
	t := time.Now() // want "wall-clock time\\.Now"
	_ = t
}

func wrongCheckName() {
	//simlint:allow waltime — typo in the check name // want "unknown check \"waltime\""
	t := time.Now() // want "wall-clock time\\.Now"
	_ = t
}

func scopedToNextStatementOnly() {
	//simlint:allow walltime — corpus example: first statement is covered, second is not
	t0 := time.Now()
	t1 := time.Now() // want "wall-clock time\\.Now"
	_, _ = t0, t1
}

func trailingCoversItsLineOnly() {
	t0 := time.Now() //simlint:allow walltime — corpus example: trailing form covers this line
	t1 := time.Now() // want "wall-clock time\\.Now"
	_, _ = t0, t1
}
