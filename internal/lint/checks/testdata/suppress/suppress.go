// Package suppress is the corpus for //simlint:allow directive
// handling: malformed directives are themselves findings, and a valid
// directive covers exactly the next statement (own-line) or its own
// line (trailing).
package suppress

import "time"

func missingReason() {
	//simlint:allow walltime // want "missing its reason"
	t := time.Now() // want "wall-clock time\\.Now"
	_ = t
}

func wrongCheckName() {
	//simlint:allow waltime — typo in the check name // want "unknown check \"waltime\""
	t := time.Now() // want "wall-clock time\\.Now"
	_ = t
}

func scopedToNextStatementOnly() {
	//simlint:allow walltime — corpus example: first statement is covered, second is not
	t0 := time.Now()
	t1 := time.Now() // want "wall-clock time\\.Now"
	_, _ = t0, t1
}

func trailingCoversItsLineOnly() {
	t0 := time.Now() //simlint:allow walltime — corpus example: trailing form covers this line
	t1 := time.Now() // want "wall-clock time\\.Now"
	_, _ = t0, t1
}

// multiLineStatementFullyCovered pins the own-line scope to the complete
// statement: the directive sits above a call whose arguments span four
// lines, and every finding inside it — including one on the last line —
// is suppressed. The statement after it is not.
func multiLineStatementFullyCovered() {
	//simlint:allow walltime — corpus example: the whole multi-line statement is covered
	consume(
		time.Now(),
		time.Now(),
		time.Now())
	t := time.Now() // want "wall-clock time\\.Now"
	_ = t
}

// multiLineBlockFullyCovered does the same for a statement with a nested
// block: an if whose body spans lines.
func multiLineBlockFullyCovered(cond bool) {
	//simlint:allow walltime — corpus example: the directive covers the if statement and its body
	if cond {
		t := time.Now()
		_ = t
	}
	t := time.Now() // want "wall-clock time\\.Now"
	_ = t
}

func consume(a, b, c time.Time) {}
