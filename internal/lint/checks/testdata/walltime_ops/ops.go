// Package ops is the walltime analyzer's ops-side corpus: loaded under
// a cmd/ package path, where measuring the run with the host clock is
// the whole point — no findings.
package ops

import "time"

func Elapsed() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
