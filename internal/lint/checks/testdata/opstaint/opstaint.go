// Package opstaint is the opstaint analyzer corpus: wall-clock values
// laundered through locals, helpers and conversions on their way into
// the simulation, plus the flows that are fine (host values staying in
// host-side variables).
package opstaint

import (
	"time"

	"mkos/internal/sim"
	"mkos/internal/telemetry"
)

// elapsed launders a clock reading through a helper: its result is
// tainted, and the taint is visible to every caller.
func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

func badSchedule(e *sim.Engine) {
	d := elapsed(time.Now())
	e.Schedule(sim.Duration(d), "lag", func(e2 *sim.Engine) {}) // want "flows into sim\\.Engine\\.Schedule"
}

func badConversion() sim.Time {
	n := time.Now().UnixNano()
	return sim.Time(n) // want "converted to sim\\.Time"
}

func badTelemetry() {
	secs := elapsed(time.Now()).Seconds()
	telemetry.G("latency").Set(secs) // want "recorded in deterministic telemetry"
}

// goodHostSide keeps the host observation in host-side state: no sink,
// no finding (walltime polices the package boundary separately).
func goodHostSide() time.Duration {
	return elapsed(time.Now())
}

// goodSimTime derives event timing from simulated time only.
func goodSimTime(e *sim.Engine) {
	e.Schedule(10, "tick", func(e2 *sim.Engine) {})
}

func allowedReplay(e *sim.Engine) {
	w := elapsed(time.Time{})
	//simlint:allow opstaint — corpus example: replaying a recorded wall-clock trace into the simulation deliberately
	e.Schedule(sim.Duration(w), "replay", func(e2 *sim.Engine) {})
}
