// Package opsboundops is the opsbound allowlist corpus: the same import
// loaded under a cmd/ path, where the flight recorder is legal. Zero
// findings expected.
package opsboundops

import (
	"context"

	"mkos/internal/telemetry/ops"
)

func fine(ctx context.Context) {
	_, s := ops.Start(ctx, "cli-span")
	s.End()
}
