// Package sim is the globalrand corpus for the one package allowed to
// import math/rand: a path ending in internal/sim. The import is legal;
// drawing from the global source still is not.
package sim

import "math/rand"

// NewSeeded wraps the blessed construction: explicit seed at the callsite.
func NewSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func bad() int {
	return rand.Int() // want "top-level rand\\.Int draws from the process-global"
}
