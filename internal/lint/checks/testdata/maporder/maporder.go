// Package maporder is the maporder analyzer corpus: order-sensitive and
// order-free folds over map iteration, plus the blessed collect-then-
// sort and sorted-key idioms.
package maporder

import (
	"fmt"
	"sort"
	"strings"

	"mkos/internal/telemetry"
)

func badFloatFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation"
	}
	return sum
}

func badStringFold(m map[string]string) string {
	var out string
	for _, v := range m {
		out += v // want "string concatenation while ranging over a map"
	}
	return out
}

func badAppend(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v) // want "append to vals while ranging over a map"
	}
	return vals
}

func badOutput(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "fmt\\.Println inside a map range emits output"
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "WriteString on a builder inside a map range"
	}
	return b.String()
}

func badTelemetry(m map[string]float64) {
	h := telemetry.H("corpus.hist", nil)
	for _, v := range m {
		h.Observe(v) // want "telemetry call Observe inside a map range"
	}
}

// goodCollectThenSort is the canonical sortedKeys body: the append is
// order-dependent, the sort right after makes the result order-free.
func goodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodSortedKeyFold ranges over a slice, not the map — never flagged.
func goodSortedKeyFold(m map[string]float64) float64 {
	var sum float64
	for _, k := range goodCollectThenSort(intKeys(m)) {
		sum += m[k]
	}
	return sum
}

func intKeys(m map[string]float64) map[string]int {
	out := make(map[string]int, len(m))
	for k := range m {
		out[k] = len(k) // map-to-map writes are order-free
	}
	return out
}

// goodIntFold: integer addition commutes; the fold is order-free.
func goodIntFold(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

func allowedFold(m map[string]float64) float64 {
	var sum float64
	//simlint:allow maporder — corpus example: diagnostic-only estimate where bit-reproducibility is waived
	for _, v := range m {
		sum += v
	}
	return sum
}
