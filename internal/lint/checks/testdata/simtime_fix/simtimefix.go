// Package simtimefix is the simtime fix corpus: a handler using a stale
// pre-Schedule clock capture carries a suggested fix reading the live
// clock from its engine parameter instead.
package simtimefix

import "mkos/internal/sim"

func bad(e *sim.Engine) {
	t0 := e.Now()
	e.Schedule(10, "stale", func(e2 *sim.Engine) {
		use(t0) // want "captured before the Schedule call"
	})
}

// noParam discards the handler engine, so there is nothing to rewrite
// onto: finding, but no fix.
func noParam(e *sim.Engine) {
	t0 := e.Now()
	e.Schedule(10, "stale", func(_ *sim.Engine) {
		use(t0) // want "captured before the Schedule call"
	})
}

func use(t sim.Time) {}
