// Package sinkdiscipline is the sinkdiscipline analyzer corpus: a
// trial-unit (deterministic) package touching the sink-installation API
// it must not own.
package sinkdiscipline

import "mkos/internal/telemetry"

func bad() {
	telemetry.Reset()                         // want "telemetry\\.Reset in trial-unit package"
	telemetry.SetDefault(telemetry.NewSink()) // want "telemetry\\.SetDefault in trial-unit package"
	telemetry.RunWith(nil, func() {})         // want "telemetry\\.RunWith in trial-unit package"
}

// good: publishing through the goroutine-local helpers is exactly what
// trial-unit code should do.
func good() {
	telemetry.C("corpus.counter").Add(1)
	telemetry.G("corpus.gauge").Set(1)
}

func allowed() {
	//simlint:allow sinkdiscipline — corpus example: standalone harness that owns the process-wide sink
	telemetry.Reset()
}
