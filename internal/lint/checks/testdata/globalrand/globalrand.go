// Package globalrand is the globalrand analyzer corpus: a deterministic
// package (not internal/sim) that touches math/rand every forbidden way.
package globalrand

import "math/rand" // want "imports math/rand: all randomness must flow through sim\\.Rand"

func bad() {
	_ = rand.Intn(10)                  // want "top-level rand\\.Intn draws from the process-global"
	rand.Shuffle(2, func(i, j int) {}) // want "top-level rand\\.Shuffle draws from the process-global"
	src := rand.NewSource(42)
	_ = rand.New(src) // want "rand\\.New without an inline seeded source"
}

// seededInline: the constructor chain itself is legal (the import is
// what gets flagged in a non-sim package); method calls on a seeded
// generator draw no global state.
func seededInline() int {
	r := rand.New(rand.NewSource(7))
	return r.Intn(10)
}

func allowed() int64 {
	//simlint:allow globalrand — corpus example: demo fixture where reproducibility is not required
	return rand.Int63()
}
