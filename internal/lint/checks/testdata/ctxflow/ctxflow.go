// Package ctxflow is the ctxflow analyzer corpus: simulation drivers
// with and without a ctx parameter, the blessed X/XContext wrapper
// idiom, a stored context, and a minted Background.
package ctxflow

import (
	"context"

	"mkos/internal/sim"
)

func driveNoCtx(e *sim.Engine) {
	e.Run() // want "drives the simulation via Run but takes no context\\.Context"
}

func driveUntilNoCtx(e *sim.Engine) {
	e.RunUntil(100) // want "drives the simulation via RunUntil but takes no context\\.Context"
}

func driveCtx(ctx context.Context, e *sim.Engine) error {
	return e.Run()
}

// Drive and DriveContext are the blessed wrapper pair: the ctx-free
// convenience form is a single-statement delegation, so neither the
// Background call nor the delegation is a finding.
func Drive(e *sim.Engine) error {
	return DriveContext(context.Background(), e)
}

func DriveContext(ctx context.Context, e *sim.Engine) error {
	return e.Run()
}

func mint() context.Context {
	return context.Background() // want "minted outside package main"
}

type holder struct {
	ctx context.Context // want "struct field stores a context\\.Context"
}

// suppressedHolder pins the own-line directive's scope on a struct
// field: it covers exactly the field it sits above, not the rest of the
// struct.
type suppressedHolder struct {
	//simlint:allow ctxflow — corpus example: daemon-lifetime ctx, detached from any call tree by design
	runCtx context.Context
	other  context.Context // want "struct field stores a context\\.Context"
}

func allowedDrive(e *sim.Engine) {
	//simlint:allow ctxflow — corpus example: run-to-completion helper, cancellation arrives via the engine cancel hook
	e.Run()
}
