// Package walltime is the walltime analyzer corpus. It loads under a
// deterministic package path, so every host-clock read is a finding;
// pure time types and arithmetic are not.
package walltime

import "time"

const tick = 10 * time.Millisecond

func bad() time.Duration {
	t0 := time.Now()          // want "wall-clock time\\.Now in deterministic package"
	time.Sleep(tick)          // want "wall-clock time\\.Sleep in deterministic package"
	tm := time.NewTimer(tick) // want "wall-clock time\\.NewTimer in deterministic package"
	tm.Stop()
	return time.Since(t0) // want "wall-clock time\\.Since in deterministic package"
}

func allowedProfiling() time.Duration {
	//simlint:allow walltime — corpus example: host-side profiling read that never enters simulation state
	start := time.Now()
	//simlint:allow walltime — corpus example: profiling measurement, not simulation state
	return time.Since(start)
}

// good: time arithmetic on pure values carries no ambient clock state.
func good(d time.Duration) time.Duration {
	return d + tick
}

// engineWallDeadline mirrors the engine's last-resort runaway guard: a cancel
// hook that compares the host clock against a wall deadline. Both reads are
// host-side ops protection — the comparison aborts the run, its value never
// enters simulation state — so each carries a reasoned suppression.
func engineWallDeadline(d time.Duration, install func(func() bool)) {
	//simlint:allow walltime — host-side runaway guard: the deadline bounds the run, it never enters simulation state
	deadline := time.Now().Add(d)
	install(func() bool {
		//simlint:allow walltime — host-side runaway guard comparison; the result aborts the run, it never enters simulation state
		return time.Now().After(deadline)
	})
}

// badCancelHook is the same shape WITHOUT the suppressions: a cancel hook is
// still deterministic-package code, and an unjustified host-clock read inside
// one must be flagged like any other.
func badCancelHook(install func(func() bool)) {
	deadline := time.Now().Add(tick) // want "wall-clock time\\.Now in deterministic package"
	install(func() bool {
		return time.Now().After(deadline) // want "wall-clock time\\.Now in deterministic package"
	})
}
