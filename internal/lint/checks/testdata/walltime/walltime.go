// Package walltime is the walltime analyzer corpus. It loads under a
// deterministic package path, so every host-clock read is a finding;
// pure time types and arithmetic are not.
package walltime

import "time"

const tick = 10 * time.Millisecond

func bad() time.Duration {
	t0 := time.Now()          // want "wall-clock time\\.Now in deterministic package"
	time.Sleep(tick)          // want "wall-clock time\\.Sleep in deterministic package"
	tm := time.NewTimer(tick) // want "wall-clock time\\.NewTimer in deterministic package"
	tm.Stop()
	return time.Since(t0) // want "wall-clock time\\.Since in deterministic package"
}

func allowedProfiling() time.Duration {
	//simlint:allow walltime — corpus example: host-side profiling read that never enters simulation state
	start := time.Now()
	//simlint:allow walltime — corpus example: profiling measurement, not simulation state
	return time.Since(start)
}

// good: time arithmetic on pure values carries no ambient clock state.
func good(d time.Duration) time.Duration {
	return d + tick
}
