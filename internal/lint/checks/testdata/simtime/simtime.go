// Package simtime is the simtime analyzer corpus: handlers that treat a
// pre-Schedule clock reading as "now" versus the legitimate fresh-read
// and interval-marker patterns.
package simtime

import "mkos/internal/sim"

func bad(e *sim.Engine) {
	t0 := e.Now()
	e.Schedule(10, "stale", func(e2 *sim.Engine) {
		use(t0) // want "Now\\(\\) value captured before the Schedule call"
	})
}

// goodFresh reads the clock from the engine the handler receives.
func goodFresh(e *sim.Engine) {
	e.Schedule(10, "fresh", func(e2 *sim.Engine) {
		use(e2.Now())
	})
}

// goodSpan captures a deliberate interval start; the closure also reads
// the live clock, so the capture is a marker, not a stale "now".
func goodSpan(e *sim.Engine) {
	start := e.Now()
	e.Schedule(10, "span", func(e2 *sim.Engine) {
		_ = e2.Now().Sub(start)
	})
}

func allowed(e *sim.Engine) {
	t0 := e.Now()
	e.Schedule(10, "allowed", func(e2 *sim.Engine) {
		//simlint:allow simtime — corpus example: handler deliberately records its scheduling instant
		use(t0)
	})
}

func use(t sim.Time) {}
