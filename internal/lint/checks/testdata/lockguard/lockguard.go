// Package lockguard is the lockguard analyzer corpus: guarded-field
// annotations in both the sibling and the qualified form, accesses with
// and without the mutex held, and the conventions the analyzer
// understands (Locked-suffix methods, constructor-fresh values,
// lock-free closures).
package lockguard

import "sync"

type server struct {
	mu sync.Mutex
	// state is the mutable core; guarded by mu.
	state int
	done  bool // guarded by mu
}

func bad(s *server) {
	s.state++ // want "guarded by mu but s\\.mu is not held"
}

func good(s *server) {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
}

func goodDefer(s *server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = true
}

// badAfterUnlock is the span-end-before-unlock shape: the critical
// section ended one line too early.
func badAfterUnlock(s *server) {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
	s.done = true // want "guarded by mu but s\\.mu is not held"
}

// bumpLocked follows the *Locked naming convention: callers hold s.mu.
func (s *server) bumpLocked() {
	s.state++
}

// newServer touches guarded fields of a value it just built — unshared,
// so no lock is required.
func newServer() *server {
	s := &server{}
	s.state = 1
	return s
}

// badClosure takes the lock, but the goroutine body runs after the
// deferred unlock on whatever schedule the runtime picks.
func badClosure(s *server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.state++ // want "guarded by mu but s\\.mu is not held"
	}()
}

func allowed(s *server) {
	//simlint:allow lockguard — corpus example: single-writer init phase before the server is shared
	s.state = 7
}

// owner/campaign model the qualified form: a parent struct's mutex
// serializes a satellite struct's lifecycle.
type owner struct {
	mu    sync.Mutex
	camps map[string]*campaign
}

type campaign struct {
	name string // immutable after creation
	st   int    // guarded by owner.mu
}

func badQualified(c *campaign) {
	c.st = 2 // want "guarded by owner\\.mu but no owner mutex is held"
}

func goodQualified(o *owner, c *campaign) {
	o.mu.Lock()
	c.st = 3
	o.mu.Unlock()
}

// broken carries an unenforceable annotation: there is no such mutex.
type broken struct {
	v int // guarded by nonesuch // want "no mutex field of that name"
}
