// Package ctxflowfix is the ctxflow fix corpus: a Background minted in
// a function that already has a ctx parameter carries a suggested fix
// replacing the call with the parameter.
package ctxflowfix

import (
	"context"

	"mkos/internal/sim"
)

func relay(ctx context.Context, e *sim.Engine) error {
	return drive(context.Background(), e) // want "minted outside package main"
}

func drive(ctx context.Context, e *sim.Engine) error {
	return e.Run()
}
