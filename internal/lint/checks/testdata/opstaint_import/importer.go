// Package importer is the consuming half of the cross-package opstaint
// corpus: it never touches the time package itself, so only the taint
// fact exported for taintsrc.Elapsed can reveal that ms is a host-clock
// value.
package importer

import (
	"mkos/internal/sim"
	"mkos/internal/simd/taintsrc"
)

func bad(e *sim.Engine) {
	ms := taintsrc.Elapsed(taintsrc.Epoch())
	e.Schedule(sim.Duration(ms), "lag", func(e2 *sim.Engine) {}) // want "flows into sim\\.Engine\\.Schedule"
}
