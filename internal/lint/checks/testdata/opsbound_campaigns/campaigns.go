// Package campaigns is the opsbound sweep-exception corpus: loaded under
// the internal/sweep/campaigns path, which is inside the ops-allowed
// internal/sweep prefix but holds the deterministic trial units — the
// one subtree of an ops package the analyzer still binds.
package campaigns

import (
	"context"

	"mkos/internal/telemetry/ops" // want "import of mkos/internal/telemetry/ops in deterministic package"
)

func bad(ctx context.Context) {
	ops.Instant(ctx, "trial-unit-instant")
}
