// Package opsbound is the opsbound analyzer corpus: a trial-unit
// (deterministic) package importing the wall-clock flight recorder it
// must not see.
package opsbound

import (
	"context"

	"mkos/internal/telemetry/ops"           // want "import of mkos/internal/telemetry/ops in deterministic package"
	oplog "mkos/internal/telemetry/ops/log" // want "import of mkos/internal/telemetry/ops/log in deterministic package"
)

func bad(ctx context.Context) {
	_, s := ops.Start(ctx, "trial-unit-span")
	s.End()
	_ = oplog.ParseLevel
}
