package opsbound

import (
	"context"

	opstrace "mkos/internal/telemetry/ops" //simlint:allow opsbound — corpus example: migration shim audited to touch spans only behind a nil tracer
)

func allowed(ctx context.Context) {
	opstrace.Instant(ctx, "noop-without-tracer")
}
