// Package taintsrc is the defining half of the cross-package opstaint
// corpus: an ops-side helper whose results are wall-clock-derived. The
// analyzer exports a taint fact for Elapsed while analyzing this
// package; the importing corpus package sees the fact and flags the
// flow. No findings here — sources are legal, sinks are not.
package taintsrc

import "time"

// Elapsed returns host-clock milliseconds since start.
func Elapsed(start time.Time) int64 {
	return int64(time.Since(start) / time.Millisecond)
}

// Epoch is a fixed reference instant: not clock-derived, so callers can
// hold it without picking up taint.
func Epoch() time.Time {
	return time.Time{}
}
