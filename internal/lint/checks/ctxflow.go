package checks

import (
	"go/ast"
	"go/types"

	"mkos/internal/lint/analysis"
)

// Ctxflow enforces cancellation discipline around the long-running entry
// points: any function that drives a simulation — calling
// (*sim.Engine).Run / RunUntil / RunFor, sweep.Run / RunContext, or
// shard.Run / RunContext from outside their defining packages — must
// accept a context.Context so its caller can cancel it. Two companion
// rules close the usual escape hatches:
//
//   - storing a context.Context in a struct field is a finding: a stored
//     ctx outlives the call tree it was scoped to, which is exactly the
//     pre-dispatch cancel race the PR 8 review fixed by hand;
//   - calling context.Background() (or TODO()) outside package main is a
//     finding: depths of the call tree must thread the caller's ctx, not
//     mint an uncancellable fresh one. When the enclosing function has a
//     ctx parameter the diagnostic carries a suggested fix replacing the
//     Background() call with it.
//
// One idiom is blessed: the compatibility wrapper
//
//	func Run(c *Campaign, opts Options) (*Outcome, error) {
//		return RunContext(context.Background(), c, opts)
//	}
//
// a single-statement delegation from X to XContext. The wrapper is the
// documented seam between ctx-free convenience callers and the
// cancellable implementation, so neither rule fires inside it.
var Ctxflow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "functions driving Engine.Run*/sweep.RunContext/shard.Run must accept and thread " +
		"a context.Context; no ctx in struct fields, no context.Background() below main",
	Run: runCtxflow,
}

func runCtxflow(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				checkCtxFields(pass, d)
			case *ast.FuncDecl:
				checkCtxFunc(pass, d)
			}
		}
	}
	return nil
}

// checkCtxFields flags struct fields of type context.Context.
func checkCtxFields(pass *analysis.Pass, d *ast.GenDecl) {
	ast.Inspect(d, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			if isContextType(pass.TypesInfo.TypeOf(field.Type)) {
				pass.Reportf(field.Pos(),
					"struct field stores a context.Context: a stored ctx outlives the call "+
						"it was scoped to; pass ctx as a parameter down the call tree instead")
			}
		}
		return true
	})
}

// checkCtxFunc applies the driver and Background rules to one function
// declaration.
func checkCtxFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	if isBlessedWrapper(pass.TypesInfo, fd) {
		return
	}
	isMain := pass.Pkg.Name() == "main" && fd.Name.Name == "main" && fd.Recv == nil
	hasCtx, ctxName := ctxParam(pass.TypesInfo, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(pass.TypesInfo, call)
		if obj == nil {
			return true
		}
		// Rule: Background()/TODO() below main.
		if objPkgPath(obj) == "context" && (obj.Name() == "Background" || obj.Name() == "TODO") {
			if pass.Pkg.Name() != "main" {
				msg := "context." + obj.Name() + "() minted outside package main: thread the " +
					"caller's ctx down instead of starting a fresh uncancellable one"
				if hasCtx {
					pass.ReportfFix(call.Pos(), &analysis.SuggestedFix{
						Message: "replace context." + obj.Name() + "() with the " + ctxName + " parameter",
						Edits: []analysis.TextEdit{{
							Pos: call.Pos(), End: call.End(), NewText: ctxName,
						}},
					}, "%s", msg)
				} else {
					pass.Reportf(call.Pos(), "%s", msg)
				}
			}
			return true
		}
		// Rule: driving a simulation without a ctx parameter.
		if !hasCtx && !isMain && isDriverCall(pass, obj) {
			pass.Reportf(call.Pos(),
				"%s drives the simulation via %s but takes no context.Context: accept a ctx "+
					"parameter (or add a %sContext variant and make %s its blessed wrapper) so "+
					"callers can cancel",
				fd.Name.Name, obj.Name(), fd.Name.Name, fd.Name.Name)
		}
		return true
	})
}

// isDriverCall reports whether obj is one of the long-running entry
// points, defined outside the analyzed package (a package's own entry
// points may compose internally — RunFor delegating to RunUntil is not a
// contract violation).
func isDriverCall(pass *analysis.Pass, obj types.Object) bool {
	if obj.Pkg() == pass.Pkg {
		return false
	}
	switch {
	case fromPkg(obj, "internal/sim") && isMethod(obj):
		return obj.Name() == "Run" || obj.Name() == "RunUntil" || obj.Name() == "RunFor"
	case fromPkg(obj, "internal/sweep") && !isMethod(obj):
		return obj.Name() == "Run" || obj.Name() == "RunContext"
	case fromPkg(obj, "internal/shard") && !isMethod(obj):
		return obj.Name() == "Run" || obj.Name() == "RunContext"
	}
	return false
}

// ctxParam reports whether fd declares a context.Context parameter and
// returns its name.
func ctxParam(info *types.Info, fd *ast.FuncDecl) (bool, string) {
	if fd.Type.Params == nil {
		return false, ""
	}
	for _, p := range fd.Type.Params.List {
		if !isContextType(info.TypeOf(p.Type)) {
			continue
		}
		if len(p.Names) > 0 && p.Names[0].Name != "_" {
			return true, p.Names[0].Name
		}
		return true, "ctx"
	}
	return false, ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isBlessedWrapper recognizes the single-statement delegation
//
//	func X(a, b T) (R, error) { return XContext(context.Background(), a, b) }
//
// from X to its Context-suffixed sibling.
func isBlessedWrapper(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	callee := calleeObj(info, call)
	if callee == nil || callee.Name() != fd.Name.Name+"Context" {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	firstObj := calleeObj(info, first)
	return firstObj != nil && objPkgPath(firstObj) == "context" &&
		(firstObj.Name() == "Background" || firstObj.Name() == "TODO")
}
