package checks

import (
	"go/ast"
	"go/types"

	"mkos/internal/lint/analysis"
)

// Opstaint tracks wall-clock values through the call graph and flags the
// point where one reaches the simulation.
//
// Walltime and Opsbound police imports and direct calls: a deterministic
// package may not read the host clock or touch the flight recorder. What
// they cannot see is laundering — an ops-side helper that returns
// time.Since(start), stored in a config struct, handed to a trial unit,
// and finally passed to Engine.Schedule. The byte-identity gates catch
// that only when two runs happen to diverge; opstaint catches it at the
// offending argument. Taint is real dataflow, not an import check:
//
//   - sources: time.Now / Since / Until, anything returned by the
//     internal/telemetry/ops flight recorder, and any function carrying
//     an exported taint fact;
//   - propagation: through assignments, arithmetic, conversions, field
//     and method selections on tainted values, composite literals — and
//     across package boundaries via object facts exported for every
//     function whose results are clock-derived (ops packages export
//     facts too: they may read the clock, but what they return is still
//     tainted for their importers);
//   - sinks: arguments to sim.Engine.Schedule / ScheduleAt / Every,
//     conversions to sim.Time, and arguments to the deterministic
//     telemetry sinks (internal/telemetry, not its ops sibling).
//
// A sink is a finding in every package, ops-side included: the ops
// allowlist licenses *observing* the host, never feeding the host clock
// back into simulated time or the deterministic artifact stream.
var Opstaint = &analysis.Analyzer{
	Name: "opstaint",
	Doc: "wall-clock/ops-derived values must not flow into sim.Engine.Schedule arguments, " +
		"sim.Time conversions, or deterministic telemetry, in any package",
	Run: runOpstaint,
}

// taintedFact marks a function whose results derive from the host clock.
// Exported as an object fact so importing packages see through the call.
type taintedFact struct{}

func (*taintedFact) AFact() {}

func runOpstaint(pass *analysis.Pass) error {
	op := &opstaintPass{pass: pass, tainted: map[types.Object]bool{}}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Fixpoint over the package's functions: marking one function tainted
	// can make its intra-package callers tainted, so iterate to closure
	// before exporting facts and checking sinks.
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || op.tainted[fn] {
				continue
			}
			if op.returnsTainted(fd) {
				op.tainted[fn] = true
				pass.ExportObjectFact(fn, &taintedFact{})
				changed = true
			}
		}
	}
	for _, fd := range decls {
		op.checkSinks(fd)
	}
	return nil
}

type opstaintPass struct {
	pass    *analysis.Pass
	tainted map[types.Object]bool // this package's clock-derived functions
}

// localTaint computes the set of local objects holding clock-derived
// values in fd, iterating the assignment transfer function to a fixpoint
// (loops can carry taint backwards through the text).
func (op *opstaintPass) localTaint(fd *ast.FuncDecl) map[types.Object]bool {
	local := map[types.Object]bool{}
	mark := func(id *ast.Ident) bool {
		obj := op.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = op.pass.TypesInfo.Uses[id]
		}
		if obj == nil || local[obj] {
			return false
		}
		local[obj] = true
		return true
	}
	for i := 0; i < 8; i++ {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if !op.taintedExpr(rhs, local) {
							continue
						}
						if id, ok := n.Lhs[i].(*ast.Ident); ok && mark(id) {
							changed = true
						}
					}
					return true
				}
				// Tuple assignment from one multi-value source: any taint
				// contaminates every target.
				for _, rhs := range n.Rhs {
					if !op.taintedExpr(rhs, local) {
						continue
					}
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && mark(id) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if !op.taintedExpr(v, local) {
						continue
					}
					for _, id := range n.Names {
						if mark(id) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if op.taintedExpr(n.X, local) {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok && e != nil && mark(id) {
							changed = true
						}
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return local
}

// taintedExpr reports whether e evaluates to a clock-derived value given
// the local taint set.
func (op *opstaintPass) taintedExpr(e ast.Expr, local map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := op.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = op.pass.TypesInfo.Defs[e]
		}
		return obj != nil && local[obj]
	case *ast.CallExpr:
		// Conversion T(x): taint passes straight through.
		if tv, ok := op.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			return len(e.Args) == 1 && op.taintedExpr(e.Args[0], local)
		}
		obj := calleeObj(op.pass.TypesInfo, e)
		if obj != nil {
			if objPkgPath(obj) == "time" &&
				(obj.Name() == "Now" || obj.Name() == "Since" || obj.Name() == "Until") {
				return true
			}
			// Everything the flight recorder hands out is a host
			// observation.
			if p := objPkgPath(obj); p != "" && opsTelemetryImport(p) {
				return true
			}
			if op.tainted[obj] {
				return true
			}
			var fact taintedFact
			if op.pass.ImportObjectFact(obj, &fact) {
				return true
			}
		}
		// A method call on a tainted value stays tainted (t0.Sub(u),
		// t0.UnixNano()).
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			return op.taintedExpr(sel.X, local)
		}
		return false
	case *ast.SelectorExpr:
		return op.taintedExpr(e.X, local)
	case *ast.BinaryExpr:
		return op.taintedExpr(e.X, local) || op.taintedExpr(e.Y, local)
	case *ast.UnaryExpr:
		return op.taintedExpr(e.X, local)
	case *ast.StarExpr:
		return op.taintedExpr(e.X, local)
	case *ast.IndexExpr:
		return op.taintedExpr(e.X, local)
	case *ast.TypeAssertExpr:
		return op.taintedExpr(e.X, local)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if op.taintedExpr(el, local) {
				return true
			}
		}
	}
	return false
}

// returnsTainted reports whether any of fd's return values is
// clock-derived: an explicit tainted return expression, or a named
// result that the local taint set marks.
func (op *opstaintPass) returnsTainted(fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	local := op.localTaint(fd)
	for _, res := range fd.Type.Results.List {
		for _, name := range res.Names {
			if obj := op.pass.TypesInfo.Defs[name]; obj != nil && local[obj] {
				return true
			}
		}
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if op.taintedExpr(r, local) {
				found = true
			}
		}
		return true
	})
	return found
}

// checkSinks reports every clock-derived value reaching a sink in fd.
func (op *opstaintPass) checkSinks(fd *ast.FuncDecl) {
	local := op.localTaint(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Conversion to sim.Time manufactures simulated time from a host
		// value.
		if tv, ok := op.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			if isSimTime(tv.Type) && len(call.Args) == 1 && op.taintedExpr(call.Args[0], local) {
				op.pass.Reportf(call.Args[0].Pos(),
					"wall-clock-derived value converted to sim.Time: simulated time is defined "+
						"by the event loop, never by the host clock")
			}
			return true
		}
		obj := calleeObj(op.pass.TypesInfo, call)
		if obj == nil {
			return true
		}
		switch {
		case fromPkg(obj, "internal/sim") && isMethod(obj) &&
			(obj.Name() == "Schedule" || obj.Name() == "ScheduleAt" || obj.Name() == "Every"):
			for _, arg := range call.Args {
				if op.taintedExpr(arg, local) {
					op.pass.Reportf(arg.Pos(),
						"wall-clock-derived value flows into sim.Engine.%s: event timing must "+
							"derive from simulated time and seeded randomness only",
						obj.Name())
				}
			}
		case fromPkg(obj, "internal/telemetry") && op.deterministicSink(call, obj):
			// The deterministic sinks; the ops flight recorder lives at
			// internal/telemetry/ops and does not match this suffix, and
			// metric handles held in fields point at private ops
			// registries, which may hold host observations.
			for _, arg := range call.Args {
				if op.taintedExpr(arg, local) {
					op.pass.Reportf(arg.Pos(),
						"wall-clock-derived value recorded in deterministic telemetry via %s: "+
							"host observations belong in the ops flight recorder "+
							"(internal/telemetry/ops)",
						obj.Name())
				}
			}
		}
		return true
	})
}

// deterministicSink reports whether call publishes into the
// goroutine-local deterministic sink. Package-level telemetry functions
// (C, G, H, Span, Instant) always do; a metric method (Observe, Set,
// Add) does only when its receiver chain originates in one of those
// helpers — telemetry.G("x").Set(v) — because a handle held in a field
// typically points at a private ops registry (simd's submit latency,
// shardops' barrier waits), where host observations are the point.
func (op *opstaintPass) deterministicSink(call *ast.CallExpr, obj types.Object) bool {
	if !isMethod(obj) {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	for e := ast.Unparen(sel.X); ; {
		switch x := e.(type) {
		case *ast.CallExpr:
			if o := calleeObj(op.pass.TypesInfo, x); o != nil &&
				fromPkg(o, "internal/telemetry") && !isMethod(o) {
				return true
			}
			e = ast.Unparen(x.Fun)
		case *ast.SelectorExpr:
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		default:
			return false
		}
	}
}

// isSimTime reports whether t is the sim package's Time type.
func isSimTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil && fromPath(obj.Pkg().Path(), "internal/sim")
}
