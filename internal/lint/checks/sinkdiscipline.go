package checks

import (
	"go/ast"

	"mkos/internal/lint/analysis"
)

// Sinkdiscipline keeps trial-unit code on the goroutine-local telemetry
// sink.
//
// The sweep orchestrator isolates every trial by installing a private
// sink for the worker goroutine (telemetry.RunWith) and folding the
// per-trial snapshots in key order afterwards. That isolation holds only
// if the code running inside a trial publishes through the package-level
// helpers (telemetry.C/G/H/Span/Instant), which resolve to the
// goroutine-local sink. A trial-unit package that calls
// telemetry.SetDefault or telemetry.Reset swaps the process-wide sink
// under every concurrent trial, and one that nests telemetry.RunWith
// re-installs sinks the orchestrator owns — both bleed deterministic
// metrics into the ops registry (or vice versa) in completion order,
// which is exactly the nondeterminism the merge protocol exists to
// prevent. Sink installation belongs to the orchestrator (internal/
// sweep), to CLI plumbing under cmd/, and to tests (not linted).
var Sinkdiscipline = &analysis.Analyzer{
	Name: "sinkdiscipline",
	Doc: "trial-unit code must publish metrics through the goroutine-local sink; " +
		"installing or replacing sinks (SetDefault/Reset/RunWith) is orchestrator-only",
	Run: runSinkdiscipline,
}

// sinkInstallers are the telemetry functions that install or replace a
// sink rather than publish into the current one.
var sinkInstallers = map[string]bool{
	"SetDefault": true, "Reset": true, "RunWith": true,
}

func runSinkdiscipline(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	// The telemetry package implements the sink machinery; ops-side
	// packages own it.
	if isOpsPackage(path) || fromPath(path, "internal/telemetry") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(pass.TypesInfo, call)
			if obj == nil || isMethod(obj) || !fromPkg(obj, "internal/telemetry") ||
				!sinkInstallers[obj.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"telemetry.%s in trial-unit package %s: deterministic metrics must flow through "+
					"the goroutine-local sink the orchestrator installs (telemetry.RunWith in "+
					"internal/sweep); replacing sinks here breaks per-trial isolation and mixes "+
					"deterministic metrics with the ops registry",
				obj.Name(), path)
			return true
		})
	}
	return nil
}
