package checks

import (
	"go/ast"
	"go/types"

	"mkos/internal/lint/analysis"
)

// Simtime catches event handlers that treat a pre-Schedule clock reading
// as the current time.
//
// Between the call that schedules an event and the event firing, the
// simulated clock advances; a handler that closes over a variable
// assigned from e.Now() before Schedule and uses it as "now" computes
// with a stale instant. The correct pattern reads the clock from the
// engine the handler receives:
//
//	e.Schedule(d, "tick", func(e *sim.Engine) { use(e.Now()) })
//
// Capturing a pre-Schedule reading as a deliberate interval start is
// legitimate — span recording does exactly that — so a closure that also
// calls .Now() itself is taken to know the difference and is not
// flagged; only closures that use the stale capture as their sole time
// source are.
var Simtime = &analysis.Analyzer{
	Name: "simtime",
	Doc: "event handlers must take sim-time from the engine, not capture stale Now() " +
		"values across Schedule boundaries",
	Run: runSimtime,
}

// schedulers are the sim-package entry points that defer a handler to a
// later simulated instant.
var schedulers = map[string]bool{
	"Schedule": true, "ScheduleAt": true, "Every": true, "AfterFunc": true,
}

func runSimtime(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkScheduleCaptures(pass, fd.Body)
		}
	}
	return nil
}

func checkScheduleCaptures(pass *analysis.Pass, body *ast.BlockStmt) {
	// Map every locally-defined variable to its defining expression, so a
	// captured identifier can be traced back to an e.Now() reading.
	nowVars := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil && isEngineNowCall(pass, st.Rhs[i]) {
					nowVars[obj] = true
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) != len(st.Values) {
				return true
			}
			for i, id := range st.Names {
				if obj := pass.TypesInfo.Defs[id]; obj != nil && isEngineNowCall(pass, st.Values[i]) {
					nowVars[obj] = true
				}
			}
		}
		return true
	})
	if len(nowVars) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(pass.TypesInfo, call)
		if obj == nil || !fromPkg(obj, "internal/sim") || !schedulers[obj.Name()] {
			return true
		}
		for _, arg := range call.Args {
			fl, ok := ast.Unparen(arg).(*ast.FuncLit)
			if !ok {
				continue
			}
			reportStaleCaptures(pass, fl, nowVars)
		}
		return true
	})
}

func reportStaleCaptures(pass *analysis.Pass, fl *ast.FuncLit, nowVars map[types.Object]bool) {
	// A handler that reads the clock itself is using the capture as an
	// interval marker, not as "now".
	readsClock := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isNowCallExpr(pass, call) {
			readsClock = true
		}
		return !readsClock
	})
	if readsClock {
		return
	}
	engine := engineParamName(pass, fl)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !nowVars[obj] {
			return true
		}
		// Captured from outside the literal?
		if obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End() {
			return true
		}
		msg := "handler uses " + id.Name + ", a Now() value captured before the Schedule call: " +
			"by the time the event fires the clock has advanced — read the engine's clock " +
			"inside the handler (e.Now())"
		if engine == "" {
			pass.Reportf(id.Pos(), "%s", msg)
			return true
		}
		pass.ReportfFix(id.Pos(), &analysis.SuggestedFix{
			Message: "read the live clock: replace " + id.Name + " with " + engine + ".Now()",
			Edits: []analysis.TextEdit{{
				Pos: id.Pos(), End: id.End(), NewText: engine + ".Now()",
			}},
		}, "%s", msg)
		return true
	})
}

// engineParamName returns the name of fl's *sim.Engine parameter, or ""
// when the handler has none (or discards it) — only then is there a live
// clock to rewrite stale captures onto.
func engineParamName(pass *analysis.Pass, fl *ast.FuncLit) string {
	if fl.Type.Params == nil {
		return ""
	}
	for _, p := range fl.Type.Params.List {
		t := pass.TypesInfo.TypeOf(p.Type)
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Name() != "Engine" || named.Obj().Pkg() == nil ||
			!fromPath(named.Obj().Pkg().Path(), "internal/sim") {
			continue
		}
		if len(p.Names) > 0 && p.Names[0].Name != "_" {
			return p.Names[0].Name
		}
	}
	return ""
}

func isEngineNowCall(pass *analysis.Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	return ok && isNowCallExpr(pass, call)
}

// isNowCallExpr reports whether call invokes the sim engine's Now (or a
// sim-package clock accessor of the same name).
func isNowCallExpr(pass *analysis.Pass, call *ast.CallExpr) bool {
	obj := calleeObj(pass.TypesInfo, call)
	return obj != nil && obj.Name() == "Now" && fromPkg(obj, "internal/sim")
}
