package checks

import (
	"go/ast"

	"mkos/internal/lint/analysis"
)

// Walltime forbids reading the host clock in deterministic packages.
//
// The simulator's results derive exclusively from simulated time
// (sim.Engine.Now) and seeded randomness; a single time.Now() in a model
// package silently couples an artifact to the machine that produced it,
// which is exactly the class of bug the byte-identical double-run CI
// gates detect only after the fact. Wall clock is legal in ops-side code
// (internal/sweep pool/progress, cmd/* CLI plumbing, examples) where it
// measures the run, never the model. Deliberate host-side profiling in a
// deterministic package — the engine's per-handler wall-time observer —
// carries a //simlint:allow walltime suppression with its reason.
var Walltime = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid time.Now/Since/Sleep and timer construction in deterministic packages; " +
		"simulated time must come from the engine",
	Run: runWalltime,
}

// walltimeForbidden names the time-package functions that read or wait on
// the host clock. Pure types and constructors (time.Duration,
// time.Unix) are fine: they carry no ambient state.
var walltimeForbidden = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runWalltime(pass *analysis.Pass) error {
	if isOpsPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(pass.TypesInfo, call)
			if objPkgPath(obj) != "time" || isMethod(obj) || !walltimeForbidden[obj.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"wall-clock time.%s in deterministic package %s: simulated time must come from "+
					"the engine (sim.Engine.Now, sim.Timer); wall clock is legal only in ops-side "+
					"packages (internal/sweep, cmd/*)",
				obj.Name(), pass.Pkg.Path())
			return true
		})
	}
	return nil
}
