package checks

import (
	"strconv"
	"strings"

	"mkos/internal/lint/analysis"
)

// Opsbound keeps the wall-clock flight recorder out of deterministic code.
//
// internal/telemetry/ops is the ops-side observability surface: spans
// stamped with time.Now, a Prometheus exposition of process-lifetime
// counters, and a structured logger. All of it is legitimately
// nondeterministic — which is exactly why no trial-unit package may touch
// it. A deterministic package that records ops spans (or logs through
// oplog) couples artifact-producing code to the host clock and to
// process-wide mutable state; the byte-identity gates would still pass,
// because the contamination lands in a side channel, and that is the
// worst kind of drift: invisible until someone keys a decision off it.
// Deterministic code records through internal/telemetry (sim-time sinks,
// merged in key order); the orchestrator, daemon and CLIs own the ops
// tracer and propagate it via context so instrumentation never leaks
// downward. Note the sweep exception: internal/sweep is ops-side plumbing
// and may import ops, but internal/sweep/campaigns holds the trial units
// themselves and stays bound.
var Opsbound = &analysis.Analyzer{
	Name: "opsbound",
	Doc: "deterministic packages must not import internal/telemetry/ops; " +
		"the wall-clock flight recorder belongs to orchestrator, daemon and CLI plumbing",
	Run: runOpsbound,
}

// opsTelemetryImport reports whether path names internal/telemetry/ops or
// one of its subpackages (the structured logger lives at ops/log).
func opsTelemetryImport(path string) bool {
	const root = "internal/telemetry/ops"
	if fromPath(path, root) {
		return true
	}
	return strings.Contains(path, "/"+root+"/") || strings.HasPrefix(path, root+"/")
}

func runOpsbound(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	// Ops-side packages own the flight recorder — except the campaign
	// specs under internal/sweep, which are trial units and stay
	// deterministic even though their parent package is ops plumbing.
	if isOpsPackage(path) && !fromPath(path, "internal/sweep/campaigns") {
		return nil
	}
	// The ops package and its subpackages import each other freely.
	if opsTelemetryImport(path) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !opsTelemetryImport(p) {
				continue
			}
			pass.Reportf(imp.Pos(),
				"import of %s in deterministic package %s: the ops flight recorder is "+
					"wall-clock, process-wide state; deterministic code records through "+
					"internal/telemetry, and ops spans are propagated by the orchestrator "+
					"via context (ops.Start is a no-op without an attached tracer)",
				p, path)
		}
	}
	return nil
}
