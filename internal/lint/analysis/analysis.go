// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, shaped API-for-API so the simlint
// analyzers read exactly like upstream go/analysis passes and can be
// ported onto the real multichecker with a one-line import change.
//
// Why not the real thing: this repository builds with zero external
// module dependencies (the determinism CI runs fully offline), and
// x/tools is not vendored. Everything the simlint analyzers need —
// parsed files, full go/types information, position reporting — is
// available from the standard library: go/parser for syntax,
// go/importer's source importer for type-checking module-local imports
// without export data, and go/token for positions. See
// internal/lint/README.md for the analyzer catalogue.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. The shape mirrors
// x/tools/go/analysis.Analyzer minus the Requires/ResultOf plumbing,
// which simlint's five independent syntax+types passes do not need.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -checks filters and
	// //simlint:allow suppressions. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph invariant statement printed by -help.
	Doc string
	// Run executes the analyzer over one package and reports findings
	// through the pass. A non-nil error aborts the whole simlint run
	// (exit 2), so analyzers reserve it for internal invariant failures,
	// never for findings.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token.Pos values in Files to file:line:column.
	Fset *token.FileSet
	// Files is the package's parsed syntax, test files excluded.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds Uses/Defs/Types/Selections for Files.
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:    p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a concrete source position.
type Diagnostic struct {
	// Check is the reporting analyzer's name ("simlint" for diagnostics
	// produced by the driver itself, e.g. malformed allow directives).
	Check string
	// Pos is the raw token position within the run's FileSet.
	Pos token.Pos
	// Position is Pos resolved to file, line and column.
	Position token.Position
	// Message states the violated invariant.
	Message string
}

// String renders the go-vet-style "file:line:col: [check] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Check, d.Message)
}
