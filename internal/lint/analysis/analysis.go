// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, shaped API-for-API so the simlint
// analyzers read exactly like upstream go/analysis passes and can be
// ported onto the real multichecker with a one-line import change.
//
// Why not the real thing: this repository builds with zero external
// module dependencies (the determinism CI runs fully offline), and
// x/tools is not vendored. Everything the simlint analyzers need —
// parsed files, full go/types information, position reporting — is
// available from the standard library: go/parser for syntax,
// go/importer's source importer for type-checking module-local imports
// without export data, and go/token for positions. See
// internal/lint/README.md for the analyzer catalogue.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. The shape mirrors
// x/tools/go/analysis.Analyzer minus the Requires/ResultOf plumbing,
// which simlint's independent passes do not need. Cross-package state
// flows through facts instead: a pass attaches facts to objects or to
// its package, and passes over importing packages read them back.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -checks filters and
	// //simlint:allow suppressions. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph invariant statement printed by -help.
	Doc string
	// Run executes the analyzer over one package and reports findings
	// through the pass. A non-nil error aborts the whole simlint run
	// (exit 2), so analyzers reserve it for internal invariant failures,
	// never for findings.
	Run func(*Pass) error
}

// Fact is a piece of analyzer-scoped information attached to an object
// or a package and visible to later passes of the same analyzer over
// importing packages. Implementations are pointer types; AFact is a
// marker with no behavior, exactly as in x/tools/go/analysis.
type Fact interface{ AFact() }

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token.Pos values in Files to file:line:column.
	Fset *token.FileSet
	// Files is the package's parsed syntax, test files excluded.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds Uses/Defs/Types/Selections for Files.
	TypesInfo *types.Info

	diags *[]Diagnostic
	facts *factStore
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:    p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportfFix records a finding at pos carrying a machine-applicable
// suggested fix. simlint -fix applies the fix's edits textually.
func (p *Pass) ReportfFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:    p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// ExportObjectFact attaches fact to obj for later passes of the same
// analyzer. The fact must be a pointer; obj must not be nil.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.facts.exportObject(p.Analyzer, obj, fact)
}

// ImportObjectFact copies the fact of ptr's concrete type previously
// exported for obj (by any package's pass of this analyzer) into ptr,
// reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	return p.facts.importObject(p.Analyzer, obj, ptr)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.exportPackage(p.Analyzer, p.Pkg, fact)
}

// ImportPackageFact copies the fact of ptr's concrete type previously
// exported for pkg into ptr, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	return p.facts.importPackage(p.Analyzer, pkg, ptr)
}

// TextEdit replaces the source range [Pos, End) with NewText. End may
// equal Pos for a pure insertion.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// SuggestedFix is a machine-applicable repair for one diagnostic: a set
// of non-overlapping text edits within the diagnosed package's files.
// simlint -fix applies every suggested fix textually and verifies the
// result is a fixpoint (a second run proposes no further edits).
type SuggestedFix struct {
	// Message says what applying the fix does, imperative mood
	// ("replace the stale capture with e.Now()").
	Message string
	Edits   []TextEdit
}

// Diagnostic is one finding, resolved to a concrete source position.
type Diagnostic struct {
	// Check is the reporting analyzer's name ("simlint" for diagnostics
	// produced by the driver itself, e.g. malformed allow directives).
	Check string
	// Pos is the raw token position within the run's FileSet.
	Pos token.Pos
	// Position is Pos resolved to file, line and column.
	Position token.Position
	// Message states the violated invariant.
	Message string
	// Fix, when non-nil, is a machine-applicable repair (simlint -fix).
	Fix *SuggestedFix
}

// String renders the go-vet-style "file:line:col: [check] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Check, d.Message)
}
