package analysis_test

import (
	"bytes"
	"go/ast"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mkos/internal/lint/analysis"
)

// fake flags every call to a function literally named "flagme" — enough
// surface to pin down suppression semantics without a real invariant.
var fake = &analysis.Analyzer{
	Name: "fake",
	Doc:  "flags calls to flagme",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagme" {
					pass.Reportf(call.Pos(), "flagme called")
				}
				return true
			})
		}
		return nil
	},
}

const suppressionSrc = `package p

func flagme() {}

func plain() {
	flagme() // line 6: reported
}

func covered() {
	//simlint:allow fake — first statement is covered
	flagme()
	flagme() // line 12: scope ended, reported
}

func emptyReason() {
	//simlint:allow fake —
	flagme() // line 17: not suppressed, directive malformed
}

func doubleDash() {
	//simlint:allow fake -- ascii double-dash reason form
	flagme()
}

func unknownCheck() {
	//simlint:allow nosuchcheck — reason present
	flagme() // line 27: not suppressed, check name invalid
}
`

func loadSrc(t *testing.T, src string) *analysis.Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir(dir, "fake/p")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestSuppressionSemantics(t *testing.T) {
	pkg := loadSrc(t, suppressionSrc)
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{fake})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Check+"@"+strconv.Itoa(d.Position.Line))
	}
	want := []string{
		"fake@6",     // plain call
		"fake@12",    // second statement after an own-line directive
		"simlint@16", // empty reason is malformed
		"fake@17",    // ...and does not suppress
		"simlint@26", // unknown check name is malformed
		"fake@27",    // ...and does not suppress
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("diagnostics:\n got %v\nwant %v", got, want)
	}
	for _, d := range diags {
		if d.Check != "simlint" {
			continue
		}
		if !strings.Contains(d.Message, "reason") && !strings.Contains(d.Message, "unknown check") {
			t.Errorf("simlint diagnostic lacks a grammar hint: %s", d.Message)
		}
	}
}

func TestRunSortsAndEncodesJSON(t *testing.T) {
	pkg := loadSrc(t, suppressionSrc)
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{fake})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(diags); i++ {
		if diags[i].Position.Line < diags[i-1].Position.Line {
			t.Errorf("diagnostics out of order: line %d before %d",
				diags[i-1].Position.Line, diags[i].Position.Line)
		}
	}
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, diags, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"findings"`) || !strings.Contains(buf.String(), `"check": "fake"`) {
		t.Errorf("JSON output missing expected fields:\n%s", buf.String())
	}
	buf.Reset()
	if err := analysis.WriteJSON(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Errorf("empty run must emit an empty findings array, got:\n%s", buf.String())
	}
}
