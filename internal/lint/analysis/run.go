package analysis

import (
	"encoding/json"
	"io"
	"sort"
)

// Run executes every analyzer over every package in dependency order
// (imported packages first, so facts a pass exports while analyzing a
// defining package are visible to the passes over its importers),
// applies each package's //simlint:allow suppressions, and returns the
// surviving diagnostics sorted by (file, line, column, check, message)
// — the order is part of the determinism contract simlint itself
// enforces, so its own output is byte-stable across runs and -j levels
// of the caller.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	facts := newFactStore()
	var all []Diagnostic
	for _, pkg := range dependencyOrder(pkgs) {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
				facts:     facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
		all = append(all, applySuppressions(pkg, diags, known)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return all, nil
}

// dependencyOrder returns pkgs with every package after the packages it
// imports (restricted to the given set). The input order breaks ties,
// so the result is deterministic for the loader's sorted walks.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	out := make([]*Package, 0, len(pkgs))
	seen := make(map[string]bool, len(pkgs))
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p.PkgPath] {
			return
		}
		seen[p.PkgPath] = true
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// jsonFinding is the machine-readable form of one diagnostic, consumed
// by the CI annotation step. Field order is part of the output contract
// (pinned by a golden test): check, file, line, col, message, then the
// optional fix block.
type jsonFinding struct {
	Check   string   `json:"check"`
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Col     int      `json:"col"`
	Message string   `json:"message"`
	Fix     *jsonFix `json:"fix,omitempty"`
}

// jsonFix summarizes a diagnostic's suggested fix: what applying it
// does, how many text edits it takes, and — under -fix — whether the
// run applied it.
type jsonFix struct {
	Message string `json:"message"`
	Edits   int    `json:"edits"`
	Applied bool   `json:"applied"`
}

// WriteJSON emits the diagnostics as a single JSON document:
// {"findings": [...]} with findings in the Run sort order. An empty run
// emits an empty (non-null) findings array so consumers can index
// unconditionally. applied, when non-nil, parallels diags and marks the
// findings whose fix the caller wrote to disk (FixResult.AppliedDiag
// under simlint -fix); nil means nothing was applied.
func WriteJSON(w io.Writer, diags []Diagnostic, applied []bool) error {
	findings := make([]jsonFinding, 0, len(diags))
	for i, d := range diags {
		f := jsonFinding{
			Check:   d.Check,
			File:    d.Position.Filename,
			Line:    d.Position.Line,
			Col:     d.Position.Column,
			Message: d.Message,
		}
		if d.Fix != nil {
			f.Fix = &jsonFix{
				Message: d.Fix.Message,
				Edits:   len(d.Fix.Edits),
				Applied: applied != nil && applied[i],
			}
		}
		findings = append(findings, f)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Findings []jsonFinding `json:"findings"`
	}{findings})
}
