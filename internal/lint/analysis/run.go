package analysis

import (
	"encoding/json"
	"io"
	"sort"
)

// Run executes every analyzer over every package, applies each package's
// //simlint:allow suppressions, and returns the surviving diagnostics
// sorted by (file, line, column, check, message) — the order is part of
// the determinism contract simlint itself enforces, so its own output is
// byte-stable across runs and -j levels of the caller.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
		all = append(all, applySuppressions(pkg, diags, known)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return all, nil
}

// jsonFinding is the machine-readable form of one diagnostic, consumed by
// the CI annotation step.
type jsonFinding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// WriteJSON emits the diagnostics as a single JSON document:
// {"findings": [...]} with findings in the Run sort order. An empty run
// emits an empty (non-null) findings array so consumers can index
// unconditionally.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			Check:   d.Check,
			File:    d.Position.Filename,
			Line:    d.Position.Line,
			Col:     d.Position.Column,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Findings []jsonFinding `json:"findings"`
	}{findings})
}
