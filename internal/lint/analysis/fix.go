package analysis

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// FixResult is the outcome of ApplyFixes: the full new content of every
// file at least one edit landed in, plus counts for the summary line.
type FixResult struct {
	// Files maps filename to rewritten content.
	Files map[string][]byte
	// Applied counts diagnostics whose fix was applied in full.
	Applied int
	// Skipped counts diagnostics whose fix was dropped because one of
	// its edits overlapped an already-accepted edit. Deterministic:
	// diagnostics are considered in Run's sort order, first writer wins.
	Skipped int
	// AppliedDiag parallels the input diagnostics: AppliedDiag[i] is true
	// iff diags[i]'s fix was applied. Feed it to WriteJSON so the report
	// says exactly which findings the run rewrote.
	AppliedDiag []bool
}

// edit is one accepted text edit resolved to file offsets.
type edit struct {
	start, end int
	newText    string
}

// ApplyFixes resolves every diagnostic's suggested fix to file offsets
// and splices the edits into the sources, entirely in memory. Callers
// decide what to do with the rewritten bytes (simlint -fix writes them
// back; the fix-golden corpus runner compares them). Diagnostics
// without a fix are ignored.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) (*FixResult, error) {
	accepted := map[string][]edit{} // filename -> non-overlapping edits
	res := &FixResult{Files: map[string][]byte{}, AppliedDiag: make([]bool, len(diags))}
	for i, d := range diags {
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			continue
		}
		resolved := make(map[string][]edit)
		ok := true
		for _, te := range d.Fix.Edits {
			if !te.Pos.IsValid() || te.End < te.Pos {
				return nil, fmt.Errorf("lint: [%s] %s: invalid edit range", d.Check, d.Fix.Message)
			}
			pos, end := fset.Position(te.Pos), fset.Position(te.End)
			if end.Filename != pos.Filename {
				return nil, fmt.Errorf("lint: [%s] %s: edit spans files", d.Check, d.Fix.Message)
			}
			e := edit{start: pos.Offset, end: end.Offset, newText: te.NewText}
			if overlaps(accepted[pos.Filename], e) || overlaps(resolved[pos.Filename], e) {
				ok = false
				break
			}
			resolved[pos.Filename] = append(resolved[pos.Filename], e)
		}
		if !ok {
			res.Skipped++
			continue
		}
		for f, es := range resolved {
			accepted[f] = append(accepted[f], es...)
		}
		res.Applied++
		res.AppliedDiag[i] = true
	}
	for filename, edits := range accepted {
		content, err := os.ReadFile(filename)
		if err != nil {
			return nil, fmt.Errorf("lint: applying fixes: %w", err)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		var out []byte
		last := 0
		for _, e := range edits {
			if e.start < last || e.end > len(content) {
				return nil, fmt.Errorf("lint: applying fixes to %s: edit out of range", filename)
			}
			out = append(out, content[last:e.start]...)
			out = append(out, e.newText...)
			last = e.end
		}
		out = append(out, content[last:]...)
		res.Files[filename] = out
	}
	return res, nil
}

// overlaps reports whether e intersects any accepted edit. Two pure
// insertions at the same offset do overlap — their order would be
// ambiguous, and ambiguity is nondeterminism.
func overlaps(es []edit, e edit) bool {
	for _, o := range es {
		if e.start < o.end && o.start < e.end {
			return true
		}
		if e.start == o.start && e.start == e.end && o.start == o.end {
			return true
		}
	}
	return false
}
