package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the package's import path. For module packages it is the
	// real path ("mkos/internal/noise"); corpus loads pick their own.
	PkgPath string
	// Dir is the directory the files came from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages. One Loader shares a FileSet
// across every package it loads, and it is itself the importer for
// module-local (and registered corpus) import paths: each such package
// is parsed and type-checked exactly once, and every importer sees the
// same *types.Package. That identity is what makes cross-package facts
// sound — an object fact exported while analyzing the defining package
// is found again when an importing package's pass resolves the same
// types.Object. Stdlib and other external paths fall through to the
// go/importer source importer.
type Loader struct {
	Fset *token.FileSet
	// IncludeTests makes the loader keep _test.go files. simlint ships
	// with it off: the determinism contract binds shipped simulation
	// code, while tests legitimately reset process-wide sinks and
	// measure wall time.
	IncludeTests bool

	std  types.Importer      // stdlib / out-of-module fallthrough
	pkgs map[string]*Package // import path -> the one loaded instance

	modRoot string // module root directory ("" until LoadModule)
	modPath string // module path from go.mod
}

// NewLoader returns a loader with a fresh FileSet and source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*Package),
	}
}

// Import implements types.Importer. Already-loaded packages (module
// packages and corpus packages registered by LoadDir) resolve to their
// single shared instance; paths under the module load on demand through
// LoadDir; everything else goes to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		if p.Types == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return p.Types, nil
	}
	if l.modPath != "" && (path == l.modPath || strings.HasPrefix(path, l.modPath+"/")) {
		dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")))
		p, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// LoadModule walks the module rooted at root (the directory holding
// go.mod) and loads every non-test package under it, skipping testdata,
// vendor and hidden directories. Packages come back sorted by import
// path. Intra-module imports are resolved by the loader itself, so each
// package is type-checked once no matter how many importers it has.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l.modRoot, l.modPath = root, modPath
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, pkgPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path, memoizing the result so every importer shares one
// instance. Type errors are returned, not reported as findings: simlint
// analyzes code that already compiles.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	if p, ok := l.pkgs[pkgPath]; ok {
		if p.Types == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", pkgPath)
		}
		return p, nil
	}
	// Reserve the slot before type-checking: a cyclic import resolves to
	// the nil-Types placeholder and errors out instead of recursing.
	l.pkgs[pkgPath] = &Package{PkgPath: pkgPath, Dir: dir}
	entries, err := os.ReadDir(dir)
	if err != nil {
		delete(l.pkgs, pkgPath)
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Honor build constraints (//go:build lines and _GOOS/_GOARCH
		// suffixes) for the host platform, as the compiler would —
		// otherwise a package with platform-split files (e.g. a unix
		// flock and its stub) presents both halves at once and fails to
		// type-check.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			delete(l.pkgs, pkgPath)
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		delete(l.pkgs, pkgPath)
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		delete(l.pkgs, pkgPath)
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	p := l.pkgs[pkgPath]
	p.Fset, p.Files, p.Types, p.Info = l.Fset, files, tpkg, info
	return p, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}
