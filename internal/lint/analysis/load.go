package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the package's import path. For module packages it is the
	// real path ("mkos/internal/noise"); corpus loads pick their own.
	PkgPath string
	// Dir is the directory the files came from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages. One Loader shares a FileSet and
// a source importer across every package it loads, so stdlib and
// module-local dependencies are type-checked once and positions stay
// comparable across packages.
type Loader struct {
	Fset *token.FileSet
	// IncludeTests makes the loader keep _test.go files. simlint ships
	// with it off: the determinism contract binds shipped simulation
	// code, while tests legitimately reset process-wide sinks and
	// measure wall time.
	IncludeTests bool

	imp types.Importer
}

// NewLoader returns a loader with a fresh FileSet and source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// LoadModule walks the module rooted at root (the directory holding
// go.mod) and loads every non-test package under it, skipping testdata,
// vendor and hidden directories. Packages come back sorted by import
// path.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, pkgPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path. Type errors are returned, not reported as findings:
// simlint analyzes code that already compiles.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Honor build constraints (//go:build lines and _GOOS/_GOARCH
		// suffixes) for the host platform, as the compiler would —
		// otherwise a package with platform-split files (e.g. a unix
		// flock and its stub) presents both halves at once and fails to
		// type-check.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}
