package analysis

import (
	"fmt"
	"go/types"
	"reflect"
)

// factStore holds every fact exported during one Run, keyed by the
// exporting analyzer so two analyzers' facts never collide even when
// they share a Go type. Object facts key on the types.Object itself —
// sound because the Loader gives every module package exactly one
// types.Package, so an object seen by the defining package's pass is
// the same object an importing package's pass resolves.
type factStore struct {
	obj map[objFactKey]Fact
	pkg map[pkgFactKey]Fact
}

type objFactKey struct {
	analyzer *Analyzer
	obj      types.Object
	typ      reflect.Type
}

type pkgFactKey struct {
	analyzer *Analyzer
	path     string
	typ      reflect.Type
}

func newFactStore() *factStore {
	return &factStore{obj: map[objFactKey]Fact{}, pkg: map[pkgFactKey]Fact{}}
}

// factType validates that fact is a non-nil pointer and returns its
// concrete type for keying.
func factType(fact Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("lint: fact %T must be a pointer type", fact))
	}
	return t
}

func (s *factStore) exportObject(a *Analyzer, obj types.Object, fact Fact) {
	if obj == nil {
		panic("lint: ExportObjectFact on nil object")
	}
	s.obj[objFactKey{a, obj, factType(fact)}] = fact
}

func (s *factStore) importObject(a *Analyzer, obj types.Object, ptr Fact) bool {
	if obj == nil {
		return false
	}
	got, ok := s.obj[objFactKey{a, obj, factType(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

func (s *factStore) exportPackage(a *Analyzer, pkg *types.Package, fact Fact) {
	s.pkg[pkgFactKey{a, pkg.Path(), factType(fact)}] = fact
}

func (s *factStore) importPackage(a *Analyzer, pkg *types.Package, ptr Fact) bool {
	if pkg == nil {
		return false
	}
	got, ok := s.pkg[pkgFactKey{a, pkg.Path(), factType(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}
