package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"sort"
	"strings"
)

// Suppression directives.
//
// A finding is silenced with a //simlint:allow directive naming the check
// and giving a non-empty reason after an em-dash (or "--"):
//
//	//simlint:allow walltime — host-side profiling, never simulation state
//	start := time.Now()
//
// Placed on its own line, the directive covers the complete construct
// that starts on the next code line — a statement (however many lines it
// spans, including any nested block), a declaration, a struct field, or
// a composite-literal element — but nothing after it. Placed at the end
// of a line of code, it covers that line only. A directive with an
// unknown check name or a missing reason is itself a finding (check
// "simlint"): silent or unexplained suppressions are precisely what a
// determinism gate must not accumulate.

// allowDirective is one parsed //simlint:allow comment.
type allowDirective struct {
	check    string
	file     string
	line     int       // line the comment starts on
	ownLine  bool      // comment is alone on its line → scopes to next statement
	from, to token.Pos // statement range covered (ownLine only)
	bad      string    // non-empty: malformed; message to report
	pos      token.Pos
}

const allowPrefix = "//simlint:allow"

// applySuppressions filters diags through the package's allow directives
// and appends one "simlint" diagnostic per malformed directive. known
// names the valid check set for directive validation.
func applySuppressions(pkg *Package, diags []Diagnostic, known map[string]bool) []Diagnostic {
	var allows []allowDirective
	for _, f := range pkg.Files {
		allows = append(allows, collectAllows(pkg, f, known)...)
	}
	out := diags[:0]
	for _, d := range diags {
		if !suppressed(d, allows) {
			out = append(out, d)
		}
	}
	for _, a := range allows {
		if a.bad != "" {
			out = append(out, Diagnostic{
				Check:    "simlint",
				Pos:      a.pos,
				Position: pkg.Fset.Position(a.pos),
				Message:  a.bad,
			})
		}
	}
	return out
}

func suppressed(d Diagnostic, allows []allowDirective) bool {
	for _, a := range allows {
		if a.bad != "" || a.check != d.Check || a.file != d.Position.Filename {
			continue
		}
		if a.ownLine {
			if a.from.IsValid() && a.from <= d.Pos && d.Pos <= a.to {
				return true
			}
		} else if a.line == d.Position.Line {
			return true
		}
	}
	return false
}

// collectAllows parses every simlint:allow comment in f and resolves each
// own-line directive to the statement or declaration it covers.
func collectAllows(pkg *Package, f *ast.File, known map[string]bool) []allowDirective {
	var allows []allowDirective
	var src *sourceLines
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			if src == nil {
				src = readSourceLines(pkg.Fset.Position(c.Pos()).Filename)
			}
			a := parseAllow(c, pkg.Fset, src)
			if a.bad == "" && !known[a.check] {
				a.bad = "simlint:allow names unknown check \"" + a.check +
					"\"; valid checks: " + strings.Join(sortedNames(known), ", ")
			}
			if a.bad == "" && a.ownLine {
				a.from, a.to = nextCoveredRange(f, c.End())
			}
			allows = append(allows, a)
		}
	}
	return allows
}

func parseAllow(c *ast.Comment, fset *token.FileSet, src *sourceLines) allowDirective {
	pos := fset.Position(c.Pos())
	a := allowDirective{
		file:    pos.Filename,
		line:    pos.Line,
		pos:     c.Pos(),
		ownLine: src.onlyWhitespaceBefore(pos.Line, pos.Column),
	}
	rest := strings.TrimPrefix(c.Text, allowPrefix)
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		a.bad = "simlint:allow is missing a check name: want //simlint:allow <check> — <reason>"
		return a
	}
	a.check = fields[0]
	rest = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
	var reason string
	switch {
	case strings.HasPrefix(rest, "—"):
		reason = strings.TrimSpace(strings.TrimPrefix(rest, "—"))
	case strings.HasPrefix(rest, "--"):
		reason = strings.TrimSpace(strings.TrimPrefix(rest, "--"))
	default:
		a.bad = "simlint:allow " + a.check + " is missing its reason: want //simlint:allow " +
			a.check + " — <reason>"
		return a
	}
	if reason == "" {
		a.bad = "simlint:allow " + a.check + " has an empty reason: every suppression must say why"
	}
	return a
}

// sourceLines answers "is this comment alone on its line" from the raw
// file bytes — the syntax tree cannot, because an enclosing block's Pos/
// End span covers the comment's line whether or not code shares it.
type sourceLines struct {
	lines []string
}

func readSourceLines(filename string) *sourceLines {
	data, err := os.ReadFile(filename)
	if err != nil {
		return &sourceLines{}
	}
	return &sourceLines{lines: strings.Split(string(data), "\n")}
}

func (s *sourceLines) onlyWhitespaceBefore(line, col int) bool {
	if line-1 < 0 || line-1 >= len(s.lines) {
		return true
	}
	text := s.lines[line-1]
	if col-1 > len(text) {
		return true
	}
	return strings.TrimSpace(text[:col-1]) == ""
}

// nextCoveredRange returns the source range an own-line directive at pos
// covers: the full extent of the outermost construct whose first token
// is the next code token after the directive. Finding the first token
// and then widening to the largest node that starts exactly there makes
// the scope the complete multi-line statement (or declaration, struct
// field, or composite-literal element) the author wrote the directive
// above — never just its first line, and never a construct that began
// before the directive. Comments are skipped so a directive may sit
// above an explanatory comment block.
func nextCoveredRange(f *ast.File, pos token.Pos) (token.Pos, token.Pos) {
	first := token.NoPos
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return true
		}
		if n.Pos() >= pos && (!first.IsValid() || n.Pos() < first) {
			first = n.Pos()
		}
		return true
	})
	if !first.IsValid() {
		return token.NoPos, token.NoPos
	}
	end := first
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return true
		}
		if n.Pos() == first && n.End() > end {
			end = n.End()
		}
		return true
	})
	return first, end
}

func sortedNames(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
