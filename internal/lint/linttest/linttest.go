// Package linttest is simlint's analogue of
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer over
// a corpus directory and checks the reported diagnostics against
// expectations written as comments in the corpus files themselves.
//
// An expectation is a trailing comment of the form
//
//	badCall() // want "regexp matching the message"
//
// Every line carrying a want-comment must receive at least one matching
// diagnostic, every diagnostic must be claimed by a want-comment on its
// line, and multiple want-clauses on one line each claim one
// diagnostic. //simlint:allow suppressions are applied before matching,
// so corpora demonstrate accepted suppressions simply by carrying an
// allow directive and no want.
//
// Two further entry points serve the v2 framework: RunDirs loads several
// corpus directories through one shared loader — the ordered, identity-
// sharing load is what lets object facts exported while analyzing one
// corpus package be found when its importer is analyzed — and RunFix
// applies every suggested fix in memory and compares the rewritten files
// against checked-in .golden siblings.
package linttest

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mkos/internal/lint/analysis"
)

var wantRe = regexp.MustCompile(`// want (.*)$`)
var clauseRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads the corpus package in dir under the fake import path
// pkgPath, runs a (with suppressions applied) and matches diagnostics
// against the corpus's want-comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	RunAnalyzers(t, []*analysis.Analyzer{a}, dir, pkgPath)
}

// RunAnalyzers is Run for a set of analyzers sharing one corpus — used
// by the suppression tests, where malformed directives surface as
// "simlint" diagnostics alongside the analyzer's own.
func RunAnalyzers(t *testing.T, as []*analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	RunDirs(t, as, Dir{Path: dir, PkgPath: pkgPath})
}

// Dir names one corpus directory and the import path to load it under.
type Dir struct {
	Path    string
	PkgPath string
}

// RunDirs loads every corpus directory in order through one shared
// loader and runs the analyzers over all of them together. Later dirs
// may import earlier ones by their fake PkgPath — the loader resolves
// the import to the already-loaded instance, so cross-package facts flow
// exactly as they do in a tree-wide run. Want-comments are matched
// across all dirs at once.
func RunDirs(t *testing.T, as []*analysis.Analyzer, dirs ...Dir) {
	t.Helper()
	loader := analysis.NewLoader()
	var pkgs []*analysis.Package
	for _, d := range dirs {
		pkg, err := loader.LoadDir(d.Path, d.PkgPath)
		if err != nil {
			t.Fatalf("loading corpus %s: %v", d.Path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.Run(pkgs, as)
	if err != nil {
		t.Fatalf("running %d analyzer(s): %v", len(as), err)
	}
	var wants []want
	for _, d := range dirs {
		wants = append(wants, collectWants(t, d.Path)...)
	}
	matchWants(t, diags, wants)
}

// RunFix runs a over the corpus, matches want-comments as Run does, then
// applies every suggested fix in memory and compares each rewritten file
// to its checked-in <name>.golden sibling. Every .golden in the corpus
// must be produced and every rewritten file must have a .golden — fixes
// and expectations cannot drift apart silently.
func RunFix(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	matchWants(t, diags, collectWants(t, dir))

	res, err := analysis.ApplyFixes(loader.Fset, diags)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	if res.Applied == 0 {
		t.Fatalf("fix corpus %s produced no applicable fixes", dir)
	}
	for filename, content := range res.Files {
		golden := filename + ".golden"
		wantBytes, err := os.ReadFile(golden)
		if err != nil {
			t.Errorf("fix rewrote %s but no golden exists: %v", filename, err)
			continue
		}
		if !bytes.Equal(content, wantBytes) {
			t.Errorf("fixed %s differs from %s:\n--- got ---\n%s\n--- want ---\n%s",
				filename, golden, content, wantBytes)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus dir: %v", err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".golden") {
			continue
		}
		src := filepath.Join(dir, strings.TrimSuffix(e.Name(), ".golden"))
		if _, ok := res.Files[src]; !ok {
			t.Errorf("golden %s has no corresponding rewritten file", e.Name())
		}
	}
}

// matchWants pairs diagnostics with want-comments one-to-one and reports
// both unmet wants and unclaimed diagnostics.
func matchWants(t *testing.T, diags []analysis.Diagnostic, wants []want) {
	t.Helper()
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Position.Filename != w.file || d.Position.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("%s: unexpected diagnostic: [%s] %s",
				posString(d), d.Check, d.Message)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func posString(d analysis.Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d", d.Position.Filename, d.Position.Line, d.Position.Column)
}

// collectWants scans every corpus file for want-comments.
func collectWants(t *testing.T, dir string) []want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus dir: %v", err)
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			clauses := clauseRe.FindAllStringSubmatch(m[1], -1)
			if len(clauses) == 0 {
				t.Fatalf("%s:%d: malformed want comment %q", path, i+1, line)
			}
			for _, c := range clauses {
				// The clause is a Go string literal in raw source text;
				// unquote it so \\. becomes the regexp escape \. .
				pat, err := strconv.Unquote(c[0])
				if err != nil {
					t.Fatalf("%s:%d: unquoting want clause %q: %v", path, i+1, c[0], err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
				}
				wants = append(wants, want{file: path, line: i + 1, re: re})
			}
		}
	}
	return wants
}
