// Package cli implements the simlint command: flag parsing, the
// go-vet-style exit-code contract and the two output formats. It lives
// apart from cmd/simlint so the contract is testable in-process.
package cli

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"mkos/internal/lint/analysis"
	"mkos/internal/lint/checks"
)

// Exit codes, mirroring go vet: clean tree, findings, and
// usage-or-internal error. CI treats 1 as "annotate and fail the gate"
// and 2 as "the gate itself is broken".
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// Run executes simlint with the given arguments (not including the
// program name) and returns the process exit code. Diagnostics and the
// JSON report go to stdout; usage and internal errors go to stderr.
func Run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON document (for CI annotation)")
	listOnly := fs.Bool("l", false, "print findings as a bare file:line list (for editors)")
	fix := fs.Bool("fix", false, "apply suggested fixes to the tree, then re-lint the result")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	dir := fs.String("dir", ".", "module root to analyze (directory containing go.mod)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: simlint [-json] [-l] [-fix] [-checks c1,c2] [-dir root] [./...]\n\n")
		fmt.Fprintf(stderr, "simlint checks the simulator's determinism and safety invariants.\n")
		fmt.Fprintf(stderr, "Checks:\n")
		for _, a := range checks.All() {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nExit: 0 no findings, 1 findings, 2 usage or internal error.\n")
		fmt.Fprintf(stderr, "With -fix, findings that remain after applying fixes exit 1; a fix\n")
		fmt.Fprintf(stderr, "that does not converge (the re-lint still suggests fixes) exits 2.\n")
		fmt.Fprintf(stderr, "Suppress a finding with //simlint:allow <check> — <reason>.\n")
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}
	// The only accepted package pattern is the whole module; anything
	// else is a usage error so scripts fail loudly rather than lint a
	// subset silently.
	for _, arg := range fs.Args() {
		if arg != "./..." {
			fmt.Fprintf(stderr, "simlint: unsupported package pattern %q (only ./... )\n", arg)
			fs.Usage()
			return ExitError
		}
	}

	analyzers, err := selectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		fs.Usage()
		return ExitError
	}

	diags, fset, err := lintTree(*dir, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return ExitError
	}

	var applied []bool
	report := diags
	nonConverged := false
	if *fix {
		applied, report, nonConverged, err = applyAndRelint(*dir, analyzers, fset, diags, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return ExitError
		}
	}

	switch {
	case *jsonOut:
		// Under -fix the JSON report is the pre-fix finding set with
		// applied marks — the complete record of what the run saw and
		// what it rewrote.
		if err := analysis.WriteJSON(stdout, diags, applied); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return ExitError
		}
	case *listOnly:
		for _, d := range report {
			fmt.Fprintf(stdout, "%s:%d\n", d.Position.Filename, d.Position.Line)
		}
	default:
		for _, d := range report {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if nonConverged {
		fmt.Fprintf(stderr, "simlint: -fix did not converge: the rewritten tree still suggests fixes\n")
		return ExitError
	}
	if len(report) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// lintTree loads the module at dir and runs the analyzers over it,
// returning the diagnostics and the FileSet their positions live in.
func lintTree(dir string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, error) {
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadModule(dir)
	if err != nil {
		return nil, nil, err
	}
	diags, err := analysis.Run(pkgs, analyzers)
	return diags, loader.Fset, err
}

// applyAndRelint is the -fix pass: apply every suggested fix to the
// tree, write the rewritten files, then lint the result from scratch.
// The second run is the idempotence check — a fix engine whose output
// still carries suggested fixes would rewrite the tree forever, and
// that is an internal error (exit 2), not a finding. Returns the
// per-diagnostic applied marks, the post-fix findings, and whether the
// fixes failed to converge.
func applyAndRelint(dir string, analyzers []*analysis.Analyzer, fset *token.FileSet,
	diags []analysis.Diagnostic, stderr io.Writer) ([]bool, []analysis.Diagnostic, bool, error) {
	res, err := analysis.ApplyFixes(fset, diags)
	if err != nil {
		return nil, nil, false, err
	}
	for filename, content := range res.Files {
		mode := os.FileMode(0o644)
		if st, err := os.Stat(filename); err == nil {
			mode = st.Mode().Perm()
		}
		if err := os.WriteFile(filename, content, mode); err != nil {
			return nil, nil, false, err
		}
	}
	fmt.Fprintf(stderr, "simlint: -fix applied %d fix(es) across %d file(s), %d skipped\n",
		res.Applied, len(res.Files), res.Skipped)
	if res.Applied == 0 {
		return res.AppliedDiag, diags, false, nil
	}
	after, _, err := lintTree(dir, analyzers)
	if err != nil {
		return nil, nil, false, err
	}
	for _, d := range after {
		if d.Fix != nil {
			return res.AppliedDiag, after, true, nil
		}
	}
	return res.AppliedDiag, after, false, nil
}

// selectChecks resolves the -checks flag to a subset of the suite.
func selectChecks(spec string) ([]*analysis.Analyzer, error) {
	all := checks.All()
	if spec == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	var names []string
	for _, a := range all {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (valid: %s)", name, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
