// Package cli implements the simlint command: flag parsing, the
// go-vet-style exit-code contract and the two output formats. It lives
// apart from cmd/simlint so the contract is testable in-process.
package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"mkos/internal/lint/analysis"
	"mkos/internal/lint/checks"
)

// Exit codes, mirroring go vet: clean tree, findings, and
// usage-or-internal error. CI treats 1 as "annotate and fail the gate"
// and 2 as "the gate itself is broken".
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// Run executes simlint with the given arguments (not including the
// program name) and returns the process exit code. Diagnostics and the
// JSON report go to stdout; usage and internal errors go to stderr.
func Run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON document (for CI annotation)")
	listOnly := fs.Bool("l", false, "print findings as a bare file:line list (for editors)")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	dir := fs.String("dir", ".", "module root to analyze (directory containing go.mod)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: simlint [-json] [-l] [-checks c1,c2] [-dir root] [./...]\n\n")
		fmt.Fprintf(stderr, "simlint checks the simulator's determinism and safety invariants.\n")
		fmt.Fprintf(stderr, "Checks:\n")
		for _, a := range checks.All() {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nExit: 0 no findings, 1 findings, 2 usage or internal error.\n")
		fmt.Fprintf(stderr, "Suppress a finding with //simlint:allow <check> — <reason>.\n")
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}
	// The only accepted package pattern is the whole module; anything
	// else is a usage error so scripts fail loudly rather than lint a
	// subset silently.
	for _, arg := range fs.Args() {
		if arg != "./..." {
			fmt.Fprintf(stderr, "simlint: unsupported package pattern %q (only ./... )\n", arg)
			fs.Usage()
			return ExitError
		}
	}

	analyzers, err := selectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		fs.Usage()
		return ExitError
	}

	loader := analysis.NewLoader()
	pkgs, err := loader.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return ExitError
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return ExitError
	}

	switch {
	case *jsonOut:
		if err := analysis.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return ExitError
		}
	case *listOnly:
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d\n", d.Position.Filename, d.Position.Line)
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// selectChecks resolves the -checks flag to a subset of the suite.
func selectChecks(spec string) ([]*analysis.Analyzer, error) {
	all := checks.All()
	if spec == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	var names []string
	for _, a := range all {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (valid: %s)", name, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
