package cli_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mkos/internal/lint/cli"
)

// writeModule lays out a throwaway module for the loader; package paths
// under it ("fakemod/...") are deterministic by the ops-allowlist rule,
// so a planted time.Now is a finding.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module fakemod\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const cleanSrc = `package a

func A(n int) int { return n + 1 }
`

const dirtySrc = `package b

import "time"

func B() time.Time { return time.Now() }
`

const brokenSrc = `package c

func C() int { return undefinedSymbol }
`

// TestExitCodeContract pins the go-vet-style contract: 0 clean, 1
// findings, 2 usage or internal error.
func TestExitCodeContract(t *testing.T) {
	clean := writeModule(t, map[string]string{"a/a.go": cleanSrc})
	dirty := writeModule(t, map[string]string{"a/a.go": cleanSrc, "b/b.go": dirtySrc})
	broken := writeModule(t, map[string]string{"c/c.go": brokenSrc})

	tests := []struct {
		name      string
		args      []string
		want      int
		stdoutHas string
		stderrHas string
	}{
		{name: "clean tree", args: []string{"-dir", clean, "./..."}, want: cli.ExitClean},
		{name: "findings", args: []string{"-dir", dirty}, want: cli.ExitFindings,
			stdoutHas: "[walltime] wall-clock time.Now"},
		{name: "findings as json", args: []string{"-json", "-dir", dirty}, want: cli.ExitFindings,
			stdoutHas: `"check": "walltime"`},
		{name: "findings as file:line list", args: []string{"-l", "-dir", dirty}, want: cli.ExitFindings,
			stdoutHas: "b.go:5"},
		{name: "check subset skips the finding", args: []string{"-checks", "maporder", "-dir", dirty},
			want: cli.ExitClean},
		{name: "unknown flag", args: []string{"-nope"}, want: cli.ExitError},
		{name: "unknown check", args: []string{"-checks", "nosuch", "-dir", clean}, want: cli.ExitError,
			stderrHas: `unknown check "nosuch"`},
		{name: "unsupported package pattern", args: []string{"-dir", clean, "pkg/a"}, want: cli.ExitError,
			stderrHas: "unsupported package pattern"},
		{name: "missing module root", args: []string{"-dir", filepath.Join(clean, "nosuchdir")},
			want: cli.ExitError},
		{name: "type error is internal", args: []string{"-dir", broken}, want: cli.ExitError,
			stderrHas: "type-checking"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := cli.Run(tt.args, &stdout, &stderr)
			if got != tt.want {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					got, tt.want, stdout.String(), stderr.String())
			}
			if tt.stdoutHas != "" && !strings.Contains(stdout.String(), tt.stdoutHas) {
				t.Errorf("stdout missing %q:\n%s", tt.stdoutHas, stdout.String())
			}
			if tt.stderrHas != "" && !strings.Contains(stderr.String(), tt.stderrHas) {
				t.Errorf("stderr missing %q:\n%s", tt.stderrHas, stderr.String())
			}
		})
	}
}

// simSrc is a miniature engine under an internal/sim path suffix, enough
// for the simtime analyzer to recognize schedulers and produce a
// suggested fix.
const simSrc = `package sim

type Time int64
type Duration int64

type Engine struct{}

func (e *Engine) Now() Time                                    { return 0 }
func (e *Engine) Schedule(d Duration, n string, f func(*Engine)) {}
`

// fixableSrc carries a stale-capture finding whose fix (use(t0) ->
// use(e2.Now())) leaves t0 alive via the outer return, so the rewritten
// package still compiles.
const fixableSrc = `package m

import "fakemod/internal/sim"

func Bad(e *sim.Engine) sim.Time {
	t0 := e.Now()
	e.Schedule(10, "x", func(e2 *sim.Engine) {
		use(t0)
	})
	return t0
}

func use(t sim.Time) {}
`

// fixGolden pins the -json document byte-for-byte under -fix: stable
// field order (check, file, line, col, message, then fix with message,
// edits, applied) and the applied mark on the rewritten finding. $DIR
// stands for the throwaway module root.
const fixGolden = `{
  "findings": [
    {
      "check": "walltime",
      "file": "$DIR/b/b.go",
      "line": 5,
      "col": 29,
      "message": "wall-clock time.Now in deterministic package fakemod/b: simulated time must come from the engine (sim.Engine.Now, sim.Timer); wall clock is legal only in ops-side packages (internal/sweep, cmd/*)"
    },
    {
      "check": "simtime",
      "file": "$DIR/m/m.go",
      "line": 8,
      "col": 7,
      "message": "handler uses t0, a Now() value captured before the Schedule call: by the time the event fires the clock has advanced — read the engine's clock inside the handler (e.Now())",
      "fix": {
        "message": "read the live clock: replace t0 with e2.Now()",
        "edits": 1,
        "applied": true
      }
    }
  ]
}
`

// TestFixContract drives simlint -fix end to end: the JSON document
// matches the golden (field order is part of the contract), the fixable
// finding is rewritten on disk, the unfixable walltime finding keeps the
// exit at 1, and a second -fix run changes nothing (idempotence). A tree
// whose only finding is fixable exits 0 after the rewrite.
func TestFixContract(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/sim/sim.go": simSrc,
		"m/m.go":              fixableSrc,
		"b/b.go":              dirtySrc,
	})
	var stdout, stderr bytes.Buffer
	if got := cli.Run([]string{"-fix", "-json", "-dir", dir}, &stdout, &stderr); got != cli.ExitFindings {
		t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
			got, cli.ExitFindings, stdout.String(), stderr.String())
	}
	got := strings.ReplaceAll(stdout.String(), dir, "$DIR")
	if got != fixGolden {
		t.Errorf("-fix -json document differs from golden:\n--- got ---\n%s\n--- want ---\n%s", got, fixGolden)
	}
	rewritten, err := os.ReadFile(filepath.Join(dir, "m", "m.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rewritten), "use(e2.Now())") {
		t.Errorf("-fix did not rewrite the stale capture:\n%s", rewritten)
	}

	// Idempotence: a second -fix run applies nothing and leaves every
	// byte in place.
	stdout.Reset()
	stderr.Reset()
	if got := cli.Run([]string{"-fix", "-dir", dir}, &stdout, &stderr); got != cli.ExitFindings {
		t.Fatalf("second -fix exit = %d, want %d\nstderr:\n%s", got, cli.ExitFindings, stderr.String())
	}
	if !strings.Contains(stderr.String(), "applied 0 fix(es)") {
		t.Errorf("second -fix run applied something:\n%s", stderr.String())
	}
	again, err := os.ReadFile(filepath.Join(dir, "m", "m.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rewritten, again) {
		t.Errorf("second -fix run changed the file")
	}

	// A tree whose only finding has a fix comes out clean.
	onlyFixable := writeModule(t, map[string]string{
		"internal/sim/sim.go": simSrc,
		"m/m.go":              fixableSrc,
	})
	stdout.Reset()
	stderr.Reset()
	if got := cli.Run([]string{"-fix", "-dir", onlyFixable}, &stdout, &stderr); got != cli.ExitClean {
		t.Fatalf("fixable-only exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
			got, cli.ExitClean, stdout.String(), stderr.String())
	}
}

// TestJSONDocumentShape checks the CI artifact is a well-formed document
// with the fields the annotation step indexes.
func TestJSONDocumentShape(t *testing.T) {
	dirty := writeModule(t, map[string]string{"b/b.go": dirtySrc})
	var stdout, stderr bytes.Buffer
	if got := cli.Run([]string{"-json", "-dir", dirty}, &stdout, &stderr); got != cli.ExitFindings {
		t.Fatalf("exit = %d, want %d; stderr: %s", got, cli.ExitFindings, stderr.String())
	}
	var doc struct {
		Findings []struct {
			Check   string `json:"check"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Message string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("decoding JSON output: %v\n%s", err, stdout.String())
	}
	if len(doc.Findings) != 1 {
		t.Fatalf("findings = %d, want 1:\n%s", len(doc.Findings), stdout.String())
	}
	f := doc.Findings[0]
	if f.Check != "walltime" || f.Line != 5 || !strings.HasSuffix(f.File, "b.go") || f.Message == "" {
		t.Errorf("unexpected finding: %+v", f)
	}
}
