package cli_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mkos/internal/lint/cli"
)

// writeModule lays out a throwaway module for the loader; package paths
// under it ("fakemod/...") are deterministic by the ops-allowlist rule,
// so a planted time.Now is a finding.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module fakemod\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const cleanSrc = `package a

func A(n int) int { return n + 1 }
`

const dirtySrc = `package b

import "time"

func B() time.Time { return time.Now() }
`

const brokenSrc = `package c

func C() int { return undefinedSymbol }
`

// TestExitCodeContract pins the go-vet-style contract: 0 clean, 1
// findings, 2 usage or internal error.
func TestExitCodeContract(t *testing.T) {
	clean := writeModule(t, map[string]string{"a/a.go": cleanSrc})
	dirty := writeModule(t, map[string]string{"a/a.go": cleanSrc, "b/b.go": dirtySrc})
	broken := writeModule(t, map[string]string{"c/c.go": brokenSrc})

	tests := []struct {
		name      string
		args      []string
		want      int
		stdoutHas string
		stderrHas string
	}{
		{name: "clean tree", args: []string{"-dir", clean, "./..."}, want: cli.ExitClean},
		{name: "findings", args: []string{"-dir", dirty}, want: cli.ExitFindings,
			stdoutHas: "[walltime] wall-clock time.Now"},
		{name: "findings as json", args: []string{"-json", "-dir", dirty}, want: cli.ExitFindings,
			stdoutHas: `"check": "walltime"`},
		{name: "findings as file:line list", args: []string{"-l", "-dir", dirty}, want: cli.ExitFindings,
			stdoutHas: "b.go:5"},
		{name: "check subset skips the finding", args: []string{"-checks", "maporder", "-dir", dirty},
			want: cli.ExitClean},
		{name: "unknown flag", args: []string{"-nope"}, want: cli.ExitError},
		{name: "unknown check", args: []string{"-checks", "nosuch", "-dir", clean}, want: cli.ExitError,
			stderrHas: `unknown check "nosuch"`},
		{name: "unsupported package pattern", args: []string{"-dir", clean, "pkg/a"}, want: cli.ExitError,
			stderrHas: "unsupported package pattern"},
		{name: "missing module root", args: []string{"-dir", filepath.Join(clean, "nosuchdir")},
			want: cli.ExitError},
		{name: "type error is internal", args: []string{"-dir", broken}, want: cli.ExitError,
			stderrHas: "type-checking"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := cli.Run(tt.args, &stdout, &stderr)
			if got != tt.want {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					got, tt.want, stdout.String(), stderr.String())
			}
			if tt.stdoutHas != "" && !strings.Contains(stdout.String(), tt.stdoutHas) {
				t.Errorf("stdout missing %q:\n%s", tt.stdoutHas, stdout.String())
			}
			if tt.stderrHas != "" && !strings.Contains(stderr.String(), tt.stderrHas) {
				t.Errorf("stderr missing %q:\n%s", tt.stderrHas, stderr.String())
			}
		})
	}
}

// TestJSONDocumentShape checks the CI artifact is a well-formed document
// with the fields the annotation step indexes.
func TestJSONDocumentShape(t *testing.T) {
	dirty := writeModule(t, map[string]string{"b/b.go": dirtySrc})
	var stdout, stderr bytes.Buffer
	if got := cli.Run([]string{"-json", "-dir", dirty}, &stdout, &stderr); got != cli.ExitFindings {
		t.Fatalf("exit = %d, want %d; stderr: %s", got, cli.ExitFindings, stderr.String())
	}
	var doc struct {
		Findings []struct {
			Check   string `json:"check"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Message string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("decoding JSON output: %v\n%s", err, stdout.String())
	}
	if len(doc.Findings) != 1 {
		t.Fatalf("findings = %d, want 1:\n%s", len(doc.Findings), stdout.String())
	}
	f := doc.Findings[0]
	if f.Check != "walltime" || f.Line != 5 || !strings.HasSuffix(f.File, "b.go") || f.Message == "" {
		t.Errorf("unexpected finding: %+v", f)
	}
}
