package fault

import (
	"reflect"
	"testing"
	"time"

	"mkos/internal/sim"
)

func heavyRates() Rates {
	return Rates{
		NodeCrashPerHour:   0.5,
		LWKPanicPerHour:    2,
		LWKHangPerHour:     1,
		IHKReserveFailProb: 0.1,
		IKCTimeoutProb:     0.05,
		LWKOOMProb:         0.05,
	}
}

func TestKindStringsAndClassification(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
	for _, k := range []Kind{NodeCrash, LWKPanic, LWKOOM, IHKReserveFail} {
		if !k.FailStop() {
			t.Fatalf("%v must be fail-stop", k)
		}
	}
	for _, k := range []Kind{LWKHang, IKCTimeout} {
		if k.FailStop() {
			t.Fatalf("%v must be fail-silent", k)
		}
	}
	if NodeCrash.LWKOnly() {
		t.Fatal("node crashes hit Linux nodes too")
	}
	if !LWKPanic.LWKOnly() || !IHKReserveFail.LWKOnly() {
		t.Fatal("LWK faults must be LWK-only")
	}
}

func TestZeroRatesInjectNothing(t *testing.T) {
	in := NewInjector(Rates{}, 42)
	nodes := []int{0, 1, 2, 3}
	if got := in.Prologue(1, 0, nodes); got != nil {
		t.Fatalf("prologue faults at zero rates: %v", got)
	}
	if got := in.Runtime(1, 0, nodes, true, time.Hour); len(got) != 0 {
		t.Fatalf("runtime faults at zero rates: %v", got)
	}
	if !(Rates{}).Zero() || heavyRates().Zero() {
		t.Fatal("Rates.Zero misclassifies")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	nodes := make([]int, 64)
	for i := range nodes {
		nodes[i] = i
	}
	a := NewInjector(heavyRates(), 7)
	b := NewInjector(heavyRates(), 7)
	// Different call order on b: sampling must be call-order independent.
	_ = b.Runtime(9, 3, nodes, true, time.Hour)
	for attempt := 0; attempt < 3; attempt++ {
		pa := a.Prologue(1, attempt, nodes)
		pb := b.Prologue(1, attempt, nodes)
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("prologue plans diverge at attempt %d: %v vs %v", attempt, pa, pb)
		}
		ra := a.Runtime(1, attempt, nodes, true, time.Hour)
		rb := b.Runtime(1, attempt, nodes, true, time.Hour)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("runtime plans diverge at attempt %d", attempt)
		}
	}
	// A different seed must produce a different schedule.
	c := NewInjector(heavyRates(), 8)
	if reflect.DeepEqual(a.Runtime(1, 0, nodes, true, time.Hour), c.Runtime(1, 0, nodes, true, time.Hour)) {
		t.Fatal("different seeds gave identical schedules")
	}
}

func TestRuntimeFaultsSortedAndBounded(t *testing.T) {
	nodes := make([]int, 128)
	for i := range nodes {
		nodes[i] = i
	}
	in := NewInjector(heavyRates(), 3)
	fs := in.Runtime(2, 0, nodes, true, 30*time.Minute)
	if len(fs) == 0 {
		t.Fatal("heavy rates over 128 node-half-hours must inject something")
	}
	for i, f := range fs {
		if f.At < 0 || f.At >= 30*time.Minute {
			t.Fatalf("fault %d strikes outside the attempt: %v", i, f.At)
		}
		if i > 0 && faultLess(f, fs[i-1]) {
			t.Fatal("faults not sorted by time")
		}
	}
}

func TestLinuxAttemptsOnlySufferCrashes(t *testing.T) {
	nodes := make([]int, 256)
	for i := range nodes {
		nodes[i] = i
	}
	in := NewInjector(heavyRates(), 11)
	for _, f := range in.Runtime(4, 1, nodes, false, time.Hour) {
		if f.Kind != NodeCrash {
			t.Fatalf("linux attempt suffered %v", f.Kind)
		}
	}
}

// TestRateIndependence: zeroing one kind's rate must not change another
// kind's schedule (each kind burns its draws unconditionally).
func TestRateIndependence(t *testing.T) {
	nodes := make([]int, 64)
	for i := range nodes {
		nodes[i] = i
	}
	full := NewInjector(heavyRates(), 5).Runtime(1, 0, nodes, true, time.Hour)
	r := heavyRates()
	r.LWKPanicPerHour = 0
	noPanic := NewInjector(r, 5).Runtime(1, 0, nodes, true, time.Hour)
	var fullMinusPanics []Fault
	for _, f := range full {
		if f.Kind != LWKPanic {
			fullMinusPanics = append(fullMinusPanics, f)
		}
	}
	if !reflect.DeepEqual(fullMinusPanics, noPanic) {
		t.Fatalf("zeroing the panic rate perturbed other kinds:\n%v\nvs\n%v", fullMinusPanics, noPanic)
	}
}

func TestWatchdogValidate(t *testing.T) {
	if err := DefaultWatchdog().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Watchdog{Interval: 0, Timeout: time.Second}).Validate(); err == nil {
		t.Fatal("zero interval must be rejected")
	}
	if err := (Watchdog{Interval: time.Second, Timeout: time.Second}).Validate(); err == nil {
		t.Fatal("timeout <= interval must be rejected")
	}
}

func TestWatchdogDetection(t *testing.T) {
	w := Watchdog{Interval: time.Second, Timeout: 5 * time.Second}
	// Fail-stop at t=2.3s: noticed at the next sweep, t=3s.
	if got := w.DetectionTime(LWKPanic, 2300*time.Millisecond); got != 3*time.Second {
		t.Fatalf("fail-stop detection at %v, want 3s", got)
	}
	// Fail-silent at t=2.3s: last heartbeat was t=2s, watchdog expires at 7s.
	if got := w.DetectionTime(LWKHang, 2300*time.Millisecond); got != 7*time.Second {
		t.Fatalf("fail-silent detection at %v, want 7s", got)
	}
	// Latency is always positive and silent detection is slower.
	for _, at := range []sim.Duration{0, 999 * time.Millisecond, time.Second, 90 * time.Second} {
		stop := w.DetectionLatency(NodeCrash, at)
		silent := w.DetectionLatency(IKCTimeout, at)
		if stop <= 0 || silent <= 0 {
			t.Fatalf("non-positive latency at %v: %v %v", at, stop, silent)
		}
		if silent <= stop {
			t.Fatalf("fail-silent (%v) must be slower to detect than fail-stop (%v)", silent, stop)
		}
	}
}

func TestReportRendering(t *testing.T) {
	r := &FailureReport{Seed: 9, Jobs: 3, Completed: 2, Fallbacks: 1, Failed: 1, Retries: 4}
	r.AddFault(LWKPanic)
	r.AddFault(LWKPanic)
	r.AddFault(NodeCrash)
	r.AddDetection(2 * time.Second)
	r.AddDetection(4 * time.Second)
	r.AddWaste(16, 10*time.Second)
	r.Blacklist(7)
	r.Blacklist(3)
	r.Blacklist(7) // duplicate ignored
	if r.TotalInjected() != 3 {
		t.Fatalf("total injected = %d", r.TotalInjected())
	}
	if r.MeanDetectionLatency() != 3*time.Second {
		t.Fatalf("mean latency = %v", r.MeanDetectionLatency())
	}
	if r.DetectLatMax != 4*time.Second {
		t.Fatalf("max latency = %v", r.DetectLatMax)
	}
	if r.WastedNodeSeconds != 160 {
		t.Fatalf("wasted = %v", r.WastedNodeSeconds)
	}
	if !reflect.DeepEqual(r.BlacklistedNodes, []int{3, 7}) {
		t.Fatalf("blacklist = %v", r.BlacklistedNodes)
	}
	s := r.String()
	if s == "" || s != r.String() {
		t.Fatal("String must be stable")
	}
	for _, want := range []string{"lwk-panic", "node-crash", "seed 9", "blacklisted nodes: 2 [3 7]"} {
		if !containsStr(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
