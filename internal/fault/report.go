package fault

import (
	"fmt"
	"strings"
	"time"

	"mkos/internal/telemetry"
)

// FailureReport summarises one fault-injection experiment: what was injected,
// how long detection took, how much work the recovery machinery had to redo,
// and what it cost in wasted node-seconds. All counters are plain ints and
// fixed-size arrays indexed by Kind — no maps — so the String rendering is
// byte-identical across runs with the same seed.
type FailureReport struct {
	Seed int64

	Jobs      int // submissions
	Completed int // finished, possibly after retries
	Fallbacks int // completed only after falling back to native Linux
	Failed    int // terminally failed (retry budget exhausted)

	Injected [NumKinds]int // faults that actually struck, by kind
	Retries  int           // re-run attempts across all jobs

	Detections   int           // faults noticed by the monitor
	DetectLatSum time.Duration // total detection latency
	DetectLatMax time.Duration

	WastedNodeSeconds float64       // node-time burned by failed attempts
	Makespan          time.Duration // simulated clock at experiment end

	BlacklistedNodes []int // global node ids, ascending
}

// TotalInjected sums faults across kinds.
func (r *FailureReport) TotalInjected() int {
	n := 0
	for _, c := range r.Injected {
		n += c
	}
	return n
}

// MeanDetectionLatency returns the average time-to-detection, 0 if nothing
// was detected.
func (r *FailureReport) MeanDetectionLatency() time.Duration {
	if r.Detections == 0 {
		return 0
	}
	return r.DetectLatSum / time.Duration(r.Detections)
}

// detectLatencyBuckets buckets detection latency in milliseconds.
var detectLatencyBuckets = telemetry.ExpBuckets(1, 4, 8)

// AddFault records one injected fault.
func (r *FailureReport) AddFault(k Kind) {
	r.Injected[k]++
	telemetry.C("fault.injected." + k.String()).Inc()
}

// AddDetection records the monitor noticing a fault lat after it struck.
func (r *FailureReport) AddDetection(lat time.Duration) {
	r.Detections++
	r.DetectLatSum += lat
	if lat > r.DetectLatMax {
		r.DetectLatMax = lat
	}
	telemetry.C("fault.detections").Inc()
	telemetry.H("fault.detect_latency_ms", detectLatencyBuckets).
		Observe(float64(lat) / float64(time.Millisecond))
}

// AddWaste charges nodes burning d each to the wasted-work counter.
func (r *FailureReport) AddWaste(nodes int, d time.Duration) {
	r.WastedNodeSeconds += float64(nodes) * d.Seconds()
}

// Blacklist records a node being taken out of service, keeping the list
// sorted and duplicate free.
func (r *FailureReport) Blacklist(node int) {
	for i, n := range r.BlacklistedNodes {
		if n == node {
			return
		}
		if n > node {
			r.BlacklistedNodes = append(r.BlacklistedNodes, 0)
			copy(r.BlacklistedNodes[i+1:], r.BlacklistedNodes[i:])
			r.BlacklistedNodes[i] = node
			return
		}
	}
	r.BlacklistedNodes = append(r.BlacklistedNodes, node)
}

// String renders the report deterministically: fixed field order, fixed kind
// order, no map iteration anywhere. Two runs with the same seed must produce
// byte-identical output (asserted by the determinism regression test).
func (r *FailureReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "failure report (seed %d)\n", r.Seed)
	fmt.Fprintf(&b, "  jobs: %d submitted, %d completed (%d via linux fallback), %d failed\n",
		r.Jobs, r.Completed, r.Fallbacks, r.Failed)
	fmt.Fprintf(&b, "  faults injected: %d total\n", r.TotalInjected())
	for k := Kind(0); k < NumKinds; k++ {
		if r.Injected[k] > 0 {
			fmt.Fprintf(&b, "    %-18s %d\n", k, r.Injected[k])
		}
	}
	fmt.Fprintf(&b, "  retries: %d\n", r.Retries)
	fmt.Fprintf(&b, "  detection: %d detected, mean latency %v, max %v\n",
		r.Detections, r.MeanDetectionLatency().Round(time.Microsecond), r.DetectLatMax.Round(time.Microsecond))
	fmt.Fprintf(&b, "  wasted node-seconds: %.3f\n", r.WastedNodeSeconds)
	fmt.Fprintf(&b, "  blacklisted nodes: %d %v\n", len(r.BlacklistedNodes), r.BlacklistedNodes)
	fmt.Fprintf(&b, "  makespan: %v\n", r.Makespan)
	return b.String()
}
