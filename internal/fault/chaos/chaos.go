// Package chaos is the service-level extension of the fault subsystem: where
// internal/fault injects failures *inside* the simulated machine, this
// package injects them *around* a live service process — the operational
// hazards a long-running campaign daemon on a shared pre-exascale front-end
// actually faces. Three injectors cover the paper's "experiences" at the
// service layer:
//
//   - daemon-kill: a Killer manages a subprocess and SIGKILLs it at a
//     planned instant, the service analogue of a node crash — no drain, no
//     flush, the on-disk journal is all that survives.
//   - slow-client: SlowReader/SlowWriter trickle bytes through an io stream
//     in small planned chunks, modelling clients on congested or throttled
//     links that hold server connections open for seconds.
//   - queue-flood: Flood drives N concurrent client functions and tallies
//     their outcomes, modelling a burst of submissions that must be shaped
//     by admission control rather than by collapse.
//
// Like the simulator-side injectors, every schedule is derived from a seed
// (Plan), so a chaos run that exposes a bug is re-runnable: the same seed
// kills the daemon at the same offset and trickles the same chunk sizes.
// Unlike them, actuation here is host-side by nature (real sleeps, real
// signals), so this package lives outside the determinism contract enforced
// on model packages.
package chaos

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Plan derives reproducible chaos schedules from one seed. Each named draw
// hashes (seed, name, index), so schedules are independent of each other and
// of draw order — the same discipline sweep.DeriveSeed applies to trial
// seeds.
type Plan struct {
	Seed int64
}

// NewPlan returns a plan rooted at seed.
func NewPlan(seed int64) *Plan { return &Plan{Seed: seed} }

// draw returns a uniform value in [0,1) for (name, i).
func (p *Plan) draw(name string, i int) float64 {
	h := sha256.New()
	fmt.Fprintf(h, "chaos\x00%d\x00%s\x00%d", p.Seed, name, i)
	v := binary.BigEndian.Uint64(h.Sum(nil)[:8])
	return float64(v>>11) / float64(1<<53)
}

// Delay returns the i-th delay of the named schedule, uniform in [min, max].
// Use distinct names for distinct hazards ("kill", "restart-gap") so adding
// one schedule never shifts another.
func (p *Plan) Delay(name string, i int, min, max time.Duration) time.Duration {
	if max <= min {
		return min
	}
	return min + time.Duration(p.draw(name, i)*float64(max-min))
}

// Int returns the i-th integer of the named schedule, uniform in [min, max].
func (p *Plan) Int(name string, i, min, max int) int {
	if max <= min {
		return min
	}
	return min + int(p.draw(name, i)*float64(max-min+1))
}

// SlowReader trickles an underlying reader: every Read returns at most Chunk
// bytes and sleeps Delay first, so a 4 KiB response body at Chunk=64,
// Delay=10ms occupies its connection for ~640ms. Wrap a client's response
// body (or request body) with it to model a slow consumer without touching
// the server under test.
type SlowReader struct {
	R     io.Reader
	Chunk int
	Delay time.Duration
}

func (s *SlowReader) Read(p []byte) (int, error) {
	if s.Delay > 0 {
		time.Sleep(s.Delay)
	}
	if s.Chunk > 0 && len(p) > s.Chunk {
		p = p[:s.Chunk]
	}
	return s.R.Read(p)
}

// SlowWriter is the write-side twin: request bodies dribbled toward the
// server in Chunk-byte slices with Delay between them.
type SlowWriter struct {
	W     io.Writer
	Chunk int
	Delay time.Duration
}

func (s *SlowWriter) Write(p []byte) (int, error) {
	var n int
	for len(p) > 0 {
		if s.Delay > 0 {
			time.Sleep(s.Delay)
		}
		c := len(p)
		if s.Chunk > 0 && c > s.Chunk {
			c = s.Chunk
		}
		m, err := s.W.Write(p[:c])
		n += m
		if err != nil {
			return n, err
		}
		p = p[c:]
	}
	return n, nil
}

// Tally is Flood's aggregate outcome.
type Tally struct {
	// OK counts client functions that returned nil.
	OK int
	// Failed counts client functions that returned an error; Errs keeps the
	// first few in launch order for the failure message.
	Failed int
	Errs   []error
}

// maxTallyErrs bounds the errors a tally retains: enough to diagnose a
// flood, small enough to print.
const maxTallyErrs = 8

// Flood runs fn(i) for i in [0,n) on n concurrent goroutines — the
// queue-flood injector. It returns once every client function has returned;
// shaping the flood (backoff, retries, per-client identity) is the client
// function's job, which is exactly what the flood is meant to exercise.
func Flood(n int, fn func(i int) error) Tally {
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) { errs <- fn(i) }(i)
	}
	var t Tally
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Failed++
			if len(t.Errs) < maxTallyErrs {
				t.Errs = append(t.Errs, err)
			}
		} else {
			t.OK++
		}
	}
	return t
}
