package chaos_test

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"mkos/internal/fault/chaos"
)

// TestPlanDeterminism pins the injector-schedule contract: same seed, same
// schedule; draws are independent across names and indices.
func TestPlanDeterminism(t *testing.T) {
	a, b := chaos.NewPlan(7), chaos.NewPlan(7)
	for i := 0; i < 10; i++ {
		if x, y := a.Delay("kill", i, time.Second, 3*time.Second), b.Delay("kill", i, time.Second, 3*time.Second); x != y {
			t.Fatalf("draw %d differs across identical plans: %v vs %v", i, x, y)
		}
	}
	if x := a.Delay("kill", 0, time.Second, 3*time.Second); x < time.Second || x > 3*time.Second {
		t.Fatalf("delay %v outside [1s,3s]", x)
	}
	if a.Delay("kill", 0, time.Second, 3*time.Second) == a.Delay("restart", 0, time.Second, 3*time.Second) &&
		a.Delay("kill", 1, time.Second, 3*time.Second) == a.Delay("restart", 1, time.Second, 3*time.Second) {
		t.Fatal("named schedules are not independent")
	}
	if v := chaos.NewPlan(8).Delay("kill", 0, time.Second, 3*time.Second); v == a.Delay("kill", 0, time.Second, 3*time.Second) {
		t.Fatal("different seeds drew the same schedule")
	}
	if n := a.Int("flood", 0, 5, 9); n < 5 || n > 9 {
		t.Fatalf("int draw %d outside [5,9]", n)
	}
	if min := a.Delay("degenerate", 0, time.Second, time.Second); min != time.Second {
		t.Fatalf("degenerate range returned %v, want min", min)
	}
}

// TestSlowStreams verifies the trickle wrappers move every byte in bounded
// chunks.
func TestSlowStreams(t *testing.T) {
	payload := strings.Repeat("x", 1000)
	r := &chaos.SlowReader{R: strings.NewReader(payload), Chunk: 64}
	got, err := io.ReadAll(r)
	if err != nil || string(got) != payload {
		t.Fatalf("slow reader: err=%v len=%d", err, len(got))
	}

	var buf bytes.Buffer
	w := &chaos.SlowWriter{W: &buf, Chunk: 7}
	n, err := w.Write([]byte(payload))
	if err != nil || n != len(payload) || buf.String() != payload {
		t.Fatalf("slow writer: n=%d err=%v", n, err)
	}
}

// TestFlood tallies concurrent client outcomes.
func TestFlood(t *testing.T) {
	tally := chaos.Flood(50, func(i int) error {
		if i%10 == 0 {
			return io.ErrUnexpectedEOF
		}
		return nil
	})
	if tally.OK != 45 || tally.Failed != 5 {
		t.Fatalf("tally %d ok / %d failed, want 45/5", tally.OK, tally.Failed)
	}
	if len(tally.Errs) == 0 {
		t.Fatal("no errors retained")
	}
}
