package chaos

import (
	"errors"
	"fmt"
	"sync"
	"syscall"
)

// ErrShortWrite is the injected error accompanying a truncated store write:
// the fault hands the store a prefix of the intended bytes and this error,
// modeling a write(2) that returned early on a failing device.
var ErrShortWrite = errors.New("chaos: injected short write")

// StoreFaults is the fault-injecting store hook: wired into a store.Dir's
// Fault seam it subjects every atomic write to a seeded schedule of short
// writes and, past a budget, a full disk. The store's contract under these
// faults — temp files cleaned up, targets never torn, ENOSPC surfaced as a
// typed error — is what the integrity tests assert.
//
// The i-th write consults Plan.Int(Name, i, 0, 99): values below ShortPct
// become short writes (half the bytes land in the temp file, ErrShortWrite
// is returned). Independently, once NoSpaceAfter writes have been attempted
// (when > 0), every further write fails with ENOSPC before writing anything
// — a disk does not un-fill itself.
type StoreFaults struct {
	// Plan seeds the schedule; nil injects nothing.
	Plan *Plan
	// Name is the schedule name; empty means "store-write".
	Name string
	// ShortPct is the percentage of writes truncated (0-100).
	ShortPct int
	// NoSpaceAfter, when > 0, makes every write past the first N fail with
	// ENOSPC.
	NoSpaceAfter int

	mu sync.Mutex
	n  int
}

// Fault implements the store's WriteFault seam (func(path string, blob
// []byte) ([]byte, error)).
func (s *StoreFaults) Fault(path string, blob []byte) ([]byte, error) {
	if s == nil || (s.Plan == nil && s.NoSpaceAfter <= 0) {
		return blob, nil
	}
	s.mu.Lock()
	i := s.n
	s.n++
	s.mu.Unlock()
	if s.NoSpaceAfter > 0 && i >= s.NoSpaceAfter {
		return nil, fmt.Errorf("chaos: injected full disk writing %s: %w", path, syscall.ENOSPC)
	}
	name := s.Name
	if name == "" {
		name = "store-write"
	}
	if s.Plan != nil && s.ShortPct > 0 && s.Plan.Int(name, i, 0, 99) < s.ShortPct {
		return blob[:len(blob)/2], fmt.Errorf("chaos: %w: %s (%d of %d bytes)", ErrShortWrite, path, len(blob)/2, len(blob))
	}
	return blob, nil
}

// Writes reports how many writes the hook has inspected.
func (s *StoreFaults) Writes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
