package chaos_test

import (
	"os/exec"
	"testing"
	"time"

	"mkos/internal/fault/chaos"
)

// TestWorkerKillerBudget pins the arming discipline: a nil plan or zero
// budget disarms, a positive budget arms exactly that many kills, and a
// negative budget never runs out.
func TestWorkerKillerBudget(t *testing.T) {
	disarmed := &chaos.WorkerKiller{Kills: 5} // no Plan
	if disarmed.Arm(1) {
		t.Fatal("killer without a plan armed a kill")
	}
	zero := &chaos.WorkerKiller{Plan: chaos.NewPlan(1), Kills: 0}
	if zero.Arm(1) {
		t.Fatal("killer with zero budget armed a kill")
	}

	budget := &chaos.WorkerKiller{Plan: chaos.NewPlan(1), Kills: 2, Min: time.Hour, Max: time.Hour}
	for i := 0; i < 2; i++ {
		if !budget.Arm(100000 + i) {
			t.Fatalf("arm %d refused with budget remaining", i)
		}
	}
	if budget.Arm(100002) {
		t.Fatal("killer armed past its budget")
	}

	unlimited := &chaos.WorkerKiller{Plan: chaos.NewPlan(1), Kills: -1, Min: time.Hour, Max: time.Hour}
	for i := 0; i < 20; i++ {
		if !unlimited.Arm(200000 + i) {
			t.Fatalf("unlimited killer refused arm %d", i)
		}
	}
}

// TestWorkerKillerKills arms the killer against a real child process and
// asserts the SIGKILL lands: the child (a sleep that would outlive the test)
// dies by signal within the planned delay window.
func TestWorkerKillerKills(t *testing.T) {
	cmd := exec.Command("sleep", "60")
	if err := cmd.Start(); err != nil {
		t.Skipf("cannot start child process: %v", err)
	}
	k := &chaos.WorkerKiller{
		Plan:  chaos.NewPlan(7),
		Kills: 1,
		Min:   10 * time.Millisecond,
		Max:   50 * time.Millisecond,
	}
	if !k.Arm(cmd.Process.Pid) {
		t.Fatal("killer refused to arm")
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("child exited cleanly; expected SIGKILL")
		}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("armed kill never landed")
	}
	// The landed kill is counted (poll briefly: the counter increments in the
	// killer's goroutine after the signal is delivered).
	deadline := time.Now().Add(2 * time.Second)
	for k.Killed() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("Killed() = %d, want 1", k.Killed())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkerKillerDeterministicDelays: the same seed plans the same kill
// delays, so a chaos failure replays exactly.
func TestWorkerKillerDeterministicDelays(t *testing.T) {
	min, max := 100*time.Millisecond, 900*time.Millisecond
	a, b := chaos.NewPlan(42), chaos.NewPlan(42)
	for i := 0; i < 16; i++ {
		da := a.Delay("worker-kill", i, min, max)
		db := b.Delay("worker-kill", i, min, max)
		if da != db {
			t.Fatalf("kill %d: delays diverged (%v vs %v)", i, da, db)
		}
		if da < min || da > max {
			t.Fatalf("kill %d: delay %v outside [%v, %v]", i, da, min, max)
		}
	}
}
