package chaos

import (
	"os"
	"sync"
	"time"
)

// WorkerKiller is the worker-sandbox analogue of Killer: where Killer owns
// and SIGKILLs a whole service process, WorkerKiller assassinates the
// supervised *worker* children a daemon spawns, at seeded delays after each
// spawn. It does not own the processes — the supervisor does, and restarting
// the victim is exactly the behavior under test — so the injector is armed
// from the supervisor's spawn hook with the fresh pid and fires from its own
// timer goroutine.
//
// Schedules come from a Plan: the i-th armed kill waits
// Plan.Delay(Name, i, Min, Max), so the same seed kills the same incarnation
// at the same offset and a chaos failure is re-runnable. Kills is the budget
// (< 0 = unlimited — the "poison node" mode where every incarnation dies
// until the supervisor's circuit breaker trips).
type WorkerKiller struct {
	// Plan seeds the delay schedule; nil disarms the killer.
	Plan *Plan
	// Name is the schedule name; empty means "worker-kill".
	Name string
	// Kills bounds how many workers are killed in total: 0 disarms, < 0 is
	// unlimited.
	Kills int
	// Min and Max bound each kill's delay after its worker's spawn.
	Min, Max time.Duration

	mu    sync.Mutex
	armed int
	done  int
}

// Arm schedules the death of the worker process pid, just spawned. It
// returns true when a kill was scheduled (budget remaining), false when the
// killer is disarmed or spent. The SIGKILL is delivered from a background
// goroutine after the planned delay; a worker that exits first makes the
// signal a harmless ESRCH.
func (k *WorkerKiller) Arm(pid int) bool {
	if k == nil || k.Plan == nil || k.Kills == 0 {
		return false
	}
	k.mu.Lock()
	if k.Kills > 0 && k.armed >= k.Kills {
		k.mu.Unlock()
		return false
	}
	i := k.armed
	k.armed++
	k.mu.Unlock()
	name := k.Name
	if name == "" {
		name = "worker-kill"
	}
	delay := k.Plan.Delay(name, i, k.Min, k.Max)
	go func() {
		time.Sleep(delay)
		// os.FindProcess never fails on unix; Kill is SIGKILL. A worker that
		// already exited makes this an error, which is not a landed kill.
		proc, err := os.FindProcess(pid)
		if err != nil {
			return
		}
		if proc.Kill() == nil {
			k.mu.Lock()
			k.done++
			k.mu.Unlock()
		}
	}()
	return true
}

// Killed reports how many armed kills have actually landed so far.
func (k *WorkerKiller) Killed() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.done
}
