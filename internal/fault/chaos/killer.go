package chaos

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// Killer is the daemon-kill injector: it owns a service subprocess and can
// SIGKILL it at a planned instant — no SIGTERM courtesy, no drain window —
// then start a fresh incarnation with the same arguments. A service that
// claims crash tolerance must survive this loop with its on-disk state as
// the only witness; internal/simd's chaos test and the
// scripts/simd-chaos-check.sh CI gate both drive it (the script via plain
// shell `kill -9`, the test via this type).
type Killer struct {
	// Path and Args configure the subprocess (Args excludes the program
	// name, as for exec.Command). Stdout/Stderr, when non-nil, receive the
	// process output of every incarnation.
	Path   string
	Args   []string
	Stdout *os.File
	Stderr *os.File

	mu  sync.Mutex
	cmd *exec.Cmd
}

// Start launches a new incarnation. It fails if one is already running.
func (k *Killer) Start() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.cmd != nil {
		return fmt.Errorf("chaos: killer already owns pid %d", k.cmd.Process.Pid)
	}
	cmd := exec.Command(k.Path, k.Args...)
	if k.Stdout != nil {
		cmd.Stdout = k.Stdout
	}
	if k.Stderr != nil {
		cmd.Stderr = k.Stderr
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("chaos: starting %s: %w", k.Path, err)
	}
	k.cmd = cmd
	return nil
}

// Kill waits delay, then SIGKILLs the current incarnation and reaps it. The
// returned error reflects injector problems only — the subprocess dying of
// SIGKILL is the intended outcome, not an error.
func (k *Killer) Kill(delay time.Duration) error {
	if delay > 0 {
		time.Sleep(delay)
	}
	k.mu.Lock()
	cmd := k.cmd
	k.cmd = nil
	k.mu.Unlock()
	if cmd == nil {
		return fmt.Errorf("chaos: no process to kill")
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		return fmt.Errorf("chaos: SIGKILL pid %d: %w", cmd.Process.Pid, err)
	}
	cmd.Wait() // reap; exit status is expected to be the kill
	return nil
}

// Stop ends the current incarnation gracefully (SIGTERM) and waits for it —
// the clean-shutdown counterpart used after a chaos sequence completes. The
// process's exit error, if any, is returned so callers can assert a clean
// drain.
func (k *Killer) Stop() error {
	k.mu.Lock()
	cmd := k.cmd
	k.cmd = nil
	k.mu.Unlock()
	if cmd == nil {
		return nil
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("chaos: SIGTERM pid %d: %w", cmd.Process.Pid, err)
	}
	return cmd.Wait()
}

// Running reports whether an incarnation is currently owned.
func (k *Killer) Running() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.cmd != nil
}
