// Package fault is the failure-injection subsystem: the operational side of
// Sec. 5's "experiences" that the performance models alone cannot express.
// Running a lightweight kernel in production means living with McKernel
// instances that panic or hang at scale, IHK reservations that fail in job
// prologue scripts, and fatal LWK memory exhaustion (McKernel has no demand
// paging, so overcommit kills the job instead of swapping). Fugaku's TCS
// integration had to detect dead LWKs and fall back to Linux. This package
// provides a deterministic fault injector (same seed, same fault schedule), a
// heartbeat/watchdog detection model that distinguishes fail-stop from
// fail-silent faults, and the FailureReport the recovery experiments print.
package fault

import (
	"fmt"
	"time"

	"mkos/internal/sim"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// NodeCrash is a whole-node fail-stop: hardware fault or host Linux
	// panic. Applies to both OS configurations.
	NodeCrash Kind = iota
	// LWKPanic is a McKernel kernel panic: fail-stop, with a console
	// message the monitor sees at its next sweep.
	LWKPanic
	// LWKHang is a McKernel livelock or scheduler hang: fail-silent, only
	// the watchdog timeout notices it.
	LWKHang
	// IHKReserveFail is a prologue-time resource reservation failure:
	// ihk reserve cpu/mem fails in the job prologue script (Sec. 5.1).
	IHKReserveFail
	// IKCTimeout is a lost inter-kernel message: a delegated system call
	// never returns, so the application stalls silently.
	IKCTimeout
	// LWKOOM is McKernel memory exhaustion. With no demand paging an
	// over-committed allocation is fatal, not reclaimable (Sec. 5.2).
	LWKOOM

	// NumKinds counts the fault kinds; reports index arrays by Kind to stay
	// free of map iteration order.
	NumKinds
)

func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "node-crash"
	case LWKPanic:
		return "lwk-panic"
	case LWKHang:
		return "lwk-hang"
	case IHKReserveFail:
		return "ihk-reserve-fail"
	case IKCTimeout:
		return "ikc-timeout"
	case LWKOOM:
		return "lwk-oom"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// FailStop reports whether the fault announces itself (death notification,
// console panic): the monitor learns of it at its next heartbeat sweep. The
// alternative is fail-silent: the node looks alive but makes no progress, and
// only the watchdog timeout uncovers it.
func (k Kind) FailStop() bool {
	switch k {
	case NodeCrash, LWKPanic, LWKOOM, IHKReserveFail:
		return true
	default:
		return false
	}
}

// LWKOnly reports whether the fault can only strike a McKernel node. Native
// Linux nodes suffer only NodeCrash — the basis of the graceful-degradation
// tradeoff: falling back to Linux trades noise for robustness.
func (k Kind) LWKOnly() bool { return k != NodeCrash }

// Rates configures how often each kind strikes. Time-based kinds are
// per-node-hour exponential arrival rates; the rest are per-attempt
// probabilities.
type Rates struct {
	// NodeCrashPerHour is the per-node-hour rate of whole-node crashes.
	NodeCrashPerHour float64
	// LWKPanicPerHour is the per-node-hour rate of McKernel panics.
	LWKPanicPerHour float64
	// LWKHangPerHour is the per-node-hour rate of McKernel hangs.
	LWKHangPerHour float64
	// IHKReserveFailProb is the per-node probability that the prologue's
	// IHK reservation fails.
	IHKReserveFailProb float64
	// IKCTimeoutProb is the per-node per-attempt probability of a lost IKC
	// message stalling the job.
	IKCTimeoutProb float64
	// LWKOOMProb is the per-node per-attempt probability that the job's
	// allocations exhaust the LWK partition.
	LWKOOMProb float64
}

// Zero reports whether no fault can ever fire.
func (r Rates) Zero() bool {
	return r.NodeCrashPerHour == 0 && r.LWKPanicPerHour == 0 && r.LWKHangPerHour == 0 &&
		r.IHKReserveFailProb == 0 && r.IKCTimeoutProb == 0 && r.LWKOOMProb == 0
}

// Fault is one injected failure: kind, victim node, and offset from the
// attempt's run start.
type Fault struct {
	Kind Kind
	Node int // global node index
	At   sim.Duration
}

// Injector deterministically samples fault schedules. Every decision is drawn
// from a stream derived from (seed, job, attempt, node), so schedules do not
// depend on call order, on which other jobs ran first, or on anything outside
// the seed — same seed, same fault schedule, same report.
type Injector struct {
	Rates Rates
	seed  int64
}

// NewInjector builds an injector for a rate configuration.
func NewInjector(rates Rates, seed int64) *Injector {
	return &Injector{Rates: rates, seed: seed}
}

// Seed returns the injector's seed (recorded in reports).
func (in *Injector) Seed() int64 { return in.seed }

func (in *Injector) stream(jobID, attempt, node int, label string) *sim.Rand {
	return sim.NewRand(in.seed).DeriveNamed(
		fmt.Sprintf("fault/%s/j%d/a%d/n%d", label, jobID, attempt, node))
}

// Prologue returns the nodes (ascending) whose IHK reservation fails during
// this attempt's prologue script. Only meaningful for McKernel attempts;
// native Linux jobs run no IHK prologue.
func (in *Injector) Prologue(jobID, attempt int, nodes []int) []int {
	if in.Rates.IHKReserveFailProb <= 0 {
		return nil
	}
	var out []int
	for _, n := range nodes {
		if in.stream(jobID, attempt, n, "prologue").Bernoulli(in.Rates.IHKReserveFailProb) {
			out = append(out, n)
		}
	}
	return out
}

// Runtime returns the faults striking during an attempt of nominal length
// runtime, earliest first (ties broken by node then kind, keeping the order
// deterministic). lwk selects whether LWK-only kinds can fire.
func (in *Injector) Runtime(jobID, attempt int, nodes []int, lwk bool, runtime sim.Duration) []Fault {
	if runtime <= 0 {
		return nil
	}
	var out []Fault
	for _, n := range nodes {
		rng := in.stream(jobID, attempt, n, "runtime")
		// Fixed sampling order per node: every kind always draws, so one
		// rate change never perturbs another kind's schedule.
		out = appendArrival(out, rng, NodeCrash, n, in.Rates.NodeCrashPerHour, runtime)
		panicAt := appendArrival(nil, rng, LWKPanic, n, in.Rates.LWKPanicPerHour, runtime)
		hangAt := appendArrival(nil, rng, LWKHang, n, in.Rates.LWKHangPerHour, runtime)
		ikc := appendProb(nil, rng, IKCTimeout, n, in.Rates.IKCTimeoutProb, runtime)
		oom := appendProb(nil, rng, LWKOOM, n, in.Rates.LWKOOMProb, runtime)
		if lwk {
			out = append(out, panicAt...)
			out = append(out, hangAt...)
			out = append(out, ikc...)
			out = append(out, oom...)
		}
	}
	sortFaults(out)
	return out
}

// appendArrival samples an exponential time-to-failure for a per-node-hour
// rate and appends a fault if it lands inside the attempt.
func appendArrival(out []Fault, rng *sim.Rand, k Kind, node int, perHour float64, runtime sim.Duration) []Fault {
	if perHour <= 0 {
		// Burn a draw anyway so rates are independent knobs.
		_ = rng.Float64()
		return out
	}
	ttf := sim.Duration(rng.Exp(float64(time.Hour) / perHour))
	if ttf < runtime {
		out = append(out, Fault{Kind: k, Node: node, At: ttf})
	}
	return out
}

// appendProb samples a per-attempt Bernoulli fault with a uniform strike time.
func appendProb(out []Fault, rng *sim.Rand, k Kind, node int, p float64, runtime sim.Duration) []Fault {
	hit := rng.Bernoulli(p)
	at := sim.Duration(rng.Uniform(0, float64(runtime)))
	if p > 0 && hit {
		out = append(out, Fault{Kind: k, Node: node, At: at})
	}
	return out
}

// sortFaults orders by (At, Node, Kind); insertion sort keeps it allocation
// free and stable for the small per-attempt schedules.
func sortFaults(fs []Fault) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && faultLess(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func faultLess(a, b Fault) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Kind < b.Kind
}
