package fault

import (
	"fmt"
	"time"

	"mkos/internal/sim"
)

// Watchdog models the cluster monitor's liveness detection: every node (the
// TCS agent on Fugaku, the batch health checker on OFP) heartbeats every
// Interval; the monitor declares a node dead when it has been silent for
// Timeout. Fail-stop faults are cheaper to detect — the dying node's console
// panic or closed connection is noticed at the monitor's next sweep — while
// fail-silent faults (hangs, lost IKC messages) are only uncovered when the
// watchdog expires.
type Watchdog struct {
	Interval time.Duration // heartbeat period
	Timeout  time.Duration // silence before a node is declared dead
}

// DefaultWatchdog returns production-flavored parameters: 1 s heartbeats,
// 5 s silence threshold.
func DefaultWatchdog() Watchdog {
	return Watchdog{Interval: time.Second, Timeout: 5 * time.Second}
}

// Validate rejects configurations that cannot work: the timeout must exceed
// the heartbeat interval or every healthy node would be declared dead between
// two beats.
func (w Watchdog) Validate() error {
	if w.Interval <= 0 {
		return fmt.Errorf("fault: watchdog interval %v", w.Interval)
	}
	if w.Timeout <= w.Interval {
		return fmt.Errorf("fault: watchdog timeout %v must exceed interval %v", w.Timeout, w.Interval)
	}
	return nil
}

// DetectionTime returns when the monitor learns about a fault striking at
// faultAt (offset from the attempt's run start). Fail-stop faults surface at
// the next heartbeat sweep; fail-silent faults when the watchdog expires,
// Timeout after the victim's last heartbeat.
func (w Watchdog) DetectionTime(k Kind, faultAt sim.Duration) sim.Duration {
	beats := faultAt / w.Interval
	if k.FailStop() {
		// Next sweep strictly after the fault.
		return (beats + 1) * w.Interval
	}
	// Last heartbeat the victim managed to send, then silence.
	return beats*w.Interval + w.Timeout
}

// DetectionLatency is the gap between a fault striking and the monitor
// noticing — the window during which every node of the job burns time for
// nothing (the "wasted node-seconds" of the report).
func (w Watchdog) DetectionLatency(k Kind, faultAt sim.Duration) sim.Duration {
	return w.DetectionTime(k, faultAt) - faultAt
}
