package noise

import (
	"encoding/json"
	"sort"
	"time"

	"mkos/internal/stats"
)

// IterationDist is a compressed distribution of FWQ iteration times: the
// overwhelming majority of iterations are exactly the work quantum (no noise
// touched them), so only the perturbed ones are stored explicitly. This is
// what makes machine-scale noise profiles (Figure 4's 158,976-node sweep)
// tractable: memory scales with noise events, not with iterations.
type IterationDist struct {
	Work      time.Duration
	Clean     int64
	perturbed []float64 // microseconds, sorted
}

// NewIterationDist builds a distribution from a clean count and the
// perturbed iteration durations.
func NewIterationDist(work time.Duration, clean int64, perturbed []time.Duration) *IterationDist {
	d := &IterationDist{Work: work, Clean: clean}
	d.perturbed = make([]float64, len(perturbed))
	for i, p := range perturbed {
		d.perturbed[i] = float64(p) / float64(time.Microsecond)
	}
	sort.Float64s(d.perturbed)
	return d
}

// Merge combines several distributions with the same work quantum.
func MergeDists(ds []*IterationDist) *IterationDist {
	if len(ds) == 0 {
		return &IterationDist{}
	}
	out := &IterationDist{Work: ds[0].Work}
	for _, d := range ds {
		out.Clean += d.Clean
		out.perturbed = append(out.perturbed, d.perturbed...)
	}
	sort.Float64s(out.perturbed)
	return out
}

// iterationDistJSON is the serialized form of an IterationDist; the sweep
// result cache stores distributions through it.
type iterationDistJSON struct {
	Work      time.Duration `json:"work"`
	Clean     int64         `json:"clean"`
	Perturbed []float64     `json:"perturbed,omitempty"`
}

// MarshalJSON serializes the distribution, perturbed samples included, so a
// cached Figure 4 trial round-trips losslessly.
func (d *IterationDist) MarshalJSON() ([]byte, error) {
	return json.Marshal(iterationDistJSON{Work: d.Work, Clean: d.Clean, Perturbed: d.perturbed})
}

// UnmarshalJSON restores a serialized distribution, re-sorting the perturbed
// samples so a hand-edited or corrupted file cannot break the sorted-slice
// invariant the CDF queries rely on.
func (d *IterationDist) UnmarshalJSON(b []byte) error {
	var j iterationDistJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	sort.Float64s(j.Perturbed)
	d.Work, d.Clean, d.perturbed = j.Work, j.Clean, j.Perturbed
	return nil
}

// N returns the total number of iterations.
func (d *IterationDist) N() int64 { return d.Clean + int64(len(d.perturbed)) }

// Max returns the largest iteration time in microseconds.
func (d *IterationDist) Max() float64 {
	if len(d.perturbed) > 0 {
		return d.perturbed[len(d.perturbed)-1]
	}
	if d.Clean > 0 {
		return float64(d.Work) / float64(time.Microsecond)
	}
	return 0
}

// At returns P(iteration <= us).
func (d *IterationDist) At(us float64) float64 {
	n := d.N()
	if n == 0 {
		return 0
	}
	var count int64
	if us >= float64(d.Work)/float64(time.Microsecond) {
		count += d.Clean
	}
	idx := sort.SearchFloat64s(d.perturbed, us)
	// Include equal values.
	for idx < len(d.perturbed) && d.perturbed[idx] <= us {
		idx++
	}
	count += int64(idx)
	return float64(count) / float64(n)
}

// Points returns n evenly spaced CDF points spanning [Work, Max], the
// Figure 4 plotting range.
func (d *IterationDist) Points(n int) []stats.Point {
	if d.N() == 0 || n < 2 {
		return nil
	}
	lo := float64(d.Work) / float64(time.Microsecond)
	hi := d.Max()
	if hi <= lo {
		hi = lo + 1
	}
	pts := make([]stats.Point, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = stats.Point{X: x, Y: d.At(x)}
	}
	return pts
}

// TailProbability returns P(iteration > us), the tail the paper's CDF plots
// emphasize.
func (d *IterationDist) TailProbability(us float64) float64 {
	return 1 - d.At(us)
}
