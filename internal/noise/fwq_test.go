package noise

import (
	"testing"
	"time"
)

func TestAnalyzeBasics(t *testing.T) {
	iters := []time.Duration{
		6500 * time.Microsecond,
		6500 * time.Microsecond,
		6550 * time.Microsecond, // 50us noise
		6500 * time.Microsecond,
	}
	a, err := Analyze(iters)
	if err != nil {
		t.Fatal(err)
	}
	if a.N != 4 {
		t.Fatalf("N = %d", a.N)
	}
	if a.Tmin != 6500*time.Microsecond || a.Tmax != 6550*time.Microsecond {
		t.Fatalf("Tmin/Tmax = %v/%v", a.Tmin, a.Tmax)
	}
	if a.MaxNoise != 50*time.Microsecond {
		t.Fatalf("MaxNoise = %v", a.MaxNoise)
	}
	// Eq. 2: sum((Ti-Tmin)/Tmin)/n = (50/6500)/4.
	want := (50.0 / 6500.0) / 4.0
	if diff := a.Rate - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("Rate = %v, want %v", a.Rate, want)
	}
	if len(a.Lengths) != 4 || a.Lengths[2] != 50*time.Microsecond || a.Lengths[0] != 0 {
		t.Fatalf("Lengths wrong: %v", a.Lengths)
	}
}

func TestAnalyzeNoSamples(t *testing.T) {
	if _, err := Analyze(nil); err != ErrNoSamples {
		t.Fatalf("err = %v", err)
	}
}

func TestAnalyzeNoiseFree(t *testing.T) {
	a, err := Analyze([]time.Duration{time.Millisecond, time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxNoise != 0 || a.Rate != 0 {
		t.Fatalf("noise-free run reported noise: %+v", a)
	}
}

func TestMerge(t *testing.T) {
	a1, _ := Analyze([]time.Duration{100 * time.Microsecond, 110 * time.Microsecond})
	a2, _ := Analyze([]time.Duration{95 * time.Microsecond, 140 * time.Microsecond})
	m, err := Merge([]Analysis{a1, a2})
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 4 {
		t.Fatalf("N = %d", m.N)
	}
	if m.Tmin != 95*time.Microsecond || m.Tmax != 140*time.Microsecond {
		t.Fatalf("global Tmin/Tmax = %v/%v", m.Tmin, m.Tmax)
	}
	if m.MaxNoise != 45*time.Microsecond {
		t.Fatalf("MaxNoise = %v", m.MaxNoise)
	}
	wantRate := (a1.Rate*2 + a2.Rate*2) / 4
	if d := m.Rate - wantRate; d > 1e-12 || d < -1e-12 {
		t.Fatalf("weighted rate = %v, want %v", m.Rate, wantRate)
	}
	if len(m.Lengths) != 4 {
		t.Fatalf("merged lengths = %d", len(m.Lengths))
	}
}

func TestMergeEmpty(t *testing.T) {
	if _, err := Merge(nil); err != ErrNoSamples {
		t.Fatalf("err = %v", err)
	}
	if _, err := Merge([]Analysis{{}}); err != ErrNoSamples {
		t.Fatalf("all-empty err = %v", err)
	}
}

func TestIterationCDF(t *testing.T) {
	c := IterationCDF([]time.Duration{
		6500 * time.Microsecond, 6500 * time.Microsecond, 13000 * time.Microsecond,
	})
	if c.N() != 3 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.At(6500); got < 0.6 || got > 0.7 {
		t.Fatalf("At(6500us) = %v, want 2/3", got)
	}
	if c.Max() != 13000 {
		t.Fatalf("Max = %v", c.Max())
	}
}

func TestSeriesMicros(t *testing.T) {
	s := SeriesMicros([]time.Duration{0, 50 * time.Microsecond, 20 * time.Microsecond})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.V[1] != 50 {
		t.Fatalf("V[1] = %v", s.V[1])
	}
	if s.T[2] != 2 {
		t.Fatalf("T[2] = %v", s.T[2])
	}
	if s.MaxV() != 50 {
		t.Fatalf("MaxV = %v", s.MaxV())
	}
}

func TestWorstBy(t *testing.T) {
	mk := func(noises ...time.Duration) Analysis {
		a := Analysis{N: len(noises)}
		a.Lengths = noises
		return a
	}
	as := []Analysis{
		mk(10 * time.Microsecond),                     // total 10
		mk(500*time.Microsecond, 1*time.Microsecond),  // total 501 (worst)
		mk(100*time.Microsecond, 50*time.Microsecond), // total 150
		mk(), // total 0
	}
	worst := WorstBy(as, 2)
	if len(worst) != 2 || worst[0] != 1 || worst[1] != 2 {
		t.Fatalf("worst = %v, want [1 2]", worst)
	}
	// Requesting more than available clamps.
	all := WorstBy(as, 100)
	if len(all) != 4 {
		t.Fatalf("clamped len = %d", len(all))
	}
	if got := WorstBy(nil, 5); len(got) != 0 {
		t.Fatal("empty input must give empty output")
	}
}
