package noise

import (
	"testing"
	"testing/quick"
	"time"

	"mkos/internal/sim"
)

// genTimeline builds a deterministic timeline from fuzz bytes.
func genTimeline(spec []byte) *Timeline {
	tl := &Timeline{perCPU: map[int][]Interruption{}}
	t := sim.Time(0)
	for _, b := range spec {
		gap := time.Duration(b%97+1) * 10 * time.Microsecond
		length := time.Duration(b%13+1) * 5 * time.Microsecond
		t = t.Add(gap)
		tl.perCPU[0] = append(tl.perCPU[0], Interruption{
			Start: t, Len: length, CPU: 0, Source: "fuzz",
		})
	}
	return tl
}

// Property: Advance never finishes before start+work, and the extra time
// never exceeds the total interruption time on the core.
func TestQuickAdvanceBounds(t *testing.T) {
	f := func(spec []byte, startRaw uint16, workRaw uint8) bool {
		tl := genTimeline(spec)
		start := sim.Time(startRaw) * sim.Time(50*time.Microsecond)
		work := time.Duration(workRaw%200+1) * 100 * time.Microsecond
		end := tl.Advance(0, start, work)
		if end < start.Add(work) {
			return false
		}
		return end.Sub(start) <= work+tl.TotalStolen(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Advance is monotone in the start time — starting later never
// finishes earlier.
func TestQuickAdvanceMonotone(t *testing.T) {
	f := func(spec []byte, aRaw, bRaw uint16, workRaw uint8) bool {
		tl := genTimeline(spec)
		a := sim.Time(aRaw) * sim.Time(20*time.Microsecond)
		b := sim.Time(bRaw) * sim.Time(20*time.Microsecond)
		if a > b {
			a, b = b, a
		}
		work := time.Duration(workRaw%100+1) * 50 * time.Microsecond
		return tl.Advance(0, a, work) <= tl.Advance(0, b, work)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: splitting a quantum of work into two back-to-back quanta gives
// the same completion time as running it whole (Advance composes).
func TestQuickAdvanceComposes(t *testing.T) {
	f := func(spec []byte, workRaw uint8, splitRaw uint8) bool {
		tl := genTimeline(spec)
		work := time.Duration(workRaw%100+2) * 50 * time.Microsecond
		frac := time.Duration(splitRaw%99 + 1)
		first := work * frac / 100
		if first <= 0 || first >= work {
			return true
		}
		whole := tl.Advance(0, 0, work)
		mid := tl.Advance(0, 0, first)
		composed := tl.Advance(0, mid, work-first)
		return composed == whole
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the sketch and exact FWQ runners agree on arbitrary generated
// timelines (the fuzzing counterpart of TestSketchMatchesExact in apps).
func TestQuickTotalStolenConsistency(t *testing.T) {
	f := func(spec []byte) bool {
		tl := genTimeline(spec)
		var sum time.Duration
		for _, iv := range tl.ForCPU(0) {
			sum += iv.Len
		}
		return sum == tl.TotalStolen(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
