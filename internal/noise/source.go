package noise

import (
	"fmt"
	"sort"
	"time"

	"mkos/internal/sim"
	"mkos/internal/telemetry"
)

// Interruption is one episode of stolen CPU time on one core.
type Interruption struct {
	Start  sim.Time
	Len    time.Duration
	CPU    int
	Source string
}

// End returns the instant the interruption finishes.
func (iv Interruption) End() sim.Time { return iv.Start.Add(iv.Len) }

// Targeting selects which cores a source's events land on.
type Targeting int

const (
	// TargetOne lands every event on one fixed core (a bound daemon).
	TargetOne Targeting = iota
	// TargetRoundRobin spreads events across the target cores in turn
	// (irqbalance-style spreading).
	TargetRoundRobin
	// TargetRandom picks a uniformly random target core per event (unbound
	// kworker placement).
	TargetRandom
	// TargetAll hits every target core simultaneously with the same event
	// (broadcast TLBI, global IPI-based PMU reads).
	TargetAll
)

// Source describes one noise generator: when events happen and how long they
// steal the CPU. Interval and length distributions are lognormal around the
// configured means, matching the heavy-tailed FWQ traces in the paper, with
// an optional Pareto tail for the rare extreme events that dominate
// max-noise-length statistics.
type Source struct {
	Name  string
	Cores []int // candidate target cores
	Mode  Targeting

	Every      time.Duration // mean inter-arrival time
	EveryCV    float64       // coefficient of variation of the interval (0 = periodic)
	Length     time.Duration // mean stolen time per event
	LengthCV   float64       // spread of the length distribution
	TailProb   float64       // probability an event comes from the Pareto tail
	TailFactor float64       // tail event length multiplier (xm = Length*TailFactor)
	TailAlpha  float64       // Pareto shape; 0 selects the default 1.8
	Disabled   bool
}

// Validate reports configuration errors.
func (s *Source) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("noise: source without name")
	}
	if len(s.Cores) == 0 {
		return fmt.Errorf("noise: source %q has no target cores", s.Name)
	}
	if s.Every <= 0 {
		return fmt.Errorf("noise: source %q has non-positive interval", s.Name)
	}
	if s.Length <= 0 {
		return fmt.Errorf("noise: source %q has non-positive length", s.Name)
	}
	if s.TailProb < 0 || s.TailProb > 1 {
		return fmt.Errorf("noise: source %q tail probability %v out of range", s.Name, s.TailProb)
	}
	return nil
}

func (s *Source) sampleInterval(rng *sim.Rand) time.Duration {
	if s.EveryCV <= 0 {
		return s.Every
	}
	d := rng.DurationLogNormal(s.Every, s.EveryCV)
	if d < time.Nanosecond {
		d = time.Nanosecond
	}
	return d
}

func (s *Source) sampleLength(rng *sim.Rand) time.Duration {
	if s.TailProb > 0 && rng.Bernoulli(s.TailProb) {
		xm := float64(s.Length) * s.TailFactor
		alpha := s.TailAlpha
		if alpha <= 0 {
			alpha = 1.8
		}
		return time.Duration(rng.Pareto(xm, alpha))
	}
	if s.LengthCV <= 0 {
		return s.Length
	}
	d := rng.DurationLogNormal(s.Length, s.LengthCV)
	if d < time.Nanosecond {
		d = time.Nanosecond
	}
	return d
}

// Generate produces the source's interruptions over [0, horizon) using the
// provided RNG stream. Output is sorted by start time.
func (s *Source) Generate(horizon time.Duration, rng *sim.Rand) []Interruption {
	if s.Disabled {
		return nil
	}
	var out []Interruption
	rr := 0
	// First arrival is uniform within one interval so independent sources
	// are not phase-aligned at t=0.
	t := sim.Time(rng.DurationUniform(0, s.Every))
	for t < sim.Time(horizon) {
		length := s.sampleLength(rng)
		switch s.Mode {
		case TargetAll:
			for _, c := range s.Cores {
				out = append(out, Interruption{Start: t, Len: length, CPU: c, Source: s.Name})
			}
		case TargetRoundRobin:
			c := s.Cores[rr%len(s.Cores)]
			rr++
			out = append(out, Interruption{Start: t, Len: length, CPU: c, Source: s.Name})
		case TargetRandom:
			c := s.Cores[rng.Intn(len(s.Cores))]
			out = append(out, Interruption{Start: t, Len: length, CPU: c, Source: s.Name})
		default: // TargetOne
			out = append(out, Interruption{Start: t, Len: length, CPU: s.Cores[0], Source: s.Name})
		}
		t = t.Add(s.sampleInterval(rng))
	}
	return out
}

// Profile is a node's complete noise description: the set of active sources.
type Profile struct {
	Sources []*Source
	// Subsystem labels the owning OS model ("linux", "mckernel") so the
	// telemetry counters this profile emits are attributable; empty means
	// the generic "noise" namespace.
	Subsystem string
}

// Add appends a source after validation.
func (p *Profile) Add(s *Source) error {
	if err := s.Validate(); err != nil {
		return err
	}
	p.Sources = append(p.Sources, s)
	return nil
}

// MustAdd appends a source and panics on configuration errors; used by the
// kernel models whose source definitions are static.
func (p *Profile) MustAdd(s *Source) {
	if err := p.Add(s); err != nil {
		panic(err)
	}
}

// ByName returns the named source or nil.
func (p *Profile) ByName(name string) *Source {
	for _, s := range p.Sources {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Timeline generates all interruptions over [0, horizon) grouped per core.
// Each source draws from an independent derived RNG stream, so disabling one
// source does not perturb the others' draws — required for the Table 2
// one-countermeasure-at-a-time methodology to isolate effects.
func (p *Profile) Timeline(horizon time.Duration, rng *sim.Rand) *Timeline {
	tl := &Timeline{perCPU: make(map[int][]Interruption)}
	sub := p.Subsystem
	if sub == "" {
		sub = "noise"
	}
	for _, s := range p.Sources {
		srcRng := rng.DeriveNamed(s.Name)
		events := s.Generate(horizon, srcRng)
		var stolen time.Duration
		for _, iv := range events {
			tl.perCPU[iv.CPU] = append(tl.perCPU[iv.CPU], iv)
			stolen += iv.Len
		}
		if len(events) > 0 {
			telemetry.C(sub + ".noise.events." + s.Name).Add(int64(len(events)))
			telemetry.C(sub + ".noise.stolen_ns").Add(int64(stolen))
		}
	}
	for cpu := range tl.perCPU {
		ivs := tl.perCPU[cpu]
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].Start != ivs[j].Start {
				return ivs[i].Start < ivs[j].Start
			}
			return ivs[i].Source < ivs[j].Source
		})
	}
	return tl
}

// Timeline holds per-core interruption streams and answers "how long does a
// quantum of work actually take on this core".
type Timeline struct {
	perCPU map[int][]Interruption
}

// ForCPU returns the interruptions on one core, sorted by start.
func (tl *Timeline) ForCPU(cpu int) []Interruption { return tl.perCPU[cpu] }

// TotalStolen returns the summed interruption time on a core.
func (tl *Timeline) TotalStolen(cpu int) time.Duration {
	var d time.Duration
	for _, iv := range tl.perCPU[cpu] {
		d += iv.Len
	}
	return d
}

// Advance computes when a quantum of work that starts at start on cpu
// finishes, accounting for every interruption that begins before the work
// completes (noise during the quantum extends it, potentially exposing it to
// further noise — the same fixed-point the FWQ benchmark measures).
func (tl *Timeline) Advance(cpu int, start sim.Time, work time.Duration) sim.Time {
	ivs := tl.perCPU[cpu]
	// Find first interruption ending after start.
	idx := sort.Search(len(ivs), func(i int) bool { return ivs[i].End() > start })
	end := start.Add(work)
	for ; idx < len(ivs); idx++ {
		iv := ivs[idx]
		if iv.Start >= end {
			break
		}
		// Stolen time: the part of the interruption overlapping our window
		// pushes the end out by the interruption's remaining length.
		stolen := iv.Len
		if iv.Start < start {
			overlap := iv.End().Sub(start)
			if overlap <= 0 {
				continue
			}
			stolen = overlap
		}
		end = end.Add(stolen)
	}
	return end
}
