// Package noise implements the paper's OS-noise machinery: the analytic
// delay model for bulk-synchronous applications (Eq. 1), noise-source
// descriptors and interruption timelines used by the kernel models, and the
// FWQ analysis (max noise length, Eq. 2 noise rate, CDFs).
package noise

import (
	"errors"
	"math"
	"time"
)

// Group is one noise group of the analytic model: interruptions of length L
// occurring with mean interval I on any given hardware thread.
type Group struct {
	Name   string
	Length time.Duration // L_i
	Every  time.Duration // I_i
}

// AnalyticModel is the paper's Eq. 1 estimator. For a bulk-synchronous
// application with N threads and synchronization interval S, a machine with
// M noise groups delays the application by
//
//	max_i ( (1 - (1 - S/I_i)^N) * L_i / S )
//
// where the first factor is the probability that at least one of the N
// threads is hit by group i's noise during a synchronization interval, and
// L_i/S is the relative delay when it happens.
type AnalyticModel struct {
	Groups []Group
}

// ErrNoGroups is returned when the model has no noise groups.
var ErrNoGroups = errors.New("noise: analytic model has no groups")

// HitProbability returns 1 - (1 - S/I)^N, the probability that the group's
// noise lands in at least one of the N per-thread synchronization intervals.
// S >= I saturates at 1.
func HitProbability(s, interval time.Duration, threads int) float64 {
	if interval <= 0 || threads <= 0 || s <= 0 {
		return 0
	}
	ratio := float64(s) / float64(interval)
	if ratio >= 1 {
		return 1
	}
	// (1-r)^N via exp/log1p for numerical stability at extreme N
	// (N is 7,630,848 on full-scale Fugaku).
	return 1 - math.Exp(float64(threads)*math.Log1p(-ratio))
}

// SlowdownOf returns group g's contribution to the relative delay.
func SlowdownOf(g Group, s time.Duration, threads int) float64 {
	if s <= 0 {
		return 0
	}
	return HitProbability(s, g.Every, threads) * float64(g.Length) / float64(s)
}

// Slowdown evaluates Eq. 1: the estimated relative delay (0.2 = 20% slower)
// for synchronization interval s across threads hardware threads, and the
// name of the dominating group.
func (m *AnalyticModel) Slowdown(s time.Duration, threads int) (float64, string, error) {
	if len(m.Groups) == 0 {
		return 0, "", ErrNoGroups
	}
	best, bestName := 0.0, m.Groups[0].Name
	for _, g := range m.Groups {
		if d := SlowdownOf(g, s, threads); d > best {
			best, bestName = d, g.Name
		}
	}
	return best, bestName, nil
}

// CriticalInterval returns the largest noise interval I (for a fixed length
// L) that still produces at least the target slowdown, by bisection. It
// answers questions like the paper's full-scale Fugaku observation: with
// N = 7,630,848 threads even noise "as rare as once in every 600 seconds"
// hits some thread almost every synchronization interval.
func CriticalInterval(length, s time.Duration, threads int, target float64) time.Duration {
	if target <= 0 || s <= 0 {
		return 0
	}
	lo, hi := time.Duration(1), 1000*time.Hour
	g := func(interval time.Duration) float64 {
		return SlowdownOf(Group{Length: length, Every: interval}, s, threads)
	}
	if g(hi) >= target {
		return hi
	}
	for i := 0; i < 100 && hi-lo > time.Nanosecond; i++ {
		mid := lo + (hi-lo)/2
		if g(mid) >= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
