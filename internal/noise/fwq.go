package noise

import (
	"errors"
	"time"

	"mkos/internal/stats"
)

// FWQResult is the outcome of a Fixed Work Quanta run on one core: the
// elapsed time of every loop iteration.
type FWQResult struct {
	CPU        int
	Iterations []time.Duration
}

// Analysis carries the metrics of Sec. 6.3 computed from FWQ samples.
type Analysis struct {
	N int
	// Tmin and Tmax are the shortest and longest iteration times.
	Tmin, Tmax time.Duration
	// MaxNoise is Tmax - Tmin, the paper's "maximum noise length".
	MaxNoise time.Duration
	// Rate is Eq. 2: sum((Ti - Tmin)/Tmin) / n.
	Rate float64
	// Lengths are the per-iteration noise lengths Li = Ti - Tmin.
	Lengths []time.Duration
}

// ErrNoSamples is returned when an analysis has no iterations to work with.
var ErrNoSamples = errors.New("noise: no FWQ samples")

// Analyze computes the paper's FWQ metrics over iteration times.
func Analyze(iterations []time.Duration) (Analysis, error) {
	if len(iterations) == 0 {
		return Analysis{}, ErrNoSamples
	}
	a := Analysis{N: len(iterations), Tmin: iterations[0], Tmax: iterations[0]}
	for _, t := range iterations {
		if t < a.Tmin {
			a.Tmin = t
		}
		if t > a.Tmax {
			a.Tmax = t
		}
	}
	a.MaxNoise = a.Tmax - a.Tmin
	a.Lengths = make([]time.Duration, len(iterations))
	sum := 0.0
	for i, t := range iterations {
		a.Lengths[i] = t - a.Tmin
		sum += float64(t-a.Tmin) / float64(a.Tmin)
	}
	a.Rate = sum / float64(len(iterations))
	return a, nil
}

// Merge combines analyses from multiple cores/nodes into a machine-level
// view: global Tmin/Tmax and sample-weighted rate.
func Merge(as []Analysis) (Analysis, error) {
	if len(as) == 0 {
		return Analysis{}, ErrNoSamples
	}
	out := Analysis{Tmin: as[0].Tmin, Tmax: as[0].Tmax}
	var rateWeighted float64
	for _, a := range as {
		if a.N == 0 {
			continue
		}
		out.N += a.N
		if a.Tmin < out.Tmin {
			out.Tmin = a.Tmin
		}
		if a.Tmax > out.Tmax {
			out.Tmax = a.Tmax
		}
		rateWeighted += a.Rate * float64(a.N)
		out.Lengths = append(out.Lengths, a.Lengths...)
	}
	if out.N == 0 {
		return Analysis{}, ErrNoSamples
	}
	out.MaxNoise = out.Tmax - out.Tmin
	out.Rate = rateWeighted / float64(out.N)
	return out, nil
}

// IterationCDF builds the empirical CDF of iteration times in microseconds,
// the quantity plotted in Figure 4.
func IterationCDF(iterations []time.Duration) *stats.CDF {
	xs := make([]float64, len(iterations))
	for i, t := range iterations {
		xs[i] = float64(t) / float64(time.Microsecond)
	}
	return stats.NewCDF(xs)
}

// SeriesMicros converts noise lengths into a (sample id, µs) series, the
// form of Figure 3's time-series plots.
func SeriesMicros(lengths []time.Duration) stats.Series {
	var s stats.Series
	for i, l := range lengths {
		s.Append(float64(i), float64(l)/float64(time.Microsecond))
	}
	return s
}

// WorstBy returns the indices of the k analyses with the largest total noise
// duration, mirroring the paper's in-situ selection of the 100 worst nodes
// before writing raw FWQ data to the parallel filesystem (Sec. 6.3).
func WorstBy(as []Analysis, k int) []int {
	type nodeNoise struct {
		idx   int
		total time.Duration
	}
	arr := make([]nodeNoise, len(as))
	for i, a := range as {
		var tot time.Duration
		for _, l := range a.Lengths {
			tot += l
		}
		arr[i] = nodeNoise{idx: i, total: tot}
	}
	// Selection by partial sort; n is small (node counts), clarity wins.
	for i := 0; i < len(arr) && i < k; i++ {
		maxAt := i
		for j := i + 1; j < len(arr); j++ {
			if arr[j].total > arr[maxAt].total {
				maxAt = j
			}
		}
		arr[i], arr[maxAt] = arr[maxAt], arr[i]
	}
	if k > len(arr) {
		k = len(arr)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = arr[i].idx
	}
	return out
}
