package noise

import (
	"testing"
	"time"

	"mkos/internal/sim"
)

func validSource() *Source {
	return &Source{
		Name:   "daemon",
		Cores:  []int{0},
		Mode:   TargetOne,
		Every:  time.Millisecond,
		Length: 10 * time.Microsecond,
	}
}

func TestSourceValidate(t *testing.T) {
	if err := validSource().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Source{
		{Cores: []int{0}, Every: time.Second, Length: time.Microsecond},
		{Name: "x", Every: time.Second, Length: time.Microsecond},
		{Name: "x", Cores: []int{0}, Length: time.Microsecond},
		{Name: "x", Cores: []int{0}, Every: time.Second},
		{Name: "x", Cores: []int{0}, Every: time.Second, Length: time.Microsecond, TailProb: 1.5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad source %d passed validation", i)
		}
	}
}

func TestSourceGenerateCountAndOrder(t *testing.T) {
	s := validSource()
	rng := sim.NewRand(1)
	ivs := s.Generate(time.Second, rng)
	// ~1000 events at 1ms intervals over 1s.
	if len(ivs) < 800 || len(ivs) > 1200 {
		t.Fatalf("event count = %d, want ~1000", len(ivs))
	}
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Start < ivs[i-1].Start {
			t.Fatal("events out of order")
		}
	}
	for _, iv := range ivs {
		if iv.CPU != 0 || iv.Source != "daemon" || iv.Len <= 0 {
			t.Fatalf("bad interruption: %+v", iv)
		}
	}
}

func TestSourceDisabled(t *testing.T) {
	s := validSource()
	s.Disabled = true
	if got := s.Generate(time.Second, sim.NewRand(1)); got != nil {
		t.Fatalf("disabled source generated %d events", len(got))
	}
}

func TestSourceTargetingModes(t *testing.T) {
	cores := []int{0, 1, 2, 3}
	mk := func(mode Targeting) []Interruption {
		s := validSource()
		s.Cores = cores
		s.Mode = mode
		return s.Generate(100*time.Millisecond, sim.NewRand(7))
	}

	rr := mk(TargetRoundRobin)
	for i := 1; i < len(rr); i++ {
		if rr[i].CPU != (rr[i-1].CPU+1)%4 {
			t.Fatal("round-robin not cycling")
		}
	}

	all := mk(TargetAll)
	if len(all)%4 != 0 {
		t.Fatalf("TargetAll count %d not multiple of cores", len(all))
	}
	// Events at the same instant must cover all cores.
	seen := map[int]bool{}
	first := all[0].Start
	for _, iv := range all {
		if iv.Start == first {
			seen[iv.CPU] = true
		}
	}
	if len(seen) != 4 {
		t.Fatalf("TargetAll first event covered %d cores", len(seen))
	}

	random := mk(TargetRandom)
	hit := map[int]int{}
	for _, iv := range random {
		hit[iv.CPU]++
	}
	if len(hit) < 3 {
		t.Fatalf("TargetRandom used only %d cores", len(hit))
	}

	one := mk(TargetOne)
	for _, iv := range one {
		if iv.CPU != 0 {
			t.Fatal("TargetOne must stick to first core")
		}
	}
}

func TestSourceTailEvents(t *testing.T) {
	s := validSource()
	s.TailProb = 0.1
	s.TailFactor = 100
	ivs := s.Generate(10*time.Second, sim.NewRand(3))
	var tails int
	for _, iv := range ivs {
		if iv.Len >= 100*s.Length {
			tails++
		}
	}
	if tails == 0 {
		t.Fatal("no tail events generated with TailProb=0.1")
	}
	frac := float64(tails) / float64(len(ivs))
	if frac < 0.05 || frac > 0.2 {
		t.Fatalf("tail fraction = %v, want ~0.1", frac)
	}
}

func TestSourcePeriodicWhenCVZero(t *testing.T) {
	s := validSource()
	s.EveryCV = 0
	ivs := s.Generate(100*time.Millisecond, sim.NewRand(5))
	for i := 2; i < len(ivs); i++ {
		gap := ivs[i].Start.Sub(ivs[i-1].Start)
		if gap != time.Millisecond {
			t.Fatalf("period drifted: %v", gap)
		}
	}
}

func TestProfileTimelineDeterministicAndIsolated(t *testing.T) {
	build := func(disableKworker bool) *Timeline {
		var p Profile
		p.MustAdd(&Source{Name: "daemon", Cores: []int{0}, Every: 10 * time.Millisecond, Length: 50 * time.Microsecond})
		kw := &Source{Name: "kworker", Cores: []int{1}, Every: 5 * time.Millisecond, Length: 20 * time.Microsecond, Disabled: disableKworker}
		p.MustAdd(kw)
		return p.Timeline(time.Second, sim.NewRand(42))
	}
	a, b := build(false), build(false)
	if len(a.ForCPU(0)) != len(b.ForCPU(0)) || a.TotalStolen(0) != b.TotalStolen(0) {
		t.Fatal("timeline not deterministic")
	}
	// Disabling kworker must not perturb the daemon stream (independent
	// derived RNG streams — required by the Table 2 methodology).
	c := build(true)
	if a.TotalStolen(0) != c.TotalStolen(0) || len(a.ForCPU(0)) != len(c.ForCPU(0)) {
		t.Fatal("disabling one source changed another source's draws")
	}
	if len(c.ForCPU(1)) != 0 {
		t.Fatal("disabled source still produced events")
	}
}

func TestProfileAddValidates(t *testing.T) {
	var p Profile
	if err := p.Add(&Source{}); err == nil {
		t.Fatal("invalid source accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd must panic on invalid source")
		}
	}()
	p.MustAdd(&Source{})
}

func TestProfileByName(t *testing.T) {
	var p Profile
	s := validSource()
	p.MustAdd(s)
	if p.ByName("daemon") != s {
		t.Fatal("ByName miss")
	}
	if p.ByName("nope") != nil {
		t.Fatal("ByName false positive")
	}
}

func TestTimelineAdvanceNoNoise(t *testing.T) {
	tl := &Timeline{perCPU: map[int][]Interruption{}}
	end := tl.Advance(0, sim.Time(100), time.Microsecond)
	if end != sim.Time(100).Add(time.Microsecond) {
		t.Fatalf("end = %v", end)
	}
}

func TestTimelineAdvanceSimpleSteal(t *testing.T) {
	tl := &Timeline{perCPU: map[int][]Interruption{
		0: {{Start: sim.Time(500), Len: 100 * time.Nanosecond, CPU: 0}},
	}}
	// Work [0, 1000ns) overlaps the interruption: end pushed to 1100ns.
	end := tl.Advance(0, 0, 1000*time.Nanosecond)
	if end != sim.Time(1100) {
		t.Fatalf("end = %v, want 1100", end)
	}
	// Work entirely before the interruption is unaffected.
	if end := tl.Advance(0, 0, 400*time.Nanosecond); end != sim.Time(400) {
		t.Fatalf("end = %v, want 400", end)
	}
	// Work after the interruption is unaffected.
	if end := tl.Advance(0, sim.Time(700), 100*time.Nanosecond); end != sim.Time(800) {
		t.Fatalf("end = %v, want 800", end)
	}
	// Other CPUs are unaffected.
	if end := tl.Advance(1, 0, 1000*time.Nanosecond); end != sim.Time(1000) {
		t.Fatalf("cpu1 end = %v", end)
	}
}

func TestTimelineAdvancePartialOverlapAtStart(t *testing.T) {
	tl := &Timeline{perCPU: map[int][]Interruption{
		0: {{Start: sim.Time(0), Len: 1000 * time.Nanosecond, CPU: 0}},
	}}
	// Work starting at 600 inside the [0,1000) interruption: the remaining
	// 400ns steal applies.
	end := tl.Advance(0, sim.Time(600), 100*time.Nanosecond)
	if end != sim.Time(1100) {
		t.Fatalf("end = %v, want 1100", end)
	}
}

func TestTimelineAdvanceCascade(t *testing.T) {
	// Noise extending the window exposes the work to later noise: work of
	// 1000ns from 0 with interruptions at 900 (len 200) and 1100 (len 300)
	// ends at 1000+200+300 = 1500.
	tl := &Timeline{perCPU: map[int][]Interruption{
		0: {
			{Start: sim.Time(900), Len: 200 * time.Nanosecond, CPU: 0},
			{Start: sim.Time(1100), Len: 300 * time.Nanosecond, CPU: 0},
		},
	}}
	end := tl.Advance(0, 0, 1000*time.Nanosecond)
	if end != sim.Time(1500) {
		t.Fatalf("end = %v, want 1500 (cascading steal)", end)
	}
}
