package noise

import (
	"math"
	"testing"
	"time"
)

// TestAnalyticModelPaperExample checks the worked example of Sec. 2: an
// application with N = 100,000 threads and S = 250 µs synchronization
// interval is slowed ~20% by one noise group with L = 1 ms every 500 s.
func TestAnalyticModelPaperExample(t *testing.T) {
	m := AnalyticModel{Groups: []Group{
		{Name: "paper", Length: time.Millisecond, Every: 500 * time.Second},
	}}
	d, name, err := m.Slowdown(250*time.Microsecond, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if name != "paper" {
		t.Fatalf("dominating group = %q", name)
	}
	if d < 0.15 || d > 0.25 {
		t.Fatalf("slowdown = %v, paper says ~20%%", d)
	}
}

func TestHitProbabilityBounds(t *testing.T) {
	p := HitProbability(250*time.Microsecond, 500*time.Second, 100000)
	if p <= 0 || p >= 1 {
		t.Fatalf("probability out of (0,1): %v", p)
	}
	// S >= I saturates.
	if HitProbability(time.Second, time.Second, 10) != 1 {
		t.Fatal("S >= I must saturate at 1")
	}
	if HitProbability(2*time.Second, time.Second, 10) != 1 {
		t.Fatal("S > I must saturate at 1")
	}
	// Degenerate inputs.
	if HitProbability(0, time.Second, 10) != 0 ||
		HitProbability(time.Second, 0, 10) != 0 ||
		HitProbability(time.Second, time.Second, 0) != 0 {
		t.Fatal("degenerate inputs must give 0")
	}
}

func TestHitProbabilityMonotoneInThreads(t *testing.T) {
	prev := 0.0
	for _, n := range []int{1, 10, 100, 1000, 10000, 100000, 7630848} {
		p := HitProbability(250*time.Microsecond, 500*time.Second, n)
		if p < prev {
			t.Fatalf("probability not monotone in N at %d", n)
		}
		prev = p
	}
}

// TestFullScaleFugakuSaturation verifies the paper's observation: at
// N = 7,630,848 threads, even noise once every 600 s has hit probability
// close to 1 for S = 250 µs... the paper states this for its FWQ context;
// here we verify the saturation property of the formula.
func TestFullScaleFugakuSaturation(t *testing.T) {
	p := HitProbability(250*time.Microsecond, 600*time.Second, 7630848)
	if p < 0.95 {
		t.Fatalf("full-scale hit probability = %v, paper says close to 1", p)
	}
}

func TestHitProbabilityNumericalStability(t *testing.T) {
	// Tiny S/I with enormous N must not underflow to 0 or overflow to NaN.
	p := HitProbability(time.Microsecond, 10000*time.Hour, 100000000)
	if math.IsNaN(p) || p < 0 || p > 1 {
		t.Fatalf("unstable probability: %v", p)
	}
	if p == 0 {
		t.Fatal("underflow: probability must remain positive")
	}
}

func TestSlowdownMaxAcrossGroups(t *testing.T) {
	m := AnalyticModel{Groups: []Group{
		{Name: "short-frequent", Length: 10 * time.Microsecond, Every: time.Millisecond},
		{Name: "long-rare", Length: 20 * time.Millisecond, Every: 100 * time.Second},
	}}
	// At large N the long-rare group dominates (its hit probability
	// saturates while its L/S is enormous) — the paper's core argument for
	// why max noise length matters more than noise rate at scale.
	d, name, err := m.Slowdown(time.Millisecond, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	if name != "long-rare" {
		t.Fatalf("dominating group at scale = %q, want long-rare", name)
	}
	if d <= 0 {
		t.Fatal("slowdown must be positive")
	}
	// At N=1 the frequent group dominates.
	_, name1, _ := m.Slowdown(time.Millisecond, 1)
	if name1 != "short-frequent" {
		t.Fatalf("dominating group at N=1 = %q, want short-frequent", name1)
	}
}

func TestSlowdownNoGroups(t *testing.T) {
	var m AnalyticModel
	if _, _, err := m.Slowdown(time.Millisecond, 10); err != ErrNoGroups {
		t.Fatalf("err = %v, want ErrNoGroups", err)
	}
}

func TestSlowdownZeroSyncInterval(t *testing.T) {
	m := AnalyticModel{Groups: []Group{{Name: "g", Length: time.Millisecond, Every: time.Second}}}
	d, _, err := m.Slowdown(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("slowdown with S=0 should be 0, got %v", d)
	}
}

func TestCriticalInterval(t *testing.T) {
	// For the paper's example parameters, the critical interval producing a
	// 20% slowdown should be near 500 s.
	ci := CriticalInterval(time.Millisecond, 250*time.Microsecond, 100000, 0.195)
	if ci < 100*time.Second || ci > 2000*time.Second {
		t.Fatalf("critical interval = %v, want ~500s", ci)
	}
	// Verify the returned interval indeed achieves the target.
	d := SlowdownOf(Group{Length: time.Millisecond, Every: ci}, 250*time.Microsecond, 100000)
	if d < 0.195*0.99 {
		t.Fatalf("returned interval misses target: %v", d)
	}
	if CriticalInterval(time.Millisecond, 0, 10, 0.5) != 0 {
		t.Fatal("S=0 must return 0")
	}
	if CriticalInterval(time.Millisecond, time.Second, 10, 0) != 0 {
		t.Fatal("target=0 must return 0")
	}
	// An unachievable target (noise too short) returns the hi bound or less,
	// but re-evaluation never reports a higher slowdown than the bound.
	ciTiny := CriticalInterval(time.Nanosecond, time.Second, 2, 0.9)
	if got := SlowdownOf(Group{Length: time.Nanosecond, Every: ciTiny}, time.Second, 2); got > 1 {
		t.Fatalf("bisection produced slowdown %v > 1", got)
	}
}

func TestCriticalIntervalAlwaysSatisfiedReturnsHi(t *testing.T) {
	// A 10-hour noise every interval with tiny target: even the maximum
	// interval satisfies the target, so hi is returned.
	ci := CriticalInterval(10*time.Hour, time.Second, 1000000, 1e-12)
	if ci != 1000*time.Hour {
		t.Fatalf("want hi bound, got %v", ci)
	}
}
