// Package mos models Intel's mOS, the multi-kernel the paper identifies as
// closest to IHK/McKernel (Sec. 7): an LWK compiled *into* the Linux kernel
// rather than booted beside it. The design trades differently —
//
//   - stronger integration: no proxy process and no IKC; offloaded system
//     calls are shipped to a Linux core as direct kernel work, roughly
//     halving delegation latency;
//   - reuse of Linux infrastructure (page tables, timekeeping, RCU), which
//     means some Linux housekeeping still executes on LWK cores — "this
//     approach comes at the price of Linux modifications and an increased
//     complexity in eliminating OS interference";
//   - kernel-source maintenance burden: the modifications must track
//     mainline Linux, the exact cost the Fugaku team avoided (Sec. 4.1).
//
// The package exists for design-space ablations
// (BenchmarkAblationMultikernelDesign): it satisfies the same bsp.OS
// contract as linux.Kernel and mckernel.Instance.
package mos

import (
	"errors"
	"time"

	"mkos/internal/cpu"
	"mkos/internal/kernel"
	"mkos/internal/linux"
	"mkos/internal/mem"
	"mkos/internal/noise"
)

// Instance is a booted mOS node: Linux with an embedded LWK owning a core
// partition.
type Instance struct {
	Host     *linux.Kernel
	LWKCores []int
}

// ErrNoCores reports an empty LWK partition.
var ErrNoCores = errors.New("mos: no LWK cores")

// Boot designates the host's application cores as LWK cores. Unlike IHK
// there is no dynamic reservation: the partition is a boot parameter
// (lwkcpus=), another integration-vs-flexibility trade.
func Boot(host *linux.Kernel) (*Instance, error) {
	cores := host.Topo.AppCores()
	if len(cores) == 0 {
		return nil, ErrNoCores
	}
	return &Instance{Host: host, LWKCores: cores}, nil
}

// Name identifies the configuration.
func (in *Instance) Name() string {
	if in.Host.Topo.ISA == cpu.X86_64 {
		return "ofp-mos"
	}
	return "fugaku-mos"
}

// forwardCost is the latency of shipping a syscall to a Linux core as
// direct kernel work (no proxy wake, no message channel) — the mOS
// "stronger integration" advantage over IHK/McKernel's IKC round trip.
const forwardCost = 1200 * time.Nanosecond

// lwkLocalCosts mirrors McKernel's local fast paths; both LWKs implement
// simple purpose-built memory and thread management.
func lwkLocalCosts() kernel.CostTable {
	return kernel.CostTable{
		kernel.SysGetpid:  120 * time.Nanosecond,
		kernel.SysMmap:    1700 * time.Nanosecond,
		kernel.SysMunmap:  1400 * time.Nanosecond,
		kernel.SysBrk:     700 * time.Nanosecond,
		kernel.SysMadvise: 600 * time.Nanosecond,
		kernel.SysFutex:   950 * time.Nanosecond,
		kernel.SysClone:   9 * time.Microsecond,
		kernel.SysExit:    6 * time.Microsecond,
		kernel.SysSignal:  800 * time.Nanosecond,
	}
}

// SyscallCost routes like McKernel but forwards cheaper.
func (in *Instance) SyscallCost(sc kernel.Syscall) time.Duration {
	if sc.PerformanceSensitive() {
		return lwkLocalCosts().Cost(sc)
	}
	return forwardCost + in.Host.SyscallCosts().Cost(sc)
}

// TranslationOverhead: mOS reuses Linux page tables but maps LWK memory
// with large pages, matching McKernel's coverage.
func (in *Instance) TranslationOverhead(workingSet int64, accessPeriod time.Duration) float64 {
	return in.Host.Topo.TLB.TranslationOverhead(workingSet, mem.Page2M.Bytes(), accessPeriod)
}

// HeapChurnCost: the mOS LWK memory manager also retains freed physical
// memory, but the shared Linux mm structures add bookkeeping per call.
func (in *Instance) HeapChurnCost(churnBytes int64, calls, threads int) time.Duration {
	if churnBytes <= 0 && calls <= 0 {
		return 0
	}
	if calls < 1 {
		calls = int(churnBytes / (8 << 20))
		if calls < 1 {
			calls = 1
		}
	}
	costs := lwkLocalCosts()
	perCall := (costs.Cost(kernel.SysMmap)+costs.Cost(kernel.SysMunmap))/2 +
		400*time.Nanosecond // shared-mm bookkeeping
	return time.Duration(calls) * perCall
}

// RDMARegistrationCost: mOS reaches the vendor driver in-kernel without a
// channel crossing but still pays the full driver path (no PicoDriver-style
// split driver existed for it).
func (in *Instance) RDMARegistrationCost(bytes int64) time.Duration {
	return forwardCost + in.Host.RDMARegistrationCost(bytes)
}

// BarrierLatency: same hardware as the host.
func (in *Instance) BarrierLatency(n int) time.Duration { return in.Host.BarrierLatency(n) }

// CacheInterferenceFactor: residual Linux housekeeping on LWK cores touches
// the shared cache occasionally; with the sector cache enabled the host
// still isolates it.
func (in *Instance) CacheInterferenceFactor() float64 {
	if in.Host.Tune.SectorCache && in.Host.Topo.HasSectorCache {
		return 1
	}
	return 1.005
}

// Noise calibration: cleaner than tuned Linux, but not McKernel-silent —
// Linux timekeeping, RCU callbacks and vmstat updates still visit LWK cores
// because the infrastructure is shared.
const (
	rcuLength     = 4 * time.Microsecond
	rcuLenCV      = 0.4
	rcuInterval   = 4 * time.Second // per core
	housekeeping  = 15 * time.Microsecond
	housekeepCV   = 0.5
	housekeepTick = 120 * time.Second // per core
)

// NoiseProfile returns the embedded-LWK residual noise.
func (in *Instance) NoiseProfile() *noise.Profile {
	p := &noise.Profile{}
	p.MustAdd(&noise.Source{
		Name: "rcu-callbacks", Cores: in.LWKCores, Mode: noise.TargetRandom,
		Every: spread(rcuInterval, len(in.LWKCores)), EveryCV: 0.4,
		Length: rcuLength, LengthCV: rcuLenCV,
	})
	p.MustAdd(&noise.Source{
		Name: "linux-housekeeping", Cores: in.LWKCores, Mode: noise.TargetRandom,
		Every: spread(housekeepTick, len(in.LWKCores)), EveryCV: 0.5,
		Length: housekeeping, LengthCV: housekeepCV,
	})
	return p
}

func spread(perCore time.Duration, nCores int) time.Duration {
	if nCores < 1 {
		nCores = 1
	}
	iv := perCore / time.Duration(nCores)
	if iv < time.Microsecond {
		iv = time.Microsecond
	}
	return iv
}

// MaintenanceBurden is the design's qualitative cost the paper's conclusion
// dwells on: kernel-source patches that must track mainline. IHK/McKernel
// is module-only (zero), the K Computer OS carried a full patched kernel.
func (in *Instance) MaintenanceBurden() string {
	return "linux-kernel-patches"
}
