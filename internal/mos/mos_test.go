package mos

import (
	"testing"
	"time"

	"mkos/internal/apps"
	"mkos/internal/bsp"
	"mkos/internal/cluster"
	"mkos/internal/cpu"
	"mkos/internal/interconnect"
	"mkos/internal/kernel"
	"mkos/internal/linux"
	"mkos/internal/noise"
)

func bootMOS(t *testing.T) *Instance {
	t.Helper()
	host, err := linux.NewKernel(cpu.A64FX(2), linux.FugakuTuning(), 32<<30)
	if err != nil {
		t.Fatal(err)
	}
	in, err := Boot(host)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestBootValidation(t *testing.T) {
	in := bootMOS(t)
	if len(in.LWKCores) != 48 {
		t.Fatalf("LWK cores = %d", len(in.LWKCores))
	}
	if in.Name() != "fugaku-mos" {
		t.Fatalf("Name = %s", in.Name())
	}
	if in.MaintenanceBurden() != "linux-kernel-patches" {
		t.Fatal("mOS requires kernel patches (Sec. 7)")
	}
}

func TestMOSDelegationCheaperThanMcKernel(t *testing.T) {
	in := bootMOS(t)
	node, err := cluster.Fugaku().NewNode(cluster.McKernel)
	if err != nil {
		t.Fatal(err)
	}
	mck := node.LWK
	// mOS forwards without a proxy: delegated calls must be cheaper than
	// McKernel's IKC path but dearer than native Linux.
	for _, sc := range []kernel.Syscall{kernel.SysOpen, kernel.SysIoctl, kernel.SysWrite} {
		mosCost := in.SyscallCost(sc)
		mckCost := mck.SyscallCost(sc)
		native := in.Host.SyscallCosts().Cost(sc)
		if mosCost >= mckCost {
			t.Errorf("%v: mOS %v must beat McKernel %v (no proxy wake)", sc, mosCost, mckCost)
		}
		if mosCost <= native {
			t.Errorf("%v: mOS %v must still exceed native %v", sc, mosCost, native)
		}
	}
	// Local calls are in the same league for both LWKs.
	if in.SyscallCost(kernel.SysMmap) >= in.Host.SyscallCosts().Cost(kernel.SysMmap) {
		t.Error("mOS local mmap must beat Linux")
	}
}

func TestMOSNoisierThanMcKernelQuieterThanLinux(t *testing.T) {
	if testing.Short() {
		t.Skip("FWQ simulation")
	}
	in := bootMOS(t)
	node, err := cluster.Fugaku().NewNode(cluster.McKernel)
	if err != nil {
		t.Fatal(err)
	}
	run := func(prof apps.NoiseProfiler, cores []int) noise.Analysis {
		cfg := apps.FWQConfig{Work: 6500 * time.Microsecond, Duration: time.Minute, Cores: cores}
		as, _, err := apps.FWQAcrossNodes(cfg, prof, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		m, err := noise.Merge(as)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	mosA := run(in, in.LWKCores)
	mckA := run(node.LWK, node.LWK.Part.Cores)
	linA := run(node.Host, node.Host.AppCores())
	t.Logf("rates: mos=%.3g mckernel=%.3g linux=%.3g", mosA.Rate, mckA.Rate, linA.Rate)
	// The design-space ordering of Sec. 7: shared infrastructure means mOS
	// cannot be as silent as a from-scratch co-kernel.
	if mosA.Rate <= mckA.Rate {
		t.Errorf("mOS rate %v must exceed McKernel %v (shared Linux infra)", mosA.Rate, mckA.Rate)
	}
	if mosA.Rate >= linA.Rate {
		t.Errorf("mOS rate %v must still beat full Linux %v", mosA.Rate, linA.Rate)
	}
}

func TestMOSSatisfiesBSPContract(t *testing.T) {
	in := bootMOS(t)
	var _ bsp.OS = in
	w := bsp.Workload{
		Name: "w", Scaling: bsp.StrongScaling, RefNodes: 16,
		Steps: 5, StepCompute: 5 * time.Millisecond,
		WorkingSetPerRank: 256 << 20, MemAccessPeriod: 100 * time.Nanosecond,
		HeapChurnPerStep: 8 << 20, HeapCallsPerStep: 10,
	}
	m := bsp.Machine{
		OS: in, Fabric: interconnect.TofuD(),
		Cores: in.LWKCores, RanksPerNode: 4, ThreadsPerRank: 12,
	}
	r, err := bsp.Run(w, m, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Runtime <= 0 {
		t.Fatal("no runtime")
	}
}

func TestMOSCostModelEdges(t *testing.T) {
	in := bootMOS(t)
	if in.HeapChurnCost(0, 0, 1) != 0 {
		t.Fatal("zero churn must be free")
	}
	if in.HeapChurnCost(64<<20, 0, 1) <= 0 {
		t.Fatal("byte-derived call count broken")
	}
	if in.RDMARegistrationCost(1<<20) <= in.Host.RDMARegistrationCost(1<<20) {
		t.Fatal("mOS registration must cost at least the native driver path")
	}
	if in.CacheInterferenceFactor() != 1 {
		t.Fatal("sector cache must isolate on Fugaku tuning")
	}
	if in.TranslationOverhead(16<<30, 100*time.Nanosecond) < 0 {
		t.Fatal("negative overhead")
	}
	if in.BarrierLatency(48) != in.Host.BarrierLatency(48) {
		t.Fatal("barrier must match the host hardware")
	}
}

func TestBootNoCores(t *testing.T) {
	bad := &cpu.Topology{
		Name: "sysonly", ISA: cpu.AArch64, NUMADomains: 1, Frequency: 1e9,
		Cores: []cpu.Core{{ID: 0, NUMA: 0, Kind: cpu.AssistantCore, SMT: 1, ThreadIDs: []int{0}}},
	}
	host, err := linux.NewKernel(bad, linux.Tuning{Name: "t"}, 8<<30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Boot(host); err != ErrNoCores {
		t.Fatalf("err = %v", err)
	}
}
